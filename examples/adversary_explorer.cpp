// Example: explore the paper's adversarial constructions interactively.
//
// A small CLI over the Appendix A / Appendix B generators: pick the
// construction and its parameters, and see every algorithm's cost next to
// the exact OFF schedule the proof uses.  Handy for building intuition
// about WHY single-principle caching fails.
//
// Usage:
//   adversary_explorer a [n] [delta] [j] [k]     (Appendix A, dLRU killer)
//   adversary_explorer b [n] [j] [k]             (Appendix B, EDF killer)
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/validator.h"
#include "offline/appendix_off.h"
#include "sim/runner.h"
#include "sim/table.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"

namespace {

int arg_or(int argc, char** argv, int index, int fallback) {
  return argc > index ? std::atoi(argv[index]) : fallback;
}

void run_all(const rrs::Instance& inst, int n, rrs::Cost off_cost) {
  using namespace rrs;
  TextTable table(
      {"algorithm", "reconfig", "drops", "total", "ratio vs OFF"});
  for (const std::string name : {"dlru", "edf", "dlru-edf"}) {
    Schedule schedule;
    const RunRecord r = run_algorithm(inst, name, n, &schedule);
    (void)validate_or_throw(inst, schedule);
    table.add_row({r.algorithm, std::to_string(r.cost.reconfig_cost),
                   std::to_string(r.cost.drops),
                   std::to_string(r.cost.total()),
                   fmt_ratio(static_cast<double>(r.cost.total()) /
                             static_cast<double>(off_cost))});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrs;
  const std::string which = argc > 1 ? argv[1] : "a";

  if (which == "a") {
    AdversaryAParams params;
    params.n = arg_or(argc, argv, 2, 8);
    params.delta = arg_or(argc, argv, 3, 2);
    params.j = arg_or(argc, argv, 4, 0);  // 0 = auto
    params.k = arg_or(argc, argv, 5, 0);
    const AdversaryAInstance adv = make_adversary_a(params);
    std::cout << "Appendix A (recency killer): " << adv.instance.summary()
              << "\n"
              << "short colors: " << adv.short_colors.size() << " x delay "
              << (Round{1} << adv.params.j) << "; long color: delay "
              << (Round{1} << adv.params.k) << " with "
              << adv.instance.jobs_of_color(adv.long_color)
              << " backlog jobs\n\n";
    const Cost off =
        validate_or_throw(adv.instance, appendix_a_off_schedule(adv)).total();
    std::cout << "OFF (cache the long color once, drop short bursts): "
              << off << "\n\n";
    run_all(adv.instance, params.n, off);
    std::cout << "\ndLRU never caches the long color: the short colors' "
                 "wrap timestamps are always at least as recent.\n";
    return 0;
  }
  if (which == "b") {
    AdversaryBParams params;
    params.n = arg_or(argc, argv, 2, 8);
    params.j = arg_or(argc, argv, 3, 0);
    params.k = arg_or(argc, argv, 4, 0);
    const AdversaryBInstance adv = make_adversary_b(params);
    std::cout << "Appendix B (deadline killer): " << adv.instance.summary()
              << "\n"
              << "short color: delay " << (Round{1} << adv.params.j)
              << "; long colors: " << adv.long_colors.size()
              << " with delays " << (Round{1} << adv.params.k) << "..\n\n";
    const Cost off =
        validate_or_throw(adv.instance, appendix_b_off_schedule(adv)).total();
    std::cout << "OFF (short color first, then each backlog in one "
                 "stretch): "
              << off << "\n\n";
    run_all(adv.instance, params.n, off);
    std::cout << "\nEDF re-fetches the longest-delay backlog every time "
                 "the short color goes idle and evicts it on the next "
                 "burst: pure thrashing.\n";
    return 0;
  }
  std::cerr << "usage: adversary_explorer a [n] [delta] [j] [k]\n"
               "       adversary_explorer b [n] [j] [k]\n";
  return 2;
}
