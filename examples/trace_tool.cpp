// Example: trace utility — generate, inspect, and schedule trace files.
//
// The CSV trace format (src/workload/trace_io.h) lets users archive
// workloads and feed their own.  This tool is the glue:
//
//   trace_tool gen <family> <seed> <out.csv>    families: batched, poisson,
//                                               datacenter
//   trace_tool info <trace.csv>
//   trace_tool run <trace.csv> <algorithm> <n>
//   trace_tool timeline <trace.csv> <algorithm> <n> <bucket> <out.csv>
//
// Exit status is nonzero on bad usage or invalid input.
#include <iostream>
#include <string>

#include "core/validator.h"
#include "sim/runner.h"
#include "sim/table.h"
#include "sim/timeline.h"
#include "workload/datacenter.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"
#include "workload/trace_io.h"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  trace_tool gen <batched|poisson|datacenter> <seed> "
               "<out.csv>\n"
               "  trace_tool info <trace.csv>\n"
               "  trace_tool run <trace.csv> <algorithm> <n>\n"
               "  trace_tool timeline <trace.csv> <algorithm> <n> <bucket> "
               "<out.csv>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrs;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "gen" && argc == 5) {
      const std::string family = argv[2];
      const std::uint64_t seed = std::strtoull(argv[3], nullptr, 10);
      Instance inst;
      if (family == "batched") {
        RandomBatchedParams params;
        params.seed = seed;
        params.horizon = 1024;
        inst = make_random_batched(params);
      } else if (family == "poisson") {
        PoissonParams params;
        params.seed = seed;
        params.horizon = 1024;
        inst = make_poisson(params);
      } else if (family == "datacenter") {
        DatacenterParams params;
        params.seed = seed;
        params.horizon = 4096;
        inst = make_datacenter(params);
      } else {
        return usage();
      }
      write_trace_file(argv[4], inst);
      std::cout << "wrote " << argv[4] << ": " << inst.summary() << "\n";
      return 0;
    }
    if (command == "info" && argc == 3) {
      const Instance inst = read_trace_file(argv[2]);
      std::cout << inst.summary() << "\n\n";
      TextTable table({"color", "delay bound", "jobs"});
      for (ColorId c = 0; c < inst.num_colors(); ++c) {
        table.add_row({std::to_string(c),
                       std::to_string(inst.delay_bound(c)),
                       std::to_string(inst.jobs_of_color(c))});
      }
      table.print(std::cout);
      return 0;
    }
    if (command == "run" && argc == 5) {
      const Instance inst = read_trace_file(argv[2]);
      const int n = std::atoi(argv[4]);
      Schedule schedule;
      const RunRecord r = run_algorithm(inst, argv[3], n, &schedule);
      const CostBreakdown cost = validate_or_throw(inst, schedule);
      std::cout << r.algorithm << " on " << inst.summary() << " with " << n
                << " resources:\n"
                << "  reconfigurations: " << cost.reconfig_events << " (cost "
                << cost.reconfig_cost << ")\n"
                << "  drops:            " << cost.drops << "\n"
                << "  total cost:       " << cost.total() << "\n"
                << "  wall time:        " << fmt_double(r.seconds * 1e3, 1)
                << " ms\n";
      return 0;
    }
    if (command == "timeline" && argc == 7) {
      const Instance inst = read_trace_file(argv[2]);
      const int n = std::atoi(argv[4]);
      const Round bucket = std::strtoll(argv[5], nullptr, 10);
      Schedule schedule;
      (void)run_algorithm(inst, argv[3], n, &schedule);
      (void)validate_or_throw(inst, schedule);
      timeline_csv(compute_timeline(inst, schedule, bucket))
          .write_file(argv[6]);
      std::cout << "wrote per-bucket timeline to " << argv[6] << "\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
