// Example: multi-service router on programmable network processors.
//
// Models the paper's second motivating application: a software router
// whose processor cores are (re)programmed per packet class, where each
// class has a QoS delay tolerance (Kokku et al. [9] in the paper).  Packet
// classes range from latency-critical (voice) to elastic (bulk transfer);
// traffic composition shifts as flows start and stop.  The example builds
// the traffic mix by hand with InstanceBuilder — showing the API a user
// would drive with their own traces — and compares core counts and
// algorithms.
//
// Usage: router [seed]
#include <cstdlib>
#include <iostream>

#include "core/instance.h"
#include "core/validator.h"
#include "sim/runner.h"
#include "sim/table.h"
#include "util/rng.h"

namespace {

struct PacketClass {
  const char* name;
  rrs::Round delay_tolerance;  // rounds a packet may wait
  double base_rate;            // packets per round when a flow is up
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rrs;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A plausible edge-router mix; delay tolerances in scheduler rounds.
  const PacketClass classes[] = {
      {"voice", 4, 0.6},      {"video", 16, 1.0},
      {"gaming", 8, 0.4},     {"web", 64, 1.2},
      {"dns", 8, 0.2},        {"bulk", 1024, 1.5},
      {"telemetry", 256, 0.3},
  };
  const Round horizon = 4096;
  const Cost reprogram_cost = 24;  // microcode reload >> per-packet work

  Rng rng(seed);
  InstanceBuilder builder;
  builder.delta(reprogram_cost);
  std::vector<ColorId> colors;
  for (const PacketClass& pc : classes) {
    colors.push_back(builder.add_color(pc.delay_tolerance));
  }
  // Flows come and go: each class alternates up/down with geometric
  // residence times; while up, packets arrive at the class base rate.
  for (std::size_t c = 0; c < std::size(classes); ++c) {
    bool up = rng.bernoulli(0.7);
    Round left = rng.uniform(64, 512);
    for (Round t = 0; t < horizon; ++t) {
      if (--left <= 0) {
        up = !up;
        left = rng.uniform(64, 512);
      }
      const std::int64_t packets =
          rng.poisson(up ? classes[c].base_rate : 0.02);
      if (packets > 0) {
        builder.add_jobs(colors[c], t, packets);
      }
    }
  }
  const Instance inst = builder.build();
  std::cout << "router traffic: " << inst.summary() << "\n\n";

  std::cout << "--- packet classes ---\n";
  TextTable spec({"class", "delay tolerance", "packets"});
  for (std::size_t c = 0; c < std::size(classes); ++c) {
    spec.add_row({classes[c].name,
                  std::to_string(classes[c].delay_tolerance),
                  std::to_string(inst.jobs_of_color(colors[c]))});
  }
  spec.print(std::cout);

  std::cout << "\n--- cores x algorithm: total cost (reprogram + lost "
               "packets) ---\n";
  TextTable grid({"cores", "varbatch", "edf", "dlru"});
  for (const int cores : {4, 8, 16}) {
    std::vector<std::string> row{std::to_string(cores)};
    for (const std::string algorithm : {"varbatch", "edf", "dlru"}) {
      Schedule schedule;
      const RunRecord r = run_algorithm(inst, algorithm, cores, &schedule);
      (void)validate_or_throw(inst, schedule);
      row.push_back(std::to_string(r.cost.total()) + " (" +
                    std::to_string(r.cost.drops) + " lost)");
    }
    grid.add_row(row);
  }
  grid.print(std::cout);

  // Loss rate per class for the pipeline at 8 cores.
  Schedule schedule;
  (void)run_algorithm(inst, "varbatch", 8, &schedule);
  std::vector<std::int64_t> served(std::size(classes), 0);
  for (const ExecEvent& e : schedule.execs) {
    ++served[static_cast<std::size_t>(
        inst.jobs()[static_cast<std::size_t>(e.job)].color)];
  }
  std::cout << "\n--- loss per class (varbatch, 8 cores) ---\n";
  TextTable loss({"class", "packets", "delivered", "loss %"});
  for (std::size_t c = 0; c < std::size(classes); ++c) {
    const std::int64_t total = inst.jobs_of_color(colors[c]);
    const double rate =
        total > 0 ? 100.0 * static_cast<double>(total - served[c]) /
                        static_cast<double>(total)
                  : 0.0;
    loss.add_row({classes[c].name, std::to_string(total),
                  std::to_string(served[c]), fmt_double(rate, 1)});
  }
  loss.print(std::cout);
  return 0;
}
