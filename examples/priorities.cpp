// Example: priority tiers with per-class drop costs (weighted extension).
//
// A processing cluster serves three priority tiers — platinum SLAs, normal
// traffic, and best-effort scavenging — where missing a platinum job costs
// 20x a best-effort one.  Per-color drop costs feed directly into the
// scheduler's eligibility economics (a tier earns a configuration once
// Delta worth of its VALUE is at stake), so the allocator protects value,
// not job counts.  The example contrasts the weighted run with a
// weight-blind control on the same jobs.
//
// Usage: priorities [seed]
#include <cstdlib>
#include <iostream>

#include "core/instance.h"
#include "core/validator.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/table.h"
#include "util/rng.h"

namespace {

struct Tier {
  const char* name;
  rrs::Cost value;     // drop cost per job
  int colors;          // services in this tier
  rrs::Round delay;    // QoS delay bound
  double rate;         // jobs/round/service
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rrs;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  const Tier tiers[] = {
      {"platinum", 20, 2, 16, 0.5},
      {"normal", 4, 4, 32, 0.5},
      {"best-effort", 1, 6, 128, 0.5},
  };
  const Round horizon = 4096;
  const Cost delta = 24;
  const int n = 8;

  // Build weighted and weight-blind instances over the same arrivals.
  Instance weighted, blind;
  std::vector<int> tier_of_color;
  for (const bool use_weights : {true, false}) {
    Rng rng(seed);
    InstanceBuilder builder;
    builder.delta(delta);
    std::vector<ColorId> colors;
    for (const Tier& tier : tiers) {
      for (int c = 0; c < tier.colors; ++c) {
        colors.push_back(
            builder.add_color(tier.delay, use_weights ? tier.value : 1));
        if (use_weights) {
          tier_of_color.push_back(
              static_cast<int>(&tier - &tiers[0]));
        }
      }
    }
    std::size_t color_index = 0;
    for (const Tier& tier : tiers) {
      for (int c = 0; c < tier.colors; ++c, ++color_index) {
        for (Round t = 0; t < horizon; ++t) {
          const std::int64_t jobs = rng.poisson(tier.rate);
          if (jobs > 0) builder.add_jobs(colors[color_index], t, jobs);
        }
      }
    }
    (use_weights ? weighted : blind) = builder.build();
  }
  std::cout << "workload: " << weighted.summary() << "\n\n";

  TextTable table({"tier", "value/job", "jobs", "lost (aware)",
                   "lost (blind)", "value saved"});
  std::vector<std::int64_t> lost_aware(3, 0), lost_blind(3, 0),
      jobs_per_tier(3, 0);
  for (const bool aware : {true, false}) {
    Schedule schedule;
    (void)run_algorithm(aware ? weighted : blind, "varbatch", n, &schedule);
    (void)validate_or_throw(aware ? weighted : blind, schedule);
    const ScheduleMetrics m =
        compute_metrics(aware ? weighted : blind, schedule);
    for (const auto& pc : m.per_color) {
      const auto tier = static_cast<std::size_t>(
          tier_of_color[static_cast<std::size_t>(pc.color)]);
      (aware ? lost_aware : lost_blind)[tier] += pc.dropped;
      if (aware) jobs_per_tier[tier] += pc.jobs;
    }
  }
  for (std::size_t t = 0; t < 3; ++t) {
    const Cost saved =
        (lost_blind[t] - lost_aware[t]) * tiers[t].value;
    table.add_row({tiers[t].name, std::to_string(tiers[t].value),
                   std::to_string(jobs_per_tier[t]),
                   std::to_string(lost_aware[t]),
                   std::to_string(lost_blind[t]), std::to_string(saved)});
  }
  table.print(std::cout);

  std::cout << "\nweighted total cost: "
            << run_algorithm(weighted, "varbatch", n).cost.total()
            << "  (weight-blind control, re-priced: see E10 for the "
               "systematic comparison)\n";
  return 0;
}
