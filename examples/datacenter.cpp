// Example: shared data center with shifting service mix.
//
// Models the paper's motivating application (Section 1): a shared data
// center hosting heterogeneous services whose workload composition changes
// over time, so processor allocations must follow demand.  Runs the full
// online pipeline (varbatch) against the straw-man schemes across a range
// of cluster sizes and prints a per-service QoS report (jobs served within
// their delay tolerance).
//
// Usage: datacenter [seed] [horizon]
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/validator.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/table.h"
#include "workload/datacenter.h"

int main(int argc, char** argv) {
  using namespace rrs;
  DatacenterParams params;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  params.horizon = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 8192;
  params.delta = 32;
  const Instance inst = make_datacenter(params);
  std::cout << "datacenter workload: " << inst.summary() << "\n\n";

  // Sweep cluster sizes for the full pipeline.
  std::cout << "--- cluster-size sweep (varbatch pipeline) ---\n";
  TextTable sweep({"processors", "reconfig", "drops", "served %", "total"});
  for (const int n : {4, 8, 16, 32}) {
    const RunRecord r = run_algorithm(inst, "varbatch", n);
    const double served =
        100.0 * static_cast<double>(r.executed) /
        static_cast<double>(inst.jobs().size());
    sweep.add_row({std::to_string(n), std::to_string(r.cost.reconfig_cost),
                   std::to_string(r.cost.drops), fmt_double(served, 1),
                   std::to_string(r.cost.total())});
  }
  sweep.print(std::cout);

  // Algorithm comparison at a fixed size, with per-service QoS breakdown.
  const int n = 16;
  std::cout << "\n--- algorithm comparison at " << n
            << " processors ---\n";
  TextTable comparison({"algorithm", "reconfig", "drops", "total"});
  std::map<std::string, Schedule> schedules;
  for (const std::string name : {"varbatch", "edf", "dlru"}) {
    Schedule schedule;
    const RunRecord r = run_algorithm(inst, name, n, &schedule);
    (void)validate_or_throw(inst, schedule);
    comparison.add_row({r.algorithm, std::to_string(r.cost.reconfig_cost),
                        std::to_string(r.cost.drops),
                        std::to_string(r.cost.total())});
    schedules[name] = std::move(schedule);
  }
  comparison.print(std::cout);

  // Per-service QoS report for the pipeline's schedule.
  std::cout << "\n--- per-service QoS (varbatch, " << n
            << " processors) ---\n";
  std::vector<std::int64_t> served(static_cast<std::size_t>(
      inst.num_colors()));
  for (const ExecEvent& e : schedules["varbatch"].execs) {
    ++served[static_cast<std::size_t>(
        inst.jobs()[static_cast<std::size_t>(e.job)].color)];
  }
  TextTable qos({"service", "delay bound", "jobs", "served", "SLA %"});
  for (ColorId c = 0; c < inst.num_colors(); ++c) {
    const std::int64_t total = inst.jobs_of_color(c);
    const double sla =
        total > 0 ? 100.0 *
                        static_cast<double>(
                            served[static_cast<std::size_t>(c)]) /
                        static_cast<double>(total)
                  : 100.0;
    qos.add_row({"service-" + std::to_string(c),
                 std::to_string(inst.delay_bound(c)), std::to_string(total),
                 std::to_string(served[static_cast<std::size_t>(c)]),
                 fmt_double(sla, 1)});
  }
  qos.print(std::cout);

  // Latency anatomy of the pipeline's schedule.
  const ScheduleMetrics metrics =
      compute_metrics(inst, schedules["varbatch"]);
  std::cout << "\n--- latency (varbatch, " << n << " processors) ---\n"
            << "wait rounds: p50=" << metrics.wait.p50
            << " p95=" << metrics.wait.p95 << " p99=" << metrics.wait.p99
            << " max=" << metrics.wait.max << "\n"
            << "utilization: " << fmt_double(100.0 * metrics.utilization, 1)
            << "%  service rate: "
            << fmt_double(100.0 * metrics.service_rate, 1) << "%\n";

  const Cost lb = offline_lower_bound(inst, 2).best();
  const Cost ub = best_offline_heuristic_cost(inst, 2);
  std::cout << "\noffline bracket (m=2): LB=" << lb << "  greedy UB=" << ub
            << "\n";
  return 0;
}
