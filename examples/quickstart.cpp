// Quickstart: build an instance, run the paper's algorithms, compare costs.
//
// Demonstrates the three-layer public API:
//   1. describe a workload with InstanceBuilder (or a workload generator);
//   2. run any registered algorithm (dlru / edf / dlru-edf / varbatch /...)
//      with a chosen resource count;
//   3. bracket the offline optimum with certified lower bounds and greedy
//      upper bounds, and validate the produced schedule event-by-event.
#include <iostream>

#include "core/instance.h"
#include "core/validator.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/runner.h"
#include "sim/table.h"

int main() {
  using namespace rrs;

  // A toy multi-service workload: two latency-sensitive colors (delay 8),
  // one batch color (delay 64), reconfiguration cost 4.  Arrivals are NOT
  // aligned to delay-bound multiples, so this is the general
  // [Delta | 1 | D_l | 1] problem the paper's Theorem 3 solves.
  InstanceBuilder builder;
  builder.delta(4);
  const ColorId web = builder.add_color(8);
  const ColorId api = builder.add_color(8);
  const ColorId batch = builder.add_color(64);
  builder.add_jobs(batch, 0, 48);  // a backlog with generous deadlines
  for (Round t = 0; t < 256; ++t) {
    if (t % 3 == 0) builder.add_jobs(web, t, 2);
    if (t % 5 == 1) builder.add_jobs(api, t, 3);
    if (t % 64 == 10) builder.add_jobs(batch, t, 20);
  }
  const Instance instance = builder.build();
  std::cout << "instance: " << instance.summary() << "\n\n";

  // Run the end-to-end online algorithm (VarBatch -> Distribute ->
  // dLRU-EDF) and the two straw-man schemes, validating each schedule.
  const int n = 8;  // online resources
  const int m = 1;  // offline comparator resources
  TextTable table({"algorithm", "reconfig", "drops", "total", "valid"});
  for (const std::string name : {"varbatch", "dlru", "edf"}) {
    Schedule schedule;
    const RunRecord record = run_algorithm(instance, name, n, &schedule);
    const ValidationResult check = validate(instance, schedule);
    table.add_row({record.algorithm,
                   std::to_string(record.cost.reconfig_cost),
                   std::to_string(record.cost.drops),
                   std::to_string(record.cost.total()),
                   check.ok ? "yes" : "NO"});
    if (!check.ok) {
      for (const auto& error : check.errors) {
        std::cerr << "validation error: " << error << "\n";
      }
      return 1;
    }
  }
  table.print(std::cout);

  // Bracket the offline optimum with m = 1 resource.
  const LowerBound lb = offline_lower_bound(instance, m);
  const Cost ub = best_offline_heuristic_cost(instance, m);
  std::cout << "\noffline bracket (m=" << m << "): LB=" << lb.best()
            << " (configure-or-drop " << lb.configure_or_drop
            << ", capacity " << lb.capacity << "), greedy UB=" << ub << "\n";
  return 0;
}
