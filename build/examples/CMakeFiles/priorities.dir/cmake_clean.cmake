file(REMOVE_RECURSE
  "CMakeFiles/priorities.dir/priorities.cpp.o"
  "CMakeFiles/priorities.dir/priorities.cpp.o.d"
  "priorities"
  "priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
