# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter "/root/repo/build/examples/datacenter" "1" "1024")
set_tests_properties(example_datacenter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_router "/root/repo/build/examples/router" "7")
set_tests_properties(example_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_a "/root/repo/build/examples/adversary_explorer" "a")
set_tests_properties(example_adversary_a PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_b "/root/repo/build/examples/adversary_explorer" "b")
set_tests_properties(example_adversary_b PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool_usage "/root/repo/build/examples/trace_tool")
set_tests_properties(example_trace_tool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priorities "/root/repo/build/examples/priorities" "5")
set_tests_properties(example_priorities PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
