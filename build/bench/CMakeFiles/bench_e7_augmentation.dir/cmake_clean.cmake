file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_augmentation.dir/bench_e7_augmentation.cc.o"
  "CMakeFiles/bench_e7_augmentation.dir/bench_e7_augmentation.cc.o.d"
  "bench_e7_augmentation"
  "bench_e7_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
