# Empty dependencies file for bench_e7_augmentation.
# This may be replaced when dependencies are built.
