# Empty compiler generated dependencies file for bench_a3_reduction_overhead.
# This may be replaced when dependencies are built.
