file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_reduction_overhead.dir/bench_a3_reduction_overhead.cc.o"
  "CMakeFiles/bench_a3_reduction_overhead.dir/bench_a3_reduction_overhead.cc.o.d"
  "bench_a3_reduction_overhead"
  "bench_a3_reduction_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_reduction_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
