file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_weighted.dir/bench_e10_weighted.cc.o"
  "CMakeFiles/bench_e10_weighted.dir/bench_e10_weighted.cc.o.d"
  "bench_e10_weighted"
  "bench_e10_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
