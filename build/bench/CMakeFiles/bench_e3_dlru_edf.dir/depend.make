# Empty dependencies file for bench_e3_dlru_edf.
# This may be replaced when dependencies are built.
