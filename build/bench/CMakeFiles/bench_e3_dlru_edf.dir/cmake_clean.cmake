file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_dlru_edf.dir/bench_e3_dlru_edf.cc.o"
  "CMakeFiles/bench_e3_dlru_edf.dir/bench_e3_dlru_edf.cc.o.d"
  "bench_e3_dlru_edf"
  "bench_e3_dlru_edf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_dlru_edf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
