file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_exact_census.dir/bench_e13_exact_census.cc.o"
  "CMakeFiles/bench_e13_exact_census.dir/bench_e13_exact_census.cc.o.d"
  "bench_e13_exact_census"
  "bench_e13_exact_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_exact_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
