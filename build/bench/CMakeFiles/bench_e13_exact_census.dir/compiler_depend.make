# Empty compiler generated dependencies file for bench_e13_exact_census.
# This may be replaced when dependencies are built.
