# Empty dependencies file for bench_e4_distribute.
# This may be replaced when dependencies are built.
