file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_distribute.dir/bench_e4_distribute.cc.o"
  "CMakeFiles/bench_e4_distribute.dir/bench_e4_distribute.cc.o.d"
  "bench_e4_distribute"
  "bench_e4_distribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_distribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
