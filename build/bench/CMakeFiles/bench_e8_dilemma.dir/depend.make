# Empty dependencies file for bench_e8_dilemma.
# This may be replaced when dependencies are built.
