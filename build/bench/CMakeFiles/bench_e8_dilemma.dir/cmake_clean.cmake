file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_dilemma.dir/bench_e8_dilemma.cc.o"
  "CMakeFiles/bench_e8_dilemma.dir/bench_e8_dilemma.cc.o.d"
  "bench_e8_dilemma"
  "bench_e8_dilemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_dilemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
