file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_lemmas.dir/bench_e6_lemmas.cc.o"
  "CMakeFiles/bench_e6_lemmas.dir/bench_e6_lemmas.cc.o.d"
  "bench_e6_lemmas"
  "bench_e6_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
