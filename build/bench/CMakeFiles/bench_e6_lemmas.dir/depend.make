# Empty dependencies file for bench_e6_lemmas.
# This may be replaced when dependencies are built.
