file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_split.dir/bench_a1_split.cc.o"
  "CMakeFiles/bench_a1_split.dir/bench_a1_split.cc.o.d"
  "bench_a1_split"
  "bench_a1_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
