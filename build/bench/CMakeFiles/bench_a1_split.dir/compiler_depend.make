# Empty compiler generated dependencies file for bench_a1_split.
# This may be replaced when dependencies are built.
