file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_varbatch.dir/bench_e5_varbatch.cc.o"
  "CMakeFiles/bench_e5_varbatch.dir/bench_e5_varbatch.cc.o.d"
  "bench_e5_varbatch"
  "bench_e5_varbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_varbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
