file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_dlru_lb.dir/bench_e1_dlru_lb.cc.o"
  "CMakeFiles/bench_e1_dlru_lb.dir/bench_e1_dlru_lb.cc.o.d"
  "bench_e1_dlru_lb"
  "bench_e1_dlru_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_dlru_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
