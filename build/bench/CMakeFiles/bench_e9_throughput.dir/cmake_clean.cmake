file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_throughput.dir/bench_e9_throughput.cc.o"
  "CMakeFiles/bench_e9_throughput.dir/bench_e9_throughput.cc.o.d"
  "bench_e9_throughput"
  "bench_e9_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
