# Empty dependencies file for bench_e2_edf_lb.
# This may be replaced when dependencies are built.
