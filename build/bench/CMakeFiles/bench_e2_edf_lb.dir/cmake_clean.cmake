file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_edf_lb.dir/bench_e2_edf_lb.cc.o"
  "CMakeFiles/bench_e2_edf_lb.dir/bench_e2_edf_lb.cc.o.d"
  "bench_e2_edf_lb"
  "bench_e2_edf_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_edf_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
