file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_flash_crowd.dir/bench_e12_flash_crowd.cc.o"
  "CMakeFiles/bench_e12_flash_crowd.dir/bench_e12_flash_crowd.cc.o.d"
  "bench_e12_flash_crowd"
  "bench_e12_flash_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_flash_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
