# Empty dependencies file for rrs_workload.
# This may be replaced when dependencies are built.
