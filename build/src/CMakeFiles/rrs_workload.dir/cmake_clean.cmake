file(REMOVE_RECURSE
  "CMakeFiles/rrs_workload.dir/workload/adversary_dlru.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/adversary_dlru.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/adversary_edf.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/adversary_edf.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/datacenter.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/datacenter.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/flash_crowd.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/flash_crowd.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/intro_scenario.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/intro_scenario.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/poisson.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/poisson.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/random_batched.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/random_batched.cc.o.d"
  "CMakeFiles/rrs_workload.dir/workload/trace_io.cc.o"
  "CMakeFiles/rrs_workload.dir/workload/trace_io.cc.o.d"
  "librrs_workload.a"
  "librrs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
