file(REMOVE_RECURSE
  "librrs_workload.a"
)
