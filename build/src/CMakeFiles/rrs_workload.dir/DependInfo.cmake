
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/adversary_dlru.cc" "src/CMakeFiles/rrs_workload.dir/workload/adversary_dlru.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/adversary_dlru.cc.o.d"
  "/root/repo/src/workload/adversary_edf.cc" "src/CMakeFiles/rrs_workload.dir/workload/adversary_edf.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/adversary_edf.cc.o.d"
  "/root/repo/src/workload/datacenter.cc" "src/CMakeFiles/rrs_workload.dir/workload/datacenter.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/datacenter.cc.o.d"
  "/root/repo/src/workload/flash_crowd.cc" "src/CMakeFiles/rrs_workload.dir/workload/flash_crowd.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/flash_crowd.cc.o.d"
  "/root/repo/src/workload/intro_scenario.cc" "src/CMakeFiles/rrs_workload.dir/workload/intro_scenario.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/intro_scenario.cc.o.d"
  "/root/repo/src/workload/poisson.cc" "src/CMakeFiles/rrs_workload.dir/workload/poisson.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/poisson.cc.o.d"
  "/root/repo/src/workload/random_batched.cc" "src/CMakeFiles/rrs_workload.dir/workload/random_batched.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/random_batched.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/rrs_workload.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/rrs_workload.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
