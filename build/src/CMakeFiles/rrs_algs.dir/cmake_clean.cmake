file(REMOVE_RECURSE
  "CMakeFiles/rrs_algs.dir/algs/adaptive.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/adaptive.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/distribute.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/distribute.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/dlru.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/dlru.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/dlru_edf.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/dlru_edf.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/edf.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/edf.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/par_edf.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/par_edf.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/ranked_cache.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/ranked_cache.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/registry.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/registry.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/seq_edf.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/seq_edf.cc.o.d"
  "CMakeFiles/rrs_algs.dir/algs/varbatch.cc.o"
  "CMakeFiles/rrs_algs.dir/algs/varbatch.cc.o.d"
  "librrs_algs.a"
  "librrs_algs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_algs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
