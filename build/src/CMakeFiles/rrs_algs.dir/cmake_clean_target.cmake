file(REMOVE_RECURSE
  "librrs_algs.a"
)
