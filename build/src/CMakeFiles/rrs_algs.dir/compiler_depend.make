# Empty compiler generated dependencies file for rrs_algs.
# This may be replaced when dependencies are built.
