
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algs/adaptive.cc" "src/CMakeFiles/rrs_algs.dir/algs/adaptive.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/adaptive.cc.o.d"
  "/root/repo/src/algs/distribute.cc" "src/CMakeFiles/rrs_algs.dir/algs/distribute.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/distribute.cc.o.d"
  "/root/repo/src/algs/dlru.cc" "src/CMakeFiles/rrs_algs.dir/algs/dlru.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/dlru.cc.o.d"
  "/root/repo/src/algs/dlru_edf.cc" "src/CMakeFiles/rrs_algs.dir/algs/dlru_edf.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/dlru_edf.cc.o.d"
  "/root/repo/src/algs/edf.cc" "src/CMakeFiles/rrs_algs.dir/algs/edf.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/edf.cc.o.d"
  "/root/repo/src/algs/par_edf.cc" "src/CMakeFiles/rrs_algs.dir/algs/par_edf.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/par_edf.cc.o.d"
  "/root/repo/src/algs/ranked_cache.cc" "src/CMakeFiles/rrs_algs.dir/algs/ranked_cache.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/ranked_cache.cc.o.d"
  "/root/repo/src/algs/registry.cc" "src/CMakeFiles/rrs_algs.dir/algs/registry.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/registry.cc.o.d"
  "/root/repo/src/algs/seq_edf.cc" "src/CMakeFiles/rrs_algs.dir/algs/seq_edf.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/seq_edf.cc.o.d"
  "/root/repo/src/algs/varbatch.cc" "src/CMakeFiles/rrs_algs.dir/algs/varbatch.cc.o" "gcc" "src/CMakeFiles/rrs_algs.dir/algs/varbatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
