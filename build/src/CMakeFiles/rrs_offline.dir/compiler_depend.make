# Empty compiler generated dependencies file for rrs_offline.
# This may be replaced when dependencies are built.
