
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/appendix_off.cc" "src/CMakeFiles/rrs_offline.dir/offline/appendix_off.cc.o" "gcc" "src/CMakeFiles/rrs_offline.dir/offline/appendix_off.cc.o.d"
  "/root/repo/src/offline/greedy_offline.cc" "src/CMakeFiles/rrs_offline.dir/offline/greedy_offline.cc.o" "gcc" "src/CMakeFiles/rrs_offline.dir/offline/greedy_offline.cc.o.d"
  "/root/repo/src/offline/lower_bound.cc" "src/CMakeFiles/rrs_offline.dir/offline/lower_bound.cc.o" "gcc" "src/CMakeFiles/rrs_offline.dir/offline/lower_bound.cc.o.d"
  "/root/repo/src/offline/optimal.cc" "src/CMakeFiles/rrs_offline.dir/offline/optimal.cc.o" "gcc" "src/CMakeFiles/rrs_offline.dir/offline/optimal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
