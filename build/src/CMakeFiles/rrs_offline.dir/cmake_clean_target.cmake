file(REMOVE_RECURSE
  "librrs_offline.a"
)
