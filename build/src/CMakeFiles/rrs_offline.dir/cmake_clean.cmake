file(REMOVE_RECURSE
  "CMakeFiles/rrs_offline.dir/offline/appendix_off.cc.o"
  "CMakeFiles/rrs_offline.dir/offline/appendix_off.cc.o.d"
  "CMakeFiles/rrs_offline.dir/offline/greedy_offline.cc.o"
  "CMakeFiles/rrs_offline.dir/offline/greedy_offline.cc.o.d"
  "CMakeFiles/rrs_offline.dir/offline/lower_bound.cc.o"
  "CMakeFiles/rrs_offline.dir/offline/lower_bound.cc.o.d"
  "CMakeFiles/rrs_offline.dir/offline/optimal.cc.o"
  "CMakeFiles/rrs_offline.dir/offline/optimal.cc.o.d"
  "librrs_offline.a"
  "librrs_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
