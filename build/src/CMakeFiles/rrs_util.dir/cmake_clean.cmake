file(REMOVE_RECURSE
  "CMakeFiles/rrs_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/rrs_util.dir/util/thread_pool.cc.o.d"
  "librrs_util.a"
  "librrs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
