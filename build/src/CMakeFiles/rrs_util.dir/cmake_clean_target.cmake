file(REMOVE_RECURSE
  "librrs_util.a"
)
