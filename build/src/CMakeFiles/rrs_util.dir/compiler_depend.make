# Empty compiler generated dependencies file for rrs_util.
# This may be replaced when dependencies are built.
