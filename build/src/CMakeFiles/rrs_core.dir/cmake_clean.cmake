file(REMOVE_RECURSE
  "CMakeFiles/rrs_core.dir/core/cache.cc.o"
  "CMakeFiles/rrs_core.dir/core/cache.cc.o.d"
  "CMakeFiles/rrs_core.dir/core/color_state.cc.o"
  "CMakeFiles/rrs_core.dir/core/color_state.cc.o.d"
  "CMakeFiles/rrs_core.dir/core/engine.cc.o"
  "CMakeFiles/rrs_core.dir/core/engine.cc.o.d"
  "CMakeFiles/rrs_core.dir/core/instance.cc.o"
  "CMakeFiles/rrs_core.dir/core/instance.cc.o.d"
  "CMakeFiles/rrs_core.dir/core/pending.cc.o"
  "CMakeFiles/rrs_core.dir/core/pending.cc.o.d"
  "CMakeFiles/rrs_core.dir/core/schedule.cc.o"
  "CMakeFiles/rrs_core.dir/core/schedule.cc.o.d"
  "CMakeFiles/rrs_core.dir/core/validator.cc.o"
  "CMakeFiles/rrs_core.dir/core/validator.cc.o.d"
  "librrs_core.a"
  "librrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
