file(REMOVE_RECURSE
  "librrs_core.a"
)
