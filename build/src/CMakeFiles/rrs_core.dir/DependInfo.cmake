
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cc" "src/CMakeFiles/rrs_core.dir/core/cache.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/cache.cc.o.d"
  "/root/repo/src/core/color_state.cc" "src/CMakeFiles/rrs_core.dir/core/color_state.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/color_state.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/rrs_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/rrs_core.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/instance.cc.o.d"
  "/root/repo/src/core/pending.cc" "src/CMakeFiles/rrs_core.dir/core/pending.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/pending.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/CMakeFiles/rrs_core.dir/core/schedule.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/schedule.cc.o.d"
  "/root/repo/src/core/validator.cc" "src/CMakeFiles/rrs_core.dir/core/validator.cc.o" "gcc" "src/CMakeFiles/rrs_core.dir/core/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
