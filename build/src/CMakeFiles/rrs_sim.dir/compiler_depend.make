# Empty compiler generated dependencies file for rrs_sim.
# This may be replaced when dependencies are built.
