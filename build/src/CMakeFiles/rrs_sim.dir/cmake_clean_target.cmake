file(REMOVE_RECURSE
  "librrs_sim.a"
)
