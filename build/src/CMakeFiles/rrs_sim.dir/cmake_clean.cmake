file(REMOVE_RECURSE
  "CMakeFiles/rrs_sim.dir/sim/csv.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/csv.cc.o.d"
  "CMakeFiles/rrs_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/rrs_sim.dir/sim/ratio.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/ratio.cc.o.d"
  "CMakeFiles/rrs_sim.dir/sim/runner.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/runner.cc.o.d"
  "CMakeFiles/rrs_sim.dir/sim/sweep.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/sweep.cc.o.d"
  "CMakeFiles/rrs_sim.dir/sim/table.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/table.cc.o.d"
  "CMakeFiles/rrs_sim.dir/sim/timeline.cc.o"
  "CMakeFiles/rrs_sim.dir/sim/timeline.cc.o.d"
  "librrs_sim.a"
  "librrs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
