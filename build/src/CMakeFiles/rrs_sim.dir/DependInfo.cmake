
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/csv.cc" "src/CMakeFiles/rrs_sim.dir/sim/csv.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/csv.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/rrs_sim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/ratio.cc" "src/CMakeFiles/rrs_sim.dir/sim/ratio.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/ratio.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/rrs_sim.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/CMakeFiles/rrs_sim.dir/sim/sweep.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/sweep.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/rrs_sim.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/table.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/CMakeFiles/rrs_sim.dir/sim/timeline.cc.o" "gcc" "src/CMakeFiles/rrs_sim.dir/sim/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrs_algs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
