file(REMOVE_RECURSE
  "CMakeFiles/dlru_test.dir/dlru_test.cc.o"
  "CMakeFiles/dlru_test.dir/dlru_test.cc.o.d"
  "dlru_test"
  "dlru_test.pdb"
  "dlru_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
