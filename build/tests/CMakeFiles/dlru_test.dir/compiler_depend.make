# Empty compiler generated dependencies file for dlru_test.
# This may be replaced when dependencies are built.
