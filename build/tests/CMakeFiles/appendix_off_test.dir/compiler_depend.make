# Empty compiler generated dependencies file for appendix_off_test.
# This may be replaced when dependencies are built.
