file(REMOVE_RECURSE
  "CMakeFiles/appendix_off_test.dir/appendix_off_test.cc.o"
  "CMakeFiles/appendix_off_test.dir/appendix_off_test.cc.o.d"
  "appendix_off_test"
  "appendix_off_test.pdb"
  "appendix_off_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_off_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
