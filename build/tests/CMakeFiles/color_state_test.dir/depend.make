# Empty dependencies file for color_state_test.
# This may be replaced when dependencies are built.
