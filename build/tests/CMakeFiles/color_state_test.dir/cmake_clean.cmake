file(REMOVE_RECURSE
  "CMakeFiles/color_state_test.dir/color_state_test.cc.o"
  "CMakeFiles/color_state_test.dir/color_state_test.cc.o.d"
  "color_state_test"
  "color_state_test.pdb"
  "color_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/color_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
