file(REMOVE_RECURSE
  "CMakeFiles/pending_test.dir/pending_test.cc.o"
  "CMakeFiles/pending_test.dir/pending_test.cc.o.d"
  "pending_test"
  "pending_test.pdb"
  "pending_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pending_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
