# Empty compiler generated dependencies file for pending_test.
# This may be replaced when dependencies are built.
