file(REMOVE_RECURSE
  "CMakeFiles/par_edf_test.dir/par_edf_test.cc.o"
  "CMakeFiles/par_edf_test.dir/par_edf_test.cc.o.d"
  "par_edf_test"
  "par_edf_test.pdb"
  "par_edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/par_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
