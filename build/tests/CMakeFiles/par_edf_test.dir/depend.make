# Empty dependencies file for par_edf_test.
# This may be replaced when dependencies are built.
