# Empty compiler generated dependencies file for dlru_edf_test.
# This may be replaced when dependencies are built.
