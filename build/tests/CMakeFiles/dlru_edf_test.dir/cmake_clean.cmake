file(REMOVE_RECURSE
  "CMakeFiles/dlru_edf_test.dir/dlru_edf_test.cc.o"
  "CMakeFiles/dlru_edf_test.dir/dlru_edf_test.cc.o.d"
  "dlru_edf_test"
  "dlru_edf_test.pdb"
  "dlru_edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlru_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
