file(REMOVE_RECURSE
  "CMakeFiles/schedule_validator_test.dir/schedule_validator_test.cc.o"
  "CMakeFiles/schedule_validator_test.dir/schedule_validator_test.cc.o.d"
  "schedule_validator_test"
  "schedule_validator_test.pdb"
  "schedule_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
