file(REMOVE_RECURSE
  "CMakeFiles/ranked_cache_test.dir/ranked_cache_test.cc.o"
  "CMakeFiles/ranked_cache_test.dir/ranked_cache_test.cc.o.d"
  "ranked_cache_test"
  "ranked_cache_test.pdb"
  "ranked_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranked_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
