# Empty compiler generated dependencies file for ranked_cache_test.
# This may be replaced when dependencies are built.
