file(REMOVE_RECURSE
  "CMakeFiles/seq_edf_test.dir/seq_edf_test.cc.o"
  "CMakeFiles/seq_edf_test.dir/seq_edf_test.cc.o.d"
  "seq_edf_test"
  "seq_edf_test.pdb"
  "seq_edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
