# Empty dependencies file for seq_edf_test.
# This may be replaced when dependencies are built.
