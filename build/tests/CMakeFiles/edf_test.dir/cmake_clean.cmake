file(REMOVE_RECURSE
  "CMakeFiles/edf_test.dir/edf_test.cc.o"
  "CMakeFiles/edf_test.dir/edf_test.cc.o.d"
  "edf_test"
  "edf_test.pdb"
  "edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
