# Empty compiler generated dependencies file for varbatch_test.
# This may be replaced when dependencies are built.
