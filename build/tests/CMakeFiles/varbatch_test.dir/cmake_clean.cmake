file(REMOVE_RECURSE
  "CMakeFiles/varbatch_test.dir/varbatch_test.cc.o"
  "CMakeFiles/varbatch_test.dir/varbatch_test.cc.o.d"
  "varbatch_test"
  "varbatch_test.pdb"
  "varbatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/varbatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
