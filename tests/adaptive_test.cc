// Tests for algs/adaptive: the ARC-inspired self-tuning split extension.
#include <gtest/gtest.h>

#include "algs/adaptive.h"
#include "core/validator.h"
#include "sim/runner.h"
#include "util/check.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

EngineOptions section3_options(int n, bool record = false) {
  EngineOptions options;
  options.num_resources = n;
  options.replication = 2;
  options.record_schedule = record;
  return options;
}

/// Exposes the final fraction for assertions.
class InspectableAdaptive : public AdaptiveSplitPolicy {
 public:
  using AdaptiveSplitPolicy::AdaptiveSplitPolicy;
  [[nodiscard]] double fraction() const { return lru_fraction(); }
};

TEST(Adaptive, SchedulesAreValid) {
  RandomBatchedParams params;
  params.seed = 4;
  params.horizon = 512;
  const Instance inst = make_random_batched(params);
  Schedule schedule;
  const RunRecord r = run_algorithm(inst, "adaptive", 8, &schedule);
  EXPECT_EQ(validate_or_throw(inst, schedule), r.cost);
}

TEST(Adaptive, RegisteredWithStats) {
  RandomBatchedParams params;
  params.seed = 5;
  params.horizon = 512;
  const Instance inst = make_random_batched(params);
  const RunRecord r = run_algorithm(inst, "adaptive", 8);
  bool saw_adaptations = false, saw_fraction = false;
  for (const auto& [key, value] : r.stats) {
    if (key == "adaptations") saw_adaptations = value >= 0;
    if (key == "final_lru_percent") {
      saw_fraction = value >= 0 && value < 100;
    }
  }
  EXPECT_TRUE(saw_adaptations);
  EXPECT_TRUE(saw_fraction);
}

TEST(Adaptive, DropPressureShrinksLruShare) {
  // Pure drop pressure, zero reconfigurations: a color whose TOTAL job
  // count stays below Delta never wraps its counter (the counter is only
  // reset at eligible epochs' ends), so nothing is ever cached and every
  // job drops.  The rule must walk the fraction to its floor.
  InstanceBuilder builder;
  builder.delta(2000);  // > 512 total jobs: never eligible
  const ColorId c = builder.add_color(4);
  for (Round t = 0; t < 1024; t += 4) builder.add_jobs(c, t, 2);
  const Instance inst = builder.build();

  InspectableAdaptive policy;
  (void)run_policy(inst, policy, section3_options(8));
  EXPECT_LT(policy.fraction(), 0.5);
  EXPECT_NEAR(policy.fraction(), 0.05, 1e-9);  // options default floor
}

TEST(Adaptive, ThrashPressureGrowsLruShare) {
  // Pure reconfiguration pressure, zero drops: three always-eligible
  // colors rotate through two cache slots, forcing one insertion per
  // block while every job is served.  The rule must grow the fraction.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  const ColorId c = builder.add_color(4);
  const ColorId pairs[][2] = {{a, b}, {b, c}, {c, a}};
  for (Round t = 0; t < 1024; t += 4) {
    const auto& pair = pairs[(t / 4) % 3];
    builder.add_jobs(pair[0], t, 4);
    builder.add_jobs(pair[1], t, 4);
  }
  const Instance inst = builder.build();

  InspectableAdaptive policy;
  const EngineResult r = run_policy(inst, policy, section3_options(4));
  EXPECT_EQ(r.cost.drops, 0) << "everything is servable by construction";
  EXPECT_GT(policy.fraction(), 0.5);
}

TEST(Adaptive, FractionStaysClamped) {
  AdaptiveSplitPolicy::Options options;
  options.min_fraction = 0.2;
  options.max_fraction = 0.6;
  options.step = 0.5;  // single step would overshoot without the clamp
  const AdversaryAInstance adv = make_adversary_a({.n = 8, .delta = 2});
  InspectableAdaptive policy(options);
  (void)run_policy(adv.instance, policy, section3_options(adv.params.n));
  EXPECT_GE(policy.fraction(), 0.2);
  EXPECT_LE(policy.fraction(), 0.6);
}

TEST(Adaptive, InvalidOptionsRejected) {
  {
    AdaptiveSplitPolicy::Options options;
    options.window = 0;
    EXPECT_THROW(AdaptiveSplitPolicy{options}, InputError);
  }
  {
    AdaptiveSplitPolicy::Options options;
    options.min_fraction = 0.8;
    options.max_fraction = 0.2;
    EXPECT_THROW(AdaptiveSplitPolicy{options}, InputError);
  }
  {
    AdaptiveSplitPolicy::Options options;
    options.max_fraction = 1.0;  // 1.0 would leave no eviction victim
    EXPECT_THROW(AdaptiveSplitPolicy{options}, InputError);
  }
}

TEST(Adaptive, NoWorseThanFixedSplitOnBothAdversaries) {
  // The extension must not break the headline behaviour: bounded on both
  // killers (within a small factor of the fixed-split result).
  {
    const AdversaryAInstance adv =
        make_adversary_a({.n = 8, .delta = 2, .j = 6, .k = 8});
    const Cost fixed =
        run_algorithm(adv.instance, "dlru-edf", 8).cost.total();
    const Cost adaptive =
        run_algorithm(adv.instance, "adaptive", 8).cost.total();
    EXPECT_LE(adaptive, 3 * fixed);
  }
  {
    const AdversaryBInstance adv = make_adversary_b({.n = 8, .j = 4, .k = 7});
    const Cost fixed =
        run_algorithm(adv.instance, "dlru-edf", 8).cost.total();
    const Cost adaptive =
        run_algorithm(adv.instance, "adaptive", 8).cost.total();
    EXPECT_LE(adaptive, 3 * fixed);
  }
}

TEST(DLruEdfSplit, FractionZeroActsLikeEdfOnAppendixB) {
  // lru_fraction 0 removes the recency half; on the EDF killer the cost
  // must blow up relative to the paper's 0.5 split.
  const AdversaryBInstance adv = make_adversary_b({.n = 8, .j = 4, .k = 8});
  DLruEdfPolicy pure_edfish(0.0);
  const Cost edfish =
      run_policy(adv.instance, pure_edfish, section3_options(8))
          .cost.total();
  DLruEdfPolicy paper_split(0.5);
  const Cost split =
      run_policy(adv.instance, paper_split, section3_options(8))
          .cost.total();
  EXPECT_GT(edfish, 2 * split);
}

TEST(DLruEdfSplit, OneEdfSlotSufficesOnAppendixA) {
  // Ablation insight: on the recency killer even a 3:1 LRU-heavy split
  // stays bounded, because a SINGLE deadline-driven slot is enough to
  // drain the long-term backlog — it is the existence of the EDF half,
  // not its size, that defeats Appendix A.  (Pure dLRU, i.e. no EDF slot
  // at all, is unbounded there: see dlru_test.cc.)
  const AdversaryAInstance adv =
      make_adversary_a({.n = 8, .delta = 2, .j = 6, .k = 9});
  const Cost long_jobs = adv.instance.jobs_of_color(adv.long_color);
  for (const double fraction : {0.25, 0.5, 0.75, 0.9}) {
    DLruEdfPolicy policy(fraction);
    const EngineResult r =
        run_policy(adv.instance, policy, section3_options(8));
    EXPECT_LT(r.cost.drops, long_jobs / 4) << "fraction " << fraction;
  }
}

}  // namespace
}  // namespace rrs
