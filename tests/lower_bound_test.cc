// Tests for offline/lower_bound: certified lower bounds on OPT.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(LowerBound, ConfigureOrDropSumsPerColorMinima) {
  InstanceBuilder builder;
  builder.delta(10);
  const ColorId small = builder.add_color(4);   // 3 jobs < Delta
  const ColorId large = builder.add_color(4);   // 25 jobs > Delta
  builder.add_jobs(small, 0, 3);
  builder.add_jobs(large, 0, 4).add_jobs(large, 4, 4);
  builder.add_jobs(large, 8, 4).add_jobs(large, 12, 4);
  builder.add_jobs(large, 16, 4).add_jobs(large, 20, 4);
  builder.add_jobs(large, 24, 1);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_EQ(lb.configure_or_drop, 3 + 10);
}

TEST(LowerBound, CapacityDetectsOverload) {
  // 10 jobs must finish within 2 rounds on m = 1: at least 8 drop.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 10);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_GE(lb.capacity, 8);
}

TEST(LowerBound, CapacityScalesWithM) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 10);
  const Instance inst = builder.build();
  EXPECT_GT(offline_lower_bound(inst, 1).capacity,
            offline_lower_bound(inst, 4).capacity);
}

TEST(LowerBound, CapacitySumsDisjointWindows) {
  // Two overloaded windows far apart: the per-scale sum must count both.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 6);    // 4 forced drops at m = 1
  builder.add_jobs(c, 64, 6);   // 4 more
  const Instance inst = builder.build();
  EXPECT_GE(offline_lower_bound(inst, 1).capacity, 8);
}

TEST(LowerBound, ZeroForEmptyInstance) {
  InstanceBuilder builder;
  builder.add_color(4);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_EQ(lb.best(), 0);
}

TEST(LowerBound, RejectsBadM) {
  InstanceBuilder builder;
  builder.add_color(4);
  const Instance inst = builder.build();
  EXPECT_THROW((void)offline_lower_bound(inst, 0), InputError);
}

TEST(LowerBound, NeverExceedsExactOptimum) {
  // The defining soundness property, cross-checked against the DP on a
  // grid of small random instances.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    for (const int m : {1, 2}) {
      const Cost opt = optimal_offline_cost(inst, m);
      const LowerBound lb = offline_lower_bound(inst, m);
      EXPECT_LE(lb.best(), opt) << "seed " << seed << " m " << m;
    }
  }
}

TEST(LowerBound, BestTakesMax) {
  LowerBound lb;
  lb.configure_or_drop = 5;
  lb.capacity = 9;
  EXPECT_EQ(lb.best(), 9);
  lb.capacity = 2;
  EXPECT_EQ(lb.best(), 5);
  lb.lagrangian = 11;
  EXPECT_EQ(lb.best(), 11);
}

TEST(LowerBound, ConfigureOrDropUsesCheapestIncomingEdgeUnderMatrixDelta) {
  // With a transition matrix, a color's "configure" arm must price at its
  // cheapest incoming edge (including cold), not the scalar Delta.
  InstanceBuilder builder;
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.reconfig_cost(a, 7).reconfig_cost(b, 9);
  builder.transition_cost(a, b, 2).transition_cost(b, a, 8);
  builder.add_jobs(a, 0, 3).add_jobs(b, 0, 3);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 2);
  // min_incoming(a) = min(cold 7, b->a 8) = 7 > 3 jobs -> drop arm 3;
  // min_incoming(b) = min(cold 9, a->b 2) = 2 < 3 jobs -> configure arm 2.
  EXPECT_EQ(lb.configure_or_drop, 3 + 2);
}

TEST(LowerBound, CapacityAccountsForJobLengths) {
  // 4 jobs of length 3 demand 12 execution units within a 4-round window
  // on m = 1: at least ceil((12 - 4) / 3) = 3 charges of w_min = 1 drop.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(4, 1, 3);
  builder.add_jobs(c, 0, 4);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_GE(lb.capacity, 3);
  EXPECT_LE(lb.best(), optimal_offline_cost(inst, 1));
}

TEST(LowerBound, SoundnessUnderMatrixDeltaAndLengths) {
  // LB soundness on instances mixing matrix transition costs with
  // multi-round job lengths, cross-checked against the DP.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    Rng rng(seed);
    InstanceBuilder builder;
    std::vector<ColorId> ids;
    for (int c = 0; c < 3; ++c) {
      ids.push_back(builder.add_color(3 + rng.uniform(0, 2),
                                      1 + rng.uniform(0, 2),
                                      1 + rng.uniform(0, 2)));
    }
    for (const ColorId c : ids) builder.reconfig_cost(c, 2 + rng.uniform(0, 3));
    for (const ColorId from : ids) {
      for (const ColorId to : ids) {
        if (from != to) builder.transition_cost(from, to, 1 + rng.uniform(0, 4));
      }
    }
    for (int i = 0; i < 4; ++i) {
      builder.add_jobs(ids[static_cast<std::size_t>(rng.uniform(0, 2))],
                       rng.uniform(0, 10), 1 + rng.uniform(0, 2));
    }
    const Instance inst = builder.build();
    for (const int m : {1, 2}) {
      const Cost opt = optimal_offline_cost(inst, m);
      EXPECT_LE(offline_lower_bound(inst, m).best(), opt)
          << "seed " << seed << " m " << m;
      EXPECT_LE(offline_lower_bound_full(inst, m).best(), opt)
          << "seed " << seed << " m " << m;
    }
  }
}

TEST(Lagrangian, DominatesLb1FromFirstIteration) {
  // The lambda = 0 starting point evaluates to exactly LB1, so even a
  // single iteration can never fall below the configure-or-drop bound;
  // zero iterations is invalid input.
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 4).add_jobs(b, 0, 4);
  const Instance inst = builder.build();
  LagrangianOptions options;
  options.iterations = 0;
  EXPECT_THROW((void)lagrangian_lower_bound(inst, 1, options), InputError);
  options.iterations = 1;
  EXPECT_GE(lagrangian_lower_bound(inst, 1, options),
            offline_lower_bound(inst, 1).configure_or_drop);
}

TEST(Lagrangian, UpperBoundHintDoesNotBreakSoundness) {
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 4).add_jobs(b, 0, 4);
  const Instance inst = builder.build();
  const Cost opt = optimal_offline_cost(inst, 1);  // == 7
  for (const Cost hint : {Cost{1}, Cost{7}, Cost{100}}) {
    LagrangianOptions options;
    options.upper_bound_hint = hint;
    EXPECT_LE(lagrangian_lower_bound(inst, 1, options), opt)
        << "hint " << hint;
  }
}

TEST(Lagrangian, RespectsOptOnRandomBatched) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    for (const int m : {1, 2}) {
      const Cost opt = optimal_offline_cost(inst, m);
      const LowerBound lb = offline_lower_bound_full(inst, m);
      EXPECT_LE(lb.lagrangian, opt) << "seed " << seed << " m " << m;
      EXPECT_GE(lb.lagrangian,
                std::max(lb.configure_or_drop, lb.capacity));
    }
  }
}

TEST(SuffixOracle, AdmissibleAndTightAfterArrivals) {
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 4).add_jobs(b, 0, 4);
  const Instance inst = builder.build();
  const SuffixBoundOracle oracle(inst, 1);
  const std::vector<ColorId> cache(1, kBlack);

  // Root (empty profile): admissible, never above OPT = 7.
  const offdp::Profile empty;
  EXPECT_LE(oracle.bound(0, cache, empty), optimal_offline_cost(inst, 1));

  // After ingesting the round-0 burst the per-color pending weight is
  // visible, so the configure-or-drop arm prices both colors: h >= 6.
  offdp::Profile profile(static_cast<std::size_t>(inst.num_colors()));
  offdp::add_arrivals(profile, inst.arrivals_in_round(0));
  const Cost h1 = oracle.bound(1, cache, profile);
  EXPECT_GE(h1, 6);
  EXPECT_LE(h1, optimal_offline_cost(inst, 1));

  // Past the horizon only the pending weight itself remains.
  EXPECT_EQ(oracle.bound(inst.horizon(), cache, empty), 0);
}

}  // namespace
}  // namespace rrs
