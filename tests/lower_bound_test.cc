// Tests for offline/lower_bound: certified lower bounds on OPT.
#include <gtest/gtest.h>

#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(LowerBound, ConfigureOrDropSumsPerColorMinima) {
  InstanceBuilder builder;
  builder.delta(10);
  const ColorId small = builder.add_color(4);   // 3 jobs < Delta
  const ColorId large = builder.add_color(4);   // 25 jobs > Delta
  builder.add_jobs(small, 0, 3);
  builder.add_jobs(large, 0, 4).add_jobs(large, 4, 4);
  builder.add_jobs(large, 8, 4).add_jobs(large, 12, 4);
  builder.add_jobs(large, 16, 4).add_jobs(large, 20, 4);
  builder.add_jobs(large, 24, 1);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_EQ(lb.configure_or_drop, 3 + 10);
}

TEST(LowerBound, CapacityDetectsOverload) {
  // 10 jobs must finish within 2 rounds on m = 1: at least 8 drop.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 10);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_GE(lb.capacity, 8);
}

TEST(LowerBound, CapacityScalesWithM) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 10);
  const Instance inst = builder.build();
  EXPECT_GT(offline_lower_bound(inst, 1).capacity,
            offline_lower_bound(inst, 4).capacity);
}

TEST(LowerBound, CapacitySumsDisjointWindows) {
  // Two overloaded windows far apart: the per-scale sum must count both.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 6);    // 4 forced drops at m = 1
  builder.add_jobs(c, 64, 6);   // 4 more
  const Instance inst = builder.build();
  EXPECT_GE(offline_lower_bound(inst, 1).capacity, 8);
}

TEST(LowerBound, ZeroForEmptyInstance) {
  InstanceBuilder builder;
  builder.add_color(4);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_EQ(lb.best(), 0);
}

TEST(LowerBound, RejectsBadM) {
  InstanceBuilder builder;
  builder.add_color(4);
  const Instance inst = builder.build();
  EXPECT_THROW((void)offline_lower_bound(inst, 0), InputError);
}

TEST(LowerBound, NeverExceedsExactOptimum) {
  // The defining soundness property, cross-checked against the DP on a
  // grid of small random instances.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    for (const int m : {1, 2}) {
      const Cost opt = optimal_offline_cost(inst, m);
      const LowerBound lb = offline_lower_bound(inst, m);
      EXPECT_LE(lb.best(), opt) << "seed " << seed << " m " << m;
    }
  }
}

TEST(LowerBound, BestTakesMax) {
  LowerBound lb;
  lb.configure_or_drop = 5;
  lb.capacity = 9;
  EXPECT_EQ(lb.best(), 9);
  lb.capacity = 2;
  EXPECT_EQ(lb.best(), 5);
}

}  // namespace
}  // namespace rrs
