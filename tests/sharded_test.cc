// Sharded streaming execution: the color-partitioned multi-engine path.
//
// Three layers are covered.  ShardPlan: the partition covers every color
// exactly once, resources split proportionally in replication units, and
// plans are deterministic.  ShardedSource: the union of the per-shard
// streams is exactly the underlying stream (ids preserved, colors
// relabeled densely per shard).  run_streaming_sharded: with K = 1 the
// merged record is bit-identical to run_streaming for every engine
// algorithm x workload family x seed, and fixed (seed, K > 1) runs are
// deterministic across repetitions with exactly additive costs.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/shard_plan.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"
#include "workload/sharded_source.h"

namespace rrs {
namespace {

const char* const kStreamingAlgorithms[] = {
    "dlru", "edf", "dlru-edf", "adaptive", "seq-edf", "ds-seq-edf",
};

const char* const kFamilies[] = {
    "random-batched", "poisson", "flash-crowd", "datacenter",
};

/// Fresh streaming source for (family, seed); mirrors streaming_test.
std::unique_ptr<ArrivalSource> make_source(const std::string& family,
                                           std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<RandomBatchedSource>(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<PoissonSource>(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.spike_start = 128;
    params.spike_end = 192;
    params.horizon = 512;
    params.seed = seed;
    return std::make_unique<FlashCrowdSource>(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 1024;
    params.seed = seed;
    return std::make_unique<DatacenterSource>(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return nullptr;
}

// --- ShardPlan -------------------------------------------------------------

TEST(ShardPlanTest, PartitionCoversEveryColorExactlyOnce) {
  const ShardPlan plan = make_shard_plan(17, 4, 16, 2);
  ASSERT_EQ(plan.num_shards, 4);
  ASSERT_EQ(plan.num_colors(), 17);
  std::set<ColorId> seen;
  for (int s = 0; s < plan.num_shards; ++s) {
    const auto& colors = plan.shard_colors[static_cast<std::size_t>(s)];
    EXPECT_FALSE(colors.empty());
    EXPECT_TRUE(std::is_sorted(colors.begin(), colors.end()));
    for (const ColorId c : colors) {
      EXPECT_TRUE(seen.insert(c).second) << "color " << c << " duplicated";
      EXPECT_EQ(plan.shard_of_color[static_cast<std::size_t>(c)], s);
    }
  }
  EXPECT_EQ(seen.size(), 17u);
}

TEST(ShardPlanTest, ResourcesSplitInReplicationUnitsSummingToBudget) {
  const ShardPlan plan = make_shard_plan(12, 3, 16, 2);
  EXPECT_EQ(plan.total_resources(), 16);
  for (const int r : plan.shard_resources) {
    EXPECT_GE(r, 2);
    EXPECT_EQ(r % 2, 0);
  }
}

TEST(ShardPlanTest, SingleShardIsTheIdentity) {
  const ShardPlan plan = make_shard_plan(8, 1, 8, 2);
  ASSERT_EQ(plan.shard_colors.size(), 1u);
  for (ColorId c = 0; c < 8; ++c) {
    EXPECT_EQ(plan.shard_colors[0][static_cast<std::size_t>(c)], c);
    EXPECT_EQ(plan.shard_of_color[static_cast<std::size_t>(c)], 0);
  }
  EXPECT_EQ(plan.shard_resources[0], 8);
}

TEST(ShardPlanTest, WeightedPlanGivesHeavyShardMoreResources) {
  // Color 0 carries almost all load; its shard must get most resources.
  std::vector<double> weights(8, 1.0);
  weights[0] = 100.0;
  const ShardPlan plan = make_shard_plan(8, 2, 16, 2, weights);
  const int heavy = plan.shard_of_color[0];
  const int light = 1 - heavy;
  EXPECT_GT(plan.shard_resources[static_cast<std::size_t>(heavy)],
            plan.shard_resources[static_cast<std::size_t>(light)]);
  EXPECT_EQ(plan.total_resources(), 16);
}

TEST(ShardPlanTest, HeaviestColorsSpreadAcrossShards) {
  // Two dominant colors must not land on the same shard under LPT.
  std::vector<double> weights = {50.0, 50.0, 1.0, 1.0, 1.0, 1.0};
  const ShardPlan plan = make_shard_plan(6, 2, 8, 2, weights);
  EXPECT_NE(plan.shard_of_color[0], plan.shard_of_color[1]);
}

TEST(ShardPlanTest, DeterministicAcrossRepetitions) {
  std::vector<double> weights;
  {
    const auto probe = make_source("poisson", 42);
    weights = observe_color_weights(*probe, 128);
  }
  const ColorId colors = static_cast<ColorId>(weights.size());
  const ShardPlan a = make_shard_plan(colors, 4, 16, 2, weights);
  const ShardPlan b = make_shard_plan(colors, 4, 16, 2, weights);
  EXPECT_EQ(a.shard_of_color, b.shard_of_color);
  EXPECT_EQ(a.shard_resources, b.shard_resources);
  EXPECT_EQ(a.shard_colors, b.shard_colors);
}

TEST(ShardPlanTest, RejectsInvalidShapes) {
  EXPECT_THROW((void)make_shard_plan(4, 5, 16, 2), InputError);   // K > colors
  EXPECT_THROW((void)make_shard_plan(8, 3, 4, 2), InputError);    // units < K
  EXPECT_THROW((void)make_shard_plan(8, 2, 7, 2), InputError);    // indivisible
  EXPECT_THROW((void)make_shard_plan(0, 1, 8, 2), InputError);    // no colors
  const std::vector<double> bad = {1.0, 0.0};
  EXPECT_THROW((void)make_shard_plan(2, 1, 8, 2, bad), InputError);
}

TEST(ShardPlanTest, ObservedWeightsCountArrivalsPlusOne) {
  const auto probe = make_source("random-batched", 3);
  const auto reference = make_source("random-batched", 3);
  const std::vector<double> weights = observe_color_weights(*probe, 64);
  std::vector<double> expected(
      static_cast<std::size_t>(reference->num_colors()), 1.0);
  for (Round k = 0; k < 64; ++k) {
    for (const Job& job : reference->arrivals_in_round(k)) {
      expected[static_cast<std::size_t>(job.color)] += 1.0;
    }
  }
  EXPECT_EQ(weights, expected);
}

// --- ShardedSource ---------------------------------------------------------

TEST(ShardedSourceTest, ShardStreamsPartitionTheUnderlyingStream) {
  const Round rounds = 128;
  const auto underlying = make_source("poisson", 9);
  const ShardPlan plan =
      make_shard_plan(underlying->num_colors(), 3, 8, 2);

  // Reference pull: job ids per (round, shard), in order.
  const auto reference = make_source("poisson", 9);
  std::vector<std::vector<std::vector<Job>>> expected(
      static_cast<std::size_t>(plan.num_shards));
  for (auto& per_round : expected) {
    per_round.resize(static_cast<std::size_t>(rounds));
  }
  for (Round k = 0; k < rounds; ++k) {
    for (const Job& job : reference->arrivals_in_round(k)) {
      const auto s =
          static_cast<std::size_t>(
              plan.shard_of_color[static_cast<std::size_t>(job.color)]);
      expected[s][static_cast<std::size_t>(k)].push_back(job);
    }
  }

  // Split pull, serially (backpressure off so one thread can walk shard 0
  // to the end before shard 1 starts).
  ShardedSourceOptions options;
  options.chunk_rounds = 16;
  options.backpressure = false;
  ShardedSource sharded(*underlying, plan, rounds, options);
  for (int s = 0; s < plan.num_shards; ++s) {
    ArrivalSource& stream = sharded.stream(s);
    EXPECT_EQ(stream.horizon(), rounds);
    EXPECT_EQ(stream.num_colors(),
              static_cast<ColorId>(
                  plan.shard_colors[static_cast<std::size_t>(s)].size()));
    for (Round k = 0; k < rounds; ++k) {
      const std::span<const Job> got = stream.arrivals_in_round(k);
      const auto& want =
          expected[static_cast<std::size_t>(s)][static_cast<std::size_t>(k)];
      ASSERT_EQ(got.size(), want.size()) << "shard " << s << " round " << k;
      for (std::size_t i = 0; i < want.size(); ++i) {
        // Global ids, arrival, and the per-color metadata survive the
        // split; the color is relabeled to the shard-local id.
        EXPECT_EQ(got[i].id, want[i].id);
        EXPECT_EQ(got[i].arrival, want[i].arrival);
        EXPECT_EQ(got[i].delay_bound, want[i].delay_bound);
        EXPECT_EQ(got[i].drop_cost, want[i].drop_cost);
        const ColorId global =
            plan.shard_colors[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(got[i].color)];
        EXPECT_EQ(global, want[i].color);
        EXPECT_EQ(stream.delay_bound(got[i].color), want[i].delay_bound);
        EXPECT_EQ(stream.drop_cost(got[i].color), want[i].drop_cost);
      }
    }
  }
}

TEST(ShardedSourceTest, SequentialPullEnforcedPerShard) {
  const auto underlying = make_source("poisson", 4);
  const ShardPlan plan = make_shard_plan(underlying->num_colors(), 2, 8, 2);
  ShardedSourceOptions options;
  options.backpressure = false;
  ShardedSource sharded(*underlying, plan, 64, options);
  (void)sharded.stream(0).arrivals_in_round(0);
  EXPECT_THROW((void)sharded.stream(0).arrivals_in_round(5), InputError);
}

// --- run_streaming_sharded -------------------------------------------------

using Cell = std::tuple<std::string, std::string, std::uint64_t>;

class SingleShardBitIdentity : public ::testing::TestWithParam<Cell> {};

TEST_P(SingleShardBitIdentity, MatchesRunStreaming) {
  const auto& [algorithm, family, seed] = GetParam();

  const auto plain_source = make_source(family, seed);
  const StreamRunRecord plain =
      run_streaming(*plain_source, algorithm, 8);

  const auto sharded_source = make_source(family, seed);
  const ShardedRunRecord sharded =
      run_streaming_sharded(*sharded_source, algorithm, 8, 1);

  EXPECT_EQ(sharded.merged.cost, plain.cost) << family << " seed " << seed;
  EXPECT_EQ(sharded.merged.executed, plain.executed);
  EXPECT_EQ(sharded.merged.arrived, plain.arrived);
  EXPECT_EQ(sharded.merged.rounds, plain.rounds);
  EXPECT_EQ(sharded.merged.peak_pending, plain.peak_pending);
  EXPECT_EQ(sharded.merged.stats, plain.stats);
  ASSERT_EQ(sharded.shards.size(), 1u);
  EXPECT_EQ(sharded.shards[0].cost, plain.cost);
  EXPECT_EQ(sharded.shards[0].n, 8);
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const char* const algorithm : kStreamingAlgorithms) {
    for (const char* const family : kFamilies) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cells.emplace_back(algorithm, family, seed);
      }
    }
  }
  return cells;
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     "_s" + std::to_string(std::get<2>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SingleShardBitIdentity,
                         ::testing::ValuesIn(all_cells()), cell_name);

/// Fields of a sharded run that must be reproducible (seconds is wall
/// clock and is deliberately excluded).
struct Reproducible {
  CostBreakdown cost;
  std::int64_t executed;
  std::int64_t arrived;
  Round rounds;
  std::int64_t peak_pending;
  std::vector<std::pair<std::string, std::int64_t>> stats;

  friend bool operator==(const Reproducible&, const Reproducible&) = default;
};

Reproducible reproducible(const StreamRunRecord& record) {
  return {record.cost,   record.executed,     record.arrived,
          record.rounds, record.peak_pending, record.stats};
}

TEST(ShardedRunTest, FixedSeedAndShardCountIsDeterministic) {
  for (const int shards : {2, 3}) {
    std::vector<std::vector<Reproducible>> runs;
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto source = make_source("random-batched", 7);
      const ShardedRunRecord record =
          run_streaming_sharded(*source, "dlru-edf", 16, shards);
      std::vector<Reproducible> fields;
      fields.push_back(reproducible(record.merged));
      for (const StreamRunRecord& shard : record.shards) {
        fields.push_back(reproducible(shard));
      }
      runs.push_back(std::move(fields));
    }
    EXPECT_EQ(runs[0], runs[1]) << shards << " shards";
    EXPECT_EQ(runs[0], runs[2]) << shards << " shards";
  }
}

TEST(ShardedRunTest, MergedRecordAggregatesShards) {
  const auto source = make_source("datacenter", 5);
  const ShardedRunRecord record =
      run_streaming_sharded(*source, "dlru-edf", 16, 4);
  ASSERT_EQ(record.shards.size(), 4u);
  EXPECT_EQ(record.plan.num_shards, 4);

  CostBreakdown cost_sum;
  std::int64_t executed = 0, arrived = 0, peak = 0;
  Round rounds = 0;
  int resources = 0;
  for (const StreamRunRecord& shard : record.shards) {
    cost_sum.reconfig_events += shard.cost.reconfig_events;
    cost_sum.reconfig_cost += shard.cost.reconfig_cost;
    cost_sum.drops += shard.cost.drops;
    executed += shard.executed;
    arrived += shard.arrived;
    peak += shard.peak_pending;
    rounds = std::max(rounds, shard.rounds);
    resources += shard.n;
  }
  EXPECT_EQ(record.merged.cost, cost_sum);
  EXPECT_EQ(record.merged.executed, executed);
  EXPECT_EQ(record.merged.arrived, arrived);
  EXPECT_EQ(record.merged.peak_pending, peak);
  EXPECT_EQ(record.merged.rounds, rounds);
  EXPECT_EQ(record.merged.n, 16);
  EXPECT_EQ(resources, 16);
  // Datacenter drop costs are weighted (> 1 per job), so `drops` is a
  // cost, not a count: conservation here is an inequality.
  EXPECT_GE(record.merged.executed + record.merged.cost.drops,
            record.merged.arrived);
  EXPECT_LE(record.merged.executed, record.merged.arrived);
}

TEST(ShardedRunTest, ShardCountsAgreeOnArrivals) {
  // The same stream split K ways always carries the same jobs.
  std::vector<std::int64_t> arrived;
  for (const int shards : {1, 2, 4}) {
    const auto source = make_source("flash-crowd", 11);
    const ShardedRunRecord record =
        run_streaming_sharded(*source, "dlru-edf", 16, shards);
    arrived.push_back(record.merged.arrived);
  }
  EXPECT_EQ(arrived[0], arrived[1]);
  EXPECT_EQ(arrived[0], arrived[2]);
}

TEST(ShardedRunTest, WeightedPlanRunsAndConserves) {
  std::vector<double> weights;
  {
    const auto probe = make_source("poisson", 13);
    weights = observe_color_weights(*probe, 128);
  }
  const auto source = make_source("poisson", 13);
  ShardedRunOptions options;
  options.color_weights = weights;
  const ShardedRunRecord record =
      run_streaming_sharded(*source, "dlru-edf", 8, 2, kInfiniteHorizon,
                            options);
  EXPECT_EQ(record.merged.executed + record.merged.cost.drops,
            record.merged.arrived);
  EXPECT_GT(record.merged.arrived, 0);
}

TEST(ShardedRunTest, InfiniteSourceNeedsMaxRounds) {
  PoissonParams params;
  params.horizon = kInfiniteHorizon;
  params.seed = 5;
  PoissonSource source(params);
  EXPECT_THROW((void)run_streaming_sharded(source, "dlru-edf", 8, 2),
               InputError);
}

TEST(ShardedRunTest, InfiniteSourceRunsWithMaxRounds) {
  PoissonParams params;
  params.horizon = kInfiniteHorizon;
  params.seed = 5;
  PoissonSource source(params);
  const ShardedRunRecord record =
      run_streaming_sharded(source, "dlru-edf", 8, 2, /*max_rounds=*/512);
  EXPECT_GE(record.merged.rounds, 512);
  EXPECT_GT(record.merged.arrived, 0);
  EXPECT_EQ(record.merged.executed + record.merged.cost.drops,
            record.merged.arrived);
}

TEST(ShardedRunTest, SeqEdfRunsUnreplicated) {
  // seq-edf uses replication 1, so the plan splits n into units of 1.
  const auto source = make_source("random-batched", 2);
  const ShardedRunRecord record =
      run_streaming_sharded(*source, "seq-edf", 4, 3);
  EXPECT_EQ(record.plan.resource_unit, 1);
  EXPECT_EQ(record.plan.total_resources(), 4);
  EXPECT_EQ(record.merged.executed + record.merged.cost.drops,
            record.merged.arrived);
}

TEST(ShardedRunTest, ZeroArrivalShardsMergeCleanly) {
  // Two colors, but every job belongs to one of them: the other shard
  // streams zero arrivals for the whole run and must still terminate and
  // merge as an all-zero record.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId hot = builder.add_color(8);
  (void)builder.add_color(8);  // cold color: declared, never requested
  builder.add_jobs(hot, 0, 12);
  const Instance inst = builder.build();
  MaterializedSource source(inst);

  const ShardedRunRecord record =
      run_streaming_sharded(source, "dlru-edf", 8, 2);
  ASSERT_EQ(record.shards.size(), 2u);
  int empty_shards = 0;
  for (const StreamRunRecord& shard : record.shards) {
    if (shard.arrived > 0) continue;
    ++empty_shards;
    EXPECT_EQ(shard.executed, 0);
    EXPECT_EQ(shard.cost, CostBreakdown{});
    EXPECT_EQ(shard.peak_pending, 0);
  }
  EXPECT_EQ(empty_shards, 1);
  EXPECT_EQ(record.merged.arrived, 12);
  EXPECT_EQ(record.merged.executed + record.merged.cost.drops, 12);
}

TEST(ShardedRunTest, SnapshotMergeIsAdditiveAndOrderIndependent) {
  // Property: merging the K per-shard final snapshots in ANY permutation
  // yields the merged observer's snapshot, and each per-shard snapshot is
  // bit-identical to a K=1 run of that shard's relabeled sub-workload —
  // so the merge is exactly additive, with no order sensitivity.
  constexpr int kShards = 3;
  Observer merged;
  std::vector<Observer> shard_store(kShards, Observer{});
  ShardedRunOptions options;
  options.observer = &merged;
  for (Observer& obs : shard_store) options.shard_observers.push_back(&obs);

  const auto source = make_source("poisson", 21);
  const Round arrival_end = source->horizon();
  const ShardedRunRecord record = run_streaming_sharded(
      *source, "dlru-edf", 24, kShards, kInfiniteHorizon, options);

  // Every permutation of the per-shard snapshots merges to the same total.
  std::vector<std::size_t> order = {0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    Snapshot folded;
    for (const std::size_t s : order) {
      merge_into(folded, shard_store[s].final_snapshot);
    }
    EXPECT_EQ(folded, merged.final_snapshot)
        << "permutation " << order[0] << order[1] << order[2];
  } while (std::next_permutation(order.begin(), order.end()));

  // Each shard's snapshot equals the K=1 run of the same relabeled
  // sub-workload (the partition makes shards fully independent).
  const auto resplit_source = make_source("poisson", 21);
  ShardedSourceOptions split_options;
  split_options.backpressure = false;
  ShardedSource resplit(*resplit_source, record.plan, arrival_end,
                        split_options);
  for (int s = 0; s < kShards; ++s) {
    Observer solo;
    ArrivalSource& stream = resplit.stream(s);
    (void)run_streaming(
        stream, "dlru-edf",
        record.plan.shard_resources[static_cast<std::size_t>(s)],
        kInfiniteHorizon, nullptr, false, &solo);
    EXPECT_EQ(solo.final_snapshot,
              shard_store[static_cast<std::size_t>(s)].final_snapshot)
        << "shard " << s;
  }
}

TEST(ShardedRunTest, MergedObserverMatchesMergedRecord) {
  Observer merged;
  ShardedRunOptions options;
  options.observer = &merged;
  const auto source = make_source("datacenter", 5);
  const ShardedRunRecord record = run_streaming_sharded(
      *source, "dlru-edf", 16, 4, kInfiniteHorizon, options);
  EXPECT_EQ(merged.stats.arrived(), record.merged.arrived);
  EXPECT_EQ(merged.stats.executed(), record.merged.executed);
  EXPECT_EQ(merged.stats.drop_weight(), record.merged.cost.drops);
  EXPECT_EQ(merged.stats.reconfig_events(),
            record.merged.cost.reconfig_events);
  EXPECT_EQ(merged.final_snapshot.round, record.merged.rounds);
  EXPECT_EQ(merged.final_snapshot.pending, 0);
}

// --- non-uniform cost models across shards ---------------------------------

/// A contended instance with non-uniform weights, lengths > 1, per-color
/// cold prices, and warm discounts — so shard engines charge through the
/// restricted matrix, not the scalar fast path.
Instance make_nonuniform_instance() {
  InstanceBuilder builder;
  builder.delta(4);
  std::vector<ColorId> colors;
  for (int c = 0; c < 9; ++c) {
    colors.push_back(
        builder.add_color(/*d=*/4 << (c % 3), /*drop_cost=*/1 + (c % 4),
                          /*length=*/1 + (c % 3)));
  }
  for (const ColorId c : colors) {
    builder.reconfig_cost(c, 2 + static_cast<Cost>(c % 5));
  }
  builder.transition_cost(colors[0], colors[1], 1);
  builder.transition_cost(colors[1], colors[0], 0);
  builder.transition_cost(colors[3], colors[4], 2);
  builder.transition_cost(colors[7], colors[8], 1);
  for (Round t = 0; t < 256; ++t) {
    for (const ColorId c : colors) {
      if (t % (2 + static_cast<Round>(c % 4)) == 0) builder.add_jobs(c, t, 2);
    }
  }
  return builder.build();
}

TEST(ShardedNonUniform, SingleShardBitIdenticalWithLengthsAndMatrixDelta) {
  const Instance instance = make_nonuniform_instance();
  ASSERT_EQ(instance.cost_model().tier(), CostModel::Tier::kMatrix);
  ASSERT_FALSE(instance.unit_lengths());
  for (const std::string algorithm :
       {"dlru", "edf", "dlru-edf", "adaptive", "seq-edf", "ds-seq-edf"}) {
    SCOPED_TRACE(algorithm);
    MaterializedSource plain_source(instance);
    const StreamRunRecord plain = run_streaming(plain_source, algorithm, 8);

    MaterializedSource sharded_source(instance);
    const ShardedRunRecord sharded =
        run_streaming_sharded(sharded_source, algorithm, 8, 1);
    EXPECT_EQ(sharded.merged.cost, plain.cost);
    EXPECT_EQ(sharded.merged.executed, plain.executed);
    EXPECT_EQ(sharded.merged.work_units, plain.work_units);
    EXPECT_EQ(sharded.merged.arrived, plain.arrived);
    EXPECT_EQ(sharded.merged.rounds, plain.rounds);
    EXPECT_EQ(sharded.merged.peak_pending, plain.peak_pending);
    EXPECT_EQ(sharded.merged.stats, plain.stats);
    EXPECT_GT(plain.work_units, plain.executed)
        << "lengths > 1 must leave partial units behind";
  }
}

TEST(ShardedNonUniform, MergedCostsExactlyAdditiveUnderMatrixDelta) {
  const Instance instance = make_nonuniform_instance();
  MaterializedSource source(instance);
  const ShardedRunRecord record =
      run_streaming_sharded(source, "dlru-edf", 12, 3);
  ASSERT_EQ(record.shards.size(), 3u);

  CostBreakdown cost_sum;
  std::int64_t executed = 0, work_units = 0, arrived = 0;
  for (const StreamRunRecord& shard : record.shards) {
    cost_sum.reconfig_events += shard.cost.reconfig_events;
    cost_sum.reconfig_cost += shard.cost.reconfig_cost;
    cost_sum.drops += shard.cost.drops;
    cost_sum.churn_reconfigs += shard.cost.churn_reconfigs;
    executed += shard.executed;
    work_units += shard.work_units;
    arrived += shard.arrived;
  }
  EXPECT_EQ(record.merged.cost, cost_sum);
  EXPECT_EQ(record.merged.executed, executed);
  EXPECT_EQ(record.merged.work_units, work_units);
  EXPECT_EQ(record.merged.arrived, arrived);
  // Warm discounts make per-event prices vary: the merged reconfig cost
  // cannot be events * Delta here.
  EXPECT_NE(record.merged.cost.reconfig_cost,
            record.merged.cost.reconfig_events * instance.delta());

  // Determinism across repetitions.
  MaterializedSource source2(instance);
  const ShardedRunRecord again =
      run_streaming_sharded(source2, "dlru-edf", 12, 3);
  EXPECT_EQ(again.merged.cost, record.merged.cost);
  EXPECT_EQ(again.merged.work_units, record.merged.work_units);
}

TEST(ShardedRunTest, RejectsMismatchedShardObserverCount) {
  Observer only_one;
  ShardedRunOptions options;
  options.shard_observers = {&only_one};
  const auto source = make_source("poisson", 1);
  EXPECT_THROW((void)run_streaming_sharded(*source, "dlru-edf", 8, 2,
                                           kInfiniteHorizon, options),
               InputError);
}

TEST(ShardedRunTest, RejectsUnknownAlgorithmAndBadShardCounts) {
  const auto source = make_source("poisson", 1);
  EXPECT_THROW(
      (void)run_streaming_sharded(*source, "no-such-algorithm", 8, 2),
      InputError);
  const auto source2 = make_source("poisson", 1);
  EXPECT_THROW((void)run_streaming_sharded(*source2, "dlru-edf", 8, 0),
               InputError);
  const auto source3 = make_source("poisson", 1);
  // 8 resources at dLRU-EDF's granularity of 4 hold 2 blocks; 5 shards
  // cannot fit.
  EXPECT_THROW((void)run_streaming_sharded(*source3, "dlru-edf", 8, 5),
               InputError);
}

}  // namespace
}  // namespace rrs
