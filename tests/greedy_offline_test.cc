// Tests for offline/greedy_offline: the demand-greedy OPT upper bounds.
#include <gtest/gtest.h>

#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(DemandGreedy, ServesSingleBacklog) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId c = builder.add_color(8);
  builder.add_jobs(c, 0, 8);
  const Instance inst = builder.build();
  const EngineResult r = run_demand_greedy(inst, 1);
  EXPECT_EQ(r.cost.drops, 0);
  EXPECT_EQ(r.cost.reconfig_cost, 2);
}

TEST(DemandGreedy, SkipSmallColorsAvoidsWastedConfigs) {
  InstanceBuilder builder;
  builder.delta(10);
  const ColorId tiny = builder.add_color(4);
  builder.add_jobs(tiny, 0, 2);  // 2 < Delta: cheaper to drop
  const Instance inst = builder.build();

  DemandGreedyParams skip;
  skip.skip_small_colors = true;
  EXPECT_EQ(run_demand_greedy(inst, 1, skip).cost.total(), 2);

  DemandGreedyParams eager;
  eager.skip_small_colors = false;
  EXPECT_EQ(run_demand_greedy(inst, 1, eager).cost.total(), 10);
}

TEST(DemandGreedy, HysteresisPreventsFlipFlop) {
  // Two colors with near-equal small backlogs: with threshold Delta the
  // incumbent is kept instead of ping-ponging.
  InstanceBuilder builder;
  builder.delta(6);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  for (Round t = 0; t < 32; t += 4) {
    builder.add_jobs(a, t, 2);
    builder.add_jobs(b, t, 2);
  }
  const Instance inst = builder.build();
  DemandGreedyParams gated;
  gated.replace_idle_freely = false;
  const EngineResult r = run_demand_greedy(inst, 1, gated);
  // One configuration, then stick: reconfig cost exactly Delta.
  EXPECT_EQ(r.cost.reconfig_cost, 6);
  // The eager variant thrashes here — the paper's Section 1 dilemma — and
  // the best-of family must therefore never exceed the gated variant.
  const EngineResult eager = run_demand_greedy(inst, 1);
  EXPECT_GT(eager.cost.reconfig_cost, r.cost.reconfig_cost);
  EXPECT_LE(best_offline_heuristic_cost(inst, 1), r.cost.total());
}

TEST(DemandGreedy, IdleIncumbentReplacedFreely) {
  InstanceBuilder builder;
  builder.delta(4);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 2);
  builder.add_jobs(b, 8, 2);
  const Instance inst = builder.build();
  const EngineResult r = run_demand_greedy(inst, 1);
  EXPECT_EQ(r.cost.drops, 0);  // a finishes, goes idle, b replaces it
}

TEST(BestHeuristic, UpperBoundsRespectBracket) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    const Cost opt = optimal_offline_cost(inst, 1);
    const Cost ub = best_offline_heuristic_cost(inst, 1);
    const Cost lb = offline_lower_bound(inst, 1).best();
    EXPECT_LE(lb, opt) << "seed " << seed;
    EXPECT_LE(opt, ub) << "seed " << seed;
  }
}

TEST(BestHeuristic, ReasonablyTightOnEasyInstances) {
  // On a single-color backlog the heuristic should match the optimum.
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId c = builder.add_color(8);
  builder.add_jobs(c, 0, 8).add_jobs(c, 8, 8);
  const Instance inst = builder.build();
  EXPECT_EQ(best_offline_heuristic_cost(inst, 1),
            optimal_offline_cost(inst, 1));
}

}  // namespace
}  // namespace rrs
