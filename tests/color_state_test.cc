// Unit tests for core/color_state: the Section 3.1 per-color state machine
// (counters, wraps, eligibility, timestamps, epoch/drop accounting).
#include <gtest/gtest.h>

#include "core/arrival_source.h"
#include "core/cache.h"
#include "core/color_state.h"
#include "core/instance.h"

namespace rrs {
namespace {

/// Drives an EligibilityTracker round by round the way the engine would.
class TrackerHarness {
 public:
  explicit TrackerHarness(Instance instance)
      : instance_(std::move(instance)), source_(instance_), cache_(4, 2) {
    cache_.ensure_colors(instance_.num_colors());
    tracker_.begin(source_);
  }

  /// Runs rounds [next_, until) with no cache changes and no drops.
  void advance_to(Round until) {
    for (; next_ < until; ++next_) {
      tracker_.drop_phase(next_, PendingJobs::DropResult{}, cache_);
      tracker_.arrival_phase(next_, instance_.arrivals_in_round(next_));
    }
  }

  /// Caches `color` (so boundary resets skip it).
  void cache_color(ColorId color) {
    cache_.begin_phase();
    cache_.insert(color);
    (void)cache_.finish_phase();
  }
  void uncache_color(ColorId color) {
    cache_.begin_phase();
    cache_.erase(color);
    (void)cache_.finish_phase();
  }

  EligibilityTracker& tracker() { return tracker_; }
  [[nodiscard]] Round now() const { return next_; }

 private:
  Instance instance_;
  MaterializedSource source_;
  CacheAssignment cache_;
  EligibilityTracker tracker_;
  Round next_ = 0;
};

/// One color, delay 4, Delta 3; batches of `batch` jobs at given rounds.
Instance one_color_instance(Cost delta, Round delay,
                            std::vector<std::pair<Round, std::int64_t>>
                                batches) {
  InstanceBuilder builder;
  builder.delta(delta);
  const ColorId c = builder.add_color(delay);
  Round max_round = 0;
  for (const auto& [round, count] : batches) {
    builder.add_jobs(c, round, count);
    max_round = std::max(max_round, round);
  }
  builder.min_horizon(max_round + 4 * delay);
  return builder.build();
}

TEST(EligibilityTracker, ColorStartsIneligible) {
  TrackerHarness h(one_color_instance(3, 4, {{0, 1}}));
  h.advance_to(1);
  EXPECT_FALSE(h.tracker().eligible(0));
  EXPECT_TRUE(h.tracker().eligible_colors().empty());
}

TEST(EligibilityTracker, WrapMakesEligible) {
  // Delta = 3; 3 jobs at round 0 wrap the counter immediately.
  TrackerHarness h(one_color_instance(3, 4, {{0, 3}}));
  h.advance_to(1);
  EXPECT_TRUE(h.tracker().eligible(0));
  EXPECT_EQ(h.tracker().eligible_colors().size(), 1u);
}

TEST(EligibilityTracker, CounterAccumulatesAcrossBatches) {
  // 2 jobs at round 0, 2 at round 4: wrap happens at round 4 (2+2 >= 3).
  TrackerHarness h(one_color_instance(3, 4, {{0, 2}, {4, 2}}));
  h.advance_to(4);
  EXPECT_FALSE(h.tracker().eligible(0));
  h.advance_to(5);
  EXPECT_TRUE(h.tracker().eligible(0));
}

TEST(EligibilityTracker, UncachedEligibleColorResetsAtBoundary) {
  TrackerHarness h(one_color_instance(3, 4, {{0, 3}}));
  h.advance_to(4);  // rounds 0..3: eligible since the round-0 wrap
  ASSERT_TRUE(h.tracker().eligible(0));
  h.advance_to(5);  // boundary at round 4: not cached -> ineligible
  EXPECT_FALSE(h.tracker().eligible(0));
  EXPECT_EQ(h.tracker().num_epochs(), 2);  // 1 completed + 1 incomplete
}

TEST(EligibilityTracker, CachedColorStaysEligibleAtBoundary) {
  TrackerHarness h(one_color_instance(3, 4, {{0, 3}}));
  h.advance_to(1);
  h.cache_color(0);
  h.advance_to(9);  // two boundaries pass while cached
  EXPECT_TRUE(h.tracker().eligible(0));
  h.uncache_color(0);
  h.advance_to(13);  // next boundary: uncached -> ineligible
  EXPECT_FALSE(h.tracker().eligible(0));
}

TEST(EligibilityTracker, TimestampLagsWrapByOneBoundary) {
  // Wrap at round 0.  Within block [0, 4) the most recent multiple is 0 and
  // no wrap happened strictly before it, so timestamp stays 0 (the paper's
  // "no such round" default); from round 4 the wrap at 0 becomes visible.
  TrackerHarness h(one_color_instance(3, 4, {{0, 3}, {8, 3}}));
  h.advance_to(1);
  EXPECT_EQ(h.tracker().timestamp(0, 1), 0);
  h.cache_color(0);  // keep it eligible across boundaries
  h.advance_to(5);
  EXPECT_EQ(h.tracker().timestamp(0, 5), 0);  // wrap at 0 now < boundary 4
  h.advance_to(9);  // wrap at 8 happened; within [8,12) it is not visible
  EXPECT_EQ(h.tracker().timestamp(0, 9), 0);  // still the round-0 wrap
  h.advance_to(13);
  EXPECT_EQ(h.tracker().timestamp(0, 13), 8);  // now the round-8 wrap shows
}

TEST(EligibilityTracker, ColorDeadlineAdvancesAtBoundaries) {
  TrackerHarness h(one_color_instance(3, 4, {{0, 3}}));
  h.advance_to(1);
  EXPECT_EQ(h.tracker().color_deadline(0), 4);
  h.advance_to(5);
  EXPECT_EQ(h.tracker().color_deadline(0), 8);
  h.advance_to(9);
  EXPECT_EQ(h.tracker().color_deadline(0), 12);
}

TEST(EligibilityTracker, DropClassificationUsesPreResetStatus) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 3);  // wraps (3 >= 2), 1 leftover counted
  builder.min_horizon(16);
  const Instance inst = builder.build();

  CacheAssignment cache(4, 2);
  cache.ensure_colors(1);
  const MaterializedSource source(inst);
  EligibilityTracker tracker;
  tracker.begin(source);
  tracker.drop_phase(0, {}, cache);
  tracker.arrival_phase(0, inst.arrivals_in_round(0));
  ASSERT_TRUE(tracker.eligible(c));

  // Boundary at round 4: the 3 jobs expire while the color is STILL
  // eligible, so they are eligible drops; the color then goes ineligible.
  PendingJobs::DropResult dropped;
  dropped.total = 3;
  dropped.by_color = {{c, 3}};
  tracker.drop_phase(4, dropped, cache);
  EXPECT_EQ(tracker.eligible_drops(), 3);
  EXPECT_EQ(tracker.ineligible_drops(), 0);
  EXPECT_FALSE(tracker.eligible(c));

  // A later drop while ineligible classifies the other way.
  PendingJobs::DropResult dropped2;
  dropped2.total = 1;
  dropped2.by_color = {{c, 1}};
  tracker.drop_phase(8, dropped2, cache);
  EXPECT_EQ(tracker.ineligible_drops(), 1);
}

TEST(EligibilityTracker, EpochCountingMultipleCycles) {
  // Delta 2, delay 4; 2 jobs at rounds 0, 8, 16 -> three eligibility
  // cycles, each ending at the next boundary (uncached throughout).
  TrackerHarness h(one_color_instance(2, 4, {{0, 2}, {8, 2}, {16, 2}}));
  h.advance_to(21);
  // 3 completed epochs + the current incomplete one.
  EXPECT_EQ(h.tracker().num_epochs(), 4);
}

TEST(EligibilityTracker, ActiveColorsCountedOnce) {
  InstanceBuilder builder;
  builder.delta(100);  // never wraps
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 1).add_jobs(c, 4, 1).add_jobs(c, 8, 1);
  builder.min_horizon(32);
  TrackerHarness h(builder.build());
  h.advance_to(12);
  EXPECT_EQ(h.tracker().num_epochs(), 1);  // one incomplete epoch only
  EXPECT_FALSE(h.tracker().eligible(c));
}

TEST(EligibilityTracker, CounterWrapsModuloDelta) {
  // Delta 3, 7 jobs at once: cnt -> 7 mod 3 = 1; another 2 jobs at the
  // next boundary wrap again (1 + 2 = 3).
  TrackerHarness h(one_color_instance(3, 4, {{0, 7}, {4, 2}}));
  h.advance_to(1);
  EXPECT_TRUE(h.tracker().eligible(0));
  h.cache_color(0);
  h.advance_to(5);
  // Second wrap at round 4 is recorded: from round 8 both wraps are past
  // boundaries and timestamp shows round 4.
  h.advance_to(9);
  EXPECT_EQ(h.tracker().timestamp(0, 9), 4);
}

TEST(EligibilityTracker, MultipleDelayGroupsTouchOnlyAtOwnBoundaries) {
  InstanceBuilder builder;
  builder.delta(1);  // every job wraps instantly
  const ColorId fast = builder.add_color(2);
  const ColorId slow = builder.add_color(8);
  builder.add_jobs(fast, 0, 1).add_jobs(slow, 0, 1);
  builder.min_horizon(24);
  TrackerHarness h(builder.build());
  h.advance_to(3);
  // fast reset at its boundary (round 2, uncached); slow still eligible.
  EXPECT_FALSE(h.tracker().eligible(fast));
  EXPECT_TRUE(h.tracker().eligible(slow));
  h.advance_to(9);
  EXPECT_FALSE(h.tracker().eligible(slow));  // reset at round 8
}

}  // namespace
}  // namespace rrs
