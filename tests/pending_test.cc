// Unit tests for core/pending: deadline-ordered pending job bookkeeping
// over the SoA slot pool and the bucketed expiry calendar.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "core/pending.h"
#include "util/check.h"
#include "util/rng.h"

namespace rrs {
namespace {

Job make_job(JobId id, ColorId color, Round arrival, Round delay) {
  Job job;
  job.id = id;
  job.color = color;
  job.arrival = arrival;
  job.delay_bound = delay;
  return job;
}

/// Sweep helper for tests that only care about the result of one sweep.
PendingJobs::DropResult drop_at(PendingJobs& pending, Round round) {
  PendingJobs::DropResult out;
  pending.drop_expired(round, out);
  return out;
}

TEST(PendingJobs, AddCountIdleTotal) {
  PendingJobs pending;
  pending.reset(2);
  EXPECT_TRUE(pending.idle(0));
  EXPECT_EQ(pending.total(), 0);
  pending.add(make_job(0, 0, 0, 4));
  pending.add(make_job(1, 0, 0, 4));
  pending.add(make_job(2, 1, 0, 8));
  EXPECT_EQ(pending.count(0), 2);
  EXPECT_EQ(pending.count(1), 1);
  EXPECT_FALSE(pending.idle(0));
  EXPECT_EQ(pending.total(), 3);
}

TEST(PendingJobs, PopEarliestIsFifoPerColor) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 4));
  pending.add(make_job(1, 0, 2, 4));
  EXPECT_EQ(pending.earliest_deadline(0), 4);
  EXPECT_EQ(pending.pop_earliest(0), 0);
  EXPECT_EQ(pending.earliest_deadline(0), 6);
  EXPECT_EQ(pending.pop_earliest(0), 1);
  EXPECT_TRUE(pending.idle(0));
}

TEST(PendingJobs, DropExpiredByDeadline) {
  PendingJobs pending;
  pending.reset(2);
  pending.add(make_job(0, 0, 0, 2));  // deadline 2
  pending.add(make_job(1, 0, 2, 2));  // deadline 4
  pending.add(make_job(2, 1, 0, 8));  // deadline 8

  const auto at2 = drop_at(pending, 2);
  EXPECT_EQ(at2.total, 1);
  ASSERT_EQ(at2.by_color.size(), 1u);
  EXPECT_EQ(at2.by_color[0].first, 0);
  EXPECT_EQ(at2.by_color[0].second, 1);
  EXPECT_EQ(at2.job_ids, std::vector<JobId>{0});
  EXPECT_EQ(pending.total(), 2);

  const auto at10 = drop_at(pending, 10);
  EXPECT_EQ(at10.total, 2);
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, DropExpiredNothingToDo) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 4, 4));
  const auto result = drop_at(pending, 3);
  EXPECT_EQ(result.total, 0);
  EXPECT_TRUE(result.by_color.empty());
}

TEST(PendingJobs, DropAfterPopDoesNotDoubleCount) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 2));
  pending.add(make_job(1, 0, 0, 2));
  EXPECT_EQ(pending.pop_earliest(0), 0);
  const auto result = drop_at(pending, 2);
  EXPECT_EQ(result.total, 1);  // only job 1 remains to drop
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, ResetClearsEverything) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 2));
  pending.reset(3);
  EXPECT_EQ(pending.total(), 0);
  EXPECT_TRUE(pending.idle(0));
  EXPECT_EQ(drop_at(pending, 100).total, 0);
}

TEST(PendingJobs, NonMonotoneDeadlinesWithinColorRejected) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 4, 4));  // deadline 8
  EXPECT_THROW(pending.add(make_job(1, 0, 0, 4)), InvariantError);
}

TEST(PendingJobs, PopFromIdleColorRejected) {
  PendingJobs pending;
  pending.reset(1);
  EXPECT_THROW((void)pending.pop_earliest(0), InvariantError);
  EXPECT_THROW((void)pending.earliest_deadline(0), InvariantError);
}

TEST(PendingJobs, ManyColorsInterleaved) {
  PendingJobs pending;
  pending.reset(64);
  for (ColorId c = 0; c < 64; ++c) {
    for (int i = 0; i < 3; ++i) {
      pending.add(make_job(c * 3 + i, c, i * 2, 16));
    }
  }
  EXPECT_EQ(pending.total(), 192);
  const auto dropped = drop_at(pending, 17);  // deadlines 16/18/20
  EXPECT_EQ(dropped.total, 64);
  EXPECT_EQ(pending.total(), 128);
  for (ColorId c = 0; c < 64; ++c) {
    EXPECT_EQ(pending.count(c), 2);
    EXPECT_EQ(pending.earliest_deadline(c), 18);
  }
}

TEST(PendingJobs, SweepBufferIsClearedAndReused) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 1));
  pending.add(make_job(1, 0, 1, 1));
  PendingJobs::DropResult out;
  pending.drop_expired(1, out);
  EXPECT_EQ(out.total, 1);
  pending.drop_expired(2, out);  // must clear the previous sweep's content
  EXPECT_EQ(out.total, 1);
  EXPECT_EQ(out.job_ids, std::vector<JobId>{1});
}

TEST(PendingJobs, StaleHintsAfterPopDrainNothing) {
  // Executing every job of a hinted deadline leaves a stale calendar hint;
  // the sweep that consumes it must drop nothing and not disturb later
  // jobs of the same color.
  PendingJobs pending;
  pending.reset(2);
  pending.add(make_job(0, 0, 0, 4));  // deadline 4 (hinted)
  pending.add(make_job(1, 0, 2, 4));  // deadline 6 (hinted)
  pending.add(make_job(2, 1, 0, 4));  // deadline 4 (hinted)
  EXPECT_EQ(pending.pop_earliest(0), 0);  // deadline-4 hint for color 0 stale
  EXPECT_EQ(pending.pop_earliest(1), 2);  // deadline-4 hint for color 1 stale

  const auto at4 = drop_at(pending, 4);
  EXPECT_EQ(at4.total, 0);
  EXPECT_TRUE(at4.by_color.empty());
  EXPECT_EQ(pending.count(0), 1);

  const auto at6 = drop_at(pending, 6);
  EXPECT_EQ(at6.total, 1);
  EXPECT_EQ(at6.job_ids, std::vector<JobId>{1});
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, InterleavedPopAndDropAcrossSweeps) {
  // Pops between sweeps must never resurrect or double-drop jobs even when
  // several deadlines of one color share sweep coverage.
  PendingJobs pending;
  pending.reset(1);
  for (int i = 0; i < 6; ++i) {
    pending.add(make_job(i, 0, i, 3));  // deadlines 3..8
  }
  EXPECT_EQ(pending.pop_earliest(0), 0);           // deadline 3 executed
  EXPECT_EQ(drop_at(pending, 4).total, 1);         // job 1 (deadline 4)
  EXPECT_EQ(pending.pop_earliest(0), 2);           // deadline 5 executed
  EXPECT_EQ(pending.pop_earliest(0), 3);           // deadline 6 executed
  const auto at7 = drop_at(pending, 7);            // job 4 (deadline 7)
  EXPECT_EQ(at7.total, 1);
  EXPECT_EQ(at7.job_ids, std::vector<JobId>{4});
  EXPECT_EQ(pending.count(0), 1);
  EXPECT_EQ(pending.earliest_deadline(0), 8);
}

TEST(PendingJobs, SweepsAtOrBeforeCursorAreNoOps) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 8));
  EXPECT_EQ(drop_at(pending, 5).total, 0);  // cursor -> 5
  // Re-sweeping covered rounds is a documented no-op, not an error.
  EXPECT_EQ(drop_at(pending, 5).total, 0);
  EXPECT_EQ(drop_at(pending, 3).total, 0);
  EXPECT_EQ(pending.total(), 1);
  EXPECT_EQ(drop_at(pending, 8).total, 1);
}

TEST(PendingJobs, DelayBoundOneExpiresNextRound) {
  // D_l = 1: a job arriving in round k is droppable in round k+1, the
  // tightest calendar bucket distance possible.
  PendingJobs pending;
  pending.reset(1);
  PendingJobs::DropResult out;
  for (Round k = 0; k < 40; ++k) {
    pending.drop_expired(k, out);
    EXPECT_EQ(out.total, k > 0 ? 1 : 0) << "round " << k;
    pending.add(make_job(k, 0, k, 1));  // deadline k + 1
    EXPECT_EQ(pending.count(0), 1);
  }
}

TEST(PendingJobs, FarFutureDeadlinesSurviveRingGrowth) {
  // A deadline far beyond the current ring span forces the calendar to
  // grow and re-bucket; nearby jobs must still expire on time and the far
  // job must only fall at its own deadline.
  PendingJobs pending;
  pending.reset(2);
  pending.add(make_job(0, 0, 0, 3));        // deadline 3
  pending.add(make_job(1, 1, 0, 100'000));  // deadline 100000 (grows ring)
  pending.add(make_job(2, 0, 1, 3));        // deadline 4

  EXPECT_EQ(drop_at(pending, 3).total, 1);
  EXPECT_EQ(drop_at(pending, 4).total, 1);
  EXPECT_EQ(drop_at(pending, 99'999).total, 0);
  const auto at_far = drop_at(pending, 100'000);
  EXPECT_EQ(at_far.total, 1);
  EXPECT_EQ(at_far.job_ids, std::vector<JobId>{1});
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, RingWraparoundKeepsLaterCycleEntries) {
  // Two deadlines that collide in the same ring bucket (one full cycle
  // apart): sweeping the earlier round must keep the later-cycle hint.
  PendingJobs pending;
  pending.reset(2);
  // Default ring is 64 buckets; deadlines 10 and 74 share bucket 10.
  pending.add(make_job(0, 0, 0, 10));  // deadline 10
  pending.add(make_job(1, 1, 0, 74));  // deadline 74, same bucket

  const auto at10 = drop_at(pending, 10);
  EXPECT_EQ(at10.total, 1);
  EXPECT_EQ(at10.job_ids, std::vector<JobId>{0});
  EXPECT_EQ(pending.count(1), 1);

  EXPECT_EQ(drop_at(pending, 73).total, 0);
  EXPECT_EQ(drop_at(pending, 74).total, 1);
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, LargeSweepGapCoversWholeRing) {
  // A sweep jumping far past every live deadline (gap >> ring size) must
  // drop everything in one call.
  PendingJobs pending;
  pending.reset(4);
  for (ColorId c = 0; c < 4; ++c) {
    pending.add(make_job(c, c, 0, 5 + c));
  }
  EXPECT_EQ(drop_at(pending, 1'000'000).total, 4);
  EXPECT_EQ(pending.total(), 0);
  // The store stays usable after the jump: new arrivals beyond the cursor.
  pending.add(make_job(9, 0, 1'000'000, 7));
  EXPECT_EQ(drop_at(pending, 1'000'007).total, 1);
}

// --- multi-unit job lengths ------------------------------------------------

Job make_long_job(JobId id, ColorId color, Round arrival, Round delay,
                  Round length) {
  Job job = make_job(id, color, arrival, delay);
  job.length = length;
  return job;
}

TEST(PendingJobs, ExecuteEarliestTracksRemainingUnits) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_long_job(0, 0, 0, 8, 3));
  EXPECT_EQ(pending.earliest_remaining(0), 3);

  PendingJobs::ExecResult first = pending.execute_earliest(0);
  EXPECT_EQ(first.id, 0);
  EXPECT_FALSE(first.completed);
  EXPECT_EQ(pending.earliest_remaining(0), 2);
  EXPECT_EQ(pending.count(0), 1);  // partially executed jobs stay pending

  (void)pending.execute_earliest(0);
  PendingJobs::ExecResult last = pending.execute_earliest(0);
  EXPECT_EQ(last.id, 0);
  EXPECT_TRUE(last.completed);
  EXPECT_TRUE(pending.idle(0));
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, ExecuteEarliestMatchesPopForUnitLengths) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 4));
  pending.add(make_job(1, 0, 1, 4));
  const PendingJobs::ExecResult r = pending.execute_earliest(0);
  EXPECT_EQ(r.id, 0);
  EXPECT_TRUE(r.completed);  // unit length: one unit completes the job
  EXPECT_EQ(pending.pop_earliest(0), 1);
}

TEST(PendingJobs, PartialProgressStaysWithTheFrontJob) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_long_job(0, 0, 0, 4, 2));
  pending.add(make_long_job(1, 0, 1, 4, 2));
  // Units flow to the front (earliest-deadline) job until it completes.
  EXPECT_FALSE(pending.execute_earliest(0).completed);
  EXPECT_EQ(pending.execute_earliest(0).id, 0);
  EXPECT_EQ(pending.earliest_remaining(0), 2);  // now job 1 is the front
  EXPECT_FALSE(pending.execute_earliest(0).completed);
  EXPECT_TRUE(pending.execute_earliest(0).completed);
}

TEST(PendingJobs, PartiallyExecutedFrontJobStillExpires) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_long_job(0, 0, 0, 2, 3));
  (void)pending.execute_earliest(0);  // 1 of 3 units applied
  const PendingJobs::DropResult dropped = drop_at(pending, 2);
  EXPECT_EQ(dropped.total, 1);  // expires as a whole job despite progress
  ASSERT_EQ(dropped.job_ids.size(), 1u);
  EXPECT_EQ(dropped.job_ids[0], 0);
  EXPECT_TRUE(pending.idle(0));
}

TEST(PendingJobs, EmptySetSweepJumpsInConstantTime) {
  // With nothing pending, a sweep may jump the cursor arbitrarily far
  // without walking the ring (the fast-forward path does exactly this).
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 4));
  EXPECT_EQ(pending.pop_earliest(0), 0);
  EXPECT_EQ(drop_at(pending, 1'000'000'000).total, 0);
  pending.add(make_job(1, 0, 1'000'000'000, 4));
  const auto dropped = drop_at(pending, 1'000'000'004);
  EXPECT_EQ(dropped.total, 1);
  EXPECT_EQ(dropped.job_ids, std::vector<JobId>{1});
}

TEST(PendingJobs, EmptySetJumpResetsStaleHints) {
  // The empty-set jump discards outstanding calendar hints.  A later job
  // re-using a discarded hint's deadline must be re-bucketed — if it were
  // not, it would never be swept.
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 8));      // deadline 8, hint bucketed
  EXPECT_EQ(pending.pop_earliest(0), 0);  // set empty; the hint is stale
  EXPECT_EQ(drop_at(pending, 5).total, 0);  // jump discards the hint
  pending.add(make_job(1, 0, 5, 3));      // deadline 8 again
  const auto dropped = drop_at(pending, 8);
  EXPECT_EQ(dropped.total, 1);
  EXPECT_EQ(dropped.job_ids, std::vector<JobId>{1});
  EXPECT_TRUE(pending.idle(0));
}

/// Reference model: per-color deque of (deadline, id), linear-scan expiry.
class NaivePending {
 public:
  explicit NaivePending(ColorId num_colors)
      : queues_(static_cast<std::size_t>(num_colors)) {}

  void add(const Job& job) {
    queues_[static_cast<std::size_t>(job.color)].emplace_back(job.deadline(),
                                                              job.id);
  }

  JobId pop_earliest(ColorId color) {
    auto& q = queues_[static_cast<std::size_t>(color)];
    const JobId id = q.front().second;
    q.pop_front();
    return id;
  }

  [[nodiscard]] std::int64_t count(ColorId color) const {
    return static_cast<std::int64_t>(
        queues_[static_cast<std::size_t>(color)].size());
  }

  /// Returns (total dropped, ids dropped sorted) for deadline <= round.
  std::pair<std::int64_t, std::vector<JobId>> drop_expired(Round round) {
    std::int64_t total = 0;
    std::vector<JobId> ids;
    for (auto& q : queues_) {
      while (!q.empty() && q.front().first <= round) {
        ids.push_back(q.front().second);
        q.pop_front();
        ++total;
      }
    }
    std::sort(ids.begin(), ids.end());
    return {total, std::move(ids)};
  }

 private:
  std::vector<std::deque<std::pair<Round, JobId>>> queues_;
};

class PendingDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PendingDifferential, MatchesNaiveReferenceUnderRandomOps) {
  // Random interleaving of adds, pops, and monotone sweeps (with gaps that
  // exercise wraparound and growth) must match the linear-scan reference
  // exactly: same drop totals, same dropped ids, same per-color counts.
  constexpr ColorId kColors = 8;
  Rng rng(GetParam());
  PendingJobs pending;
  pending.reset(kColors);
  NaivePending naive(kColors);
  PendingJobs::DropResult out;

  std::vector<Round> last_deadline(kColors, 0);
  JobId next_id = 0;
  Round now = 0;
  for (int step = 0; step < 2000; ++step) {
    const std::int64_t action = rng.uniform(0, 9);
    if (action < 5) {  // add
      const auto color = static_cast<ColorId>(rng.uniform(0, kColors - 1));
      // Delay chosen so the deadline stays nondecreasing within the color
      // and occasionally lands far out (ring growth / wraparound).
      const Round min_delay =
          std::max<Round>(1, last_deadline[static_cast<std::size_t>(color)] -
                                 now);
      Round delay = min_delay + rng.uniform(0, 12);
      if (rng.bernoulli(0.02)) delay += 300;  // past the default ring span
      const Job job = make_job(next_id++, color, now, delay);
      last_deadline[static_cast<std::size_t>(color)] = job.deadline();
      pending.add(job);
      naive.add(job);
    } else if (action < 8) {  // pop
      const auto color = static_cast<ColorId>(rng.uniform(0, kColors - 1));
      if (!pending.idle(color)) {
        EXPECT_EQ(pending.pop_earliest(color), naive.pop_earliest(color));
      }
    } else {  // sweep, strictly forward; sometimes a large gap
      now += rng.bernoulli(0.1) ? rng.uniform(50, 400) : rng.uniform(1, 4);
      pending.drop_expired(now, out);
      const auto [naive_total, naive_ids] = naive.drop_expired(now);
      EXPECT_EQ(out.total, naive_total) << "round " << now;
      std::vector<JobId> got = out.job_ids;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, naive_ids) << "round " << now;
      std::int64_t by_color_sum = 0;
      for (const auto& [color, cnt] : out.by_color) by_color_sum += cnt;
      EXPECT_EQ(by_color_sum, out.total);
    }
    for (ColorId c = 0; c < kColors; ++c) {
      ASSERT_EQ(pending.count(c), naive.count(c)) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PendingDifferential,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{9}));

}  // namespace
}  // namespace rrs
