// Unit tests for core/pending: deadline-ordered pending job bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pending.h"
#include "util/check.h"

namespace rrs {
namespace {

Job make_job(JobId id, ColorId color, Round arrival, Round delay) {
  Job job;
  job.id = id;
  job.color = color;
  job.arrival = arrival;
  job.delay_bound = delay;
  return job;
}

TEST(PendingJobs, AddCountIdleTotal) {
  PendingJobs pending;
  pending.reset(2);
  EXPECT_TRUE(pending.idle(0));
  EXPECT_EQ(pending.total(), 0);
  pending.add(make_job(0, 0, 0, 4));
  pending.add(make_job(1, 0, 0, 4));
  pending.add(make_job(2, 1, 0, 8));
  EXPECT_EQ(pending.count(0), 2);
  EXPECT_EQ(pending.count(1), 1);
  EXPECT_FALSE(pending.idle(0));
  EXPECT_EQ(pending.total(), 3);
}

TEST(PendingJobs, PopEarliestIsFifoPerColor) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 4));
  pending.add(make_job(1, 0, 2, 4));
  EXPECT_EQ(pending.earliest_deadline(0), 4);
  EXPECT_EQ(pending.pop_earliest(0), 0);
  EXPECT_EQ(pending.earliest_deadline(0), 6);
  EXPECT_EQ(pending.pop_earliest(0), 1);
  EXPECT_TRUE(pending.idle(0));
}

TEST(PendingJobs, DropExpiredByDeadline) {
  PendingJobs pending;
  pending.reset(2);
  pending.add(make_job(0, 0, 0, 2));  // deadline 2
  pending.add(make_job(1, 0, 2, 2));  // deadline 4
  pending.add(make_job(2, 1, 0, 8));  // deadline 8

  const auto at2 = pending.drop_expired(2);
  EXPECT_EQ(at2.total, 1);
  ASSERT_EQ(at2.by_color.size(), 1u);
  EXPECT_EQ(at2.by_color[0].first, 0);
  EXPECT_EQ(at2.by_color[0].second, 1);
  EXPECT_EQ(at2.job_ids, std::vector<JobId>{0});
  EXPECT_EQ(pending.total(), 2);

  const auto at10 = pending.drop_expired(10);
  EXPECT_EQ(at10.total, 2);
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, DropExpiredNothingToDo) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 4, 4));
  const auto result = pending.drop_expired(3);
  EXPECT_EQ(result.total, 0);
  EXPECT_TRUE(result.by_color.empty());
}

TEST(PendingJobs, DropAfterPopDoesNotDoubleCount) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 2));
  pending.add(make_job(1, 0, 0, 2));
  EXPECT_EQ(pending.pop_earliest(0), 0);
  const auto result = pending.drop_expired(2);
  EXPECT_EQ(result.total, 1);  // only job 1 remains to drop
  EXPECT_EQ(pending.total(), 0);
}

TEST(PendingJobs, ResetClearsEverything) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 0, 2));
  pending.reset(3);
  EXPECT_EQ(pending.total(), 0);
  EXPECT_TRUE(pending.idle(0));
  EXPECT_EQ(pending.drop_expired(100).total, 0);
}

TEST(PendingJobs, NonMonotoneDeadlinesWithinColorRejected) {
  PendingJobs pending;
  pending.reset(1);
  pending.add(make_job(0, 0, 4, 4));  // deadline 8
  EXPECT_THROW(pending.add(make_job(1, 0, 0, 4)), InvariantError);
}

TEST(PendingJobs, PopFromIdleColorRejected) {
  PendingJobs pending;
  pending.reset(1);
  EXPECT_THROW((void)pending.pop_earliest(0), InvariantError);
  EXPECT_THROW((void)pending.earliest_deadline(0), InvariantError);
}

TEST(PendingJobs, ManyColorsInterleaved) {
  PendingJobs pending;
  pending.reset(64);
  for (ColorId c = 0; c < 64; ++c) {
    for (int i = 0; i < 3; ++i) {
      pending.add(make_job(c * 3 + i, c, i * 2, 16));
    }
  }
  EXPECT_EQ(pending.total(), 192);
  const auto dropped = pending.drop_expired(17);  // deadlines 16/18/20
  EXPECT_EQ(dropped.total, 64);
  EXPECT_EQ(pending.total(), 128);
  for (ColorId c = 0; c < 64; ++c) {
    EXPECT_EQ(pending.count(c), 2);
    EXPECT_EQ(pending.earliest_deadline(c), 18);
  }
}

}  // namespace
}  // namespace rrs
