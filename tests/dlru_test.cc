// Tests for algs/dlru: the pure-recency scheme and its Appendix A failure.
#include <gtest/gtest.h>

#include "algs/registry.h"
#include "core/validator.h"
#include "offline/appendix_off.h"
#include "sim/runner.h"
#include "workload/adversary_dlru.h"

namespace rrs {
namespace {

EngineOptions section3_options(int n, bool record = false) {
  EngineOptions options;
  options.num_resources = n;
  options.replication = 2;
  options.record_schedule = record;
  return options;
}

TEST(DLru, SchedulesAreValid) {
  const AdversaryAInstance adv = make_adversary_a({.n = 4, .delta = 2});
  Schedule schedule;
  const RunRecord record =
      run_algorithm(adv.instance, "dlru", 4, &schedule);
  const CostBreakdown validated = validate_or_throw(adv.instance, schedule);
  EXPECT_EQ(validated, record.cost);
}

TEST(DLru, IneligibleColorsNeverCached) {
  // A single color with fewer than Delta jobs never becomes eligible and
  // is never cached: everything drops, nothing is reconfigured.
  InstanceBuilder builder;
  builder.delta(10);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 3);
  const Instance inst = builder.build();

  auto policy = make_policy("dlru");
  const EngineResult r = run_policy(inst, *policy, section3_options(4));
  EXPECT_EQ(r.cost.reconfig_cost, 0);
  EXPECT_EQ(r.cost.drops, 3);
}

TEST(DLru, ServesSteadySingleColor) {
  // Delta 2, one color, steady batches: the round-0 batch wraps the
  // counter immediately, the color is cached the same round, and the
  // replicated pair clears each 4-job batch within its block.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId c = builder.add_color(4);
  for (Round t = 0; t <= 32; t += 4) builder.add_jobs(c, t, 4);
  const Instance inst = builder.build();

  auto policy = make_policy("dlru");
  const EngineResult r = run_policy(inst, *policy, section3_options(4));
  EXPECT_EQ(r.cost.drops, 0);
  EXPECT_EQ(r.cost.reconfig_events, 2);  // cached once, in two locations
}

TEST(DLru, AppendixA_DropsLongTermBacklog) {
  const AdversaryAInstance adv = make_adversary_a({.n = 8, .delta = 2});
  auto policy = make_policy("dlru");
  const EngineResult r =
      run_policy(adv.instance, *policy, section3_options(adv.params.n));

  // dLRU keeps the n/2 short-term colors cached (their timestamps are
  // always at least as recent) and never serves the long-term color: all
  // 2^k long-term jobs drop.
  const Round long_jobs = Round{1} << adv.params.k;
  EXPECT_GE(r.cost.drops, long_jobs);
  // Reconfiguration cost stays bounded: each short color cached once.
  EXPECT_LE(r.cost.reconfig_cost,
            Cost{adv.params.n} * adv.instance.delta());
}

TEST(DLru, AppendixA_RatioGrowsWithJ) {
  // The paper's lower bound is Omega(2^{j+1} / (n Delta)): with k = j + 2
  // fixed relative to j, growing j grows dLRU's ratio against the explicit
  // OFF schedule without bound.
  double previous_ratio = 0.0;
  for (int j = 4; j <= 6; ++j) {
    AdversaryAParams params;
    params.n = 4;
    params.delta = 2;
    params.j = j;
    params.k = j + 2;
    const AdversaryAInstance adv = make_adversary_a(params);

    auto policy = make_policy("dlru");
    const EngineResult online =
        run_policy(adv.instance, *policy, section3_options(params.n));
    const Schedule off = appendix_a_off_schedule(adv);
    const Cost off_cost = validate_or_throw(adv.instance, off).total();
    const double ratio = static_cast<double>(online.cost.total()) /
                         static_cast<double>(off_cost);
    EXPECT_GT(ratio, previous_ratio);
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 2.0) << "ratio must keep growing";
}

TEST(DLru, StatsExposeEpochCounters) {
  const AdversaryAInstance adv = make_adversary_a({.n = 4, .delta = 2});
  const RunRecord record = run_algorithm(adv.instance, "dlru", 4);
  bool saw_epochs = false;
  for (const auto& [key, value] : record.stats) {
    if (key == "epochs") {
      saw_epochs = true;
      EXPECT_GT(value, 0);
    }
  }
  EXPECT_TRUE(saw_epochs);
}

}  // namespace
}  // namespace rrs
