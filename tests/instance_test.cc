// Unit tests for core/instance: building, classification, indexing.
#include <gtest/gtest.h>

#include "core/instance.h"
#include "util/check.h"

namespace rrs {
namespace {

TEST(InstanceBuilder, BasicBuild) {
  InstanceBuilder builder;
  builder.delta(5);
  const ColorId red = builder.add_color(4);
  const ColorId blue = builder.add_color(8);
  builder.add_jobs(red, 0, 2).add_jobs(blue, 8, 3);
  const Instance inst = builder.build();

  EXPECT_EQ(inst.delta(), 5);
  EXPECT_EQ(inst.num_colors(), 2);
  EXPECT_EQ(inst.delay_bound(red), 4);
  EXPECT_EQ(inst.delay_bound(blue), 8);
  EXPECT_EQ(inst.jobs().size(), 5u);
  EXPECT_EQ(inst.jobs_of_color(red), 2);
  EXPECT_EQ(inst.jobs_of_color(blue), 3);
  EXPECT_EQ(inst.horizon(), 16);  // blue deadline 8 + 8
}

TEST(InstanceBuilder, JobsSortedByArrivalWithDenseIds) {
  InstanceBuilder builder;
  const ColorId c0 = builder.add_color(4);
  const ColorId c1 = builder.add_color(4);
  builder.add_jobs(c1, 8, 1);
  builder.add_jobs(c0, 0, 2);
  builder.add_jobs(c1, 4, 1);
  const Instance inst = builder.build();

  ASSERT_EQ(inst.jobs().size(), 4u);
  for (std::size_t i = 0; i < inst.jobs().size(); ++i) {
    EXPECT_EQ(inst.jobs()[i].id, static_cast<JobId>(i));
    if (i > 0) {
      EXPECT_LE(inst.jobs()[i - 1].arrival, inst.jobs()[i].arrival);
    }
  }
  EXPECT_EQ(inst.jobs()[0].color, c0);
  EXPECT_EQ(inst.jobs()[3].arrival, 8);
}

TEST(InstanceBuilder, ArrivalsInRound) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 1);
  builder.add_jobs(c, 4, 3);
  const Instance inst = builder.build();

  EXPECT_EQ(inst.arrivals_in_round(0).size(), 1u);
  EXPECT_TRUE(inst.arrivals_in_round(1).empty());
  EXPECT_TRUE(inst.arrivals_in_round(3).empty());
  EXPECT_EQ(inst.arrivals_in_round(4).size(), 3u);
  EXPECT_TRUE(inst.arrivals_in_round(5).empty());
  for (const Job& job : inst.arrivals_in_round(4)) {
    EXPECT_EQ(job.arrival, 4);
    EXPECT_EQ(job.delay_bound, 2);
    EXPECT_EQ(job.deadline(), 6);
  }
}

TEST(InstanceBuilder, BatchedClassification) {
  InstanceBuilder builder;
  const ColorId c4 = builder.add_color(4);
  const ColorId c8 = builder.add_color(8);
  builder.add_jobs(c4, 0, 1).add_jobs(c4, 8, 2).add_jobs(c8, 16, 1);
  const Instance inst = builder.build();
  EXPECT_TRUE(inst.is_batched());
  EXPECT_TRUE(inst.is_rate_limited());
}

TEST(InstanceBuilder, UnbatchedClassification) {
  InstanceBuilder builder;
  const ColorId c4 = builder.add_color(4);
  builder.add_jobs(c4, 3, 1);  // 3 is not a multiple of 4
  const Instance inst = builder.build();
  EXPECT_FALSE(inst.is_batched());
  EXPECT_FALSE(inst.is_rate_limited());
}

TEST(InstanceBuilder, RateLimitViolationDetected) {
  InstanceBuilder builder;
  const ColorId c4 = builder.add_color(4);
  builder.add_jobs(c4, 4, 5);  // 5 > D = 4 jobs in one batch
  const Instance inst = builder.build();
  EXPECT_TRUE(inst.is_batched());
  EXPECT_FALSE(inst.is_rate_limited());
}

TEST(InstanceBuilder, RateLimitAggregatesSplitAdds) {
  InstanceBuilder builder;
  const ColorId c4 = builder.add_color(4);
  builder.add_jobs(c4, 4, 3).add_jobs(c4, 4, 2);  // 3 + 2 > 4
  const Instance inst = builder.build();
  EXPECT_FALSE(inst.is_rate_limited());
}

TEST(InstanceBuilder, Pow2Classification) {
  {
    InstanceBuilder builder;
    builder.add_color(4);
    builder.add_color(64);
    EXPECT_TRUE(builder.build().all_delays_pow2());
  }
  {
    InstanceBuilder builder;
    builder.add_color(4);
    builder.add_color(6);
    EXPECT_FALSE(builder.build().all_delays_pow2());
  }
}

TEST(InstanceBuilder, ColorsByDelayGroups) {
  InstanceBuilder builder;
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(8);
  const ColorId c = builder.add_color(4);
  const Instance inst = builder.build();
  const auto& groups = inst.colors_by_delay();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at(4), (std::vector<ColorId>{a, c}));
  EXPECT_EQ(groups.at(8), (std::vector<ColorId>{b}));
}

TEST(InstanceBuilder, MinHorizonExtends) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 1);
  builder.min_horizon(100);
  EXPECT_EQ(builder.build().horizon(), 100);
}

TEST(InstanceBuilder, EmptyInstance) {
  InstanceBuilder builder;
  const Instance inst = builder.build();
  EXPECT_EQ(inst.num_colors(), 0);
  EXPECT_TRUE(inst.jobs().empty());
  EXPECT_EQ(inst.horizon(), 0);
  EXPECT_TRUE(inst.is_batched());
}

TEST(InstanceBuilder, ZeroCountAddIsNoop) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 0);
  EXPECT_TRUE(builder.build().jobs().empty());
}

TEST(InstanceBuilder, InvalidInputsThrow) {
  InstanceBuilder builder;
  EXPECT_THROW(builder.delta(0), InputError);
  EXPECT_THROW(builder.add_color(0), InputError);
  const ColorId c = builder.add_color(2);
  EXPECT_THROW(builder.add_jobs(c + 1, 0, 1), InputError);
  EXPECT_THROW(builder.add_jobs(c, -1, 1), InputError);
  EXPECT_THROW(builder.add_jobs(c, 0, -1), InputError);
  EXPECT_THROW(builder.min_horizon(-1), InputError);
}

TEST(InstanceBuilder, DoubleBuildThrows) {
  InstanceBuilder builder;
  builder.add_color(2);
  (void)builder.build();
  EXPECT_THROW((void)builder.build(), InputError);
}

TEST(Instance, DelayBoundRangeChecked) {
  InstanceBuilder builder;
  builder.add_color(2);
  const Instance inst = builder.build();
  EXPECT_THROW((void)inst.delay_bound(-1), InputError);
  EXPECT_THROW((void)inst.delay_bound(1), InputError);
  EXPECT_THROW((void)inst.jobs_of_color(5), InputError);
}

TEST(Instance, SummaryMentionsShape) {
  InstanceBuilder builder;
  builder.delta(9);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 2, 1);  // unbatched
  const std::string s = builder.build().summary();
  EXPECT_NE(s.find("Delta=9"), std::string::npos);
  EXPECT_NE(s.find("unbatched"), std::string::npos);
}

TEST(Job, DeadlineArithmetic) {
  Job job;
  job.arrival = 10;
  job.delay_bound = 4;
  EXPECT_EQ(job.deadline(), 14);
}

TEST(CostBreakdown, TotalSumsComponents) {
  CostBreakdown cost;
  cost.reconfig_events = 3;
  cost.reconfig_cost = 12;
  cost.drops = 5;
  EXPECT_EQ(cost.total(), 17);
}

}  // namespace
}  // namespace rrs
