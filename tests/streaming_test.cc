// Streaming/materialized equivalence: the tentpole property of the
// ArrivalSource refactor.
//
// For every engine-driven algorithm and every stochastic workload family,
// running the engine directly against the lazy streaming source must
// produce the identical CostBreakdown and executed count as materializing
// the same source into an Instance first.  Per-color RNG streams make the
// two paths draw the same jobs; the engine makes them account the same
// costs.  Several seeds per family, property-style.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <tuple>

#include "core/engine.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/generator_source.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

// Engine-driven algorithms runnable on a stream.  ("distribute" and
// "varbatch" are whole-instance transforms, covered by integration_test.)
const char* const kStreamingAlgorithms[] = {
    "dlru", "edf", "dlru-edf", "adaptive", "seq-edf", "ds-seq-edf",
};

const char* const kFamilies[] = {
    "random-batched", "poisson", "flash-crowd", "datacenter",
};

/// Fresh streaming source for (family, seed).  Horizons are kept small so
/// the full matrix stays fast.
std::unique_ptr<ArrivalSource> make_source(const std::string& family,
                                           std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<RandomBatchedSource>(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<PoissonSource>(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.spike_start = 128;
    params.spike_end = 192;
    params.horizon = 512;
    params.seed = seed;
    return std::make_unique<FlashCrowdSource>(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 1024;
    params.seed = seed;
    return std::make_unique<DatacenterSource>(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return nullptr;
}

using Cell = std::tuple<std::string, std::string, std::uint64_t>;

class StreamedVsMaterialized : public ::testing::TestWithParam<Cell> {};

TEST_P(StreamedVsMaterialized, IdenticalCostAndExecuted) {
  const auto& [algorithm, family, seed] = GetParam();

  // Materialized path: drain one source into an Instance, run the engine
  // on the MaterializedSource wrapper (the pre-refactor code path).
  const auto to_materialize = make_source(family, seed);
  const Instance instance = materialize(*to_materialize);
  const RunRecord reference = run_algorithm(instance, algorithm, 8);

  // Streamed path: a second identical source, pulled round by round.
  const auto source = make_source(family, seed);
  const StreamRunRecord streamed = run_streaming(*source, algorithm, 8);

  EXPECT_EQ(streamed.cost.drops, reference.cost.drops)
      << family << " seed " << seed;
  EXPECT_EQ(streamed.cost.reconfig_cost, reference.cost.reconfig_cost);
  EXPECT_EQ(streamed.cost.reconfig_events, reference.cost.reconfig_events);
  EXPECT_EQ(streamed.cost.total(), reference.cost.total());
  EXPECT_EQ(streamed.executed, reference.executed);
  EXPECT_EQ(streamed.arrived,
            static_cast<std::int64_t>(instance.jobs().size()));
  // The drain may stop early once the pending set empties; it never runs
  // past the materialized horizon (= the last deadline).
  EXPECT_LE(streamed.rounds, instance.horizon());
  // The stream never holds more than the pending set.
  EXPECT_LE(streamed.peak_pending,
            static_cast<std::int64_t>(instance.jobs().size()));
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const char* const algorithm : kStreamingAlgorithms) {
    for (const char* const family : kFamilies) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cells.emplace_back(algorithm, family, seed);
      }
    }
  }
  return cells;
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     "_s" + std::to_string(std::get<2>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, StreamedVsMaterialized,
                         ::testing::ValuesIn(all_cells()), cell_name);

TEST(MaterializeHelper, RoundTripsThroughBuilder) {
  PoissonParams params;
  params.horizon = 128;
  params.seed = 7;
  PoissonSource source(params);
  const Instance direct = make_poisson(params);
  const Instance drained = materialize(source);
  ASSERT_EQ(direct.jobs().size(), drained.jobs().size());
  EXPECT_EQ(direct.jobs(), drained.jobs());
  EXPECT_EQ(direct.horizon(), drained.horizon());
  EXPECT_EQ(direct.delta(), drained.delta());
  EXPECT_EQ(direct.num_colors(), drained.num_colors());
}

TEST(MaterializeHelper, TruncatesToRequestedRounds) {
  const auto source = make_source("poisson", 11);
  const Instance head = materialize(*source, 32);
  for (const Job& job : head.jobs()) EXPECT_LT(job.arrival, 32);
  EXPECT_GE(head.horizon(), 32);
}

TEST(StreamingContract, SequentialPullEnforced) {
  PoissonParams params;
  params.seed = 3;
  PoissonSource source(params);
  (void)source.arrivals_in_round(0);
  EXPECT_THROW((void)source.arrivals_in_round(2), InputError);
}

TEST(StreamingContract, InfiniteSourceNeedsMaxRounds) {
  PoissonParams params;
  params.horizon = kInfiniteHorizon;
  PoissonSource source(params);
  EXPECT_FALSE(source.finite());
  EXPECT_THROW((void)run_streaming(source, "dlru-edf", 8), InputError);
}

TEST(StreamingContract, InfiniteSourceRunsWithMaxRounds) {
  PoissonParams params;
  params.horizon = kInfiniteHorizon;
  params.seed = 5;
  PoissonSource source(params);
  const StreamRunRecord record =
      run_streaming(source, "dlru-edf", 8, /*max_rounds=*/512);
  EXPECT_GE(record.rounds, 512);  // arrivals stop at 512, the drain runs on
  EXPECT_GT(record.arrived, 0);
  EXPECT_EQ(record.cost.drops + record.executed, record.arrived)
      << "every unit-cost job either executes or drops by the final sweep";
}

TEST(StreamingContract, DrainPendingRunsPastArrivals) {
  // One color, delay 16, jobs only in round 0: with drain_pending the
  // engine keeps running after arrivals end until the pending set empties.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(16);
  builder.add_jobs(c, 0, 4);
  const Instance instance = builder.build();

  MaterializedSource source(instance);
  auto policy = make_policy("dlru-edf");
  EngineOptions options;
  options.num_resources = 4;
  options.replication = 2;
  options.record_schedule = false;
  options.max_rounds = 1;  // stop pulling arrivals after round 0
  options.drain_pending = true;
  const EngineResult result = run_policy(source, *policy, options);
  EXPECT_EQ(result.executed + result.cost.drops, 4);
  EXPECT_GT(result.rounds, 1);
  EXPECT_LE(result.rounds, 16);
}

}  // namespace
}  // namespace rrs
