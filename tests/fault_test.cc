// Fault-injection coverage: plan generators, cache churn semantics, the
// engine's fault phase, and the sharded runner under capacity churn.
//
// The two load-bearing guarantees are pinned here.  First, an absent or
// empty FaultPlan leaves every run bit-identical to fault-free execution
// (matrix over algorithms x families x seeds, streaming and sharded).
// Second, churn events never enter the recorded Schedule, so the validator
// replays only policy-driven reconfigurations: with free repairs the
// validated cost equals the engine's exactly, and with charged repairs the
// two differ by exactly churn_reconfigs * Delta.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "algs/dlru_edf.h"
#include "core/engine.h"
#include "core/fault_plan.h"
#include "core/shard_plan.h"
#include "core/validator.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

const char* const kAlgorithms[] = {"dlru", "edf", "dlru-edf", "adaptive"};

const char* const kFamilies[] = {"random-batched", "poisson", "datacenter"};

/// Fresh streaming source for (family, seed); mirrors sharded_test.
std::unique_ptr<ArrivalSource> make_source(const std::string& family,
                                           std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<RandomBatchedSource>(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<PoissonSource>(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 1024;
    params.seed = seed;
    return std::make_unique<DatacenterSource>(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return nullptr;
}

// --- generators ------------------------------------------------------------

TEST(FaultPlanTest, MtbfPlanIsDeterministicSortedAndValid) {
  MtbfParams params;
  params.num_resources = 8;
  params.horizon = 2048;
  params.mean_up = 100;
  params.mean_down = 20;
  params.seed = 7;
  const FaultPlan plan = make_mtbf_plan(params);
  EXPECT_EQ(plan, make_mtbf_plan(params));
  ASSERT_FALSE(plan.empty());
  validate_fault_plan(plan, params.num_resources);
  EXPECT_TRUE(std::is_sorted(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.round < b.round; }));
  for (const FaultEvent& ev : plan.events) {
    EXPECT_GE(ev.round, 0);
    EXPECT_LT(ev.round, params.horizon);
    EXPECT_GE(ev.resource, 0);
    EXPECT_LT(ev.resource, params.num_resources);
  }

  MtbfParams other = params;
  other.seed = 8;
  EXPECT_NE(plan, make_mtbf_plan(other));
}

TEST(FaultPlanTest, RackBurstFailsWholeRacksTogether) {
  RackBurstParams params;
  params.num_resources = 12;
  params.rack_size = 4;
  params.horizon = 3000;
  params.period = 1000;
  params.first = 100;
  params.outage = 50;
  params.seed = 3;
  const FaultPlan plan = make_rack_burst_plan(params);
  validate_fault_plan(plan, params.num_resources);
  // Bursts at 100, 1100, 2100: each is rack_size failures at one round on a
  // contiguous rack-aligned block, repaired in full `outage` rounds later.
  std::map<Round, std::vector<int>> fails, repairs;
  for (const FaultEvent& ev : plan.events) {
    (ev.fail ? fails : repairs)[ev.round].push_back(ev.resource);
  }
  ASSERT_EQ(fails.size(), 3u);
  ASSERT_EQ(repairs.size(), 3u);
  for (const auto& [round, resources] : fails) {
    EXPECT_EQ((round - params.first) % params.period, 0);
    ASSERT_EQ(resources.size(), 4u);
    EXPECT_EQ(resources.front() % params.rack_size, 0);
    for (std::size_t i = 0; i < resources.size(); ++i) {
      EXPECT_EQ(resources[i], resources.front() + static_cast<int>(i));
    }
    const auto repaired = repairs.find(round + params.outage);
    ASSERT_NE(repaired, repairs.end());
    EXPECT_EQ(repaired->second, resources);
  }
}

TEST(FaultPlanTest, AdversarialPlanUsesTheHottestSentinel) {
  AdversarialParams params;
  params.horizon = 500;
  params.period = 100;
  params.first = 1;
  params.outage = 10;
  const FaultPlan plan = make_adversarial_plan(params);
  validate_fault_plan(plan, 4);
  int fail_count = 0, repair_count = 0;
  for (const FaultEvent& ev : plan.events) {
    EXPECT_EQ(ev.resource, kHottestResource);
    ++(ev.fail ? fail_count : repair_count);
  }
  EXPECT_EQ(fail_count, 5);    // rounds 1, 101, 201, 301, 401
  EXPECT_EQ(repair_count, 5);  // each + 10 is still inside the horizon
}

TEST(FaultPlanTest, GeneratorsRejectBadParameters) {
  MtbfParams mtbf;
  mtbf.num_resources = 0;
  EXPECT_THROW((void)make_mtbf_plan(mtbf), InputError);
  mtbf.num_resources = 4;
  mtbf.mean_up = 0;
  EXPECT_THROW((void)make_mtbf_plan(mtbf), InputError);

  RackBurstParams rack;
  rack.num_resources = 10;
  rack.rack_size = 4;  // 10 % 4 != 0
  EXPECT_THROW((void)make_rack_burst_plan(rack), InputError);
  rack.num_resources = 8;
  rack.period = 10;
  rack.outage = 10;  // outage must be < period
  EXPECT_THROW((void)make_rack_burst_plan(rack), InputError);

  AdversarialParams adv;
  adv.outage = 0;
  EXPECT_THROW((void)make_adversarial_plan(adv), InputError);
}

TEST(FaultPlanTest, ValidateRejectsMalformedPlans) {
  const struct {
    const char* label;
    FaultPlan plan;
  } kBad[] = {
      {"negative round", {{{-1, 0, true}}}},
      {"unsorted rounds", {{{5, 0, true}, {3, 1, true}}}},
      {"resource out of range", {{{0, 8, true}}}},
      {"resource below sentinel", {{{0, -2, true}}}},
      {"double failure", {{{0, 0, true}, {1, 0, true}}}},
      {"repair while up", {{{0, 0, false}}}},
      {"hottest repair with nothing down", {{{0, kHottestResource, false}}}},
      {"mixed explicit and hottest",
       {{{0, 0, true}, {1, kHottestResource, true}}}},
  };
  for (const auto& [label, plan] : kBad) {
    EXPECT_THROW(validate_fault_plan(plan, 8), InputError) << label;
  }

  // Sanity: well-formed explicit and sentinel plans both pass.
  validate_fault_plan({{{0, 0, true}, {4, 0, false}, {4, 1, true}}}, 8);
  validate_fault_plan(
      {{{0, kHottestResource, true}, {2, kHottestResource, false}}}, 8);
}

TEST(FaultPlanTest, SplitMapsExplicitEventsToOwningShards) {
  FaultPlan plan;
  plan.events = {{0, 0, true}, {1, 3, true}, {2, 5, true}, {3, 7, true}};
  const int shard_resources[] = {4, 4};
  const std::vector<FaultPlan> shards = split_fault_plan(plan, shard_resources);
  ASSERT_EQ(shards.size(), 2u);
  const FaultPlan want0{{{0, 0, true}, {1, 3, true}}};
  const FaultPlan want1{{{2, 1, true}, {3, 3, true}}};
  EXPECT_EQ(shards[0], want0);
  EXPECT_EQ(shards[1], want1);
}

TEST(FaultPlanTest, SplitCopiesHottestEventsToEveryShard) {
  AdversarialParams params;
  params.horizon = 300;
  const FaultPlan plan = make_adversarial_plan(params);
  const int shard_resources[] = {4, 8, 4};
  const std::vector<FaultPlan> shards = split_fault_plan(plan, shard_resources);
  ASSERT_EQ(shards.size(), 3u);
  for (const FaultPlan& shard : shards) EXPECT_EQ(shard, plan);
}

// --- CacheAssignment churn -------------------------------------------------

TEST(CacheChurn, FailingAFreeLocationShrinksCapacity) {
  CacheAssignment cache(4, 2);
  EXPECT_EQ(cache.max_distinct(), 2);
  EXPECT_EQ(cache.fail_location(3), kBlack);
  EXPECT_TRUE(cache.location_down(3));
  EXPECT_EQ(cache.num_down(), 1);
  EXPECT_EQ(cache.max_distinct(), 1);  // (4 - 1) / 2
  EXPECT_EQ(cache.color_at(3), kBlack);
}

TEST(CacheChurn, FailingAClaimedLocationEvictsItsColor) {
  CacheAssignment cache(4, 2);
  cache.begin_phase();
  cache.insert(0);
  EXPECT_EQ(cache.finish_phase().size(), 2u);  // both replicas recolored

  // Find one of color 0's locations and fail it.
  int loc = -1;
  for (int r = 0; r < 4; ++r) {
    if (cache.color_at(r) == 0) loc = r;
  }
  ASSERT_GE(loc, 0);
  EXPECT_EQ(cache.fail_location(loc), 0);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.num_cached(), 0);

  // The surviving replica still physically holds color 0, so re-inserting
  // it reclaims that location for free: exactly zero or one recolorings
  // depending on which free location fills the second replica slot -- but
  // capacity is now 1, so insert takes 2 locations out of the 3 still up.
  cache.begin_phase();
  cache.insert(0);
  EXPECT_LE(cache.finish_phase().size(), 1u);
  EXPECT_TRUE(cache.contains(0));
}

TEST(CacheChurn, RepairedLocationComesBackBlank) {
  CacheAssignment cache(4, 2);
  cache.begin_phase();
  cache.insert(0);
  (void)cache.finish_phase();
  int loc = -1;
  for (int r = 0; r < 4; ++r) {
    if (cache.color_at(r) == 0) loc = r;
  }
  ASSERT_GE(loc, 0);
  EXPECT_EQ(cache.fail_location(loc), 0);
  cache.repair_location(loc);
  EXPECT_FALSE(cache.location_down(loc));
  EXPECT_EQ(cache.num_down(), 0);
  EXPECT_EQ(cache.max_distinct(), 2);
  // Repair re-images the location: it is physically black, so unlike the
  // surviving replica it cannot be reclaimed for free.
  EXPECT_EQ(cache.color_at(loc), kBlack);
  cache.begin_phase();
  cache.insert(0);
  const auto events = cache.finish_phase();
  EXPECT_EQ(events.size(), 1u);  // one replica reclaimed free, one recolored
  EXPECT_TRUE(cache.contains(0));
}

TEST(CacheChurn, SurvivorsKeepMembershipAcrossChurn) {
  CacheAssignment cache(8, 2);
  cache.begin_phase();
  cache.insert(0);
  cache.insert(1);
  cache.insert(2);
  (void)cache.finish_phase();

  // Failing a free location leaves all cached colors intact but makes the
  // cache full at the reduced capacity.
  int free_loc = -1;
  for (int r = 0; r < 8; ++r) {
    if (cache.color_at(r) == kBlack) free_loc = r;
  }
  ASSERT_GE(free_loc, 0);
  EXPECT_EQ(cache.fail_location(free_loc), kBlack);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.max_distinct(), 3);
  EXPECT_TRUE(cache.full());

  // Failing one of color 2's locations evicts only color 2.
  int loc2 = -1;
  for (int r = 0; r < 8; ++r) {
    if (!cache.location_down(r) && cache.color_at(r) == 2) loc2 = r;
  }
  ASSERT_GE(loc2, 0);
  EXPECT_EQ(cache.fail_location(loc2), 2);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));

  // reset() clears the down set along with everything else.
  cache.reset();
  EXPECT_EQ(cache.num_down(), 0);
  EXPECT_EQ(cache.max_distinct(), 4);
  EXPECT_EQ(cache.num_cached(), 0);
}

TEST(CacheChurn, ChurnCallsOutsidePhasesOnly) {
  CacheAssignment cache(4, 2);
  ASSERT_EQ(cache.fail_location(0), kBlack);
  EXPECT_THROW((void)cache.fail_location(0), InvariantError);  // already down
  EXPECT_THROW(cache.repair_location(1), InvariantError);      // still up
  cache.begin_phase();
  EXPECT_THROW((void)cache.fail_location(1), InvariantError);  // mid-phase
  EXPECT_THROW(cache.repair_location(0), InvariantError);      // mid-phase
  (void)cache.finish_phase();
  cache.repair_location(0);
  EXPECT_EQ(cache.num_down(), 0);
}

// --- engine: empty plan is the identity ------------------------------------

/// Fields of a run that must be reproducible (seconds is wall clock).
struct Reproducible {
  CostBreakdown cost;
  std::int64_t executed;
  std::int64_t arrived;
  Round rounds;
  std::int64_t peak_pending;
  DegradedStats degraded;
  std::vector<std::pair<std::string, std::int64_t>> stats;

  friend bool operator==(const Reproducible&, const Reproducible&) = default;
};

Reproducible reproducible(const StreamRunRecord& record) {
  return {record.cost,         record.executed, record.arrived, record.rounds,
          record.peak_pending, record.degraded, record.stats};
}

using Cell = std::tuple<std::string, std::string, std::uint64_t>;

class EmptyPlanBitIdentity : public ::testing::TestWithParam<Cell> {};

TEST_P(EmptyPlanBitIdentity, StreamingAndShardedMatchFaultFreeRuns) {
  const auto& [algorithm, family, seed] = GetParam();
  const FaultPlan empty;

  const auto plain_source = make_source(family, seed);
  const StreamRunRecord plain = run_streaming(*plain_source, algorithm, 8);

  // An empty plan -- even with charged repairs -- must not perturb a single
  // bit of the run.
  const auto faulty_source = make_source(family, seed);
  const StreamRunRecord with_empty =
      run_streaming(*faulty_source, algorithm, 8, kInfiniteHorizon, &empty,
                    /*charge_repair=*/true);
  EXPECT_EQ(reproducible(plain), reproducible(with_empty))
      << family << " seed " << seed;
  EXPECT_EQ(with_empty.degraded, DegradedStats{});

  const auto plain_sharded = make_source(family, seed);
  const ShardedRunRecord sharded =
      run_streaming_sharded(*plain_sharded, algorithm, 8, 2);

  const auto faulty_sharded = make_source(family, seed);
  ShardedRunOptions options;
  options.fault_plan = &empty;
  options.charge_repair = true;
  const ShardedRunRecord sharded_empty = run_streaming_sharded(
      *faulty_sharded, algorithm, 8, 2, kInfiniteHorizon, options);
  EXPECT_EQ(reproducible(sharded.merged), reproducible(sharded_empty.merged));
  ASSERT_EQ(sharded.shards.size(), sharded_empty.shards.size());
  for (std::size_t s = 0; s < sharded.shards.size(); ++s) {
    EXPECT_EQ(reproducible(sharded.shards[s]),
              reproducible(sharded_empty.shards[s]))
        << "shard " << s;
  }
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const char* const algorithm : kAlgorithms) {
    for (const char* const family : kFamilies) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cells.emplace_back(algorithm, family, seed);
      }
    }
  }
  return cells;
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     "_s" + std::to_string(std::get<2>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EmptyPlanBitIdentity,
                         ::testing::ValuesIn(all_cells()), cell_name);

// --- engine: runs under churn ----------------------------------------------

FaultPlan aggressive_mtbf(int num_resources, Round horizon) {
  MtbfParams params;
  params.num_resources = num_resources;
  params.horizon = horizon;
  params.mean_up = 20;
  params.mean_down = 5;
  params.seed = 2;
  return make_mtbf_plan(params);
}

TEST(FaultRunTest, FaultRunsAreDeterministic) {
  const FaultPlan plan = aggressive_mtbf(8, 256);
  std::vector<Reproducible> runs;
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto source = make_source("random-batched", 5);
    runs.push_back(reproducible(
        run_streaming(*source, "dlru-edf", 8, kInfiniteHorizon, &plan)));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_GT(runs[0].degraded.fault_events, 0);
  EXPECT_GT(runs[0].degraded.degraded_rounds, 0);
}

TEST(FaultRunTest, DegradedCountersAreConsistent) {
  const FaultPlan plan = aggressive_mtbf(8, 256);
  const auto source = make_source("random-batched", 5);
  const StreamRunRecord r =
      run_streaming(*source, "dlru-edf", 8, kInfiniteHorizon, &plan);
  EXPECT_GE(r.degraded.fault_events, r.degraded.repair_events);
  EXPECT_LE(r.degraded.churn_evictions, r.degraded.fault_events);
  EXPECT_LE(r.degraded.degraded_rounds, r.rounds);
  EXPECT_LE(r.degraded.drops_while_degraded, r.cost.drops);
  EXPECT_EQ(r.cost.churn_reconfigs, 0);  // free repairs by default
  // random-batched drop costs are unit, so drops is a job count.
  EXPECT_EQ(r.executed + r.cost.drops, r.arrived);
  // The policy heard about every churn notification batch.
  std::int64_t capacity_changes = -1;
  for (const auto& [key, value] : r.stats) {
    if (key == "capacity_changes") capacity_changes = value;
  }
  EXPECT_GT(capacity_changes, 0);
}

TEST(FaultRunTest, ValidatorAcceptsFreeChurnScheduleExactly) {
  RandomBatchedParams params;
  params.horizon = 128;
  params.seed = 4;
  const Instance inst = make_random_batched(params);
  const FaultPlan plan = aggressive_mtbf(8, 128);

  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.fault_plan = &plan;
  const EngineResult r = run_policy(inst, policy, options);
  ASSERT_GT(r.degraded.fault_events, 0);

  // Churn is not recorded in the schedule; the validator replays only the
  // policy's reconfigurations, and with free repairs that is the whole cost.
  const CostBreakdown validated = validate_or_throw(inst, r.schedule);
  EXPECT_EQ(validated, r.cost);
}

TEST(FaultRunTest, ChargedRepairAddsExactlyTheChurnReconfigs) {
  RandomBatchedParams params;
  params.horizon = 128;
  params.seed = 4;
  const Instance inst = make_random_batched(params);
  const FaultPlan plan = aggressive_mtbf(8, 128);

  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.fault_plan = &plan;
  DLruEdfPolicy free_policy;
  const EngineResult free_run = run_policy(inst, free_policy, options);

  options.charge_repair = true;
  DLruEdfPolicy charged_policy;
  const EngineResult charged = run_policy(inst, charged_policy, options);

  // Charging repairs changes accounting, never behavior.
  EXPECT_EQ(charged.executed, free_run.executed);
  EXPECT_EQ(charged.cost.drops, free_run.cost.drops);
  EXPECT_EQ(charged.degraded, free_run.degraded);
  EXPECT_EQ(charged.schedule.reconfigs, free_run.schedule.reconfigs);

  ASSERT_GT(charged.cost.churn_reconfigs, 0);
  EXPECT_EQ(charged.cost.churn_reconfigs, charged.degraded.repair_events);
  EXPECT_EQ(charged.cost.reconfig_events,
            free_run.cost.reconfig_events + charged.cost.churn_reconfigs);
  const CostBreakdown validated = validate_or_throw(inst, charged.schedule);
  EXPECT_EQ(validated.total(),
            charged.cost.total() - charged.cost.churn_reconfigs * inst.delta());
}

TEST(FaultRunTest, DrainWithChargedRepairMatchesValidatorAcrossSeeds) {
  // drain_pending, a non-empty FaultPlan, and charge_repair were only
  // exercised separately before; combined, the drain keeps executing under
  // churn while repairs accrue charged reconfigs.  Pin engine cost to the
  // validator across seeds: the validator replays only policy-driven
  // events, so it must reproduce total() minus the charged repairs exactly.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    RandomBatchedParams params;
    params.horizon = 128;
    params.seed = seed;
    const Instance inst = make_random_batched(params);
    const FaultPlan plan = aggressive_mtbf(8, 128);

    MaterializedSource source(inst);
    DLruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = 8;
    options.replication = 2;
    options.fault_plan = &plan;
    options.charge_repair = true;
    options.drain_pending = true;
    const EngineResult r = run_policy(source, policy, options);
    ASSERT_GT(r.degraded.fault_events, 0) << "seed " << seed;
    ASSERT_GT(r.cost.churn_reconfigs, 0) << "seed " << seed;

    const CostBreakdown validated = validate_or_throw(inst, r.schedule);
    EXPECT_EQ(validated.total(),
              r.cost.total() - r.cost.churn_reconfigs * inst.delta())
        << "seed " << seed;
    EXPECT_EQ(validated.drops, r.cost.drops) << "seed " << seed;
  }
}

TEST(FaultRunTest, AllResourcesDownDropsEverythingAndTerminates) {
  FaultPlan plan;
  for (int r = 0; r < 4; ++r) plan.events.push_back({0, r, true});
  const auto source = make_source("random-batched", 3);
  const StreamRunRecord r =
      run_streaming(*source, "dlru-edf", 4, kInfiniteHorizon, &plan);
  EXPECT_EQ(r.executed, 0);
  EXPECT_EQ(r.cost.drops, r.arrived);
  EXPECT_EQ(r.cost.reconfig_events, 0);
  EXPECT_EQ(r.degraded.fault_events, 4);
  EXPECT_EQ(r.degraded.churn_evictions, 0);  // nothing was cached yet
  EXPECT_EQ(r.degraded.degraded_rounds, r.rounds);
  EXPECT_EQ(r.degraded.drops_while_degraded, r.cost.drops);
}

TEST(FaultRunTest, AdversarialChurnRunsAreDeterministic) {
  AdversarialParams params;
  params.horizon = 256;
  params.period = 32;
  params.first = 8;
  params.outage = 8;
  const FaultPlan plan = make_adversarial_plan(params);
  std::vector<Reproducible> runs;
  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto source = make_source("poisson", 6);
    runs.push_back(reproducible(
        run_streaming(*source, "dlru-edf", 8, kInfiniteHorizon, &plan)));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_GT(runs[0].degraded.fault_events, 0);
  EXPECT_EQ(runs[0].degraded.fault_events, runs[0].degraded.repair_events);
}

/// Policy that pins colors 0 and 1 and records every capacity notification.
class ProbePolicy : public Policy {
 public:
  struct Call {
    Round round;
    int up;
    int total;
    std::vector<ColorId> evicted;
  };

  [[nodiscard]] std::string_view name() const override { return "probe"; }

  void on_round(RoundContext& ctx) override {
    if (ctx.final_sweep()) return;
    for (const ColorId c : {0, 1}) {
      if (!ctx.cache().contains(c) && !ctx.cache().full()) {
        ctx.cache().insert(c);
      }
    }
  }

  void on_capacity_change(Round round, int up, int total,
                          std::span<const ColorId> evicted) override {
    calls.push_back({round, up, total, {evicted.begin(), evicted.end()}});
  }

  std::vector<Call> calls;
};

TEST(FaultRunTest, HottestFailureEvictsTheBusiestColor) {
  // Color 1 has the larger backlog at round 2, so the kHottestResource
  // failure must land on one of its locations and surface it as evicted.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(8);
  const ColorId b = builder.add_color(8);
  builder.add_jobs(a, 0, 1).add_jobs(b, 0, 6);
  const Instance inst = builder.build();

  FaultPlan plan;
  plan.events = {{2, kHottestResource, true}, {4, kHottestResource, false}};

  ProbePolicy probe;
  EngineOptions options;
  options.num_resources = 4;
  options.replication = 2;
  options.fault_plan = &plan;
  const EngineResult r = run_policy(inst, probe, options);

  ASSERT_EQ(probe.calls.size(), 2u);
  EXPECT_EQ(probe.calls[0].round, 2);
  EXPECT_EQ(probe.calls[0].up, 3);
  EXPECT_EQ(probe.calls[0].total, 4);
  EXPECT_EQ(probe.calls[0].evicted, std::vector<ColorId>{b});
  EXPECT_EQ(probe.calls[1].round, 4);
  EXPECT_EQ(probe.calls[1].up, 4);
  EXPECT_TRUE(probe.calls[1].evicted.empty());

  EXPECT_EQ(r.degraded.fault_events, 1);
  EXPECT_EQ(r.degraded.repair_events, 1);
  EXPECT_EQ(r.degraded.churn_evictions, 1);
  EXPECT_EQ(r.degraded.degraded_rounds, 2);  // rounds 2 and 3
  // b's remaining jobs (deadline 8) still fit after the round-4 repair.
  EXPECT_EQ(r.executed, 7);
  EXPECT_EQ(r.cost.drops, 0);
}

// --- sharded runs under churn ----------------------------------------------

TEST(ShardedFaultTest, CostsRemainExactlyAdditiveUnderChurn) {
  const FaultPlan plan = aggressive_mtbf(16, 1024);
  ShardedRunOptions options;
  options.fault_plan = &plan;
  options.charge_repair = true;

  const auto source = make_source("datacenter", 5);
  const ShardedRunRecord record = run_streaming_sharded(
      *source, "dlru-edf", 16, 4, kInfiniteHorizon, options);
  ASSERT_EQ(record.shards.size(), 4u);
  EXPECT_GT(record.merged.degraded.fault_events, 0);

  CostBreakdown cost_sum;
  DegradedStats degraded_sum;
  std::int64_t executed = 0, arrived = 0;
  for (const StreamRunRecord& shard : record.shards) {
    cost_sum.reconfig_events += shard.cost.reconfig_events;
    cost_sum.reconfig_cost += shard.cost.reconfig_cost;
    cost_sum.drops += shard.cost.drops;
    cost_sum.churn_reconfigs += shard.cost.churn_reconfigs;
    degraded_sum.fault_events += shard.degraded.fault_events;
    degraded_sum.repair_events += shard.degraded.repair_events;
    degraded_sum.churn_evictions += shard.degraded.churn_evictions;
    degraded_sum.degraded_rounds += shard.degraded.degraded_rounds;
    degraded_sum.drops_while_degraded += shard.degraded.drops_while_degraded;
    executed += shard.executed;
    arrived += shard.arrived;
  }
  EXPECT_EQ(record.merged.cost, cost_sum);
  EXPECT_EQ(record.merged.degraded, degraded_sum);
  EXPECT_EQ(record.merged.executed, executed);
  EXPECT_EQ(record.merged.arrived, arrived);

  // Determinism: the same churned run reproduces bit-for-bit.
  const auto source2 = make_source("datacenter", 5);
  const ShardedRunRecord again = run_streaming_sharded(
      *source2, "dlru-edf", 16, 4, kInfiniteHorizon, options);
  EXPECT_EQ(reproducible(record.merged), reproducible(again.merged));
}

TEST(ShardedFaultTest, SplitPlanUnderMatrixDeltaStaysExactAndAdditive) {
  // Non-uniform model: weights, lengths > 1, cold prices, warm discounts.
  // Churn repairs must charge through the model's cold column, and the
  // split plan's per-shard charges must sum exactly to the merged record.
  InstanceBuilder builder;
  builder.delta(3);
  std::vector<ColorId> colors;
  for (int c = 0; c < 8; ++c) {
    colors.push_back(
        builder.add_color(/*d=*/4 << (c % 2), /*drop_cost=*/1 + (c % 3),
                          /*length=*/1 + (c % 2)));
  }
  for (const ColorId c : colors) {
    builder.reconfig_cost(c, 2 + static_cast<Cost>(c % 4));
  }
  builder.transition_cost(colors[0], colors[1], 1);
  builder.transition_cost(colors[4], colors[5], 0);
  for (Round t = 0; t < 256; ++t) {
    for (const ColorId c : colors) {
      if (t % (2 + static_cast<Round>(c % 3)) == 0) builder.add_jobs(c, t, 2);
    }
  }
  const Instance instance = builder.build();
  ASSERT_EQ(instance.cost_model().tier(), CostModel::Tier::kMatrix);

  FaultPlan plan;
  for (int r = 0; r < 16; r += 3) {
    plan.events.push_back({16 + 4 * r, r, true});
    plan.events.push_back({48 + 4 * r, r, false});
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.round < b.round;
            });
  validate_fault_plan(plan, 16);

  ShardedRunOptions options;
  options.fault_plan = &plan;
  options.charge_repair = true;

  // K = 1 is bit-identical to the serial churned run.
  MaterializedSource serial_source(instance);
  const StreamRunRecord serial = run_streaming(
      serial_source, "dlru-edf", 16, kInfiniteHorizon, &plan, true);
  MaterializedSource single_source(instance);
  const ShardedRunRecord single =
      run_streaming_sharded(single_source, "dlru-edf", 16, 1,
                            kInfiniteHorizon, options);
  EXPECT_EQ(single.merged.cost, serial.cost);
  EXPECT_EQ(single.merged.executed, serial.executed);
  EXPECT_EQ(single.merged.work_units, serial.work_units);
  EXPECT_EQ(single.merged.degraded, serial.degraded);
  EXPECT_GT(serial.cost.churn_reconfigs, 0);

  // K = 4: the split plan's shard charges sum exactly to the merge.
  MaterializedSource sharded_source(instance);
  const ShardedRunRecord record = run_streaming_sharded(
      sharded_source, "dlru-edf", 16, 4, kInfiniteHorizon, options);
  ASSERT_EQ(record.shards.size(), 4u);
  CostBreakdown cost_sum;
  DegradedStats degraded_sum;
  std::int64_t work_units = 0;
  for (const StreamRunRecord& shard : record.shards) {
    cost_sum.reconfig_events += shard.cost.reconfig_events;
    cost_sum.reconfig_cost += shard.cost.reconfig_cost;
    cost_sum.drops += shard.cost.drops;
    cost_sum.churn_reconfigs += shard.cost.churn_reconfigs;
    degraded_sum.fault_events += shard.degraded.fault_events;
    degraded_sum.repair_events += shard.degraded.repair_events;
    degraded_sum.churn_evictions += shard.degraded.churn_evictions;
    degraded_sum.degraded_rounds += shard.degraded.degraded_rounds;
    degraded_sum.drops_while_degraded += shard.degraded.drops_while_degraded;
    work_units += shard.work_units;
  }
  EXPECT_EQ(record.merged.cost, cost_sum);
  EXPECT_EQ(record.merged.degraded, degraded_sum);
  EXPECT_EQ(record.merged.work_units, work_units);
  // Every explicit event lands on exactly one shard.
  EXPECT_EQ(record.merged.degraded.fault_events,
            serial.degraded.fault_events);
  EXPECT_EQ(record.merged.degraded.repair_events,
            serial.degraded.repair_events);
}

TEST(ShardedFaultTest, FullShardFailureCompletesWithPendingAsDrops) {
  // Learn the deterministic shard layout from a fault-free probe run, then
  // kill shard 0's whole resource block at round 0.
  const auto probe = make_source("random-batched", 7);
  const ShardedRunRecord layout =
      run_streaming_sharded(*probe, "dlru-edf", 16, 2);
  ASSERT_EQ(layout.plan.shard_resources.size(), 2u);
  const int dead_block = layout.plan.shard_resources[0];
  ASSERT_GT(dead_block, 0);

  FaultPlan plan;
  for (int r = 0; r < dead_block; ++r) plan.events.push_back({0, r, true});
  ShardedRunOptions options;
  options.fault_plan = &plan;

  const auto source = make_source("random-batched", 7);
  const ShardedRunRecord record = run_streaming_sharded(
      *source, "dlru-edf", 16, 2, kInfiniteHorizon, options);
  ASSERT_EQ(record.plan.shard_resources, layout.plan.shard_resources);

  // The dead shard terminates (no deadlock) with every job accounted as a
  // drop; the surviving shard matches its fault-free self.
  const StreamRunRecord& dead = record.shards[0];
  EXPECT_EQ(dead.executed, 0);
  EXPECT_EQ(dead.cost.drops, dead.arrived);
  EXPECT_EQ(dead.degraded.degraded_rounds, dead.rounds);
  EXPECT_EQ(record.shards[1].cost, layout.shards[1].cost);
  EXPECT_EQ(record.shards[1].executed, layout.shards[1].executed);
  EXPECT_EQ(record.merged.executed + record.merged.cost.drops,
            record.merged.arrived);
  EXPECT_EQ(record.merged.arrived, layout.merged.arrived);
}

}  // namespace
}  // namespace rrs
