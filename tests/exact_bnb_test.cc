// Differential certification harness for offline/exact_bnb: the
// branch-and-bound solver must agree exactly with the DP on every
// DP-reachable instance across all three cost-model tiers, the LB3
// Lagrangian bound must dominate max(LB1, LB2) while staying below OPT,
// and every emitted certificate schedule must replay through the
// validator at exactly the claimed cost.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/validator.h"
#include "offline/exact_bnb.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

enum class Tier { kScalar, kVector, kMatrix };

struct Variant {
  Tier tier = Tier::kScalar;
  bool long_jobs = false;    // lengths in [1, 3]
  bool weighted = false;     // drop costs in [1, 5]
};

/// All twelve cost-model corners of the differential matrix.
std::vector<Variant> differential_matrix() {
  std::vector<Variant> out;
  for (const Tier tier : {Tier::kScalar, Tier::kVector, Tier::kMatrix}) {
    for (const bool long_jobs : {false, true}) {
      for (const bool weighted : {false, true}) {
        out.push_back({tier, long_jobs, weighted});
      }
    }
  }
  return out;
}

/// Small seeded instance exercising the requested cost-model corner;
/// sized to stay comfortably DP-reachable (<= 4 colors, short horizon).
Instance random_instance(std::uint64_t seed, const Variant& v) {
  Rng rng(seed * 977 + static_cast<std::uint64_t>(v.tier) * 131 +
          (v.long_jobs ? 17 : 0) + (v.weighted ? 5 : 0));
  InstanceBuilder builder;
  builder.delta(1 + rng.uniform(0, 3));
  const int colors = static_cast<int>(2 + rng.uniform(0, 2));
  std::vector<ColorId> ids;
  for (int c = 0; c < colors; ++c) {
    const Round delay = 2 + rng.uniform(0, 4);
    const Cost weight = v.weighted ? 1 + rng.uniform(0, 4) : 1;
    const Round length = v.long_jobs ? 1 + rng.uniform(0, 2) : 1;
    ids.push_back(builder.add_color(delay, weight, length));
  }
  if (v.tier != Tier::kScalar) {
    for (const ColorId c : ids) {
      builder.reconfig_cost(c, 1 + rng.uniform(0, 4));
    }
  }
  if (v.tier == Tier::kMatrix) {
    for (const ColorId from : ids) {
      for (const ColorId to : ids) {
        if (from != to) {
          builder.transition_cost(from, to, 1 + rng.uniform(0, 5));
        }
      }
    }
  }
  const Round horizon = 8 + rng.uniform(0, 6);
  const auto batches = 3 + rng.uniform(0, 4);
  for (std::int64_t i = 0; i < batches; ++i) {
    builder.add_jobs(ids[static_cast<std::size_t>(
                         rng.uniform(0, colors - 1))],
                     rng.uniform(0, horizon - 1), 1 + rng.uniform(0, 2));
  }
  return builder.build();
}

class BnbDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbDifferential, MatchesDpExactlyAcrossAllTiers) {
  for (const Variant& v : differential_matrix()) {
    const Instance inst = random_instance(GetParam(), v);
    for (const int m : {1, 2}) {
      const Cost dp = optimal_offline_cost(inst, m);
      const BnbResult bnb = exact_offline_bnb(inst, m);
      ASSERT_TRUE(bnb.closed)
          << "tier " << static_cast<int>(v.tier) << " m " << m;
      EXPECT_EQ(bnb.incumbent, dp)
          << "tier " << static_cast<int>(v.tier) << " long " << v.long_jobs
          << " weighted " << v.weighted << " m " << m;
      EXPECT_EQ(bnb.best_bound, dp);
      ASSERT_TRUE(bnb.has_witness);
      EXPECT_EQ(validate_or_throw(inst, bnb.schedule).total(), bnb.incumbent);
    }
  }
}

TEST_P(BnbDifferential, Lb3DominatesClosedFormAndRespectsOpt) {
  for (const Variant& v : differential_matrix()) {
    const Instance inst = random_instance(GetParam() + 1000, v);
    for (const int m : {1, 2}) {
      const Cost opt = optimal_offline_cost(inst, m);
      const LowerBound lb = offline_lower_bound_full(inst, m);
      EXPECT_GE(lb.lagrangian,
                std::max(lb.configure_or_drop, lb.capacity))
          << "tier " << static_cast<int>(v.tier) << " m " << m;
      EXPECT_LE(lb.lagrangian, opt)
          << "tier " << static_cast<int>(v.tier) << " long " << v.long_jobs
          << " weighted " << v.weighted << " m " << m;
      EXPECT_EQ(lb.best(), lb.lagrangian);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbDifferential,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{11}));

TEST(ExactBnb, Lb3StrictlyDominatesOnCapacityGap) {
  // Two colors, Delta 3, four unit jobs each at round 0 with delay 4, one
  // resource.  LB1 = 2 * min(3, 4) = 6; LB2 = excess(8 - 4) = 4; OPT = 7
  // (configure one color, run its 4 jobs, drop the other 4).  The
  // Lagrangian dual closes the gap: uniform lambda = 1/4 over the window
  // yields L = -4/4 + 2 * min(4, 3 + 1) = 7.
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 4).add_jobs(b, 0, 4);
  const Instance inst = builder.build();
  ASSERT_EQ(optimal_offline_cost(inst, 1), 7);
  const LowerBound lb = offline_lower_bound_full(inst, 1);
  EXPECT_EQ(lb.configure_or_drop, 6);
  EXPECT_EQ(lb.capacity, 4);
  EXPECT_GT(lb.lagrangian, 6) << "LB3 must strictly dominate max(LB1, LB2)";
  EXPECT_LE(lb.lagrangian, 7);
}

TEST(ExactBnb, BudgetReturnsValidInterval) {
  RandomBatchedParams params;
  params.seed = 11;
  params.num_colors = 8;
  params.min_scale = 1;
  params.max_scale = 4;
  params.horizon = 48;
  params.delta = 3;
  const Instance inst = make_random_batched(params);
  BnbOptions options;
  options.max_nodes = 50;  // starve the search
  const BnbResult bnb = exact_offline_bnb(inst, 2, options);
  EXPECT_LE(bnb.best_bound, bnb.incumbent);
  EXPECT_GE(bnb.best_bound, bnb.root_bound.best());
  EXPECT_LE(bnb.incumbent, best_offline_heuristic_cost(inst, 2));
  EXPECT_LE(bnb.incumbent, inst.total_weight());
  if (bnb.has_witness) {
    EXPECT_EQ(validate_or_throw(inst, bnb.schedule).total(), bnb.incumbent);
  }
}

TEST(ExactBnb, MatrixTierBeyondDpLimit) {
  // m = 9 is past the DP's bitmask bound; with a uniform transition matrix
  // the matrix tier is cost-equivalent to the scalar tier, giving an
  // independent cross-check for the Hungarian assignment path.
  const auto build = [](bool matrix) {
    InstanceBuilder builder;
    builder.delta(2);
    std::vector<ColorId> ids;
    for (int c = 0; c < 10; ++c) ids.push_back(builder.add_color(3));
    if (matrix) {
      for (const ColorId from : ids) {
        for (const ColorId to : ids) {
          if (from != to) builder.transition_cost(from, to, 2);
        }
      }
    }
    for (const ColorId c : ids) builder.add_jobs(c, 0, 2);
    return builder.build();
  };
  const Instance scalar_inst = build(false);
  const Instance matrix_inst = build(true);
  ASSERT_EQ(matrix_inst.cost_model().tier(), CostModel::Tier::kMatrix);

  // The DP refuses up front (satellite: no silent undefined behaviour).
  EXPECT_THROW((void)optimal_offline_cost(matrix_inst, 9), InputError);

  const BnbResult scalar_bnb = exact_offline_bnb(scalar_inst, 9);
  const BnbResult matrix_bnb = exact_offline_bnb(matrix_inst, 9);
  ASSERT_TRUE(scalar_bnb.closed);
  ASSERT_TRUE(matrix_bnb.closed);
  EXPECT_EQ(matrix_bnb.incumbent, scalar_bnb.incumbent);
  EXPECT_EQ(validate_or_throw(matrix_inst, matrix_bnb.schedule).total(),
            matrix_bnb.incumbent);
}

TEST(ExactBnb, SparseFastForwardClosesLongHorizons) {
  // Hundreds of rounds with three well-separated bursts: the empty-profile
  // jump must keep the search small while matching the DP exactly.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 3).add_jobs(b, 150, 3).add_jobs(a, 299, 3);
  builder.min_horizon(320);
  const Instance inst = builder.build();
  const Cost dp = optimal_offline_cost(inst, 1);
  const BnbResult bnb = exact_offline_bnb(inst, 1);
  ASSERT_TRUE(bnb.closed);
  EXPECT_EQ(bnb.incumbent, dp);
  EXPECT_EQ(validate_or_throw(inst, bnb.schedule).total(), bnb.incumbent);
  EXPECT_LT(bnb.nodes_expanded, 5000);
}

TEST(ExactBnb, MatrixFastForwardBranchesRetireTiming) {
  // Non-metric matrix: Delta(a -> b) = 9 but cold(b) = 1, so the optimal
  // play retires the slot to black during the idle gap and cold-configures
  // b later.  A fast-forward that pinned the configuration would miss it.
  InstanceBuilder builder;
  const ColorId a = builder.add_color(3);
  const ColorId b = builder.add_color(3);
  builder.reconfig_cost(a, 1).reconfig_cost(b, 1);
  builder.transition_cost(a, b, 9).transition_cost(b, a, 9);
  builder.add_jobs(a, 0, 2).add_jobs(b, 40, 2);
  const Instance inst = builder.build();
  const Cost dp = optimal_offline_cost(inst, 1);
  EXPECT_EQ(dp, 2);  // cold a + cold b, never the 9-cost warm edge
  const BnbResult bnb = exact_offline_bnb(inst, 1);
  ASSERT_TRUE(bnb.closed);
  EXPECT_EQ(bnb.incumbent, dp);
  EXPECT_EQ(validate_or_throw(inst, bnb.schedule).total(), dp);
}

TEST(ExactBnb, IncumbentHintIsUsedAndNeverWorsens) {
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId a = builder.add_color(4);
  builder.add_jobs(a, 0, 4);
  const Instance inst = builder.build();
  const Cost opt = optimal_offline_cost(inst, 1);  // == 3

  BnbOptions options;
  options.incumbent_hint = opt;
  options.seed_greedy = false;
  const BnbResult bnb = exact_offline_bnb(inst, 1, options);
  EXPECT_TRUE(bnb.closed);
  EXPECT_EQ(bnb.incumbent, opt);

  // A loose hint must not degrade the result below the search's own
  // incumbent.
  BnbOptions loose;
  loose.incumbent_hint = opt + 100;
  const BnbResult bnb2 = exact_offline_bnb(inst, 1, loose);
  EXPECT_TRUE(bnb2.closed);
  EXPECT_EQ(bnb2.incumbent, opt);
}

TEST(ExactBnb, DominancePruningPreservesExactness) {
  for (const std::uint64_t seed : {3u, 7u, 13u}) {
    const Instance inst =
        random_instance(seed, {Tier::kVector, true, true});
    BnbOptions no_dom;
    no_dom.use_dominance = false;
    const BnbResult with_dom = exact_offline_bnb(inst, 2);
    const BnbResult without_dom = exact_offline_bnb(inst, 2, no_dom);
    ASSERT_TRUE(with_dom.closed);
    ASSERT_TRUE(without_dom.closed);
    EXPECT_EQ(with_dom.incumbent, without_dom.incumbent) << "seed " << seed;
  }
}

TEST(ExactBnb, RejectsBadInput) {
  InstanceBuilder builder;
  builder.add_color(2);
  EXPECT_THROW((void)exact_offline_bnb(builder.build(), 0), InputError);
  BnbOptions options;
  options.max_nodes = 0;
  EXPECT_THROW((void)exact_offline_bnb(builder.build(), 1, options),
               InputError);
}

TEST(ExactBnb, EmptyInstanceClosesAtZero) {
  InstanceBuilder builder;
  builder.add_color(4);
  const BnbResult bnb = exact_offline_bnb(builder.build(), 2);
  EXPECT_TRUE(bnb.closed);
  EXPECT_EQ(bnb.incumbent, 0);
  EXPECT_EQ(bnb.best_bound, 0);
  EXPECT_TRUE(bnb.has_witness);
}

}  // namespace
}  // namespace rrs
