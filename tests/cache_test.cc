// Unit tests for core/cache: logical color set vs. physical recolorings.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache.h"
#include "util/check.h"

namespace rrs {
namespace {

TEST(CacheAssignment, ConstructionInvariants) {
  CacheAssignment cache(8, 2);
  EXPECT_EQ(cache.num_resources(), 8);
  EXPECT_EQ(cache.replication(), 2);
  EXPECT_EQ(cache.max_distinct(), 4);
  EXPECT_EQ(cache.num_cached(), 0);
  EXPECT_FALSE(cache.full());
  for (int r = 0; r < 8; ++r) EXPECT_EQ(cache.color_at(r), kBlack);
}

TEST(CacheAssignment, BadConstructionThrows) {
  EXPECT_THROW(CacheAssignment(7, 2), InputError);
  EXPECT_THROW(CacheAssignment(4, 0), InputError);
  EXPECT_THROW(CacheAssignment(-2, 1), InputError);
}

TEST(CacheAssignment, InsertClaimsReplicationLocations) {
  CacheAssignment cache(8, 2);
  cache.ensure_colors(4);
  cache.begin_phase();
  cache.insert(3);
  const auto events = cache.finish_phase();
  ASSERT_EQ(events.size(), 2u);  // one recoloring per replica
  EXPECT_TRUE(cache.contains(3));
  int colored = 0;
  for (int r = 0; r < 8; ++r) {
    if (cache.color_at(r) == 3) ++colored;
  }
  EXPECT_EQ(colored, 2);
}

TEST(CacheAssignment, EraseIsFreeUntilReuse) {
  CacheAssignment cache(4, 2);
  cache.ensure_colors(4);
  cache.begin_phase();
  cache.insert(0);
  (void)cache.finish_phase();

  cache.begin_phase();
  cache.erase(0);
  const auto events = cache.finish_phase();
  EXPECT_TRUE(events.empty());  // freeing does not recolor
  EXPECT_FALSE(cache.contains(0));
  // The physical locations still carry color 0.
  int still_colored = 0;
  for (int r = 0; r < 4; ++r) {
    if (cache.color_at(r) == 0) ++still_colored;
  }
  EXPECT_EQ(still_colored, 2);
}

TEST(CacheAssignment, ReinsertAfterEraseIsFree) {
  CacheAssignment cache(4, 2);
  cache.ensure_colors(4);
  cache.begin_phase();
  cache.insert(0);
  (void)cache.finish_phase();

  cache.begin_phase();
  cache.erase(0);
  cache.insert(0);  // reclaim the same still-colored locations
  const auto events = cache.finish_phase();
  EXPECT_TRUE(events.empty());
  EXPECT_TRUE(cache.contains(0));
}

TEST(CacheAssignment, EvictAndReplaceCostsOnlyNewColor) {
  CacheAssignment cache(4, 2);
  cache.ensure_colors(4);
  cache.begin_phase();
  cache.insert(0);
  cache.insert(1);
  EXPECT_EQ(cache.finish_phase().size(), 4u);
  EXPECT_TRUE(cache.full());

  cache.begin_phase();
  cache.erase(0);
  cache.insert(2);
  const auto events = cache.finish_phase();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& [loc, color] : events) {
    (void)loc;
    EXPECT_EQ(color, 2);
  }
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(0));
}

TEST(CacheAssignment, ChurnWithinPhaseCollapsesToNetChange) {
  CacheAssignment cache(2, 1);
  cache.ensure_colors(4);
  cache.begin_phase();
  cache.insert(0);
  cache.insert(1);
  (void)cache.finish_phase();

  // Evict 0, insert 2, evict 2, re-insert 0: net no change.
  cache.begin_phase();
  cache.erase(0);
  cache.insert(2);
  cache.erase(2);
  cache.insert(0);
  const auto events = cache.finish_phase();
  EXPECT_TRUE(events.empty()) << "net-unchanged phase must cost nothing";
}

TEST(CacheAssignment, ReplicationOneUsesAllLocations) {
  CacheAssignment cache(3, 1);
  cache.ensure_colors(3);
  cache.begin_phase();
  cache.insert(0);
  cache.insert(1);
  cache.insert(2);
  EXPECT_EQ(cache.finish_phase().size(), 3u);
  EXPECT_TRUE(cache.full());
}

TEST(CacheAssignment, CachedColorsTracksLogicalSet) {
  CacheAssignment cache(8, 2);
  cache.ensure_colors(5);
  cache.begin_phase();
  cache.insert(4);
  cache.insert(2);
  cache.erase(4);
  cache.insert(0);
  (void)cache.finish_phase();
  auto colors = cache.cached_colors();
  std::sort(colors.begin(), colors.end());
  EXPECT_EQ(colors, (std::vector<ColorId>{0, 2}));
}

TEST(CacheAssignment, MisuseIsRejected) {
  CacheAssignment cache(4, 2);
  cache.ensure_colors(4);
  EXPECT_THROW(cache.insert(0), InvariantError);  // outside phase
  cache.begin_phase();
  EXPECT_THROW(cache.begin_phase(), InvariantError);  // nested phase
  cache.insert(0);
  EXPECT_THROW(cache.insert(0), InvariantError);  // duplicate insert
  cache.insert(1);
  EXPECT_THROW(cache.insert(2), InvariantError);  // full
  EXPECT_THROW(cache.erase(3), InvariantError);   // not cached
  (void)cache.finish_phase();
  EXPECT_THROW((void)cache.finish_phase(), InvariantError);  // no phase
  EXPECT_THROW((void)cache.color_at(9), InputError);
}

TEST(CacheAssignment, ResetClearsMembershipWithoutPerColorWork) {
  // reset() bumps the membership epoch: every color reads as uncached
  // immediately, and the physical layer returns to all-black.
  CacheAssignment cache(4, 2);
  cache.ensure_colors(1000);
  cache.begin_phase();
  cache.insert(997);
  cache.insert(3);
  (void)cache.finish_phase();
  ASSERT_TRUE(cache.contains(997));

  cache.reset();
  EXPECT_EQ(cache.num_cached(), 0);
  EXPECT_FALSE(cache.contains(997));
  EXPECT_FALSE(cache.contains(3));
  for (int r = 0; r < 4; ++r) EXPECT_EQ(cache.color_at(r), kBlack);

  // The cache is fully usable after reset, including re-inserting a color
  // cached in the previous epoch (must recolor: locations were cleared).
  cache.begin_phase();
  cache.insert(997);
  EXPECT_EQ(cache.finish_phase().size(), 2u);
  EXPECT_TRUE(cache.contains(997));

  // reset() inside an open phase is misuse.
  cache.begin_phase();
  EXPECT_THROW(cache.reset(), InvariantError);
  (void)cache.finish_phase();
}

TEST(CacheAssignment, EventsSortedByLocation) {
  CacheAssignment cache(8, 2);
  cache.ensure_colors(8);
  cache.begin_phase();
  cache.insert(5);
  cache.insert(1);
  cache.insert(3);
  const auto events = cache.finish_phase();
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].first, events[i].first);
  }
}

}  // namespace
}  // namespace rrs
