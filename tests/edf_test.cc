// Tests for algs/edf: the pure-deadline scheme and its Appendix B failure.
#include <gtest/gtest.h>

#include "algs/registry.h"
#include "core/validator.h"
#include "offline/appendix_off.h"
#include "sim/runner.h"
#include "workload/adversary_edf.h"

namespace rrs {
namespace {

EngineOptions section3_options(int n, bool record = false) {
  EngineOptions options;
  options.num_resources = n;
  options.replication = 2;
  options.record_schedule = record;
  return options;
}

TEST(Edf, SchedulesAreValid) {
  const AdversaryBInstance adv = make_adversary_b({.n = 4});
  Schedule schedule;
  const RunRecord record = run_algorithm(adv.instance, "edf", 4, &schedule);
  const CostBreakdown validated = validate_or_throw(adv.instance, schedule);
  EXPECT_EQ(validated, record.cost);
}

TEST(Edf, PrefersEarlierColorDeadlines) {
  // Two eligible colors, one cache slot pair (n = 2): EDF must serve the
  // one whose color deadline is earlier.
  InstanceBuilder builder;
  builder.delta(1);  // every arrival wraps: both colors eligible at once
  const ColorId urgent = builder.add_color(2);
  const ColorId relaxed = builder.add_color(16);
  builder.add_jobs(relaxed, 0, 2);
  builder.add_jobs(urgent, 0, 2);
  const Instance inst = builder.build();

  auto policy = make_policy("edf");
  EngineOptions options = section3_options(2, /*record=*/true);
  const EngineResult r = run_policy(inst, *policy, options);
  ASSERT_FALSE(r.schedule.execs.empty());
  // Round 0 executions are the urgent color's jobs.
  for (const ExecEvent& e : r.schedule.execs) {
    if (e.round == 0) {
      EXPECT_EQ(inst.jobs()[static_cast<std::size_t>(e.job)].color, urgent);
    }
  }
  // The urgent jobs (deadline 2) must both run; relaxed ones follow later.
  EXPECT_EQ(r.cost.drops, 0);
}

TEST(Edf, IdleEligibleColorsRankLast) {
  // An eligible-but-idle color must not occupy a slot a nonidle color
  // needs.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId flash = builder.add_color(2);   // eligible then idle
  const ColorId steady = builder.add_color(4);  // continuously busy
  builder.add_jobs(flash, 0, 1);
  for (Round t = 0; t <= 16; t += 4) builder.add_jobs(steady, t, 4);
  const Instance inst = builder.build();

  auto policy = make_policy("edf");
  const EngineResult r = run_policy(inst, *policy, section3_options(2));
  // Steady work never drops: once flash is idle, steady takes the slot.
  EXPECT_LE(r.cost.drops, 1);
}

TEST(Edf, AppendixB_Thrashes) {
  const AdversaryBInstance adv = make_adversary_b({.n = 4});
  auto policy = make_policy("edf");
  const EngineResult online =
      run_policy(adv.instance, *policy, section3_options(adv.params.n));
  const Schedule off = appendix_b_off_schedule(adv);
  const Cost off_cost = validate_or_throw(adv.instance, off).total();
  // OFF pays exactly (n/2 + 1) * Delta and drops nothing.
  EXPECT_EQ(off_cost, Cost{adv.params.n / 2 + 1} * adv.params.delta);
  // EDF pays strictly more.
  EXPECT_GT(online.cost.total(), off_cost);
}

TEST(Edf, AppendixB_RatioGrowsWithKMinusJ) {
  // The paper's bound: ratio >= 2^{k-j-1} / (n/2 + 1); growing k - j grows
  // the ratio without bound.
  double previous_ratio = 0.0;
  for (int bump = 1; bump <= 3; ++bump) {
    AdversaryBParams params;
    params.n = 4;
    params.delta = params.n + 1;
    params.j = 3;  // 2^3 = 8 > Delta = 5
    params.k = params.j + bump;
    const AdversaryBInstance adv = make_adversary_b(params);

    auto policy = make_policy("edf");
    const EngineResult online =
        run_policy(adv.instance, *policy, section3_options(params.n));
    const Schedule off = appendix_b_off_schedule(adv);
    const Cost off_cost = validate_or_throw(adv.instance, off).total();
    const double ratio = static_cast<double>(online.cost.total()) /
                         static_cast<double>(off_cost);
    EXPECT_GT(ratio, previous_ratio)
        << "ratio must grow with k - j (bump " << bump << ")";
    previous_ratio = ratio;
  }
}

TEST(Edf, ReconfigurationDominatesOnAppendixB) {
  // The damage EDF takes on Appendix B is thrashing (reconfigurations),
  // not drops.
  const AdversaryBInstance adv = make_adversary_b({.n = 4, .j = 3, .k = 6});
  auto policy = make_policy("edf");
  const EngineResult r =
      run_policy(adv.instance, *policy, section3_options(adv.params.n));
  EXPECT_GT(r.cost.reconfig_cost, r.cost.drops);
}

}  // namespace
}  // namespace rrs
