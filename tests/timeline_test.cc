// Tests for sim/timeline and the flash-crowd generator.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/runner.h"
#include "sim/timeline.h"
#include "util/check.h"
#include "workload/flash_crowd.h"

namespace rrs {
namespace {

TEST(Timeline, HandBuiltScheduleBuckets) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(4, 2);
  builder.add_jobs(c, 0, 2);
  builder.add_jobs(c, 4, 1);
  const Instance inst = builder.build();  // horizon 8

  Schedule schedule;
  schedule.num_resources = 1;
  schedule.reconfigs = {{0, 0, 0, c}};
  schedule.execs = {{0, 0, 0, 0}, {4, 0, 0, 2}};  // job 1 drops at round 4

  const auto timeline = compute_timeline(inst, schedule, 4);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].start, 0);
  EXPECT_EQ(timeline[0].arrivals, 2);
  EXPECT_EQ(timeline[0].executions, 1);
  EXPECT_EQ(timeline[0].reconfigs, 1);
  EXPECT_EQ(timeline[0].distinct_colors, 1);
  EXPECT_EQ(timeline[1].start, 4);
  EXPECT_EQ(timeline[1].arrivals, 1);
  EXPECT_EQ(timeline[1].executions, 1);
  EXPECT_EQ(timeline[1].drops, 1);       // job 1's deadline is round 4
  EXPECT_EQ(timeline[1].drop_weight, 2);  // weighted color
}

TEST(Timeline, TotalsMatchSchedule) {
  FlashCrowdParams params;
  params.seed = 5;
  params.horizon = 1024;
  params.spike_start = 256;
  params.spike_end = 512;
  const FlashCrowdInstance fc = make_flash_crowd(params);
  Schedule schedule;
  const RunRecord r = run_algorithm(fc.instance, "varbatch", 8, &schedule);

  const auto timeline = compute_timeline(fc.instance, schedule, 64);
  std::int64_t arrivals = 0, executions = 0, drops = 0, reconfigs = 0;
  for (const TimelineBucket& b : timeline) {
    arrivals += b.arrivals;
    executions += b.executions;
    drops += b.drops;
    reconfigs += b.reconfigs;
  }
  EXPECT_EQ(arrivals, static_cast<std::int64_t>(fc.instance.jobs().size()));
  EXPECT_EQ(executions, r.executed);
  EXPECT_EQ(executions + drops, arrivals);
  EXPECT_EQ(reconfigs, r.cost.reconfig_events);
}

TEST(Timeline, SpikeVisibleInArrivals) {
  FlashCrowdParams params;
  params.seed = 6;
  params.horizon = 2048;
  params.spike_start = 1024;
  params.spike_end = 1280;
  params.spike_factor = 25.0;
  const FlashCrowdInstance fc = make_flash_crowd(params);
  Schedule schedule;
  (void)run_algorithm(fc.instance, "varbatch", 8, &schedule);
  const auto timeline = compute_timeline(fc.instance, schedule, 256);

  // The spike bucket(s) must carry far more arrivals than steady buckets.
  const auto spike_bucket = timeline[1024 / 256];
  const auto steady_bucket = timeline[0];
  EXPECT_GT(spike_bucket.arrivals, 3 * steady_bucket.arrivals);
}

TEST(Timeline, CsvHasOneRowPerBucket) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 1);
  const Instance inst = builder.build();
  Schedule schedule;
  schedule.num_resources = 1;
  const auto timeline = compute_timeline(inst, schedule, 2);
  ASSERT_EQ(timeline.size(), 2u);

  std::ostringstream out;
  timeline_csv(timeline).write(out);
  int lines = 0;
  for (const char ch : out.str()) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + 2 buckets
}

TEST(Timeline, InvalidWidthRejected) {
  InstanceBuilder builder;
  builder.add_color(4);
  const Instance inst = builder.build();
  Schedule schedule;
  EXPECT_THROW((void)compute_timeline(inst, schedule, 0), InputError);
}

TEST(FlashCrowd, ParameterValidation) {
  FlashCrowdParams params;
  params.spike_start = 100;
  params.spike_end = 50;
  EXPECT_THROW((void)make_flash_crowd(params), InputError);
  params.spike_end = 200;
  params.horizon = 150;
  EXPECT_THROW((void)make_flash_crowd(params), InputError);
}

TEST(FlashCrowd, DeterministicAndShaped) {
  FlashCrowdParams params;
  params.seed = 9;
  params.horizon = 1024;
  params.spike_start = 512;
  params.spike_end = 640;
  const FlashCrowdInstance a = make_flash_crowd(params);
  const FlashCrowdInstance b = make_flash_crowd(params);
  EXPECT_EQ(a.instance.jobs(), b.instance.jobs());
  // The spike color dominates despite being 1 of 7 colors.
  std::int64_t max_background = 0;
  for (ColorId c = 1; c < a.instance.num_colors(); ++c) {
    max_background = std::max(max_background, a.instance.jobs_of_color(c));
  }
  EXPECT_GT(a.instance.jobs_of_color(a.spike_color), max_background);
}

}  // namespace
}  // namespace rrs
