// Adaptive re-sharding: epoch boundaries, live migration, and the plan
// math underneath.
//
// The load-bearing pins:
//   * MigrationCompositionPin — the runner's era loop (observe rates ->
//     replan -> export/import every color -> fresh engines) produces
//     exactly the totals of the same composition performed by hand through
//     the public Engine / ShardedSource / make_shard_plan API.
//   * NativeVsFabricPin — the demux-fabric data path and the shard-native
//     generator path agree bit-identically on a run that actually
//     re-shards, including where it re-sharded.
//   * K=1 / plan-stable runs are bit-identical to their non-adaptive
//     counterparts: re-sharding that never migrates must be a no-op.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "algs/registry.h"
#include "core/engine.h"
#include "core/instance.h"
#include "core/shard_plan.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "util/check.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"
#include "workload/sharded_source.h"

namespace rrs {
namespace {

/// Fields of a run that must be reproducible (seconds is wall clock).
struct Reproducible {
  CostBreakdown cost;
  std::int64_t executed;
  std::int64_t work_units;
  std::int64_t arrived;
  Round rounds;
  std::int64_t peak_pending;
  std::vector<std::pair<std::string, std::int64_t>> stats;

  friend bool operator==(const Reproducible&, const Reproducible&) = default;
};

Reproducible reproducible(const StreamRunRecord& record) {
  return {record.cost,    record.executed,     record.work_units,
          record.arrived, record.rounds,       record.peak_pending,
          record.stats};
}

// --- ShardPlan at odd granularity ------------------------------------------

TEST(ShardPlanOddGranularity, LargestRemainderSplitsIndivisibleUnits) {
  // n = 20 with unit 4 gives 5 units over 3 shards: no proportional split
  // is exact, so the largest-remainder rule decides who gets the extras.
  const std::vector<double> weights = {5.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const ShardPlan plan = make_shard_plan(6, 3, 20, 4, weights);
  int total = 0;
  for (const int r : plan.shard_resources) {
    EXPECT_GE(r, 4);       // every shard keeps at least one unit
    EXPECT_EQ(r % 4, 0);   // and only whole units
    total += r;
  }
  EXPECT_EQ(total, 20);  // nothing lost, nothing invented
  // The weight-5 color dominates its shard, which must get the most units.
  const int heavy_shard = plan.shard_of_color[0];
  for (int s = 0; s < 3; ++s) {
    EXPECT_GE(plan.shard_resources[static_cast<std::size_t>(heavy_shard)],
              plan.shard_resources[static_cast<std::size_t>(s)]);
  }
}

TEST(ShardPlanOddGranularity, RebalanceIsDeterministic) {
  // Rebalancing feeds observed (float) weights back into the planner every
  // epoch; identical weights must always yield the identical plan or the
  // "did the plan change" test in the runner would oscillate.
  const std::vector<double> weights = {7.5, 3.25, 3.25, 1.0, 1.0, 0.5, 0.5};
  const ShardPlan first = make_shard_plan(7, 3, 20, 4, weights);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const ShardPlan again = make_shard_plan(7, 3, 20, 4, weights);
    EXPECT_EQ(again.shard_of_color, first.shard_of_color);
    EXPECT_EQ(again.shard_colors, first.shard_colors);
    EXPECT_EQ(again.shard_resources, first.shard_resources);
  }
}

// --- No-op re-sharding must be invisible ------------------------------------

TEST(ReshardTest, K1AdaptiveBitIdenticalToRunStreaming) {
  // One shard can never migrate: every boundary recomputes the same trivial
  // plan, so the era loop must reduce exactly to the plain engine run.
  PoissonParams params;
  params.horizon = 256;
  params.seed = 9;
  PoissonSource serial_source(params);
  const StreamRunRecord serial =
      run_streaming(serial_source, "dlru-edf", 8);

  PoissonSource sharded_source(params);
  ShardedRunOptions options;
  options.reshard_every = 64;
  const ShardedRunRecord record = run_streaming_sharded(
      sharded_source, "dlru-edf", 8, 1, kInfiniteHorizon, options);
  EXPECT_TRUE(record.reshard_rounds.empty());
  EXPECT_EQ(reproducible(record.merged), reproducible(serial));
}

TEST(ReshardTest, StableRatesKeepThePlanAndTheResults) {
  // Constant, well-separated per-color rates with matching initial
  // color_weights: every epoch observes the same counts, every boundary
  // recomputes the same plan, and the adaptive run must be bit-identical
  // to the single-plan run — zero migrations, zero drift.
  const auto build = [] {
    InstanceBuilder builder;
    builder.delta(4);
    std::vector<ColorId> colors;
    for (int c = 0; c < 6; ++c) colors.push_back(builder.add_color(8));
    for (Round k = 0; k < 200; ++k) {
      builder.add_jobs(colors[0], k, 2);  // the heavy color
      for (int c = 1; c < 6; ++c) builder.add_jobs(colors[c], k, 1);
    }
    return builder.build();
  };
  const Instance inst = build();
  ShardedRunOptions options;
  options.color_weights = {2.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  MaterializedSource fixed_source(inst);
  const ShardedRunRecord fixed = run_streaming_sharded(
      fixed_source, "dlru-edf", 16, 2, /*max_rounds=*/200, options);

  options.reshard_every = 50;
  MaterializedSource adaptive_source(inst);
  const ShardedRunRecord adaptive = run_streaming_sharded(
      adaptive_source, "dlru-edf", 16, 2, /*max_rounds=*/200, options);

  EXPECT_TRUE(adaptive.reshard_rounds.empty());
  EXPECT_EQ(adaptive.plan.shard_of_color, fixed.plan.shard_of_color);
  EXPECT_EQ(reproducible(adaptive.merged), reproducible(fixed.merged));
  ASSERT_EQ(adaptive.shards.size(), fixed.shards.size());
  for (std::size_t s = 0; s < fixed.shards.size(); ++s) {
    EXPECT_EQ(reproducible(adaptive.shards[s]), reproducible(fixed.shards[s]))
        << "shard " << s;
  }
}

// --- The migration pin ------------------------------------------------------

/// A two-phase instance whose hot color flips at round 100: the uniform
/// initial plan is wrong for the observed rates, so the round-100 boundary
/// must migrate.
Instance make_flipping_instance() {
  InstanceBuilder builder;
  builder.delta(4);
  std::vector<ColorId> colors;
  for (int c = 0; c < 6; ++c) colors.push_back(builder.add_color(8));
  for (Round k = 0; k < 100; ++k) {
    builder.add_jobs(colors[0], k, 2);
    for (int c = 1; c < 6; ++c) builder.add_jobs(colors[c], k, 1);
  }
  for (Round k = 100; k < 200; ++k) {
    builder.add_jobs(colors[1], k, 2);
    for (int c = 2; c < 6; ++c) builder.add_jobs(colors[c], k, 1);
  }
  return builder.build();
}

TEST(ReshardTest, MigrationCompositionPin) {
  const Instance inst = make_flipping_instance();
  constexpr int kShards = 2;
  constexpr int kResources = 16;
  constexpr Round kBoundary = 100;
  constexpr Round kEnd = 200;

  // The adaptive run under test.
  ShardedRunOptions options;
  options.reshard_every = kBoundary;
  MaterializedSource run_source(inst);
  const ShardedRunRecord record = run_streaming_sharded(
      run_source, "dlru-edf", kResources, kShards, kEnd, options);
  ASSERT_EQ(record.reshard_rounds, std::vector<Round>{kBoundary});
  ASSERT_EQ(record.reshard_moved_colors.size(), 1u);
  EXPECT_GT(record.reshard_moved_colors[0], 0);

  // The same composition by hand, through the public API only: era 1 under
  // the uniform plan, observe rates, replan, export/import every color,
  // era 2 under the new plan.
  const int granularity = make_policy("dlru-edf")->resource_granularity(2);
  const ShardPlan plan1 =
      make_shard_plan(inst.num_colors(), kShards, kResources, granularity);

  MaterializedSource manual_source(inst);
  ShardedSourceOptions fabric_options;
  fabric_options.backpressure = false;  // consumed serially below
  std::vector<EngineResult> results;
  std::vector<EngineColorState> exported(
      static_cast<std::size_t>(inst.num_colors()));
  std::vector<double> weights(static_cast<std::size_t>(inst.num_colors()),
                              1.0);
  {
    ShardedSource fabric(manual_source, plan1, kBoundary, fabric_options,
                         /*begin_round=*/0, /*advertised_horizon=*/kEnd);
    for (int s = 0; s < kShards; ++s) {
      EngineOptions engine_options;
      engine_options.num_resources =
          plan1.shard_resources[static_cast<std::size_t>(s)];
      engine_options.replication = 2;
      engine_options.record_schedule = false;
      engine_options.max_rounds = kEnd;
      engine_options.drain_pending = true;
      const std::unique_ptr<Policy> policy = make_policy("dlru-edf");
      Engine engine(fabric.stream(s), *policy, engine_options);
      engine.run_rounds(fabric.stream(s), kBoundary);
      const std::vector<std::int64_t> counts =
          fabric.take_observed_counts(s);
      const std::vector<ColorId>& colors =
          plan1.shard_colors[static_cast<std::size_t>(s)];
      for (std::size_t l = 0; l < colors.size(); ++l) {
        weights[static_cast<std::size_t>(colors[l])] =
            static_cast<double>(counts[l]) + 1.0;
        exported[static_cast<std::size_t>(colors[l])] =
            engine.export_color(static_cast<ColorId>(l));
      }
      results.push_back(engine.abandon());
    }
  }  // era-1 fabric joins; the parent source sits exactly at kBoundary

  const ShardPlan plan2 = make_shard_plan(inst.num_colors(), kShards,
                                          kResources, granularity, weights);
  EXPECT_EQ(plan2.shard_of_color, record.plan.shard_of_color);
  EXPECT_NE(plan2.shard_of_color, plan1.shard_of_color);
  {
    ShardedSource fabric(manual_source, plan2, kEnd, fabric_options,
                         /*begin_round=*/kBoundary,
                         /*advertised_horizon=*/kEnd);
    for (int s = 0; s < kShards; ++s) {
      EngineOptions engine_options;
      engine_options.num_resources =
          plan2.shard_resources[static_cast<std::size_t>(s)];
      engine_options.replication = 2;
      engine_options.record_schedule = false;
      engine_options.max_rounds = kEnd;
      engine_options.drain_pending = true;
      const std::unique_ptr<Policy> policy = make_policy("dlru-edf");
      Engine engine(fabric.stream(s), *policy, engine_options, kBoundary);
      const std::vector<ColorId>& colors =
          plan2.shard_colors[static_cast<std::size_t>(s)];
      for (std::size_t l = 0; l < colors.size(); ++l) {
        engine.import_color(static_cast<ColorId>(l),
                            exported[static_cast<std::size_t>(colors[l])]);
      }
      engine.run_rounds(fabric.stream(s), kEnd);
      results.push_back(engine.finish());
    }
  }

  CostBreakdown cost;
  std::int64_t executed = 0, work_units = 0, arrived = 0;
  for (const EngineResult& r : results) {
    cost.reconfig_events += r.cost.reconfig_events;
    cost.reconfig_cost += r.cost.reconfig_cost;
    cost.drops += r.cost.drops;
    cost.churn_reconfigs += r.cost.churn_reconfigs;
    executed += r.executed;
    work_units += r.work_units;
    arrived += r.arrived;
  }
  EXPECT_EQ(record.merged.cost, cost);
  EXPECT_EQ(record.merged.executed, executed);
  EXPECT_EQ(record.merged.work_units, work_units);
  EXPECT_EQ(record.merged.arrived, arrived);
  // Unit drop costs: every arrived job either executed or was dropped.
  EXPECT_EQ(record.merged.executed + record.merged.cost.drops,
            record.merged.arrived);
}

// --- Native vs fabric cross-validation --------------------------------------

FlashCrowdParams reshard_crowd_params() {
  FlashCrowdParams params;
  params.spike_start = 96;
  params.spike_end = 256;
  params.horizon = 320;
  params.seed = 21;
  return params;
}

TEST(ReshardTest, NativeVsFabricPin) {
  // A flash crowd forces the plan to chase the spike color.  The demuxed
  // fabric and the shard-native clone path are entirely different data
  // paths (threads + rings vs per-shard RNG streams) and must agree
  // bit-identically — on the results and on where they re-sharded.
  ShardedRunOptions options;
  options.reshard_every = 64;

  options.use_native_sources = true;
  FlashCrowdSource native_source(reshard_crowd_params());
  const ShardedRunRecord native = run_streaming_sharded(
      native_source, "dlru-edf", 16, 2, kInfiniteHorizon, options);
  EXPECT_TRUE(native.native_sources);
  EXPECT_EQ(native.splitter_chunks_produced, 0);

  options.use_native_sources = false;
  FlashCrowdSource fabric_source(reshard_crowd_params());
  const ShardedRunRecord fabric = run_streaming_sharded(
      fabric_source, "dlru-edf", 16, 2, kInfiniteHorizon, options);
  EXPECT_FALSE(fabric.native_sources);
  EXPECT_GT(fabric.splitter_chunks_produced, 0);

  EXPECT_FALSE(native.reshard_rounds.empty());  // the spike must migrate
  EXPECT_EQ(native.reshard_rounds, fabric.reshard_rounds);
  EXPECT_EQ(native.reshard_moved_colors, fabric.reshard_moved_colors);
  EXPECT_EQ(native.plan.shard_of_color, fabric.plan.shard_of_color);
  EXPECT_EQ(reproducible(native.merged), reproducible(fabric.merged));
  ASSERT_EQ(native.shards.size(), fabric.shards.size());
  for (std::size_t s = 0; s < native.shards.size(); ++s) {
    EXPECT_EQ(reproducible(native.shards[s]), reproducible(fabric.shards[s]))
        << "shard " << s;
  }
  EXPECT_EQ(native.merged.executed + native.merged.cost.drops,
            native.merged.arrived);
}

TEST(ReshardTest, AdaptiveRunIsDeterministic) {
  std::vector<Reproducible> merged;
  std::vector<std::vector<Round>> boundaries;
  for (int repeat = 0; repeat < 3; ++repeat) {
    FlashCrowdSource source(reshard_crowd_params());
    ShardedRunOptions options;
    options.reshard_every = 64;
    const ShardedRunRecord record = run_streaming_sharded(
        source, "dlru-edf", 16, 4, kInfiniteHorizon, options);
    merged.push_back(reproducible(record.merged));
    boundaries.push_back(record.reshard_rounds);
  }
  EXPECT_EQ(merged[0], merged[1]);
  EXPECT_EQ(merged[0], merged[2]);
  EXPECT_EQ(boundaries[0], boundaries[1]);
  EXPECT_EQ(boundaries[0], boundaries[2]);
}

TEST(ReshardTest, MergedObserverCoversEveryEra) {
  // The merged observer must account for the whole run even though the
  // engines (and their per-era observers) were torn down mid-run, and its
  // trace must carry one reshard event per boundary that migrated.
  FlashCrowdSource source(reshard_crowd_params());
  ShardedRunOptions options;
  options.reshard_every = 64;
  Observer merged;
  options.observer = &merged;
  const ShardedRunRecord record = run_streaming_sharded(
      source, "dlru-edf", 16, 2, kInfiniteHorizon, options);
  ASSERT_FALSE(record.reshard_rounds.empty());

  EXPECT_EQ(merged.final_snapshot.executed, record.merged.executed);
  EXPECT_EQ(merged.final_snapshot.arrived, record.merged.arrived);
  EXPECT_EQ(merged.final_snapshot.drop_weight, record.merged.cost.drops);
  EXPECT_EQ(merged.final_snapshot.pending, 0);  // drained run: nothing left
  EXPECT_EQ(merged.final_snapshot.fabric_chunks_produced,
            record.splitter_chunks_produced);
  std::size_t reshard_events = 0;
  for (const TraceEvent& event : merged.trace.events()) {
    if (event.kind == TraceKind::kReshard) ++reshard_events;
  }
  EXPECT_EQ(reshard_events, record.reshard_rounds.size());
}

TEST(ReshardTest, RejectsIncompatibleFeatures) {
  ShardedRunOptions options;
  options.reshard_every = 64;

  {
    FlashCrowdSource source(reshard_crowd_params());
    FaultPlan faults;
    faults.events.push_back({32, 0, true});
    ShardedRunOptions with_faults = options;
    with_faults.fault_plan = &faults;
    EXPECT_THROW((void)run_streaming_sharded(source, "dlru-edf", 16, 2,
                                             kInfiniteHorizon, with_faults),
                 InputError);
  }
  {
    FlashCrowdSource source(reshard_crowd_params());
    Observer a, b;
    ShardedRunOptions with_shard_obs = options;
    with_shard_obs.shard_observers = {&a, &b};
    EXPECT_THROW((void)run_streaming_sharded(source, "dlru-edf", 16, 2,
                                             kInfiniteHorizon,
                                             with_shard_obs),
                 InputError);
  }
  {
    FlashCrowdSource source(reshard_crowd_params());
    ObsConfig config;
    config.snapshot_every = 32;
    Observer periodic(config);
    ShardedRunOptions with_series = options;
    with_series.observer = &periodic;
    EXPECT_THROW((void)run_streaming_sharded(source, "dlru-edf", 16, 2,
                                             kInfiniteHorizon, with_series),
                 InputError);
  }
  {
    FlashCrowdSource source(reshard_crowd_params());
    ShardedRunOptions negative = options;
    negative.reshard_every = -1;
    EXPECT_THROW((void)run_streaming_sharded(source, "dlru-edf", 16, 2,
                                             kInfiniteHorizon, negative),
                 InputError);
  }
}

}  // namespace
}  // namespace rrs
