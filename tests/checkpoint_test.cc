// Checkpoint/restore round-trip pins: for every streaming algorithm x
// workload family, checkpointing at an arbitrary mid-stream round and
// restoring into a fresh engine (and fresh source) must finish with
// results bit-identical to the uninterrupted run — costs, schedules,
// observer stats, snapshot series — serial and sharded (K=2), with and
// without fast-forward.  Plus pending-budget admission-control semantics
// on the flash-crowd family.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/generator_source.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

const char* const kStreamingAlgorithms[] = {
    "dlru", "edf", "dlru-edf", "adaptive", "seq-edf", "ds-seq-edf",
};

const char* const kFamilies[] = {
    "random-batched", "poisson", "flash-crowd", "datacenter",
};

/// Fresh streaming source for (family, seed); mirrors streaming_test.
std::unique_ptr<GeneratorSource> make_source(const std::string& family,
                                             std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<RandomBatchedSource>(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<PoissonSource>(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.spike_start = 128;
    params.spike_end = 192;
    params.horizon = 512;
    params.seed = seed;
    return std::make_unique<FlashCrowdSource>(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 1024;
    params.seed = seed;
    return std::make_unique<DatacenterSource>(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return nullptr;
}

/// run_streaming's engine options, with the matrix's toggles applied.
EngineOptions stream_options(const std::string& algorithm, bool fast_forward,
                             std::unique_ptr<Policy>& policy) {
  EngineOptions options;
  policy = make_stream_policy(algorithm, options);
  options.num_resources = 8;
  options.record_schedule = true;  // pin schedule bytes too
  options.drain_pending = true;
  options.fast_forward = fast_forward;
  return options;
}

void expect_identical(const EngineResult& a, const EngineResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.cost, b.cost) << label;
  EXPECT_EQ(a.executed, b.executed) << label;
  EXPECT_EQ(a.work_units, b.work_units) << label;
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.peak_pending, b.peak_pending) << label;
  EXPECT_EQ(a.admission_rejected, b.admission_rejected) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  EXPECT_EQ(a.schedule.reconfigs, b.schedule.reconfigs) << label;
  EXPECT_EQ(a.schedule.execs, b.schedule.execs) << label;
  EXPECT_EQ(a.policy_stats, b.policy_stats) << label;
}

void expect_identical(const StreamRunRecord& a, const StreamRunRecord& b,
                      const std::string& label) {
  EXPECT_EQ(a.cost, b.cost) << label;
  EXPECT_EQ(a.executed, b.executed) << label;
  EXPECT_EQ(a.work_units, b.work_units) << label;
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.peak_pending, b.peak_pending) << label;
  EXPECT_EQ(a.admission_rejected, b.admission_rejected) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  EXPECT_EQ(a.stats, b.stats) << label;
}

using Cell = std::tuple<std::string, std::string, bool>;

class CheckpointRoundTrip : public ::testing::TestWithParam<Cell> {};

// Serial pin: run to an arbitrary mid-stream round, checkpoint (source
// embedded), restore onto a fresh engine + fresh source, finish — every
// result field matches the uninterrupted run.
TEST_P(CheckpointRoundTrip, SerialBitIdentical) {
  const auto& [algorithm, family, ff] = GetParam();
  const std::uint64_t seed = 1;
  const std::string label = algorithm + "/" + family;

  // Uninterrupted reference.
  const auto ref_source = make_source(family, seed);
  std::unique_ptr<Policy> ref_policy;
  const EngineOptions ref_options = stream_options(algorithm, ff, ref_policy);
  Engine ref_engine(*ref_source, *ref_policy, ref_options);
  const Round end = ref_engine.arrival_end();
  ASSERT_GT(end, 2);
  ref_engine.run_rounds(*ref_source, end);
  const EngineResult reference = ref_engine.finish();

  // Interrupted: checkpoint at an arbitrary interior round.
  const Round mid = end / 3 + 1;
  const auto cut_source = make_source(family, seed);
  std::unique_ptr<Policy> cut_policy;
  const EngineOptions cut_options = stream_options(algorithm, ff, cut_policy);
  Engine cut_engine(*cut_source, *cut_policy, cut_options);
  cut_engine.run_rounds(*cut_source, mid);
  std::stringstream bytes(std::ios::in | std::ios::out | std::ios::binary);
  cut_engine.checkpoint(bytes, cut_source.get());

  // Restore onto a fresh engine and a fresh (position-zero) source.
  const auto resumed_source = make_source(family, seed);
  std::unique_ptr<Policy> resumed_policy;
  const EngineOptions resumed_options =
      stream_options(algorithm, ff, resumed_policy);
  Engine resumed_engine(*resumed_source, *resumed_policy, resumed_options);
  resumed_engine.restore(bytes, resumed_source.get());
  EXPECT_EQ(resumed_engine.round(), mid) << label;
  resumed_engine.run_rounds(*resumed_source, end);
  const EngineResult resumed = resumed_engine.finish();

  expect_identical(reference, resumed, label);
}

// Sharded pin (K=2): a run that writes a coordinated checkpoint set
// mid-stream is bit-identical to one that never checkpoints, and a
// resumed run from that set finishes bit-identical too.
TEST_P(CheckpointRoundTrip, ShardedBitIdentical) {
  const auto& [algorithm, family, ff] = GetParam();
  const std::uint64_t seed = 2;
  const std::string label = algorithm + "/" + family;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
  std::filesystem::remove_all(dir);

  ShardedRunOptions base;
  base.fast_forward = ff;

  const auto ref_source = make_source(family, seed);
  const ShardedRunRecord reference = run_streaming_sharded(
      *ref_source, algorithm, 8, 2, kInfiniteHorizon, base);

  // Same run, checkpointing mid-stream: results unperturbed.  The drain
  // can push merged.rounds past the arrival horizon, so the checkpoint
  // round is picked inside the horizon itself.
  ShardedRunOptions writing = base;
  writing.checkpoint_dir = dir.string();
  writing.checkpoint_at = ref_source->horizon() / 2;
  ASSERT_GT(writing.checkpoint_at, 0);
  const auto ckpt_source = make_source(family, seed);
  const ShardedRunRecord checkpointed = run_streaming_sharded(
      *ckpt_source, algorithm, 8, 2, kInfiniteHorizon, writing);
  expect_identical(reference.merged, checkpointed.merged, label);

  // Resume from the set and finish: still bit-identical.
  ShardedRunOptions resuming = base;
  resuming.checkpoint_dir = dir.string();
  resuming.resume = true;
  const auto res_source = make_source(family, seed);
  const ShardedRunRecord resumed = run_streaming_sharded(
      *res_source, algorithm, 8, 2, kInfiniteHorizon, resuming);
  expect_identical(reference.merged, resumed.merged, label);
  ASSERT_EQ(reference.shards.size(), resumed.shards.size());
  for (std::size_t s = 0; s < reference.shards.size(); ++s) {
    expect_identical(reference.shards[s], resumed.shards[s],
                     label + " shard " + std::to_string(s));
  }
  std::filesystem::remove_all(dir);
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const char* const algorithm : kStreamingAlgorithms) {
    for (const char* const family : kFamilies) {
      for (const bool ff : {true, false}) {
        cells.emplace_back(algorithm, family, ff);
      }
    }
  }
  return cells;
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     (std::get<2>(info.param) ? "_ff" : "_noff");
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, CheckpointRoundTrip,
                         ::testing::ValuesIn(all_cells()), cell_name);

// Observer state rides inside the checkpoint: the restored run's stats and
// snapshot series equal the uninterrupted run's.
TEST(CheckpointObserver, StatsAndSnapshotSeriesRoundTrip) {
  ObsConfig config;
  config.snapshot_every = 32;

  const auto run = [&](Observer& obs, bool interrupt) {
    const auto source = make_source("flash-crowd", 3);
    std::unique_ptr<Policy> policy;
    EngineOptions options = stream_options("dlru-edf", true, policy);
    options.observer = &obs;
    Engine engine(*source, *policy, options);
    const Round end = engine.arrival_end();
    if (!interrupt) {
      engine.run_rounds(*source, end);
      return engine.finish();
    }
    const Round mid = end / 2;
    engine.run_rounds(*source, mid);
    std::stringstream bytes(std::ios::in | std::ios::out | std::ios::binary);
    engine.checkpoint(bytes, source.get());

    const auto resumed_source = make_source("flash-crowd", 3);
    std::unique_ptr<Policy> resumed_policy;
    EngineOptions resumed_options =
        stream_options("dlru-edf", true, resumed_policy);
    resumed_options.observer = &obs;
    Engine resumed(*resumed_source, *resumed_policy, resumed_options);
    resumed.restore(bytes, resumed_source.get());
    resumed.run_rounds(*resumed_source, end);
    return resumed.finish();
  };

  Observer straight(config);
  const EngineResult a = run(straight, false);
  Observer restored(config);
  const EngineResult b = run(restored, true);

  expect_identical(a, b, "observer round trip");
  ASSERT_FALSE(straight.snapshots.empty());
  EXPECT_EQ(straight.snapshots, restored.snapshots);
  EXPECT_EQ(straight.final_snapshot, restored.final_snapshot);
  EXPECT_EQ(to_json_line(straight.final_snapshot),
            to_json_line(restored.final_snapshot));
  EXPECT_EQ(straight.stats.admission_rejected(),
            restored.stats.admission_rejected());
}

// Restoring into an engine built with different options must reject, not
// half-apply.
TEST(CheckpointMismatch, RejectsDifferentOptionsOrPolicy) {
  const auto source = make_source("poisson", 5);
  std::unique_ptr<Policy> policy;
  const EngineOptions options = stream_options("dlru-edf", true, policy);
  Engine engine(*source, *policy, options);
  engine.run_rounds(*source, 16);
  std::stringstream bytes(std::ios::in | std::ios::out | std::ios::binary);
  engine.checkpoint(bytes, source.get());
  const std::string frame = bytes.str();

  {
    // Different resource count.
    const auto s2 = make_source("poisson", 5);
    std::unique_ptr<Policy> p2;
    EngineOptions o2 = stream_options("dlru-edf", true, p2);
    o2.num_resources = 4;
    Engine e2(*s2, *p2, o2);
    std::istringstream in(frame, std::ios::binary);
    EXPECT_THROW(e2.restore(in, s2.get()), InputError);
  }
  {
    // Different policy.
    const auto s2 = make_source("poisson", 5);
    std::unique_ptr<Policy> p2;
    const EngineOptions o2 = stream_options("dlru", true, p2);
    Engine e2(*s2, *p2, o2);
    std::istringstream in(frame, std::ios::binary);
    EXPECT_THROW(e2.restore(in, s2.get()), InputError);
  }
  {
    // Restoring WITHOUT a source must still work: the embedded source
    // state is skipped, for callers that reposition the source themselves.
    const auto s2 = make_source("poisson", 5);
    std::unique_ptr<Policy> p2;
    const EngineOptions o2 = stream_options("dlru-edf", true, p2);
    Engine e2(*s2, *p2, o2);
    std::istringstream in(frame, std::ios::binary);
    e2.restore(in, nullptr);
    EXPECT_EQ(e2.round(), 16);
  }
}

// --- pending-budget admission control --------------------------------------

StreamRunRecord run_with_budget(std::int64_t budget, std::int64_t* peak,
                                Observer* obs = nullptr) {
  const auto source = make_source("flash-crowd", 7);
  std::unique_ptr<Policy> policy;
  EngineOptions options = stream_options("dlru-edf", true, policy);
  options.num_resources = 4;  // starve the spike so pending piles up
  options.record_schedule = false;
  options.pending_budget = budget;
  options.observer = obs;
  Engine engine(*source, *policy, options);
  engine.run_rounds(*source, engine.arrival_end());
  EngineResult result = engine.finish();
  if (peak != nullptr) *peak = result.peak_pending;
  StreamRunRecord record;
  record.cost = result.cost;
  record.executed = result.executed;
  record.work_units = result.work_units;
  record.arrived = result.arrived;
  record.rounds = result.rounds;
  record.peak_pending = result.peak_pending;
  record.admission_rejected = result.admission_rejected;
  record.degraded = result.degraded;
  record.stats = std::move(result.policy_stats);
  return record;
}

TEST(AdmissionControl, FlashCrowdHoldsBudgetAndCountsRejections) {
  std::int64_t unbounded_peak = 0;
  const StreamRunRecord off = run_with_budget(0, &unbounded_peak);
  ASSERT_GT(unbounded_peak, 32) << "spike too small to exercise the budget";

  Observer obs;
  std::int64_t peak = 0;
  const StreamRunRecord on = run_with_budget(32, &peak, &obs);
  EXPECT_LE(peak, 32);
  EXPECT_GT(on.admission_rejected, 0);
  EXPECT_EQ(on.arrived, off.arrived) << "shed jobs still count as arrivals";
  EXPECT_EQ(obs.stats.admission_rejected(), on.admission_rejected);
  EXPECT_EQ(obs.final_snapshot.admission_rejected, on.admission_rejected);
  EXPECT_LE(on.admission_rejected, obs.final_snapshot.drop_count)
      << "admission rejections are a subset of drops";
}

TEST(AdmissionControl, UnhitBudgetIsBitIdenticalToOff) {
  std::int64_t peak = 0;
  const StreamRunRecord off = run_with_budget(0, &peak);
  const StreamRunRecord unhit = run_with_budget(peak + 1, nullptr);
  expect_identical(off, unhit, "unhit budget");
  EXPECT_EQ(unhit.admission_rejected, 0);
}

TEST(AdmissionControl, BudgetStateSurvivesCheckpoint) {
  // Checkpoint mid-spike with the budget active; the restored run's
  // admission counters match the uninterrupted budgeted run exactly.
  const auto run = [&](bool interrupt) {
    const auto source = make_source("flash-crowd", 9);
    std::unique_ptr<Policy> policy;
    EngineOptions options = stream_options("dlru-edf", true, policy);
    options.num_resources = 4;
    options.record_schedule = false;
    options.pending_budget = 24;
    Engine engine(*source, *policy, options);
    const Round end = engine.arrival_end();
    if (!interrupt) {
      engine.run_rounds(*source, end);
      return engine.finish();
    }
    engine.run_rounds(*source, 160);  // inside the spike
    std::stringstream bytes(std::ios::in | std::ios::out | std::ios::binary);
    engine.checkpoint(bytes, source.get());
    const auto s2 = make_source("flash-crowd", 9);
    std::unique_ptr<Policy> p2;
    EngineOptions o2 = stream_options("dlru-edf", true, p2);
    o2.num_resources = 4;
    o2.record_schedule = false;
    o2.pending_budget = 24;
    Engine resumed(*s2, *p2, o2);
    resumed.restore(bytes, s2.get());
    resumed.run_rounds(*s2, end);
    return resumed.finish();
  };
  const EngineResult straight = run(false);
  const EngineResult resumed = run(true);
  ASSERT_GT(straight.admission_rejected, 0);
  expect_identical(straight, resumed, "budgeted round trip");
}

}  // namespace
}  // namespace rrs
