// Unit tests for core/cost_model: the three reconfiguration tiers, the
// per-color drop-weight and length tables, tier promotion, validation,
// and shard restriction.
#include <gtest/gtest.h>

#include <vector>

#include "core/cost_model.h"
#include "util/check.h"

namespace rrs {
namespace {

TEST(CostModel, EmptyDefaultIsScalarUniform) {
  const CostModel model;
  EXPECT_EQ(model.tier(), CostModel::Tier::kScalar);
  EXPECT_EQ(model.num_colors(), 0);
  EXPECT_EQ(model.delta(), 1);
  EXPECT_TRUE(model.unit_drop_costs());
  EXPECT_TRUE(model.unit_lengths());
  EXPECT_TRUE(model.scalar_reconfig());
  EXPECT_TRUE(model.uniform());
  EXPECT_EQ(model.max_length(), 1);
  model.validate();
}

TEST(CostModel, ScalarFactoryMatchesThePaperModel) {
  const CostModel model = CostModel::scalar(7, 3);
  EXPECT_EQ(model.tier(), CostModel::Tier::kScalar);
  EXPECT_EQ(model.num_colors(), 3);
  EXPECT_EQ(model.delta(), 7);
  EXPECT_TRUE(model.uniform());
  for (ColorId c = 0; c < 3; ++c) {
    EXPECT_EQ(model.drop_cost(c), 1);
    EXPECT_EQ(model.length(c), 1);
    EXPECT_EQ(model.cold_cost(c), 7);
    EXPECT_EQ(model.min_incoming_cost(c), 7);
    // Every (from, to) pair prices at Delta in the scalar tier...
    EXPECT_EQ(model.reconfig_cost(kBlack, c), 7);
    for (ColorId f = 0; f < 3; ++f) EXPECT_EQ(model.reconfig_cost(f, c), 7);
    // ...and freeing a location is always free.
    EXPECT_EQ(model.reconfig_cost(c, kBlack), 0);
  }
  model.validate();
}

TEST(CostModel, DropCostsAndLengthsTrackUniformFlags) {
  CostModel model = CostModel::scalar(1, 2);
  model.set_drop_cost(0, 5);
  EXPECT_FALSE(model.unit_drop_costs());
  EXPECT_TRUE(model.unit_lengths());
  EXPECT_FALSE(model.uniform());
  model.set_length(1, 4);
  EXPECT_FALSE(model.unit_lengths());
  EXPECT_EQ(model.drop_cost(0), 5);
  EXPECT_EQ(model.drop_cost(1), 1);
  EXPECT_EQ(model.length(0), 1);
  EXPECT_EQ(model.length(1), 4);
  EXPECT_EQ(model.max_length(), 4);
  EXPECT_TRUE(model.scalar_reconfig());  // weights/lengths keep the tier
  model.validate();
}

TEST(CostModel, ColdCostPromotesToVectorWithDeltaDefaults) {
  CostModel model = CostModel::scalar(3, 3);
  model.set_cold_cost(1, 9);
  EXPECT_EQ(model.tier(), CostModel::Tier::kVector);
  EXPECT_FALSE(model.scalar_reconfig());
  EXPECT_EQ(model.cold_cost(0), 3);  // unset colors default to Delta
  EXPECT_EQ(model.cold_cost(1), 9);
  EXPECT_EQ(model.cold_cost(2), 3);
  // The vector tier is target-only: `from` never matters.
  EXPECT_EQ(model.reconfig_cost(kBlack, 1), 9);
  EXPECT_EQ(model.reconfig_cost(0, 1), 9);
  EXPECT_EQ(model.reconfig_cost(2, 1), 9);
  EXPECT_EQ(model.reconfig_cost(1, kBlack), 0);
  EXPECT_EQ(model.min_incoming_cost(1), 9);
  model.validate();
}

TEST(CostModel, TransitionCostPromotesToMatrixWithColdDefaults) {
  CostModel model = CostModel::scalar(4, 3);
  model.set_cold_cost(2, 10);
  model.set_transition_cost(0, 2, 2);  // warm discount 10 -> 2
  EXPECT_EQ(model.tier(), CostModel::Tier::kMatrix);
  EXPECT_EQ(model.reconfig_cost(0, 2), 2);
  // Unset warm entries default to the cold cost of their target.
  EXPECT_EQ(model.reconfig_cost(1, 2), 10);
  EXPECT_EQ(model.reconfig_cost(kBlack, 2), 10);
  EXPECT_EQ(model.reconfig_cost(0, 1), 4);
  // min over {cold, every warm incoming}: the discount wins.
  EXPECT_EQ(model.min_incoming_cost(2), 2);
  EXPECT_EQ(model.min_incoming_cost(1), 4);
  model.validate();
}

TEST(CostModel, TransitionFromBlackSetsTheColdColumn) {
  CostModel model = CostModel::scalar(2, 2);
  model.set_transition_cost(kBlack, 1, 6);
  EXPECT_EQ(model.tier(), CostModel::Tier::kVector);  // no warm entry set
  EXPECT_EQ(model.cold_cost(1), 6);
  EXPECT_EQ(model.reconfig_cost(0, 1), 6);
}

TEST(CostModel, ColdUpdateChasesDefaultsButKeepsExplicitDiscounts) {
  CostModel model = CostModel::scalar(5, 3);
  model.set_transition_cost(0, 1, 2);  // explicit discount, must survive
  // Entries still at the old cold default (5) follow the new cold price.
  model.set_cold_cost(1, 20);
  EXPECT_EQ(model.reconfig_cost(0, 1), 2);
  EXPECT_EQ(model.reconfig_cost(2, 1), 20);
  EXPECT_EQ(model.reconfig_cost(kBlack, 1), 20);
  model.validate();
}

TEST(CostModel, ZeroCostWarmTransitionsAreAllowed) {
  CostModel model = CostModel::scalar(3, 2);
  model.set_transition_cost(0, 1, 0);
  EXPECT_EQ(model.reconfig_cost(0, 1), 0);
  EXPECT_EQ(model.min_incoming_cost(1), 0);
  model.validate();
}

TEST(CostModel, ResizeGrowsTablesAndRepacksTheMatrix) {
  CostModel model = CostModel::scalar(2, 2);
  model.set_drop_cost(1, 3);
  model.set_length(0, 2);
  model.set_cold_cost(0, 4);
  model.set_transition_cost(1, 0, 1);
  model.resize(4);
  EXPECT_EQ(model.num_colors(), 4);
  // Old entries survive the row-major repack...
  EXPECT_EQ(model.drop_cost(1), 3);
  EXPECT_EQ(model.length(0), 2);
  EXPECT_EQ(model.reconfig_cost(1, 0), 1);
  EXPECT_EQ(model.reconfig_cost(kBlack, 0), 4);
  // ...new colors default to Delta cold and cold-priced warm entries.
  EXPECT_EQ(model.cold_cost(3), 2);
  EXPECT_EQ(model.reconfig_cost(0, 3), 2);
  EXPECT_EQ(model.reconfig_cost(3, 0), 4);
  EXPECT_EQ(model.drop_cost(3), 1);
  EXPECT_EQ(model.length(3), 1);
  // resize never shrinks.
  model.resize(1);
  EXPECT_EQ(model.num_colors(), 4);
  model.validate();
}

TEST(CostModel, MutatorsRejectOutOfRangeValues) {
  CostModel model = CostModel::scalar(2, 2);
  EXPECT_THROW(model.set_delta(0), InputError);
  EXPECT_THROW(model.set_drop_cost(0, 0), InputError);
  EXPECT_THROW(model.set_length(0, 0), InputError);
  EXPECT_THROW(model.set_cold_cost(0, 0), InputError);
  EXPECT_THROW(model.set_transition_cost(0, 1, -1), InputError);
  EXPECT_THROW(model.resize(-1), InputError);
  // Rejected mutations leave the model untouched and valid.
  EXPECT_TRUE(model.uniform());
  model.validate();
}

TEST(CostModel, RestrictedScalarKeepsDeltaAndPerColorTables) {
  CostModel model = CostModel::scalar(6, 4);
  model.set_drop_cost(2, 7);
  model.set_length(3, 5);
  const std::vector<ColorId> keep = {3, 2};
  const CostModel sub = model.restricted(keep);
  EXPECT_EQ(sub.tier(), CostModel::Tier::kScalar);
  EXPECT_EQ(sub.num_colors(), 2);
  EXPECT_EQ(sub.delta(), 6);
  // Relabeled densely in span order: local 0 = global 3, local 1 = global 2.
  EXPECT_EQ(sub.length(0), 5);
  EXPECT_EQ(sub.drop_cost(1), 7);
  EXPECT_FALSE(sub.unit_drop_costs());
  EXPECT_FALSE(sub.unit_lengths());
  sub.validate();
}

TEST(CostModel, RestrictedPreservesColdAndWarmEntriesExactly) {
  CostModel model = CostModel::scalar(3, 4);
  model.set_cold_cost(1, 8);
  model.set_cold_cost(2, 12);
  model.set_transition_cost(1, 2, 4);
  model.set_transition_cost(2, 1, 0);
  const std::vector<ColorId> keep = {2, 1};
  const CostModel sub = model.restricted(keep);
  EXPECT_EQ(sub.tier(), CostModel::Tier::kMatrix);
  EXPECT_EQ(sub.cold_cost(0), 12);
  EXPECT_EQ(sub.cold_cost(1), 8);
  EXPECT_EQ(sub.reconfig_cost(1, 0), 4);   // global 1 -> 2
  EXPECT_EQ(sub.reconfig_cost(0, 1), 0);   // global 2 -> 1
  EXPECT_EQ(sub.reconfig_cost(kBlack, 0), 12);
  sub.validate();
}

TEST(CostModel, RestrictedVectorTierStaysVector) {
  CostModel model = CostModel::scalar(2, 3);
  model.set_cold_cost(0, 9);
  const std::vector<ColorId> keep = {0};
  const CostModel sub = model.restricted(keep);
  EXPECT_EQ(sub.tier(), CostModel::Tier::kVector);
  EXPECT_EQ(sub.cold_cost(0), 9);
  sub.validate();
}

TEST(CostModel, RestrictionOfUniformSliceIsUniform) {
  // A shard whose colors all carry unit weights/lengths must read as
  // uniform even when the parent model is not.
  CostModel model = CostModel::scalar(2, 3);
  model.set_drop_cost(0, 4);
  model.set_length(0, 3);
  const std::vector<ColorId> keep = {1, 2};
  const CostModel sub = model.restricted(keep);
  EXPECT_TRUE(sub.unit_drop_costs());
  EXPECT_TRUE(sub.unit_lengths());
  EXPECT_TRUE(sub.uniform());
}

TEST(CostModel, EqualityComparesEveryTable) {
  CostModel a = CostModel::scalar(2, 2);
  CostModel b = CostModel::scalar(2, 2);
  EXPECT_EQ(a, b);
  b.set_drop_cost(0, 2);
  EXPECT_NE(a, b);
  a.set_drop_cost(0, 2);
  EXPECT_EQ(a, b);
  b.set_transition_cost(0, 1, 1);
  EXPECT_NE(a, b);  // tiers differ
}

}  // namespace
}  // namespace rrs
