// The fast-path equivalence matrix and the weighted-drop parity checks.
//
// Equivalence: a scalar-uniform configuration (scalar Delta, unit drop
// costs, unit lengths) must run bit-identically whether its charges go
// through the scalar fast path or through an all-equal vector or matrix
// model — for run_streaming AND run_streaming_sharded, across every engine
// algorithm x workload family x seed.  This pins the tentpole guarantee
// that generalizing the cost model never perturbs the paper's setting.
//
// Parity: every layer that prices a drop must price it identically —
// engine CostBreakdown == validator recomputation == schedule.cost() ==
// obs StreamStats weighted totals — including under non-uniform weights,
// lengths, and a warm-discount matrix.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/arrival_source.h"
#include "core/validator.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

const char* const kStreamingAlgorithms[] = {
    "dlru", "edf", "dlru-edf", "adaptive", "seq-edf", "ds-seq-edf",
};

const char* const kFamilies[] = {
    "random-batched", "poisson", "flash-crowd", "datacenter",
};

/// Materialized instance for (family, seed); mirrors sharded_test's
/// streaming sources but in instance form so the cost-model tier can be
/// rebuilt around the identical job sequence.
Instance make_instance(const std::string& family, std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return make_random_batched(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 256;
    params.seed = seed;
    return make_poisson(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.spike_start = 64;
    params.spike_end = 128;
    params.horizon = 256;
    params.seed = seed;
    return make_flash_crowd(params).instance;
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 256;
    params.seed = seed;
    return make_datacenter(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return {};
}

/// Rebuilds `base` with the identical colors and job sequence but its cost
/// model promoted to `tier`, every entry equal to Delta — behaviorally the
/// same prices, structurally a different charging path.
Instance with_all_equal_tier(const Instance& base, CostModel::Tier tier) {
  InstanceBuilder builder;
  builder.delta(base.delta());
  for (ColorId c = 0; c < base.num_colors(); ++c) {
    builder.add_color(base.delay_bound(c), base.drop_cost(c),
                      base.length(c));
  }
  if (tier != CostModel::Tier::kScalar) {
    for (ColorId c = 0; c < base.num_colors(); ++c) {
      builder.reconfig_cost(c, base.delta());
    }
  }
  if (tier == CostModel::Tier::kMatrix) {
    for (ColorId f = 0; f < base.num_colors(); ++f) {
      for (ColorId t = 0; t < base.num_colors(); ++t) {
        if (f != t) builder.transition_cost(f, t, base.delta());
      }
    }
  }
  for (const Job& job : base.jobs()) {
    builder.add_jobs(job.color, job.arrival, 1);
  }
  builder.min_horizon(base.horizon());
  return builder.build();
}

void expect_same_stream_record(const StreamRunRecord& got,
                               const StreamRunRecord& want,
                               const std::string& label) {
  EXPECT_EQ(got.cost, want.cost) << label;
  EXPECT_EQ(got.executed, want.executed) << label;
  EXPECT_EQ(got.work_units, want.work_units) << label;
  EXPECT_EQ(got.arrived, want.arrived) << label;
  EXPECT_EQ(got.rounds, want.rounds) << label;
  EXPECT_EQ(got.peak_pending, want.peak_pending) << label;
  EXPECT_EQ(got.degraded, want.degraded) << label;
  EXPECT_EQ(got.stats, want.stats) << label;
}

using Cell = std::tuple<const char*, const char*, std::uint64_t>;

class TierEquivalenceMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(TierEquivalenceMatrix, StreamingAndShardedAreBitIdentical) {
  const auto& [algorithm, family, seed] = GetParam();
  const Instance scalar = make_instance(family, seed);
  // The family generators all price reconfiguration through the scalar
  // fast path (datacenter carries non-uniform drop weights, which the
  // tier rebuild preserves verbatim — the equivalence is about Delta).
  ASSERT_TRUE(scalar.cost_model().scalar_reconfig());
  const Instance vector =
      with_all_equal_tier(scalar, CostModel::Tier::kVector);
  const Instance matrix =
      with_all_equal_tier(scalar, CostModel::Tier::kMatrix);
  ASSERT_EQ(vector.jobs(), scalar.jobs());
  ASSERT_EQ(matrix.jobs(), scalar.jobs());

  const int n = 8;
  MaterializedSource scalar_source(scalar);
  const StreamRunRecord want = run_streaming(scalar_source, algorithm, n);
  for (const auto& [label, instance] :
       {std::pair<const char*, const Instance*>{"vector", &vector},
        std::pair<const char*, const Instance*>{"matrix", &matrix}}) {
    MaterializedSource source(*instance);
    expect_same_stream_record(run_streaming(source, algorithm, n), want,
                              std::string("streaming/") + label);
  }

  // The sharded phase needs a shape every algorithm's replication
  // granularity accepts: 16 resources hold four blocks of four, so two
  // shards are valid even for dlru-edf and adaptive.
  const int sharded_n = 16;
  const int num_shards = 2;
  MaterializedSource sharded_scalar(scalar);
  const ShardedRunRecord sharded_want =
      run_streaming_sharded(sharded_scalar, algorithm, sharded_n, num_shards);
  for (const auto& [label, instance] :
       {std::pair<const char*, const Instance*>{"vector", &vector},
        std::pair<const char*, const Instance*>{"matrix", &matrix}}) {
    MaterializedSource source(*instance);
    const ShardedRunRecord got =
        run_streaming_sharded(source, algorithm, sharded_n, num_shards);
    expect_same_stream_record(got.merged, sharded_want.merged,
                              std::string("sharded-merged/") + label);
    ASSERT_EQ(got.shards.size(), sharded_want.shards.size());
    for (std::size_t s = 0; s < got.shards.size(); ++s) {
      expect_same_stream_record(got.shards[s], sharded_want.shards[s],
                                std::string("shard/") + label);
    }
  }
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::string(std::get<0>(info.param)) + "_" +
                     std::get<1>(info.param) + "_s" +
                     std::to_string(std::get<2>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TierEquivalenceMatrix,
    ::testing::Combine(::testing::ValuesIn(kStreamingAlgorithms),
                       ::testing::ValuesIn(kFamilies),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    cell_name);

// --- weighted-drop cross-layer parity --------------------------------------

/// A deliberately contended non-uniform instance: weights 1..5, lengths
/// 1..3, vector cold prices, and warm discounts between the first two
/// colors.  Too few resources to serve everything, so drops are plentiful.
Instance make_nonuniform_instance() {
  InstanceBuilder builder;
  builder.delta(4);
  std::vector<ColorId> colors;
  for (int c = 0; c < 6; ++c) {
    colors.push_back(
        builder.add_color(/*d=*/4 << (c % 3), /*drop_cost=*/1 + (c % 5),
                          /*length=*/1 + (c % 3)));
  }
  for (const ColorId c : colors) {
    builder.reconfig_cost(c, 3 + static_cast<Cost>(c));
  }
  builder.transition_cost(colors[0], colors[1], 1);
  builder.transition_cost(colors[1], colors[0], 0);
  builder.transition_cost(colors[2], colors[3], 2);
  for (Round t = 0; t < 192; ++t) {
    for (const ColorId c : colors) {
      if (t % (1 + static_cast<Round>(c)) == 0) builder.add_jobs(c, t, 2);
    }
  }
  return builder.build();
}

TEST(WeightedDropParity, EngineValidatorScheduleAndObsAgree) {
  const Instance instance = make_nonuniform_instance();
  ASSERT_EQ(instance.cost_model().tier(), CostModel::Tier::kMatrix);
  for (const char* const algorithm : kStreamingAlgorithms) {
    SCOPED_TRACE(algorithm);
    Schedule schedule;
    const RunRecord record = run_algorithm(instance, algorithm, 4, &schedule);
    EXPECT_GT(record.cost.drops, 0) << "parity needs actual drops";

    // The validator's independent replay recomputes the same breakdown...
    EXPECT_EQ(validate_or_throw(instance, schedule), record.cost);
    // ...and Schedule::cost's recomputation agrees.
    EXPECT_EQ(schedule.cost(instance), record.cost);

    // The streaming observer's weighted totals match the engine's charges.
    MaterializedSource source(instance);
    Observer observer;
    const StreamRunRecord stream = run_streaming(source, algorithm, 4,
                                                 kInfiniteHorizon, nullptr,
                                                 false, &observer);
    EXPECT_EQ(stream.cost, record.cost);
    EXPECT_EQ(observer.stats.drop_weight(), record.cost.drops);
    EXPECT_EQ(observer.stats.reconfig_events(), record.cost.reconfig_events);
    EXPECT_EQ(observer.stats.executed(), record.executed);
    EXPECT_EQ(observer.stats.work_units(), stream.work_units);
    // Every job is dropped or completed; the priced totals must tile the
    // instance's total weight.
    EXPECT_EQ(observer.stats.drop_weight() + observer.stats.completed_weight(),
              instance.total_weight());
  }
}

}  // namespace
}  // namespace rrs
