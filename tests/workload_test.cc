// Tests for src/workload: generator classification, determinism, trace IO.
#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"
#include "workload/datacenter.h"
#include "workload/intro_scenario.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"
#include "workload/trace_io.h"

namespace rrs {
namespace {

TEST(AdversaryA, ShapeMatchesConstruction) {
  const AdversaryAInstance adv =
      make_adversary_a({.n = 8, .delta = 2, .j = 5, .k = 7});
  EXPECT_EQ(adv.instance.num_colors(), 8 / 2 + 1);
  EXPECT_EQ(adv.short_colors.size(), 4u);
  EXPECT_EQ(adv.instance.delay_bound(adv.long_color), 128);
  EXPECT_EQ(adv.instance.jobs_of_color(adv.long_color), 128);
  // Delta jobs per short color per multiple of 2^j in [0, 2^k).
  EXPECT_EQ(adv.instance.jobs_of_color(adv.short_colors[0]), 2 * (128 / 32));
  EXPECT_TRUE(adv.instance.is_rate_limited());
  EXPECT_TRUE(adv.instance.all_delays_pow2());
}

TEST(AdversaryA, AutoParametersSatisfyConstraints) {
  const AdversaryAInstance adv = make_adversary_a({.n = 16, .delta = 3});
  const Round short_delay = Round{1} << adv.params.j;
  const Round long_delay = Round{1} << adv.params.k;
  EXPECT_GT(long_delay, 2 * short_delay);
  EXPECT_GT(2 * short_delay, Round{16} * 3);
}

TEST(AdversaryB, ShapeMatchesConstruction) {
  const AdversaryBInstance adv = make_adversary_b({.n = 6});
  EXPECT_EQ(adv.params.delta, 7);  // auto n + 1
  EXPECT_EQ(adv.long_colors.size(), 3u);
  // Long color p has 2^{k+p-1} jobs, delay 2^{k+p}.
  for (std::size_t p = 0; p < adv.long_colors.size(); ++p) {
    const Round delay = adv.instance.delay_bound(adv.long_colors[p]);
    EXPECT_EQ(delay, Round{1} << (adv.params.k + static_cast<int>(p)));
    EXPECT_EQ(adv.instance.jobs_of_color(adv.long_colors[p]), delay / 2);
  }
  EXPECT_TRUE(adv.instance.is_rate_limited());
}

TEST(IntroScenario, RateLimitedWithBackgroundBacklog) {
  IntroScenarioParams params;
  params.seed = 5;
  const IntroScenarioInstance s = make_intro_scenario(params);
  EXPECT_TRUE(s.instance.is_rate_limited());
  EXPECT_EQ(s.instance.jobs_of_color(s.background_color),
            params.background_jobs);
  EXPECT_EQ(static_cast<int>(s.short_colors.size()),
            params.num_short_colors);
}

TEST(IntroScenario, DeterministicBySeed) {
  IntroScenarioParams params;
  params.seed = 7;
  const auto a = make_intro_scenario(params);
  const auto b = make_intro_scenario(params);
  EXPECT_EQ(a.instance.jobs().size(), b.instance.jobs().size());
  EXPECT_EQ(a.instance.jobs(), b.instance.jobs());
}

TEST(RandomBatched, ClassificationFollowsBurstFactor) {
  RandomBatchedParams params;
  params.seed = 1;
  params.burst_factor = 1.0;
  EXPECT_TRUE(make_random_batched(params).is_rate_limited());
  params.burst_factor = 4.0;
  const Instance bursty = make_random_batched(params);
  EXPECT_TRUE(bursty.is_batched());
  EXPECT_FALSE(bursty.is_rate_limited());
}

TEST(RandomBatched, DelayScalesRespected) {
  RandomBatchedParams params;
  params.seed = 2;
  params.min_scale = 3;
  params.max_scale = 5;
  const Instance inst = make_random_batched(params);
  for (ColorId c = 0; c < inst.num_colors(); ++c) {
    EXPECT_GE(inst.delay_bound(c), 8);
    EXPECT_LE(inst.delay_bound(c), 32);
  }
}

TEST(Poisson, UnbatchedWithRequestedDelays) {
  PoissonParams params;
  params.seed = 3;
  params.min_delay = 4;
  params.max_delay = 64;
  const Instance inst = make_poisson(params);
  EXPECT_FALSE(inst.is_batched());
  EXPECT_TRUE(inst.all_delays_pow2());
  for (ColorId c = 0; c < inst.num_colors(); ++c) {
    EXPECT_GE(inst.delay_bound(c), 4);
    EXPECT_LE(inst.delay_bound(c), 64);
  }
}

TEST(Poisson, ArbitraryDelaysMode) {
  PoissonParams params;
  params.seed = 4;
  params.arbitrary_delays = true;
  params.min_delay = 3;
  params.max_delay = 50;
  params.num_colors = 40;
  const Instance inst = make_poisson(params);
  EXPECT_FALSE(inst.all_delays_pow2()) << "40 draws should hit a non-pow2";
}

TEST(Datacenter, DefaultMixProducesWork) {
  DatacenterParams params;
  params.seed = 6;
  params.horizon = 2048;
  const Instance inst = make_datacenter(params);
  EXPECT_EQ(inst.num_colors(),
            static_cast<ColorId>(default_service_mix().size()));
  EXPECT_GT(inst.jobs().size(), 100u);
  // Phase structure: at least one service sees both hot and cold stretches
  // (hard to assert directly; proxy: job counts differ across services).
  std::int64_t lo = inst.jobs_of_color(0), hi = lo;
  for (ColorId c = 1; c < inst.num_colors(); ++c) {
    lo = std::min(lo, inst.jobs_of_color(c));
    hi = std::max(hi, inst.jobs_of_color(c));
  }
  EXPECT_LT(lo, hi);
}

TEST(Datacenter, DeterministicBySeed) {
  DatacenterParams params;
  params.seed = 8;
  params.horizon = 512;
  EXPECT_EQ(make_datacenter(params).jobs(), make_datacenter(params).jobs());
}

TEST(TraceIo, RoundTripsExactly) {
  RandomBatchedParams params;
  params.seed = 9;
  params.horizon = 64;
  const Instance original = make_random_batched(params);

  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const Instance reread = read_trace(in);

  EXPECT_EQ(reread.delta(), original.delta());
  EXPECT_EQ(reread.num_colors(), original.num_colors());
  for (ColorId c = 0; c < original.num_colors(); ++c) {
    EXPECT_EQ(reread.delay_bound(c), original.delay_bound(c));
  }
  EXPECT_EQ(reread.jobs(), original.jobs());
}

TEST(TraceIo, UniformInstancesStayOnTheV1Format) {
  // The scalar-uniform writer output is a closed format: archived v1
  // traces must never change byte-for-byte.
  RandomBatchedParams params;
  params.seed = 9;
  params.horizon = 64;
  std::ostringstream out;
  write_trace(out, make_random_batched(params));
  EXPECT_EQ(out.str().substr(0, out.str().find('\n')), "# rrs-trace v1");
  EXPECT_EQ(out.str().find("dcold"), std::string::npos);
  EXPECT_EQ(out.str().find("dwarm"), std::string::npos);
}

TEST(TraceIo, V2RoundTripsLengthsWeightsAndMatrixExactly) {
  InstanceBuilder builder;
  builder.delta(5);
  const ColorId a = builder.add_color(4, /*drop_cost=*/3, /*length=*/2);
  const ColorId b = builder.add_color(8, /*drop_cost=*/1, /*length=*/1);
  const ColorId c = builder.add_color(16, /*drop_cost=*/7, /*length=*/4);
  builder.reconfig_cost(a, 6);
  builder.reconfig_cost(c, 9);
  builder.transition_cost(a, b, 2);
  builder.transition_cost(b, a, 0);
  builder.add_jobs(a, 0, 2);
  builder.add_jobs(b, 0, 1);
  builder.add_jobs(c, 3, 4);
  const Instance original = builder.build();

  std::ostringstream out;
  write_trace(out, original);
  EXPECT_EQ(out.str().substr(0, out.str().find('\n')), "# rrs-trace v2");

  std::istringstream in(out.str());
  const Instance reread = read_trace(in);
  EXPECT_EQ(reread.cost_model(), original.cost_model());
  EXPECT_EQ(reread.jobs(), original.jobs());
  for (ColorId color = 0; color < original.num_colors(); ++color) {
    EXPECT_EQ(reread.delay_bound(color), original.delay_bound(color));
    EXPECT_EQ(reread.drop_cost(color), original.drop_cost(color));
    EXPECT_EQ(reread.length(color), original.length(color));
  }

  // The rewritten trace is byte-stable (write -> read -> write).
  std::ostringstream out2;
  write_trace(out2, reread);
  EXPECT_EQ(out2.str(), out.str());
}

TEST(TraceIo, LengthOnlyV2KeepsTheScalarReconfigTier) {
  // Length-only generalization: v2 header, no dcold/dwarm needed.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId a = builder.add_color(4, 1, /*length=*/3);
  builder.add_jobs(a, 0, 2);
  const Instance original = builder.build();
  ASSERT_TRUE(original.cost_model().scalar_reconfig());

  std::ostringstream out;
  write_trace(out, original);
  EXPECT_EQ(out.str().substr(0, out.str().find('\n')), "# rrs-trace v2");
  EXPECT_EQ(out.str().find("dcold"), std::string::npos);
  std::istringstream in(out.str());
  const Instance reread = read_trace(in);
  EXPECT_EQ(reread.cost_model(), original.cost_model());
  EXPECT_EQ(reread.length(a), 3);
}

TEST(TraceIo, RejectsMalformedInput) {
  // One row per failure mode: every malformed trace must surface as a
  // structured InputError, never a crash or a garbage instance.
  const struct {
    const char* label;
    const char* trace;
  } kMalformed[] = {
      {"not a trace", "not a trace\n"},
      {"empty input", ""},
      {"unknown record", "# rrs-trace v1\nwhat,1\n# end\n"},
      {"non-dense color id", "# rrs-trace v1\ncolor,1,4\n# end\n"},
      {"negative color id", "# rrs-trace v1\ncolor,-1,4\n# end\n"},
      {"non-numeric delta", "# rrs-trace v1\ndelta,abc\n# end\n"},
      {"duplicate delta", "# rrs-trace v1\ndelta,2\ndelta,3\n# end\n"},
      {"missing job field", "# rrs-trace v1\ncolor,0,4\njob,0,0\n# end\n"},
      {"truncated: no trailer", "# rrs-trace v1\ncolor,0,4\njob,0,0,1\n"},
      {"truncated mid-number", "# rrs-trace v1\ncolor,0,4\njob,0,0,1"},
      {"record after trailer",
       "# rrs-trace v1\ncolor,0,4\n# end\njob,0,0,1\n"},
      {"undeclared job color", "# rrs-trace v1\ncolor,0,4\njob,1,0,1\n# end\n"},
      {"negative job color", "# rrs-trace v1\ncolor,0,4\njob,-1,0,1\n# end\n"},
      {"overflowing color id",
       "# rrs-trace v1\ncolor,0,4\njob,4294967296,0,1\n# end\n"},
      {"overflowing int64",
       "# rrs-trace v1\ncolor,0,4\njob,99999999999999999999,0,1\n# end\n"},
      {"negative arrival", "# rrs-trace v1\ncolor,0,4\njob,0,-2,1\n# end\n"},
      {"out-of-order rounds",
       "# rrs-trace v1\ncolor,0,4\njob,0,5,1\njob,0,3,1\n# end\n"},
      {"negative count", "# rrs-trace v1\ncolor,0,4\njob,0,0,-1\n# end\n"},
      {"absurd total job count",
       "# rrs-trace v1\ncolor,0,4\njob,0,0,99999999999\n# end\n"},
      {"color after jobs",
       "# rrs-trace v1\ncolor,0,4\njob,0,0,1\ncolor,1,4\n# end\n"},
      {"trailing junk field", "# rrs-trace v1\ndelta,3x\n# end\n"},
      {"zero delay bound", "# rrs-trace v1\ncolor,0,0\n# end\n"},
      {"zero drop cost", "# rrs-trace v1\ncolor,0,4,0\n# end\n"},
      // v2-only records and fields must be rejected under a v1 header:
      // v1 stays a closed, stable format.
      {"length field under v1", "# rrs-trace v1\ncolor,0,4,1,2\n# end\n"},
      {"dcold under v1", "# rrs-trace v1\ncolor,0,4\ndcold,0,2\n# end\n"},
      {"dwarm under v1",
       "# rrs-trace v1\ncolor,0,4\ncolor,1,4\ndwarm,0,1,2\n# end\n"},
      // v2 structural failures.
      {"v2 zero length", "# rrs-trace v2\ncolor,0,4,1,0\n# end\n"},
      {"v2 negative length", "# rrs-trace v2\ncolor,0,4,1,-3\n# end\n"},
      {"v2 overflowing length",
       "# rrs-trace v2\ncolor,0,4,1,99999999999999999999\n# end\n"},
      {"v2 color with too many fields",
       "# rrs-trace v2\ncolor,0,4,1,2,9\n# end\n"},
      {"v2 truncated: no trailer",
       "# rrs-trace v2\ncolor,0,4,1,2\njob,0,0,1\n"},
      {"v2 truncated mid-record", "# rrs-trace v2\ncolor,0,4,1,"},
      {"dcold missing field", "# rrs-trace v2\ncolor,0,4\ndcold,0\n# end\n"},
      {"dcold undeclared color",
       "# rrs-trace v2\ncolor,0,4\ndcold,1,2\n# end\n"},
      {"dcold negative color",
       "# rrs-trace v2\ncolor,0,4\ndcold,-1,2\n# end\n"},
      {"dcold zero cost", "# rrs-trace v2\ncolor,0,4\ndcold,0,0\n# end\n"},
      {"dcold after jobs",
       "# rrs-trace v2\ncolor,0,4\njob,0,0,1\ndcold,0,2\n# end\n"},
      {"dwarm missing field",
       "# rrs-trace v2\ncolor,0,4\ncolor,1,4\ndwarm,0,1\n# end\n"},
      {"dwarm undeclared from-color",
       "# rrs-trace v2\ncolor,0,4\ndwarm,1,0,2\n# end\n"},
      {"dwarm undeclared to-color",
       "# rrs-trace v2\ncolor,0,4\ndwarm,0,1,2\n# end\n"},
      {"dwarm negative cost",
       "# rrs-trace v2\ncolor,0,4\ncolor,1,4\ndwarm,0,1,-1\n# end\n"},
      {"dwarm after jobs",
       "# rrs-trace v2\ncolor,0,4\ncolor,1,4\njob,0,0,1\ndwarm,0,1,2\n"
       "# end\n"},
  };
  for (const auto& [label, trace] : kMalformed) {
    std::istringstream in(trace);
    EXPECT_THROW((void)read_trace(in), InputError) << label;
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# rrs-trace v1\n"
      "delta,3\n"
      "\n"
      "# a comment\n"
      "color,0,8\n"
      "job,0,0,2\n"
      "# end\n");
  const Instance inst = read_trace(in);
  EXPECT_EQ(inst.delta(), 3);
  EXPECT_EQ(inst.jobs().size(), 2u);
}

TEST(TraceIo, FileRoundTrip) {
  RandomBatchedParams params;
  params.seed = 10;
  params.horizon = 32;
  const Instance original = make_random_batched(params);
  const std::string path = ::testing::TempDir() + "/rrs_trace_test.csv";
  write_trace_file(path, original);
  const Instance reread = read_trace_file(path);
  EXPECT_EQ(reread.jobs(), original.jobs());
  EXPECT_THROW((void)read_trace_file("/nonexistent/dir/x.csv"), InputError);
}

}  // namespace
}  // namespace rrs
