// Unit tests for core/engine: phase ordering, cost accounting, recording.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "core/validator.h"
#include "util/check.h"

namespace rrs {
namespace {

/// Policy that pins a fixed set of colors from round 0 onward.
class PinPolicy : public Policy {
 public:
  explicit PinPolicy(std::vector<ColorId> colors)
      : colors_(std::move(colors)) {}

  [[nodiscard]] std::string_view name() const override { return "pin"; }

  void on_round(RoundContext& ctx) override {
    if (ctx.final_sweep()) return;
    for (const ColorId c : colors_) {
      if (!ctx.cache().contains(c)) ctx.cache().insert(c);
    }
  }

 private:
  std::vector<ColorId> colors_;
};

/// Policy that never configures anything.
class IdlePolicy : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "idle"; }
  void on_round(RoundContext&) override {}
};

Instance two_color_instance() {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 4).add_jobs(b, 0, 2);
  return builder.build();
}

TEST(Engine, IdlePolicyDropsEverything) {
  const Instance inst = two_color_instance();
  IdlePolicy policy;
  EngineOptions options;
  options.num_resources = 2;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(r.executed, 0);
  EXPECT_EQ(r.cost.drops, 6);
  EXPECT_EQ(r.cost.reconfig_cost, 0);
  EXPECT_EQ(r.cost.total(), 6);
}

TEST(Engine, PinnedColorExecutesOnePerRoundPerLocation) {
  const Instance inst = two_color_instance();
  PinPolicy policy({0});
  EngineOptions options;
  options.num_resources = 1;
  options.replication = 1;
  const EngineResult r = run_policy(inst, policy, options);
  // 4 rounds, 1 resource on color 0 -> exactly the 4 color-0 jobs run.
  EXPECT_EQ(r.executed, 4);
  EXPECT_EQ(r.cost.drops, 2);
  EXPECT_EQ(r.cost.reconfig_events, 1);
  EXPECT_EQ(r.cost.reconfig_cost, 2);  // Delta = 2
}

TEST(Engine, ReplicationExecutesTwicePerRound) {
  const Instance inst = two_color_instance();
  PinPolicy policy({0});
  EngineOptions options;
  options.num_resources = 2;
  options.replication = 2;
  const EngineResult r = run_policy(inst, policy, options);
  // Color 0 in two locations: its 4 jobs finish in 2 rounds.
  EXPECT_EQ(r.executed, 4);
  EXPECT_EQ(r.cost.reconfig_events, 2);  // two locations colored once
}

TEST(Engine, DoubleSpeedExecutesTwoMiniRounds) {
  const Instance inst = two_color_instance();
  PinPolicy policy({0, 1});
  EngineOptions options;
  options.num_resources = 2;
  options.replication = 1;
  options.speed = 2;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(r.executed, 6);  // all jobs fit: 2 res x 2 mini x 4 rounds
  EXPECT_EQ(r.cost.drops, 0);
}

TEST(Engine, RecordedScheduleValidatesAndMatchesCost) {
  const Instance inst = two_color_instance();
  PinPolicy policy({0, 1});
  EngineOptions options;
  options.num_resources = 2;
  options.replication = 1;
  options.record_schedule = true;
  const EngineResult r = run_policy(inst, policy, options);
  const CostBreakdown validated = validate_or_throw(inst, r.schedule);
  EXPECT_EQ(validated, r.cost);
}

TEST(Engine, RecordingOffProducesSameCost) {
  const Instance inst = two_color_instance();
  EngineOptions options;
  options.num_resources = 2;
  options.replication = 1;
  PinPolicy p1({0, 1});
  options.record_schedule = true;
  const EngineResult with = run_policy(inst, p1, options);
  PinPolicy p2({0, 1});
  options.record_schedule = false;
  const EngineResult without = run_policy(inst, p2, options);
  EXPECT_EQ(with.cost, without.cost);
  EXPECT_EQ(with.executed, without.executed);
  EXPECT_TRUE(without.schedule.execs.empty());
}

TEST(Engine, ExecutionIsEarliestDeadlineFirstWithinColor) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(8);
  builder.add_jobs(c, 0, 1);  // job 0, deadline 8
  builder.add_jobs(c, 8, 1);  // job 1, deadline 16
  const Instance inst = builder.build();

  PinPolicy policy({c});
  EngineOptions options;
  options.num_resources = 1;
  options.replication = 1;
  options.record_schedule = true;
  const EngineResult r = run_policy(inst, policy, options);
  ASSERT_EQ(r.schedule.execs.size(), 2u);
  EXPECT_EQ(r.schedule.execs[0].job, 0);
  EXPECT_EQ(r.schedule.execs[1].job, 1);
}

TEST(Engine, DropPhasePrecedesExecutionInSameRound) {
  // Job with deadline exactly at round k is dropped in round k's drop
  // phase and cannot be executed in round k.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(1);  // deadline = arrival + 1
  builder.add_jobs(c, 0, 2);               // only 1 can run (round 0)
  const Instance inst = builder.build();

  PinPolicy policy({c});
  EngineOptions options;
  options.num_resources = 1;
  options.replication = 1;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(r.executed, 1);
  EXPECT_EQ(r.cost.drops, 1);
}

TEST(Engine, InvalidOptionsRejected) {
  const Instance inst = two_color_instance();
  IdlePolicy policy;
  EngineOptions options;
  options.num_resources = 0;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
  options.num_resources = -3;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
  options.num_resources = 2;
  options.speed = 0;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
  options.speed = 1;
  options.replication = 0;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
  options.replication = -1;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
  // Replication must divide the resource count.
  options.num_resources = 3;
  options.replication = 2;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
}

TEST(Engine, MalformedFaultPlansRejectedUpFront) {
  const Instance inst = two_color_instance();
  IdlePolicy policy;
  EngineOptions options;
  options.num_resources = 2;
  const struct {
    const char* label;
    FaultPlan plan;
  } kBad[] = {
      {"unsorted rounds", {{{5, 0, true}, {3, 1, true}}}},
      {"resource out of range", {{{0, 2, true}}}},
      {"double failure", {{{0, 0, true}, {1, 0, true}}}},
      {"repair while up", {{{0, 1, false}}}},
      {"mixed explicit and hottest",
       {{{0, 0, true}, {1, kHottestResource, true}}}},
  };
  for (const auto& [label, plan] : kBad) {
    options.fault_plan = &plan;
    EXPECT_THROW((void)run_policy(inst, policy, options), InputError) << label;
  }
  // A well-formed plan passes the same gate.
  const FaultPlan good{{{0, 0, true}, {2, 0, false}}};
  options.fault_plan = &good;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(r.degraded.fault_events, 1);
  EXPECT_EQ(r.degraded.repair_events, 1);
}

TEST(Engine, NegativeMaxRoundsRejected) {
  const Instance inst = two_color_instance();
  IdlePolicy policy;
  EngineOptions options;
  options.num_resources = 2;
  options.max_rounds = -5;
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
}

// --- generalized cost model: lengths and matrix Delta ----------------------

TEST(EngineLengths, MultiUnitJobsCompleteAfterLengthUnits) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId a = builder.add_color(8, /*drop_cost=*/1, /*length=*/3);
  builder.add_jobs(a, 0, 1);
  const Instance inst = builder.build();

  PinPolicy policy({a});
  EngineOptions options;
  options.num_resources = 1;
  const EngineResult r = run_policy(inst, policy, options);
  const Schedule& schedule = r.schedule;
  EXPECT_EQ(r.executed, 1);
  EXPECT_EQ(r.work_units, 3);
  EXPECT_EQ(r.cost.drops, 0);
  // One exec event per unit, all for the same job, consecutive rounds.
  ASSERT_EQ(schedule.execs.size(), 3u);
  for (const ExecEvent& e : schedule.execs) EXPECT_EQ(e.job, 0);
  EXPECT_EQ(validate_or_throw(inst, schedule), r.cost);
}

TEST(EngineLengths, ExpiredPartialJobChargesFullDropWeight) {
  InstanceBuilder builder;
  builder.delta(2);
  // Deadline 2 allows only 2 of the 3 needed units: the job is dropped,
  // and partial execution earns nothing — full drop weight is charged.
  const ColorId a = builder.add_color(2, /*drop_cost=*/5, /*length=*/3);
  builder.add_jobs(a, 0, 1);
  const Instance inst = builder.build();

  PinPolicy policy({a});
  EngineOptions options;
  options.num_resources = 1;
  const EngineResult r = run_policy(inst, policy, options);
  const Schedule& schedule = r.schedule;
  EXPECT_EQ(r.executed, 0);
  EXPECT_EQ(r.work_units, 2);
  EXPECT_EQ(r.cost.drops, 5);
  EXPECT_EQ(validate_or_throw(inst, schedule), r.cost);
}

TEST(EngineLengths, UnitsGoToTheFrontJobFirst) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(4, /*drop_cost=*/1, /*length=*/2);
  builder.add_jobs(a, 0, 1).add_jobs(a, 1, 1);
  const Instance inst = builder.build();

  PinPolicy policy({a});
  EngineOptions options;
  options.num_resources = 1;
  const EngineResult r = run_policy(inst, policy, options);
  const Schedule& schedule = r.schedule;
  EXPECT_EQ(r.executed, 2);
  EXPECT_EQ(r.work_units, 4);
  EXPECT_EQ(r.cost.drops, 0);
  // EDF within color: the earlier-deadline job absorbs both its units
  // before the second job receives any.
  ASSERT_EQ(schedule.execs.size(), 4u);
  EXPECT_EQ(schedule.execs[0].job, 0);
  EXPECT_EQ(schedule.execs[1].job, 0);
  EXPECT_EQ(schedule.execs[2].job, 1);
  EXPECT_EQ(schedule.execs[3].job, 1);
}

TEST(EngineMatrix, ReconfigChargesWarmTransitionFromPrevOccupant) {
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.reconfig_cost(a, 5);
  builder.reconfig_cost(b, 7);
  builder.transition_cost(a, b, 1);  // warm discount: a -> b costs 1, not 7
  builder.add_jobs(a, 0, 1).add_jobs(b, 1, 1);
  const Instance inst = builder.build();

  /// Caches {a} in round 0, then switches to {b} from round 1 onward.
  class SwitchPolicy : public Policy {
   public:
    SwitchPolicy(ColorId a, ColorId b) : a_(a), b_(b) {}
    [[nodiscard]] std::string_view name() const override { return "switch"; }
    void on_round(RoundContext& ctx) override {
      if (ctx.final_sweep()) return;
      const ColorId want = ctx.round() == 0 ? a_ : b_;
      const ColorId other = ctx.round() == 0 ? b_ : a_;
      if (ctx.cache().contains(other)) ctx.cache().erase(other);
      if (!ctx.cache().contains(want)) ctx.cache().insert(want);
    }

   private:
    ColorId a_, b_;
  };

  SwitchPolicy policy(a, b);
  EngineOptions options;
  options.num_resources = 1;
  const EngineResult r = run_policy(inst, policy, options);
  const Schedule& schedule = r.schedule;
  // Round 0: kBlack -> a prices cold (5).  Round 1: the freed location
  // still physically holds a, so a -> b prices the warm discount (1).
  EXPECT_EQ(r.cost.reconfig_events, 2);
  EXPECT_EQ(r.cost.reconfig_cost, 6);
  EXPECT_EQ(r.executed, 2);
  EXPECT_EQ(r.cost.drops, 0);
  // The validator's from-color replay reprices the events identically.
  EXPECT_EQ(validate_or_throw(inst, schedule), r.cost);
}

TEST(Engine, PolicyStatsSurfaced) {
  class StatPolicy : public IdlePolicy {
   public:
    [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> stats()
        const override {
      return {{"touched", 7}};
    }
  };
  const Instance inst = two_color_instance();
  StatPolicy policy;
  EngineOptions options;
  options.num_resources = 1;
  const EngineResult r = run_policy(inst, policy, options);
  ASSERT_EQ(r.policy_stats.size(), 1u);
  EXPECT_EQ(r.policy_stats[0].first, "touched");
  EXPECT_EQ(r.policy_stats[0].second, 7);
}

}  // namespace
}  // namespace rrs
