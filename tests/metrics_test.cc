// Tests for sim/metrics: latency/utilization statistics from schedules.
#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(Summarize, EmptyIsZero) {
  const DistributionSummary s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0);
}

TEST(Summarize, SingleSample) {
  const DistributionSummary s = summarize({7});
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.sum, 7);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.min, 7);
  EXPECT_EQ(s.p50, 7);
  EXPECT_EQ(s.p99, 7);
  EXPECT_EQ(s.max, 7);
}

TEST(Summarize, TwoSamplesNearestRank) {
  // Nearest rank on {3, 9}: p50 = rank ceil(2 * 50 / 100) = 1 -> 3; p95
  // and p99 = rank 2 -> 9.  The pre-fix floor(q * (count - 1)) indexing
  // returned 3 (the MINIMUM) for all three.
  const DistributionSummary s = summarize({9, 3});
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.sum, 12);
  EXPECT_EQ(s.mean, 6.0);
  EXPECT_EQ(s.min, 3);
  EXPECT_EQ(s.p50, 3);
  EXPECT_EQ(s.p95, 9);
  EXPECT_EQ(s.p99, 9);
  EXPECT_EQ(s.max, 9);
}

TEST(Summarize, AllEqualSamples) {
  const DistributionSummary s = summarize({4, 4, 4, 4, 4});
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.sum, 20);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.min, 4);
  EXPECT_EQ(s.p50, 4);
  EXPECT_EQ(s.p95, 4);
  EXPECT_EQ(s.p99, 4);
  EXPECT_EQ(s.max, 4);
}

TEST(Summarize, TenSamplesExactRanks) {
  std::vector<Round> samples;
  for (Round v = 10; v >= 1; --v) samples.push_back(v);  // unsorted input
  const DistributionSummary s = summarize(samples);
  EXPECT_EQ(s.sum, 55);
  EXPECT_EQ(s.p50, 5);   // rank ceil(10 * 50 / 100) = 5
  EXPECT_EQ(s.p95, 10);  // rank ceil(9.5) = 10
  EXPECT_EQ(s.p99, 10);
}

TEST(Summarize, NoFloatingPointDriftAtRankBoundary) {
  // 21 samples, p95 rank = ceil(21 * 95 / 100) = ceil(19.95) = 20.  In
  // floating point 0.95 * 20 rounds to 18.999...97, so the old code
  // truncated to index 18 and returned 19 — one whole rank off.
  std::vector<Round> samples;
  for (Round v = 1; v <= 21; ++v) samples.push_back(v);
  const DistributionSummary s = summarize(samples);
  EXPECT_EQ(s.sum, 231);
  EXPECT_EQ(s.p95, 20);
  EXPECT_EQ(s.p99, 21);
}

TEST(Summarize, P99IsMaxBelowHundredSamples) {
  // rank ceil(99 n / 100) == n exactly when n < 100: with fewer than 100
  // samples the 99th percentile IS the maximum.
  std::vector<Round> samples;
  for (Round v = 0; v < 50; ++v) samples.push_back(v * 3);
  const DistributionSummary s = summarize(samples);
  EXPECT_EQ(s.p99, s.max);
  EXPECT_EQ(s.p99, 147);
}

TEST(Summarize, PercentilesOrdered) {
  std::vector<Round> samples;
  for (Round v = 100; v >= 1; --v) samples.push_back(v);  // unsorted input
  const DistributionSummary s = summarize(samples);
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.sum, 5050);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(s.p50, 50);
  EXPECT_EQ(s.p95, 95);
  EXPECT_EQ(s.p99, 99);
}

TEST(ComputeMetrics, HandBuiltSchedule) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(8, 3);
  builder.add_jobs(c, 0, 3);
  const Instance inst = builder.build();

  Schedule schedule;
  schedule.num_resources = 1;
  schedule.reconfigs = {{0, 0, 0, c}};
  schedule.execs = {{0, 0, 0, 0}, {4, 0, 0, 1}};  // job 2 dropped
  const ScheduleMetrics m = compute_metrics(inst, schedule);

  EXPECT_EQ(m.wait.count, 2);
  EXPECT_EQ(m.wait.min, 0);
  EXPECT_EQ(m.wait.max, 4);
  EXPECT_NEAR(m.wait.mean, 2.0, 1e-9);
  EXPECT_EQ(m.slack.max, 7);  // executed at round 0, deadline 8
  EXPECT_EQ(m.slack.min, 3);  // executed at round 4
  EXPECT_NEAR(m.service_rate, 2.0 / 3.0, 1e-9);
  // Span rounds 0..4 on one uni-speed resource: 2 of 5 slots used.
  EXPECT_NEAR(m.utilization, 0.4, 1e-9);

  ASSERT_EQ(m.per_color.size(), 1u);
  EXPECT_EQ(m.per_color[0].executed, 2);
  EXPECT_EQ(m.per_color[0].dropped, 1);
  EXPECT_EQ(m.per_color[0].dropped_weight, 3);
  EXPECT_NEAR(m.per_color[0].mean_wait, 2.0, 1e-9);
}

TEST(ComputeMetrics, EmptySchedule) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 2);
  const Instance inst = builder.build();
  Schedule schedule;
  schedule.num_resources = 2;
  const ScheduleMetrics m = compute_metrics(inst, schedule);
  EXPECT_EQ(m.wait.count, 0);
  EXPECT_EQ(m.service_rate, 0.0);
  EXPECT_EQ(m.utilization, 0.0);
  EXPECT_EQ(m.per_color[0].dropped, 2);
}

TEST(ComputeMetrics, RealRunIsConsistent) {
  RandomBatchedParams params;
  params.seed = 6;
  params.horizon = 256;
  const Instance inst = make_random_batched(params);
  Schedule schedule;
  const RunRecord r = run_algorithm(inst, "dlru-edf", 8, &schedule);
  const ScheduleMetrics m = compute_metrics(inst, schedule);

  EXPECT_EQ(m.wait.count, r.executed);
  std::int64_t executed = 0, dropped = 0;
  for (const auto& pc : m.per_color) {
    executed += pc.executed;
    dropped += pc.dropped;
  }
  EXPECT_EQ(executed, r.executed);
  EXPECT_EQ(executed + dropped,
            static_cast<std::int64_t>(inst.jobs().size()));
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  // Every wait respects the color's delay bound.
  EXPECT_GE(m.slack.min, 0);
}

TEST(ComputeMetrics, RejectsInvalidExecution) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 4, 1);
  const Instance inst = builder.build();
  Schedule schedule;
  schedule.num_resources = 1;
  schedule.execs = {{0, 0, 0, 0}};  // before arrival
  EXPECT_THROW((void)compute_metrics(inst, schedule), InvariantError);
}

}  // namespace
}  // namespace rrs
