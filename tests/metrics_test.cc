// Tests for sim/metrics: latency/utilization statistics from schedules.
#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(Summarize, EmptyIsZero) {
  const DistributionSummary s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0);
}

TEST(Summarize, SingleSample) {
  const DistributionSummary s = summarize({7});
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.min, 7);
  EXPECT_EQ(s.p50, 7);
  EXPECT_EQ(s.p99, 7);
  EXPECT_EQ(s.max, 7);
}

TEST(Summarize, PercentilesOrdered) {
  std::vector<Round> samples;
  for (Round v = 100; v >= 1; --v) samples.push_back(v);  // unsorted input
  const DistributionSummary s = summarize(samples);
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(s.p50, 50);
}

TEST(ComputeMetrics, HandBuiltSchedule) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(8, 3);
  builder.add_jobs(c, 0, 3);
  const Instance inst = builder.build();

  Schedule schedule;
  schedule.num_resources = 1;
  schedule.reconfigs = {{0, 0, 0, c}};
  schedule.execs = {{0, 0, 0, 0}, {4, 0, 0, 1}};  // job 2 dropped
  const ScheduleMetrics m = compute_metrics(inst, schedule);

  EXPECT_EQ(m.wait.count, 2);
  EXPECT_EQ(m.wait.min, 0);
  EXPECT_EQ(m.wait.max, 4);
  EXPECT_NEAR(m.wait.mean, 2.0, 1e-9);
  EXPECT_EQ(m.slack.max, 7);  // executed at round 0, deadline 8
  EXPECT_EQ(m.slack.min, 3);  // executed at round 4
  EXPECT_NEAR(m.service_rate, 2.0 / 3.0, 1e-9);
  // Span rounds 0..4 on one uni-speed resource: 2 of 5 slots used.
  EXPECT_NEAR(m.utilization, 0.4, 1e-9);

  ASSERT_EQ(m.per_color.size(), 1u);
  EXPECT_EQ(m.per_color[0].executed, 2);
  EXPECT_EQ(m.per_color[0].dropped, 1);
  EXPECT_EQ(m.per_color[0].dropped_weight, 3);
  EXPECT_NEAR(m.per_color[0].mean_wait, 2.0, 1e-9);
}

TEST(ComputeMetrics, EmptySchedule) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 2);
  const Instance inst = builder.build();
  Schedule schedule;
  schedule.num_resources = 2;
  const ScheduleMetrics m = compute_metrics(inst, schedule);
  EXPECT_EQ(m.wait.count, 0);
  EXPECT_EQ(m.service_rate, 0.0);
  EXPECT_EQ(m.utilization, 0.0);
  EXPECT_EQ(m.per_color[0].dropped, 2);
}

TEST(ComputeMetrics, RealRunIsConsistent) {
  RandomBatchedParams params;
  params.seed = 6;
  params.horizon = 256;
  const Instance inst = make_random_batched(params);
  Schedule schedule;
  const RunRecord r = run_algorithm(inst, "dlru-edf", 8, &schedule);
  const ScheduleMetrics m = compute_metrics(inst, schedule);

  EXPECT_EQ(m.wait.count, r.executed);
  std::int64_t executed = 0, dropped = 0;
  for (const auto& pc : m.per_color) {
    executed += pc.executed;
    dropped += pc.dropped;
  }
  EXPECT_EQ(executed, r.executed);
  EXPECT_EQ(executed + dropped,
            static_cast<std::int64_t>(inst.jobs().size()));
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  // Every wait respects the color's delay bound.
  EXPECT_GE(m.slack.min, 0);
}

TEST(ComputeMetrics, RejectsInvalidExecution) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 4, 1);
  const Instance inst = builder.build();
  Schedule schedule;
  schedule.num_resources = 1;
  schedule.execs = {{0, 0, 0, 0}};  // before arrival
  EXPECT_THROW((void)compute_metrics(inst, schedule), InvariantError);
}

}  // namespace
}  // namespace rrs
