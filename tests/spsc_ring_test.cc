// SpscRing contract coverage: the ring is the only cross-thread channel in
// the sharded demux fabric, so its single-thread semantics (wraparound,
// full/empty edges, counters) and its two-thread handoff are pinned here.
// The stress tests double as the TSan targets for the fabric's memory
// ordering (see the sanitizer job in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/spsc_ring.h"

namespace rrs {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRingTest, PushPopSingleThreadFifo) {
  SpscRing<int> ring(4);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.try_push(v + 10));
  int out = -1;
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v + 10);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, 13);  // a failed pop leaves `out` untouched
}

TEST(SpscRingTest, FullRingRejectsPushWithoutConsumingValue) {
  SpscRing<std::string> ring(2);
  EXPECT_TRUE(ring.try_push("a"));
  EXPECT_TRUE(ring.try_push("b"));
  std::string sticky = "survivor";
  EXPECT_FALSE(ring.try_push(std::move(sticky)));
  EXPECT_EQ(sticky, "survivor");  // full push must not move-from the value
  std::string out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(ring.try_push(std::move(sticky)));
}

TEST(SpscRingTest, FullCapacityIsUsableAndIndicesWrap) {
  // The monotone-counter design wastes no slot, and masked indices stay
  // correct across many times the capacity.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int lap = 0; lap < 100; ++lap) {
    while (ring.try_push(std::uint64_t{next_push})) ++next_push;
    EXPECT_EQ(next_push - next_pop, ring.capacity());  // filled to the brim
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
    EXPECT_EQ(next_push, next_pop);  // drained dry
  }
  EXPECT_EQ(ring.produced(), next_push);
  EXPECT_EQ(ring.consumed(), next_pop);
}

TEST(SpscRingTest, CountersAndSizeTrackProgress) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.produced(), 0u);
  EXPECT_EQ(ring.consumed(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(ring.try_push(int{v}));
  EXPECT_EQ(ring.produced(), 5u);
  EXPECT_EQ(ring.size(), 5u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.consumed(), 2u);
  EXPECT_EQ(ring.size(), 3u);
}

TEST(SpscRingTest, TwoThreadStressPreservesOrderAndContent) {
  // Producer and consumer race over a deliberately tiny ring so both the
  // full and empty edges are exercised constantly.  Under TSan this is the
  // primary race check for the acquire/release protocol.  The blocked side
  // yields: on a single hardware thread a pure spin would only progress by
  // one ring capacity per scheduler slice.
  constexpr std::uint64_t kItems = 50000;
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t sum = 0;
  std::uint64_t expected_next = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (expected_next < kItems) {
      if (ring.try_pop(out)) {
        if (out != expected_next) ordered = false;
        sum += out;
        ++expected_next;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t v = 0; v < kItems; ++v) {
    while (!ring.try_push(std::uint64_t{v})) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_EQ(ring.produced(), kItems);
  EXPECT_EQ(ring.consumed(), kItems);
}

TEST(SpscRingTest, TwoThreadStressMoveOnlyPayload) {
  // Vector payloads mirror the fabric's chunk handoff: ownership must
  // transfer cleanly under contention (no double-free, no torn contents).
  constexpr int kChunks = 10000;
  SpscRing<std::vector<int>> ring(8);
  std::int64_t total = 0;
  std::thread consumer([&] {
    std::vector<int> chunk;
    int seen = 0;
    while (seen < kChunks) {
      if (ring.try_pop(chunk)) {
        total += std::accumulate(chunk.begin(), chunk.end(), std::int64_t{0});
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::int64_t pushed = 0;
  for (int c = 0; c < kChunks; ++c) {
    std::vector<int> chunk(3, c);
    pushed += std::int64_t{3} * c;
    // A failed try_push leaves `chunk` untouched, so retrying the move is
    // safe; it is only actually moved-from on the successful attempt.
    while (!ring.try_push(std::move(chunk))) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(total, pushed);
}

}  // namespace
}  // namespace rrs
