// Long-horizon closure cases for the branch-and-bound solver.  These run
// minutes-scale search budgets and carry the ctest label "exact": the
// regular tier-1 jobs exclude them (-LE exact) and a scheduled job runs
// them with an explicit --timeout.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/validator.h"
#include "offline/exact_bnb.h"
#include "offline/greedy_offline.h"
#include "offline/optimal.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

BnbOptions long_budget() {
  BnbOptions options;
  options.max_nodes = 5'000'000;
  options.max_seconds = 120.0;
  return options;
}

TEST(ExactBnbLong, ClosesMidScaleRandomBatched) {
  // Mid-scale: beyond what the differential harness uses, still closable.
  for (const std::uint64_t seed : {2u, 5u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 6;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 40;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    const BnbResult bnb = exact_offline_bnb(inst, 2, long_budget());
    ASSERT_TRUE(bnb.closed) << "seed " << seed << " interval ["
                            << bnb.best_bound << ", " << bnb.incumbent
                            << "]";
    const Cost dp = optimal_offline_cost(inst, 2);
    EXPECT_EQ(bnb.incumbent, dp) << "seed " << seed;
    ASSERT_TRUE(bnb.has_witness);
    EXPECT_EQ(validate_or_throw(inst, bnb.schedule).total(), bnb.incumbent);
  }
}

TEST(ExactBnbLong, ClosesWideMachineCountMatrixTier) {
  // m = 9 with a genuine (non-uniform) transition matrix: untouchable by
  // the DP's bitmask bijection, certified exactly by the Hungarian-
  // assignment search.  Arrivals are staggered so the per-node candidate
  // set stays narrow enough for closure.
  InstanceBuilder builder;
  std::vector<ColorId> ids;
  for (int c = 0; c < 10; ++c) {
    ids.push_back(builder.add_color(3, 1 + c % 3));
  }
  for (const ColorId c : ids) builder.reconfig_cost(c, 1 + c % 2);
  for (const ColorId from : ids) {
    for (const ColorId to : ids) {
      if (from != to) {
        builder.transition_cost(from, to, 1 + (from * 7 + to * 3) % 5);
      }
    }
  }
  for (const ColorId c : ids) builder.add_jobs(c, (c * 2) % 6, 2);
  const Instance inst = builder.build();
  const BnbResult bnb = exact_offline_bnb(inst, 9, long_budget());
  ASSERT_TRUE(bnb.closed) << "interval [" << bnb.best_bound << ", "
                          << bnb.incumbent << "]";
  EXPECT_LE(bnb.incumbent, best_offline_heuristic_cost(inst, 9));
  ASSERT_TRUE(bnb.has_witness);
  EXPECT_EQ(validate_or_throw(inst, bnb.schedule).total(), bnb.incumbent);
}

TEST(ExactBnbLong, TightensGreedyGapOnAdversarialBurst) {
  // A bursty workload where demand-greedy is measurably suboptimal: the
  // certificate must land strictly below the greedy cost.
  InstanceBuilder builder;
  builder.delta(4);
  const ColorId a = builder.add_color(6, 2);
  const ColorId b = builder.add_color(6, 2);
  const ColorId c = builder.add_color(3, 1);
  for (Round t = 0; t < 24; t += 8) {
    builder.add_jobs(a, t, 3).add_jobs(b, t + 2, 3).add_jobs(c, t + 4, 2);
  }
  const Instance inst = builder.build();
  const Cost greedy = best_offline_heuristic_cost(inst, 2);
  const BnbResult bnb = exact_offline_bnb(inst, 2, long_budget());
  ASSERT_TRUE(bnb.closed);
  EXPECT_LE(bnb.incumbent, greedy);
  const Cost dp = optimal_offline_cost(inst, 2);
  EXPECT_EQ(bnb.incumbent, dp);
}

}  // namespace
}  // namespace rrs
