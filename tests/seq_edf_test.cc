// Tests for algs/seq_edf: Seq-EDF / DS-Seq-EDF and the Section 3.3 drop
// chain  EligibleDrop(dLRU-EDF) <= Drop(DS-Seq-EDF) <= Drop(Par-EDF).
#include <gtest/gtest.h>

#include "algs/dlru_edf.h"
#include "algs/par_edf.h"
#include "algs/seq_edf.h"
#include "core/validator.h"
#include "test_util.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(SeqEdf, UsesFullCapacityUnreplicated) {
  // 3 colors, 3 resources: uni-speed Seq-EDF can hold all three at once.
  InstanceBuilder builder;
  builder.delta(1);
  for (int c = 0; c < 3; ++c) {
    builder.add_jobs(builder.add_color(4), 0, 4);
  }
  const Instance inst = builder.build();
  const EngineResult r = run_seq_edf(inst, 3);
  EXPECT_EQ(r.cost.drops, 0);
  EXPECT_EQ(r.cost.reconfig_events, 3);
}

TEST(SeqEdf, RecordedScheduleValidates) {
  RandomBatchedParams params;
  params.seed = 21;
  params.horizon = 128;
  const Instance inst = make_random_batched(params);
  const EngineResult r = run_seq_edf(inst, 4, /*record_schedule=*/true);
  EXPECT_EQ(validate_or_throw(inst, r.schedule), r.cost);
}

TEST(DsSeqEdf, DoubleSpeedScheduleValidates) {
  RandomBatchedParams params;
  params.seed = 22;
  params.horizon = 128;
  const Instance inst = make_random_batched(params);
  const EngineResult r = run_ds_seq_edf(inst, 4, /*record_schedule=*/true);
  EXPECT_EQ(r.schedule.speed, 2);
  EXPECT_EQ(validate_or_throw(inst, r.schedule), r.cost);
}

TEST(DsSeqEdf, NeverDropsMoreThanUniSpeed) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.horizon = 256;
    const Instance inst = make_random_batched(params);
    const Cost uni = run_seq_edf(inst, 4).cost.drops;
    const Cost twice = run_ds_seq_edf(inst, 4).cost.drops;
    EXPECT_LE(twice, uni) << "seed " << seed;
  }
}

TEST(DropChain, Corollary31_DsSeqEdfAtMostParEdf) {
  // Corollary 3.1: DropCost(DS-Seq-EDF with m) <= DropCost(Par-EDF with m).
  // The paper's analysis runs DS-Seq-EDF with eligibility driven by the
  // full sequence; with Delta = 1 every nonidle color is eligible (each
  // batch wraps the counter instantly), which is exactly that regime, so
  // the inequality is strict scheduling theory and must hold per instance.
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u, 17u, 18u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.delta = 1;
    params.horizon = 256;
    params.num_colors = 12;
    const Instance inst = make_random_batched(params);
    for (const int m : {1, 2, 4}) {
      const Cost ds = run_ds_seq_edf(inst, m).cost.drops;
      const std::int64_t par = run_par_edf(inst, m).drops;
      EXPECT_LE(ds, par) << "seed " << seed << " m " << m;
    }
  }
}

TEST(DropChain, Lemma32_EligibleDropsAtMostParEdfOnAlpha) {
  // The Lemma 3.2 chain on the eligible subsequence alpha (sigma minus
  // the jobs dLRU-EDF dropped while their color was ineligible):
  //   EligibleDropCost(dLRU-EDF with n = 8m on sigma)
  //     <= DropCost(DS-Seq-EDF with m on alpha)     [Lemma 3.10]
  //     <= DropCost(Par-EDF with m on alpha)        [Corollary 3.1]
  //     <= DropCost(OFF with m on alpha) <= DropCost(OFF on sigma).
  // With Delta = 1 no job is ever dropped while its color is ineligible
  // (pending jobs imply a wrapped counter), so alpha = sigma and the chain
  // can be checked directly.
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.delta = 1;
    params.horizon = 512;
    params.num_colors = 10;
    const Instance inst = make_random_batched(params);

    const int m = 1;
    DLruEdfPolicy policy;
    policy.enable_drop_id_recording();
    EngineOptions options;
    options.num_resources = 8 * m;
    options.replication = 2;
    options.record_schedule = false;
    (void)run_policy(inst, policy, options);
    EXPECT_TRUE(policy.tracker().ineligible_drop_ids().empty())
        << "Delta = 1 implies no ineligible drops";

    const Instance alpha = rrs::testing::remove_jobs(
        inst, policy.tracker().ineligible_drop_ids());
    const Cost ds = run_ds_seq_edf(alpha, m).cost.drops;
    const std::int64_t par = run_par_edf(alpha, m).drops;
    EXPECT_LE(policy.tracker().eligible_drops(), ds) << "seed " << seed;
    EXPECT_LE(ds, par) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rrs
