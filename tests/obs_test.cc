// Streaming observability: obs primitives plus the exact
// streaming-vs-post-hoc equivalence matrix (the tentpole property).
//
// The layer's core claim is that StreamStats, fed O(1) hooks inside the
// engine phases, reproduces the post-hoc compute_metrics instruments
// bit-for-bit: every aggregate is an integer (or an integer-backed
// histogram), so streaming totals, per-color counters, and derived means
// must EQUAL — not approximate — the numbers computed from a recorded
// schedule.  The matrix checks that across 4 algorithms x 4 workload
// families x 3 seeds for plain streaming runs, for sharded runs merged
// through ShardPlan relabeling, and under a non-empty FaultPlan.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/fault_plan.h"
#include "obs/observer.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"
#include "workload/sharded_source.h"

namespace rrs {
namespace {

// The four main engine policies (seq-edf/ds-seq-edf are EDF re-runs at
// different speeds; the four below cover every distinct policy).
const char* const kObsAlgorithms[] = {"dlru", "edf", "dlru-edf", "adaptive"};

const char* const kFamilies[] = {
    "random-batched", "poisson", "flash-crowd", "datacenter",
};

/// Fresh streaming source for (family, seed); mirrors streaming_test.
std::unique_ptr<ArrivalSource> make_source(const std::string& family,
                                           std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<RandomBatchedSource>(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<PoissonSource>(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.spike_start = 128;
    params.spike_end = 192;
    params.horizon = 512;
    params.seed = seed;
    return std::make_unique<FlashCrowdSource>(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 1024;
    params.seed = seed;
    return std::make_unique<DatacenterSource>(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return nullptr;
}

/// Bit-for-bit agreement between a streaming histogram and the post-hoc
/// summary of the same samples.  Percentiles are not compared: the
/// histogram resolves them to bucket bounds by design.
void expect_matches(const Histogram& h, const DistributionSummary& s,
                    const char* label) {
  EXPECT_EQ(h.count(), s.count) << label;
  EXPECT_EQ(h.sum(), s.sum) << label;
  EXPECT_EQ(h.min(), s.min) << label;
  EXPECT_EQ(h.max(), s.max) << label;
  EXPECT_EQ(h.mean(), s.mean) << label << " (means must match exactly)";
}

/// Bit-for-bit agreement between streaming per-color counters and the
/// post-hoc ColorMetrics, with `obs_color` relabeled onto `m`.
void expect_matches(const ColorObs& obs, const ColorMetrics& m) {
  EXPECT_EQ(obs.arrived, m.jobs) << "color " << m.color;
  EXPECT_EQ(obs.executed, m.executed) << "color " << m.color;
  EXPECT_EQ(obs.dropped, m.dropped) << "color " << m.color;
  EXPECT_EQ(obs.dropped_weight, m.dropped_weight) << "color " << m.color;
  EXPECT_EQ(obs.mean_wait(), m.mean_wait) << "color " << m.color;
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, BucketLayoutIsLog2) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_upper(0), 0);
  EXPECT_EQ(Histogram::bucket_upper(1), 1);
  EXPECT_EQ(Histogram::bucket_upper(2), 3);
  EXPECT_EQ(Histogram::bucket_upper(3), 7);
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(i)), i);
  }
}

TEST(HistogramTest, RecordTracksExactAggregates) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  for (const Round v : {5, 0, 17, 5, 2}) h.record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 29);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 17);
  EXPECT_EQ(h.mean(), 29.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1);  // the zero
  EXPECT_EQ(h.bucket(2), 1);  // 2
  EXPECT_EQ(h.bucket(3), 2);  // both fives
  EXPECT_EQ(h.bucket(5), 1);  // 17
}

TEST(HistogramTest, MergeEqualsRecordingTheUnion) {
  Histogram a, b, all;
  for (const Round v : {1, 4, 9}) {
    a.record(v);
    all.record(v);
  }
  for (const Round v : {0, 4, 300}) {
    b.record(v);
    all.record(v);
  }
  Histogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, all);
  EXPECT_EQ(ba, all) << "merge must be commutative";
}

TEST(HistogramTest, PercentileResolvesToBucketBoundsExactAtMax) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0);  // empty
  for (const Round v : {1, 2, 3, 100}) h.record(v);
  // rank ceil(4 * 50 / 100) = 2 lands in bucket 2 ([2, 3]) -> upper bound 3.
  EXPECT_EQ(h.percentile(50), 3);
  // The top rank lands in the bucket holding the exact max.
  EXPECT_EQ(h.percentile(100), 100);
  Histogram one;
  one.record(42);
  EXPECT_EQ(one.percentile(1), 42);
  EXPECT_EQ(one.percentile(99), 42);
}

TEST(HistogramTest, FromPartsRoundTrips) {
  Histogram h;
  for (const Round v : {0, 3, 3, 9, 1024}) h.record(v);
  std::vector<std::pair<int, std::int64_t>> buckets;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket(i) > 0) buckets.emplace_back(i, h.bucket(i));
  }
  const Histogram back =
      Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), buckets);
  EXPECT_EQ(back, h);
  EXPECT_EQ(Histogram::from_parts(0, 0, 0, 0, {}), Histogram{});
}

TEST(HistogramTest, FromPartsRejectsInconsistency) {
  using Buckets = std::vector<std::pair<int, std::int64_t>>;
  const Buckets one = {{1, 1}};
  EXPECT_THROW((void)Histogram::from_parts(-1, 0, 0, 0, {}), InputError);
  EXPECT_THROW((void)Histogram::from_parts(0, 1, 0, 0, {}), InputError);
  EXPECT_THROW((void)Histogram::from_parts(1, 1, 0, 1, {}), InputError)
      << "count > 0 needs buckets";
  EXPECT_THROW((void)Histogram::from_parts(2, 2, 1, 1, one), InputError)
      << "bucket counts must sum to count";
  EXPECT_THROW((void)Histogram::from_parts(1, 1, 1, 0, one), InputError)
      << "min > max";
  EXPECT_THROW((void)Histogram::from_parts(1, 4, 4, 4, one), InputError)
      << "min not in its bucket";
  const Buckets two = {{1, 1}, {3, 1}};
  EXPECT_THROW((void)Histogram::from_parts(2, 100, 1, 5, two), InputError)
      << "mean outside [min, max]";
  const Buckets unordered = {{3, 1}, {1, 1}};
  EXPECT_THROW((void)Histogram::from_parts(2, 6, 1, 5, unordered), InputError);
}

// --- TraceRing -------------------------------------------------------------

TEST(TraceRingTest, KeepsNewestEventsUpToCapacity) {
  TraceRing ring(4);
  for (Round k = 0; k < 6; ++k) {
    ring.push({k, TraceKind::kReconfig, 0, k});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6);
  const std::vector<TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].round, static_cast<Round>(i + 2))
        << "oldest surviving event first";
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_pushed(), 0);
}

TEST(TraceRingTest, DumpNamesEveryKind) {
  TraceRing ring(16);
  ring.push({1, TraceKind::kDropBurst, 2, 5});
  ring.push({2, TraceKind::kChurnFail, 0, kBlack});
  ring.push({3, TraceKind::kEpochTurnover, 0, 7});
  std::ostringstream os;
  ring.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("drop-burst"), std::string::npos);
  EXPECT_NE(text.find("churn-fail"), std::string::npos);
  EXPECT_NE(text.find("epoch-turnover"), std::string::npos);
  EXPECT_NE(text.find("3 of 3 events"), std::string::npos);
}

TEST(TraceRingTest, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRing ring(0), InputError);
}

// --- PhaseTimers -----------------------------------------------------------

TEST(PhaseTimersTest, NotesChargeLapsAndMergeAdds) {
  PhaseTimers t;
  t.begin_segment();
  t.note(EnginePhase::kDrop);
  t.note(EnginePhase::kPolicy);
  t.note(EnginePhase::kPolicy);
  EXPECT_EQ(t.laps(EnginePhase::kDrop), 1);
  EXPECT_EQ(t.laps(EnginePhase::kPolicy), 2);
  EXPECT_EQ(t.laps(EnginePhase::kChurn), 0);
  EXPECT_GE(t.seconds(EnginePhase::kDrop), 0.0);
  EXPECT_GE(t.total_seconds(),
            t.seconds(EnginePhase::kDrop) + t.seconds(EnginePhase::kPolicy));

  PhaseTimers other;
  other.begin_segment();
  other.note(EnginePhase::kDrop);
  t.merge(other);
  EXPECT_EQ(t.laps(EnginePhase::kDrop), 2);
  t.reset();
  EXPECT_EQ(t.laps(EnginePhase::kPolicy), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
  EXPECT_STREQ(PhaseTimers::phase_name(EnginePhase::kExec), "exec");
}

// --- StreamStats -----------------------------------------------------------

TEST(StreamStatsTest, ReconfigGapCollapsesMiniRounds) {
  StreamStats stats;
  const std::vector<Round> delays = {4};
  const std::vector<Cost> costs = {1};
  stats.begin(delays, costs);
  stats.on_reconfigs(5, 2);
  stats.on_reconfigs(5, 1);  // second mini-round of round 5: same round
  EXPECT_EQ(stats.reconfig_events(), 3);
  EXPECT_EQ(stats.reconfig_rounds(), 1);
  EXPECT_TRUE(stats.reconfig_gap().empty());
  stats.on_reconfigs(9, 1);
  EXPECT_EQ(stats.reconfig_rounds(), 2);
  EXPECT_EQ(stats.reconfig_gap().count(), 1);
  EXPECT_EQ(stats.reconfig_gap().sum(), 4);
}

TEST(StreamStatsTest, MergeMappedRelabelsLocalColors) {
  // Global space: 3 colors.  Shard A owns {0, 2}, shard B owns {1}.
  const std::vector<Round> global_delays = {4, 8, 16};
  const std::vector<Cost> global_costs = {1, 2, 3};

  StreamStats shard_a;
  const std::vector<Round> a_delays = {4, 16};
  const std::vector<Cost> a_costs = {1, 3};
  shard_a.begin(a_delays, a_costs);
  shard_a.on_arrival(0);
  shard_a.on_arrival(1);
  shard_a.on_execution(1, 10, 20);  // wait 6, slack 9
  shard_a.on_drop(0, 2);            // weight 2

  StreamStats shard_b;
  const std::vector<Round> b_delays = {8};
  const std::vector<Cost> b_costs = {2};
  shard_b.begin(b_delays, b_costs);
  shard_b.on_arrival(0);
  shard_b.on_execution(0, 3, 7);  // wait 4, slack 3

  StreamStats merged;
  merged.begin(global_delays, global_costs);
  const std::vector<ColorId> a_map = {0, 2};
  const std::vector<ColorId> b_map = {1};
  merged.merge_mapped(shard_a, a_map);
  merged.merge_mapped(shard_b, b_map);

  EXPECT_EQ(merged.arrived(), 3);
  EXPECT_EQ(merged.executed(), 2);
  EXPECT_EQ(merged.drop_count(), 2);
  EXPECT_EQ(merged.drop_weight(), 2);
  EXPECT_EQ(merged.wait().sum(), 10);
  EXPECT_EQ(merged.slack().sum(), 12);
  ASSERT_EQ(merged.per_color().size(), 3u);
  EXPECT_EQ(merged.per_color()[0].dropped, 2);
  EXPECT_EQ(merged.per_color()[1].executed, 1);
  EXPECT_EQ(merged.per_color()[1].wait_sum, 4);
  EXPECT_EQ(merged.per_color()[2].executed, 1);
  EXPECT_EQ(merged.per_color()[2].wait_sum, 6);

  StreamStats wrong;
  wrong.begin(global_delays, global_costs);
  const std::vector<ColorId> bad_map = {0, 7};
  EXPECT_THROW(wrong.merge_mapped(shard_a, bad_map), InputError);
}

// --- Snapshot --------------------------------------------------------------

/// A consistent hand-built snapshot (executed == wait.count == slack.count,
/// means derived) with `executed` samples.
Snapshot test_snapshot(Round round, std::int64_t scale) {
  StreamStats stats;
  const std::vector<Round> delays = {4, 8};
  const std::vector<Cost> costs = {1, 3};
  stats.begin(delays, costs);
  for (std::int64_t i = 0; i < scale; ++i) {
    stats.on_arrival(0);
    stats.on_arrival(1);
    stats.on_work_unit(0);  // the engine records the unit, then the
    stats.on_execution(0, round - 1 + i, round + 2 + i);  // completion
    stats.on_drop(1, 1);
    stats.on_reconfigs(i * 3, 2);
  }
  stats.on_failure(true);
  stats.on_repair();
  return make_snapshot(stats, round, /*pending=*/scale);
}

TEST(SnapshotTest, JsonLineRoundTripsExactly) {
  const Snapshot s = test_snapshot(100, 7);
  const std::string line = to_json_line(s);
  const Snapshot back = parse_snapshot_line(line);
  EXPECT_EQ(back, s);
  EXPECT_EQ(to_json_line(back), line);
  // The all-zero snapshot round-trips too.
  EXPECT_EQ(parse_snapshot_line(to_json_line(Snapshot{})), Snapshot{});
}

TEST(SnapshotTest, MergeFromDefaultIsIdentityAndOrderIndependent) {
  const Snapshot a = test_snapshot(100, 5);
  const Snapshot b = test_snapshot(220, 11);
  Snapshot from_default;
  merge_into(from_default, a);
  EXPECT_EQ(from_default, a);

  Snapshot ab = a, ba = b;
  merge_into(ab, b);
  merge_into(ba, a);
  EXPECT_EQ(ab, ba) << "merge must be commutative";
  EXPECT_EQ(ab.round, 220);
  EXPECT_EQ(ab.executed, 16);
  EXPECT_EQ(ab.mean_wait, ab.wait.mean()) << "means recomputed on merge";
}

TEST(SnapshotTest, SeriesMergeCarriesShortShardsForward) {
  const Snapshot s1 = test_snapshot(64, 2);
  const Snapshot s2 = test_snapshot(128, 4);
  const Snapshot t1 = test_snapshot(64, 3);
  const std::vector<std::vector<Snapshot>> per_shard = {{s1, s2}, {t1}, {}};
  const std::vector<Snapshot> merged = merge_snapshot_series(per_shard);
  ASSERT_EQ(merged.size(), 2u);
  Snapshot want0 = s1, want1 = s2;
  merge_into(want0, t1);
  merge_into(want1, t1);  // the short shard's last snapshot carries forward
  EXPECT_EQ(merged[0], want0);
  EXPECT_EQ(merged[1], want1);
}

TEST(SnapshotTest, ReaderSkipsBlankLinesAndNumbersErrors) {
  const Snapshot a = test_snapshot(10, 2);
  const Snapshot b = test_snapshot(20, 3);
  std::ostringstream out;
  out << to_json_line(a) << "\n\n" << to_json_line(b) << '\n';
  std::istringstream in(out.str());
  const std::vector<Snapshot> back = read_snapshots(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);

  std::istringstream corrupt(to_json_line(a) + "\n{\"round\":oops\n");
  try {
    (void)read_snapshots(corrupt);
    FAIL() << "corrupt line must throw";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("snapshot line 2"),
              std::string::npos)
        << e.what();
  }
}

// --- Observer at run level -------------------------------------------------

TEST(ObserverRun, DoesNotPerturbTheRun) {
  const auto plain_source = make_source("random-batched", 5);
  const StreamRunRecord plain = run_streaming(*plain_source, "dlru-edf", 8);

  Observer observer;
  const auto observed_source = make_source("random-batched", 5);
  const StreamRunRecord observed =
      run_streaming(*observed_source, "dlru-edf", 8, kInfiniteHorizon,
                    nullptr, false, &observer);

  EXPECT_EQ(observed.cost, plain.cost);
  EXPECT_EQ(observed.executed, plain.executed);
  EXPECT_EQ(observed.arrived, plain.arrived);
  EXPECT_EQ(observed.rounds, plain.rounds);
  EXPECT_EQ(observed.peak_pending, plain.peak_pending);
  EXPECT_EQ(observed.stats, plain.stats);
}

TEST(ObserverRun, PeriodicSnapshotsAreCumulativeAndWritten) {
  ObsConfig config;
  config.snapshot_every = 64;
  Observer observer(config);
  std::ostringstream sink;
  observer.snapshot_out = &sink;

  const auto source = make_source("poisson", 9);
  const StreamRunRecord record =
      run_streaming(*source, "dlru-edf", 8, kInfiniteHorizon, nullptr, false,
                    &observer);

  ASSERT_GE(observer.snapshots.size(), 2u) << "256-round run, every 64";
  for (std::size_t i = 1; i < observer.snapshots.size(); ++i) {
    const Snapshot& prev = observer.snapshots[i - 1];
    const Snapshot& cur = observer.snapshots[i];
    EXPECT_GT(cur.round, prev.round);
    EXPECT_GE(cur.arrived, prev.arrived) << "cumulative, not a delta";
    EXPECT_GE(cur.executed, prev.executed);
    EXPECT_GE(cur.drop_count, prev.drop_count);
  }
  // The final snapshot is the run's totals.
  EXPECT_EQ(observer.final_snapshot.arrived, record.arrived);
  EXPECT_EQ(observer.final_snapshot.executed, record.executed);
  EXPECT_EQ(observer.final_snapshot.drop_weight, record.cost.drops);
  EXPECT_EQ(observer.final_snapshot.reconfig_events,
            record.cost.reconfig_events);
  EXPECT_EQ(observer.final_snapshot.pending, 0) << "drained run";
  EXPECT_EQ(observer.final_snapshot.round, record.rounds);

  // The JSON-lines sink holds the periodic series plus the final snapshot,
  // and parses back bit-identically.
  std::istringstream in(sink.str());
  const std::vector<Snapshot> parsed = read_snapshots(in);
  ASSERT_EQ(parsed.size(), observer.snapshots.size() + 1);
  for (std::size_t i = 0; i < observer.snapshots.size(); ++i) {
    EXPECT_EQ(parsed[i], observer.snapshots[i]);
  }
  EXPECT_EQ(parsed.back(), observer.final_snapshot);
}

TEST(ObserverRun, PhaseTimersAttributeEveryActivePhase) {
  ObsConfig config;
  config.timers = true;
  Observer observer(config);

  MtbfParams mtbf;
  mtbf.num_resources = 8;
  mtbf.horizon = 128;
  mtbf.mean_up = 30;
  mtbf.mean_down = 10;
  mtbf.seed = 4;
  const FaultPlan plan = make_mtbf_plan(mtbf);

  const auto source = make_source("random-batched", 3);
  (void)run_streaming(*source, "dlru-edf", 8, kInfiniteHorizon, &plan, false,
                      &observer);

  EXPECT_GT(observer.timers.laps(EnginePhase::kChurn), 0);
  EXPECT_GT(observer.timers.laps(EnginePhase::kDrop), 0);
  EXPECT_GT(observer.timers.laps(EnginePhase::kArrival), 0);
  EXPECT_GT(observer.timers.laps(EnginePhase::kPolicy), 0);
  EXPECT_GT(observer.timers.laps(EnginePhase::kExec), 0);
  EXPECT_GE(observer.timers.total_seconds(), 0.0);
}

TEST(ObserverRun, TraceRecordsReconfigsAndChurn) {
  ObsConfig config;
  config.trace_capacity = 4096;
  Observer observer(config);

  MtbfParams mtbf;
  mtbf.num_resources = 8;
  mtbf.horizon = 128;
  mtbf.mean_up = 30;
  mtbf.mean_down = 10;
  mtbf.seed = 4;
  const FaultPlan plan = make_mtbf_plan(mtbf);

  const auto source = make_source("random-batched", 3);
  const StreamRunRecord record = run_streaming(
      *source, "dlru-edf", 8, kInfiniteHorizon, &plan, false, &observer);

  std::int64_t reconfig_events = 0, fails = 0, repairs = 0;
  for (const TraceEvent& e : observer.trace.events()) {
    if (e.kind == TraceKind::kReconfig) reconfig_events += e.value;
    if (e.kind == TraceKind::kChurnFail) ++fails;
    if (e.kind == TraceKind::kChurnRepair) ++repairs;
  }
  // The ring is larger than the event volume here, so nothing was evicted
  // and the trace must account for every committed reconfiguration.
  ASSERT_EQ(observer.trace.total_pushed(),
            static_cast<std::int64_t>(observer.trace.size()));
  EXPECT_EQ(reconfig_events, record.cost.reconfig_events);
  EXPECT_EQ(fails, record.degraded.fault_events);
  EXPECT_EQ(repairs, record.degraded.repair_events);
}

TEST(ObserverRun, DumpsTraceOnInvariantError) {
  // A policy that dies mid-run: the engine must dump the flight recorder
  // to the observer's sink before rethrowing.
  class BoomPolicy final : public Policy {
   public:
    [[nodiscard]] std::string_view name() const override { return "boom"; }
    void on_round(RoundContext& ctx) override {
      if (ctx.final_sweep()) return;
      if (!ctx.cache().contains(0) && !ctx.cache().full()) {
        ctx.cache().insert(0);
      }
      if (ctx.round() >= 8) throw InvariantError("boom at round 8");
    }
  };

  Observer observer;
  std::ostringstream dump;
  observer.trace_dump_out = &dump;

  const auto source = make_source("poisson", 2);
  BoomPolicy policy;
  EngineOptions options;
  options.num_resources = 4;
  options.replication = 1;
  options.record_schedule = false;
  options.observer = &observer;
  EXPECT_THROW((void)run_policy(*source, policy, options), InvariantError);
  EXPECT_NE(dump.str().find("trace-ring dump"), std::string::npos);
  EXPECT_NE(dump.str().find("reconfig"), std::string::npos)
      << "the insert at round 0 must be in the dump:\n"
      << dump.str();
}

// --- the streaming-vs-post-hoc equivalence matrix --------------------------

using Cell = std::tuple<std::string, std::string, std::uint64_t>;

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const char* const algorithm : kObsAlgorithms) {
    for (const char* const family : kFamilies) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cells.emplace_back(algorithm, family, seed);
      }
    }
  }
  return cells;
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     "_s" + std::to_string(std::get<2>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class StreamingVsPostHoc : public ::testing::TestWithParam<Cell> {};

TEST_P(StreamingVsPostHoc, StreamStatsEqualComputeMetricsBitForBit) {
  const auto& [algorithm, family, seed] = GetParam();

  // Post-hoc reference: materialize, record the schedule, run the offline
  // instrument.
  const auto to_materialize = make_source(family, seed);
  const Instance instance = materialize(*to_materialize);
  Schedule schedule;
  const RunRecord reference =
      run_algorithm(instance, algorithm, 8, &schedule);
  const ScheduleMetrics metrics = compute_metrics(instance, schedule);

  // Streaming: same workload pulled lazily, instrumented live.
  Observer observer;
  const auto source = make_source(family, seed);
  const StreamRunRecord streamed = run_streaming(
      *source, algorithm, 8, kInfiniteHorizon, nullptr, false, &observer);
  const StreamStats& stats = observer.stats;

  expect_matches(stats.wait(), metrics.wait, "wait");
  expect_matches(stats.slack(), metrics.slack, "slack");
  EXPECT_EQ(stats.arrived(),
            static_cast<std::int64_t>(instance.jobs().size()));
  EXPECT_EQ(stats.executed(), reference.executed);
  EXPECT_EQ(stats.drop_weight(), streamed.cost.drops);
  EXPECT_EQ(stats.reconfig_events(), streamed.cost.reconfig_events);
  ASSERT_EQ(stats.per_color().size(), metrics.per_color.size());
  for (std::size_t c = 0; c < metrics.per_color.size(); ++c) {
    expect_matches(stats.per_color()[c], metrics.per_color[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, StreamingVsPostHoc,
                         ::testing::ValuesIn(all_cells()), cell_name);

class ShardedVsPostHoc : public ::testing::TestWithParam<Cell> {};

TEST_P(ShardedVsPostHoc, MergedStatsEqualRelabeledPostHocSums) {
  const auto& [algorithm, family, seed] = GetParam();
  constexpr int kShards = 2;
  constexpr int kResources = 16;

  // Sharded run with a merged observer plus caller-owned per-shard ones.
  Observer merged;
  std::vector<Observer> shard_store(kShards, Observer{});
  ShardedRunOptions options;
  options.observer = &merged;
  for (Observer& obs : shard_store) options.shard_observers.push_back(&obs);

  const auto source = make_source(family, seed);
  const Round arrival_end = source->horizon();
  const ShardedRunRecord record = run_streaming_sharded(
      *source, algorithm, kResources, kShards, kInfiniteHorizon, options);

  // Post-hoc reference: re-split a fresh identical source with the SAME
  // plan, materialize each shard's relabeled sub-workload, and run the
  // offline instrument on it.
  const auto resplit_source = make_source(family, seed);
  ShardedSourceOptions split_options;
  split_options.backpressure = false;  // shards materialized serially
  ShardedSource resplit(*resplit_source, record.plan, arrival_end,
                        split_options);

  DistributionSummary wait_sum, slack_sum;
  std::vector<ColorMetrics> global_colors(
      static_cast<std::size_t>(resplit_source->num_colors()));
  for (int s = 0; s < kShards; ++s) {
    const Instance sub = materialize(resplit.stream(s));
    Schedule schedule;
    (void)run_algorithm(sub, algorithm,
                        record.plan.shard_resources[static_cast<std::size_t>(
                            s)],
                        &schedule);
    const ScheduleMetrics m = compute_metrics(sub, schedule);

    // Per-shard: the caller-provided observer vs the shard's own post-hoc
    // instrument, bit for bit.
    const StreamStats& shard_stats =
        shard_store[static_cast<std::size_t>(s)].stats;
    expect_matches(shard_stats.wait(), m.wait, "shard wait");
    expect_matches(shard_stats.slack(), m.slack, "shard slack");
    ASSERT_EQ(shard_stats.per_color().size(), m.per_color.size());
    for (std::size_t c = 0; c < m.per_color.size(); ++c) {
      expect_matches(shard_stats.per_color()[c], m.per_color[c]);
      // Relabel into the expected global table: each color lives in
      // exactly one shard, so this is a copy, not an accumulation.
      const auto global = static_cast<std::size_t>(
          record.plan.shard_colors[static_cast<std::size_t>(s)][c]);
      global_colors[global] = m.per_color[c];
      global_colors[global].color = static_cast<ColorId>(global);
    }

    // Combine the post-hoc summaries the way an exact merge must.
    wait_sum.count += m.wait.count;
    wait_sum.sum += m.wait.sum;
    slack_sum.count += m.slack.count;
    slack_sum.sum += m.slack.sum;
    if (m.wait.count > 0) {
      wait_sum.min = wait_sum.count == m.wait.count
                         ? m.wait.min
                         : std::min(wait_sum.min, m.wait.min);
      wait_sum.max = std::max(wait_sum.max, m.wait.max);
    }
    if (m.slack.count > 0) {
      slack_sum.min = slack_sum.count == m.slack.count
                          ? m.slack.min
                          : std::min(slack_sum.min, m.slack.min);
      slack_sum.max = std::max(slack_sum.max, m.slack.max);
    }
  }
  wait_sum.mean = wait_sum.count == 0
                      ? 0.0
                      : static_cast<double>(wait_sum.sum) /
                            static_cast<double>(wait_sum.count);
  slack_sum.mean = slack_sum.count == 0
                       ? 0.0
                       : static_cast<double>(slack_sum.sum) /
                             static_cast<double>(slack_sum.count);

  // Merged observer == the relabeled post-hoc combination, bit for bit.
  expect_matches(merged.stats.wait(), wait_sum, "merged wait");
  expect_matches(merged.stats.slack(), slack_sum, "merged slack");
  EXPECT_EQ(merged.stats.arrived(), record.merged.arrived);
  EXPECT_EQ(merged.stats.executed(), record.merged.executed);
  EXPECT_EQ(merged.stats.drop_weight(), record.merged.cost.drops);
  EXPECT_EQ(merged.stats.reconfig_events(),
            record.merged.cost.reconfig_events);
  ASSERT_EQ(merged.stats.per_color().size(), global_colors.size());
  for (std::size_t c = 0; c < global_colors.size(); ++c) {
    expect_matches(merged.stats.per_color()[c], global_colors[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ShardedVsPostHoc,
                         ::testing::ValuesIn(all_cells()), cell_name);

// --- equivalence under capacity churn --------------------------------------

class FaultedVsPostHoc : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultedVsPostHoc, StreamStatsMatchRecordedScheduleUnderChurn) {
  const std::string algorithm = GetParam();

  MtbfParams mtbf;
  mtbf.num_resources = 8;
  mtbf.horizon = 256;
  mtbf.mean_up = 40;
  mtbf.mean_down = 12;
  mtbf.seed = 6;
  const FaultPlan plan = make_mtbf_plan(mtbf);

  // Post-hoc reference: the engine with the same churn, recording the
  // schedule for the offline instrument.
  const auto to_materialize = make_source("random-batched", 6);
  const Instance instance = materialize(*to_materialize);
  auto policy = make_policy(algorithm);
  EngineOptions engine_options;
  engine_options.num_resources = 8;
  engine_options.replication = 2;
  engine_options.record_schedule = true;
  engine_options.fault_plan = &plan;
  const EngineResult reference =
      run_policy(instance, *policy, engine_options);
  const ScheduleMetrics metrics = compute_metrics(instance,
                                                  reference.schedule);

  // Streaming with the same plan, instrumented live.
  Observer observer;
  const auto source = make_source("random-batched", 6);
  const StreamRunRecord streamed = run_streaming(
      *source, algorithm, 8, kInfiniteHorizon, &plan, false, &observer);
  const StreamStats& stats = observer.stats;

  ASSERT_GT(streamed.degraded.fault_events, 0) << "plan must inject churn";
  expect_matches(stats.wait(), metrics.wait, "wait");
  expect_matches(stats.slack(), metrics.slack, "slack");
  EXPECT_EQ(stats.executed(), reference.executed);
  EXPECT_EQ(stats.drop_weight(), reference.cost.drops);
  ASSERT_EQ(stats.per_color().size(), metrics.per_color.size());
  for (std::size_t c = 0; c < metrics.per_color.size(); ++c) {
    expect_matches(stats.per_color()[c], metrics.per_color[c]);
  }
  // Churn counters mirror the engine's DegradedStats.
  EXPECT_EQ(stats.churn_failures(), streamed.degraded.fault_events);
  EXPECT_EQ(stats.churn_repairs(), streamed.degraded.repair_events);
  EXPECT_EQ(stats.churn_evictions(), streamed.degraded.churn_evictions);
}

std::string algorithm_name(
    const ::testing::TestParamInfo<std::string>& param_info) {
  std::string name = param_info.param;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FaultedVsPostHoc,
                         ::testing::ValuesIn(std::vector<std::string>{
                             "dlru", "edf", "dlru-edf", "adaptive"}),
                         algorithm_name);

}  // namespace
}  // namespace rrs
