// Tests for the weighted (per-color drop cost) extension.
//
// The paper fixes unit drop costs; the companion SPAA 2006 paper studies
// variable drop costs (with uniform delay bounds).  This extension grafts
// per-color drop costs onto the variable-delay machinery: drop cost is the
// summed weight of unexecuted jobs, and eligibility counters accumulate
// weight (a color becomes eligible once Delta worth of droppable value has
// arrived).  Everything must reduce exactly to the paper's semantics when
// all weights are 1 — which the rest of the suite pins down — so these
// tests focus on the weighted behaviours.
#include <gtest/gtest.h>

#include <sstream>

#include "algs/dlru_edf.h"
#include "core/validator.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/random_batched.h"
#include "workload/trace_io.h"

namespace rrs {
namespace {

TEST(Weighted, InstanceTracksWeights) {
  InstanceBuilder builder;
  const ColorId gold = builder.add_color(4, 10);
  const ColorId lead = builder.add_color(4, 1);
  builder.add_jobs(gold, 0, 3).add_jobs(lead, 0, 5);
  const Instance inst = builder.build();
  EXPECT_EQ(inst.drop_cost(gold), 10);
  EXPECT_EQ(inst.drop_cost(lead), 1);
  EXPECT_EQ(inst.weight_of_color(gold), 30);
  EXPECT_EQ(inst.weight_of_color(lead), 5);
  EXPECT_EQ(inst.total_weight(), 35);
  EXPECT_FALSE(inst.unit_drop_costs());
  EXPECT_EQ(inst.jobs()[0].drop_cost, 10);
}

TEST(Weighted, UnitCostsDetected) {
  InstanceBuilder builder;
  builder.add_color(4);
  builder.add_color(8, 1);
  const Instance inst = builder.build();
  EXPECT_TRUE(inst.unit_drop_costs());
}

TEST(Weighted, BuilderRejectsNonPositiveWeight) {
  InstanceBuilder builder;
  EXPECT_THROW((void)builder.add_color(4, 0), InputError);
  EXPECT_THROW((void)builder.add_color(4, -3), InputError);
}

TEST(Weighted, EngineChargesWeightedDrops) {
  // Nothing configured: drop cost = total weight, not job count.
  InstanceBuilder builder;
  builder.delta(1000);  // nothing ever becomes eligible
  const ColorId gold = builder.add_color(4, 10);
  builder.add_jobs(gold, 0, 3);
  const Instance inst = builder.build();
  const RunRecord r = run_algorithm(inst, "dlru-edf", 8);
  EXPECT_EQ(r.cost.drops, 30);
  EXPECT_EQ(r.cost.reconfig_cost, 0);
}

TEST(Weighted, ScheduleCostUsesWeights) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId gold = builder.add_color(4, 10);
  builder.add_jobs(gold, 0, 2);
  const Instance inst = builder.build();

  Schedule schedule;
  schedule.num_resources = 1;
  schedule.reconfigs = {{0, 0, 0, gold}};
  schedule.execs = {{0, 0, 0, 0}};  // one of two jobs executed
  const CostBreakdown cost = validate_or_throw(inst, schedule);
  EXPECT_EQ(cost.reconfig_cost, 2);
  EXPECT_EQ(cost.drops, 10);  // one weighted job forfeited
}

TEST(Weighted, EligibilityAcceleratedByWeight) {
  // Delta 10: a weight-10 color becomes eligible on its FIRST job; a
  // weight-1 color needs ten.  With one cache pair, the valuable color is
  // served first.
  InstanceBuilder builder;
  builder.delta(10);
  const ColorId gold = builder.add_color(8, 10);
  const ColorId lead = builder.add_color(8, 1);
  builder.add_jobs(lead, 0, 4);
  builder.add_jobs(gold, 0, 4);
  const Instance inst = builder.build();

  const RunRecord r = run_algorithm(inst, "dlru-edf", 4);
  // gold (weight 40) is eligible immediately and served; lead never
  // accumulates Delta worth of value in its first block but eventually
  // does (4 + 4 < 10 per epoch; total 4 jobs of weight 1 -> cnt 4 < 10,
  // never eligible): all 4 lead jobs drop at weight 1 each.
  EXPECT_EQ(r.cost.drops, 4);
}

TEST(Weighted, LowerBoundUsesWeights) {
  InstanceBuilder builder;
  builder.delta(50);
  const ColorId gold = builder.add_color(4, 30);  // weight 60 > Delta
  const ColorId lead = builder.add_color(4, 1);   // weight 2  < Delta
  builder.add_jobs(gold, 0, 2).add_jobs(lead, 0, 2);
  const Instance inst = builder.build();
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_EQ(lb.configure_or_drop, 50 + 2);
}

TEST(Weighted, OptimalDpAccountsWeights) {
  // One resource, two colors with equal job counts but unequal value and
  // overlapping windows: the optimum configures the valuable one and
  // drops the cheap one.
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId gold = builder.add_color(2, 10);
  const ColorId lead = builder.add_color(2, 1);
  builder.add_jobs(gold, 0, 2).add_jobs(lead, 0, 2);
  const Instance inst = builder.build();
  // Serve gold: Delta(3) + lead weight(2) = 5.  Serve lead: 3 + 20 = 23.
  EXPECT_EQ(optimal_offline_cost(inst, 1), 5);
}

TEST(Weighted, GreedyPrefersValuableBacklog) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId gold = builder.add_color(4, 10);
  const ColorId lead = builder.add_color(4, 1);
  builder.add_jobs(lead, 0, 4);  // more jobs...
  builder.add_jobs(gold, 0, 3);  // ...but less value than 3 x 10
  const Instance inst = builder.build();
  const EngineResult r = run_demand_greedy(inst, 1);
  // gold (backlog value 30) must win the single slot; lead (value 4)
  // drops.  Cost: Delta + 4 (gold finishes, lead lost by deadline 4 after
  // 3 gold rounds leave 1 round: 1 lead executes? gold takes rounds 0-2,
  // lead's window ends at round 4 -> round 3 serves one lead job).
  EXPECT_LE(r.cost.drops, 4);
  const Cost gold_weight = inst.weight_of_color(gold);
  EXPECT_LT(r.cost.drops, gold_weight) << "gold must not be forfeited";
}

TEST(Weighted, TraceRoundTripPreservesWeights) {
  RandomBatchedParams params;
  params.seed = 3;
  params.horizon = 64;
  params.min_drop_cost = 1;
  params.max_drop_cost = 12;
  const Instance original = make_random_batched(params);
  ASSERT_FALSE(original.unit_drop_costs());

  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const Instance reread = read_trace(in);
  for (ColorId c = 0; c < original.num_colors(); ++c) {
    EXPECT_EQ(reread.drop_cost(c), original.drop_cost(c));
  }
  EXPECT_EQ(reread.jobs(), original.jobs());
}

TEST(Weighted, LegacyTraceWithoutWeightsStillParses) {
  std::istringstream in(
      "# rrs-trace v1\n"
      "delta,3\n"
      "color,0,8\n"
      "job,0,0,2\n"
      "# end\n");
  const Instance inst = read_trace(in);
  EXPECT_EQ(inst.drop_cost(0), 1);
  EXPECT_TRUE(inst.unit_drop_costs());
}

TEST(Weighted, DatacenterMixIsWeighted) {
  DatacenterParams params;
  params.seed = 2;
  params.horizon = 512;
  const Instance inst = make_datacenter(params);
  EXPECT_FALSE(inst.unit_drop_costs());
  EXPECT_EQ(inst.drop_cost(0), 8);  // interactive tier
}

TEST(Weighted, ReductionsPreserveWeights) {
  RandomBatchedParams params;
  params.seed = 7;
  params.horizon = 256;
  params.min_drop_cost = 1;
  params.max_drop_cost = 8;
  const Instance inst = make_random_batched(params);

  Schedule schedule;
  const RunRecord r = run_algorithm(inst, "varbatch", 8, &schedule);
  const CostBreakdown validated = validate_or_throw(inst, schedule);
  EXPECT_EQ(validated, r.cost);
}

TEST(Weighted, TrackerSplitsDropWeight) {
  RandomBatchedParams params;
  params.seed = 9;
  params.horizon = 512;
  params.min_drop_cost = 1;
  params.max_drop_cost = 6;
  const Instance inst = make_random_batched(params);

  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(policy.tracker().eligible_drop_weight() +
                policy.tracker().ineligible_drop_weight(),
            r.cost.drops);
  EXPECT_GE(policy.tracker().eligible_drop_weight(),
            policy.tracker().eligible_drops());
}

}  // namespace
}  // namespace rrs
