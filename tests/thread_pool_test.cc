// ThreadPool contract coverage: the shared pool underpins both the sweep
// harness and the sharded streaming runner, so its blocking semantics
// (wait_idle, destruction, re-entrancy) are tested directly here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/shard_plan.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "workload/poisson.h"
#include "workload/sharded_source.h"

namespace rrs {
namespace {

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after a propagated exception.
  std::atomic<int> hits{0};
  pool.parallel_for(4, [&hits](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ThreadPoolTest, WaitIdleWithZeroSubmittedTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted: must return immediately
  pool.submit([] {});
  pool.wait_idle();
  pool.wait_idle();  // idempotent once drained
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);  // single worker so tasks genuinely queue up
    for (int i = 0; i < 16; ++i) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, ReentrantParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  std::atomic<int> inline_calls{0};
  pool.parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // Re-entrant use from a worker: must complete (not deadlock) by
    // running the iterations inline on this worker.
    pool.parallel_for(8, [&](std::size_t) {
      ++inner_hits;
      if (ThreadPool::in_worker()) ++inline_calls;
    });
  });
  EXPECT_EQ(inner_hits.load(), 4 * 8);
  EXPECT_EQ(inline_calls.load(), 4 * 8);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolTest, WaitIdleFromWorkerFailsLoudly) {
  ThreadPool pool(2);
  pool.parallel_for(1, [&pool](std::size_t) {
    EXPECT_THROW(pool.wait_idle(), InvariantError);
  });
}

TEST(ThreadPoolTest, ParseThreadCount) {
  // Null/empty mean "unset": fall through to the hardware default.
  EXPECT_EQ(parse_thread_count(nullptr), 0u);
  EXPECT_EQ(parse_thread_count(""), 0u);
  EXPECT_EQ(parse_thread_count("1"), 1u);
  EXPECT_EQ(parse_thread_count("12"), 12u);
}

TEST(ThreadPoolTest, ParseThreadCountRejectsMalformedValues) {
  // A set-but-broken RRS_THREADS must fail loudly, not silently fall back
  // to the hardware default.
  EXPECT_THROW((void)parse_thread_count("abc"), InputError);
  EXPECT_THROW((void)parse_thread_count("4abc"), InputError);
  EXPECT_THROW((void)parse_thread_count("4 "), InputError);
  EXPECT_THROW((void)parse_thread_count("-2"), InputError);
  EXPECT_THROW((void)parse_thread_count("0"), InputError);
}

TEST(ThreadPoolTest, GlobalPoolIsSharedAndSized) {
  ThreadPool& first = global_pool();
  ThreadPool& second = global_pool();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.size(), 1u);
}

TEST(ThreadPoolTest, FreeParallelForCoversAllIndicesViaGlobalPool) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, NestedFreeParallelForCompletes) {
  // Sweeps can nest (a sweep cell running a sharded run): the free helper
  // must stay correct when invoked from inside a pool worker.
  std::atomic<int> total{0};
  parallel_for(4, [&total](std::size_t) {
    parallel_for(4, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16);
}

// The sharded splitter's blocking behavior lives next to the pool tests
// because both underpin the multi-threaded sharded runner.

TEST(ShardedSourceBackoff, SlowConsumerDoesNotLivelockTheFastOne) {
  // A consumer that keeps sleeping must not wedge its peer: the soft
  // backpressure gives up after bounded backoff waits and produces anyway,
  // so both streams always finish with the full job count.
  const Round rounds = 512;
  PoissonParams params;
  params.horizon = rounds;
  params.seed = 3;
  PoissonSource source(params);
  const ShardPlan plan = make_shard_plan(source.num_colors(), 2, 8, 2);

  std::int64_t expected = 0;
  {
    PoissonSource reference(params);
    for (Round k = 0; k < rounds; ++k) {
      expected += static_cast<std::int64_t>(
          reference.arrivals_in_round(k).size());
    }
  }

  ShardedSourceOptions options;
  options.chunk_rounds = 8;
  options.max_buffered_chunks = 2;  // tiny: backpressure engages constantly
  options.backpressure = true;
  ShardedSource sharded(source, plan, rounds, options);
  std::int64_t counts[2] = {0, 0};
  std::vector<std::thread> consumers;
  for (int s = 0; s < 2; ++s) {
    consumers.emplace_back([&sharded, &counts, s, rounds] {
      ArrivalSource& stream = sharded.stream(s);
      for (Round k = 0; k < rounds; ++k) {
        counts[s] +=
            static_cast<std::int64_t>(stream.arrivals_in_round(k).size());
        if (s == 1 && k % 64 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(counts[0] + counts[1], expected);
}

TEST(ShardedSourceBackoff, StallWatchdogAbortsWithDiagnostic) {
  // One consumer walks its stream to the end while the other never pulls:
  // with backpressure on and a tiny stall limit, the watchdog must turn
  // the dead peer into a loud InvariantError instead of unbounded memory.
  PoissonParams params;
  params.horizon = 512;
  params.seed = 4;
  PoissonSource source(params);
  const ShardPlan plan = make_shard_plan(source.num_colors(), 2, 8, 2);
  ShardedSourceOptions options;
  options.chunk_rounds = 4;
  options.max_buffered_chunks = 1;
  options.backpressure = true;
  options.stall_chunk_limit = 2;
  ShardedSource sharded(source, plan, 512, options);
  ArrivalSource& stream = sharded.stream(0);
  EXPECT_THROW(
      {
        for (Round k = 0; k < 512; ++k) (void)stream.arrivals_in_round(k);
      },
      InvariantError);
}

}  // namespace
}  // namespace rrs
