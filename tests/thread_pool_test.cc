// ThreadPool contract coverage: the shared pool underpins both the sweep
// harness and the sharded streaming runner, so its blocking semantics
// (wait_idle, destruction, re-entrancy) are tested directly here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace rrs {
namespace {

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after a propagated exception.
  std::atomic<int> hits{0};
  pool.parallel_for(4, [&hits](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ThreadPoolTest, WaitIdleWithZeroSubmittedTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted: must return immediately
  pool.submit([] {});
  pool.wait_idle();
  pool.wait_idle();  // idempotent once drained
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);  // single worker so tasks genuinely queue up
    for (int i = 0; i < 16; ++i) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++completed;
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPoolTest, ReentrantParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  std::atomic<int> inline_calls{0};
  pool.parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_worker());
    // Re-entrant use from a worker: must complete (not deadlock) by
    // running the iterations inline on this worker.
    pool.parallel_for(8, [&](std::size_t) {
      ++inner_hits;
      if (ThreadPool::in_worker()) ++inline_calls;
    });
  });
  EXPECT_EQ(inner_hits.load(), 4 * 8);
  EXPECT_EQ(inline_calls.load(), 4 * 8);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPoolTest, WaitIdleFromWorkerFailsLoudly) {
  ThreadPool pool(2);
  pool.parallel_for(1, [&pool](std::size_t) {
    EXPECT_THROW(pool.wait_idle(), InvariantError);
  });
}

TEST(ThreadPoolTest, ParseThreadCount) {
  EXPECT_EQ(parse_thread_count(nullptr), 0u);
  EXPECT_EQ(parse_thread_count(""), 0u);
  EXPECT_EQ(parse_thread_count("abc"), 0u);
  EXPECT_EQ(parse_thread_count("4abc"), 0u);
  EXPECT_EQ(parse_thread_count("-2"), 0u);
  EXPECT_EQ(parse_thread_count("0"), 0u);
  EXPECT_EQ(parse_thread_count("1"), 1u);
  EXPECT_EQ(parse_thread_count("12"), 12u);
}

TEST(ThreadPoolTest, GlobalPoolIsSharedAndSized) {
  ThreadPool& first = global_pool();
  ThreadPool& second = global_pool();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.size(), 1u);
}

TEST(ThreadPoolTest, FreeParallelForCoversAllIndicesViaGlobalPool) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, NestedFreeParallelForCompletes) {
  // Sweeps can nest (a sweep cell running a sharded run): the free helper
  // must stay correct when invoked from inside a pool worker.
  std::atomic<int> total{0};
  parallel_for(4, [&total](std::size_t) {
    parallel_for(4, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace rrs
