// Tests for algs/distribute: the batched -> rate-limited reduction.
#include <gtest/gtest.h>

#include "algs/distribute.h"
#include "core/validator.h"
#include "offline/optimal.h"
#include "util/rng.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

/// Batched instance whose bursts exceed the rate limit.
Instance bursty_batched(std::uint64_t seed = 1) {
  RandomBatchedParams params;
  params.seed = seed;
  params.burst_factor = 3.0;  // up to 3 * D_l jobs per batch
  params.horizon = 256;
  params.num_colors = 8;
  return make_random_batched(params);
}

TEST(Distribute, TransformProducesRateLimitedInstance) {
  const Instance inst = bursty_batched();
  ASSERT_TRUE(inst.is_batched());
  ASSERT_FALSE(inst.is_rate_limited());

  const DistributeTransform t = distribute_transform(inst);
  EXPECT_TRUE(t.rate_limited.is_batched());
  EXPECT_TRUE(t.rate_limited.is_rate_limited());
  EXPECT_EQ(t.rate_limited.jobs().size(), inst.jobs().size());
  EXPECT_GE(t.rate_limited.num_colors(), inst.num_colors());
  EXPECT_EQ(static_cast<ColorId>(t.virtual_to_real.size()),
            t.rate_limited.num_colors());
}

TEST(Distribute, VirtualColorsPreserveDelayBounds) {
  const Instance inst = bursty_batched(2);
  const DistributeTransform t = distribute_transform(inst);
  for (ColorId v = 0; v < t.rate_limited.num_colors(); ++v) {
    const ColorId real = t.virtual_to_real[static_cast<std::size_t>(v)];
    EXPECT_EQ(t.rate_limited.delay_bound(v), inst.delay_bound(real));
  }
}

TEST(Distribute, JobIdsCorrespondOneToOne) {
  const Instance inst = bursty_batched(3);
  const DistributeTransform t = distribute_transform(inst);
  for (std::size_t i = 0; i < inst.jobs().size(); ++i) {
    const Job& original = inst.jobs()[i];
    const Job& renamed = t.rate_limited.jobs()[i];
    EXPECT_EQ(renamed.arrival, original.arrival);
    EXPECT_EQ(renamed.delay_bound, original.delay_bound);
    EXPECT_EQ(t.virtual_to_real[static_cast<std::size_t>(renamed.color)],
              original.color);
  }
}

TEST(Distribute, SplitsBigBatchesAcrossVirtualColors) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 10);  // 10 jobs, D = 4 -> 3 virtual colors
  const Instance inst = builder.build();
  const DistributeTransform t = distribute_transform(inst);
  EXPECT_EQ(t.rate_limited.num_colors(), 3);
  EXPECT_EQ(t.rate_limited.jobs_of_color(0), 4);
  EXPECT_EQ(t.rate_limited.jobs_of_color(1), 4);
  EXPECT_EQ(t.rate_limited.jobs_of_color(2), 2);
}

TEST(Distribute, RequiresBatchedInput) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 1, 1);  // unbatched
  const Instance inst = builder.build();
  EXPECT_THROW((void)distribute_transform(inst), InputError);
}

TEST(Distribute, MapBackElidesSiblingReconfigs) {
  // A hand-built virtual schedule that flips one resource between two
  // virtual colors of the same real color: the mapped schedule must carry
  // only the first reconfiguration.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 4);  // virtual colors (c,0), (c,1)
  const Instance inst = builder.build();
  const DistributeTransform t = distribute_transform(inst);
  ASSERT_EQ(t.rate_limited.num_colors(), 2);

  Schedule virtual_schedule;
  virtual_schedule.num_resources = 1;
  virtual_schedule.reconfigs = {{0, 0, 0, 0}, {1, 0, 0, 1}};
  virtual_schedule.execs = {{0, 0, 0, 0}, {1, 0, 0, 2}};
  const Schedule mapped = distribute_map_back(t, virtual_schedule);
  EXPECT_EQ(mapped.reconfigs.size(), 1u);
  EXPECT_EQ(mapped.reconfigs[0].color, c);
  EXPECT_EQ(mapped.execs.size(), 2u);
  EXPECT_TRUE(validate(inst, mapped).ok);
}

TEST(Distribute, EndToEndScheduleValidAndCostAtMostVirtual) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance inst = bursty_batched(seed);
    const DistributeResult r = run_distribute(inst, 8);
    const CostBreakdown mapped_cost = validate_or_throw(inst, r.schedule);
    EXPECT_EQ(mapped_cost, r.cost);
    // Lemma 4.2: mapping back never increases cost.
    EXPECT_LE(r.cost.total(), r.virtual_run.cost.total()) << "seed " << seed;
    // Executions are preserved exactly.
    EXPECT_EQ(static_cast<std::int64_t>(r.schedule.execs.size()),
              r.virtual_run.executed);
  }
}

TEST(Distribute, Lemma41_VirtualInstanceAdmitsCheapOfflineSchedule) {
  // Lemma 4.1 (proved via the Aggregate construction with 3x resources):
  // any offline schedule T for I yields an offline schedule T' for I'
  // that is resource competitive with T.  Checked exactly on tiny bursty
  // instances with the DP:  OPT_{I'}(3m) <= K * OPT_I(m)  at m = 1.
  Rng rng(55);
  for (int trial = 0; trial < 6; ++trial) {
    InstanceBuilder builder;
    builder.delta(2);
    const ColorId a = builder.add_color(2);
    const ColorId b = builder.add_color(4);
    for (Round t = 0; t < 12; t += 2) {
      if (rng.bernoulli(0.6)) builder.add_jobs(a, t, rng.uniform(1, 5));
      if (t % 4 == 0 && rng.bernoulli(0.6)) {
        builder.add_jobs(b, t, rng.uniform(1, 9));
      }
    }
    const Instance instance = builder.build();
    if (instance.jobs().empty()) continue;
    const Instance virtual_instance =
        distribute_transform(instance).rate_limited;

    const Cost opt_original = optimal_offline_cost(instance, 1);
    const Cost opt_virtual = optimal_offline_cost(virtual_instance, 3);
    EXPECT_LE(opt_virtual, 8 * std::max<Cost>(1, opt_original))
        << "trial " << trial;
  }
}

TEST(Distribute, RateLimitedInputPassesThroughUnchanged) {
  RandomBatchedParams params;
  params.seed = 9;
  params.burst_factor = 1.0;
  params.horizon = 128;
  const Instance inst = make_random_batched(params);
  ASSERT_TRUE(inst.is_rate_limited());
  const DistributeTransform t = distribute_transform(inst);
  // Already rate-limited: one virtual color per active real color.
  EXPECT_LE(t.rate_limited.num_colors(), inst.num_colors());
  for (std::size_t i = 0; i < inst.jobs().size(); ++i) {
    EXPECT_EQ(t.virtual_to_real[static_cast<std::size_t>(
                  t.rate_limited.jobs()[i].color)],
              inst.jobs()[i].color);
  }
}

}  // namespace
}  // namespace rrs
