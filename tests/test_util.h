// Shared helpers for the RRS test suite.
#pragma once

#include <unordered_set>

#include "core/instance.h"

namespace rrs::testing {

/// Rebuilds `instance` without the jobs in `removed_ids` (same colors,
/// same Delta, same horizon) — the "subsequence" operation the Section 3
/// analysis uses, e.g. forming the eligible subsequence alpha.
[[nodiscard]] inline Instance remove_jobs(
    const Instance& instance, const std::vector<JobId>& removed_ids) {
  std::unordered_set<JobId> removed(removed_ids.begin(), removed_ids.end());
  InstanceBuilder builder;
  builder.delta(instance.delta());
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    builder.add_color(instance.delay_bound(c), instance.drop_cost(c));
  }
  for (const Job& job : instance.jobs()) {
    if (!removed.contains(job.id)) {
      builder.add_jobs(job.color, job.arrival, 1);
    }
  }
  builder.min_horizon(instance.horizon());
  return builder.build();
}

}  // namespace rrs::testing
