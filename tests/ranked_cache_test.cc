// Tests for algs/ranked_cache: the shared EDF and dLRU orderings.
#include <gtest/gtest.h>

#include <optional>

#include "algs/ranked_cache.h"
#include "core/arrival_source.h"
#include "core/cache.h"
#include "core/color_state.h"
#include "core/instance.h"
#include "core/pending.h"

namespace rrs {
namespace {

TEST(EdfKey, OrderingPrecedence) {
  // Field order: {idle, color_deadline, weight, length, delay_bound, color}.
  // nonidle beats idle regardless of other fields.
  EXPECT_LT((EdfKey{false, 100, 1, 100, 100, 100}),
            (EdfKey{true, 0, 100, 1, 0, 0}));
  // earlier color deadline wins among nonidle.
  EXPECT_LT((EdfKey{false, 4, 1, 100, 100, 100}),
            (EdfKey{false, 8, 100, 1, 0, 0}));
  // heavier drop weight breaks deadline ties.
  EXPECT_LT((EdfKey{false, 8, 5, 100, 100, 100}),
            (EdfKey{false, 8, 2, 1, 0, 0}));
  // shorter job length breaks weight ties.
  EXPECT_LT((EdfKey{false, 8, 2, 1, 100, 100}),
            (EdfKey{false, 8, 2, 3, 0, 0}));
  // smaller delay bound breaks length ties.
  EXPECT_LT((EdfKey{false, 8, 1, 1, 2, 100}),
            (EdfKey{false, 8, 1, 1, 4, 0}));
  // the consistent color order breaks full ties.
  EXPECT_LT((EdfKey{false, 8, 1, 1, 4, 1}), (EdfKey{false, 8, 1, 1, 4, 2}));
  // irreflexive.
  EXPECT_FALSE((EdfKey{false, 8, 1, 1, 4, 1}) <
               (EdfKey{false, 8, 1, 1, 4, 1}));
}

class RankingFixture : public ::testing::Test {
 protected:
  RankingFixture() : cache_(8, 2) {}

  /// Builds a 3-color instance and drives the tracker to a state where
  /// all colors are eligible with distinct deadlines/timestamps.
  void drive() {
    InstanceBuilder builder;
    builder.delta(1);
    fast_ = builder.add_color(2);
    medium_ = builder.add_color(4);
    slow_ = builder.add_color(8);
    builder.add_jobs(fast_, 0, 1);
    builder.add_jobs(medium_, 0, 2);
    builder.add_jobs(slow_, 0, 2);
    builder.add_jobs(fast_, 2, 1);
    builder.min_horizon(16);
    inst_ = builder.build();

    source_.emplace(inst_);
    cache_.ensure_colors(inst_.num_colors());
    tracker_.begin(*source_);
    pending_.reset(inst_.num_colors());
    // Keep every color cached so eligibility persists across boundaries.
    cache_.begin_phase();
    cache_.insert(fast_);
    cache_.insert(medium_);
    cache_.insert(slow_);
    (void)cache_.finish_phase();
    PendingJobs::DropResult dropped;
    for (Round k = 0; k < 3; ++k) {
      pending_.drop_expired(k, dropped);
      tracker_.drop_phase(k, dropped, cache_);
      for (const Job& job : inst_.arrivals_in_round(k)) pending_.add(job);
      tracker_.arrival_phase(k, inst_.arrivals_in_round(k));
    }
  }

  Instance inst_;
  std::optional<MaterializedSource> source_;
  ColorId fast_ = 0, medium_ = 0, slow_ = 0;
  EligibilityTracker tracker_;
  PendingJobs pending_;
  CacheAssignment cache_;
};

TEST_F(RankingFixture, EdfSortFollowsColorDeadlines) {
  drive();
  // At round 2: fast's deadline is 4, medium's 4 (set at round 0 + 4?),
  // slow's 8.  fast re-batched at 2 -> deadline 4; medium still 4 but
  // larger delay bound; slow latest.
  std::vector<ColorId> colors{slow_, medium_, fast_};
  edf_sort(colors, *source_, tracker_, pending_);
  EXPECT_EQ(colors[0], fast_);   // deadline 4, delay 2
  EXPECT_EQ(colors[1], medium_); // deadline 4, delay 4
  EXPECT_EQ(colors[2], slow_);   // deadline 8
}

TEST_F(RankingFixture, IdleColorsSinkToTheBottom) {
  drive();
  // Drain fast's pending jobs: it becomes idle and must rank last.
  while (!pending_.idle(fast_)) (void)pending_.pop_earliest(fast_);
  std::vector<ColorId> colors{fast_, medium_, slow_};
  edf_sort(colors, *source_, tracker_, pending_);
  EXPECT_EQ(colors.back(), fast_);
}

TEST_F(RankingFixture, LruSortPrefersRecentTimestamps) {
  drive();
  // At round 2: fast wrapped at rounds 0 and 2; its visible timestamp
  // (wraps before block start 2) is 0.  All colors tie at timestamp 0, so
  // the order falls back to ascending ids.
  std::vector<ColorId> colors{slow_, fast_, medium_};
  lru_sort(colors, tracker_, 2);
  EXPECT_EQ(colors, (std::vector<ColorId>{fast_, medium_, slow_}));

  // At round 4 fast's round-2 wrap becomes visible and beats the others.
  std::vector<ColorId> later{slow_, medium_, fast_};
  lru_sort(later, tracker_, 4);
  EXPECT_EQ(later.front(), fast_);
}

}  // namespace
}  // namespace rrs
