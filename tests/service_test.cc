// Supervised service mode: checkpoint cadence + rotation, recovery from
// the newest valid checkpoint (corrupt files skipped to the next-oldest),
// stop-and-checkpoint, and the kill-and-resume integration test (SIGKILL
// mid-run via fork, recover, bit-identical totals).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/service.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"

#ifdef __unix__
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#endif

namespace rrs {
namespace {

std::unique_ptr<ArrivalSource> make_source(std::uint64_t seed,
                                           Round horizon = 512) {
  PoissonParams params;
  params.horizon = horizon;
  params.seed = seed;
  return std::make_unique<PoissonSource>(params);
}

std::filesystem::path test_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("svc_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_identical(const StreamRunRecord& a, const StreamRunRecord& b) {
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.work_units, b.work_units);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.peak_pending, b.peak_pending);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(ServiceRun, BitIdenticalToStreamingAndRotatesCheckpoints) {
  const auto dir = test_dir("rotate");
  const auto plain = make_source(1);
  const StreamRunRecord reference = run_streaming(*plain, "dlru-edf", 8);

  const auto source = make_source(1);
  ServiceOptions options;
  options.checkpoint_dir = dir.string();
  options.checkpoint_every = 64;
  options.checkpoint_keep = 2;
  const ServiceResult result = run_service(*source, "dlru-edf", 8, options);

  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.recovered_from, -1);
  expect_identical(reference, result.record);
  // Interior boundaries at 64, 128, ..., each written; only the last K
  // survive rotation.
  EXPECT_GT(result.checkpoints_written, 2);
  const auto files = list_checkpoints(dir, ".rrsckpt");
  EXPECT_EQ(files.size(), 2u);
  EXPECT_EQ(files.front().path.string(), result.final_checkpoint);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRun, ResumesFromNewestCheckpoint) {
  const auto dir = test_dir("resume");
  const auto first = make_source(2);
  ServiceOptions options;
  options.checkpoint_dir = dir.string();
  options.checkpoint_every = 128;
  const ServiceResult full = run_service(*first, "dlru-edf", 8, options);
  ASSERT_TRUE(full.finished);
  const auto files = list_checkpoints(dir, ".rrsckpt");
  ASSERT_FALSE(files.empty());

  // A fresh process restores the newest retained checkpoint and finishes
  // with the identical record.
  const auto again = make_source(2);
  ServiceOptions resume = options;
  resume.resume = true;
  const ServiceResult resumed = run_service(*again, "dlru-edf", 8, resume);
  EXPECT_TRUE(resumed.finished);
  EXPECT_EQ(resumed.recovered_from, files.front().round);
  expect_identical(full.record, resumed.record);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRun, CorruptNewestCheckpointSkipsToOlder) {
  const auto dir = test_dir("corrupt");
  const auto first = make_source(3);
  ServiceOptions options;
  options.checkpoint_dir = dir.string();
  options.checkpoint_every = 128;
  options.checkpoint_keep = 3;
  const ServiceResult full = run_service(*first, "dlru-edf", 8, options);
  auto files = list_checkpoints(dir, ".rrsckpt");
  ASSERT_GE(files.size(), 2u);

  // Flip a byte in the middle of the newest file: CRC must reject it and
  // recovery must fall back to the next-oldest.
  {
    std::fstream f(files.front().path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::int64_t>(f.tellg());
    ASSERT_GT(size, 64);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }

  const auto again = make_source(3);
  ServiceOptions resume = options;
  resume.resume = true;
  const ServiceResult resumed = run_service(*again, "dlru-edf", 8, resume);
  EXPECT_TRUE(resumed.finished);
  EXPECT_EQ(resumed.recovered_from, files[1].round);
  expect_identical(full.record, resumed.record);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRun, AllCheckpointsCorruptThrows) {
  const auto dir = test_dir("allcorrupt");
  const auto first = make_source(4);
  ServiceOptions options;
  options.checkpoint_dir = dir.string();
  options.checkpoint_every = 128;
  (void)run_service(*first, "dlru-edf", 8, options);
  for (const CheckpointFile& c : list_checkpoints(dir, ".rrsckpt")) {
    std::ofstream f(c.path, std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  const auto again = make_source(4);
  ServiceOptions resume = options;
  resume.resume = true;
  EXPECT_THROW((void)run_service(*again, "dlru-edf", 8, resume), InputError);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRun, StopFlagCheckpointsAndResumeCompletes) {
  const auto dir = test_dir("stopflag");
  const auto plain = make_source(5);
  const StreamRunRecord reference = run_streaming(*plain, "dlru-edf", 8);

  // Pre-set flag: the service stops at the first boundary check, writes a
  // checkpoint of the exact stop point, and reports finished == false.
  volatile std::sig_atomic_t flag = 1;
  const auto source = make_source(5);
  ServiceOptions options;
  options.checkpoint_dir = dir.string();
  options.stop_flag = &flag;
  const ServiceResult stopped = run_service(*source, "dlru-edf", 8, options);
  EXPECT_FALSE(stopped.finished);
  EXPECT_EQ(stopped.stopped_at, 0);
  EXPECT_EQ(stopped.checkpoints_written, 1);

  const auto again = make_source(5);
  ServiceOptions resume = options;
  resume.stop_flag = nullptr;
  resume.resume = true;
  const ServiceResult resumed = run_service(*again, "dlru-edf", 8, resume);
  EXPECT_TRUE(resumed.finished);
  EXPECT_EQ(resumed.recovered_from, 0);
  expect_identical(reference, resumed.record);
  std::filesystem::remove_all(dir);
}

TEST(ServiceRun, InstallSignalStopSetsFlag) {
  static volatile std::sig_atomic_t flag = 0;
  ASSERT_TRUE(install_signal_stop(&flag));
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_EQ(flag, 1);
  // Restore defaults so a later real SIGTERM still kills the test binary.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

TEST(ServiceRun, ListCheckpointsIgnoresJunkAndSortsNewestFirst) {
  const auto dir = test_dir("listing");
  std::filesystem::create_directories(dir);
  for (const char* name :
       {"ckpt-5.rrsckpt", "ckpt-40.rrsckpt", "ckpt-7.rrsckpt",
        "ckpt-9.rrsckpt.tmp", "ckpt-.rrsckpt", "ckpt-abc.rrsckpt",
        "other-3.rrsckpt", "ckpt-11.manifest"}) {
    std::ofstream(dir / name) << "x";
  }
  const auto files = list_checkpoints(dir, ".rrsckpt");
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].round, 40);
  EXPECT_EQ(files[1].round, 7);
  EXPECT_EQ(files[2].round, 5);
  const auto manifests = list_checkpoints(dir, ".manifest");
  ASSERT_EQ(manifests.size(), 1u);
  EXPECT_EQ(manifests[0].round, 11);
  EXPECT_TRUE(list_checkpoints(dir / "missing", ".rrsckpt").empty());
  std::filesystem::remove_all(dir);
}

#ifdef __unix__
// The CI kill-and-resume integration test: a forked child runs the
// service and is SIGKILLed once at least one checkpoint is on disk; the
// parent recovers from the survivors and must reproduce the uninterrupted
// run's totals exactly.  Works whatever the kill lands on — mid-round,
// mid-write (the temp-file rename keeps half-written files invisible), or
// after natural completion.
TEST(ServiceKillAndResume, SigkillRecoversBitIdentical) {
  const auto dir = test_dir("sigkill");
  const Round horizon = 4096;
  const auto plain = make_source(6, horizon);
  const StreamRunRecord reference = run_streaming(*plain, "dlru-edf", 8);

  ServiceOptions options;
  options.checkpoint_dir = dir.string();
  options.checkpoint_every = 64;
  options.checkpoint_keep = 4;

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: run the service to completion (or until killed).  _exit so
    // no gtest/atexit machinery runs in the forked copy.
    try {
      const auto source = make_source(6, horizon);
      (void)run_service(*source, "dlru-edf", 8, options);
      _exit(0);
    } catch (...) {
      _exit(1);
    }
  }

  // Parent: wait until the child has committed at least one checkpoint
  // (or exited), then SIGKILL it mid-run.
  for (int spin = 0; spin < 10'000; ++spin) {
    if (!list_checkpoints(dir, ".rrsckpt").empty()) break;
    if (waitpid(child, nullptr, WNOHANG) != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  ASSERT_FALSE(list_checkpoints(dir, ".rrsckpt").empty())
      << "child died before its first checkpoint";

  const auto source = make_source(6, horizon);
  ServiceOptions resume = options;
  resume.resume = true;
  const ServiceResult recovered = run_service(*source, "dlru-edf", 8, resume);
  EXPECT_TRUE(recovered.finished);
  EXPECT_GE(recovered.recovered_from, 0);
  expect_identical(reference, recovered.record);
  std::filesystem::remove_all(dir);
}
#endif  // __unix__

}  // namespace
}  // namespace rrs
