// Tests for algs/dlru_edf: the paper's main algorithm.
//
// Covers mechanical correctness (valid schedules, capacity splits) and the
// headline behaviour: unlike its two halves, dLRU-EDF stays within a
// constant factor of OFF on BOTH adversarial constructions.
#include <gtest/gtest.h>

#include "algs/dlru_edf.h"
#include "algs/registry.h"
#include "core/validator.h"
#include "offline/appendix_off.h"
#include "offline/lower_bound.h"
#include "sim/runner.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

EngineOptions section3_options(int n, bool record = false) {
  EngineOptions options;
  options.num_resources = n;
  options.replication = 2;
  options.record_schedule = record;
  return options;
}

TEST(DLruEdf, RequiresDivisibleResourceCount) {
  InstanceBuilder builder;
  builder.add_color(2);
  const Instance inst = builder.build();
  DLruEdfPolicy policy;
  EngineOptions options = section3_options(6);
  EXPECT_THROW((void)run_policy(inst, policy, options), InputError);
}

TEST(DLruEdf, SchedulesAreValidOnRandomBatched) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.horizon = 256;
    const Instance inst = make_random_batched(params);
    Schedule schedule;
    const RunRecord record =
        run_algorithm(inst, "dlru-edf", 8, &schedule);
    const CostBreakdown validated = validate_or_throw(inst, schedule);
    EXPECT_EQ(validated, record.cost) << "seed " << seed;
  }
}

TEST(DLruEdf, ServesSingleSteadyColor) {
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId c = builder.add_color(4);
  for (Round t = 0; t <= 64; t += 4) builder.add_jobs(c, t, 4);
  const Instance inst = builder.build();

  auto policy = make_policy("dlru-edf");
  const EngineResult r = run_policy(inst, *policy, section3_options(4));
  EXPECT_EQ(r.cost.drops, 0);
  EXPECT_EQ(r.cost.reconfig_events, 2);  // cached once in two locations
}

TEST(DLruEdf, HandlesAppendixA) {
  // Where dLRU drops the whole long-term backlog, dLRU-EDF's EDF half
  // picks the (nonidle) long-term color up and drains it.
  const AdversaryAInstance adv =
      make_adversary_a({.n = 8, .delta = 2, .j = 5, .k = 7});
  auto policy = make_policy("dlru-edf");
  const EngineResult online =
      run_policy(adv.instance, *policy, section3_options(adv.params.n));
  const Schedule off = appendix_a_off_schedule(adv);
  const Cost off_cost = validate_or_throw(adv.instance, off).total();
  const double ratio = static_cast<double>(online.cost.total()) /
                       static_cast<double>(off_cost);
  EXPECT_LT(ratio, 3.0) << "constant-factor behaviour on Appendix A";
}

TEST(DLruEdf, HandlesAppendixB) {
  // Where EDF thrashes, dLRU-EDF's LRU half keeps the short color pinned.
  const AdversaryBInstance adv = make_adversary_b({.n = 8, .j = 4, .k = 7});
  auto policy = make_policy("dlru-edf");
  const EngineResult online =
      run_policy(adv.instance, *policy, section3_options(adv.params.n));
  const Schedule off = appendix_b_off_schedule(adv);
  const Cost off_cost = validate_or_throw(adv.instance, off).total();
  const double ratio = static_cast<double>(online.cost.total()) /
                       static_cast<double>(off_cost);
  EXPECT_LT(ratio, 8.0) << "constant-factor behaviour on Appendix B";
}

TEST(DLruEdf, RatioStaysFlatAsAppendixAScales) {
  // The dLRU killer gets harder with j; dLRU-EDF's ratio must not grow.
  std::vector<double> ratios;
  for (int j = 5; j <= 7; ++j) {
    const AdversaryAInstance adv =
        make_adversary_a({.n = 8, .delta = 2, .j = j, .k = j + 2});
    auto policy = make_policy("dlru-edf");
    const EngineResult online =
        run_policy(adv.instance, *policy, section3_options(adv.params.n));
    const Schedule off = appendix_a_off_schedule(adv);
    const Cost off_cost = validate_or_throw(adv.instance, off).total();
    ratios.push_back(static_cast<double>(online.cost.total()) /
                     static_cast<double>(off_cost));
  }
  for (const double ratio : ratios) EXPECT_LT(ratio, 3.0);
}

TEST(DLruEdf, RatioStaysFlatAsAppendixBScales) {
  for (int bump = 2; bump <= 4; ++bump) {
    const AdversaryBInstance adv =
        make_adversary_b({.n = 8, .j = 4, .k = 4 + bump});
    auto policy = make_policy("dlru-edf");
    const EngineResult online =
        run_policy(adv.instance, *policy, section3_options(adv.params.n));
    const Schedule off = appendix_b_off_schedule(adv);
    const Cost off_cost = validate_or_throw(adv.instance, off).total();
    const double ratio = static_cast<double>(online.cost.total()) /
                         static_cast<double>(off_cost);
    EXPECT_LT(ratio, 8.0) << "k - j = " << bump;
  }
}

TEST(DLruEdf, TrackerStatsAreConsistent) {
  RandomBatchedParams params;
  params.seed = 11;
  params.horizon = 512;
  const Instance inst = make_random_batched(params);

  DLruEdfPolicy policy;
  const EngineResult r = run_policy(inst, policy, section3_options(8));
  const EligibilityTracker& tracker = policy.tracker();
  EXPECT_EQ(tracker.eligible_drops() + tracker.ineligible_drops(),
            r.cost.drops);
  EXPECT_GT(tracker.num_epochs(), 0);
}

TEST(DLruEdf, Lemma31_FewJobsPerColorCostsAtMostOff) {
  // Lemma 3.1: if every color has fewer than Delta jobs, dLRU-EDF never
  // configures anything, and its cost (all drops) is at most OFF's.
  InstanceBuilder builder;
  builder.delta(50);
  for (int c = 0; c < 6; ++c) {
    const ColorId color = builder.add_color(8);
    builder.add_jobs(color, 0, 10);  // 10 < Delta = 50
    builder.add_jobs(color, 8, 5);
  }
  const Instance inst = builder.build();

  auto policy = make_policy("dlru-edf");
  const EngineResult r = run_policy(inst, *policy, section3_options(8));
  EXPECT_EQ(r.cost.reconfig_cost, 0);
  EXPECT_EQ(r.cost.drops, 90);
  // OFF (m = 1) must pay at least min(Delta, J_l) per color = 15 each.
  const LowerBound lb = offline_lower_bound(inst, 1);
  EXPECT_GE(lb.configure_or_drop, 90);
  EXPECT_LE(r.cost.total(), lb.best());
}

}  // namespace
}  // namespace rrs
