// Tests for algs/varbatch: the general -> batched reduction (Theorem 3)
// and its Section 5.3 extension to arbitrary delay bounds.
#include <gtest/gtest.h>

#include "algs/varbatch.h"
#include "core/validator.h"
#include "offline/optimal.h"
#include "util/rng.h"
#include "util/check.h"
#include "workload/poisson.h"

namespace rrs {
namespace {

TEST(VarBatch, EffectiveDelayRule) {
  EXPECT_EQ(varbatch_effective_delay(1), 1);
  EXPECT_EQ(varbatch_effective_delay(2), 1);   // p/2
  EXPECT_EQ(varbatch_effective_delay(4), 2);   // p/2
  EXPECT_EQ(varbatch_effective_delay(64), 32);
  // Section 5.3: arbitrary p uses floor_pow2(p) / 2.
  EXPECT_EQ(varbatch_effective_delay(3), 1);
  EXPECT_EQ(varbatch_effective_delay(5), 2);
  EXPECT_EQ(varbatch_effective_delay(100), 32);
  EXPECT_THROW((void)varbatch_effective_delay(0), InputError);
}

TEST(VarBatch, TransformProducesBatchedInstance) {
  PoissonParams params;
  params.seed = 1;
  params.horizon = 256;
  const Instance inst = make_poisson(params);
  ASSERT_FALSE(inst.is_batched());

  const VarBatchTransform t = varbatch_transform(inst);
  EXPECT_TRUE(t.batched.is_batched());
  EXPECT_EQ(t.batched.jobs().size(), inst.jobs().size());
  EXPECT_EQ(t.batched.num_colors(), inst.num_colors());
}

TEST(VarBatch, DelayedWindowsNestInsideRealWindows) {
  PoissonParams params;
  params.seed = 2;
  params.horizon = 128;
  const Instance inst = make_poisson(params);
  const VarBatchTransform t = varbatch_transform(inst);
  for (std::size_t i = 0; i < t.batched.jobs().size(); ++i) {
    const Job& delayed = t.batched.jobs()[i];
    const Job& original =
        inst.jobs()[static_cast<std::size_t>(t.job_to_original[i])];
    EXPECT_EQ(delayed.color, original.color);
    EXPECT_GE(delayed.arrival, original.arrival);
    EXPECT_LE(delayed.deadline(), original.deadline());
  }
}

TEST(VarBatch, JobMappingIsAPermutation) {
  PoissonParams params;
  params.seed = 3;
  params.horizon = 64;
  const Instance inst = make_poisson(params);
  const VarBatchTransform t = varbatch_transform(inst);
  std::vector<char> seen(inst.jobs().size(), 0);
  for (const JobId id : t.job_to_original) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, static_cast<JobId>(seen.size()));
    EXPECT_FALSE(seen[static_cast<std::size_t>(id)]) << "duplicate " << id;
    seen[static_cast<std::size_t>(id)] = 1;
  }
}

TEST(VarBatch, DelayOneColorsPassThrough) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(1);
  builder.add_jobs(c, 3, 2);
  const Instance inst = builder.build();
  const VarBatchTransform t = varbatch_transform(inst);
  EXPECT_EQ(t.batched.delay_bound(c), 1);
  EXPECT_EQ(t.batched.jobs()[0].arrival, 3);
}

TEST(VarBatch, HalfBlockDelayIsExact) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(8);  // e = 4
  builder.add_jobs(c, 0, 1);   // halfBlock 0 -> arrival 4
  builder.add_jobs(c, 3, 1);   // halfBlock 0 -> arrival 4
  builder.add_jobs(c, 4, 1);   // halfBlock 1 -> arrival 8
  builder.add_jobs(c, 7, 1);   // halfBlock 1 -> arrival 8
  builder.add_jobs(c, 8, 1);   // halfBlock 2 -> arrival 12
  const Instance inst = builder.build();
  const VarBatchTransform t = varbatch_transform(inst);
  std::vector<Round> arrivals;
  for (const Job& job : t.batched.jobs()) arrivals.push_back(job.arrival);
  EXPECT_EQ(arrivals, (std::vector<Round>{4, 4, 8, 8, 12}));
  EXPECT_EQ(t.batched.delay_bound(c), 4);
}

TEST(VarBatch, EndToEndScheduleValidOnPow2Delays) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    PoissonParams params;
    params.seed = seed;
    params.horizon = 256;
    const Instance inst = make_poisson(params);
    const VarBatchResult r = run_varbatch(inst, 8);
    const CostBreakdown cost = validate_or_throw(inst, r.schedule);
    EXPECT_EQ(cost, r.cost) << "seed " << seed;
  }
}

TEST(VarBatch, EndToEndScheduleValidOnArbitraryDelays) {
  for (const std::uint64_t seed : {4u, 5u, 6u}) {
    PoissonParams params;
    params.seed = seed;
    params.horizon = 256;
    params.arbitrary_delays = true;  // Section 5.3 regime
    params.min_delay = 3;
    params.max_delay = 100;
    const Instance inst = make_poisson(params);
    ASSERT_FALSE(inst.all_delays_pow2());
    const VarBatchResult r = run_varbatch(inst, 8);
    const CostBreakdown cost = validate_or_throw(inst, r.schedule);
    EXPECT_EQ(cost, r.cost) << "seed " << seed;
  }
}

TEST(VarBatch, Lemma53_TransformPreservesOfflineCostUnderAugmentation) {
  // Lemma 5.3's consequence, checked exactly on tiny instances: for any
  // offline schedule S for sigma (m resources), a PUNCTUAL schedule with
  // O(m) resources and O(cost(S)) cost exists — equivalently, the
  // transformed instance sigma' admits an offline schedule with constant
  // augmentation and constant cost blow-up:
  //     OPT_{sigma'}(7m)  <=  K * OPT_sigma(m).
  // We verify with the exact DP at m = 1 and a generous K.
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    InstanceBuilder builder;
    builder.delta(2);
    const ColorId a = builder.add_color(4);
    const ColorId b = builder.add_color(8);
    for (int j = 0; j < 6; ++j) {
      builder.add_jobs(rng.bernoulli(0.5) ? a : b, rng.uniform(0, 11), 1);
    }
    const Instance sigma = builder.build();
    const Instance sigma_prime = varbatch_transform(sigma).batched;

    const Cost opt_original = optimal_offline_cost(sigma, 1);
    const Cost opt_transformed = optimal_offline_cost(sigma_prime, 7);
    EXPECT_LE(opt_transformed, 12 * std::max<Cost>(1, opt_original))
        << "trial " << trial;
  }
}

TEST(VarBatch, ServesServableSteadyLoad) {
  // A single steady color well within capacity: after the reduction the
  // system should execute the vast majority of jobs.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId c = builder.add_color(16);
  for (Round t = 0; t < 512; t += 2) builder.add_jobs(c, t, 1);
  const Instance inst = builder.build();
  const VarBatchResult r = run_varbatch(inst, 8);
  const auto total = static_cast<Cost>(inst.jobs().size());
  EXPECT_LT(r.cost.drops, total / 8) << "steady load should mostly be served";
}

}  // namespace
}  // namespace rrs
