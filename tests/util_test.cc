// Unit tests for src/util: bit helpers, RNG, stamped map, thread pool,
// check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "core/types.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stamped_map.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace rrs {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(Round{1} << 40));
  EXPECT_FALSE(is_pow2((Round{1} << 40) + 1));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Bits, FloorPow2) {
  EXPECT_EQ(floor_pow2(1), 1);
  EXPECT_EQ(floor_pow2(2), 2);
  EXPECT_EQ(floor_pow2(3), 2);
  EXPECT_EQ(floor_pow2(4), 4);
  EXPECT_EQ(floor_pow2(1023), 512);
  EXPECT_EQ(floor_pow2(1024), 1024);
}

TEST(Bits, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1);
  EXPECT_EQ(ceil_pow2(3), 4);
  EXPECT_EQ(ceil_pow2(4), 4);
  EXPECT_EQ(ceil_pow2(5), 8);
  EXPECT_EQ(ceil_pow2(1025), 2048);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(1025), 10);
}

TEST(Bits, Multiples) {
  EXPECT_EQ(floor_multiple(0, 8), 0);
  EXPECT_EQ(floor_multiple(7, 8), 0);
  EXPECT_EQ(floor_multiple(8, 8), 8);
  EXPECT_EQ(floor_multiple(17, 8), 16);
  EXPECT_EQ(ceil_multiple(0, 8), 0);
  EXPECT_EQ(ceil_multiple(1, 8), 8);
  EXPECT_EQ(ceil_multiple(8, 8), 8);
  EXPECT_EQ(ceil_multiple(17, 8), 24);
}

TEST(Bits, InvalidInputsThrow) {
  EXPECT_THROW((void)floor_pow2(0), InvariantError);
  EXPECT_THROW((void)floor_log2(0), InvariantError);
  EXPECT_THROW((void)floor_multiple(-1, 4), InvariantError);
  EXPECT_THROW((void)floor_multiple(4, 0), InvariantError);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  std::vector<std::uint64_t> xs, ys, zs;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(a());
    ys.push_back(b());
    zs.push_back(c());
  }
  EXPECT_EQ(xs, ys);
  EXPECT_NE(xs, zs);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 2000 draws
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, PoissonMeanRoughlyCorrect) {
  Rng rng(11);
  const double mean = 3.0;
  std::int64_t total = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) total += rng.poisson(mean);
  const double observed = static_cast<double>(total) / samples;
  EXPECT_NEAR(observed, mean, 0.1);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(StampedMap, SetGetClear) {
  StampedMap<int> map;
  map.ensure_size(10);
  EXPECT_FALSE(map.contains(3));
  map.set(3, 42);
  EXPECT_TRUE(map.contains(3));
  EXPECT_EQ(map.at(3), 42);
  map.clear();
  EXPECT_FALSE(map.contains(3));
  map.set(3, 7);
  EXPECT_EQ(map.at(3), 7);
}

TEST(StampedMap, OutOfRangeContainsIsFalse) {
  StampedMap<int> map;
  map.ensure_size(4);
  EXPECT_FALSE(map.contains(100));
}

TEST(StampedMap, GrowsPreservingEntries) {
  StampedMap<int> map;
  map.ensure_size(2);
  map.set(1, 5);
  map.ensure_size(100);
  EXPECT_TRUE(map.contains(1));
  EXPECT_EQ(map.at(1), 5);
  map.set(99, 9);
  EXPECT_EQ(map.at(99), 9);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, FreeFunctionParallelForInlineForSmallCounts) {
  std::vector<int> hits(1, 0);
  parallel_for(1, [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(hits[0], 1);
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(Stopwatch, MonotonicNonNegative) {
  Stopwatch watch;
  EXPECT_GE(watch.seconds(), 0.0);
  const double first = watch.seconds();
  EXPECT_GE(watch.seconds(), first);
  watch.reset();
  EXPECT_GE(watch.seconds(), 0.0);
}

TEST(Check, MacrosThrowTypedErrors) {
  EXPECT_THROW(RRS_CHECK(false), InvariantError);
  EXPECT_THROW(RRS_CHECK_MSG(false, "boom " << 3), InvariantError);
  EXPECT_THROW(RRS_REQUIRE(false, "bad input " << 7), InputError);
  EXPECT_NO_THROW(RRS_CHECK(true));
  EXPECT_NO_THROW(RRS_REQUIRE(true, "fine"));
}

TEST(Check, MessageContainsContext) {
  try {
    RRS_REQUIRE(false, "value was " << 41);
    FAIL();
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 41"), std::string::npos);
  }
}

}  // namespace
}  // namespace rrs
