// Integration tests: every algorithm x every workload family, with full
// schedule validation, parameterized over seeds (TEST_P).
#include <gtest/gtest.h>

#include <tuple>

#include "core/validator.h"
#include "util/check.h"
#include "sim/runner.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/intro_scenario.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

/// Workload families used across the matrix.  Each returns a moderate
/// instance for the given seed.
Instance make_family_instance(const std::string& family,
                              std::uint64_t seed) {
  if (family == "rate-limited") {
    RandomBatchedParams params;
    params.seed = seed;
    params.horizon = 256;
    params.num_colors = 10;
    return make_random_batched(params);
  }
  if (family == "bursty-batched") {
    RandomBatchedParams params;
    params.seed = seed;
    params.horizon = 256;
    params.num_colors = 8;
    params.burst_factor = 2.5;
    return make_random_batched(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.seed = seed;
    params.horizon = 256;
    return make_poisson(params);
  }
  if (family == "poisson-arbitrary") {
    PoissonParams params;
    params.seed = seed;
    params.horizon = 256;
    params.arbitrary_delays = true;
    params.min_delay = 3;
    params.max_delay = 90;
    return make_poisson(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.seed = seed;
    params.horizon = 1024;
    return make_datacenter(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.seed = seed;
    params.horizon = 1024;
    params.spike_start = 256;
    params.spike_end = 512;
    return make_flash_crowd(params).instance;
  }
  if (family == "intro") {
    IntroScenarioParams params;
    params.seed = seed;
    params.horizon = 1024;
    params.background_jobs = 1024;
    params.background_delay = 1024;
    return make_intro_scenario(params).instance;
  }
  throw InputError("unknown family " + family);
}

using MatrixParam = std::tuple<std::string, std::string, std::uint64_t>;

class AlgorithmWorkloadMatrix
    : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(AlgorithmWorkloadMatrix, ScheduleValidCostConsistent) {
  const auto& [algorithm, family, seed] = GetParam();
  const Instance inst = make_family_instance(family, seed);
  if (algorithm == "distribute" && !inst.is_batched()) {
    // Distribute's contract is batched input ([.. | D_l]); unbatched
    // sequences go through varbatch instead.
    EXPECT_THROW((void)run_algorithm(inst, algorithm, 8), InputError);
    GTEST_SKIP() << "distribute requires batched input";
  }

  // The Section 3 policies assume batched arrivals; running them on
  // unbatched input is mechanically fine (and must still be valid), but
  // the end-to-end pipelines are the meaningful algorithms there.
  Schedule schedule;
  const RunRecord record = run_algorithm(inst, algorithm, 8, &schedule);
  const CostBreakdown validated = validate_or_throw(inst, schedule);
  EXPECT_EQ(validated, record.cost);
  EXPECT_EQ(record.executed,
            static_cast<std::int64_t>(schedule.execs.size()));
  // Drop accounting closes: executed weight + drop cost = total weight
  // (reduces to job counts in the unit-cost setting).
  Cost executed_weight = 0;
  for (const ExecEvent& e : schedule.execs) {
    executed_weight += inst.jobs()[static_cast<std::size_t>(e.job)].drop_cost;
  }
  EXPECT_EQ(executed_weight + record.cost.drops, inst.total_weight());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AlgorithmWorkloadMatrix,
    ::testing::Combine(
        ::testing::Values("dlru", "edf", "dlru-edf", "seq-edf", "ds-seq-edf",
                          "distribute", "varbatch"),
        ::testing::Values("rate-limited", "bursty-batched", "poisson",
                          "datacenter", "intro", "flash-crowd"),
        ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<MatrixParam>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_" +
                         std::get<1>(param_info.param) + "_s" +
                         std::to_string(std::get<2>(param_info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// The reduction pipelines additionally cover the families their theorems
// target (bursty batched for Distribute, arbitrary delays for VarBatch).
class PipelineFamilies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFamilies, DistributeOnBurstyBatched) {
  const Instance inst = make_family_instance("bursty-batched", GetParam());
  Schedule schedule;
  const RunRecord record =
      run_algorithm(inst, "distribute", 8, &schedule);
  EXPECT_EQ(validate_or_throw(inst, schedule), record.cost);
}

TEST_P(PipelineFamilies, VarBatchOnArbitraryDelays) {
  const Instance inst =
      make_family_instance("poisson-arbitrary", GetParam());
  Schedule schedule;
  const RunRecord record = run_algorithm(inst, "varbatch", 8, &schedule);
  EXPECT_EQ(validate_or_throw(inst, schedule), record.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFamilies,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Resource augmentation sanity: more resources never increase dLRU-EDF's
// drop count on rate-limited instances (reconfig cost may vary).
class AugmentationMonotonicity
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AugmentationMonotonicity, DropsShrinkWithResources) {
  RandomBatchedParams params;
  params.seed = GetParam();
  params.horizon = 512;
  params.num_colors = 12;
  const Instance inst = make_random_batched(params);
  Cost previous = -1;
  for (const int n : {4, 8, 16, 32}) {
    const RunRecord record = run_algorithm(inst, "dlru-edf", n);
    if (previous >= 0) {
      EXPECT_LE(record.cost.drops, previous) << "n = " << n;
    }
    previous = record.cost.drops;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugmentationMonotonicity,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace rrs
