// Property-based tests (parameterized over seeds): the paper's amortized
// bounds, structural invariants of the algorithms, and metamorphic checks
// on the validator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algs/dlru_edf.h"
#include "algs/ranked_cache.h"
#include "core/validator.h"
#include "offline/greedy_offline.h"
#include "sim/ratio.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] Instance rate_limited_instance(Round horizon = 512,
                                               Cost delta = 8) const {
    RandomBatchedParams params;
    params.seed = GetParam();
    params.horizon = horizon;
    params.num_colors = 12;
    params.delta = delta;
    return make_random_batched(params);
  }
};

TEST_P(SeededProperty, Lemma33_ReconfigCostBoundedByEpochs) {
  // Lemma 3.3: ReconfigCost(dLRU-EDF) <= 4 * numEpochs * Delta.
  const Instance inst = rate_limited_instance();
  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_LE(r.cost.reconfig_cost,
            4 * policy.tracker().num_epochs() * inst.delta());
}

TEST_P(SeededProperty, Lemma34_IneligibleDropsBoundedByEpochs) {
  // Lemma 3.4: IneligibleDropCost(dLRU-EDF) <= numEpochs * Delta.
  const Instance inst = rate_limited_instance();
  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  const EngineResult r = run_policy(inst, policy, options);
  (void)r;
  EXPECT_LE(policy.tracker().ineligible_drops(),
            policy.tracker().num_epochs() * inst.delta());
}

/// dLRU-EDF wrapper that asserts, after every reconfiguration phase, that
/// the top-(n/4) eligible colors by timestamp recency are all cached (the
/// Section 3.1.3 LRU invariant).
class LruInvariantPolicy : public DLruEdfPolicy {
 public:
  void on_round(RoundContext& ctx) override {
    DLruEdfPolicy::on_round(ctx);
    if (ctx.final_sweep()) return;
    const Round k = ctx.round();
    std::vector<ColorId> eligible = tracker().eligible_colors();
    lru_sort(eligible, tracker(), k);
    const auto lru_size =
        std::min(eligible.size(),
                 static_cast<std::size_t>(ctx.cache().max_distinct() / 2));
    for (std::size_t i = 0; i < lru_size; ++i) {
      ASSERT_TRUE(ctx.cache().contains(eligible[i]))
          << "LRU color " << eligible[i] << " not cached at round " << k;
    }
    violations_checked_ = true;
  }
  [[nodiscard]] bool checked() const { return violations_checked_; }

 private:
  bool violations_checked_ = false;
};

TEST_P(SeededProperty, LruHalfAlwaysCached) {
  const Instance inst = rate_limited_instance(256);
  LruInvariantPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  (void)run_policy(inst, policy, options);
  EXPECT_TRUE(policy.checked());
}

TEST_P(SeededProperty, ReplicationInvariantInRecordedSchedules) {
  // Replaying a Section 3 algorithm's schedule, every non-black color is
  // configured on exactly 0 or 2 resources at any time.
  const Instance inst = rate_limited_instance(256);
  Schedule schedule;
  (void)run_algorithm(inst, "dlru-edf", 8, &schedule);

  std::vector<ColorId> config(8, kBlack);
  std::size_t i = 0;
  while (i < schedule.reconfigs.size()) {
    const Round round = schedule.reconfigs[i].round;
    for (; i < schedule.reconfigs.size() &&
           schedule.reconfigs[i].round == round;
         ++i) {
      config[static_cast<std::size_t>(schedule.reconfigs[i].resource)] =
          schedule.reconfigs[i].color;
    }
    std::map<ColorId, int> counts;
    for (const ColorId c : config) {
      if (c != kBlack) ++counts[c];
    }
    for (const auto& [color, count] : counts) {
      // A location may keep a stale (evicted) color, so counts of 1 can
      // appear only for colors no longer logically cached; the invariant
      // we can check from events alone is count <= 2.
      EXPECT_LE(count, 2) << "color " << color << " at round " << round;
    }
  }
}

TEST_P(SeededProperty, ValidatorCatchesMutations) {
  // Metamorphic: a valid schedule, randomly mutated, must not validate as
  // a different-cost schedule without being flagged (drop mutations that
  // happen to stay legal are skipped).
  const Instance inst = rate_limited_instance(128);
  Schedule schedule;
  (void)run_algorithm(inst, "dlru-edf", 8, &schedule);
  ASSERT_TRUE(validate(inst, schedule).ok);
  if (schedule.execs.empty()) return;

  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Schedule mutated = schedule;
    auto& exec = mutated.execs[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(mutated.execs.size()) - 1))];
    const Job& job = inst.jobs()[static_cast<std::size_t>(exec.job)];
    // Push the execution past the job's deadline: always illegal.
    exec.round = job.deadline() + rng.uniform(0, 3);
    if (exec.round >= inst.horizon()) continue;
    // Re-sort to keep event ordering valid so only the window check fires.
    std::sort(mutated.execs.begin(), mutated.execs.end(),
              [](const ExecEvent& a, const ExecEvent& b) {
                return a.round < b.round ||
                       (a.round == b.round && a.mini < b.mini);
              });
    EXPECT_FALSE(validate(inst, mutated).ok) << "trial " << trial;
  }
}

TEST_P(SeededProperty, Lemma35_EpochsChargeToOfflineCost) {
  // Lemma 3.5 direction: for inputs where every color has >= Delta jobs,
  // Cost_OFF = Omega(numEpochs * Delta).  Empirically: numEpochs * Delta
  // must stay within a constant factor of the offline UPPER bound (the
  // greedy family), which is itself >= OPT — a conservative check of the
  // same relation.
  RandomBatchedParams params;
  params.seed = GetParam();
  params.horizon = 1024;
  params.num_colors = 12;
  params.delta = 4;  // small Delta: every active color exceeds it
  const Instance inst = make_random_batched(params);

  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  (void)run_policy(inst, policy, options);

  const Cost ub = best_offline_heuristic_cost(inst, 1);
  const Cost epoch_charge = policy.tracker().num_epochs() * inst.delta();
  EXPECT_LE(epoch_charge, 24 * ub) << "epochs must be chargeable to OFF";
}

TEST_P(SeededProperty, Lemma315_AtMostTwoEpochEndingsPerSuperEpoch) {
  // Lemma 3.15 / Corollary 3.2: once a color completes two epochs inside
  // one super-epoch, the super-epoch ends — so no color accumulates more
  // than two epoch endings within a single super-epoch.
  const Instance inst = rate_limited_instance(1024, /*delta=*/4);
  const int m = 1;
  DLruEdfPolicy policy;
  policy.enable_super_epoch_analysis(m);
  EngineOptions options;
  options.num_resources = 8 * m;
  options.replication = 2;
  options.record_schedule = false;
  (void)run_policy(inst, policy, options);
  EXPECT_LE(policy.tracker().max_epoch_endings_per_super_epoch(), 2)
      << "super epochs: " << policy.tracker().num_super_epochs();
}

TEST_P(SeededProperty, EngineDeterminism) {
  const Instance inst = rate_limited_instance(256);
  const RunRecord a = run_algorithm(inst, "dlru-edf", 8);
  const RunRecord b = run_algorithm(inst, "dlru-edf", 8);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.executed, b.executed);
}

TEST_P(SeededProperty, VarBatchNeverBeatsOfflineByMoreThanModel) {
  // Consistency of the bracket on the full pipeline: online cost with
  // n = 8 is finite and the certified LB with m = 1 does not exceed the
  // greedy UB.
  PoissonParams params;
  params.seed = GetParam();
  params.horizon = 256;
  const Instance inst = make_poisson(params);
  const RatioReport report = measure_ratio(inst, "varbatch", 8, 1);
  EXPECT_LE(report.lower_bound, report.heuristic_ub);
  EXPECT_GE(report.online.cost.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

}  // namespace
}  // namespace rrs
