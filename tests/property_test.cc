// Property-based tests (parameterized over seeds): the paper's amortized
// bounds, structural invariants of the algorithms, and metamorphic checks
// on the validator.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "algs/dlru_edf.h"
#include "algs/edf.h"
#include "algs/ranked_cache.h"
#include "core/fault_plan.h"
#include "core/validator.h"
#include "offline/exact_bnb.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/ratio.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] Instance rate_limited_instance(Round horizon = 512,
                                               Cost delta = 8) const {
    RandomBatchedParams params;
    params.seed = GetParam();
    params.horizon = horizon;
    params.num_colors = 12;
    params.delta = delta;
    return make_random_batched(params);
  }
};

TEST_P(SeededProperty, Lemma33_ReconfigCostBoundedByEpochs) {
  // Lemma 3.3: ReconfigCost(dLRU-EDF) <= 4 * numEpochs * Delta.
  const Instance inst = rate_limited_instance();
  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_LE(r.cost.reconfig_cost,
            4 * policy.tracker().num_epochs() * inst.delta());
}

TEST_P(SeededProperty, Lemma34_IneligibleDropsBoundedByEpochs) {
  // Lemma 3.4: IneligibleDropCost(dLRU-EDF) <= numEpochs * Delta.
  const Instance inst = rate_limited_instance();
  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  const EngineResult r = run_policy(inst, policy, options);
  (void)r;
  EXPECT_LE(policy.tracker().ineligible_drops(),
            policy.tracker().num_epochs() * inst.delta());
}

/// dLRU-EDF wrapper that asserts, after every reconfiguration phase, that
/// the top-(n/4) eligible colors by timestamp recency are all cached (the
/// Section 3.1.3 LRU invariant).
class LruInvariantPolicy : public DLruEdfPolicy {
 public:
  void on_round(RoundContext& ctx) override {
    DLruEdfPolicy::on_round(ctx);
    if (ctx.final_sweep()) return;
    const Round k = ctx.round();
    std::vector<ColorId> eligible = tracker().eligible_colors();
    lru_sort(eligible, tracker(), k);
    const auto lru_size =
        std::min(eligible.size(),
                 static_cast<std::size_t>(ctx.cache().max_distinct() / 2));
    for (std::size_t i = 0; i < lru_size; ++i) {
      ASSERT_TRUE(ctx.cache().contains(eligible[i]))
          << "LRU color " << eligible[i] << " not cached at round " << k;
    }
    violations_checked_ = true;
  }
  [[nodiscard]] bool checked() const { return violations_checked_; }

 private:
  bool violations_checked_ = false;
};

TEST_P(SeededProperty, LruHalfAlwaysCached) {
  const Instance inst = rate_limited_instance(256);
  LruInvariantPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  (void)run_policy(inst, policy, options);
  EXPECT_TRUE(policy.checked());
}

TEST_P(SeededProperty, ReplicationInvariantInRecordedSchedules) {
  // Replaying a Section 3 algorithm's schedule, every non-black color is
  // configured on exactly 0 or 2 resources at any time.
  const Instance inst = rate_limited_instance(256);
  Schedule schedule;
  (void)run_algorithm(inst, "dlru-edf", 8, &schedule);

  std::vector<ColorId> config(8, kBlack);
  std::size_t i = 0;
  while (i < schedule.reconfigs.size()) {
    const Round round = schedule.reconfigs[i].round;
    for (; i < schedule.reconfigs.size() &&
           schedule.reconfigs[i].round == round;
         ++i) {
      config[static_cast<std::size_t>(schedule.reconfigs[i].resource)] =
          schedule.reconfigs[i].color;
    }
    std::map<ColorId, int> counts;
    for (const ColorId c : config) {
      if (c != kBlack) ++counts[c];
    }
    for (const auto& [color, count] : counts) {
      // A location may keep a stale (evicted) color, so counts of 1 can
      // appear only for colors no longer logically cached; the invariant
      // we can check from events alone is count <= 2.
      EXPECT_LE(count, 2) << "color " << color << " at round " << round;
    }
  }
}

TEST_P(SeededProperty, ValidatorCatchesMutations) {
  // Metamorphic: a valid schedule, randomly mutated, must not validate as
  // a different-cost schedule without being flagged (drop mutations that
  // happen to stay legal are skipped).
  const Instance inst = rate_limited_instance(128);
  Schedule schedule;
  (void)run_algorithm(inst, "dlru-edf", 8, &schedule);
  ASSERT_TRUE(validate(inst, schedule).ok);
  if (schedule.execs.empty()) return;

  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Schedule mutated = schedule;
    auto& exec = mutated.execs[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(mutated.execs.size()) - 1))];
    const Job& job = inst.jobs()[static_cast<std::size_t>(exec.job)];
    // Push the execution past the job's deadline: always illegal.
    exec.round = job.deadline() + rng.uniform(0, 3);
    if (exec.round >= inst.horizon()) continue;
    // Re-sort to keep event ordering valid so only the window check fires.
    std::sort(mutated.execs.begin(), mutated.execs.end(),
              [](const ExecEvent& a, const ExecEvent& b) {
                return a.round < b.round ||
                       (a.round == b.round && a.mini < b.mini);
              });
    EXPECT_FALSE(validate(inst, mutated).ok) << "trial " << trial;
  }
}

TEST_P(SeededProperty, Lemma35_EpochsChargeToOfflineCost) {
  // Lemma 3.5 direction: for inputs where every color has >= Delta jobs,
  // Cost_OFF = Omega(numEpochs * Delta).  Empirically: numEpochs * Delta
  // must stay within a constant factor of the offline UPPER bound (the
  // greedy family), which is itself >= OPT — a conservative check of the
  // same relation.
  RandomBatchedParams params;
  params.seed = GetParam();
  params.horizon = 1024;
  params.num_colors = 12;
  params.delta = 4;  // small Delta: every active color exceeds it
  const Instance inst = make_random_batched(params);

  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  options.record_schedule = false;
  (void)run_policy(inst, policy, options);

  const Cost ub = best_offline_heuristic_cost(inst, 1);
  const Cost epoch_charge = policy.tracker().num_epochs() * inst.delta();
  EXPECT_LE(epoch_charge, 24 * ub) << "epochs must be chargeable to OFF";
}

TEST_P(SeededProperty, Lemma315_AtMostTwoEpochEndingsPerSuperEpoch) {
  // Lemma 3.15 / Corollary 3.2: once a color completes two epochs inside
  // one super-epoch, the super-epoch ends — so no color accumulates more
  // than two epoch endings within a single super-epoch.
  const Instance inst = rate_limited_instance(1024, /*delta=*/4);
  const int m = 1;
  DLruEdfPolicy policy;
  policy.enable_super_epoch_analysis(m);
  EngineOptions options;
  options.num_resources = 8 * m;
  options.replication = 2;
  options.record_schedule = false;
  (void)run_policy(inst, policy, options);
  EXPECT_LE(policy.tracker().max_epoch_endings_per_super_epoch(), 2)
      << "super epochs: " << policy.tracker().num_super_epochs();
}

TEST_P(SeededProperty, EngineDeterminism) {
  const Instance inst = rate_limited_instance(256);
  const RunRecord a = run_algorithm(inst, "dlru-edf", 8);
  const RunRecord b = run_algorithm(inst, "dlru-edf", 8);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.executed, b.executed);
}

TEST_P(SeededProperty, VarBatchNeverBeatsOfflineByMoreThanModel) {
  // Consistency of the bracket on the full pipeline: online cost with
  // n = 8 is finite and the certified LB with m = 1 does not exceed the
  // greedy UB.
  PoissonParams params;
  params.seed = GetParam();
  params.horizon = 256;
  const Instance inst = make_poisson(params);
  const RatioReport report = measure_ratio(inst, "varbatch", 8, 1);
  EXPECT_LE(report.lower_bound, report.heuristic_ub);
  EXPECT_GE(report.online.cost.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

// ---------------------------------------------------------------------------
// Offline-solver chain: on every instance the certified quantities must
// order as
//   LB1, LB2 <= best_bound <= OPT <= incumbent <= greedy <= total weight
// and any online policy with n == m emits a feasible m-resource schedule,
// so its cost is >= best_bound (the mimic argument).  LB3 standalone is
// compared against the incumbent: when the search is budget-stopped its
// frontier bound and an independently re-run subgradient need not be
// ordered, but LB3 <= OPT <= incumbent always holds.
// ---------------------------------------------------------------------------

struct OffVariant {
  CostModel::Tier tier = CostModel::Tier::kScalar;
  bool long_jobs = false;
  bool weighted = false;
};

std::vector<OffVariant> offline_variant_matrix() {
  std::vector<OffVariant> out;
  for (const auto tier :
       {CostModel::Tier::kScalar, CostModel::Tier::kVector,
        CostModel::Tier::kMatrix}) {
    for (const bool long_jobs : {false, true}) {
      for (const bool weighted : {false, true}) {
        out.push_back({tier, long_jobs, weighted});
      }
    }
  }
  return out;
}

Instance offline_chain_instance(std::uint64_t seed, const OffVariant& v) {
  Rng rng(seed * 7919 + static_cast<std::uint64_t>(v.tier) * 241 +
          (v.long_jobs ? 31 : 0) + (v.weighted ? 11 : 0));
  InstanceBuilder builder;
  builder.delta(1 + rng.uniform(0, 3));
  const int colors = static_cast<int>(2 + rng.uniform(0, 2));
  std::vector<ColorId> ids;
  for (int c = 0; c < colors; ++c) {
    ids.push_back(builder.add_color(2 + rng.uniform(0, 4),
                                    v.weighted ? 1 + rng.uniform(0, 4) : 1,
                                    v.long_jobs ? 1 + rng.uniform(0, 2) : 1));
  }
  if (v.tier != CostModel::Tier::kScalar) {
    for (const ColorId c : ids) builder.reconfig_cost(c, 1 + rng.uniform(0, 4));
  }
  if (v.tier == CostModel::Tier::kMatrix) {
    for (const ColorId from : ids) {
      for (const ColorId to : ids) {
        if (from != to) builder.transition_cost(from, to, 1 + rng.uniform(0, 5));
      }
    }
  }
  const Round horizon = 8 + rng.uniform(0, 6);
  for (std::int64_t i = 0, n = 3 + rng.uniform(0, 3); i < n; ++i) {
    builder.add_jobs(
        ids[static_cast<std::size_t>(rng.uniform(0, colors - 1))],
        rng.uniform(0, horizon - 1), 1 + rng.uniform(0, 2));
  }
  return builder.build();
}

class OfflineChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineChain, CertifiedBoundsAreTotallyOrdered) {
  // 20 seeds x 12 cost-model variants = 240 seeded instances.
  constexpr int m = 2;
  for (const OffVariant& v : offline_variant_matrix()) {
    const Instance inst = offline_chain_instance(GetParam(), v);
    const LowerBound lb = offline_lower_bound_full(inst, m);
    const BnbResult bnb = exact_offline_bnb(inst, m);
    const Cost greedy = best_offline_heuristic_cost(inst, m);

    EXPECT_LE(lb.configure_or_drop, bnb.best_bound);
    EXPECT_LE(lb.capacity, bnb.best_bound);
    EXPECT_GE(lb.lagrangian, std::max(lb.configure_or_drop, lb.capacity));
    EXPECT_LE(lb.lagrangian, bnb.incumbent);
    EXPECT_LE(bnb.best_bound, bnb.incumbent);
    EXPECT_LE(bnb.incumbent, greedy);
    // Drop-everything also seeds the incumbent (greedy itself may pay
    // reconfigurations above the total drop weight, so it is not capped).
    EXPECT_LE(bnb.incumbent, inst.total_weight());

    // Online with n == m and replication 1: its schedule is feasible with
    // m resources, so its cost upper-bounds nothing but lower-bounds via
    // OPT: cost >= OPT >= best_bound.
    EdfPolicy policy;
    EngineOptions options;
    options.num_resources = m;
    options.replication = 1;
    options.record_schedule = false;
    const EngineResult r = run_policy(inst, policy, options);
    EXPECT_GE(r.cost.total(), bnb.best_bound)
        << "tier " << static_cast<int>(v.tier) << " long " << v.long_jobs
        << " weighted " << v.weighted;
  }
}

TEST_P(OfflineChain, OnlineUnderFaultsStaysAboveCertifiedBound) {
  // Faults only hurt the online player; the emitted schedule is still
  // feasible for the pristine m-resource offline pool, so with repairs
  // uncharged its cost still dominates best_bound.
  constexpr int m = 2;
  for (const bool weighted : {false, true}) {
    const Instance inst = offline_chain_instance(
        GetParam() + 500, {CostModel::Tier::kVector, false, weighted});
    const BnbResult bnb = exact_offline_bnb(inst, m);

    MtbfParams mtbf;
    mtbf.num_resources = m;
    mtbf.horizon = inst.horizon();
    mtbf.mean_up = 5;
    mtbf.mean_down = 2;
    mtbf.seed = GetParam();
    const FaultPlan plan = make_mtbf_plan(mtbf);

    EdfPolicy policy;
    EngineOptions options;
    options.num_resources = m;
    options.replication = 1;
    options.record_schedule = false;
    options.fault_plan = &plan;
    options.charge_repair = false;
    const EngineResult r = run_policy(inst, policy, options);
    EXPECT_GE(r.cost.total(), bnb.best_bound)
        << "faulty online run undercut the certified offline bound";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineChain,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

}  // namespace
}  // namespace rrs
