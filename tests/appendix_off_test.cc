// Tests for offline/appendix_off: the explicit OFF schedules match the
// closed-form costs the paper states.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "util/check.h"
#include "offline/appendix_off.h"
#include "offline/exact_bnb.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"

namespace rrs {
namespace {

TEST(AppendixAOff, ValidatesAndMatchesClosedForm) {
  for (int j = 4; j <= 6; ++j) {
    AdversaryAParams params;
    params.n = 4;
    params.delta = 2;
    params.j = j;
    params.k = j + 2;
    const AdversaryAInstance adv = make_adversary_a(params);
    const Schedule off = appendix_a_off_schedule(adv);
    const CostBreakdown cost = validate_or_throw(adv.instance, off);

    // OFF configures the long-term color once and executes all 2^k of its
    // jobs; every short-term job drops.
    EXPECT_EQ(cost.reconfig_cost, params.delta);
    const Cost short_jobs = Cost{params.n / 2} * params.delta *
                            (Round{1} << (params.k - params.j));
    EXPECT_EQ(cost.drops, short_jobs);
    // Paper's closed form: drop cost = 2^{k-j-1} * n * Delta.
    EXPECT_EQ(cost.drops, (Round{1} << (params.k - params.j - 1)) *
                              params.n * params.delta);
  }
}

TEST(AppendixAOff, ExecutesEntireLongBacklog) {
  const AdversaryAInstance adv = make_adversary_a({.n = 4, .delta = 2});
  const Schedule off = appendix_a_off_schedule(adv);
  const Round long_jobs = Round{1} << adv.params.k;
  EXPECT_EQ(static_cast<Round>(off.execs.size()), long_jobs);
  for (const ExecEvent& e : off.execs) {
    EXPECT_EQ(adv.instance.jobs()[static_cast<std::size_t>(e.job)].color,
              adv.long_color);
  }
}

TEST(AppendixBOff, ValidatesDropFreeAtStatedCost) {
  for (int bump = 1; bump <= 3; ++bump) {
    AdversaryBParams params;
    params.n = 4;
    params.delta = params.n + 1;
    params.j = 3;
    params.k = params.j + bump;
    const AdversaryBInstance adv = make_adversary_b(params);
    const Schedule off = appendix_b_off_schedule(adv);
    const CostBreakdown cost = validate_or_throw(adv.instance, off);
    EXPECT_EQ(cost.drops, 0);
    EXPECT_EQ(cost.reconfig_cost,
              Cost{params.n / 2 + 1} * params.delta);
  }
}

TEST(AppendixBOff, SegmentsServeTheirColors) {
  const AdversaryBInstance adv = make_adversary_b({.n = 4});
  const Schedule off = appendix_b_off_schedule(adv);
  const Round switch_round = (Round{1} << adv.params.k) / 2;
  for (const ExecEvent& e : off.execs) {
    const ColorId color =
        adv.instance.jobs()[static_cast<std::size_t>(e.job)].color;
    if (e.round < switch_round) {
      EXPECT_EQ(color, adv.short_color);
    } else {
      EXPECT_NE(color, adv.short_color);
    }
  }
}

TEST(AppendixAOff, CertifiedOptimalOnProofInstance) {
  // Smallest legal Appendix A parameters (2^k > 2^{j+1} > n * Delta): the
  // branch-and-bound solver closes the instance and certifies that the
  // paper's explicit OFF schedule is exactly optimal — upgrading the E1/E8
  // lower-bound denominators from "validated upper bound" to "certified
  // optimum".
  const AdversaryAInstance adv =
      make_adversary_a({.n = 4, .delta = 2, .j = 3, .k = 5});
  const Schedule off = appendix_a_off_schedule(adv);
  const Cost off_cost = validate_or_throw(adv.instance, off).total();

  BnbOptions options;
  options.incumbent_hint = off_cost;  // OFF is a feasible schedule
  const BnbResult bnb = exact_offline_bnb(adv.instance, 1, options);
  ASSERT_TRUE(bnb.closed) << "interval [" << bnb.best_bound << ", "
                          << bnb.incumbent << "]";
  EXPECT_EQ(bnb.incumbent, off_cost)
      << "Appendix A OFF schedule is not optimal";
  ASSERT_TRUE(bnb.has_witness);
  EXPECT_EQ(validate_or_throw(adv.instance, bnb.schedule).total(),
            bnb.incumbent);
}

TEST(AppendixBOff, CertifiedOptimalOnProofInstance) {
  // Smallest legal Appendix B parameters (2^k > 2^j > Delta > n): certify
  // the drop-free OFF schedule at (n/2 + 1) * Delta as the exact optimum.
  const AdversaryBInstance adv =
      make_adversary_b({.n = 4, .delta = 5, .j = 3, .k = 4});
  const Schedule off = appendix_b_off_schedule(adv);
  const Cost off_cost = validate_or_throw(adv.instance, off).total();
  ASSERT_EQ(off_cost, Cost{4 / 2 + 1} * 5);

  BnbOptions options;
  options.incumbent_hint = off_cost;
  const BnbResult bnb = exact_offline_bnb(adv.instance, 1, options);
  ASSERT_TRUE(bnb.closed) << "interval [" << bnb.best_bound << ", "
                          << bnb.incumbent << "]";
  EXPECT_EQ(bnb.incumbent, off_cost)
      << "Appendix B OFF schedule is not optimal";
  ASSERT_TRUE(bnb.has_witness);
  EXPECT_EQ(validate_or_throw(adv.instance, bnb.schedule).total(),
            bnb.incumbent);
}

TEST(AdversaryGenerators, ConstraintViolationsRejected) {
  // Appendix A needs 2^k > 2^{j+1} > n * Delta.
  EXPECT_THROW((void)make_adversary_a({.n = 8, .delta = 8, .j = 3, .k = 9}),
               InputError);
  EXPECT_THROW((void)make_adversary_a({.n = 4, .delta = 2, .j = 5, .k = 6}),
               InputError);
  // Appendix B needs 2^k > 2^j > Delta > n.
  EXPECT_THROW((void)make_adversary_b({.n = 8, .delta = 4}), InputError);
  EXPECT_THROW((void)make_adversary_b({.n = 4, .delta = 5, .j = 2, .k = 4}),
               InputError);
}

}  // namespace
}  // namespace rrs
