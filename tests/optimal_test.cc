// Tests for offline/optimal: the exact DP on hand-solvable instances.
#include <gtest/gtest.h>

#include "sim/runner.h"
#include "offline/greedy_offline.h"
#include "core/validator.h"
#include "offline/optimal.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(Optimal, EmptyInstanceCostsNothing) {
  InstanceBuilder builder;
  builder.add_color(4);
  EXPECT_EQ(optimal_offline_cost(builder.build(), 1), 0);
}

TEST(Optimal, SingleColorConfigureOnce) {
  // 4 jobs, delay 4, Delta 3: configure once (3) and run all 4 jobs.
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 4);
  EXPECT_EQ(optimal_offline_cost(builder.build(), 1), 3);
}

TEST(Optimal, DropCheaperThanConfigure) {
  // 2 jobs, Delta 5: dropping (2) beats configuring (5).
  InstanceBuilder builder;
  builder.delta(5);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 2);
  EXPECT_EQ(optimal_offline_cost(builder.build(), 1), 2);
}

TEST(Optimal, CapacityForcesDrops) {
  // 6 jobs in a 2-round window on one resource: 4 drops + Delta.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 6);
  EXPECT_EQ(optimal_offline_cost(builder.build(), 1), 1 + 4);
}

TEST(Optimal, TwoResourcesHalveTheDrops) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 6);
  // Two resources on the same color: 4 executions, 2 drops, 2 reconfigs.
  EXPECT_EQ(optimal_offline_cost(builder.build(), 2), 2 + 2);
}

TEST(Optimal, InterleavingBeatsThrashing) {
  // Two colors alternate demand; one resource.  Serving both means
  // reconfiguring every block (expensive); the optimum picks the cheaper
  // of thrash vs. drop.
  InstanceBuilder builder;
  builder.delta(4);
  const ColorId a = builder.add_color(2);
  const ColorId b = builder.add_color(2);
  for (Round t = 0; t < 16; t += 4) {
    builder.add_jobs(a, t, 2);
    builder.add_jobs(b, t + 2, 2);
  }
  const Instance inst = builder.build();
  // Serving one color fully: Delta + 8 drops = 12.
  // Thrashing both: 8 reconfigs * 4 = 32.
  // Serving both on... there is only one resource; best is 12.
  EXPECT_EQ(optimal_offline_cost(inst, 1), 12);
}

TEST(Optimal, ReconfigureMidStreamWhenWorthIt) {
  // Color a: jobs early; color b: jobs late; one resource can serve both
  // with exactly two configurations.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 4);
  builder.add_jobs(b, 4, 4);
  EXPECT_EQ(optimal_offline_cost(builder.build(), 1), 4);
}

TEST(Optimal, NeverWorseThanAnyHeuristic) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 3;
    const Instance inst = make_random_batched(params);
    const Cost opt = optimal_offline_cost(inst, 1);
    EXPECT_LE(opt, best_offline_heuristic_cost(inst, 1)) << "seed " << seed;
  }
}

TEST(Optimal, NeverWorseThanOnlineWithSameResources) {
  for (const std::uint64_t seed : {6u, 7u, 8u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    const Cost opt = optimal_offline_cost(inst, 2);
    const RunRecord online = run_algorithm(inst, "seq-edf", 2);
    EXPECT_LE(opt, online.cost.total()) << "seed " << seed;
  }
}

TEST(Optimal, StateBudgetGuardTrips) {
  RandomBatchedParams params;
  params.seed = 1;
  params.num_colors = 8;
  params.horizon = 256;
  const Instance inst = make_random_batched(params);
  EXPECT_THROW((void)optimal_offline_cost(inst, 2, /*max_states=*/100),
               InputError);
}

TEST(OptimalSchedule, WitnessValidatesAtExactCost) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 16;
    params.delta = 3;
    const Instance inst = make_random_batched(params);
    const OptimalResult opt = optimal_offline_schedule(inst, 1);
    const CostBreakdown validated = validate_or_throw(inst, opt.schedule);
    EXPECT_EQ(validated.total(), opt.cost) << "seed " << seed;
    EXPECT_EQ(opt.cost, optimal_offline_cost(inst, 1)) << "seed " << seed;
  }
}

TEST(OptimalSchedule, MultiResourceWitness) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(2);
  const ColorId b = builder.add_color(2);
  builder.add_jobs(a, 0, 2).add_jobs(b, 0, 2);
  const Instance inst = builder.build();
  const OptimalResult opt = optimal_offline_schedule(inst, 2);
  EXPECT_EQ(validate_or_throw(inst, opt.schedule).total(), opt.cost);
  EXPECT_EQ(opt.cost, 2);  // two reconfigs, no drops
  EXPECT_EQ(opt.schedule.execs.size(), 4u);
}

TEST(OptimalSchedule, WeightedWitness) {
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId gold = builder.add_color(2, 10);
  const ColorId lead = builder.add_color(2, 1);
  builder.add_jobs(gold, 0, 2).add_jobs(lead, 0, 2);
  const Instance inst = builder.build();
  const OptimalResult opt = optimal_offline_schedule(inst, 1);
  EXPECT_EQ(opt.cost, 5);  // serve gold (Delta 3), drop lead (2 x 1)
  EXPECT_EQ(validate_or_throw(inst, opt.schedule).total(), 5);
  for (const ExecEvent& e : opt.schedule.execs) {
    EXPECT_EQ(inst.jobs()[static_cast<std::size_t>(e.job)].color, gold);
  }
}

TEST(OptimalSchedule, EmptyInstance) {
  InstanceBuilder builder;
  builder.add_color(4);
  const OptimalResult opt = optimal_offline_schedule(builder.build(), 2);
  EXPECT_EQ(opt.cost, 0);
  EXPECT_TRUE(opt.schedule.execs.empty());
  EXPECT_TRUE(opt.schedule.reconfigs.empty());
}

TEST(Optimal, RejectsBadM) {
  InstanceBuilder builder;
  builder.add_color(2);
  EXPECT_THROW((void)optimal_offline_cost(builder.build(), 0), InputError);
}

TEST(Optimal, MatrixTierRejectsMoreThanEightResources) {
  // The matrix-tier transition pricing uses a bitmask bijection DP that is
  // documented (and now enforced) to support at most m = 8; beyond that
  // callers must use exact_offline_bnb.
  InstanceBuilder builder;
  const ColorId a = builder.add_color(2);
  const ColorId b = builder.add_color(2);
  builder.reconfig_cost(a, 1).reconfig_cost(b, 1);
  builder.transition_cost(a, b, 3).transition_cost(b, a, 3);
  builder.add_jobs(a, 0, 1);
  const Instance inst = builder.build();
  EXPECT_THROW((void)optimal_offline_cost(inst, 9), InputError);
  // m = 8 is still in range; scalar/vector tiers have no such limit.
  EXPECT_NO_THROW((void)optimal_offline_cost(inst, 8));
  InstanceBuilder scalar;
  const ColorId c = scalar.add_color(2);
  scalar.add_jobs(c, 0, 1);
  EXPECT_NO_THROW((void)optimal_offline_cost(scalar.build(), 9));
}

}  // namespace
}  // namespace rrs
