// The incremental rank index (EligibilityTracker::edf_order / lru_order)
// must reproduce the sort-based reference rankings exactly, round for
// round: the deadline-bucket calendar against edf_sort, the intrusive
// recency list against lru_sort.  Differential tests drive an indexed
// tracker and a plain twin through identical phase sequences — arrivals,
// drops, executions, cache churn, counter wraps, ring wrap-around,
// migration handoff — and compare orders after every round.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "algs/ranked_cache.h"
#include "core/cache.h"
#include "core/color_state.h"
#include "core/instance.h"
#include "core/pending.h"
#include "util/rng.h"

namespace rrs {
namespace {

/// Drives an indexed tracker and a plain twin through identical rounds
/// against one shared PendingJobs / CacheAssignment, the way the engine
/// would, and checks both rankings after each round.
class DualHarness {
 public:
  explicit DualHarness(Instance instance, int resources = 4,
                       int replication = 2)
      : instance_(std::move(instance)),
        source_(instance_),
        cache_(resources, replication) {
    cache_.ensure_colors(instance_.num_colors());
    pending_.reset(instance_.num_colors());
    indexed_.enable_rank_index();
    indexed_.begin(source_);
    plain_.begin(source_);
  }

  /// One engine round: expiry sweep, drop phase, arrivals, arrival phase.
  void step() {
    pending_.drop_expired(k_, dropped_);
    indexed_.drop_phase(k_, dropped_, cache_);
    plain_.drop_phase(k_, dropped_, cache_);
    const auto arrivals = instance_.arrivals_in_round(k_);
    for (const Job& job : arrivals) pending_.add(job);
    indexed_.arrival_phase(k_, arrivals);
    plain_.arrival_phase(k_, arrivals);
    ++k_;
  }

  /// Both orders against the sort-based reference, including truncated
  /// lru_order prefixes (the capacity-capped walk a policy issues).
  void check_orders() {
    const Round now = k_ - 1;
    std::vector<ColorId> edf_ref = plain_.eligible_colors();
    edf_sort(edf_ref, source_, plain_, pending_);
    EXPECT_EQ(indexed_.edf_order(pending_), edf_ref) << "round " << now;

    std::vector<ColorId> lru_ref = plain_.eligible_colors();
    lru_sort(lru_ref, plain_, now);
    for (const std::size_t cap :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, lru_ref.size()}) {
      const auto take = std::min(cap, lru_ref.size());
      const std::vector<ColorId> want(lru_ref.begin(),
                                      lru_ref.begin() +
                                          static_cast<std::ptrdiff_t>(take));
      EXPECT_EQ(indexed_.lru_order(cap), want)
          << "round " << now << " cap " << cap;
    }
  }

  void execute_some(Rng& rng) {
    for (int tries = 0; tries < 2; ++tries) {
      const auto c = static_cast<ColorId>(rng() %
                                          static_cast<std::uint64_t>(
                                              instance_.num_colors()));
      if (pending_.count(c) > 0) (void)pending_.execute_earliest(c);
    }
  }

  void toggle_cache(Rng& rng) {
    const auto c = static_cast<ColorId>(
        rng() % static_cast<std::uint64_t>(instance_.num_colors()));
    cache_.begin_phase();
    if (cache_.contains(c)) {
      cache_.erase(c);
    } else if (!cache_.full()) {
      cache_.insert(c);
    }
    (void)cache_.finish_phase();
  }

  [[nodiscard]] Round round() const { return k_; }
  [[nodiscard]] Instance& instance() { return instance_; }
  [[nodiscard]] EligibilityTracker& indexed() { return indexed_; }
  [[nodiscard]] EligibilityTracker& plain() { return plain_; }

 private:
  Instance instance_;
  MaterializedSource source_;
  CacheAssignment cache_;
  PendingJobs pending_;
  EligibilityTracker indexed_;
  EligibilityTracker plain_;
  PendingJobs::DropResult dropped_;
  Round k_ = 0;
};

/// Random instance: 8 colors, mixed delays (optionally non-powers of two,
/// stressing the ceil_pow2 calendar ring), weighted drop costs, non-unit
/// lengths, ~20% arrival density per color.
Instance random_instance(std::uint64_t seed, bool pow2_only) {
  Rng rng(seed);
  InstanceBuilder builder;
  builder.delta(static_cast<Cost>(1 + rng() % 4));
  const Round pow2_delays[] = {1, 2, 4, 8, 16};
  const Round any_delays[] = {1, 3, 4, 5, 6, 8, 12};
  const int num_colors = 8;
  for (int i = 0; i < num_colors; ++i) {
    const Round d = pow2_only ? pow2_delays[rng() % 5] : any_delays[rng() % 7];
    builder.add_color(d, static_cast<Cost>(1 + rng() % 3),
                      static_cast<Round>(1 + rng() % 2));
  }
  const Round horizon = 160;
  for (Round k = 0; k < horizon; ++k) {
    for (ColorId c = 0; c < num_colors; ++c) {
      if (rng() % 100 < 20) {
        builder.add_jobs(c, k, static_cast<std::int64_t>(1 + rng() % 3));
      }
    }
  }
  return builder.build();
}

TEST(RankIndexDifferential, MatchesSortsEveryRoundPow2Delays) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    DualHarness h(random_instance(seed, /*pow2_only=*/true));
    Rng rng(seed * 977 + 5);
    const Round until = h.instance().horizon() + 32;
    for (Round k = 0; k < until; ++k) {
      if (k % 7 == 3) h.toggle_cache(rng);
      h.step();
      h.execute_some(rng);
      h.check_orders();
    }
  }
}

TEST(RankIndexDifferential, MatchesSortsEveryRoundArbitraryDelays) {
  for (const std::uint64_t seed : {6ULL, 7ULL, 8ULL}) {
    DualHarness h(random_instance(seed, /*pow2_only=*/false));
    Rng rng(seed * 977 + 5);
    const Round until = h.instance().horizon() + 32;
    for (Round k = 0; k < until; ++k) {
      if (k % 5 == 2) h.toggle_cache(rng);
      h.step();
      h.execute_some(rng);
      h.check_orders();
    }
  }
}

TEST(RankIndexCalendar, SurvivesManyRingWraps) {
  // One delay class (D = 4, ring of 4 buckets) over a long horizon: every
  // block boundary moves the whole class one ring slot, so the calendar
  // wraps dozens of times.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4, /*drop_cost=*/2);
  for (Round k = 0; k < 200; k += 4) {
    builder.add_jobs(a, k, 1);
    if (k % 8 == 0) builder.add_jobs(b, k, 1);
  }
  DualHarness h(builder.build());
  Rng rng(17);
  for (Round k = 0; k < 220; ++k) {
    h.step();
    h.execute_some(rng);
    h.check_orders();
  }
}

TEST(RankIndexChurn, EpochEndEvictsFromBothOrders) {
  // Delta 1: a single arrival makes the color eligible; at the next
  // multiple of D an uncached eligible color's epoch ends and it must
  // leave the calendar and the recency list.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 1, 1);
  builder.min_horizon(16);
  DualHarness h(builder.build());
  for (Round k = 0; k < 16; ++k) {
    h.step();
    h.check_orders();
  }
  EXPECT_FALSE(h.indexed().eligible(c)) << "epoch must have ended";
  EXPECT_TRUE(h.indexed().lru_order(4).empty());
}

TEST(RankIndexWraps, SecondWrapInBlockReordersRecency) {
  // Two colors with D = 8, Delta 2.  Color a wraps twice inside one block
  // (timestamp moves mid-block), color b once; the recency list must
  // track the same effective timestamps lru_sort computes lazily.
  InstanceBuilder builder;
  builder.delta(2);
  const ColorId a = builder.add_color(8);
  const ColorId b = builder.add_color(8);
  builder.add_jobs(a, 0, 2);  // wrap at 0
  builder.add_jobs(a, 3, 2);  // second wrap, same block
  builder.add_jobs(b, 5, 2);  // wrap at 5
  builder.add_jobs(a, 8, 1);
  builder.add_jobs(b, 9, 1);
  builder.min_horizon(32);
  DualHarness h(builder.build());
  for (Round k = 0; k < 32; ++k) {
    h.step();
    h.check_orders();
  }
}

TEST(RankIndexMigration, ImportHandoffPreservesOrders) {
  // Export every color from a mid-run indexed tracker into a fresh pair
  // (indexed + plain twin), then keep driving: the dirty-import protocol
  // must link the imported colors with the timestamps the plain twin
  // computes, and every later round must still match the sorts.
  const Instance instance = random_instance(42, /*pow2_only=*/true);
  MaterializedSource source(instance);
  CacheAssignment cache(4, 2);
  cache.ensure_colors(instance.num_colors());
  PendingJobs pending;
  pending.reset(instance.num_colors());
  PendingJobs::DropResult dropped;

  EligibilityTracker original;
  original.enable_rank_index();
  original.begin(source);
  const Round handoff = 48;
  for (Round k = 0; k < handoff; ++k) {
    pending.drop_expired(k, dropped);
    original.drop_phase(k, dropped, cache);
    const auto arrivals = instance.arrivals_in_round(k);
    for (const Job& job : arrivals) pending.add(job);
    original.arrival_phase(k, arrivals);
  }

  EligibilityTracker indexed;
  indexed.enable_rank_index();
  indexed.begin(source);
  EligibilityTracker plain;
  plain.begin(source);
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    const PolicyColorState state = original.export_color(c);
    indexed.import_color(c, state);
    plain.import_color(c, state);
  }

  Rng rng(99);
  for (Round k = handoff; k < instance.horizon() + 16; ++k) {
    pending.drop_expired(k, dropped);
    indexed.drop_phase(k, dropped, cache);
    plain.drop_phase(k, dropped, cache);
    const auto arrivals = instance.arrivals_in_round(k);
    for (const Job& job : arrivals) pending.add(job);
    indexed.arrival_phase(k, arrivals);
    plain.arrival_phase(k, arrivals);

    std::vector<ColorId> edf_ref = plain.eligible_colors();
    edf_sort(edf_ref, source, plain, pending);
    EXPECT_EQ(indexed.edf_order(pending), edf_ref) << "round " << k;
    std::vector<ColorId> lru_ref = plain.eligible_colors();
    lru_sort(lru_ref, plain, k);
    EXPECT_EQ(indexed.lru_order(lru_ref.size()), lru_ref) << "round " << k;
  }
}

TEST(RankIndexContract, EmptyEligibleSetYieldsEmptyOrders) {
  InstanceBuilder builder;
  builder.delta(100);  // threshold far above any arrival mass
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 1);
  builder.min_horizon(8);
  DualHarness h(builder.build());
  for (Round k = 0; k < 8; ++k) {
    h.step();
    h.check_orders();
  }
  EXPECT_TRUE(h.indexed().lru_order(4).empty());
}

}  // namespace
}  // namespace rrs
