// Unit tests for core/schedule cost and core/validator legality checks.
#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/validator.h"
#include "util/check.h"

namespace rrs {
namespace {

/// Two colors (delay 4 and 8), three jobs; used by most validator tests.
Instance small_instance() {
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId red = builder.add_color(4);   // jobs 0, 1 arrive round 0
  const ColorId blue = builder.add_color(8);  // job 2 arrives round 0
  builder.add_jobs(red, 0, 2);
  builder.add_jobs(blue, 0, 1);
  return builder.build();
}

Schedule valid_schedule() {
  Schedule s;
  s.num_resources = 2;
  s.speed = 1;
  s.reconfigs = {{0, 0, 0, 0}, {0, 0, 1, 1}};
  s.execs = {{0, 0, 0, 0}, {0, 0, 1, 2}, {1, 0, 0, 1}};
  return s;
}

TEST(ScheduleCost, CountsReconfigsAndDrops) {
  const Schedule s = valid_schedule();
  const CostBreakdown cost = s.cost(/*delta=*/3, /*total_jobs=*/3);
  EXPECT_EQ(cost.reconfig_events, 2);
  EXPECT_EQ(cost.reconfig_cost, 6);
  EXPECT_EQ(cost.drops, 0);
  EXPECT_EQ(cost.total(), 6);
}

TEST(ScheduleCost, DropsAreUnexecutedJobs) {
  Schedule s = valid_schedule();
  s.execs.pop_back();
  EXPECT_EQ(s.cost(3, 3).drops, 1);
}

TEST(ScheduleCost, RejectsImpossibleExecutionCount) {
  const Schedule s = valid_schedule();
  EXPECT_THROW((void)s.cost(3, 2), InputError);
  EXPECT_THROW((void)s.cost(0, 3), InputError);
}

TEST(Validator, AcceptsValidSchedule) {
  const Instance inst = small_instance();
  const ValidationResult r = validate(inst, valid_schedule());
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.cost.total(), 6);
}

TEST(Validator, ValidateOrThrowReturnsCost) {
  const Instance inst = small_instance();
  EXPECT_EQ(validate_or_throw(inst, valid_schedule()).total(), 6);
}

TEST(Validator, RejectsDoubleExecutionOfJob) {
  const Instance inst = small_instance();
  Schedule s = valid_schedule();
  s.execs.push_back({2, 0, 0, 0});  // job 0 again
  const ValidationResult r = validate(inst, s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("already executed"), std::string::npos);
  EXPECT_THROW((void)validate_or_throw(inst, s), InputError);
}

TEST(Validator, RejectsExecutionBeforeArrival) {
  InstanceBuilder builder;
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 4, 1);
  const Instance inst = builder.build();
  Schedule s;
  s.num_resources = 1;
  s.reconfigs = {{0, 0, 0, c}};
  s.execs = {{2, 0, 0, 0}};  // before arrival round 4
  const ValidationResult r = validate(inst, s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("before arrival"), std::string::npos);
}

TEST(Validator, RejectsExecutionAtOrAfterDeadline) {
  const Instance inst = small_instance();  // red deadline is round 4
  Schedule s;
  s.num_resources = 1;
  s.reconfigs = {{0, 0, 0, 0}};
  s.execs = {{4, 0, 0, 0}};
  const ValidationResult r = validate(inst, s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("deadline"), std::string::npos);
}

TEST(Validator, RejectsColorMismatch) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 1;
  s.reconfigs = {{0, 0, 0, 1}};  // configured blue
  s.execs = {{0, 0, 0, 0}};      // executes a red job
  const ValidationResult r = validate(inst, s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("configured"), std::string::npos);
}

TEST(Validator, RejectsUnconfiguredExecution) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 1;
  s.execs = {{0, 0, 0, 0}};  // resource still black
  EXPECT_FALSE(validate(inst, s).ok);
}

TEST(Validator, RejectsDoubleBookedSlot) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 1;
  s.reconfigs = {{0, 0, 0, 0}};
  s.execs = {{0, 0, 0, 0}, {0, 0, 0, 1}};  // two jobs, same slot
  const ValidationResult r = validate(inst, s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("twice"), std::string::npos);
}

TEST(Validator, MiniRoundsGiveSeparateSlots) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 1;
  s.speed = 2;
  s.reconfigs = {{0, 0, 0, 0}};
  s.execs = {{0, 0, 0, 0}, {0, 1, 0, 1}};  // one per mini-round: legal
  EXPECT_TRUE(validate(inst, s).ok);
}

TEST(Validator, ReconfigWithinMiniRoundPrecedesExecution) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 1;
  s.speed = 2;
  s.reconfigs = {{0, 0, 0, 0}, {0, 1, 0, 1}};
  // Mini 0 executes red; mini 1 executes blue after the mini-1 reconfig.
  s.execs = {{0, 0, 0, 0}, {0, 1, 0, 2}};
  EXPECT_TRUE(validate(inst, s).ok);
}

TEST(Validator, RejectsOutOfRangeEvents) {
  const Instance inst = small_instance();
  {
    Schedule s = valid_schedule();
    s.reconfigs.push_back({99, 0, 0, 0});  // beyond horizon
    EXPECT_FALSE(validate(inst, s).ok);
  }
  {
    Schedule s = valid_schedule();
    s.execs.push_back({1, 0, 7, 1});  // resource out of range
    EXPECT_FALSE(validate(inst, s).ok);
  }
  {
    Schedule s = valid_schedule();
    s.reconfigs[0].mini = 5;  // mini >= speed
    EXPECT_FALSE(validate(inst, s).ok);
  }
  {
    Schedule s = valid_schedule();
    s.execs[0].job = 42;  // unknown job
    EXPECT_FALSE(validate(inst, s).ok);
  }
  {
    Schedule s = valid_schedule();
    s.reconfigs[0].color = 9;  // unknown color
    EXPECT_FALSE(validate(inst, s).ok);
  }
}

TEST(Validator, RejectsUnorderedEvents) {
  const Instance inst = small_instance();
  Schedule s = valid_schedule();
  std::swap(s.execs[0], s.execs[2]);
  const ValidationResult r = validate(inst, s);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].find("order"), std::string::npos);
}

TEST(Validator, CollectsMultipleErrors) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 1;
  s.execs = {{0, 0, 0, 0}, {1, 0, 0, 0}};  // unconfigured + double exec
  const ValidationResult r = validate(inst, s, /*max_errors=*/8);
  EXPECT_GE(r.errors.size(), 2u);
}

TEST(Validator, EmptyScheduleIsValidAllDropped) {
  const Instance inst = small_instance();
  Schedule s;
  s.num_resources = 2;
  const ValidationResult r = validate(inst, s);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.cost.drops, 3);
  EXPECT_EQ(r.cost.reconfig_cost, 0);
}

}  // namespace
}  // namespace rrs
