// Fuzz-style tests: random policies and random workloads exercise the
// engine / cache / validator stack far off the happy path.
//
// A RandomPolicy performs arbitrary (but API-legal) cache mutations every
// round — random inserts of random colors, random evictions, sometimes
// nothing.  Whatever it does, the engine must produce a schedule the
// validator accepts with exactly the engine's cost.  This pins down the
// engine's contract: ANY policy yields a legal schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/validator.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"
#include "workload/trace_io.h"

namespace rrs {
namespace {

/// A policy that mutates the cache randomly but legally.
class RandomPolicy : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "random"; }

  void begin(const ArrivalSource& source, int, int) override {
    num_colors_ = source.num_colors();
  }

  void on_round(RoundContext& ctx) override {
    if (ctx.final_sweep()) return;
    CacheAssignment& cache = ctx.cache();
    if (num_colors_ == 0) return;
    const std::int64_t actions = rng_.uniform(0, 3);
    for (std::int64_t a = 0; a < actions; ++a) {
      const bool evict = rng_.bernoulli(0.4);
      if (evict && cache.num_cached() > 0) {
        const auto& cached = cache.cached_colors();
        cache.erase(cached[static_cast<std::size_t>(rng_.uniform(
            0, static_cast<std::int64_t>(cached.size()) - 1))]);
      } else if (!cache.full()) {
        const auto color =
            static_cast<ColorId>(rng_.uniform(0, num_colors_ - 1));
        if (!cache.contains(color)) cache.insert(color);
      }
    }
  }

 private:
  Rng rng_;
  ColorId num_colors_ = 0;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, RandomPolicyYieldsValidSchedule) {
  RandomBatchedParams params;
  params.seed = GetParam();
  params.horizon = 128;
  params.num_colors = 6;
  params.min_drop_cost = 1;
  params.max_drop_cost = 4;
  const Instance inst = make_random_batched(params);

  for (const int replication : {1, 2}) {
    for (const int speed : {1, 2}) {
      RandomPolicy policy(GetParam() * 31 +
                          static_cast<std::uint64_t>(replication * 2 + speed));
      EngineOptions options;
      options.num_resources = 4;
      options.replication = replication;
      options.speed = speed;
      options.record_schedule = true;
      const EngineResult r = run_policy(inst, policy, options);
      const ValidationResult check = validate(inst, r.schedule);
      ASSERT_TRUE(check.ok)
          << "repl " << replication << " speed " << speed << ": "
          << (check.errors.empty() ? "?" : check.errors[0]);
      EXPECT_EQ(check.cost, r.cost);
    }
  }
}

TEST_P(EngineFuzz, RandomPolicyOnUnbatchedInput) {
  PoissonParams params;
  params.seed = GetParam();
  params.horizon = 128;
  params.num_colors = 5;
  params.arbitrary_delays = true;
  params.min_delay = 2;
  params.max_delay = 40;
  const Instance inst = make_poisson(params);

  RandomPolicy policy(GetParam() + 99);
  EngineOptions options;
  options.num_resources = 3;
  options.replication = 1;
  options.record_schedule = true;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(validate_or_throw(inst, r.schedule), r.cost);
}

TEST_P(EngineFuzz, ChurnPolicyNetsOutInCache) {
  // A policy that evicts and reinserts the same color each round must not
  // accumulate reconfiguration cost: CacheAssignment's phase diffing
  // collapses no-op churn.
  class ChurnPolicy : public Policy {
   public:
    [[nodiscard]] std::string_view name() const override { return "churn"; }
    void on_round(RoundContext& ctx) override {
      if (ctx.final_sweep()) return;
      CacheAssignment& cache = ctx.cache();
      if (cache.contains(0)) {
        cache.erase(0);
        cache.insert(0);  // reclaims the same still-colored locations
      } else {
        cache.insert(0);
      }
    }
  };

  RandomBatchedParams params;
  params.seed = GetParam();
  params.horizon = 64;
  params.num_colors = 2;
  const Instance inst = make_random_batched(params);
  ChurnPolicy policy;
  EngineOptions options;
  options.num_resources = 2;
  options.replication = 1;
  const EngineResult r = run_policy(inst, policy, options);
  EXPECT_EQ(r.cost.reconfig_events, 1) << "only the initial insert costs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{17}));

// --- trace-reader corpus fuzzing -------------------------------------------

/// read_trace's contract off the happy path: any input either parses or
/// throws a structured InputError — never an InvariantError, never a
/// crash, never a silently garbage instance.
void expect_parses_or_rejects(const std::string& text, const char* label) {
  std::istringstream in(text);
  try {
    const Instance inst = read_trace(in);
    EXPECT_GE(inst.num_colors(), 0) << label;  // parsed: must be coherent
  } catch (const InputError&) {
    // structured rejection: the expected outcome for malformed input
  }
  // anything else escapes and fails the test
}

/// A v1 (scalar-uniform) trace and a v2 trace carrying every generalized
/// record kind (length/weight color fields, dcold, dwarm) — the corpus
/// seeds for the trace-reader fuzzing below.
std::vector<std::string> valid_trace_corpus(std::uint64_t seed) {
  std::vector<std::string> corpus;
  RandomBatchedParams params;
  params.seed = seed;
  params.horizon = 64;
  std::ostringstream v1;
  write_trace(v1, make_random_batched(params));
  corpus.push_back(v1.str());

  InstanceBuilder builder;
  builder.delta(4);
  const ColorId a = builder.add_color(4, /*drop_cost=*/3, /*length=*/2);
  const ColorId b = builder.add_color(8, /*drop_cost=*/1, /*length=*/1);
  const ColorId c = builder.add_color(16, /*drop_cost=*/5, /*length=*/3);
  builder.reconfig_cost(b, 7);
  builder.transition_cost(a, b, 1);
  builder.transition_cost(c, a, 0);
  for (Round t = 0; t < 32; t += 4) {
    builder.add_jobs(a, t, 2);
    builder.add_jobs(b, t, 1);
    if (t % 8 == 0) builder.add_jobs(c, t, 3);
  }
  std::ostringstream v2;
  write_trace(v2, builder.build());
  corpus.push_back(v2.str());
  return corpus;
}

TEST(TraceFuzz, TruncationCorpusParsesOrRejects) {
  for (const std::string& valid : valid_trace_corpus(11)) {
    // Every truncation point (stepped, plus all boundaries near the end).
    for (std::size_t len = 0; len < valid.size(); len += 7) {
      expect_parses_or_rejects(valid.substr(0, len), "truncation");
    }
    for (std::size_t back = 1; back <= 16 && back <= valid.size(); ++back) {
      expect_parses_or_rejects(valid.substr(0, valid.size() - back),
                               "tail truncation");
    }
  }
}

TEST(TraceFuzz, ByteCorruptionCorpusParsesOrRejects) {
  for (const std::string& valid : valid_trace_corpus(12)) {
    const char kReplacements[] = {'x', '\n', ',', '-', '9', '\0', ' '};
    for (std::size_t pos = 0; pos < valid.size(); pos += 11) {
      for (const char replacement : kReplacements) {
        std::string mutated = valid;
        mutated[pos] = replacement;
        expect_parses_or_rejects(mutated, "byte corruption");
      }
    }
  }
}

TEST(TraceFuzz, StructuralCorruptionCorpusParsesOrRejects) {
  // Splice whole malformed lines into every line boundary of both the v1
  // and the v2 seed trace (v2-only records under the v1 header are part of
  // the corpus deliberately).
  const char* const kJunkLines[] = {
      "job,0,0,999999999999\n", "job,-1,-1,-1\n",      "color,0,4\n",
      "delta,7\n",              "# end\n",             "job\n",
      "color,99999,1\n",        ",,,,\n",              "\xff\xfe\n",
      "dcold,0,2\n",            "dcold,0,0\n",         "dwarm,0,0,-1\n",
      "dwarm,0,99,1\n",         "color,0,4,1,2\n",
  };
  for (const std::string& valid : valid_trace_corpus(13)) {
    std::vector<std::size_t> boundaries = {0};
    for (std::size_t i = 0; i < valid.size(); ++i) {
      if (valid[i] == '\n') boundaries.push_back(i + 1);
    }
    for (const std::size_t at : boundaries) {
      for (const char* const junk : kJunkLines) {
        std::string mutated = valid;
        mutated.insert(at, junk);
        expect_parses_or_rejects(mutated, "junk line");
      }
    }
    // Line deletions: drop each line in turn.
    for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
      std::string mutated = valid;
      mutated.erase(boundaries[i], boundaries[i + 1] - boundaries[i]);
      expect_parses_or_rejects(mutated, "line deletion");
    }
  }
}

// --- snapshot-reader corpus fuzzing ----------------------------------------

/// read_snapshots' contract off the happy path mirrors read_trace's: any
/// input either parses into internally consistent snapshots or throws a
/// structured InputError — never an InvariantError, never a crash, never
/// silently absorbed garbage.
void expect_snapshot_parses_or_rejects(const std::string& text,
                                       const char* label) {
  std::istringstream in(text);
  try {
    const std::vector<Snapshot> parsed = read_snapshots(in);
    for (const Snapshot& s : parsed) {
      // Parsed snapshots re-serialize byte-identically: the parser only
      // accepts what the writer emits.
      EXPECT_EQ(parse_snapshot_line(to_json_line(s)), s) << label;
    }
  } catch (const InputError&) {
    // structured rejection: the expected outcome for malformed input
  }
  // anything else escapes and fails the test
}

/// A realistic snapshot stream: periodic + final snapshots of an observed
/// streaming run, as run_streaming writes them.
std::string valid_snapshot_stream(std::uint64_t seed) {
  ObsConfig config;
  config.snapshot_every = 32;
  Observer observer(config);
  std::ostringstream out;
  observer.snapshot_out = &out;
  RandomBatchedParams params;
  params.seed = seed;
  params.horizon = 128;
  RandomBatchedSource source(params);
  (void)run_streaming(source, "dlru-edf", 8, kInfiniteHorizon, nullptr,
                      false, &observer);
  return out.str();
}

TEST(SnapshotFuzz, RoundTripIsExact) {
  const std::string valid = valid_snapshot_stream(21);
  std::istringstream in(valid);
  const std::vector<Snapshot> parsed = read_snapshots(in);
  ASSERT_GE(parsed.size(), 3u);
  std::ostringstream rewritten;
  write_snapshots(rewritten, parsed);
  EXPECT_EQ(rewritten.str(), valid);
}

TEST(SnapshotFuzz, TruncationCorpusParsesOrRejects) {
  const std::string valid = valid_snapshot_stream(22);
  for (std::size_t len = 0; len < valid.size(); len += 7) {
    expect_snapshot_parses_or_rejects(valid.substr(0, len), "truncation");
  }
  for (std::size_t back = 1; back <= 16 && back <= valid.size(); ++back) {
    expect_snapshot_parses_or_rejects(valid.substr(0, valid.size() - back),
                                      "tail truncation");
  }
}

TEST(SnapshotFuzz, ByteCorruptionCorpusParsesOrRejects) {
  const std::string valid = valid_snapshot_stream(23);
  const char kReplacements[] = {'x', '\n', ',', '-', '9', '\0', ' ', '"'};
  for (std::size_t pos = 0; pos < valid.size(); pos += 5) {
    for (const char replacement : kReplacements) {
      std::string mutated = valid;
      mutated[pos] = replacement;
      expect_snapshot_parses_or_rejects(mutated, "byte corruption");
    }
  }
}

TEST(SnapshotFuzz, JunkLineCorpusParsesOrRejects) {
  const std::string valid = valid_snapshot_stream(24);
  const char* const kJunkLines[] = {
      "{\"round\":0}\n",
      "{}\n",
      "null\n",
      "{\"round\":-5,\"arrived\":0,\"executed\":0}\n",
      "[1,2,3]\n",
      "\xff\xfe\n",
      "{\"round\":99999999999999999999999999}\n",
  };
  std::vector<std::size_t> boundaries = {0};
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (valid[i] == '\n') boundaries.push_back(i + 1);
  }
  for (const std::size_t at : boundaries) {
    for (const char* const junk : kJunkLines) {
      std::string mutated = valid;
      mutated.insert(at, junk);
      expect_snapshot_parses_or_rejects(mutated, "junk line");
    }
  }
}

TEST(SnapshotFuzz, RejectsNonFiniteNumbers) {
  const std::string valid = valid_snapshot_stream(25);
  const std::string first_line = valid.substr(0, valid.find('\n'));
  const std::size_t at = first_line.find("\"mean_wait\":");
  ASSERT_NE(at, std::string::npos);
  const std::size_t value_at = at + std::string("\"mean_wait\":").size();
  const std::size_t value_end = first_line.find(',', value_at);
  for (const char* const bad : {"nan", "NaN", "inf", "Infinity", "-inf",
                                "1e999", "-1e999"}) {
    std::string mutated = first_line;
    mutated.replace(value_at, value_end - value_at, bad);
    EXPECT_THROW((void)parse_snapshot_line(mutated), InputError) << bad;
  }
}

TEST(SnapshotFuzz, RejectsInternallyInconsistentSnapshots) {
  // Syntactically perfect lines whose cross-field invariants are broken:
  // the reader must reject them rather than hand garbage to a merge.
  Snapshot s = [] {
    StreamStats stats;
    const std::vector<Round> delays = {4};
    const std::vector<Cost> costs = {2};
    stats.begin(delays, costs);
    for (int i = 0; i < 6; ++i) stats.on_arrival(0);
    for (int i = 0; i < 3; ++i) {
      stats.on_work_unit(0);
      stats.on_execution(0, i, i + 4);
    }
    stats.on_drop(0, 2);
    return make_snapshot(stats, 40, 1);
  }();
  EXPECT_EQ(parse_snapshot_line(to_json_line(s)), s) << "baseline is valid";

  Snapshot more_executed = s;
  more_executed.executed += 1;  // disagrees with wait/slack counts
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(more_executed)),
               InputError);

  Snapshot negative = s;
  negative.drop_count = -2;
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(negative)),
               InputError);

  Snapshot overdropped = s;
  overdropped.drop_count = 100;  // exceeds arrived - executed
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(overdropped)),
               InputError);

  Snapshot skewed_mean = s;
  skewed_mean.mean_wait += 0.5;  // disagrees with the wait histogram
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(skewed_mean)),
               InputError);

  Snapshot starved_units = s;
  starved_units.work_units = 1;  // fewer units than completed service needs
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(starved_units)),
               InputError);

  Snapshot phantom_weight = s;
  phantom_weight.completed_weight = 1;  // below one unit weight per job
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(phantom_weight)),
               InputError);

  Snapshot phantom_evictions = s;
  phantom_evictions.churn_evictions = 3;  // more than churn_failures
  EXPECT_THROW((void)parse_snapshot_line(to_json_line(phantom_evictions)),
               InputError);
}

// --- checkpoint corpus fuzzing ---------------------------------------------

/// Engine::restore's contract off the happy path: any byte stream either
/// restores (bit-identically, by construction of the writer) or throws a
/// structured InputError — never an InvariantError, never a crash, never
/// a half-applied engine.  The corpus seed is a real mid-run checkpoint
/// with the source cursor embedded.
std::string valid_checkpoint_bytes() {
  PoissonParams params;
  params.horizon = 64;
  params.seed = 9;
  PoissonSource source(params);
  EngineOptions options;
  const auto policy = make_stream_policy("dlru-edf", options);
  options.num_resources = 8;
  options.record_schedule = false;
  options.drain_pending = true;
  Engine engine(source, *policy, options);
  engine.run_rounds(source, 32);
  std::ostringstream out;
  engine.checkpoint(out, &source);
  return out.str();
}

/// Attempts to restore `bytes` onto a fresh engine.  Returns true when the
/// restore was accepted; throws anything other than InputError through to
/// the test.
bool restore_attempt(const std::string& bytes) {
  PoissonParams params;
  params.horizon = 64;
  params.seed = 9;
  PoissonSource source(params);
  EngineOptions options;
  const auto policy = make_stream_policy("dlru-edf", options);
  options.num_resources = 8;
  options.record_schedule = false;
  options.drain_pending = true;
  Engine engine(source, *policy, options);
  std::istringstream in(bytes);
  try {
    engine.restore(in, &source);
  } catch (const InputError&) {
    return false;
  }
  EXPECT_EQ(engine.round(), 32) << "accepted stream must be the real one";
  return true;
}

TEST(CheckpointFuzz, EveryTruncationRejects) {
  const std::string valid = valid_checkpoint_bytes();
  ASSERT_TRUE(restore_attempt(valid)) << "corpus seed must restore";
  // Stepped prefixes plus every boundary near the end: the length prefix,
  // CRC, and trailer check make every strict prefix detectable.
  for (std::size_t len = 0; len < valid.size(); len += 7) {
    EXPECT_FALSE(restore_attempt(valid.substr(0, len))) << "len " << len;
  }
  for (std::size_t back = 1; back <= 64 && back <= valid.size(); ++back) {
    EXPECT_FALSE(restore_attempt(valid.substr(0, valid.size() - back)))
        << "tail truncation " << back;
  }
}

TEST(CheckpointFuzz, ByteFlipsRejectOrRestoreExactly) {
  const std::string valid = valid_checkpoint_bytes();
  const unsigned char kMasks[] = {0x01, 0x5a, 0x80, 0xff};
  for (std::size_t pos = 0; pos < valid.size(); pos += 3) {
    for (const unsigned char mask : kMasks) {
      std::string mutated = valid;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ mask);
      if (pos >= 12 && pos < 16) {
        // Minor-version bytes: readers accept any minor (additive
        // compatibility), so either outcome is legal — but an accepted
        // stream still restores the exact engine (checked inside).
        (void)restore_attempt(mutated);
      } else {
        // Everything else is covered by the magic, major, length, CRC, or
        // trailer checks and must be rejected.
        EXPECT_FALSE(restore_attempt(mutated))
            << "pos " << pos << " mask " << static_cast<int>(mask);
      }
    }
  }
}

TEST(CheckpointFuzz, MajorVersionMismatchRejects) {
  const std::string valid = valid_checkpoint_bytes();
  for (const std::uint32_t major : {kCheckpointMajor - 1,
                                    kCheckpointMajor + 1}) {
    std::string mutated = valid;
    for (int i = 0; i < 4; ++i) {
      mutated[8 + static_cast<std::size_t>(i)] =
          static_cast<char>((major >> (8 * i)) & 0xff);
    }
    EXPECT_FALSE(restore_attempt(mutated)) << "major " << major;
  }
}

TEST(CheckpointFuzz, NewerMinorVersionIsAccepted) {
  // Additive version policy: a stream stamped with a newer minor (as a
  // future writer that appended tail fields would emit) restores on
  // today's reader.
  std::string mutated = valid_checkpoint_bytes();
  const std::uint32_t minor = kCheckpointMinor + 7;
  for (int i = 0; i < 4; ++i) {
    mutated[12 + static_cast<std::size_t>(i)] =
        static_cast<char>((minor >> (8 * i)) & 0xff);
  }
  EXPECT_TRUE(restore_attempt(mutated));
}

TEST(CheckpointFuzz, CrcAndTrailerCorruptionRejects) {
  const std::string valid = valid_checkpoint_bytes();
  ASSERT_GT(valid.size(), 36u);
  for (const std::size_t pos :
       {std::size_t{24}, std::size_t{25}, std::size_t{26}, std::size_t{27},
        valid.size() - 8, valid.size() - 1}) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(
        static_cast<unsigned char>(mutated[pos]) ^ 0xff);
    EXPECT_FALSE(restore_attempt(mutated)) << "pos " << pos;
  }
}

}  // namespace
}  // namespace rrs
