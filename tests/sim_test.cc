// Tests for src/sim: runner, ratio bracketing, sweeps, tables, CSV.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "sim/csv.h"
#include "sim/ratio.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

Instance small_instance() {
  RandomBatchedParams params;
  params.seed = 1;
  params.horizon = 64;
  params.num_colors = 6;
  return make_random_batched(params);
}

TEST(Runner, RunsRegisteredAlgorithms) {
  const Instance inst = small_instance();
  for (const AlgorithmInfo& info : algorithm_registry()) {
    const RunRecord record = run_algorithm(inst, info.name, 8);
    EXPECT_EQ(record.algorithm, info.name);
    EXPECT_GE(record.cost.total(), 0);
    EXPECT_GE(record.seconds, 0.0);
  }
}

TEST(Runner, UnknownAlgorithmThrows) {
  const Instance inst = small_instance();
  EXPECT_THROW((void)run_algorithm(inst, "nope", 8), InputError);
  EXPECT_THROW((void)make_policy("nope"), InputError);
}

TEST(Runner, RegistryHasAllAlgorithms) {
  EXPECT_EQ(algorithm_registry().size(), 8u);
  for (const char* name : {"dlru", "edf", "dlru-edf", "adaptive", "seq-edf",
                           "ds-seq-edf", "distribute", "varbatch"}) {
    EXPECT_EQ(find_algorithm(name).name, name);
    EXPECT_FALSE(find_algorithm(name).description.empty());
  }
}

TEST(Ratio, BracketIsOrdered) {
  const Instance inst = small_instance();
  const RatioReport report = measure_ratio(inst, "dlru-edf", 8, 1);
  EXPECT_LE(report.lower_bound, report.heuristic_ub);
  EXPECT_GE(report.ratio_vs_lb, report.ratio_vs_ub);
  EXPECT_GT(report.lower_bound, 0);
}

TEST(Ratio, KnownOffCostOverridesHeuristic) {
  const Instance inst = small_instance();
  const RatioReport a = measure_ratio(inst, "dlru-edf", 8, 1);
  const RatioReport b =
      measure_ratio(inst, "dlru-edf", 8, 1, a.heuristic_ub * 2);
  EXPECT_EQ(b.heuristic_ub, a.heuristic_ub * 2);
  EXPECT_LT(b.ratio_vs_ub, a.ratio_vs_ub);
}

TEST(Sweep, PreservesCellOrder) {
  std::vector<std::function<std::vector<std::string>()>> cells;
  for (int i = 0; i < 32; ++i) {
    cells.emplace_back([i] {
      return std::vector<std::string>{std::to_string(i)};
    });
  }
  const auto rows = run_sweep(cells);
  ASSERT_EQ(rows.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rows[static_cast<std::size_t>(i)][0], std::to_string(i));
  }
}

TEST(Table, PrintsAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "23456"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // All data lines equal widths: header/sep/rows each end aligned.
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InputError);
  EXPECT_THROW(TextTable({}), InputError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_ratio(3.5), "x3.50");
  EXPECT_EQ(fmt_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt_ratio(std::numeric_limits<double>::infinity()), "x inf");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"with\"quote", "with\nnewline"});
  std::ostringstream out;
  csv.write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RejectsBadRows) {
  CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({"x", "y"}), InputError);
  EXPECT_THROW(CsvWriter({}), InputError);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"x"});
  csv.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/rrs_csv_test.csv";
  csv.write_file(path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x");
  EXPECT_THROW(csv.write_file("/nonexistent/dir/x.csv"), InputError);
}

}  // namespace
}  // namespace rrs
