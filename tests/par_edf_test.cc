// Tests for algs/par_edf: the m-jobs-per-round EDF drop-cost yardstick.
#include <gtest/gtest.h>

#include "algs/par_edf.h"
#include "core/instance.h"
#include "offline/optimal.h"
#include "util/check.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

TEST(ParEdf, ExecutesEverythingWhenFeasible) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 2).add_jobs(b, 0, 2);
  const Instance inst = builder.build();
  const ParEdfResult r = run_par_edf(inst, 1);
  EXPECT_EQ(r.executed, 4);  // 4 jobs, 4 rounds of capacity 1
  EXPECT_EQ(r.drops, 0);
  EXPECT_TRUE(r.nice());
}

TEST(ParEdf, DropsExactExcess) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(2);
  builder.add_jobs(c, 0, 5);  // 5 jobs, window of 2 rounds, m = 2
  const Instance inst = builder.build();
  const ParEdfResult r = run_par_edf(inst, 2);
  EXPECT_EQ(r.executed, 4);
  EXPECT_EQ(r.drops, 1);
  EXPECT_FALSE(r.nice());
}

TEST(ParEdf, PrioritizesEarlierDeadlines) {
  // Urgent jobs (deadline 1) must preempt relaxed ones that still fit.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId urgent = builder.add_color(1);
  const ColorId relaxed = builder.add_color(8);
  builder.add_jobs(relaxed, 0, 4);
  builder.add_jobs(urgent, 0, 1);
  const Instance inst = builder.build();
  const ParEdfResult r = run_par_edf(inst, 1);
  EXPECT_EQ(r.drops, 0);  // urgent runs round 0; relaxed fits afterwards
}

TEST(ParEdf, TieBreaksBySmallerDelayBound) {
  // Same deadline, different delay bounds: the smaller bound ranks first.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId wide = builder.add_color(8);    // arrives 0, deadline 8
  const ColorId narrow = builder.add_color(4);  // arrives 4, deadline 8
  builder.add_jobs(wide, 0, 8);
  builder.add_jobs(narrow, 4, 4);
  const Instance inst = builder.build();
  // m = 1: rounds 0..3 serve wide; rounds 4..7 must prefer narrow (same
  // deadline 8, smaller delay bound), dropping 4 wide jobs.
  const ParEdfResult r = run_par_edf(inst, 1);
  EXPECT_EQ(r.executed, 8);
  EXPECT_EQ(r.drops, 4);
}

TEST(ParEdf, DropCostLowerBoundsOptimal) {
  // Par-EDF's drop cost never exceeds the drop cost of ANY m-resource
  // schedule; in particular OPT's total cost is an upper bound once
  // reconfigurations are free for Par-EDF.  (Lemma 3.7 direction.)
  for (const std::uint64_t seed : {5u, 6u, 7u, 8u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.num_colors = 3;
    params.min_scale = 1;
    params.max_scale = 3;
    params.horizon = 24;
    params.delta = 2;
    const Instance inst = make_random_batched(params);
    const ParEdfResult par = run_par_edf(inst, 1);
    const Cost opt = optimal_offline_cost(inst, 1);
    EXPECT_LE(par.drops, opt) << "seed " << seed;
  }
}

TEST(ParEdf, MoreResourcesNeverDropMore) {
  RandomBatchedParams params;
  params.seed = 3;
  params.horizon = 256;
  const Instance inst = make_random_batched(params);
  std::int64_t previous = -1;
  for (const int m : {1, 2, 4, 8}) {
    const ParEdfResult r = run_par_edf(inst, m);
    if (previous >= 0) {
      EXPECT_LE(r.drops, previous);
    }
    previous = r.drops;
  }
}

TEST(ParEdf, SubsequenceMonotonicity) {
  // Lemma 3.9 flavour: removing jobs never increases the number executed.
  InstanceBuilder big_builder;
  big_builder.delta(1);
  const ColorId a = big_builder.add_color(2);
  const ColorId b = big_builder.add_color(4);
  big_builder.add_jobs(a, 0, 2).add_jobs(a, 2, 2).add_jobs(b, 0, 4);
  const Instance big = big_builder.build();

  InstanceBuilder small_builder;
  small_builder.delta(1);
  const ColorId a2 = small_builder.add_color(2);
  const ColorId b2 = small_builder.add_color(4);
  small_builder.add_jobs(a2, 0, 2).add_jobs(b2, 0, 4);
  const Instance small = small_builder.build();

  const std::int64_t executed_small = run_par_edf(small, 1).executed;
  const std::int64_t executed_big = run_par_edf(big, 1).executed;
  EXPECT_GE(executed_big, executed_small);
}

TEST(ParEdf, RejectsBadM) {
  InstanceBuilder builder;
  builder.add_color(2);
  const Instance inst = builder.build();
  EXPECT_THROW((void)run_par_edf(inst, 0), InputError);
}

}  // namespace
}  // namespace rrs
