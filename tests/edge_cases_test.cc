// Edge-case sweep: boundary conditions across the whole stack that the
// module-focused tests do not reach.
#include <gtest/gtest.h>

#include "algs/adaptive.h"
#include "algs/distribute.h"
#include "algs/par_edf.h"
#include "algs/seq_edf.h"
#include "algs/registry.h"
#include "algs/varbatch.h"
#include "core/validator.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "offline/optimal.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/timeline.h"
#include "util/check.h"

namespace rrs {
namespace {

Instance empty_instance() {
  InstanceBuilder builder;
  builder.add_color(4);
  return builder.build();
}

TEST(EdgeCases, EveryAlgorithmHandlesEmptyInstance) {
  const Instance inst = empty_instance();
  for (const AlgorithmInfo& info : algorithm_registry()) {
    Schedule schedule;
    const RunRecord r = run_algorithm(inst, info.name, 8, &schedule);
    EXPECT_EQ(r.cost.total(), 0) << info.name;
    EXPECT_TRUE(validate(inst, schedule).ok) << info.name;
  }
}

TEST(EdgeCases, OfflineMachineryHandlesEmptyInstance) {
  const Instance inst = empty_instance();
  EXPECT_EQ(offline_lower_bound(inst, 1).best(), 0);
  EXPECT_EQ(best_offline_heuristic_cost(inst, 1), 0);
  EXPECT_EQ(optimal_offline_cost(inst, 2), 0);
  EXPECT_EQ(run_par_edf(inst, 1).drops, 0);
}

TEST(EdgeCases, SingleJobSingleRound) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(1);
  builder.add_jobs(c, 0, 1);
  const Instance inst = builder.build();
  EXPECT_EQ(inst.horizon(), 1);

  for (const std::string name : {"dlru-edf", "varbatch", "edf"}) {
    Schedule schedule;
    const RunRecord r = run_algorithm(inst, name, 8, &schedule);
    EXPECT_TRUE(validate(inst, schedule).ok) << name;
    // With Delta = 1 the single job wraps its counter instantly; the
    // winner either serves it (Delta + 0) or drops it (1).
    EXPECT_LE(r.cost.total(), 2) << name;
  }
}

TEST(EdgeCases, DelayBoundOnePassesEverywhere) {
  // D = 1 colors are batched by definition and have zero scheduling
  // slack: each job must run the round it arrives.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(1);
  for (Round t = 0; t < 32; ++t) builder.add_jobs(c, t, 1);
  const Instance inst = builder.build();
  ASSERT_TRUE(inst.is_batched());
  ASSERT_TRUE(inst.is_rate_limited());

  const RunRecord direct = run_algorithm(inst, "dlru-edf", 4);
  EXPECT_EQ(direct.cost.drops, 0);
  const RunRecord pipeline = run_algorithm(inst, "varbatch", 4);
  EXPECT_EQ(pipeline.cost.drops, 0) << "D=1 passes through untouched";
}

TEST(EdgeCases, HugeDeltaMakesDropsOptimal) {
  InstanceBuilder builder;
  builder.delta(1'000'000);
  const ColorId c = builder.add_color(8);
  builder.add_jobs(c, 0, 100);
  const Instance inst = builder.build();
  EXPECT_EQ(optimal_offline_cost(inst, 1), 100);
  const RunRecord r = run_algorithm(inst, "dlru-edf", 8);
  EXPECT_EQ(r.cost.total(), 100);  // never configures (Lemma 3.1 regime)
}

TEST(EdgeCases, DeltaOneDegeneratesToPagingLikeBehaviour) {
  // Delta = 1 (the Sleator-Tarjan paging special case direction): every
  // arrival wraps the counter, eligibility is instant.
  InstanceBuilder builder;
  builder.delta(1);
  std::vector<ColorId> colors;
  for (int c = 0; c < 6; ++c) colors.push_back(builder.add_color(4));
  for (Round t = 0; t < 64; t += 4) {
    builder.add_jobs(colors[static_cast<std::size_t>((t / 4) % 6)], t, 2);
  }
  const Instance inst = builder.build();
  const RunRecord r = run_algorithm(inst, "dlru-edf", 8);
  EXPECT_EQ(r.cost.drops, 0);
}

TEST(EdgeCases, ManyColorsFewResources) {
  InstanceBuilder builder;
  builder.delta(4);
  for (int c = 0; c < 64; ++c) {
    const ColorId color = builder.add_color(8);
    builder.add_jobs(color, 0, 8);
  }
  const Instance inst = builder.build();
  Schedule schedule;
  const RunRecord r = run_algorithm(inst, "dlru-edf", 4, &schedule);
  EXPECT_TRUE(validate(inst, schedule).ok);
  // Capacity is 2 colors x 2 slots x 8 rounds = 32 executions max.
  EXPECT_LE(r.executed, 32);
}

TEST(EdgeCases, GapsBetweenArrivalsSpanBoundaries) {
  // Long silent stretches between batches: eligibility resets, epochs
  // turn over, and the algorithm must re-earn eligibility each time.
  InstanceBuilder builder;
  builder.delta(3);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 4);
  builder.add_jobs(c, 400, 4);
  builder.add_jobs(c, 800, 4);
  const Instance inst = builder.build();
  Schedule schedule;
  const RunRecord r = run_algorithm(inst, "dlru-edf", 4, &schedule);
  EXPECT_TRUE(validate(inst, schedule).ok);
  EXPECT_EQ(r.executed + r.cost.drops, 12);
}

TEST(EdgeCases, AdaptiveOnEmptyAndTinyInstances) {
  AdaptiveSplitPolicy policy;
  EngineOptions options;
  options.num_resources = 8;
  options.replication = 2;
  EXPECT_EQ(run_policy(empty_instance(), policy, options).cost.total(), 0);
}

TEST(EdgeCases, TransformsOfEmptyInstances) {
  const Instance inst = empty_instance();
  const DistributeTransform dt = distribute_transform(inst);
  EXPECT_EQ(dt.rate_limited.jobs().size(), 0u);
  const VarBatchTransform vt = varbatch_transform(inst);
  EXPECT_EQ(vt.batched.jobs().size(), 0u);
  EXPECT_EQ(vt.batched.num_colors(), 1);
}

TEST(EdgeCases, MetricsAndTimelineOnDoubleSpeedSchedules) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 0, 4);
  const Instance inst = builder.build();

  const EngineResult r = run_ds_seq_edf(inst, 1, /*record_schedule=*/true);
  ASSERT_EQ(r.schedule.speed, 2);
  const ScheduleMetrics m = compute_metrics(inst, r.schedule);
  EXPECT_EQ(m.wait.count, r.executed);
  // 4 jobs in 2 rounds on one double-speed resource: full utilization.
  EXPECT_NEAR(m.utilization, 1.0, 1e-9);
  const auto timeline = compute_timeline(inst, r.schedule, 4);
  ASSERT_FALSE(timeline.empty());
  EXPECT_EQ(timeline[0].executions, 4);
}

TEST(EdgeCases, ValidatorHorizonBoundary) {
  // An execution in the very last round, one past it, and a job whose
  // window straddles the horizon.
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId c = builder.add_color(4);
  builder.add_jobs(c, 4, 1);  // window [4, 8), horizon 8
  const Instance inst = builder.build();
  Schedule ok;
  ok.num_resources = 1;
  ok.reconfigs = {{0, 0, 0, c}};
  ok.execs = {{7, 0, 0, 0}};
  EXPECT_TRUE(validate(inst, ok).ok);
  Schedule bad = ok;
  bad.execs[0].round = 8;
  EXPECT_FALSE(validate(inst, bad).ok);
}

TEST(EdgeCases, SeqEdfWithOneResource) {
  InstanceBuilder builder;
  builder.delta(1);
  const ColorId a = builder.add_color(4);
  const ColorId b = builder.add_color(4);
  builder.add_jobs(a, 0, 2).add_jobs(b, 0, 2);
  const Instance inst = builder.build();
  const EngineResult r = run_seq_edf(inst, 1, true);
  EXPECT_TRUE(validate(inst, r.schedule).ok);
  EXPECT_GE(r.executed, 2);  // at least one color fully served
}

}  // namespace
}  // namespace rrs
