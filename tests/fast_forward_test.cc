// Sparse-round fast-forward equivalence: a run with
// EngineOptions::fast_forward on must be bit-identical — costs, drops,
// reconfigurations, rounds, degraded accounting, policy stats, snapshot
// series — to the same run with it off, across every engine-driven
// algorithm, workload family, and seed, with and without fault plans,
// and through the sharded runner (± adaptive re-sharding).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/fault_plan.h"
#include "obs/observer.h"
#include "sim/runner.h"
#include "workload/datacenter.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace rrs {
namespace {

const char* const kStreamingAlgorithms[] = {
    "dlru", "edf", "dlru-edf", "adaptive", "seq-edf", "ds-seq-edf",
};

const char* const kFamilies[] = {
    "random-batched", "poisson", "flash-crowd", "datacenter",
};

/// Fresh streaming source for (family, seed).  Rates are kept low (sparse
/// streams) so the fast-forward path actually fires.
std::unique_ptr<ArrivalSource> make_source(const std::string& family,
                                           std::uint64_t seed) {
  if (family == "random-batched") {
    RandomBatchedParams params;
    params.horizon = 256;
    params.seed = seed;
    return std::make_unique<RandomBatchedSource>(params);
  }
  if (family == "poisson") {
    PoissonParams params;
    params.horizon = 512;
    params.mean_rate = 0.002;  // sparse: most rounds carry nothing
    params.seed = seed;
    return std::make_unique<PoissonSource>(params);
  }
  if (family == "flash-crowd") {
    FlashCrowdParams params;
    params.spike_start = 128;
    params.spike_end = 192;
    params.horizon = 512;
    params.seed = seed;
    return std::make_unique<FlashCrowdSource>(params);
  }
  if (family == "datacenter") {
    DatacenterParams params;
    params.horizon = 1024;
    params.seed = seed;
    return std::make_unique<DatacenterSource>(params);
  }
  ADD_FAILURE() << "unknown family " << family;
  return nullptr;
}

void expect_identical(const StreamRunRecord& on, const StreamRunRecord& off,
                      const std::string& what) {
  EXPECT_EQ(on.cost, off.cost) << what;
  EXPECT_EQ(on.executed, off.executed) << what;
  EXPECT_EQ(on.work_units, off.work_units) << what;
  EXPECT_EQ(on.arrived, off.arrived) << what;
  EXPECT_EQ(on.rounds, off.rounds) << what;
  EXPECT_EQ(on.peak_pending, off.peak_pending) << what;
  EXPECT_EQ(on.degraded, off.degraded) << what;
  EXPECT_EQ(on.stats, off.stats) << what;
}

using Cell = std::tuple<std::string, std::string, std::uint64_t>;

class FastForwardMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(FastForwardMatrix, BitIdenticalToSequentialRun) {
  const auto& [algorithm, family, seed] = GetParam();

  const auto slow_source = make_source(family, seed);
  const StreamRunRecord off =
      run_streaming(*slow_source, algorithm, 8, kInfiniteHorizon, nullptr,
                    false, nullptr, /*fast_forward=*/false);

  const auto fast_source = make_source(family, seed);
  const StreamRunRecord on =
      run_streaming(*fast_source, algorithm, 8, kInfiniteHorizon, nullptr,
                    false, nullptr, /*fast_forward=*/true);

  expect_identical(on, off, algorithm + "/" + family);
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const char* const algorithm : kStreamingAlgorithms) {
    for (const char* const family : kFamilies) {
      for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        cells.emplace_back(algorithm, family, seed);
      }
    }
  }
  return cells;
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     "_s" + std::to_string(std::get<2>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, FastForwardMatrix,
                         ::testing::ValuesIn(all_cells()), cell_name);

TEST(FastForwardFaults, IdenticalUnderCapacityChurn) {
  MtbfParams mtbf;
  mtbf.num_resources = 8;
  mtbf.horizon = 512;
  mtbf.mean_up = 100;
  mtbf.mean_down = 20;
  mtbf.seed = 5;
  const FaultPlan plan = make_mtbf_plan(mtbf);

  for (const char* const algorithm : kStreamingAlgorithms) {
    const auto slow_source = make_source("poisson", 7);
    const StreamRunRecord off =
        run_streaming(*slow_source, algorithm, 8, kInfiniteHorizon, &plan,
                      true, nullptr, /*fast_forward=*/false);
    const auto fast_source = make_source("poisson", 7);
    const StreamRunRecord on =
        run_streaming(*fast_source, algorithm, 8, kInfiniteHorizon, &plan,
                      true, nullptr, /*fast_forward=*/true);
    expect_identical(on, off, std::string(algorithm) + " under faults");
    EXPECT_GT(on.degraded.fault_events, 0) << "plan must actually fire";
  }
}

TEST(FastForwardSnapshots, SnapshotSeriesIsByteIdentical) {
  const auto run = [](bool fast_forward, std::string* json_out) {
    ObsConfig config;
    config.snapshot_every = 64;
    Observer observer(config);
    std::ostringstream sink;
    observer.snapshot_out = &sink;
    const auto source = make_source("poisson", 9);
    const StreamRunRecord record =
        run_streaming(*source, "dlru-edf", 8, kInfiniteHorizon, nullptr,
                      false, &observer, fast_forward);
    *json_out = sink.str();
    return record;
  };

  std::string on_json;
  std::string off_json;
  const StreamRunRecord on = run(true, &on_json);
  const StreamRunRecord off = run(false, &off_json);
  expect_identical(on, off, "observed run");
  EXPECT_FALSE(on_json.empty());
  // Snapshots fire at the same rounds with the same cumulative counters:
  // the JSON-lines series must match byte for byte.
  EXPECT_EQ(on_json, off_json);
}

TEST(FastForwardSharded, IdenticalAcrossShards) {
  for (const Round reshard_every : {Round{0}, Round{128}}) {
    ShardedRunOptions on_options;
    on_options.reshard_every = reshard_every;
    on_options.fast_forward = true;
    ShardedRunOptions off_options = on_options;
    off_options.fast_forward = false;

    const auto on_source = make_source("poisson", 11);
    const ShardedRunRecord on = run_streaming_sharded(
        *on_source, "dlru-edf", 16, 2, kInfiniteHorizon, on_options);
    const auto off_source = make_source("poisson", 11);
    const ShardedRunRecord off = run_streaming_sharded(
        *off_source, "dlru-edf", 16, 2, kInfiniteHorizon, off_options);

    const std::string what =
        "reshard_every=" + std::to_string(reshard_every);
    expect_identical(on.merged, off.merged, what);
    ASSERT_EQ(on.shards.size(), off.shards.size());
    for (std::size_t s = 0; s < on.shards.size(); ++s) {
      expect_identical(on.shards[s], off.shards[s],
                       what + " shard " + std::to_string(s));
    }
    EXPECT_EQ(on.reshard_rounds, off.reshard_rounds) << what;
    EXPECT_EQ(on.reshard_moved_colors, off.reshard_moved_colors) << what;
  }
}

TEST(FastForwardSkips, LongGapIsActuallyJumped) {
  // A two-burst instance with a 100k-round gap: the run must stay exact
  // AND finish the full horizon (rounds includes the skipped span).
  InstanceBuilder builder;
  const ColorId c = builder.add_color(/*d=*/8);
  builder.add_jobs(c, 0, 4);
  builder.add_jobs(c, 100000, 4);
  const Instance instance = builder.build();

  MaterializedSource on_source(instance);
  const StreamRunRecord on = run_streaming(on_source, "edf", 4);
  MaterializedSource off_source(instance);
  const StreamRunRecord off = run_streaming(
      off_source, "edf", 4, kInfiniteHorizon, nullptr, false, nullptr,
      /*fast_forward=*/false);

  expect_identical(on, off, "two-burst gap");
  EXPECT_EQ(on.arrived, 8);
  EXPECT_GT(on.rounds, 100000);
}

TEST(FastForwardContract, DefaultSourceHintNeverSkips) {
  // The base-class next_event_round returns k: an unaudited source is
  // never skipped past, so fast-forward on it degrades to the plain loop.
  class OpaqueSource final : public ArrivalSource {
   public:
    explicit OpaqueSource(const Instance& instance) : inner_(instance) {}
    [[nodiscard]] Cost delta() const override { return inner_.delta(); }
    [[nodiscard]] ColorId num_colors() const override {
      return inner_.num_colors();
    }
    [[nodiscard]] Round delay_bound(ColorId color) const override {
      return inner_.delay_bound(color);
    }
    [[nodiscard]] Cost drop_cost(ColorId color) const override {
      return inner_.drop_cost(color);
    }
    [[nodiscard]] Round horizon() const override { return inner_.horizon(); }
    [[nodiscard]] std::span<const Job> arrivals_in_round(Round k) override {
      ++pulls_;
      return inner_.arrivals_in_round(k);
    }
    [[nodiscard]] std::int64_t pulls() const { return pulls_; }

   private:
    MaterializedSource inner_;
    std::int64_t pulls_ = 0;
  };

  InstanceBuilder builder;
  const ColorId c = builder.add_color(/*d=*/4);
  builder.add_jobs(c, 0, 2);
  builder.add_jobs(c, 500, 2);
  const Instance instance = builder.build();

  OpaqueSource opaque(instance);
  const StreamRunRecord through = run_streaming(opaque, "edf", 4);
  MaterializedSource plain(instance);
  const StreamRunRecord reference = run_streaming(plain, "edf", 4);
  expect_identical(through, reference, "opaque source");
  // Every arrival-range round was pulled individually.
  EXPECT_GE(opaque.pulls(), 500);
}

}  // namespace
}  // namespace rrs
