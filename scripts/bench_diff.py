#!/usr/bin/env python3
"""Compare two bench JSON files family by family.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--budget-pct 30]

Two cell kinds are supported, distinguished per run record:

  * throughput cells — {"family": ..., "rounds_per_sec": ...}, the format
    bench_e9_throughput emits.  Higher is better; a family regresses when
    its candidate rounds/sec falls more than the budget below baseline.

  * interval cells — {"family": ..., "interval_lo": ..., "interval_hi":
    ...}, the format bench_e15_certified emits for certified brackets on
    the offline optimum (and on competitive ratios).  A *lower* upper end
    is better (a tighter certificate); a family regresses when the
    candidate's interval_hi rises more than the budget above baseline's,
    or when the candidate interval is wider than baseline's by more than
    the budget (a bracket that silently loosened).

Exits nonzero on any regression — the same verdict the streaming bench
applies internally via RRS_STREAMING_BASELINE, usable standalone on two
saved artifacts (e.g. the JSON uploaded by two CI runs, or a before/after
pair measured locally).

Families present in only one file also fail the verdict: a benchmark that
silently stopped running (or a baseline missing a committed cell) must
surface as a nonzero exit, not as a skipped row.  A family that changed
kind between the files fails the same way.  Retire or migrate a cell by
updating both files in the same change.
"""

from __future__ import annotations

import argparse
import json
import sys

Cell = tuple  # ("rps", value) | ("interval", lo, hi)


def load_runs(path: str) -> dict[str, Cell]:
    """family -> cell for every run record in the file."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}") from err
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise SystemExit(f"error: {path} has no runs")
    out: dict[str, Cell] = {}
    for run in runs:
        family = run.get("family")
        rps = run.get("rounds_per_sec")
        lo = run.get("interval_lo")
        hi = run.get("interval_hi")
        if isinstance(family, str) and isinstance(rps, (int, float)):
            out[family] = ("rps", float(rps))
        elif (
            isinstance(family, str)
            and isinstance(lo, (int, float))
            and isinstance(hi, (int, float))
            and float(lo) <= float(hi)
        ):
            out[family] = ("interval", float(lo), float(hi))
        else:
            raise SystemExit(f"error: malformed run record in {path}: {run}")
    return out


def diff_rps(base: Cell, cand: Cell, floor: float) -> tuple[str, str, bool]:
    ratio = cand[1] / base[1] if base[1] > 0 else float("inf")
    return f"{base[1]:.0f}", f"{cand[1]:.0f} ({ratio:.2f}x)", ratio < floor


def diff_interval(
    base: Cell, cand: Cell, ceiling: float
) -> tuple[str, str, bool]:
    _, base_lo, base_hi = base
    _, cand_lo, cand_hi = cand
    # Tightness regression: the certified upper end drifted up, or the
    # bracket width grew, beyond budget.  Zero baselines tolerate zero.
    hi_bad = cand_hi > (base_hi * ceiling if base_hi > 0 else 0)
    width_bad = (cand_hi - cand_lo) > max(
        (base_hi - base_lo) * ceiling, base_hi * (ceiling - 1.0)
    )
    return (
        f"[{base_lo:g}, {base_hi:g}]",
        f"[{cand_lo:g}, {cand_hi:g}]",
        hi_bad or width_bad,
    )


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two bench JSON files and apply the regression "
        "budget (throughput and certified-interval cells)."
    )
    parser.add_argument("baseline", help="reference bench JSON")
    parser.add_argument("candidate", help="measured bench JSON")
    parser.add_argument(
        "--budget-pct",
        type=float,
        default=30.0,
        help="allowed regression per family, in percent (default: 30)",
    )
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    candidate = load_runs(args.candidate)
    floor = 1.0 - args.budget_pct / 100.0
    ceiling = 1.0 + args.budget_pct / 100.0

    width = max(len(f) for f in baseline | candidate)
    print(
        f"{'family':<{width}}  {'baseline':>16}  {'candidate':>24}  verdict"
    )
    regressions = 0
    missing = 0
    for family in sorted(baseline | candidate):
        base = baseline.get(family)
        cand = candidate.get(family)
        if base is None or cand is None:
            where = "baseline" if base is None else "candidate"
            missing += 1
            print(f"{family:<{width}}  MISSING from {where}")
            continue
        if base[0] != cand[0]:
            missing += 1
            print(f"{family:<{width}}  KIND MISMATCH ({base[0]} vs {cand[0]})")
            continue
        if base[0] == "rps":
            base_s, cand_s, regressed = diff_rps(base, cand, floor)
        else:
            base_s, cand_s, regressed = diff_interval(base, cand, ceiling)
        regressions += regressed
        verdict = (
            f"REGRESSION beyond {args.budget_pct:g}% budget"
            if regressed
            else "ok"
        )
        print(f"{family:<{width}}  {base_s:>16}  {cand_s:>24}  {verdict}")

    if regressions or missing:
        parts = []
        if regressions:
            parts.append(f"{regressions} family(ies) beyond budget")
        if missing:
            parts.append(f"{missing} family(ies) missing or mismatched")
        print(f"FAIL: {'; '.join(parts)}")
        return 1
    print("PASS: all families present and within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
