#!/usr/bin/env python3
"""Compare two BENCH_streaming.json files family by family.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--budget-pct 30]

Reads the per-family rounds_per_sec values from both files (the format
bench_e9_throughput emits, also used for the committed baseline under
bench/baseline/) and prints a ratio table.  Exits nonzero when any
family present in both files regresses by more than the budget —the
same verdict the bench applies internally via RRS_STREAMING_BASELINE,
usable standalone on two saved artifacts (e.g. the JSON uploaded by two
CI runs, or a before/after pair measured locally).

Families present in only one file also fail the verdict: a benchmark
that silently stopped running (or a baseline missing a committed cell)
must surface as a nonzero exit, not as a skipped row.  Retire a cell by
removing it from both files in the same change.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_runs(path: str) -> dict[str, float]:
    """family -> rounds_per_sec for every run record in the file."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}") from err
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise SystemExit(f"error: {path} has no runs")
    out: dict[str, float] = {}
    for run in runs:
        family = run.get("family")
        rps = run.get("rounds_per_sec")
        if not isinstance(family, str) or not isinstance(rps, (int, float)):
            raise SystemExit(f"error: malformed run record in {path}: {run}")
        out[family] = float(rps)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_streaming.json files and apply the "
        "streaming regression budget."
    )
    parser.add_argument("baseline", help="reference BENCH_streaming.json")
    parser.add_argument("candidate", help="measured BENCH_streaming.json")
    parser.add_argument(
        "--budget-pct",
        type=float,
        default=30.0,
        help="allowed rounds/sec regression per family, in percent "
        "(default: 30)",
    )
    args = parser.parse_args()

    baseline = load_runs(args.baseline)
    candidate = load_runs(args.candidate)
    floor = 1.0 - args.budget_pct / 100.0

    width = max(len(f) for f in baseline | candidate)
    print(
        f"{'family':<{width}}  {'baseline':>12}  {'candidate':>12}  "
        f"{'ratio':>7}  verdict"
    )
    regressions = 0
    missing = 0
    for family in sorted(baseline | candidate):
        base = baseline.get(family)
        cand = candidate.get(family)
        if base is None or cand is None:
            where = "baseline" if base is None else "candidate"
            missing += 1
            print(f"{family:<{width}}  MISSING from {where}")
            continue
        ratio = cand / base if base > 0 else float("inf")
        regressed = ratio < floor
        regressions += regressed
        verdict = (
            f"REGRESSION beyond {args.budget_pct:g}% budget"
            if regressed
            else "ok"
        )
        print(
            f"{family:<{width}}  {base:>12.0f}  {cand:>12.0f}  "
            f"{ratio:>6.2f}x  {verdict}"
        )

    if regressions or missing:
        parts = []
        if regressions:
            parts.append(f"{regressions} family(ies) beyond budget")
        if missing:
            parts.append(f"{missing} family(ies) missing from one file")
        print(f"FAIL: {'; '.join(parts)}")
        return 1
    print("PASS: all families present and within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
