#!/usr/bin/env python3
"""Enforce line-coverage floors from an llvm-cov export summary.

Usage: check_coverage.py <coverage.json> <floor-file>

`coverage.json` is the output of `llvm-cov export -summary-only` (the
source-based coverage JSON: data[0].files[].summary.lines plus
data[0].totals.lines).  The floor file lists one floor per line:

    # prefix        min-line-coverage-percent
    src/obs/        90.0
    total           80.0

A `total` row checks the repo-wide line percentage (the non-regression
floor: ratchet it up when coverage improves, never down).  Any other row
aggregates covered/total lines over the files whose path contains the
prefix, so floors survive absolute-path differences between runners.
Exits nonzero, listing every violation, when a floor is missed; a prefix
that matches no files is also an error (a silently-renamed directory
must not disable its floor).
"""

import json
import sys


def parse_floors(path):
    floors = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            prefix, pct = line.split()
            floors.append((prefix, float(pct)))
    if not floors:
        raise SystemExit(f"error: no floors found in {path}")
    return floors


def line_stats(summary):
    lines = summary["lines"]
    return lines["covered"], lines["count"]


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1], encoding="utf-8") as f:
        export = json.load(f)
    data = export["data"][0]
    floors = parse_floors(sys.argv[2])

    failures = []
    for prefix, floor in floors:
        if prefix == "total":
            covered, count = line_stats(data["totals"])
            matched = None
        else:
            covered = count = 0
            matched = 0
            for entry in data["files"]:
                if prefix in entry["filename"]:
                    c, n = line_stats(entry["summary"])
                    covered += c
                    count += n
                    matched += 1
        pct = 100.0 * covered / count if count else 0.0
        status = "ok" if pct >= floor else "FAIL"
        where = "total" if matched is None else f"{prefix} ({matched} files)"
        print(f"{status:4}  {where}: {pct:.2f}% line coverage "
              f"({covered}/{count} lines), floor {floor:.2f}%")
        if matched == 0:
            failures.append(f"{prefix}: no files matched this prefix")
        elif pct < floor:
            failures.append(f"{where}: {pct:.2f}% < floor {floor:.2f}%")

    if failures:
        print("\ncoverage floor violations:")
        for f in failures:
            print(f"  {f}")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
