// A1 — ablation: the LRU/EDF capacity split in dLRU-EDF.
//
// DESIGN.md calls out the 50/50 capacity split of Section 3.1.3 as a
// design choice worth ablating.  This bench sweeps lru_fraction over both
// adversarial constructions, a random mix, and the intro scenario, and
// adds the ARC-inspired adaptive variant (algs/adaptive.h).  Expected
// shape: fraction 0 (pure deadlines) blows up on Appendix B; only the
// EXISTENCE of an EDF share matters on Appendix A (even a 0.9 split holds,
// since one deadline slot drains the backlog); the paper's 0.5 is a safe
// middle; adaptive tracks the best fixed split within a small factor.
#include <iostream>

#include "algs/adaptive.h"
#include "algs/dlru_edf.h"
#include "core/engine.h"
#include "bench_common.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"
#include "workload/intro_scenario.h"
#include "workload/random_batched.h"

namespace {

rrs::Cost run_split(const rrs::Instance& inst, int n, double fraction) {
  rrs::DLruEdfPolicy policy(fraction);
  rrs::EngineOptions options;
  options.num_resources = n;
  options.replication = 2;
  options.record_schedule = false;
  return run_policy(inst, policy, options).cost.total();
}

rrs::Cost run_adaptive(const rrs::Instance& inst, int n) {
  rrs::AdaptiveSplitPolicy policy;
  rrs::EngineOptions options;
  options.num_resources = n;
  options.replication = 2;
  options.record_schedule = false;
  return run_policy(inst, policy, options).cost.total();
}

}  // namespace

int main() {
  using namespace rrs;
  bench::banner("A1 (ablation)",
                "LRU/EDF capacity split sweep + adaptive variant");

  struct Workload {
    std::string label;
    Instance instance;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"Appendix A (recency killer)",
       make_adversary_a({.n = 8, .delta = 2, .j = 7, .k = 9}).instance});
  workloads.push_back(
      {"Appendix B (deadline killer)",
       make_adversary_b({.n = 8, .j = 4, .k = 8}).instance});
  {
    RandomBatchedParams params;
    params.seed = 17;
    params.delta = 8;
    params.num_colors = 16;
    params.horizon = 2048;
    workloads.push_back({"random rate-limited",
                         make_random_batched(params)});
  }
  {
    IntroScenarioParams params;
    params.seed = 3;
    params.num_short_colors = 4;
    workloads.push_back({"intro scenario",
                         make_intro_scenario(params).instance});
  }

  const int n = 8;
  const std::vector<double> fractions{0.0, 0.25, 0.5, 0.75, 0.9};
  std::vector<std::string> header{"workload"};
  for (const double f : fractions) header.push_back("f=" + fmt_double(f, 2));
  header.emplace_back("adaptive");
  TextTable table(header);
  CsvWriter csv(header);

  bool edf_only_fails_b = false;
  bool paper_split_safe = true;
  bool adaptive_tracks = true;
  for (const Workload& w : workloads) {
    std::vector<std::string> row{w.label};
    Cost best = -1, at_half = 0, at_zero = 0;
    for (const double f : fractions) {
      const Cost cost = run_split(w.instance, n, f);
      if (best < 0 || cost < best) best = cost;
      if (f == 0.5) at_half = cost;
      if (f == 0.0) at_zero = cost;
      row.push_back(std::to_string(cost));
    }
    const Cost adaptive = run_adaptive(w.instance, n);
    row.push_back(std::to_string(adaptive));
    table.add_row(row);
    csv.add_row(row);

    if (w.label.find("Appendix B") != std::string::npos) {
      edf_only_fails_b = at_zero > 2 * at_half;
    }
    paper_split_safe &= at_half <= 3 * best;
    adaptive_tracks &= adaptive <= 4 * best;
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "a1_split");

  std::cout << "\npaper: the combination needs BOTH halves; the 50/50 split "
               "is the proved configuration.\n";
  bool ok = true;
  ok &= bench::verdict(edf_only_fails_b,
                       "f=0 (no recency half) blows up on Appendix B");
  ok &= bench::verdict(paper_split_safe,
                       "the paper's f=0.5 is within 3x of the best fixed "
                       "split everywhere");
  ok &= bench::verdict(adaptive_tracks,
                       "adaptive variant tracks the best fixed split (4x)");
  return ok ? 0 : 1;
}
