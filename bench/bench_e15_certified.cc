// E15 — certified competitive-ratio brackets (exact offline at mid scale).
//
// E3–E5 report ratio brackets [cost/greedyUB, cost/closedFormLB] whose
// width is pure measurement slack: the online cost is exact, only the
// denominator OPT(m) is bracketed.  This bench re-runs representative
// E3/E4/E5 cells at mid scale through measure_ratio_certified, replacing
// the closed-form bracket with the branch-and-bound certified interval
// [best_bound, incumbent] (exact_bnb.h) — exact when the search closes.
// The PASS conditions are structural: every certified interval must nest
// strictly inside the closed-form bracket's denominators, and at least
// one cell must measurably narrow.
//
// Emits BENCH_e15_certified.json with interval-valued cells (interval_lo
// = cost/incumbent, interval_hi = cost/best_bound) for
// scripts/bench_diff.py: a later run whose interval_hi drifts up lost
// certification tightness.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "sim/ratio.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E15 (certified brackets)",
                "branch-and-bound certified intervals narrow the E3-E5 "
                "ratio denominators");

  struct Cell {
    std::string family;
    std::string algorithm;
    Instance instance;
    int n = 8;
    int m = 1;
  };
  std::vector<Cell> cells;

  // E3 (Theorem 1): rate-limited batched, dLRU-EDF at n = 8m.
  for (const Cost delta : {2, 8}) {
    RandomBatchedParams p;
    p.seed = 42;
    p.delta = delta;
    p.num_colors = 8;
    p.min_scale = 2;
    p.max_scale = 4;
    p.horizon = 256;
    cells.push_back({"e3_rate_limited_delta" + std::to_string(delta),
                     "dlru-edf", make_random_batched(p)});
  }
  // E4 (Theorem 2): over-limit bursts, Distribute.
  {
    RandomBatchedParams p;
    p.seed = 7;
    p.delta = 4;
    p.num_colors = 8;
    p.min_scale = 2;
    p.max_scale = 4;
    p.horizon = 256;
    p.burst_factor = 4.0;  // bursts past the rate limit
    cells.push_back({"e4_burst4x", "distribute", make_random_batched(p)});
  }
  // E5 (Theorem 3 + section 5.3): unbatched Poisson, VarBatch, both
  // delay-bound regimes.
  for (const bool arbitrary : {false, true}) {
    PoissonParams p;
    p.seed = 11;
    p.delta = 4;
    p.num_colors = 8;
    p.min_delay = 4;
    p.max_delay = 32;
    p.arbitrary_delays = arbitrary;
    p.mean_rate = 0.15;
    p.horizon = 256;
    cells.push_back({std::string("e5_poisson_") +
                         (arbitrary ? "arbitrary" : "pow2"),
                     "varbatch", make_poisson(p)});
  }

  TextTable table({"cell", "alg", "LB", "UB", "bnb LB", "bnb UB", "closed",
                   "ratio<=", "cert<="});
  CsvWriter csv({"cell", "alg", "lb", "ub", "bnb_lb", "bnb_ub", "closed",
                 "ratio_vs_lb", "ratio_upper"});

  bool nested = true;
  bool narrowed = false;
  std::ostringstream runs;
  bool first = true;
  for (const Cell& cell : cells) {
    BnbOptions options;
    options.max_nodes = 2'000'000;
    options.max_seconds = 20.0;
    const RatioReport r = measure_ratio_certified(cell.instance,
                                                  cell.algorithm, cell.n,
                                                  cell.m, options);
    // Nesting is structural (best_bound >= LB is RRS_CHECKed inside;
    // incumbent <= greedy by seeding) — verify the emitted report anyway.
    nested = nested && r.best_bound >= r.lower_bound &&
             r.certified_ub <= r.heuristic_ub;
    narrowed = narrowed || r.best_bound > r.lower_bound ||
               r.certified_ub < r.heuristic_ub;

    const auto fmt = [](double v) {
      std::ostringstream os;
      os.precision(3);
      os << std::fixed << v;
      return os.str();
    };
    table.add_row({cell.family, cell.algorithm,
                   std::to_string(r.lower_bound),
                   std::to_string(r.heuristic_ub),
                   std::to_string(r.best_bound),
                   std::to_string(r.certified_ub),
                   r.opt_closed ? "yes" : "no", fmt(r.ratio_vs_lb),
                   fmt(r.ratio_upper)});
    csv.add_row({cell.family, cell.algorithm, std::to_string(r.lower_bound),
                 std::to_string(r.heuristic_ub),
                 std::to_string(r.best_bound),
                 std::to_string(r.certified_ub),
                 r.opt_closed ? "1" : "0", fmt(r.ratio_vs_lb),
                 fmt(r.ratio_upper)});

    if (!first) runs << ",\n";
    first = false;
    runs << "    {\n"
         << "      \"family\": \"" << cell.family << "\",\n"
         << "      \"algorithm\": \"" << cell.algorithm << "\",\n"
         << "      \"opt_closed\": " << (r.opt_closed ? "true" : "false")
         << ",\n"
         << "      \"best_bound\": " << r.best_bound << ",\n"
         << "      \"certified_ub\": " << r.certified_ub << ",\n"
         << "      \"interval_lo\": " << fmt(r.ratio_lower) << ",\n"
         << "      \"interval_hi\": " << fmt(r.ratio_upper) << "\n"
         << "    }";
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e15_certified");

  std::ofstream out("BENCH_e15_certified.json");
  out << "{\n  \"runs\": [\n" << runs.str() << "\n  ]\n}\n";
  out.close();
  std::cout << "(json: BENCH_e15_certified.json)\n";

  bool ok = true;
  ok &= bench::verdict(nested,
                       "every certified interval nests inside the "
                       "closed-form bracket");
  ok &= bench::verdict(narrowed,
                       "at least one E3-E5 denominator bracket measurably "
                       "narrowed");
  return ok ? 0 : 1;
}
