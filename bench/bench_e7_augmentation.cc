// E7 — resource augmentation: how much extra capacity does dLRU-EDF
// actually need?
//
// Theorem 1 is proved at n = 8m.  This bench sweeps the augmentation
// factor n/m on fixed workloads (one random rate-limited mix, plus both
// appendix adversaries) and reports cost and drops per n.  Expected shape:
// cost falls steeply while n/m is small, then flattens — the theorem's
// constant factor 8 is sufficient, and empirically less is usually enough.
#include <iostream>

#include "bench_common.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/runner.h"
#include "workload/adversary_dlru.h"
#include "workload/adversary_edf.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E7 (augmentation)",
                "dLRU-EDF cost vs augmentation factor n/m (m = 1)");

  struct Workload {
    std::string label;
    Instance instance;
  };
  std::vector<Workload> workloads;
  {
    RandomBatchedParams params;
    params.seed = 5;
    params.delta = 8;
    params.num_colors = 16;
    params.horizon = 2048;
    workloads.push_back({"random rate-limited",
                         make_random_batched(params)});
  }
  workloads.push_back(
      {"Appendix A adversary",
       make_adversary_a({.n = 8, .delta = 2, .j = 7, .k = 9}).instance});
  workloads.push_back(
      {"Appendix B adversary",
       make_adversary_b({.n = 8, .j = 4, .k = 8}).instance});

  const int m = 1;
  TextTable table({"workload", "n", "n/m", "cost", "reconfig", "drops",
                   "ratio<="});
  CsvWriter csv({"workload", "n", "cost", "reconfig", "drops", "ratio_lb"});

  bool bounded_at_8m = true;
  bool monotone = true;
  for (const Workload& w : workloads) {
    const Cost lb = offline_lower_bound(w.instance, m).best();
    Cost previous = -1;
    for (const int n : {4, 8, 16, 32}) {
      const RunRecord r = run_algorithm(w.instance, "dlru-edf", n);
      const double ratio =
          lb > 0 ? static_cast<double>(r.cost.total()) /
                       static_cast<double>(lb)
                 : 1.0;
      if (n == 8 * m) bounded_at_8m &= ratio < 8.0;
      if (previous >= 0) monotone &= r.cost.total() <= previous * 2;
      previous = r.cost.total();
      table.add_row({w.label, std::to_string(n),
                     std::to_string(n / m), std::to_string(r.cost.total()),
                     std::to_string(r.cost.reconfig_cost),
                     std::to_string(r.cost.drops), fmt_ratio(ratio)});
      csv.add_row({w.label, std::to_string(n),
                   std::to_string(r.cost.total()),
                   std::to_string(r.cost.reconfig_cost),
                   std::to_string(r.cost.drops), fmt_double(ratio)});
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e7_augmentation");

  std::cout << "\npaper: constant competitiveness needs only a constant "
               "augmentation factor (Theorem 1 proves it at n = 8m).\n"
               "Extra resources beyond 8m may keep helping on saturated "
               "workloads — the theorem bounds the ratio, not the curve.\n";
  bool ok = true;
  ok &= bench::verdict(bounded_at_8m,
                       "ratio vs certified LB(m) below a small constant at "
                       "the theorem's n = 8m");
  ok &= bench::verdict(monotone,
                       "adding resources never substantially hurts");
  return ok ? 0 : 1;
}
