// A2 — ablation: the replication invariant (each cached color in two
// locations).
//
// Section 3.1's reconfiguration phase spends half the cache on replicas:
// every cached color occupies two locations, halving the number of
// distinct colors but doubling per-color drain rate.  The proofs lean on
// this (Lemma 3.10 couples dLRU-EDF's 2-per-round drain to DS-Seq-EDF's
// two mini-rounds).  Empirically, on RATE-LIMITED inputs one location per
// color already suffices — at most D_l jobs arrive per D_l-round block —
// so replication is an analysis artifact there and replication 1 should
// never lose.  Only bursts beyond the rate limit (> D_l jobs per block)
// can use the second location's drain.  This bench measures both regimes.
#include <iostream>

#include "algs/dlru_edf.h"
#include "bench_common.h"
#include "core/engine.h"
#include "workload/adversary_edf.h"
#include "workload/random_batched.h"

namespace {

rrs::CostBreakdown run_repl(const rrs::Instance& inst, int n,
                            int replication) {
  rrs::DLruEdfPolicy policy;
  rrs::EngineOptions options;
  options.num_resources = n;
  options.replication = replication;
  options.record_schedule = false;
  return run_policy(inst, policy, options).cost;
}

}  // namespace

int main() {
  using namespace rrs;
  bench::banner("A2 (ablation)",
                "replication 2 (paper) vs replication 1 (more distinct "
                "colors)");

  struct Workload {
    std::string label;
    bool rate_limited;
    Instance instance;
  };
  std::vector<Workload> workloads;
  {
    RandomBatchedParams params;
    params.seed = 23;
    params.delta = 8;
    params.num_colors = 48;
    params.min_scale = 4;
    params.max_scale = 6;
    params.horizon = 2048;
    params.burst_factor = 0.25;
    workloads.push_back(
        {"48 light colors (rate-limited)", true,
         make_random_batched(params)});
  }
  {
    RandomBatchedParams params;
    params.seed = 24;
    params.delta = 8;
    params.num_colors = 6;
    params.min_scale = 4;
    params.max_scale = 6;
    params.horizon = 2048;
    params.burst_factor = 1.0;
    workloads.push_back(
        {"6 heavy colors (rate-limited)", true,
         make_random_batched(params)});
  }
  workloads.push_back({"Appendix B adversary (rate-limited)", true,
                       make_adversary_b({.n = 8, .j = 4, .k = 8}).instance});
  {
    // Bursts at twice the rate limit: the only regime where the second
    // location's drain can pay for itself.
    RandomBatchedParams params;
    params.seed = 25;
    params.delta = 8;
    params.num_colors = 6;
    params.min_scale = 4;
    params.max_scale = 6;
    params.horizon = 2048;
    params.burst_factor = 2.0;
    workloads.push_back(
        {"6 heavy colors (2x over-limit)", false,
         make_random_batched(params)});
  }

  const int n = 8;
  TextTable table({"workload", "repl", "distinct cap", "reconfig", "drops",
                   "total", "repl2/repl1"});
  CsvWriter csv({"workload", "repl", "reconfig", "drops", "total"});
  bool repl1_never_loses_rate_limited = true;
  double rate_limited_worst_gap = 0.0, over_limit_gap = 0.0;
  for (const Workload& w : workloads) {
    Cost totals[3] = {0, 0, 0};
    for (const int repl : {1, 2}) {
      const CostBreakdown cost = run_repl(w.instance, n, repl);
      totals[repl] = cost.total();
      table.add_row(
          {w.label, std::to_string(repl), std::to_string(n / repl),
           std::to_string(cost.reconfig_cost), std::to_string(cost.drops),
           std::to_string(cost.total()),
           repl == 2 ? fmt_ratio(static_cast<double>(totals[2]) /
                                 static_cast<double>(std::max<Cost>(
                                     1, totals[1])))
                     : "-"});
      csv.add_row({w.label, std::to_string(repl),
                   std::to_string(cost.reconfig_cost),
                   std::to_string(cost.drops),
                   std::to_string(cost.total())});
    }
    const double gap = static_cast<double>(totals[2]) /
                       static_cast<double>(std::max<Cost>(1, totals[1]));
    if (w.rate_limited) {
      repl1_never_loses_rate_limited &= totals[1] <= totals[2];
      rate_limited_worst_gap = std::max(rate_limited_worst_gap, gap);
    } else {
      over_limit_gap = gap;
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "a2_replication");

  std::cout << "\nOn rate-limited inputs one location per color suffices by "
               "definition (<= D_l jobs per block), so the paper's "
               "replication is an analysis device (the Lemma 3.10 "
               "coupling), not a practical win; over-limit bursts are "
               "where the second location earns its keep.\n";
  bool ok = true;
  ok &= bench::verdict(repl1_never_loses_rate_limited,
                       "replication 1 never loses on rate-limited inputs "
                       "(replication is an analysis artifact there)");
  ok &= bench::verdict(over_limit_gap < rate_limited_worst_gap,
                       "over-limit bursts narrow replication's disadvantage");
  return ok ? 0 : 1;
}
