// Shared scaffolding for the experiment binaries (E1-E9).
//
// Each bench prints a header naming the paper claim it reproduces, one or
// more aligned tables (the repository's stand-in for the paper's result
// tables), and a PASS/FAIL verdict line per claim so EXPERIMENTS.md and CI
// can consume the output.  Set RRS_BENCH_CSV_DIR to also get CSV files.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/csv.h"
#include "sim/table.h"

namespace rrs::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==============================================================="
               "=\n"
            << id << ": " << claim << "\n"
            << "==============================================================="
               "=\n";
}

/// Prints a claim verdict line ("[PASS] ..." / "[FAIL] ...").
inline bool verdict(bool ok, const std::string& what) {
  std::cout << (ok ? "[PASS] " : "[FAIL] ") << what << "\n";
  return ok;
}

/// Writes `csv` to $RRS_BENCH_CSV_DIR/<name>.csv when the env var is set.
inline void maybe_write_csv(const CsvWriter& csv, const std::string& name) {
  const char* dir = std::getenv("RRS_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  csv.write_file(path);
  std::cout << "(csv: " << path << ")\n";
}

}  // namespace rrs::bench
