// E5 — Theorem 3 + Section 5.3: VarBatch solves the general problem
// [Delta | 1 | D_l | 1], including arbitrary (non-power-of-two) delay
// bounds.
//
// Unbatched Poisson workloads (nothing aligned to delay-bound multiples)
// are run through the full pipeline (VarBatch -> Distribute -> dLRU-EDF)
// with n = 8m, for both power-of-two and arbitrary delay bounds, across
// load levels.  The bench reports cost against the offline bracket; the
// theorem predicts a constant ratio throughout.
#include <iostream>

#include "bench_common.h"
#include "sim/ratio.h"
#include "sim/sweep.h"
#include "workload/poisson.h"

int main() {
  using namespace rrs;
  bench::banner("E5 (Theorem 3 + 5.3)",
                "VarBatch pipeline on unbatched arrivals, pow2 and "
                "arbitrary delay bounds");

  const int m = 1;
  const int n = 8 * m;
  TextTable table({"delays", "rate", "jobs", "LB(m)", "UB(m)", "varbatch",
                   "drops", "ratio<=", "ratio>="});
  CsvWriter csv({"delays", "rate", "jobs", "lb", "ub", "cost", "drops",
                 "ratio_lb", "ratio_ub"});

  std::vector<std::function<std::vector<std::string>()>> cells;
  for (const bool arbitrary : {false, true}) {
    for (const double rate : {0.05, 0.15, 0.4}) {
      cells.emplace_back([arbitrary, rate, m, n] {
        PoissonParams params;
        params.seed = 13;
        params.delta = 8;
        params.num_colors = 12;
        params.horizon = 2048;
        params.mean_rate = rate;
        params.arbitrary_delays = arbitrary;
        if (arbitrary) {
          params.min_delay = 3;
          params.max_delay = 150;
        }
        const Instance inst = make_poisson(params);
        const RatioReport report = measure_ratio(inst, "varbatch", n, m);
        return std::vector<std::string>{
            arbitrary ? "arbitrary" : "pow2",
            fmt_double(rate, 2),
            std::to_string(inst.jobs().size()),
            std::to_string(report.lower_bound),
            std::to_string(report.heuristic_ub),
            std::to_string(report.online.cost.total()),
            std::to_string(report.online.cost.drops),
            fmt_ratio(report.ratio_vs_lb),
            fmt_ratio(report.ratio_vs_ub),
        };
      });
    }
  }

  double worst_ratio_vs_ub = 0.0;
  for (const auto& row : run_sweep(cells)) {
    table.add_row(row);
    csv.add_row({row[0], row[1], row[2], row[3], row[4], row[5], row[6],
                 row[7].substr(1), row[8].substr(1)});
    worst_ratio_vs_ub =
        std::max(worst_ratio_vs_ub, std::stod(row[8].substr(1)));
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e5_varbatch");

  std::cout << "\npaper: VarBatch is resource competitive for the general "
               "problem; Section 5.3 extends to arbitrary delay bounds.\n"
               "(ratio>= uses the greedy offline UB — a pessimistic "
               "denominator, so even it must stay constant.)\n";
  return bench::verdict(worst_ratio_vs_ub < 12.0,
                        "pipeline ratio bounded on pow2 AND arbitrary "
                        "delay bounds")
             ? 0
             : 1;
}
