// E1 — Appendix A: dLRU is not resource competitive.
//
// Reproduces the paper's Appendix A lower-bound construction: n/2
// short-term colors (delay 2^j) plus one long-term backlog color (delay
// 2^k), with 2^k > 2^{j+1} > n * Delta.  The paper proves dLRU's
// competitive ratio is Omega(2^{j+1} / (n Delta)) — unbounded in j — while
// Theorem 1's dLRU-EDF stays constant.  We sweep j (k = j + 2) and report
// both algorithms' cost against the exact Appendix A OFF schedule.
#include <iostream>

#include "bench_common.h"
#include "core/validator.h"
#include "offline/appendix_off.h"
#include "sim/runner.h"
#include "workload/adversary_dlru.h"

int main() {
  using namespace rrs;
  bench::banner("E1 (Appendix A)",
                "dLRU unbounded vs dLRU-EDF constant on the recency killer");

  const int n = 8;
  const Cost delta = 2;
  TextTable table({"j", "k", "jobs", "OFF cost", "dLRU cost", "dLRU ratio",
                   "dLRU-EDF cost", "dLRU-EDF ratio"});
  CsvWriter csv({"j", "k", "off", "dlru", "dlru_ratio", "dlru_edf",
                 "dlru_edf_ratio"});

  double first_dlru_ratio = 0, last_dlru_ratio = 0, worst_combo_ratio = 0;
  for (int j = 5; j <= 10; ++j) {
    AdversaryAParams params;
    params.n = n;
    params.delta = delta;
    params.j = j;
    params.k = j + 2;
    const AdversaryAInstance adv = make_adversary_a(params);

    const Cost off =
        validate_or_throw(adv.instance, appendix_a_off_schedule(adv)).total();
    const RunRecord dlru = run_algorithm(adv.instance, "dlru", n);
    const RunRecord combo = run_algorithm(adv.instance, "dlru-edf", n);

    const double dlru_ratio =
        static_cast<double>(dlru.cost.total()) / static_cast<double>(off);
    const double combo_ratio =
        static_cast<double>(combo.cost.total()) / static_cast<double>(off);
    if (j == 5) first_dlru_ratio = dlru_ratio;
    last_dlru_ratio = dlru_ratio;
    worst_combo_ratio = std::max(worst_combo_ratio, combo_ratio);

    table.add_row({std::to_string(j), std::to_string(params.k),
                   std::to_string(adv.instance.jobs().size()),
                   std::to_string(off), std::to_string(dlru.cost.total()),
                   fmt_ratio(dlru_ratio), std::to_string(combo.cost.total()),
                   fmt_ratio(combo_ratio)});
    csv.add_row({std::to_string(j), std::to_string(params.k),
                 std::to_string(off), std::to_string(dlru.cost.total()),
                 fmt_double(dlru_ratio), std::to_string(combo.cost.total()),
                 fmt_double(combo_ratio)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e1_dlru_lb");

  std::cout << "\npaper: dLRU ratio grows ~2x per unit of j; dLRU-EDF "
               "constant.\n";
  bool ok = true;
  ok &= bench::verdict(last_dlru_ratio > 3.0 * first_dlru_ratio,
                       "dLRU ratio grows without bound as j grows");
  ok &= bench::verdict(worst_combo_ratio < 3.0,
                       "dLRU-EDF stays within a small constant of OFF");
  return ok ? 0 : 1;
}
