// E11 — extension: latency anatomy of the algorithms and reductions.
//
// Cost (the paper's objective) hides WHEN jobs run inside their windows.
// This bench uses the metrics module to expose wait-time and slack
// distributions: the VarBatch half-block delay provably pushes every
// execution into the next half-block, so its minimum wait is bounded below
// by the per-color half-block length — visible here as a large p50 wait —
// while direct dLRU-EDF often executes jobs the round they arrive.
// Utilization and service rate complete the picture.
#include <iostream>

#include "bench_common.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E11 (extension)",
                "wait/slack distributions: direct core vs reduction "
                "pipeline");

  RandomBatchedParams params;
  params.seed = 41;
  params.delta = 8;
  params.num_colors = 12;
  params.min_scale = 3;
  params.max_scale = 6;
  params.horizon = 2048;
  const Instance inst = make_random_batched(params);
  std::cout << "workload: " << inst.summary() << "\n\n";

  const int n = 8;
  TextTable table({"algorithm", "served %", "util %", "wait p50",
                   "wait p95", "wait max", "slack p50", "slack min"});
  CsvWriter csv({"algorithm", "service_rate", "utilization", "wait_p50",
                 "wait_p95", "wait_max", "slack_p50", "slack_min"});

  Round direct_p50 = 0, pipeline_p50 = 0;
  double pipeline_service = 0.0;
  for (const std::string name : {"dlru-edf", "distribute", "varbatch",
                                 "edf", "dlru"}) {
    Schedule schedule;
    (void)run_algorithm(inst, name, n, &schedule);
    const ScheduleMetrics m = compute_metrics(inst, schedule);
    if (name == "dlru-edf") direct_p50 = m.wait.p50;
    if (name == "varbatch") {
      pipeline_p50 = m.wait.p50;
      pipeline_service = m.service_rate;
    }
    table.add_row({name, fmt_double(100.0 * m.service_rate, 1),
                   fmt_double(100.0 * m.utilization, 1),
                   std::to_string(m.wait.p50), std::to_string(m.wait.p95),
                   std::to_string(m.wait.max), std::to_string(m.slack.p50),
                   std::to_string(m.slack.min)});
    csv.add_row({name, fmt_double(m.service_rate, 4),
                 fmt_double(m.utilization, 4), std::to_string(m.wait.p50),
                 std::to_string(m.wait.p95), std::to_string(m.wait.max),
                 std::to_string(m.slack.p50),
                 std::to_string(m.slack.min)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e11_latency");

  std::cout << "\nVarBatch's half-block delaying trades latency for "
               "worst-case guarantees: executions cannot start before the "
               "next half-block boundary.\n";
  bool ok = true;
  ok &= bench::verdict(pipeline_p50 > direct_p50,
                       "the pipeline's median wait exceeds the direct "
                       "core's (the half-block delay is visible)");
  ok &= bench::verdict(pipeline_service > 0.5,
                       "the pipeline still serves the majority of jobs");
  return ok ? 0 : 1;
}
