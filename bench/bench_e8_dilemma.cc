// E8 — Section 1: the thrashing-vs-underutilization dilemma, measured.
//
// The introduction motivates dLRU-EDF with a scenario of background jobs
// (deadlines far ahead) competing with intermittent short-term bursts.
// The two single-principle schemes fail in opposite directions:
// * dLRU (pure recency) refuses to touch the stale background color and
//   drops its backlog wholesale — underutilization, a drop-heavy bill;
// * EDF (pure deadlines) pulls the background color in whenever a burst
//   slot frees up and pushes it back out on the next burst — thrashing, a
//   reconfiguration-heavy bill.
// dLRU-EDF pays a bounded multiple of the offline bracket.  (On THIS
// stochastic scenario EDF's thrashing happens to be partially worth its
// price; the inputs where each single principle is catastrophically wrong
// are the adversarial ones — see E1 and E2.  What this experiment pins
// down is the failure-mode signature of each scheme.)
#include <iostream>

#include "bench_common.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/runner.h"
#include "workload/intro_scenario.h"

int main() {
  using namespace rrs;
  bench::banner("E8 (Section 1)",
                "background vs short-term: thrashing, underutilization, and "
                "the combination");

  IntroScenarioParams params;
  params.seed = 3;
  params.delta = 16;
  params.num_short_colors = 4;
  params.short_delay = 16;
  params.background_delay = 4096;
  params.background_jobs = 4096;
  params.burst_probability = 0.5;
  params.burst_jobs = 8;
  params.horizon = 4096;
  const IntroScenarioInstance scenario = make_intro_scenario(params);
  const Instance& inst = scenario.instance;
  const int n = 8;
  const int m = 1;
  const Cost lb = offline_lower_bound(inst, m).best();
  const Cost ub = best_offline_heuristic_cost(inst, m);
  std::cout << "workload: " << inst.summary() << "\n"
            << "offline bracket (m=1): LB=" << lb << "  greedy UB=" << ub
            << "\n\n";

  TextTable table({"algorithm", "reconfig", "drops", "total", "vs UB(m)",
                   "failure mode"});
  CsvWriter csv({"algorithm", "reconfig", "drops", "total", "ratio_ub"});
  Cost edf_reconfig = 0, edf_drops = 0;
  Cost dlru_reconfig = 0, dlru_drops = 0;
  double combo_ratio = 0.0;
  for (const std::string name : {"edf", "dlru", "dlru-edf"}) {
    const RunRecord r = run_algorithm(inst, name, n);
    const double ratio = static_cast<double>(r.cost.total()) /
                         static_cast<double>(ub);
    std::string mode = "balanced (bounded ratio)";
    if (name == "edf") {
      edf_reconfig = r.cost.reconfig_cost;
      edf_drops = r.cost.drops;
      mode = "thrashing (reconfig-heavy)";
    } else if (name == "dlru") {
      dlru_reconfig = r.cost.reconfig_cost;
      dlru_drops = r.cost.drops;
      mode = "underutilization (drop-heavy)";
    } else {
      combo_ratio = ratio;
    }
    table.add_row({r.algorithm, std::to_string(r.cost.reconfig_cost),
                   std::to_string(r.cost.drops),
                   std::to_string(r.cost.total()), fmt_ratio(ratio), mode});
    csv.add_row({r.algorithm, std::to_string(r.cost.reconfig_cost),
                 std::to_string(r.cost.drops),
                 std::to_string(r.cost.total()), fmt_double(ratio)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e8_dilemma");

  std::cout << "\npaper (Section 1): eager idle-filling thrashes, waiting "
               "underutilizes; only combining recency and deadlines is "
               "safe on all inputs (E1/E2 show the catastrophic cases).\n";
  bool ok = true;
  ok &= bench::verdict(dlru_drops > 5 * edf_drops,
                       "dLRU's failure mode is drops (underutilization)");
  ok &= bench::verdict(edf_reconfig > 5 * dlru_reconfig,
                       "EDF's failure mode is reconfigurations (thrashing)");
  ok &= bench::verdict(combo_ratio < 6.0,
                       "dLRU-EDF stays within a small constant of the "
                       "offline bracket");
  return ok ? 0 : 1;
}
