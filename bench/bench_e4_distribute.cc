// E4 — Theorem 2: Distribute extends Theorem 1 to batched inputs whose
// bursts exceed the rate limit.
//
// Batched workloads with bursts of up to burst_factor * D_l jobs per batch
// violate the Section 3 rate limit; Distribute splits each burst across
// virtual colors (l, j) and runs dLRU-EDF on the result.  The bench sweeps
// the burst factor and reports: the mapped-back cost against the offline
// bracket, the cost of the virtual run (Lemma 4.2 says mapping back never
// costs more), and dLRU-EDF applied directly (no splitting) as a baseline.
#include <iostream>

#include "algs/distribute.h"
#include "bench_common.h"
#include "core/validator.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/runner.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E4 (Theorem 2)",
                "Distribute handles over-limit batched bursts at constant "
                "ratio");

  const int m = 1;
  const int n = 8 * m;
  TextTable table({"burst", "jobs", "LB(m)", "UB(m)", "distribute",
                   "virtual", "direct dLRU-EDF", "ratio<="});
  CsvWriter csv({"burst", "jobs", "lb", "ub", "distribute", "virtual",
                 "direct", "ratio_lb"});

  bool mapping_never_worse = true;
  double worst_ratio = 0.0;
  for (const double burst : {1.0, 2.0, 4.0, 8.0}) {
    RandomBatchedParams params;
    params.seed = 7;
    params.delta = 8;
    params.num_colors = 12;
    params.horizon = 2048;
    params.burst_factor = burst;
    const Instance inst = make_random_batched(params);

    const DistributeResult dist = run_distribute(inst, n);
    (void)validate_or_throw(inst, dist.schedule);
    const RunRecord direct = run_algorithm(inst, "dlru-edf", n);
    const Cost lb = offline_lower_bound(inst, m).best();
    const Cost ub = best_offline_heuristic_cost(inst, m);

    mapping_never_worse &=
        dist.cost.total() <= dist.virtual_run.cost.total();
    const double ratio = lb > 0 ? static_cast<double>(dist.cost.total()) /
                                      static_cast<double>(lb)
                                : 1.0;
    worst_ratio = std::max(worst_ratio, ratio);

    table.add_row({fmt_double(burst, 1),
                   std::to_string(inst.jobs().size()), std::to_string(lb),
                   std::to_string(ub), std::to_string(dist.cost.total()),
                   std::to_string(dist.virtual_run.cost.total()),
                   std::to_string(direct.cost.total()), fmt_ratio(ratio)});
    csv.add_row({fmt_double(burst, 1), std::to_string(inst.jobs().size()),
                 std::to_string(lb), std::to_string(ub),
                 std::to_string(dist.cost.total()),
                 std::to_string(dist.virtual_run.cost.total()),
                 std::to_string(direct.cost.total()), fmt_double(ratio)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e4_distribute");

  std::cout << "\npaper: Distribute is resource competitive for batched "
               "inputs (Theorem 2); Lemma 4.2: mapped cost <= virtual "
               "cost.\n";
  bool ok = true;
  ok &= bench::verdict(mapping_never_worse,
                       "mapping back never increases cost (Lemma 4.2)");
  ok &= bench::verdict(worst_ratio < 12.0,
                       "Distribute ratio bounded across burst factors");
  return ok ? 0 : 1;
}
