// E2 — Appendix B: EDF is not resource competitive.
//
// Reproduces the paper's Appendix B construction: one short color (delay
// 2^j) plus n/2 long backlog colors (delays 2^k .. 2^{k+n/2-1}), with
// 2^k > 2^j > Delta > n.  The paper proves EDF's ratio is at least
// 2^{k-j-1} / (n/2 + 1) — unbounded in k - j — because it thrashes the
// long colors in and out whenever the short color goes idle; dLRU-EDF's
// recency half pins the short color and stays constant.  We sweep k - j
// and report costs against the exact Appendix B OFF schedule (which is
// drop-free at cost (n/2 + 1) * Delta).
#include <iostream>

#include "bench_common.h"
#include "core/validator.h"
#include "offline/appendix_off.h"
#include "sim/runner.h"
#include "workload/adversary_edf.h"

int main() {
  using namespace rrs;
  bench::banner("E2 (Appendix B)",
                "EDF unbounded vs dLRU-EDF constant on the deadline killer");

  const int n = 8;
  TextTable table({"j", "k", "jobs", "OFF cost", "EDF cost", "EDF ratio",
                   "dLRU-EDF cost", "dLRU-EDF ratio"});
  CsvWriter csv({"j", "k", "off", "edf", "edf_ratio", "dlru_edf",
                 "dlru_edf_ratio"});

  double first_edf_ratio = 0, last_edf_ratio = 0, worst_combo_ratio = 0;
  const int j = 4;  // 2^4 = 16 > Delta = 9 > n = 8
  for (int bump = 1; bump <= 6; ++bump) {
    AdversaryBParams params;
    params.n = n;
    params.j = j;
    params.k = j + bump;
    const AdversaryBInstance adv = make_adversary_b(params);

    const Cost off =
        validate_or_throw(adv.instance, appendix_b_off_schedule(adv)).total();
    const RunRecord edf = run_algorithm(adv.instance, "edf", n);
    const RunRecord combo = run_algorithm(adv.instance, "dlru-edf", n);

    const double edf_ratio =
        static_cast<double>(edf.cost.total()) / static_cast<double>(off);
    const double combo_ratio =
        static_cast<double>(combo.cost.total()) / static_cast<double>(off);
    if (bump == 1) first_edf_ratio = edf_ratio;
    last_edf_ratio = edf_ratio;
    worst_combo_ratio = std::max(worst_combo_ratio, combo_ratio);

    table.add_row({std::to_string(j), std::to_string(params.k),
                   std::to_string(adv.instance.jobs().size()),
                   std::to_string(off), std::to_string(edf.cost.total()),
                   fmt_ratio(edf_ratio), std::to_string(combo.cost.total()),
                   fmt_ratio(combo_ratio)});
    csv.add_row({std::to_string(j), std::to_string(params.k),
                 std::to_string(off), std::to_string(edf.cost.total()),
                 fmt_double(edf_ratio), std::to_string(combo.cost.total()),
                 fmt_double(combo_ratio)});
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e2_edf_lb");

  std::cout << "\npaper: EDF ratio >= 2^{k-j-1} / (n/2 + 1), doubling per "
               "unit of k - j; dLRU-EDF constant.\n";
  bool ok = true;
  ok &= bench::verdict(last_edf_ratio > 3.0 * first_edf_ratio,
                       "EDF ratio grows without bound as k - j grows");
  ok &= bench::verdict(worst_combo_ratio < 8.0,
                       "dLRU-EDF stays within a small constant of OFF");
  return ok ? 0 : 1;
}
