// E14 — availability under capacity churn: failure intensity x augmentation.
//
// The paper's model assumes n pristine resources; this experiment measures
// what happens when they fail and repair continuously.  dLRU-EDF streams a
// fixed rate-limited workload while an MTBF fault plan (exponential
// up/down renewal per resource, MTTR fixed) knocks resources out at
// increasing intensity, at several resource budgets n.  Expected shape:
// the drop rate climbs with failure intensity at fixed n, and extra
// resources buy the availability back — the augmentation that Theorem 1
// spends on competitiveness doubles as fault headroom.
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fault_plan.h"
#include "sim/runner.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E14 (availability)",
                "dLRU-EDF drop rate vs MTBF failure intensity x budget n");

  const Round horizon = 2048;
  const auto make_workload = [horizon] {
    RandomBatchedParams params;
    params.seed = 5;
    params.num_colors = 24;  // more colors than any budget below can cache
    params.horizon = horizon;
    return std::make_unique<RandomBatchedSource>(params);
  };

  // mean_up = 0 encodes "no churn" (no fault plan at all).
  const Round intensities[] = {0, 200, 50, 20};
  const int budgets[] = {8, 12, 16};

  TextTable table({"mtbf", "n", "arrived", "drops", "drop_rate", "degraded",
                   "faults", "evictions", "drops_degr"});
  CsvWriter csv({"mtbf", "n", "arrived", "drops", "drop_rate",
                 "degraded_rounds", "fault_events", "churn_evictions",
                 "drops_while_degraded"});

  std::map<std::pair<Round, int>, double> drop_rate;
  for (const Round mean_up : intensities) {
    for (const int n : budgets) {
      FaultPlan plan;
      if (mean_up > 0) {
        MtbfParams fault_params;
        fault_params.num_resources = n;
        fault_params.horizon = horizon;
        fault_params.mean_up = static_cast<double>(mean_up);
        fault_params.mean_down = 20;
        fault_params.seed = 3;
        plan = make_mtbf_plan(fault_params);
      }
      const auto source = make_workload();
      const StreamRunRecord r =
          run_streaming(*source, "dlru-edf", n, kInfiniteHorizon,
                        plan.empty() ? nullptr : &plan);
      const double rate =
          r.arrived > 0 ? static_cast<double>(r.cost.drops) /
                              static_cast<double>(r.arrived)
                        : 0.0;
      drop_rate[{mean_up, n}] = rate;
      const std::string mtbf_label =
          mean_up > 0 ? std::to_string(mean_up) : "inf";
      table.add_row({mtbf_label, std::to_string(n),
                     std::to_string(r.arrived), std::to_string(r.cost.drops),
                     fmt_double(rate),
                     std::to_string(r.degraded.degraded_rounds),
                     std::to_string(r.degraded.fault_events),
                     std::to_string(r.degraded.churn_evictions),
                     std::to_string(r.degraded.drops_while_degraded)});
      csv.add_row({mtbf_label, std::to_string(n), std::to_string(r.arrived),
                   std::to_string(r.cost.drops), fmt_double(rate),
                   std::to_string(r.degraded.degraded_rounds),
                   std::to_string(r.degraded.fault_events),
                   std::to_string(r.degraded.churn_evictions),
                   std::to_string(r.degraded.drops_while_degraded)});
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e14_availability");

  std::cout << "\nmodel: failures evict the victim's cached color and "
               "shrink capacity until repair; repairs come back blank.\n"
               "Heavier churn at fixed n must cost drops; a larger n must "
               "win some of them back at fixed churn.\n";
  bool ok = true;
  ok &= bench::verdict(
      drop_rate[{20, 8}] >= drop_rate[{0, 8}],
      "heaviest churn never beats the fault-free drop rate at n = 8");
  ok &= bench::verdict(
      drop_rate[{20, 16}] <= drop_rate[{20, 8}],
      "doubling n buys back drop rate under the heaviest churn");
  ok &= bench::verdict(drop_rate[{20, 8}] >= drop_rate[{200, 8}],
                       "drop rate responds to failure intensity "
                       "(MTBF 20 vs 200 at n = 8)");
  return ok ? 0 : 1;
}
