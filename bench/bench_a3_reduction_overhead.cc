// A3 — ablation: what the layered reductions cost.
//
// The paper's end-to-end algorithm stacks two reductions on dLRU-EDF:
// VarBatch delays every job to its next half-block (halving usable slack)
// and Distribute splits bursts into virtual colors.  On inputs where the
// core algorithm is directly applicable, the layers are pure overhead —
// this bench quantifies it by running, on the SAME rate-limited batched
// instances:
//   direct     dLRU-EDF as-is (what Theorem 1 analyzes),
//   distribute Distribute -> dLRU-EDF (adds virtual-color splitting),
//   varbatch   VarBatch -> Distribute -> dLRU-EDF (adds half-block delay).
// The same comparison is repeated on unbatched inputs where only varbatch
// carries a guarantee but the Section 3 policies still run mechanically.
#include <iostream>

#include "bench_common.h"
#include "sim/runner.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("A3 (ablation)",
                "overhead of the VarBatch / Distribute reduction layers");

  const int n = 8;
  TextTable table({"input", "algorithm", "reconfig", "drops", "total",
                   "vs direct"});
  CsvWriter csv({"input", "algorithm", "reconfig", "drops", "total"});

  double worst_overhead = 0.0;
  bool layers_never_catastrophic = true;
  for (const bool batched : {true, false}) {
    Instance inst;
    if (batched) {
      RandomBatchedParams params;
      params.seed = 31;
      params.delta = 8;
      params.num_colors = 16;
      params.horizon = 2048;
      inst = make_random_batched(params);
    } else {
      PoissonParams params;
      params.seed = 31;
      params.delta = 8;
      params.num_colors = 16;
      params.horizon = 2048;
      params.mean_rate = 0.2;
      inst = make_poisson(params);
    }
    const std::string input = batched ? "rate-limited batched" : "poisson";

    Cost direct_cost = 0;
    std::vector<std::string> algorithms{"dlru-edf"};
    if (batched) algorithms.emplace_back("distribute");
    algorithms.emplace_back("varbatch");
    for (const std::string& name : algorithms) {
      const RunRecord r = run_algorithm(inst, name, n);
      std::string versus = "-";
      if (name == "dlru-edf") {
        direct_cost = r.cost.total();
      } else if (direct_cost > 0) {
        const double overhead = static_cast<double>(r.cost.total()) /
                                static_cast<double>(direct_cost);
        versus = fmt_ratio(overhead);
        worst_overhead = std::max(worst_overhead, overhead);
        layers_never_catastrophic &= overhead < 6.0;
      }
      table.add_row({input, r.algorithm,
                     std::to_string(r.cost.reconfig_cost),
                     std::to_string(r.cost.drops),
                     std::to_string(r.cost.total()), versus});
      csv.add_row({input, r.algorithm,
                   std::to_string(r.cost.reconfig_cost),
                   std::to_string(r.cost.drops),
                   std::to_string(r.cost.total())});
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "a3_reduction_overhead");

  std::cout << "\nThe reductions exist for worst-case guarantees "
               "(Theorems 2-3); on benign inputs they cost a constant "
               "factor — the price of the half-block delay and virtual "
               "splitting.  Worst measured overhead: x"
            << fmt_double(worst_overhead, 2) << "\n";
  return bench::verdict(layers_never_catastrophic,
                        "reduction layers cost at most a small constant "
                        "factor on benign inputs")
             ? 0
             : 1;
}
