// E10 — extension: per-color drop costs (the companion paper's variable
// drop-cost dimension, grafted onto the variable-delay machinery).
//
// Colors carry drop costs (value lost per missed job).  The weighted
// dLRU-EDF accumulates VALUE in its eligibility counters — a color
// qualifies for caching once Delta worth of droppable value has arrived —
// so high-value colors reach the cache sooner and low-value colors that
// cannot pay for a reconfiguration are never configured (the Lemma 3.1
// economics, now in value units).
//
// The experiment: a two-tier workload (gold: weight 16, lead: weight 1,
// same arrival shapes) under increasing contention.  Reported per tier:
// jobs lost and value lost, against the weighted offline bracket.  A
// weight-blind control run (same jobs, weights erased, losses re-priced
// afterwards) isolates what weight-awareness buys.  Every contention
// level runs twice: once under the paper's scalar model and once under
// the generalized lengths x Delta-matrix cell (gold jobs need 2 units,
// intra-tier transitions warm-discounted), so the claim is checked on
// both charging paths.
#include <iostream>

#include "bench_common.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/runner.h"

namespace {

using namespace rrs;

struct TierWorkload {
  Instance weighted;  ///< gold colors carry weight 16
  Instance blind;     ///< identical jobs, all weights 1
  std::vector<char> is_gold;  ///< per color
};

/// gold_colors + lead_colors colors, identical per-color arrival shapes:
/// `batch` jobs at every multiple of 16 over `horizon` rounds.  With
/// `generalized` set, the same workload runs under the full cost model:
/// gold jobs take 2 execution units, and Delta becomes a matrix — cold
/// re-images still cost 32 but transitions within a tier are warm at 8
/// (the "same base image, different tenant" discount).
TierWorkload make_tiers(int gold_colors, int lead_colors,
                        std::int64_t batch, Round horizon,
                        bool generalized = false) {
  TierWorkload out;
  for (const bool weighted : {true, false}) {
    InstanceBuilder builder;
    builder.delta(32);
    std::vector<ColorId> colors;
    for (int c = 0; c < gold_colors; ++c) {
      colors.push_back(builder.add_color(16, weighted ? 16 : 1,
                                         generalized ? 2 : 1));
      if (weighted) out.is_gold.push_back(1);
    }
    for (int c = 0; c < lead_colors; ++c) {
      colors.push_back(builder.add_color(16, 1));
      if (weighted) out.is_gold.push_back(0);
    }
    if (generalized) {
      for (int f = 0; f < gold_colors + lead_colors; ++f) {
        for (int t = 0; t < gold_colors + lead_colors; ++t) {
          if (f == t) continue;
          const bool same_tier =
              (f < gold_colors) == (t < gold_colors);
          if (same_tier) builder.transition_cost(colors[f], colors[t], 8);
        }
      }
    }
    for (Round t = 0; t < horizon; t += 16) {
      for (const ColorId c : colors) builder.add_jobs(c, t, batch);
    }
    (weighted ? out.weighted : out.blind) = builder.build();
  }
  return out;
}

/// Value lost by `schedule` on the weighted pricing, split by tier.
std::pair<Cost, Cost> lost_value(const Instance& priced,
                                 const std::vector<char>& is_gold,
                                 const Schedule& schedule) {
  std::vector<char> executed(priced.jobs().size(), 0);
  for (const ExecEvent& e : schedule.execs) {
    executed[static_cast<std::size_t>(e.job)] = 1;
  }
  Cost gold = 0, lead = 0;
  for (const Job& job : priced.jobs()) {
    if (executed[static_cast<std::size_t>(job.id)]) continue;
    if (is_gold[static_cast<std::size_t>(job.color)]) {
      gold += 16;  // priced at gold weight regardless of which run
    } else {
      lead += 1;
    }
  }
  return {gold, lead};
}

}  // namespace

int main() {
  bench::banner("E10 (extension)",
                "per-color drop costs: weight-aware vs weight-blind "
                "dLRU-EDF");

  const int n = 8;
  TextTable table({"colors (gold+lead)", "model", "mode", "gold value lost",
                   "lead value lost", "total cost", "LB(m)"});
  CsvWriter csv({"gold", "lead", "model", "mode", "gold_lost", "lead_lost",
                 "total", "lb"});

  bool weights_protect_gold = true;
  // `generalized` adds the lengths x Delta-matrix cell: gold jobs take 2
  // units and intra-tier transitions are warm-discounted, so the same
  // weight-aware-vs-blind comparison runs through every generalized
  // charging path (remaining-length expiry, matrix reconfig pricing).
  for (const bool generalized : {false, true}) {
    for (const auto& [gold_colors, lead_colors] :
         std::vector<std::pair<int, int>>{{2, 6}, {4, 12}, {6, 18}}) {
      const TierWorkload tiers =
          make_tiers(gold_colors, lead_colors, /*batch=*/12,
                     /*horizon=*/2048, generalized);
      const Cost lb = offline_lower_bound(tiers.weighted, 1).best();

      Cost aware_gold_lost = 0, blind_gold_lost = 0;
      for (const bool aware : {true, false}) {
        const Instance& run_on = aware ? tiers.weighted : tiers.blind;
        Schedule schedule;
        (void)run_algorithm(run_on, "dlru-edf", n, &schedule);
        const auto [gold_lost, lead_lost] =
            lost_value(tiers.weighted, tiers.is_gold, schedule);
        // Total cost under the weighted pricing.
        const Cost total =
            schedule.cost(tiers.weighted).total();
        (aware ? aware_gold_lost : blind_gold_lost) = gold_lost;
        table.add_row({std::to_string(gold_colors) + "+" +
                           std::to_string(lead_colors),
                       generalized ? "lengths+matrix" : "scalar",
                       aware ? "weight-aware" : "weight-blind",
                       std::to_string(gold_lost), std::to_string(lead_lost),
                       std::to_string(total), std::to_string(lb)});
        csv.add_row({std::to_string(gold_colors),
                     std::to_string(lead_colors),
                     generalized ? "general" : "scalar",
                     aware ? "aware" : "blind", std::to_string(gold_lost),
                     std::to_string(lead_lost), std::to_string(total),
                     std::to_string(lb)});
      }
      weights_protect_gold &= aware_gold_lost <= blind_gold_lost;
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e10_weighted");

  std::cout << "\nextension claim: value-weighted eligibility counters let "
               "high-value colors reach the cache sooner, shifting losses "
               "onto low-value tiers.\n";
  return bench::verdict(weights_protect_gold,
                        "weight-aware runs never lose more gold value than "
                        "weight-blind runs (scalar and lengths+matrix "
                        "models)")
             ? 0
             : 1;
}
