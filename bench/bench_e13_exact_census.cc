// E13 — exact-ratio census: dLRU-EDF against the TRUE optimum.
//
// Benchmark-scale ratios are bracketed (DESIGN.md); on tiny instances the
// exact DP removes the bracket entirely.  This bench sweeps hundreds of
// random small rate-limited instances, computes cost(dLRU-EDF, n = 8m) /
// OPT(m) exactly, and reports the distribution.  Theorem 1 predicts a
// constant bound; the census shows where the mass actually sits and the
// worst case over the sample — the closest a simulation can get to
// "measuring the competitive ratio".
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "offline/optimal.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "util/rng.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E13 (exact census)",
                "cost(dLRU-EDF, 8m) / OPT(m) measured EXACTLY on tiny "
                "instances");

  const int m = 1;
  const int n = 8 * m;
  const int census_size = 400;

  // Each cell: one tiny instance, exact ratio (skip zero-cost optima by
  // reporting ratio 1 — both sides are then 0 or the instance is empty).
  std::vector<std::function<std::vector<std::string>()>> cells;
  for (int trial = 0; trial < census_size; ++trial) {
    cells.emplace_back([trial, m, n] {
      RandomBatchedParams params;
      params.seed = static_cast<std::uint64_t>(1000 + trial);
      params.num_colors = 2 + trial % 3;  // 2..4 colors
      params.min_scale = 1;
      params.max_scale = 3;
      params.horizon = 16 + 8 * (trial % 2);
      params.delta = 2 + trial % 3;
      const Instance inst = make_random_batched(params);
      const Cost opt = optimal_offline_cost(inst, m);
      const Cost online = run_algorithm(inst, "dlru-edf", n).cost.total();
      const double ratio =
          opt > 0 ? static_cast<double>(online) / static_cast<double>(opt)
                  : (online > 0 ? -1.0 : 1.0);  // -1 marks OPT = 0 < online
      return std::vector<std::string>{fmt_double(ratio, 4)};
    });
  }

  std::vector<double> ratios;
  int opt_zero_online_positive = 0;
  for (const auto& row : run_sweep(cells)) {
    const double r = std::stod(row[0]);
    if (r < 0) {
      ++opt_zero_online_positive;
    } else {
      ratios.push_back(r);
    }
  }
  std::sort(ratios.begin(), ratios.end());
  const auto at = [&](double q) {
    return ratios[static_cast<std::size_t>(
        q * static_cast<double>(ratios.size() - 1))];
  };

  TextTable table({"instances", "min", "p50", "p90", "p99", "max",
                   "share <= 1.0", "share <= 2.0"});
  const auto share_below = [&](double bound) {
    const auto count = static_cast<double>(
        std::upper_bound(ratios.begin(), ratios.end(), bound) -
        ratios.begin());
    return 100.0 * count / static_cast<double>(ratios.size());
  };
  table.add_row({std::to_string(ratios.size()), fmt_double(ratios.front(), 2),
                 fmt_double(at(0.5), 2), fmt_double(at(0.9), 2),
                 fmt_double(at(0.99), 2), fmt_double(ratios.back(), 2),
                 fmt_double(share_below(1.0), 1) + "%",
                 fmt_double(share_below(2.0), 1) + "%"});
  table.print(std::cout);

  CsvWriter csv({"ratio"});
  for (const double r : ratios) csv.add_row({fmt_double(r, 4)});
  bench::maybe_write_csv(csv, "e13_exact_census");

  std::cout << "\n(" << opt_zero_online_positive
            << " instances had OPT = 0 with positive online cost — "
               "excluded from ratio statistics, flagged below.)\n"
            << "paper: Theorem 1 promises a constant bound on every "
               "instance; the census shows the constant is small in "
               "practice.\n";
  bool ok = true;
  ok &= bench::verdict(ratios.back() < 16.0,
                       "worst exact ratio over the census is a small "
                       "constant");
  ok &= bench::verdict(at(0.9) < 4.0, "90% of instances are within x4 of "
                                      "the true optimum");
  ok &= bench::verdict(opt_zero_online_positive < census_size / 20,
                       "OPT = 0 anomalies are rare");
  return ok ? 0 : 1;
}
