// E12 — extension: flash-crowd reaction.
//
// The motivating applications reconfigure because demand COMPOSITION
// shifts; the sharpest version is a flash crowd (one service's demand
// multiplying for a bounded stretch).  Using the timeline module, this
// bench watches each algorithm live through a 20x spike: how much of the
// spike it serves, what it pays in reconfigurations to follow the shift,
// and how the background services fare while the spike holds.
#include <iostream>

#include "bench_common.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "sim/timeline.h"
#include "workload/flash_crowd.h"

int main() {
  using namespace rrs;
  bench::banner("E12 (extension)",
                "flash crowd: following a 20x composition shift");

  FlashCrowdParams params;
  params.seed = 11;
  params.delta = 16;
  params.background_colors = 6;
  params.spike_factor = 20.0;
  params.spike_start = 1024;
  params.spike_end = 1536;
  params.horizon = 4096;
  const FlashCrowdInstance fc = make_flash_crowd(params);
  const Instance& inst = fc.instance;
  std::cout << "workload: " << inst.summary() << " (spike rounds "
            << params.spike_start << ".." << params.spike_end << ")\n\n";

  const int n = 8;
  TextTable table({"algorithm", "spike served %", "background served %",
                   "reconfig", "total cost"});
  CsvWriter csv({"algorithm", "spike_served", "background_served",
                 "reconfig", "total"});

  double pipeline_spike = 0.0, pipeline_background = 0.0;
  for (const std::string name : {"varbatch", "edf", "dlru"}) {
    Schedule schedule;
    const RunRecord r = run_algorithm(inst, name, n, &schedule);
    const ScheduleMetrics m = compute_metrics(inst, schedule);

    const auto& spike = m.per_color[static_cast<std::size_t>(
        fc.spike_color)];
    const double spike_served =
        spike.jobs > 0 ? 100.0 * static_cast<double>(spike.executed) /
                             static_cast<double>(spike.jobs)
                       : 100.0;
    std::int64_t bg_jobs = 0, bg_executed = 0;
    for (const auto& pc : m.per_color) {
      if (pc.color == fc.spike_color) continue;
      bg_jobs += pc.jobs;
      bg_executed += pc.executed;
    }
    const double bg_served =
        bg_jobs > 0 ? 100.0 * static_cast<double>(bg_executed) /
                          static_cast<double>(bg_jobs)
                    : 100.0;
    if (name == "varbatch") {
      pipeline_spike = spike_served;
      pipeline_background = bg_served;
      // Archive the pipeline's timeline for plotting.
      bench::maybe_write_csv(
          timeline_csv(compute_timeline(inst, schedule, 128)),
          "e12_flash_crowd_timeline");
    }
    table.add_row({name, fmt_double(spike_served, 1),
                   fmt_double(bg_served, 1),
                   std::to_string(r.cost.reconfig_cost),
                   std::to_string(r.cost.total())});
    csv.add_row({name, fmt_double(spike_served, 1),
                 fmt_double(bg_served, 1),
                 std::to_string(r.cost.reconfig_cost),
                 std::to_string(r.cost.total())});
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e12_flash_crowd");

  std::cout << "\nThe spike is servable (20x of 0.2 jobs/round on 8 "
               "resources); an adaptive allocator must reassign capacity "
               "for ~500 rounds and hand it back.\n";
  bool ok = true;
  ok &= bench::verdict(pipeline_spike > 60.0,
                       "the pipeline serves the majority of the spike");
  ok &= bench::verdict(pipeline_background > 60.0,
                       "background services survive the spike");
  return ok ? 0 : 1;
}
