// E9 — engineering: simulator throughput (google-benchmark).
//
// Not a paper claim; measures the substrate so users can size experiments:
// engine rounds/second and jobs/second for dLRU-EDF across color counts
// and resource counts, generator and validator throughput, and the exact
// offline DP's cost on a tiny instance (to document its scaling wall).
//
// After the google-benchmark section, a streaming configuration sweeps
// dLRU-EDF over 10M-round lazy sources (no materialization; override the
// round count with RRS_STREAMING_ROUNDS), then sweeps the sharded runner
// over shard counts 1/2/4/#workers, and emits a BENCH_streaming.json
// baseline with per-configuration rounds/sec and peak RSS.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>
#include <sys/resource.h>

#include "bench_common.h"

#include "algs/registry.h"
#include "core/validator.h"
#include "obs/observer.h"
#include "offline/optimal.h"
#include "sim/runner.h"
#include "sim/sweep.h"
#include "util/thread_pool.h"
#include "workload/flash_crowd.h"
#include "workload/poisson.h"
#include "workload/random_batched.h"

namespace {

using namespace rrs;

Instance bench_instance(int colors, Round horizon,
                        std::uint64_t seed = 99) {
  RandomBatchedParams params;
  params.seed = seed;
  params.delta = 8;
  params.num_colors = colors;
  params.min_scale = 2;
  params.max_scale = 6;
  params.horizon = horizon;
  return make_random_batched(params);
}

void BM_DLruEdfEngine(benchmark::State& state) {
  const int colors = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const Instance inst = bench_instance(colors, 4096);
  for (auto _ : state) {
    auto policy = make_policy("dlru-edf");
    EngineOptions options;
    options.num_resources = n;
    options.replication = 2;
    options.record_schedule = false;
    benchmark::DoNotOptimize(run_policy(inst, *policy, options));
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(inst.horizon()), benchmark::Counter::kIsRate);
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(inst.jobs().size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DLruEdfEngine)
    ->Args({8, 8})
    ->Args({32, 8})
    ->Args({128, 8})
    ->Args({32, 4})
    ->Args({32, 16})
    ->Args({32, 64});

void BM_VarBatchPipeline(benchmark::State& state) {
  const Instance inst = bench_instance(static_cast<int>(state.range(0)),
                                       2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(inst, "varbatch", 8));
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(inst.jobs().size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VarBatchPipeline)->Arg(8)->Arg(32);

void BM_Generator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_instance(32, static_cast<Round>(state.range(0))));
  }
}
BENCHMARK(BM_Generator)->Arg(1024)->Arg(8192);

void BM_Validator(benchmark::State& state) {
  const Instance inst = bench_instance(32, 2048);
  Schedule schedule;
  (void)run_algorithm(inst, "dlru-edf", 8, &schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(inst, schedule));
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(schedule.execs.size() + schedule.reconfigs.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Validator);

void BM_ExactOfflineDp(benchmark::State& state) {
  RandomBatchedParams params;
  params.seed = 1;
  params.delta = 2;
  params.num_colors = static_cast<int>(state.range(0));
  params.min_scale = 1;
  params.max_scale = 3;
  params.horizon = 16;
  const Instance inst = make_random_batched(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_offline_cost(inst, 1));
  }
}
BENCHMARK(BM_ExactOfflineDp)->Arg(2)->Arg(3)->Arg(4);

// ---------------------------------------------------------------------------
// Streaming baseline: 10M rounds through the lazy-source engine path.
// ---------------------------------------------------------------------------

/// Peak resident set size of this process, in bytes (Linux: ru_maxrss is
/// reported in kilobytes).
std::int64_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}

/// Round count for the streaming section: 10M by default, overridable via
/// RRS_STREAMING_ROUNDS so smoke runs stay fast.
Round streaming_rounds() {
  const char* env = std::getenv("RRS_STREAMING_ROUNDS");
  if (env != nullptr && *env != '\0') {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<Round>(parsed);
  }
  return 10'000'000;
}

/// The generalized-model smoke cell: random-batched arrival shapes with
/// per-color job lengths 1..3, drop weights 1..4, and a matrix Delta
/// (per-color cold prices plus a warm-discount ring) — every charging
/// path the scalar cells bypass (remaining-length lane, weighted drops,
/// Delta(from,to) lookups) runs hot here, so a fast-path-only
/// optimization that regresses the general model trips the same 30%
/// gate as the scalar families.
class GeneralizedBatchedSource final : public GeneratorSource {
 public:
  GeneralizedBatchedSource(Round horizon, std::uint64_t seed)
      : GeneratorSource(/*delta=*/8, horizon) {
    constexpr ColorId kColors = 32;
    for (ColorId c = 0; c < kColors; ++c) {
      add_color(/*delay=*/Round{4} << (c % 4), /*drop_cost=*/1 + (c % 4),
                /*length=*/1 + (c % 3));
      streams_.push_back(derive_rng(seed, static_cast<std::uint64_t>(c)));
    }
    model_.set_delta(8);
    model_.resize(kColors);
    for (ColorId c = 0; c < kColors; ++c) {
      model_.set_drop_cost(c, drop_cost(c));
      model_.set_length(c, length(c));
      model_.set_cold_cost(c, 8 + (c % 4));
      model_.set_transition_cost(c, (c + 1) % kColors, 2);
    }
  }

  [[nodiscard]] const CostModel& cost_model() const override {
    return model_;
  }

 private:
  void synthesize(Round k) override {
    for (ColorId c = 0; c < num_colors(); ++c) {
      const Round delay = delay_bound(c);
      if (k % delay != 0) continue;
      Rng& stream = streams_[static_cast<std::size_t>(c)];
      if (!stream.bernoulli(0.7)) continue;
      emit(c, k, stream.uniform(1, delay));
    }
  }

  std::vector<Rng> streams_;
  CostModel model_;
};

struct StreamingCell {
  std::string family;
  StreamRunRecord record;
  /// Arrival rounds this cell was asked to stream (its `record.rounds` may
  /// exceed this while draining).
  Round arrival_rounds = 0;
  /// Shard count for run_streaming_sharded rows; 0 for plain streaming.
  int shards = 0;
  /// Per-phase wall-clock attribution (name, seconds) for observer-on
  /// cells; empty otherwise.  Lets a regression be pinned to one phase.
  std::vector<std::pair<std::string, double>> phase_seconds;
};

/// Extracts (family, rounds_per_sec) pairs from the BENCH_streaming.json
/// format this bench itself emits (good enough for the fixed key order we
/// write; not a general JSON parser).
std::vector<std::pair<std::string, double>> parse_streaming_json(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  const std::string family_key = "\"family\": \"";
  const std::string rps_key = "\"rounds_per_sec\": ";
  std::size_t pos = 0;
  while ((pos = text.find(family_key, pos)) != std::string::npos) {
    pos += family_key.size();
    const std::size_t end = text.find('"', pos);
    if (end == std::string::npos) break;
    const std::string family = text.substr(pos, end - pos);
    const std::size_t rps_pos = text.find(rps_key, end);
    if (rps_pos == std::string::npos) break;
    const double rps =
        std::strtod(text.c_str() + rps_pos + rps_key.size(), nullptr);
    out.emplace_back(family, rps);
    pos = rps_pos;
  }
  return out;
}

/// Compares measured per-family rounds/sec against the committed baseline
/// (RRS_STREAMING_BASELINE points at the baseline json; unset skips the
/// gate).  Returns false when any family regresses by more than
/// RRS_STREAMING_REGRESSION_PCT percent (default 30).
bool check_against_baseline(const std::vector<StreamingCell>& named) {
  const char* baseline_path = std::getenv("RRS_STREAMING_BASELINE");
  if (baseline_path == nullptr || *baseline_path == '\0') {
    std::cout << "  (no RRS_STREAMING_BASELINE set; regression gate "
                 "skipped)\n";
    return true;
  }
  std::ifstream in(baseline_path);
  if (!in) {
    std::cout << "  baseline " << baseline_path << " unreadable; FAIL\n";
    return false;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto baseline = parse_streaming_json(text);
  if (baseline.empty()) {
    std::cout << "  baseline " << baseline_path << " has no runs; FAIL\n";
    return false;
  }

  double tolerance_pct = 30.0;
  if (const char* env = std::getenv("RRS_STREAMING_REGRESSION_PCT");
      env != nullptr && *env != '\0') {
    tolerance_pct = std::strtod(env, nullptr);
  }

  bool ok = true;
  for (const StreamingCell& cell : named) {
    const double rps =
        cell.record.seconds > 0
            ? static_cast<double>(cell.record.rounds) / cell.record.seconds
            : 0.0;
    double base = 0.0;
    for (const auto& [family, value] : baseline) {
      if (family == cell.family) base = value;
    }
    if (base <= 0.0) {
      std::cout << "  " << cell.family << ": no baseline entry; skipped\n";
      continue;
    }
    const double ratio = rps / base;
    const bool regressed = ratio < 1.0 - tolerance_pct / 100.0;
    std::cout << "  " << cell.family << ": " << static_cast<std::int64_t>(rps)
              << " vs baseline " << static_cast<std::int64_t>(base)
              << " rounds/s  (" << ratio << "x"
              << (regressed ? ", REGRESSION beyond " : ", within ")
              << tolerance_pct << "% budget)\n";
    ok = ok && !regressed;
  }
  return ok;
}

void append_json_record(std::string& json, const StreamingCell& cell) {
  const double rounds_per_sec =
      cell.record.seconds > 0
          ? static_cast<double>(cell.record.rounds) / cell.record.seconds
          : 0.0;
  const double jobs_per_sec =
      cell.record.seconds > 0
          ? static_cast<double>(cell.record.arrived) / cell.record.seconds
          : 0.0;
  json += "    {\n";
  json += "      \"family\": \"" + cell.family + "\",\n";
  json += "      \"algorithm\": \"" + cell.record.algorithm + "\",\n";
  json += "      \"n\": " + std::to_string(cell.record.n) + ",\n";
  if (cell.shards > 0) {
    json += "      \"shards\": " + std::to_string(cell.shards) + ",\n";
  }
  json += "      \"arrival_rounds\": " + std::to_string(cell.arrival_rounds) +
          ",\n";
  json += "      \"rounds\": " + std::to_string(cell.record.rounds) + ",\n";
  json += "      \"arrived\": " + std::to_string(cell.record.arrived) + ",\n";
  json += "      \"executed\": " + std::to_string(cell.record.executed) + ",\n";
  json += "      \"drops\": " + std::to_string(cell.record.cost.drops) + ",\n";
  json += "      \"reconfig_events\": " +
          std::to_string(cell.record.cost.reconfig_events) + ",\n";
  json += "      \"total_cost\": " + std::to_string(cell.record.cost.total()) +
          ",\n";
  json += "      \"peak_pending\": " +
          std::to_string(cell.record.peak_pending) + ",\n";
  if (!cell.phase_seconds.empty()) {
    json += "      \"phase_seconds\": {";
    for (std::size_t i = 0; i < cell.phase_seconds.size(); ++i) {
      if (i > 0) json += ", ";
      json += "\"" + cell.phase_seconds[i].first +
              "\": " + std::to_string(cell.phase_seconds[i].second);
    }
    json += "},\n";
  }
  json += "      \"seconds\": " + std::to_string(cell.record.seconds) + ",\n";
  json += "      \"rounds_per_sec\": " + std::to_string(rounds_per_sec) +
          ",\n";
  json += "      \"jobs_per_sec\": " + std::to_string(jobs_per_sec) + "\n";
  json += "    }";
}

/// Sweeps dLRU-EDF over infinite-horizon lazy sources for `rounds` rounds
/// each, prints throughput + peak RSS, and writes BENCH_streaming.json.
/// Returns false if any cell fell short of the requested rounds.
bool run_streaming_section() {
  const Round rounds = streaming_rounds();
  bench::banner("E9-streaming",
                "lazy sources sustain " + std::to_string(rounds) +
                    "-round runs in O(pending + colors) memory");

  std::vector<std::function<StreamRunRecord()>> cells;
  cells.emplace_back([rounds] {
    RandomBatchedParams params;
    params.seed = 99;
    params.num_colors = 32;
    params.horizon = kInfiniteHorizon;
    RandomBatchedSource source(params);
    return run_streaming(source, "dlru-edf", 8, rounds);
  });
  cells.emplace_back([rounds] {
    PoissonParams params;
    params.seed = 99;
    params.num_colors = 32;
    params.horizon = kInfiniteHorizon;
    PoissonSource source(params);
    return run_streaming(source, "dlru-edf", 8, rounds);
  });
  cells.emplace_back([rounds] {
    GeneralizedBatchedSource source(kInfiniteHorizon, 99);
    return run_streaming(source, "dlru-edf", 8, rounds);
  });
  const std::vector<StreamRunRecord> records = run_streaming_sweep(cells);
  std::vector<StreamingCell> named;
  named.push_back({"random-batched", records[0], rounds, 0, {}});
  named.push_back({"poisson", records[1], rounds, 0, {}});
  named.push_back({"generalized-lengths-matrix", records[2], rounds, 0, {}});

  // Observer-on cell: the same random-batched config with phase timers and
  // periodic snapshots attached.  Its per-phase seconds land in the JSON so
  // an observer-path regression is attributable to one engine phase, and
  // comparing its rounds/sec against plain "random-batched" above bounds
  // the observability overhead directly.
  {
    RandomBatchedParams params;
    params.seed = 99;
    params.num_colors = 32;
    params.horizon = kInfiniteHorizon;
    RandomBatchedSource source(params);
    ObsConfig obs_config;
    obs_config.timers = true;
    obs_config.snapshot_every = std::max<Round>(1, rounds / 8);
    Observer observer(obs_config);
    StreamingCell cell;
    cell.family = "random-batched-obs";
    cell.record = run_streaming(source, "dlru-edf", 8, rounds, nullptr,
                                false, &observer);
    cell.arrival_rounds = rounds;
    for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
      const auto phase = static_cast<EnginePhase>(p);
      cell.phase_seconds.emplace_back(PhaseTimers::phase_name(phase),
                                      observer.timers.seconds(phase));
    }
    named.push_back(std::move(cell));
  }

  // Shard-count scaling sweep: the same random-batched dLRU-EDF config at
  // n = 16 (granularity 4 => four shardable blocks) through the sharded
  // runner for K in {1, 2, 4, #workers}.  With fewer workers than shards
  // the runner falls back to serial shard execution, which buffers the
  // whole split stream; cap the round count there so the sweep stays in
  // memory on single-core hosts.
  const int workers = static_cast<int>(global_pool().size());
  const Round shard_rounds =
      workers >= 4 ? rounds : std::min<Round>(rounds, 1'000'000);
  std::vector<int> shard_counts = {1, 2, 4, std::clamp(workers, 1, 4)};
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(std::unique(shard_counts.begin(), shard_counts.end()),
                     shard_counts.end());
  std::cout << "  shard sweep: " << workers << " pool worker(s), "
            << shard_rounds << " rounds per K\n";
  const std::size_t first_shard_cell = named.size();
  for (const int k : shard_counts) {
    RandomBatchedParams params;
    params.seed = 99;
    params.num_colors = 32;
    params.horizon = kInfiniteHorizon;
    RandomBatchedSource source(params);
    ShardedRunRecord sharded =
        run_streaming_sharded(source, "dlru-edf", 16, k, shard_rounds);
    StreamingCell cell;
    cell.family = "random-batched-shards" + std::to_string(k);
    cell.record = std::move(sharded.merged);
    cell.arrival_rounds = shard_rounds;
    cell.shards = k;
    named.push_back(std::move(cell));
  }

  // K = 8 needs eight granularity-4 blocks, so it runs at its own budget
  // n = 32: the wide-fleet scaling cell.  Same source config and round
  // count, so its arrived count joins the agreement check below.
  {
    RandomBatchedParams params;
    params.seed = 99;
    params.num_colors = 32;
    params.horizon = kInfiniteHorizon;
    RandomBatchedSource source(params);
    ShardedRunRecord sharded =
        run_streaming_sharded(source, "dlru-edf", 32, 8, shard_rounds);
    StreamingCell cell;
    cell.family = "random-batched-shards8";
    cell.record = std::move(sharded.merged);
    cell.arrival_rounds = shard_rounds;
    cell.shards = 8;
    named.push_back(std::move(cell));
  }

  // Sparse cells: the fast-forward gate.  Both streams are almost always
  // empty — a trickle Poisson (about one arrival per 250 rounds across
  // all colors, delay bounds 64/128 so deadline-block boundaries are far
  // apart) and a flash crowd whose floor is a trickle with one dense
  // mid-run spike.  Each config runs twice, engine fast-forward on
  // (default) and off: identical streams, so the totals must agree bit
  // for bit, and the off/on wall-clock ratio measures the sparse-round
  // optimization directly (>= 1.5x once the sequential run is long
  // enough to time reliably).  The -noff rows join the JSON and the
  // baseline gate, pinning the sequential path too.
  const std::size_t first_sparse_cell = named.size();
  bool ok = true;
  {
    struct SparseConfig {
      std::string family;
      std::function<StreamRunRecord(bool)> run;
    };
    const SparseConfig sparse_configs[] = {
        {"poisson-sparse",
         [rounds](bool fast_forward) {
           PoissonParams params;
           params.seed = 99;
           params.num_colors = 8;
           params.min_delay = 64;
           params.max_delay = 128;
           params.mean_rate = 0.0005;
           params.horizon = kInfiniteHorizon;
           PoissonSource source(params);
           return run_streaming(source, "dlru-edf", 8, rounds, nullptr,
                                false, nullptr, fast_forward);
         }},
        {"flash-gap",
         [rounds](bool fast_forward) {
           FlashCrowdParams params;
           params.seed = 99;
           params.base_rate = 0.0005;
           params.spike_factor = 4000.0;
           params.spike_start = rounds / 2;
           params.spike_end = rounds / 2 + std::min<Round>(1024, rounds / 8);
           params.background_colors = 3;
           params.background_rate = 0.0002;
           params.background_delay = 64;
           params.horizon = kInfiniteHorizon;
           FlashCrowdSource source(params);
           return run_streaming(source, "dlru-edf", 8, rounds, nullptr,
                                false, nullptr, fast_forward);
         }},
    };
    for (const SparseConfig& config : sparse_configs) {
      StreamingCell on;
      on.family = config.family;
      on.record = config.run(true);
      on.arrival_rounds = rounds;
      StreamingCell off;
      off.family = config.family + "-noff";
      off.record = config.run(false);
      off.arrival_rounds = rounds;
      const double speedup = on.record.seconds > 0
                                 ? off.record.seconds / on.record.seconds
                                 : 0.0;
      std::cout << "  " << config.family << ": fast-forward " << speedup
                << "x vs sequential (" << off.record.seconds << " s -> "
                << on.record.seconds << " s, " << on.record.arrived
                << " jobs)\n";
      ok = ok && on.record.cost.total() == off.record.cost.total() &&
           on.record.arrived == off.record.arrived &&
           on.record.executed == off.record.executed &&
           on.record.rounds == off.record.rounds;
      if (off.record.seconds >= 0.2 && speedup < 1.5) {
        std::cout << "    fast-forward speedup below the 1.5x floor\n";
        ok = false;
      }
      named.push_back(std::move(on));
      named.push_back(std::move(off));
    }
  }

  const std::int64_t rss = peak_rss_bytes();
  const double rss_mb = static_cast<double>(rss) / (1024.0 * 1024.0);

  for (const StreamingCell& cell : named) {
    const double rps =
        cell.record.seconds > 0
            ? static_cast<double>(cell.record.rounds) / cell.record.seconds
            : 0.0;
    std::cout << "  " << cell.family << ": " << cell.record.rounds
              << " rounds in " << cell.record.seconds << " s  ("
              << static_cast<std::int64_t>(rps) << " rounds/s, "
              << cell.record.arrived << " jobs, peak_pending "
              << cell.record.peak_pending << ")\n";
    if (!cell.phase_seconds.empty()) {
      std::cout << "    phases:";
      for (const auto& [phase, secs] : cell.phase_seconds) {
        std::cout << " " << phase << "=" << secs << "s";
      }
      std::cout << "\n";
    }
    ok = ok && cell.record.rounds >= cell.arrival_rounds;
    // Bounded memory: the engine never holds more than the live pending
    // set, which the drop phase caps at ~(max delay * arrival rate).
    ok = ok && cell.record.peak_pending < cell.record.arrived;
  }
  std::cout << "  peak RSS: " << rss_mb << " MiB\n";

  // Scaling summary: every K sees the identical arrival stream, so the
  // arrived counts must agree and speedups are directly comparable.
  const StreamingCell& one_shard = named[first_shard_cell];
  for (std::size_t i = first_shard_cell; i < first_sparse_cell; ++i) {
    const StreamingCell& cell = named[i];
    ok = ok && cell.record.arrived == one_shard.record.arrived;
    const double speedup = cell.record.seconds > 0
                               ? one_shard.record.seconds / cell.record.seconds
                               : 0.0;
    std::cout << "  shards=" << cell.shards << ": " << speedup
              << "x vs shards=1\n";
  }

  std::string json = "{\n";
  json += "  \"bench\": \"E9-streaming\",\n";
  json += "  \"algorithm\": \"dlru-edf\",\n";
  json += "  \"pool_workers\": " + std::to_string(workers) + ",\n";
  json += "  \"peak_rss_bytes\": " + std::to_string(rss) + ",\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < named.size(); ++i) {
    append_json_record(json, named[i]);
    json += i + 1 < named.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  const char* dir = std::getenv("RRS_BENCH_CSV_DIR");
  const std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string())
          + "BENCH_streaming.json";
  std::ofstream out(path);
  out << json;
  out.close();
  std::cout << "(json: " << path << ")\n";

  ok = check_against_baseline(named) && ok;

  return bench::verdict(ok, "streaming engine sustained " +
                                std::to_string(rounds) +
                                " rounds per source with bounded pending");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_streaming_section() ? 0 : 1;
}
