// E9 — engineering: simulator throughput (google-benchmark).
//
// Not a paper claim; measures the substrate so users can size experiments:
// engine rounds/second and jobs/second for dLRU-EDF across color counts
// and resource counts, generator and validator throughput, and the exact
// offline DP's cost on a tiny instance (to document its scaling wall).
#include <benchmark/benchmark.h>

#include "algs/registry.h"
#include "core/validator.h"
#include "offline/optimal.h"
#include "sim/runner.h"
#include "workload/random_batched.h"

namespace {

using namespace rrs;

Instance bench_instance(int colors, Round horizon,
                        std::uint64_t seed = 99) {
  RandomBatchedParams params;
  params.seed = seed;
  params.delta = 8;
  params.num_colors = colors;
  params.min_scale = 2;
  params.max_scale = 6;
  params.horizon = horizon;
  return make_random_batched(params);
}

void BM_DLruEdfEngine(benchmark::State& state) {
  const int colors = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const Instance inst = bench_instance(colors, 4096);
  for (auto _ : state) {
    auto policy = make_policy("dlru-edf");
    EngineOptions options;
    options.num_resources = n;
    options.replication = 2;
    options.record_schedule = false;
    benchmark::DoNotOptimize(run_policy(inst, *policy, options));
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(inst.horizon()), benchmark::Counter::kIsRate);
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(inst.jobs().size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DLruEdfEngine)
    ->Args({8, 8})
    ->Args({32, 8})
    ->Args({128, 8})
    ->Args({32, 4})
    ->Args({32, 16})
    ->Args({32, 64});

void BM_VarBatchPipeline(benchmark::State& state) {
  const Instance inst = bench_instance(static_cast<int>(state.range(0)),
                                       2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm(inst, "varbatch", 8));
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(inst.jobs().size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VarBatchPipeline)->Arg(8)->Arg(32);

void BM_Generator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_instance(32, static_cast<Round>(state.range(0))));
  }
}
BENCHMARK(BM_Generator)->Arg(1024)->Arg(8192);

void BM_Validator(benchmark::State& state) {
  const Instance inst = bench_instance(32, 2048);
  Schedule schedule;
  (void)run_algorithm(inst, "dlru-edf", 8, &schedule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(inst, schedule));
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(schedule.execs.size() + schedule.reconfigs.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Validator);

void BM_ExactOfflineDp(benchmark::State& state) {
  RandomBatchedParams params;
  params.seed = 1;
  params.delta = 2;
  params.num_colors = static_cast<int>(state.range(0));
  params.min_scale = 1;
  params.max_scale = 3;
  params.horizon = 16;
  const Instance inst = make_random_batched(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_offline_cost(inst, 1));
  }
}
BENCHMARK(BM_ExactOfflineDp)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
