// E6 — Lemmas 3.2-3.4: the amortized quantities behind Theorem 1,
// measured.
//
// For dLRU-EDF runs (n = 8m) over random rate-limited workloads, three
// inequalities from the analysis are checked numerically and their slack
// reported:
//   Lemma 3.3:  ReconfigCost        <= 4 * numEpochs * Delta
//   Lemma 3.4:  IneligibleDropCost  <=     numEpochs * Delta
//   Lemma 3.2 chain (Delta = 1, where the eligible subsequence equals the
//   full input):  EligibleDropCost <= Drop(DS-Seq-EDF, m) <= Drop(Par-EDF, m)
#include <iostream>

#include "algs/dlru_edf.h"
#include "algs/par_edf.h"
#include "algs/seq_edf.h"
#include "bench_common.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E6 (Lemmas 3.2-3.4)",
                "amortized bounds of the Theorem 1 analysis, measured");

  const int m = 1;
  const int n = 8 * m;

  TextTable lemma34({"seed", "Delta", "epochs", "reconfig", "4*ep*D",
                     "inelig drops", "ep*D", "L3.3 ok", "L3.4 ok"});
  bool l33 = true, l34 = true;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.delta = 8;
    params.num_colors = 16;
    params.horizon = 2048;
    const Instance inst = make_random_batched(params);

    DLruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = n;
    options.replication = 2;
    options.record_schedule = false;
    const EngineResult r = run_policy(inst, policy, options);

    const std::int64_t epochs = policy.tracker().num_epochs();
    const Cost bound33 = 4 * epochs * inst.delta();
    const Cost bound34 = epochs * inst.delta();
    const bool ok33 = r.cost.reconfig_cost <= bound33;
    const bool ok34 = policy.tracker().ineligible_drops() <= bound34;
    l33 &= ok33;
    l34 &= ok34;
    lemma34.add_row({std::to_string(seed), std::to_string(inst.delta()),
                     std::to_string(epochs),
                     std::to_string(r.cost.reconfig_cost),
                     std::to_string(bound33),
                     std::to_string(policy.tracker().ineligible_drops()),
                     std::to_string(bound34), ok33 ? "yes" : "NO",
                     ok34 ? "yes" : "NO"});
  }
  lemma34.print(std::cout);

  std::cout << "\nLemma 3.2 drop chain (Delta = 1):\n";
  TextTable chain({"seed", "eligible drops", "DS-Seq-EDF drops",
                   "Par-EDF drops", "chain ok"});
  bool l32 = true;
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.delta = 1;
    params.num_colors = 16;
    params.horizon = 2048;
    const Instance inst = make_random_batched(params);

    DLruEdfPolicy policy;
    EngineOptions options;
    options.num_resources = n;
    options.replication = 2;
    options.record_schedule = false;
    (void)run_policy(inst, policy, options);
    const Cost ds = run_ds_seq_edf(inst, m).cost.drops;
    const std::int64_t par = run_par_edf(inst, m).drops;
    const bool ok =
        policy.tracker().eligible_drops() <= ds && ds <= par;
    l32 &= ok;
    chain.add_row({std::to_string(seed),
                   std::to_string(policy.tracker().eligible_drops()),
                   std::to_string(ds), std::to_string(par),
                   ok ? "yes" : "NO"});
  }
  chain.print(std::cout);

  std::cout << "\nSection 3.4 super-epoch accounting (Lemma 3.15):\n";
  TextTable supers({"seed", "epochs", "super-epochs", "ts updates",
                    "max endings/super", "L3.15 ok"});
  bool l315 = true;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    RandomBatchedParams params;
    params.seed = seed;
    params.delta = 4;
    params.num_colors = 16;
    params.horizon = 2048;
    const Instance inst = make_random_batched(params);

    DLruEdfPolicy policy;
    policy.enable_super_epoch_analysis(m);
    EngineOptions options;
    options.num_resources = n;
    options.replication = 2;
    options.record_schedule = false;
    (void)run_policy(inst, policy, options);
    const bool ok315 =
        policy.tracker().max_epoch_endings_per_super_epoch() <= 2;
    l315 &= ok315;
    supers.add_row(
        {std::to_string(seed),
         std::to_string(policy.tracker().num_epochs()),
         std::to_string(policy.tracker().num_super_epochs()),
         std::to_string(policy.tracker().timestamp_updates()),
         std::to_string(
             policy.tracker().max_epoch_endings_per_super_epoch()),
         ok315 ? "yes" : "NO"});
  }
  supers.print(std::cout);

  std::cout << "\n";
  bool ok = true;
  ok &= bench::verdict(l33, "Lemma 3.3: reconfig <= 4 * epochs * Delta");
  ok &= bench::verdict(l34, "Lemma 3.4: ineligible drops <= epochs * Delta");
  ok &= bench::verdict(
      l32, "Lemma 3.2 chain: eligible <= DS-Seq-EDF <= Par-EDF drops");
  ok &= bench::verdict(
      l315, "Lemma 3.15: <= 2 epoch endings per color per super-epoch");
  return ok ? 0 : 1;
}
