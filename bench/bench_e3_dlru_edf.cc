// E3 — Theorem 1: dLRU-EDF is resource competitive on rate-limited
// [Delta | 1 | D_l | D_l] with power-of-two delay bounds.
//
// The paper gives no experiments; this bench turns the theorem into a
// measurement.  Across random rate-limited workloads — sweeping Delta, the
// number of colors, and the delay-bound spread — dLRU-EDF with n = 8m
// resources is compared against the bracket LB(m) <= OPT(m) <= greedyUB(m)
// (see DESIGN.md).  The theorem predicts cost / OPT stays below a constant
// on every input; the straw-man schemes are shown alongside.
#include <iostream>

#include "bench_common.h"
#include "offline/greedy_offline.h"
#include "offline/lower_bound.h"
#include "sim/ratio.h"
#include "sim/sweep.h"
#include "workload/random_batched.h"

int main() {
  using namespace rrs;
  bench::banner("E3 (Theorem 1)",
                "dLRU-EDF is O(1)-competitive with n = 8m on rate-limited "
                "batched inputs");

  struct Config {
    const char* label;
    RandomBatchedParams params;
  };
  std::vector<Config> configs;
  for (const Cost delta : {2, 8, 32}) {
    RandomBatchedParams p;
    p.delta = delta;
    p.num_colors = 16;
    p.min_scale = 2;
    p.max_scale = 6;
    p.horizon = 2048;
    configs.push_back({"delta sweep", p});
  }
  for (const int colors : {8, 24, 48}) {
    RandomBatchedParams p;
    p.delta = 8;
    p.num_colors = colors;
    p.min_scale = 2;
    p.max_scale = 6;
    p.horizon = 2048;
    configs.push_back({"color sweep", p});
  }
  for (const int spread : {0, 3, 7}) {
    RandomBatchedParams p;
    p.delta = 8;
    p.num_colors = 16;
    p.min_scale = 3;
    p.max_scale = 3 + spread;
    p.horizon = 2048;
    configs.push_back({"delay-spread sweep", p});
  }

  const int m = 1;
  const int n = 8 * m;
  TextTable table({"sweep", "Delta", "colors", "scales", "LB(m)", "UB(m)",
                   "dLRU-EDF", "ratio<=", "ratio>=", "dLRU", "EDF"});
  CsvWriter csv({"sweep", "delta", "colors", "min_scale", "max_scale",
                 "lb", "ub", "dlru_edf", "ratio_lb", "ratio_ub", "dlru",
                 "edf"});

  // Each cell runs three algorithms plus the offline bracket; sweep them
  // in parallel.
  std::vector<std::function<std::vector<std::string>()>> cells;
  for (const Config& config : configs) {
    cells.emplace_back([config, m, n] {
      RandomBatchedParams p = config.params;
      p.seed = 42;
      const Instance inst = make_random_batched(p);
      const RatioReport combo = measure_ratio(inst, "dlru-edf", n, m);
      const RunRecord dlru = run_algorithm(inst, "dlru", n);
      const RunRecord edf = run_algorithm(inst, "edf", n);
      return std::vector<std::string>{
          config.label,
          std::to_string(p.delta),
          std::to_string(p.num_colors),
          std::to_string(p.min_scale) + ".." + std::to_string(p.max_scale),
          std::to_string(combo.lower_bound),
          std::to_string(combo.heuristic_ub),
          std::to_string(combo.online.cost.total()),
          fmt_ratio(combo.ratio_vs_lb),
          fmt_ratio(combo.ratio_vs_ub),
          std::to_string(dlru.cost.total()),
          std::to_string(edf.cost.total()),
      };
    });
  }
  double worst_ratio = 0.0;
  for (const auto& row : run_sweep(cells)) {
    table.add_row(row);
    csv.add_row({row[0], row[1], row[2], row[3].substr(0, row[3].find('.')),
                 row[3].substr(row[3].rfind('.') + 1), row[4], row[5],
                 row[6], row[7].substr(1), row[8].substr(1), row[9],
                 row[10]});
    worst_ratio = std::max(worst_ratio, std::stod(row[7].substr(1)));
  }
  table.print(std::cout);
  bench::maybe_write_csv(csv, "e3_dlru_edf");

  std::cout << "\n'ratio<=' is cost / certified-LB (upper bound on the true "
               "ratio); 'ratio>=' is cost / greedy-UB.\n"
            << "paper: the true ratio is bounded by a constant on every "
               "input.\n";
  return bench::verdict(worst_ratio < 12.0,
                        "dLRU-EDF ratio bounded by a small constant across "
                        "all sweeps")
             ? 0
             : 1;
}
