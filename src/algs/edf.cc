#include "algs/edf.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "obs/observer.h"
#include "util/check.h"

namespace rrs {

void EdfPolicy::begin(const ArrivalSource& source, int num_resources,
                      int speed) {
  (void)num_resources;
  (void)speed;
  tracker_.enable_rank_index();
  tracker_.begin(source);
  rank_pos_.ensure_size(static_cast<std::size_t>(source.num_colors()));
  observed_epochs_ = 0;
}

void EdfPolicy::on_round(RoundContext& ctx) {
  if (ctx.first_mini()) {
    tracker_.drop_phase(ctx.round(), ctx.dropped(), ctx.cache());
    if (!ctx.final_sweep()) {
      tracker_.arrival_phase(ctx.round(), ctx.arrivals());
    }
    if (Observer* o = ctx.obs(); o != nullptr && o->config.trace) {
      const std::int64_t epochs = tracker_.num_epochs();
      if (epochs != observed_epochs_) {
        o->trace.push({ctx.round(), TraceKind::kEpochTurnover, 0, epochs});
        observed_epochs_ = epochs;
      }
    }
    if (ctx.final_sweep()) return;
  }
  CacheAssignment& cache = ctx.cache();
  const PendingJobs& pending = ctx.pending();

  const std::vector<ColorId>& ranked = tracker_.edf_order(pending);

  rank_pos_.clear();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    rank_pos_.set(ranked[i], static_cast<std::int32_t>(i));
  }

  // Cache every nonidle color among the top max_distinct() ranks; when
  // full, evict the cached color with the worst rank.  Cached colors are
  // always eligible (a color only becomes ineligible while uncached), so
  // every cached color has a rank.
  const auto top = std::min(ranked.size(),
                            static_cast<std::size_t>(cache.max_distinct()));
  for (std::size_t i = 0; i < top; ++i) {
    const ColorId color = ranked[i];
    if (pending.idle(color) || cache.contains(color)) continue;
    if (cache.full()) {
      ColorId victim = kBlack;
      std::int32_t worst = -1;
      for (const ColorId c : cache.cached_colors()) {
        RRS_CHECK_MSG(rank_pos_.contains(c),
                      "cached color " << c << " missing from EDF ranking");
        const std::int32_t pos = rank_pos_.at(c);
        if (pos > worst) {
          worst = pos;
          victim = c;
        }
      }
      RRS_CHECK_MSG(worst > static_cast<std::int32_t>(i),
                    "EDF would evict a better-ranked color than it inserts");
      cache.erase(victim);
    }
    cache.insert(color);
  }
}

void EdfPolicy::on_capacity_change(Round round, int up, int total,
                                   std::span<const ColorId> evicted) {
  (void)round;
  (void)up;
  (void)total;
  (void)evicted;
  // The ranking is rebuilt from the tracker against the live max_distinct()
  // every round; only the cross-round rank scratch needs invalidating.
  rank_pos_.clear();
  ++capacity_changes_;
}

std::vector<std::pair<std::string, std::int64_t>> EdfPolicy::stats() const {
  return {{"epochs", tracker_.num_epochs()},
          {"eligible_drops", tracker_.eligible_drops()},
          {"ineligible_drops", tracker_.ineligible_drops()},
          {"capacity_changes", capacity_changes_}};
}

void EdfPolicy::checkpoint_state(CheckpointWriter& w) const {
  tracker_.checkpoint(w);
  w.i64(capacity_changes_);
  w.i64(observed_epochs_);
}

void EdfPolicy::restore_state(CheckpointReader& r) {
  tracker_.restore_checkpoint(r);
  capacity_changes_ = r.i64();
  observed_epochs_ = r.i64();
}

}  // namespace rrs
