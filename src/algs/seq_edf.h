// Seq-EDF and DS-Seq-EDF (Section 3.3 analysis machinery), runnable.
//
// Seq-EDF is EDF given m resources with ALL capacity used for distinct
// colors (no replication); DS-Seq-EDF is its double-speed variant
// (reconfiguration + execution phases repeated twice per round).  The paper
// uses DS-Seq-EDF as a bridge between Par-EDF and dLRU-EDF in the proof of
// Lemma 3.2; tests and experiment E6 exercise the same chain numerically:
//
//   EligibleDropCost(dLRU-EDF)  <=  DropCost(DS-Seq-EDF)
//                               <=  DropCost(Par-EDF)  <=  DropCost(OFF).
#pragma once

#include "core/engine.h"
#include "core/instance.h"

namespace rrs {

/// Runs Seq-EDF with `m` resources on `instance`.
[[nodiscard]] EngineResult run_seq_edf(const Instance& instance, int m,
                                       bool record_schedule = false);

/// Runs double-speed Seq-EDF with `m` resources on `instance`.
[[nodiscard]] EngineResult run_ds_seq_edf(const Instance& instance, int m,
                                          bool record_schedule = false);

}  // namespace rrs
