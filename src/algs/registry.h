// Name-based access to every runnable algorithm, for examples and benches.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/policy.h"

namespace rrs {

/// Uniform outcome of running any algorithm (policy or reduction pipeline)
/// on an instance with n resources.
struct RunOutcome {
  std::string algorithm;
  CostBreakdown cost;
  std::int64_t executed = 0;
  Schedule schedule;  ///< recorded iff requested
  std::vector<std::pair<std::string, std::int64_t>> stats;
};

/// An entry in the algorithm registry.
struct AlgorithmInfo {
  std::string name;
  std::string description;
  /// Runs the algorithm.  `record` controls schedule recording (pipelines
  /// always record internally but only return the schedule if asked).
  std::function<RunOutcome(const Instance&, int n, bool record)> run;
};

/// All registered algorithms: dlru, edf, dlru-edf, adaptive, seq-edf,
/// ds-seq-edf, distribute, varbatch.
[[nodiscard]] const std::vector<AlgorithmInfo>& algorithm_registry();

/// Looks up an algorithm by name; throws InputError if unknown.
[[nodiscard]] const AlgorithmInfo& find_algorithm(const std::string& name);

/// Creates a fresh policy instance for the Section 3 schemes ("dlru",
/// "edf", "dlru-edf") and the "adaptive" extension; throws InputError
/// otherwise.
[[nodiscard]] std::unique_ptr<Policy> make_policy(const std::string& name);

}  // namespace rrs
