// Adaptive-split dLRU-EDF: an ARC-inspired extension (not in the paper).
//
// The paper's related-work section points at Megiddo & Modha's Adaptive
// Replacement Cache, which self-tunes the balance between its recency and
// frequency lists.  dLRU-EDF has the analogous knob — how much capacity
// the recency (LRU) half gets versus the deadline (EDF) half — fixed at
// 50/50 by the paper.  This extension tunes it online:
//
//   every `window` rounds, compare the window's reconfiguration spend
//   (thrashing pressure) against its drop spend (underutilization
//   pressure); grow the LRU share when thrashing dominates (pinned colors
//   stop the flapping) and shrink it when drops dominate (deadline-driven
//   utilization needs room).
//
// The adaptation cannot break Theorem 1's machinery — every intermediate
// split is a valid dLRU-EDF configuration — but it can (and measurably
// does, see bench_a1_split) shave constant factors on skewed workloads.
#pragma once

#include "algs/dlru_edf.h"

namespace rrs {

/// Self-tuning LRU/EDF capacity split.
class AdaptiveSplitPolicy : public DLruEdfPolicy {
 public:
  struct Options {
    double initial_fraction = 0.5;
    double min_fraction = 0.05;
    double max_fraction = 0.9;
    double step = 0.05;
    Round window = 64;  ///< rounds between adaptation decisions
  };

  AdaptiveSplitPolicy() : AdaptiveSplitPolicy(Options()) {}
  explicit AdaptiveSplitPolicy(Options options);

  [[nodiscard]] std::string_view name() const override { return "adaptive"; }

  void begin(const ArrivalSource& source, int num_resources,
             int speed) override;
  void on_round(RoundContext& ctx) override;

  /// Between window boundaries the policy is a plain dLRU-EDF plus
  /// counters that only move on drops/insertions — none of which occur
  /// in an event-free span — so skipping is exact as long as the engine
  /// stops at the adaptation boundary, which next_policy_event() exposes.
  [[nodiscard]] Round next_policy_event(Round k) const override {
    (void)k;
    return window_end_;
  }

  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> stats()
      const override;

  /// Base checkpoint plus the adaptation-window accumulators.
  void checkpoint_state(CheckpointWriter& w) const override;
  void restore_state(CheckpointReader& r) override;

 private:
  Options options_;
  Cost window_drop_cost_ = 0;
  Cost window_reconfig_cost_ = 0;
  Round window_end_ = 0;
  std::int64_t adaptations_ = 0;
  /// Per-color cold re-image price, cached at begin(): each insertion of
  /// color c spends replication * cold_cost(c) (== replication * Delta
  /// under the scalar tier, matching the original accounting).
  std::vector<Cost> cold_costs_;
  StampedMap<char> was_cached_;  // scratch: cached set before reconfigure
};

}  // namespace rrs
