// Algorithm VarBatch (Section 5.1 + 5.3): general -> batched reduction,
// and the paper's end-to-end online algorithm for [Delta | 1 | D_l | 1].
//
// Each job of delay bound p arriving in half-block i (of length e, where
// e = p/2 for power-of-two p, and e = floor_pow2(p)/2 in the Section 5.3
// extension to arbitrary bounds) is delayed to the start of half-block
// i+1 and its execution restricted there.  The transformed instance is
// batched with delay bounds e, so Distribute + dLRU-EDF solve it; the
// schedule maps back verbatim (delayed windows are contained in real
// windows), so cost is preserved exactly.
//
// Delay-bound-1 colors are already batched and pass through unchanged.
#pragma once

#include <vector>

#include "algs/distribute.h"
#include "core/engine.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {

/// The instance transformation of VarBatch.
struct VarBatchTransform {
  Instance batched;  ///< sigma': delayed, half-block-batched instance
  /// Job id in `batched` -> job id in the original instance.
  std::vector<JobId> job_to_original;
};

/// Effective batched delay bound for original bound `p`:
/// 1 for p == 1, floor_pow2(p) / 2 otherwise (= p/2 when p is a power of
/// two, matching Section 5.1; the general rule is Section 5.3).
[[nodiscard]] Round varbatch_effective_delay(Round p);

/// Builds the batched instance sigma' from an arbitrary [Delta|1|D_l|1]
/// instance.
[[nodiscard]] VarBatchTransform varbatch_transform(const Instance& instance);

/// Maps a schedule for sigma' back to the original instance (executions
/// re-indexed; reconfigurations unchanged).
[[nodiscard]] Schedule varbatch_map_back(const VarBatchTransform& transform,
                                         const Schedule& batched_schedule);

/// End-to-end online algorithm VarBatch: delay-batch, Distribute, dLRU-EDF,
/// map back.  This is the paper's Theorem 3 algorithm.
struct VarBatchResult {
  EngineResult core_run;  ///< dLRU-EDF on the doubly-transformed instance
  Schedule schedule;      ///< mapped back onto the original instance
  CostBreakdown cost;     ///< cost of `schedule` on the original instance
};
[[nodiscard]] VarBatchResult run_varbatch(const Instance& instance, int n);

}  // namespace rrs
