#include "algs/par_edf.h"

#include <set>
#include <tuple>

#include "core/pending.h"
#include "util/check.h"

namespace rrs {

ParEdfResult run_par_edf(const Instance& instance, int m) {
  RRS_REQUIRE(m >= 1, "Par-EDF needs m >= 1");
  PendingJobs pending;
  pending.reset(instance.num_colors());

  // Colors with pending jobs, keyed by the rank of their best (front) job:
  // (deadline, delay bound, color).  The overall best-ranked pending job is
  // always the front job of the first color here.
  using Key = std::tuple<Round, Round, ColorId>;
  std::set<Key> active;
  const auto key_of = [&](ColorId c) {
    return Key{pending.earliest_deadline(c), instance.delay_bound(c), c};
  };

  ParEdfResult result;
  PendingJobs::DropResult dropped;  // reused sweep buffer
  for (Round k = 0; k < instance.horizon(); ++k) {
    // Drop phase.  Colors whose front job expires leave a stale key in
    // `active`; stale keys sort no later than the color's true key and are
    // refreshed lazily when they reach the front of the set below.
    pending.drop_expired(k, dropped);
    result.drops += dropped.total;

    // Arrival phase.
    for (const Job& job : instance.arrivals_in_round(k)) {
      const bool was_idle = pending.idle(job.color);
      pending.add(job);
      if (was_idle) active.insert(key_of(job.color));
    }

    // Execution phase: up to m best-ranked pending jobs.
    for (int executed_this_round = 0; executed_this_round < m;) {
      if (active.empty()) break;
      const auto it = active.begin();
      const auto [deadline, delay, color] = *it;
      if (pending.idle(color) || pending.earliest_deadline(color) != deadline) {
        // Stale key (front expired in the drop phase); refresh lazily.
        active.erase(it);
        if (!pending.idle(color)) active.insert(key_of(color));
        continue;
      }
      pending.pop_earliest(color);
      ++result.executed;
      ++executed_this_round;
      active.erase(it);
      if (!pending.idle(color)) active.insert(key_of(color));
    }
  }
  result.drops += pending.total();  // anything beyond the horizon
  return result;
}

}  // namespace rrs
