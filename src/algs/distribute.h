// Algorithm Distribute (Section 4.1): batched -> rate-limited reduction.
//
// Given an instance of [Delta | 1 | D_l | D_l] (batched arrivals, possibly
// more than D_l color-l jobs per batch), Distribute splits each color l
// into virtual colors (l, 0), (l, 1), ...: the jobs of color l in request i
// are ranked in arrival order and job rank r is recolored to
// (l, floor(r / D_l)).  The resulting instance is rate-limited (at most D_l
// jobs per virtual color per batch), is solved by dLRU-EDF, and the
// schedule is mapped back by erasing the virtual-color distinction.
// Mapping back never increases cost (Lemma 4.2): executions are 1:1, and
// reconfigurations between sibling virtual colors of one real color vanish.
#pragma once

#include <vector>

#include "core/engine.h"
#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {

/// The instance transformation of Distribute.
struct DistributeTransform {
  Instance rate_limited;  ///< I': the rate-limited virtual-color instance
  /// Virtual color -> real color.  Job ids are shared between I and I'
  /// (job j of I' is job j of I, recolored).
  std::vector<ColorId> virtual_to_real;
};

/// Builds the rate-limited instance I' from a batched instance I.
/// Requires instance.is_batched().
[[nodiscard]] DistributeTransform distribute_transform(
    const Instance& instance);

/// Maps a schedule for I' back to a schedule for I (step three of
/// Distribute).  Reconfigurations that keep the real color of a resource
/// unchanged are elided, so the mapped cost never exceeds the virtual cost.
[[nodiscard]] Schedule distribute_map_back(
    const DistributeTransform& transform, const Schedule& virtual_schedule);

/// End-to-end online algorithm Distribute: transform, run dLRU-EDF with
/// `n` resources on I', map back.  Returns the mapped schedule's engine
/// result (cost recomputed for the mapped schedule).
struct DistributeResult {
  EngineResult virtual_run;  ///< dLRU-EDF on I' (schedule recorded)
  Schedule schedule;         ///< mapped back onto I
  CostBreakdown cost;        ///< cost of `schedule` on I
};
[[nodiscard]] DistributeResult run_distribute(const Instance& instance,
                                              int n);

}  // namespace rrs
