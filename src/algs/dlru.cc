#include "algs/dlru.h"

#include <algorithm>

#include "algs/ranked_cache.h"
#include "util/check.h"

namespace rrs {

void DLruPolicy::begin(const ArrivalSource& source, int num_resources,
                       int speed) {
  (void)num_resources;
  (void)speed;
  tracker_.begin(source);
}

void DLruPolicy::on_drop_phase(Round k, const PendingJobs::DropResult& dropped,
                               const EngineView& view) {
  tracker_.drop_phase(k, dropped, view.cache());
}

void DLruPolicy::on_arrival_phase(Round k, std::span<const Job> arrivals,
                                  const EngineView& view) {
  (void)view;
  tracker_.arrival_phase(k, arrivals);
}

void DLruPolicy::reconfigure(Round k, int mini, const EngineView& view,
                             CacheAssignment& cache) {
  (void)mini;
  (void)view;
  // Invariant: the cache holds exactly the top min(n/2, |eligible|)
  // eligible colors by timestamp recency.
  scratch_ = tracker_.eligible_colors();
  lru_sort(scratch_, tracker_, k);
  const auto capacity = static_cast<std::size_t>(cache.max_distinct());
  if (scratch_.size() > capacity) scratch_.resize(capacity);

  // Evict cached colors outside the target set, then insert the rest.
  std::vector<ColorId> to_evict;
  for (const ColorId c : cache.cached_colors()) {
    if (std::find(scratch_.begin(), scratch_.end(), c) == scratch_.end()) {
      to_evict.push_back(c);
    }
  }
  for (const ColorId c : to_evict) cache.erase(c);
  for (const ColorId c : scratch_) {
    if (!cache.contains(c)) cache.insert(c);
  }
}

std::vector<std::pair<std::string, std::int64_t>> DLruPolicy::stats() const {
  return {{"epochs", tracker_.num_epochs()},
          {"eligible_drops", tracker_.eligible_drops()},
          {"ineligible_drops", tracker_.ineligible_drops()}};
}

}  // namespace rrs
