#include "algs/dlru.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "obs/observer.h"
#include "util/check.h"

namespace rrs {

void DLruPolicy::begin(const ArrivalSource& source, int num_resources,
                       int speed) {
  (void)num_resources;
  (void)speed;
  tracker_.enable_rank_index();
  tracker_.begin(source);
  in_target_.ensure_size(static_cast<std::size_t>(source.num_colors()));
  observed_epochs_ = 0;
}

void DLruPolicy::on_round(RoundContext& ctx) {
  const Round k = ctx.round();
  if (ctx.first_mini()) {
    tracker_.drop_phase(k, ctx.dropped(), ctx.cache());
    if (!ctx.final_sweep()) tracker_.arrival_phase(k, ctx.arrivals());
    if (Observer* o = ctx.obs(); o != nullptr && o->config.trace) {
      const std::int64_t epochs = tracker_.num_epochs();
      if (epochs != observed_epochs_) {
        o->trace.push({k, TraceKind::kEpochTurnover, 0, epochs});
        observed_epochs_ = epochs;
      }
    }
    if (ctx.final_sweep()) return;
  }
  CacheAssignment& cache = ctx.cache();

  // Invariant: the cache holds exactly the top min(n/2, |eligible|)
  // eligible colors by timestamp recency.
  const auto capacity = static_cast<std::size_t>(cache.max_distinct());
  const std::vector<ColorId>& target = tracker_.lru_order(capacity);

  // Evict cached colors outside the target set, then insert the rest.
  in_target_.clear();
  for (const ColorId c : target) in_target_.set(c, 1);
  evict_scratch_.clear();
  for (const ColorId c : cache.cached_colors()) {
    if (!in_target_.contains(c)) evict_scratch_.push_back(c);
  }
  for (const ColorId c : evict_scratch_) cache.erase(c);
  for (const ColorId c : target) {
    if (!cache.contains(c)) cache.insert(c);
  }
}

void DLruPolicy::on_capacity_change(Round round, int up, int total,
                                    std::span<const ColorId> evicted) {
  (void)round;
  (void)up;
  (void)total;
  (void)evicted;
  // The target set is recomputed against the live max_distinct() every
  // round; only the cross-round membership scratch needs invalidating.
  in_target_.clear();
  ++capacity_changes_;
}

std::vector<std::pair<std::string, std::int64_t>> DLruPolicy::stats() const {
  return {{"epochs", tracker_.num_epochs()},
          {"eligible_drops", tracker_.eligible_drops()},
          {"ineligible_drops", tracker_.ineligible_drops()},
          {"capacity_changes", capacity_changes_}};
}

void DLruPolicy::checkpoint_state(CheckpointWriter& w) const {
  tracker_.checkpoint(w);
  w.i64(capacity_changes_);
  w.i64(observed_epochs_);
}

void DLruPolicy::restore_state(CheckpointReader& r) {
  tracker_.restore_checkpoint(r);
  capacity_changes_ = r.i64();
  observed_epochs_ = r.i64();
}

}  // namespace rrs
