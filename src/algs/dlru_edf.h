// Algorithm dLRU-EDF (Section 3.1.3): the paper's main contribution.
//
// A combination of recency and deadline caching, with the cache capacity
// split in half:
//   * the LRU half always holds the (up to) n/4 eligible colors with the
//     most recent counter-wrap timestamps — *whether or not they have
//     pending jobs* — which prevents thrashing on intermittently idle
//     short-delay colors;
//   * the EDF half brings in every nonidle non-LRU color in the top n/4 of
//     the EDF ranking, which keeps resources utilized.
// Evictions always take the worst-EDF-ranked cached non-LRU color.
//
// Theorem 1 proves this resource competitive for rate-limited
// [Delta | 1 | D_l | D_l] with power-of-two delay bounds when n = 8m.
#pragma once

#include "algs/ranked_cache.h"
#include "core/color_state.h"
#include "core/policy.h"
#include "util/stamped_map.h"

namespace rrs {

/// The dLRU-EDF reconfiguration scheme.  Run with
/// EngineOptions{.replication=2}; num_resources must be divisible by 4.
///
/// `lru_fraction` generalizes the paper's even capacity split for ablation
/// studies: the LRU half holds floor(lru_fraction * max_distinct) colors
/// (clamped to max_distinct - 1 so an eviction victim always exists) and
/// the EDF half targets the remaining capacity.  The paper's algorithm is
/// lru_fraction = 0.5; 0.0 degenerates toward EDF and values near 1.0
/// toward dLRU.
class DLruEdfPolicy : public Policy {
 public:
  explicit DLruEdfPolicy(double lru_fraction = 0.5)
      : lru_fraction_(lru_fraction) {}

  [[nodiscard]] std::string_view name() const override { return "dlru-edf"; }

  void begin(const ArrivalSource& source, int num_resources,
             int speed) override;
  void on_round(RoundContext& ctx) override;
  void on_capacity_change(Round round, int up, int total,
                          std::span<const ColorId> evicted) override;

  /// n must split into the LRU and EDF halves, each of replicated colors.
  [[nodiscard]] int resource_granularity(int replication) const override {
    return 2 * replication;
  }

  /// Both halves are pure functions of tracker/pending/cache state, all
  /// of which are provably frozen across an event-free span, so the
  /// engine may skip such spans wholesale.
  [[nodiscard]] bool supports_fast_forward() const override { return true; }

  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> stats()
      const override;

  /// Migration hooks: the portable per-color state is exactly the
  /// tracker's Section 3.1 state machine (all round-level scratch is
  /// rebuilt each round).
  [[nodiscard]] bool export_color_state(ColorId color,
                                        PolicyColorState& out) const override {
    out = tracker_.export_color(color);
    return true;
  }
  void import_color_state(ColorId color,
                          const PolicyColorState& state) override {
    tracker_.import_color(color, state);
  }

  /// The tracker is exposed read-only so experiments can check the
  /// Section 3.2 lemmas (epoch counts, drop classification) directly.
  [[nodiscard]] const EligibilityTracker& tracker() const { return tracker_; }

  /// Turns on Section 3.4 super-epoch accounting (Lemma 3.15 /
  /// Corollary 3.2 quantities) for offline resource count `m`.  Call
  /// before the run starts.
  void enable_super_epoch_analysis(int m) {
    tracker_.enable_super_epoch_analysis(m);
  }

  /// Turns on ineligible-drop id recording (the Lemma 3.2 alpha
  /// construction).  Off by default — the id list grows with the run.
  void enable_drop_id_recording() { tracker_.enable_drop_id_recording(); }

  /// Checkpoint = the tracker, the live capacity split (adaptive
  /// derivatives retune it mid-run), and the two run counters; round
  /// scratch is rebuilt on the next on_round().  Derivatives extend by
  /// calling these and appending their own state.
  void checkpoint_state(CheckpointWriter& w) const override;
  void restore_state(CheckpointReader& r) override;

 protected:
  /// For adaptive derivatives (see algs/adaptive.h): retune the capacity
  /// split between rounds.  Must stay in [0, 1).
  void set_lru_fraction(double fraction) { lru_fraction_ = fraction; }
  [[nodiscard]] double lru_fraction() const { return lru_fraction_; }

  /// The reconfiguration decision alone (no tracker updates): recompute
  /// the LRU/EDF targets and mutate the cache.  Exposed so derivatives
  /// can wrap it; on_round() calls it every non-final mini-round.
  void reconfigure(RoundContext& ctx);

 private:
  /// Evicts the worst-EDF-ranked cached color that is not an LRU color and
  /// not protected (just inserted by the EDF half this phase).
  void evict_worst_non_lru(CacheAssignment& cache);

  double lru_fraction_;
  EligibilityTracker tracker_;
  std::vector<ColorId> edf_ranked_;
  StampedMap<char> is_lru_;        // member of this round's LRU target set
  StampedMap<char> is_protected_;  // inserted by the EDF half this phase
  StampedMap<std::int32_t> rank_pos_;
  std::int64_t capacity_changes_ = 0;
  std::int64_t observed_epochs_ = 0;  // last epoch count traced to the obs
};

}  // namespace rrs
