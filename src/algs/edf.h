// Algorithm EDF (Section 3.1.2): pure deadline-based reconfiguration.
//
// Ranks eligible colors (nonidle first, then earliest color deadline,
// breaking ties by delay bound and then a consistent color order) and
// caches every nonidle color among the top max_distinct() ranks, evicting
// the worst-ranked cached color when full.  The paper proves (Appendix B)
// that this is NOT resource competitive: alternating idleness of a
// short-delay color makes EDF thrash long-delay colors in and out.
//
// The same policy doubles as Seq-EDF (Section 3.3) when run with
// replication 1 — Seq-EDF "is defined the same as EDF except that [it] uses
// all the cache capacity to cache distinct colors" — and as DS-Seq-EDF with
// speed 2.
#pragma once

#include "algs/ranked_cache.h"
#include "core/color_state.h"
#include "core/policy.h"
#include "util/stamped_map.h"

namespace rrs {

/// The EDF reconfiguration scheme.  Run with EngineOptions{.replication=2}
/// for the paper's EDF, {.replication=1} for Seq-EDF, and additionally
/// {.speed=2} for DS-Seq-EDF.
class EdfPolicy : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "edf"; }

  void begin(const ArrivalSource& source, int num_resources,
             int speed) override;
  void on_round(RoundContext& ctx) override;
  void on_capacity_change(Round round, int up, int total,
                          std::span<const ColorId> evicted) override;

  /// EDF is a pure function of tracker/pending/cache state, all of which
  /// are provably frozen across an event-free span, so the engine may
  /// skip such spans wholesale.
  [[nodiscard]] bool supports_fast_forward() const override { return true; }

  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> stats()
      const override;

  /// Migration hooks: the portable per-color state is exactly the
  /// tracker's Section 3.1 state machine (ranking scratch is per-round).
  [[nodiscard]] bool export_color_state(ColorId color,
                                        PolicyColorState& out) const override {
    out = tracker_.export_color(color);
    return true;
  }
  void import_color_state(ColorId color,
                          const PolicyColorState& state) override {
    tracker_.import_color(color, state);
  }

  /// Checkpoint = the tracker plus the two run counters; ranking scratch
  /// is per-round and rebuilt on the next on_round().
  void checkpoint_state(CheckpointWriter& w) const override;
  void restore_state(CheckpointReader& r) override;

 private:
  EligibilityTracker tracker_;
  StampedMap<std::int32_t> rank_pos_;
  std::int64_t capacity_changes_ = 0;
  std::int64_t observed_epochs_ = 0;  // last epoch count traced to the obs
};

}  // namespace rrs
