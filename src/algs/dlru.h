// Algorithm dLRU (Section 3.1.1): pure recency-based reconfiguration.
//
// Keeps the (up to) n/2 eligible colors with the most recent counter-wrap
// timestamps cached, each replicated in two locations, regardless of
// whether they have pending jobs.  The paper proves (Appendix A) that this
// is NOT resource competitive: it happily caches idle recently-used colors
// while a backlog of long-delay jobs drops.  Implemented both as a paper
// artifact and as the LRU half reused by dLRU-EDF.
#pragma once

#include "algs/ranked_cache.h"
#include "core/color_state.h"
#include "core/policy.h"
#include "util/stamped_map.h"

namespace rrs {

/// The dLRU reconfiguration scheme.  Run with EngineOptions{.replication=2}.
class DLruPolicy : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dlru"; }

  void begin(const ArrivalSource& source, int num_resources,
             int speed) override;
  void on_round(RoundContext& ctx) override;
  void on_capacity_change(Round round, int up, int total,
                          std::span<const ColorId> evicted) override;

  /// dLRU's target set is a pure function of tracker state, which is
  /// provably frozen across an event-free span, so the engine may skip
  /// such spans wholesale.
  [[nodiscard]] bool supports_fast_forward() const override { return true; }

  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> stats()
      const override;

  /// Migration hooks: the portable per-color state is exactly the
  /// tracker's Section 3.1 state machine (ranking scratch is per-round).
  [[nodiscard]] bool export_color_state(ColorId color,
                                        PolicyColorState& out) const override {
    out = tracker_.export_color(color);
    return true;
  }
  void import_color_state(ColorId color,
                          const PolicyColorState& state) override {
    tracker_.import_color(color, state);
  }

  /// Checkpoint = the tracker plus the two run counters; ranking scratch
  /// is per-round and rebuilt on the next on_round().
  void checkpoint_state(CheckpointWriter& w) const override;
  void restore_state(CheckpointReader& r) override;

 private:
  EligibilityTracker tracker_;
  std::vector<ColorId> evict_scratch_;
  StampedMap<char> in_target_;  // member of this round's LRU target set
  std::int64_t capacity_changes_ = 0;
  std::int64_t observed_epochs_ = 0;  // last epoch count traced to the obs
};

}  // namespace rrs
