#include "algs/dlru_edf.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "obs/observer.h"
#include "util/check.h"

namespace rrs {

void DLruEdfPolicy::begin(const ArrivalSource& source, int num_resources,
                          int speed) {
  (void)speed;
  RRS_REQUIRE(lru_fraction_ >= 0.0 && lru_fraction_ < 1.0,
              "lru_fraction must be in [0, 1), got " << lru_fraction_);
  RRS_REQUIRE(num_resources % 4 == 0,
              "dLRU-EDF needs n divisible by 4 (n/4 LRU colors + n/4 EDF "
              "colors, each in 2 locations); got n="
                  << num_resources);
  tracker_.enable_rank_index();
  tracker_.begin(source);
  observed_epochs_ = 0;
  const auto colors = static_cast<std::size_t>(source.num_colors());
  is_lru_.ensure_size(colors);
  is_protected_.ensure_size(colors);
  rank_pos_.ensure_size(colors);
}

void DLruEdfPolicy::on_round(RoundContext& ctx) {
  if (ctx.first_mini()) {
    tracker_.drop_phase(ctx.round(), ctx.dropped(), ctx.cache());
    if (!ctx.final_sweep()) {
      tracker_.arrival_phase(ctx.round(), ctx.arrivals());
    }
    if (Observer* o = ctx.obs(); o != nullptr && o->config.trace) {
      const std::int64_t epochs = tracker_.num_epochs();
      if (epochs != observed_epochs_) {
        o->trace.push({ctx.round(), TraceKind::kEpochTurnover, 0, epochs});
        observed_epochs_ = epochs;
      }
    }
    if (ctx.final_sweep()) return;
  }
  reconfigure(ctx);
}

void DLruEdfPolicy::evict_worst_non_lru(CacheAssignment& cache) {
  ColorId victim = kBlack;
  std::int32_t worst = -1;
  for (const ColorId c : cache.cached_colors()) {
    if (is_lru_.contains(c) || is_protected_.contains(c)) continue;
    // Every cached non-LRU color is eligible and therefore ranked.
    RRS_CHECK_MSG(rank_pos_.contains(c),
                  "cached non-LRU color " << c << " missing from ranking");
    const std::int32_t pos = rank_pos_.at(c);
    if (pos > worst) {
      worst = pos;
      victim = c;
    }
  }
  RRS_CHECK_MSG(victim != kBlack, "no evictable non-LRU color");
  cache.erase(victim);
}

void DLruEdfPolicy::reconfigure(RoundContext& ctx) {
  CacheAssignment& cache = ctx.cache();
  const PendingJobs& pending = ctx.pending();
  const auto max_distinct = static_cast<std::size_t>(cache.max_distinct());
  // The paper's split is half/half; lru_fraction generalizes it, clamped
  // so the non-LRU pool is never empty (evictions need a victim).
  const auto lru_cap = std::min(
      max_distinct - 1,
      static_cast<std::size_t>(lru_fraction_ *
                               static_cast<double>(max_distinct)));
  const std::size_t edf_cap = max_distinct - lru_cap;

  // --- LRU half: the top lru_cap eligible colors by timestamp recency. ---
  // The tracker's two query buffers are distinct, so lru_target stays
  // valid across the edf_order() call below.
  const std::vector<ColorId>& lru_target = tracker_.lru_order(lru_cap);
  is_lru_.clear();
  for (const ColorId c : lru_target) is_lru_.set(c, 1);

  // --- EDF half: rank the eligible non-LRU colors.  Filtering the full
  // EDF order (a strict total order) preserves the exact relative ranks
  // of the surviving colors. ---
  edf_ranked_.clear();
  for (const ColorId c : tracker_.edf_order(pending)) {
    if (!is_lru_.contains(c)) edf_ranked_.push_back(c);
  }
  rank_pos_.clear();
  for (std::size_t i = 0; i < edf_ranked_.size(); ++i) {
    rank_pos_.set(edf_ranked_[i], static_cast<std::int32_t>(i));
  }

  is_protected_.clear();

  // Bring LRU-target colors in (eviction takes the worst non-LRU color;
  // one always exists because the LRU target holds at most half the
  // capacity).
  for (const ColorId c : lru_target) {
    if (cache.contains(c)) continue;
    if (cache.full()) evict_worst_non_lru(cache);
    cache.insert(c);
  }

  // X = nonidle non-LRU colors in the top edf_cap EDF ranks not cached.
  const auto top = std::min(edf_ranked_.size(), edf_cap);
  for (std::size_t i = 0; i < top; ++i) {
    const ColorId color = edf_ranked_[i];
    if (pending.idle(color) || cache.contains(color)) continue;
    if (cache.full()) evict_worst_non_lru(cache);
    cache.insert(color);
    is_protected_.set(color, 1);
  }
}

void DLruEdfPolicy::on_capacity_change(Round round, int up, int total,
                                       std::span<const ColorId> evicted) {
  (void)round;
  (void)up;
  (void)total;
  (void)evicted;
  // Both halves recompute their targets against the live max_distinct()
  // every round; only the cross-round stamped scratch needs invalidating.
  // AdaptiveSplitPolicy inherits this (its split stays valid at any n).
  is_lru_.clear();
  is_protected_.clear();
  rank_pos_.clear();
  ++capacity_changes_;
}

std::vector<std::pair<std::string, std::int64_t>> DLruEdfPolicy::stats()
    const {
  return {{"epochs", tracker_.num_epochs()},
          {"eligible_drops", tracker_.eligible_drops()},
          {"ineligible_drops", tracker_.ineligible_drops()},
          {"capacity_changes", capacity_changes_}};
}

void DLruEdfPolicy::checkpoint_state(CheckpointWriter& w) const {
  tracker_.checkpoint(w);
  w.f64(lru_fraction_);
  w.i64(capacity_changes_);
  w.i64(observed_epochs_);
}

void DLruEdfPolicy::restore_state(CheckpointReader& r) {
  tracker_.restore_checkpoint(r);
  lru_fraction_ = r.f64();
  capacity_changes_ = r.i64();
  observed_epochs_ = r.i64();
}

}  // namespace rrs
