#include "algs/seq_edf.h"

#include "algs/edf.h"

namespace rrs {

EngineResult run_seq_edf(const Instance& instance, int m,
                         bool record_schedule) {
  EdfPolicy policy;
  EngineOptions options;
  options.num_resources = m;
  options.speed = 1;
  options.replication = 1;
  options.record_schedule = record_schedule;
  return run_policy(instance, policy, options);
}

EngineResult run_ds_seq_edf(const Instance& instance, int m,
                            bool record_schedule) {
  EdfPolicy policy;
  EngineOptions options;
  options.num_resources = m;
  options.speed = 2;
  options.replication = 1;
  options.record_schedule = record_schedule;
  return run_policy(instance, policy, options);
}

}  // namespace rrs
