// Shared ranking machinery for the Section 3 reconfiguration schemes.
//
// Two orders recur throughout the paper and are centralized here:
//   * the EDF color ranking (Section 3.1.2 / 3.3): eligible colors ranked
//     first on idleness (nonidle first), then ascending color deadline,
//     then ascending delay bound, then a consistent order of colors (we use
//     ascending ColorId everywhere, as the paper requires one consistent
//     order across all algorithms);
//   * the dLRU recency ranking (Section 3.1.1): descending timestamp,
//     ties broken by the same consistent order.
//
// The hot-path overloads precompute each color's key once into a
// caller-held scratch buffer and sort the flat key array — no per
// comparison key construction, timestamp division, or virtual metadata
// lookup.  The source-taking overloads remain for callers that have not
// begun a tracker of their own.
#pragma once

#include <vector>

#include "core/arrival_source.h"
#include "core/color_state.h"
#include "core/pending.h"
#include "core/types.h"

namespace rrs {

/// Sort key for the EDF color ranking; smaller compares as better rank.
/// Under the generalized cost model, equal deadlines break toward heavier
/// per-job drop weights (more droppable value at stake) and then toward
/// shorter job lengths (more completions per slot); both fields are the
/// constant 1 under the paper's uniform model, so the ranking degenerates
/// to the original (idle, deadline, delay bound, color) order there.
struct EdfKey {
  bool idle = false;
  Round color_deadline = 0;
  Cost weight = 1;    ///< per-job drop cost of the color (descending)
  Round length = 1;   ///< per-job execution length (ascending)
  Round delay_bound = 0;
  ColorId color = 0;

  friend bool operator<(const EdfKey& a, const EdfKey& b) {
    if (a.idle != b.idle) return !a.idle;  // nonidle ranks first
    if (a.color_deadline != b.color_deadline)
      return a.color_deadline < b.color_deadline;
    if (a.weight != b.weight) return a.weight > b.weight;  // heavier first
    if (a.length != b.length) return a.length < b.length;  // shorter first
    if (a.delay_bound != b.delay_bound) return a.delay_bound < b.delay_bound;
    return a.color < b.color;
  }
};

/// Sort key for the dLRU recency ranking; smaller compares as better rank.
struct LruKey {
  Round timestamp = 0;
  ColorId color = 0;

  friend bool operator<(const LruKey& a, const LruKey& b) {
    if (a.timestamp != b.timestamp)
      return a.timestamp > b.timestamp;  // most recent first
    return a.color < b.color;
  }
};

/// Builds the EDF key of `color` from tracker + pending state.
[[nodiscard]] inline EdfKey edf_key(ColorId color, const ArrivalSource& source,
                                    const EligibilityTracker& tracker,
                                    const PendingJobs& pending) {
  return EdfKey{pending.idle(color),    tracker.color_deadline(color),
                tracker.drop_cost(color), tracker.length(color),
                source.delay_bound(color), color};
}

/// Sorts `colors` best-rank-first by the EDF color ranking, building each
/// color's key once into `scratch` (cleared; capacity reused).
void edf_sort(std::vector<ColorId>& colors, std::vector<EdfKey>& scratch,
              const EligibilityTracker& tracker, const PendingJobs& pending);

/// Convenience overload with its own scratch buffer (allocates; tests and
/// cold paths only).  `source` is unused beyond the historical signature —
/// the tracker caches the same delay bounds.
void edf_sort(std::vector<ColorId>& colors, const ArrivalSource& source,
              const EligibilityTracker& tracker, const PendingJobs& pending);

/// Sorts `colors` most-recent-timestamp-first (dLRU order) as of round
/// `now`, ties by ascending ColorId, evaluating each timestamp once into
/// `scratch` (cleared; capacity reused).
void lru_sort(std::vector<ColorId>& colors, std::vector<LruKey>& scratch,
              const EligibilityTracker& tracker, Round now);

/// Convenience overload with its own scratch buffer (allocates; tests and
/// cold paths only).
void lru_sort(std::vector<ColorId>& colors, const EligibilityTracker& tracker,
              Round now);

}  // namespace rrs
