#include "algs/distribute.h"

#include <map>
#include <utility>

#include "algs/dlru_edf.h"
#include "util/check.h"

namespace rrs {

DistributeTransform distribute_transform(const Instance& instance) {
  RRS_REQUIRE(instance.is_batched(),
              "Distribute requires batched arrivals ([.. | D_l] input); got "
                  << instance.summary());

  DistributeTransform out;
  InstanceBuilder builder;
  builder.delta(instance.delta());
  builder.min_horizon(instance.horizon());

  // Allocate virtual colors (l, j) lazily, in first-use order.
  std::map<std::pair<ColorId, std::int64_t>, ColorId> virtual_ids;
  const auto virtual_color = [&](ColorId real, std::int64_t j) {
    const auto [it, inserted] =
        virtual_ids.try_emplace({real, j}, ColorId{0});
    if (inserted) {
      it->second = builder.add_color(instance.delay_bound(real),
                                     instance.drop_cost(real),
                                     instance.length(real));
      out.virtual_to_real.push_back(real);
    }
    return it->second;
  };

  // Jobs are stored sorted by arrival; per request, per color, rank in
  // stored (arrival) order.  Job ids are preserved because we add the jobs
  // in the same order the instance stores them.
  const auto& jobs = instance.jobs();
  std::size_t i = 0;
  std::map<ColorId, std::int64_t> rank_in_request;
  while (i < jobs.size()) {
    const Round round = jobs[i].arrival;
    rank_in_request.clear();
    for (; i < jobs.size() && jobs[i].arrival == round; ++i) {
      const Job& job = jobs[i];
      const std::int64_t rank = rank_in_request[job.color]++;
      const std::int64_t j = rank / instance.delay_bound(job.color);
      builder.add_jobs(virtual_color(job.color, j), round, 1);
    }
  }

  // Virtual colors inherit the reconfiguration prices of their real color:
  // the (l, j) copies are the same physical image, so Delta between two
  // virtual colors is Delta between their reals.  Scalar tiers need no
  // copying (the builder default already carries Delta).
  const CostModel& model = instance.cost_model();
  if (model.tier() != CostModel::Tier::kScalar) {
    const auto num_virtual = static_cast<ColorId>(out.virtual_to_real.size());
    for (ColorId v = 0; v < num_virtual; ++v) {
      builder.reconfig_cost(
          v, model.cold_cost(out.virtual_to_real[static_cast<std::size_t>(v)]));
    }
    if (model.tier() == CostModel::Tier::kMatrix) {
      for (ColorId v1 = 0; v1 < num_virtual; ++v1) {
        for (ColorId v2 = 0; v2 < num_virtual; ++v2) {
          if (v1 == v2) continue;
          builder.transition_cost(
              v1, v2,
              model.reconfig_cost(
                  out.virtual_to_real[static_cast<std::size_t>(v1)],
                  out.virtual_to_real[static_cast<std::size_t>(v2)]));
        }
      }
    }
  }

  out.rate_limited = builder.build();
  RRS_CHECK_MSG(out.rate_limited.is_rate_limited(),
                "Distribute output is not rate-limited");
  RRS_CHECK(out.rate_limited.jobs().size() == jobs.size());
  // Verify the job-id correspondence the mapping step relies on.
  for (std::size_t q = 0; q < jobs.size(); ++q) {
    const Job& v = out.rate_limited.jobs()[q];
    RRS_CHECK(v.arrival == jobs[q].arrival &&
              out.virtual_to_real[static_cast<std::size_t>(v.color)] ==
                  jobs[q].color);
  }
  return out;
}

Schedule distribute_map_back(const DistributeTransform& transform,
                             const Schedule& virtual_schedule) {
  Schedule mapped;
  mapped.num_resources = virtual_schedule.num_resources;
  mapped.speed = virtual_schedule.speed;
  mapped.execs = virtual_schedule.execs;  // job ids are shared

  // Recolor reconfigurations; drop the ones that keep the real color.
  std::vector<ColorId> real_config(
      static_cast<std::size_t>(virtual_schedule.num_resources), kBlack);
  mapped.reconfigs.reserve(virtual_schedule.reconfigs.size());
  for (const ReconfigEvent& e : virtual_schedule.reconfigs) {
    const ColorId real =
        e.color == kBlack
            ? kBlack
            : transform.virtual_to_real[static_cast<std::size_t>(e.color)];
    auto& current = real_config[static_cast<std::size_t>(e.resource)];
    if (current == real) continue;
    current = real;
    ReconfigEvent mapped_event = e;
    mapped_event.color = real;
    mapped.reconfigs.push_back(mapped_event);
  }
  return mapped;
}

DistributeResult run_distribute(const Instance& instance, int n) {
  DistributeResult result;
  DistributeTransform transform = distribute_transform(instance);

  DLruEdfPolicy policy;
  EngineOptions options;
  options.num_resources = n;
  options.speed = 1;
  options.replication = 2;
  options.record_schedule = true;
  result.virtual_run = run_policy(transform.rate_limited, policy, options);

  result.schedule =
      distribute_map_back(transform, result.virtual_run.schedule);
  result.cost = result.schedule.cost(instance);
  return result;
}

}  // namespace rrs
