#include "algs/registry.h"

#include "algs/adaptive.h"
#include "algs/distribute.h"
#include "algs/dlru.h"
#include "algs/dlru_edf.h"
#include "algs/edf.h"
#include "algs/seq_edf.h"
#include "algs/varbatch.h"
#include "util/check.h"

namespace rrs {
namespace {

RunOutcome from_engine(const std::string& name, EngineResult&& r,
                       bool record) {
  RunOutcome out;
  out.algorithm = name;
  out.cost = r.cost;
  out.executed = r.executed;
  out.stats = std::move(r.policy_stats);
  if (record) out.schedule = std::move(r.schedule);
  return out;
}

RunOutcome run_section3_policy(const std::string& name,
                               const Instance& instance, int n, bool record) {
  auto policy = make_policy(name);
  EngineOptions options;
  options.num_resources = n;
  options.speed = 1;
  options.replication = 2;
  options.record_schedule = record;
  return from_engine(name, run_policy(instance, *policy, options), record);
}

std::vector<AlgorithmInfo> build_registry() {
  std::vector<AlgorithmInfo> algs;
  algs.push_back(
      {"dlru", "pure recency caching (Section 3.1.1; not competitive)",
       [](const Instance& inst, int n, bool record) {
         return run_section3_policy("dlru", inst, n, record);
       }});
  algs.push_back(
      {"edf", "pure deadline caching (Section 3.1.2; not competitive)",
       [](const Instance& inst, int n, bool record) {
         return run_section3_policy("edf", inst, n, record);
       }});
  algs.push_back(
      {"dlru-edf",
       "combined recency + deadline caching (Section 3.1.3; Theorem 1)",
       [](const Instance& inst, int n, bool record) {
         return run_section3_policy("dlru-edf", inst, n, record);
       }});
  algs.push_back(
      {"adaptive",
       "dLRU-EDF with an ARC-inspired self-tuning LRU/EDF split "
       "(extension; see algs/adaptive.h)",
       [](const Instance& inst, int n, bool record) {
         return run_section3_policy("adaptive", inst, n, record);
       }});
  algs.push_back(
      {"seq-edf", "EDF with unreplicated full capacity (Section 3.3)",
       [](const Instance& inst, int n, bool record) {
         return from_engine("seq-edf", run_seq_edf(inst, n, record), record);
       }});
  algs.push_back(
      {"ds-seq-edf", "double-speed Seq-EDF (Section 3.3)",
       [](const Instance& inst, int n, bool record) {
         return from_engine("ds-seq-edf", run_ds_seq_edf(inst, n, record),
                            record);
       }});
  algs.push_back(
      {"distribute",
       "batched -> rate-limited reduction over dLRU-EDF (Theorem 2)",
       [](const Instance& inst, int n, bool record) {
         DistributeResult r = run_distribute(inst, n);
         RunOutcome out;
         out.algorithm = "distribute";
         out.cost = r.cost;
         out.executed = static_cast<std::int64_t>(r.schedule.execs.size());
         out.stats = std::move(r.virtual_run.policy_stats);
         if (record) out.schedule = std::move(r.schedule);
         return out;
       }});
  algs.push_back(
      {"varbatch",
       "general -> batched -> rate-limited pipeline (Theorem 3); handles "
       "arbitrary delay bounds",
       [](const Instance& inst, int n, bool record) {
         VarBatchResult r = run_varbatch(inst, n);
         RunOutcome out;
         out.algorithm = "varbatch";
         out.cost = r.cost;
         out.executed = static_cast<std::int64_t>(r.schedule.execs.size());
         out.stats = std::move(r.core_run.policy_stats);
         if (record) out.schedule = std::move(r.schedule);
         return out;
       }});
  return algs;
}

}  // namespace

const std::vector<AlgorithmInfo>& algorithm_registry() {
  static const std::vector<AlgorithmInfo> registry = build_registry();
  return registry;
}

const AlgorithmInfo& find_algorithm(const std::string& name) {
  for (const AlgorithmInfo& info : algorithm_registry()) {
    if (info.name == name) return info;
  }
  throw InputError("unknown algorithm: " + name);
}

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "dlru") return std::make_unique<DLruPolicy>();
  if (name == "edf") return std::make_unique<EdfPolicy>();
  if (name == "dlru-edf") return std::make_unique<DLruEdfPolicy>();
  if (name == "adaptive") return std::make_unique<AdaptiveSplitPolicy>();
  throw InputError("unknown policy: " + name);
}

}  // namespace rrs
