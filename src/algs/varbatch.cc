#include "algs/varbatch.h"

#include <algorithm>

#include "util/bits.h"
#include "util/check.h"

namespace rrs {

Round varbatch_effective_delay(Round p) {
  RRS_REQUIRE(p >= 1, "delay bound must be positive");
  if (p == 1) return 1;
  return floor_pow2(p) / 2;  // == p/2 for power-of-two p
}

VarBatchTransform varbatch_transform(const Instance& instance) {
  VarBatchTransform out;
  InstanceBuilder builder;
  builder.delta(instance.delta());

  // Colors keep their identity (lengths, weights, and reconfiguration
  // prices included); only their delay bounds shrink to the effective
  // half-block length.
  for (ColorId c = 0; c < instance.num_colors(); ++c) {
    const ColorId mapped =
        builder.add_color(varbatch_effective_delay(instance.delay_bound(c)),
                          instance.drop_cost(c), instance.length(c));
    RRS_CHECK(mapped == c);
  }
  const CostModel& model = instance.cost_model();
  if (model.tier() != CostModel::Tier::kScalar) {
    for (ColorId c = 0; c < instance.num_colors(); ++c) {
      builder.reconfig_cost(c, model.cold_cost(c));
    }
    if (model.tier() == CostModel::Tier::kMatrix) {
      for (ColorId f = 0; f < instance.num_colors(); ++f) {
        for (ColorId t = 0; t < instance.num_colors(); ++t) {
          if (f == t) continue;
          builder.transition_cost(f, t, model.reconfig_cost(f, t));
        }
      }
    }
  }

  // Delay each job to the start of its next half-block, then add jobs in
  // (new arrival, original id) order so builder ids match our mapping
  // table.
  struct Delayed {
    Round arrival;
    JobId original;
    ColorId color;
  };
  std::vector<Delayed> delayed;
  delayed.reserve(instance.jobs().size());
  for (const Job& job : instance.jobs()) {
    const Round e = varbatch_effective_delay(job.delay_bound);
    const Round new_arrival =
        job.delay_bound == 1 ? job.arrival
                             : floor_multiple(job.arrival, e) + e;
    delayed.push_back({new_arrival, job.id, job.color});
  }
  std::stable_sort(delayed.begin(), delayed.end(),
                   [](const Delayed& a, const Delayed& b) {
                     return a.arrival < b.arrival;
                   });
  out.job_to_original.reserve(delayed.size());
  for (const Delayed& d : delayed) {
    builder.add_jobs(d.color, d.arrival, 1);
    out.job_to_original.push_back(d.original);
  }
  builder.min_horizon(instance.horizon());
  out.batched = builder.build();
  RRS_CHECK_MSG(out.batched.is_batched(), "VarBatch output is not batched");
  return out;
}

Schedule varbatch_map_back(const VarBatchTransform& transform,
                           const Schedule& batched_schedule) {
  Schedule mapped = batched_schedule;
  for (ExecEvent& e : mapped.execs) {
    e.job = transform.job_to_original[static_cast<std::size_t>(e.job)];
  }
  return mapped;
}

VarBatchResult run_varbatch(const Instance& instance, int n) {
  VarBatchResult result;
  const VarBatchTransform vb = varbatch_transform(instance);
  DistributeResult dist = run_distribute(vb.batched, n);
  result.core_run = std::move(dist.virtual_run);
  result.schedule = varbatch_map_back(vb, dist.schedule);
  result.cost = result.schedule.cost(instance);
  return result;
}

}  // namespace rrs
