#include "algs/adaptive.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "obs/observer.h"
#include "util/check.h"

namespace rrs {

AdaptiveSplitPolicy::AdaptiveSplitPolicy(Options options)
    : DLruEdfPolicy(options.initial_fraction), options_(options) {
  RRS_REQUIRE(options_.window >= 1, "adaptation window must be >= 1");
  RRS_REQUIRE(options_.min_fraction >= 0.0 &&
                  options_.min_fraction <= options_.max_fraction &&
                  options_.max_fraction < 1.0,
              "need 0 <= min_fraction <= max_fraction < 1");
}

void AdaptiveSplitPolicy::begin(const ArrivalSource& source, int num_resources,
                                int speed) {
  DLruEdfPolicy::begin(source, num_resources, speed);
  const CostModel& model = source.cost_model();
  cold_costs_.resize(static_cast<std::size_t>(source.num_colors()));
  for (ColorId c = 0; c < source.num_colors(); ++c) {
    cold_costs_[static_cast<std::size_t>(c)] = model.cold_cost(c);
  }
  window_drop_cost_ = 0;
  window_reconfig_cost_ = 0;
  window_end_ = options_.window;
  adaptations_ = 0;
  was_cached_.ensure_size(static_cast<std::size_t>(source.num_colors()));
}

void AdaptiveSplitPolicy::on_round(RoundContext& ctx) {
  const Round k = ctx.round();
  if (ctx.first_mini()) {
    // Window accounting rides the drop phase (independent of the base
    // tracker's classification, so order against it does not matter).
    // Drops are weighted by their per-color cost so the pressure
    // comparison stays apples-to-apples with the reconfiguration spend
    // (identical to the drop count under unit weights).
    for (const auto& [color, count] : ctx.dropped().by_color) {
      window_drop_cost_ += count * tracker().drop_cost(color);
    }

    if (k >= window_end_) {
      // Thrashing pressure -> pin more (grow the LRU share); drop pressure
      // -> utilize more (grow the EDF share).  Ties leave the split alone.
      double fraction = lru_fraction();
      if (window_reconfig_cost_ > window_drop_cost_) {
        fraction += options_.step;
      } else if (window_drop_cost_ > window_reconfig_cost_) {
        fraction -= options_.step;
      }
      fraction = std::clamp(fraction, options_.min_fraction,
                            options_.max_fraction);
      if (fraction != lru_fraction()) {
        set_lru_fraction(fraction);
        ++adaptations_;
        if (Observer* o = ctx.obs(); o != nullptr && o->config.trace) {
          o->trace.push({k, TraceKind::kAdaptation,
                         static_cast<std::int32_t>(fraction * 100.0),
                         adaptations_});
        }
      }
      window_drop_cost_ = 0;
      window_reconfig_cost_ = 0;
      window_end_ = k + options_.window;
    }
  }
  if (ctx.final_sweep()) {
    DLruEdfPolicy::on_round(ctx);  // tracker classification only
    return;
  }

  // Count this phase's insertions (each costs replication * the inserted
  // color's cold re-image price; == replication * Delta under the scalar
  // tier) by diffing the logical cached set around the base round (the
  // base tracker updates never touch the cache).
  was_cached_.clear();
  for (const ColorId c : ctx.cache().cached_colors()) was_cached_.set(c, 1);
  DLruEdfPolicy::on_round(ctx);
  for (const ColorId c : ctx.cache().cached_colors()) {
    if (!was_cached_.contains(c)) {
      window_reconfig_cost_ += Cost{ctx.cache().replication()} *
                               cold_costs_[static_cast<std::size_t>(c)];
    }
  }
}

std::vector<std::pair<std::string, std::int64_t>>
AdaptiveSplitPolicy::stats() const {
  auto stats = DLruEdfPolicy::stats();
  stats.emplace_back("adaptations", adaptations_);
  stats.emplace_back("final_lru_percent",
                     static_cast<std::int64_t>(lru_fraction() * 100.0));
  return stats;
}

void AdaptiveSplitPolicy::checkpoint_state(CheckpointWriter& w) const {
  DLruEdfPolicy::checkpoint_state(w);
  w.i64(window_drop_cost_);
  w.i64(window_reconfig_cost_);
  w.i64(window_end_);
  w.i64(adaptations_);
}

void AdaptiveSplitPolicy::restore_state(CheckpointReader& r) {
  DLruEdfPolicy::restore_state(r);
  window_drop_cost_ = r.i64();
  window_reconfig_cost_ = r.i64();
  window_end_ = r.i64();
  adaptations_ = r.i64();
}

}  // namespace rrs
