// Algorithm Par-EDF (Section 3.3): the drop-cost yardstick.
//
// Par-EDF treats m resources as one super-resource that executes up to m
// pending jobs per round, chosen best-rank-first by the paper's job
// ranking (ascending deadline, then ascending delay bound, then the
// consistent color order).  It pays no reconfiguration cost and, by the
// optimality of preemptive EDF (Lemma 3.7), its drop cost lower-bounds the
// drop cost of ANY schedule with m resources — including the offline
// optimum.  Experiments use it as the denominator for Lemma 3.2 checks.
#pragma once

#include <cstdint>

#include "core/instance.h"

namespace rrs {

/// Result of a Par-EDF run.
struct ParEdfResult {
  std::int64_t executed = 0;
  std::int64_t drops = 0;
  /// True iff no job was dropped (the paper's "nice" input predicate).
  [[nodiscard]] bool nice() const { return drops == 0; }
};

/// Runs Par-EDF with `m` resources (m jobs per round) on `instance`.
[[nodiscard]] ParEdfResult run_par_edf(const Instance& instance, int m);

}  // namespace rrs
