#include "algs/ranked_cache.h"

#include <algorithm>

namespace rrs {

void edf_sort(std::vector<ColorId>& colors, const ArrivalSource& source,
              const EligibilityTracker& tracker, const PendingJobs& pending) {
  std::sort(colors.begin(), colors.end(), [&](ColorId a, ColorId b) {
    return edf_key(a, source, tracker, pending) <
           edf_key(b, source, tracker, pending);
  });
}

void lru_sort(std::vector<ColorId>& colors, const EligibilityTracker& tracker,
              Round now) {
  std::sort(colors.begin(), colors.end(), [&](ColorId a, ColorId b) {
    const Round ta = tracker.timestamp(a, now);
    const Round tb = tracker.timestamp(b, now);
    if (ta != tb) return ta > tb;  // most recent first
    return a < b;
  });
}

}  // namespace rrs
