#include "algs/ranked_cache.h"

#include <algorithm>

namespace rrs {

void edf_sort(std::vector<ColorId>& colors, std::vector<EdfKey>& scratch,
              const EligibilityTracker& tracker, const PendingJobs& pending) {
  scratch.clear();
  scratch.reserve(colors.size());
  for (const ColorId c : colors) {
    scratch.push_back(EdfKey{pending.idle(c), tracker.color_deadline(c),
                             tracker.drop_cost(c), tracker.length(c),
                             tracker.delay_bound(c), c});
  }
  std::sort(scratch.begin(), scratch.end());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    colors[i] = scratch[i].color;
  }
}

void edf_sort(std::vector<ColorId>& colors, const ArrivalSource& source,
              const EligibilityTracker& tracker, const PendingJobs& pending) {
  (void)source;
  std::vector<EdfKey> scratch;
  edf_sort(colors, scratch, tracker, pending);
}

void lru_sort(std::vector<ColorId>& colors, std::vector<LruKey>& scratch,
              const EligibilityTracker& tracker, Round now) {
  scratch.clear();
  scratch.reserve(colors.size());
  for (const ColorId c : colors) {
    scratch.push_back(LruKey{tracker.timestamp(c, now), c});
  }
  std::sort(scratch.begin(), scratch.end());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    colors[i] = scratch[i].color;
  }
}

void lru_sort(std::vector<ColorId>& colors, const EligibilityTracker& tracker,
              Round now) {
  std::vector<LruKey> scratch;
  lru_sort(colors, scratch, tracker, now);
}

}  // namespace rrs
