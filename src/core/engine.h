// The round engine: executes the Section 2 model for any online policy.
//
// Per round k:
//   1. drop phase      — expire pending jobs with deadline k; notify policy;
//   2. arrival phase   — ingest request k into the pending set; notify
//                        policy;
//   3+4. for each mini-round (speed times): reconfiguration phase (policy
//        mutates the cache; Delta per physical recoloring), then execution
//        phase (each configured resource executes one pending job of its
//        color, earliest deadline first).
//
// The engine is the single place cost is accounted for online algorithms,
// and optionally records a full event Schedule for validation.
#pragma once

#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace rrs {

/// Knobs for one engine run.
struct EngineOptions {
  int num_resources = 1;
  int speed = 1;  ///< mini-rounds per round (2 = double-speed, Section 3.3)
  /// Locations each cached color occupies (2 for the Section 3 algorithms'
  /// replication invariant, 1 for Seq-EDF).
  int replication = 1;
  bool record_schedule = true;  ///< disable for large benchmark runs
};

/// Result of one engine run.
struct EngineResult {
  CostBreakdown cost;
  std::int64_t executed = 0;  ///< jobs executed
  Schedule schedule;          ///< events iff options.record_schedule
  /// Policy-specific counters captured after the run.
  std::vector<std::pair<std::string, std::int64_t>> policy_stats;
};

/// Runs `policy` on `instance` under `options`.
[[nodiscard]] EngineResult run_policy(const Instance& instance,
                                      Policy& policy,
                                      const EngineOptions& options);

}  // namespace rrs
