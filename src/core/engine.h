// The round engine: executes the Section 2 model for any online policy.
//
// Per round k:
//   0. fault phase     — apply the FaultPlan's round-k capacity-churn
//                        events (failures evict the affected location's
//                        cached color; repairs return it blank); notify
//                        policy via on_capacity_change;
//   1. drop phase      — expire pending jobs with deadline k; notify policy;
//   2. arrival phase   — ingest request k into the pending set; notify
//                        policy;
//   3+4. for each mini-round (speed times): reconfiguration phase (policy
//        mutates the cache; Delta per physical recoloring), then execution
//        phase (each configured resource executes one pending job of its
//        color, earliest deadline first).
//
// The engine consumes a pull-based ArrivalSource, so memory stays
// O(pending jobs + colors) even on unbounded streams; run_policy on an
// Instance is a thin MaterializedSource wrapper.  The engine is the single
// place cost is accounted for online algorithms (incrementally, per drop
// phase), and optionally records a full event Schedule for validation.
#pragma once

#include "core/arrival_source.h"
#include "core/fault_plan.h"
#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace rrs {

struct Observer;

/// Knobs for one engine run.
struct EngineOptions {
  int num_resources = 1;
  int speed = 1;  ///< mini-rounds per round (2 = double-speed, Section 3.3)
  /// Locations each cached color occupies (2 for the Section 3 algorithms'
  /// replication invariant, 1 for Seq-EDF).
  int replication = 1;
  bool record_schedule = true;  ///< disable for large benchmark runs
  /// Cap on rounds pulled from the source.  Required (finite) when the
  /// source is infinite; kInfiniteHorizon means "the source's horizon".
  Round max_rounds = kInfiniteHorizon;
  /// After arrivals end, keep running rounds until the pending set empties
  /// (every job executes or expires).  Off by default: the materialized
  /// wrapper preserves the historical contract of exactly horizon() rounds
  /// plus one final expiry sweep.
  bool drain_pending = false;
  /// Optional capacity-churn schedule (not owned; must outlive the run).
  /// Events at round k apply at the start of round k, before the drop and
  /// arrival phases.  nullptr — or an empty plan — leaves the run
  /// bit-identical to a fault-free one.
  const FaultPlan* fault_plan = nullptr;
  /// Repair-cost accounting: when true, each repair is charged as one
  /// reconfiguration event (the repaired resource comes back blank and must
  /// be re-imaged); when false, churn itself is free and only the policy's
  /// recolorings cost Delta.  Charged repairs are counted in
  /// CostBreakdown::churn_reconfigs but never recorded in the schedule —
  /// the validator only prices policy-driven events.
  bool charge_repair = false;
  /// Optional observability sink (not owned; must outlive the run).
  /// nullptr is the off mode: every hook site degrades to one branch on a
  /// null pointer and the run's results are bit-identical to a build
  /// without the obs subsystem.  With an observer the engine updates
  /// StreamStats in every phase, feeds the TraceRing, attributes phase
  /// time when ObsConfig::timers is set, takes periodic snapshots per
  /// ObsConfig::snapshot_every, and dumps the trace ring to
  /// Observer::trace_dump_out (default stderr) if the run dies on an
  /// InvariantError.
  Observer* observer = nullptr;
};

/// Capacity-churn counters for one run; all zero without a fault plan.
struct DegradedStats {
  std::int64_t fault_events = 0;     ///< failures applied
  std::int64_t repair_events = 0;    ///< repairs applied
  std::int64_t churn_evictions = 0;  ///< cached colors evicted by failures
  Round degraded_rounds = 0;  ///< rounds run with >= 1 location down
  Cost drops_while_degraded = 0;  ///< drop cost incurred in degraded rounds

  friend bool operator==(const DegradedStats&, const DegradedStats&) = default;
};

/// Result of one engine run.
struct EngineResult {
  CostBreakdown cost;
  std::int64_t executed = 0;  ///< jobs completed
  /// Execution units applied (== executed for unit lengths; partially
  /// executed jobs contribute units but never count as executed).
  std::int64_t work_units = 0;
  std::int64_t arrived = 0;   ///< jobs pulled from the source
  Round rounds = 0;           ///< rounds actually run
  std::int64_t peak_pending = 0;  ///< max pending-set size observed
  DegradedStats degraded;     ///< capacity-churn counters
  Schedule schedule;          ///< events iff options.record_schedule
  /// Policy-specific counters captured after the run.
  std::vector<std::pair<std::string, std::int64_t>> policy_stats;
};

/// Runs `policy` against `source` under `options`, pulling rounds
/// sequentially.  For infinite sources options.max_rounds must be set.
[[nodiscard]] EngineResult run_policy(ArrivalSource& source, Policy& policy,
                                      const EngineOptions& options);

/// Runs `policy` on a materialized `instance` (wraps it in a
/// MaterializedSource; exactly instance.horizon() rounds plus the final
/// expiry sweep, as before the streaming refactor).
[[nodiscard]] EngineResult run_policy(const Instance& instance,
                                      Policy& policy,
                                      const EngineOptions& options);

}  // namespace rrs
