// The round engine: executes the Section 2 model for any online policy.
//
// Per round k:
//   1. drop phase      — expire pending jobs with deadline k; notify policy;
//   2. arrival phase   — ingest request k into the pending set; notify
//                        policy;
//   3+4. for each mini-round (speed times): reconfiguration phase (policy
//        mutates the cache; Delta per physical recoloring), then execution
//        phase (each configured resource executes one pending job of its
//        color, earliest deadline first).
//
// The engine consumes a pull-based ArrivalSource, so memory stays
// O(pending jobs + colors) even on unbounded streams; run_policy on an
// Instance is a thin MaterializedSource wrapper.  The engine is the single
// place cost is accounted for online algorithms (incrementally, per drop
// phase), and optionally records a full event Schedule for validation.
#pragma once

#include "core/arrival_source.h"
#include "core/instance.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace rrs {

/// Knobs for one engine run.
struct EngineOptions {
  int num_resources = 1;
  int speed = 1;  ///< mini-rounds per round (2 = double-speed, Section 3.3)
  /// Locations each cached color occupies (2 for the Section 3 algorithms'
  /// replication invariant, 1 for Seq-EDF).
  int replication = 1;
  bool record_schedule = true;  ///< disable for large benchmark runs
  /// Cap on rounds pulled from the source.  Required (finite) when the
  /// source is infinite; kInfiniteHorizon means "the source's horizon".
  Round max_rounds = kInfiniteHorizon;
  /// After arrivals end, keep running rounds until the pending set empties
  /// (every job executes or expires).  Off by default: the materialized
  /// wrapper preserves the historical contract of exactly horizon() rounds
  /// plus one final expiry sweep.
  bool drain_pending = false;
};

/// Result of one engine run.
struct EngineResult {
  CostBreakdown cost;
  std::int64_t executed = 0;  ///< jobs executed
  std::int64_t arrived = 0;   ///< jobs pulled from the source
  Round rounds = 0;           ///< rounds actually run
  std::int64_t peak_pending = 0;  ///< max pending-set size observed
  Schedule schedule;          ///< events iff options.record_schedule
  /// Policy-specific counters captured after the run.
  std::vector<std::pair<std::string, std::int64_t>> policy_stats;
};

/// Runs `policy` against `source` under `options`, pulling rounds
/// sequentially.  For infinite sources options.max_rounds must be set.
[[nodiscard]] EngineResult run_policy(ArrivalSource& source, Policy& policy,
                                      const EngineOptions& options);

/// Runs `policy` on a materialized `instance` (wraps it in a
/// MaterializedSource; exactly instance.horizon() rounds plus the final
/// expiry sweep, as before the streaming refactor).
[[nodiscard]] EngineResult run_policy(const Instance& instance,
                                      Policy& policy,
                                      const EngineOptions& options);

}  // namespace rrs
