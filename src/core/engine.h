// The round engine: executes the Section 2 model for any online policy.
//
// Per round k:
//   0. fault phase     — apply the FaultPlan's round-k capacity-churn
//                        events (failures evict the affected location's
//                        cached color; repairs return it blank); notify
//                        policy via on_capacity_change;
//   1. drop phase      — expire pending jobs with deadline k; notify policy;
//   2. arrival phase   — ingest request k into the pending set; notify
//                        policy;
//   3+4. for each mini-round (speed times): reconfiguration phase (policy
//        mutates the cache; Delta per physical recoloring), then execution
//        phase (each configured resource executes one pending job of its
//        color, earliest deadline first).
//
// The engine consumes a pull-based ArrivalSource, so memory stays
// O(pending jobs + colors) even on unbounded streams; run_policy on an
// Instance is a thin MaterializedSource wrapper.  The engine is the single
// place cost is accounted for online algorithms (incrementally, per drop
// phase), and optionally records a full event Schedule for validation.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/arrival_source.h"
#include "core/fault_plan.h"
#include "core/instance.h"
#include "core/pending.h"
#include "core/policy.h"
#include "core/schedule.h"

namespace rrs {

struct Observer;
class CheckpointReader;
class CheckpointWriter;
class PhaseTimers;

/// Knobs for one engine run.
struct EngineOptions {
  int num_resources = 1;
  int speed = 1;  ///< mini-rounds per round (2 = double-speed, Section 3.3)
  /// Locations each cached color occupies (2 for the Section 3 algorithms'
  /// replication invariant, 1 for Seq-EDF).
  int replication = 1;
  bool record_schedule = true;  ///< disable for large benchmark runs
  /// Cap on rounds pulled from the source.  Required (finite) when the
  /// source is infinite; kInfiniteHorizon means "the source's horizon".
  Round max_rounds = kInfiniteHorizon;
  /// After arrivals end, keep running rounds until the pending set empties
  /// (every job executes or expires).  Off by default: the materialized
  /// wrapper preserves the historical contract of exactly horizon() rounds
  /// plus one final expiry sweep.
  bool drain_pending = false;
  /// Optional capacity-churn schedule (not owned; must outlive the run).
  /// Events at round k apply at the start of round k, before the drop and
  /// arrival phases.  nullptr — or an empty plan — leaves the run
  /// bit-identical to a fault-free one.
  const FaultPlan* fault_plan = nullptr;
  /// Repair-cost accounting: when true, each repair is charged as one
  /// reconfiguration event (the repaired resource comes back blank and must
  /// be re-imaged); when false, churn itself is free and only the policy's
  /// recolorings cost Delta.  Charged repairs are counted in
  /// CostBreakdown::churn_reconfigs but never recorded in the schedule —
  /// the validator only prices policy-driven events.
  bool charge_repair = false;
  /// Optional observability sink (not owned; must outlive the run).
  /// nullptr is the off mode: every hook site degrades to one branch on a
  /// null pointer and the run's results are bit-identical to a build
  /// without the obs subsystem.  With an observer the engine updates
  /// StreamStats in every phase, feeds the TraceRing, attributes phase
  /// time when ObsConfig::timers is set, takes periodic snapshots per
  /// ObsConfig::snapshot_every, and dumps the trace ring to
  /// Observer::trace_dump_out (default stderr) if the run dies on an
  /// InvariantError.
  Observer* observer = nullptr;
  /// Sparse-round fast-forward: when the pending set is empty and the
  /// policy declares supports_fast_forward(), run_rounds() jumps over
  /// spans with no arrivals (per the source's next_event_round() hint),
  /// no deadline-block boundary of any delay class, no fault event, no
  /// snapshot round, and no policy event.  Every skipped round is a
  /// provable no-op, so results — costs, schedules, stats, snapshots —
  /// are bit-identical with the flag off; disable only to measure the
  /// skip itself.
  bool fast_forward = true;
  /// Admission control: cap on the pending-set size (0 = unlimited).  When
  /// a round's arrivals would push pending beyond the budget, the engine
  /// sheds the cheapest-weight arrivals of that round at ingest — lowest
  /// drop cost first, later arrivals shed before earlier ones on ties —
  /// until the budget holds.  Shed jobs count as arrivals and are charged
  /// as drops (EngineResult::admission_rejected and
  /// StreamStats::admission_rejected isolate them from deadline expiries)
  /// but never enter the pending set and are invisible to the policy.  A
  /// budget the run never exceeds leaves every result bit-identical to
  /// budget-off.
  std::int64_t pending_budget = 0;
};

/// Capacity-churn counters for one run; all zero without a fault plan.
struct DegradedStats {
  std::int64_t fault_events = 0;     ///< failures applied
  std::int64_t repair_events = 0;    ///< repairs applied
  std::int64_t churn_evictions = 0;  ///< cached colors evicted by failures
  Round degraded_rounds = 0;  ///< rounds run with >= 1 location down
  Cost drops_while_degraded = 0;  ///< drop cost incurred in degraded rounds

  friend bool operator==(const DegradedStats&, const DegradedStats&) = default;
};

/// Result of one engine run.
struct EngineResult {
  CostBreakdown cost;
  std::int64_t executed = 0;  ///< jobs completed
  /// Execution units applied (== executed for unit lengths; partially
  /// executed jobs contribute units but never count as executed).
  std::int64_t work_units = 0;
  std::int64_t arrived = 0;   ///< jobs pulled from the source
  Round rounds = 0;           ///< rounds actually run
  std::int64_t peak_pending = 0;  ///< max pending-set size observed
  /// Arrivals shed by pending-budget admission control (already counted in
  /// arrived and charged in cost.drops).
  std::int64_t admission_rejected = 0;
  DegradedStats degraded;     ///< capacity-churn counters
  Schedule schedule;          ///< events iff options.record_schedule
  /// Policy-specific counters captured after the run.
  std::vector<std::pair<std::string, std::int64_t>> policy_stats;
};

/// Everything that travels with one color when it migrates between shard
/// engines: the pending jobs (FIFO order, partial progress preserved) and
/// the policy's portable per-color scratch.  Color ids here are LOCAL to
/// the exporting / importing engine; the caller relabels through the
/// global color space.
struct EngineColorState {
  std::vector<PendingJobs::ExportedJob> jobs;
  PolicyColorState policy;
  bool has_policy = false;  ///< policy exported portable state for the color
};

/// The round engine as a resumable object: construct, run segments of
/// rounds, then finish (drain + terminal expiry sweep) or abandon
/// (counters only — the run continues elsewhere after a migration).
///
/// The constructor snapshots the problem metadata (cost model, per-color
/// delay bounds / drop costs / lengths) out of `source`, so the engine
/// outlives any per-segment source: each run_rounds() call may use a
/// different ArrivalSource object, as long as together they deliver the
/// same global round sequence ([start_round, arrival_end) in order).
///
/// `policy.begin` is called from the constructor with the REAL `source`
/// (offline policies need source.materialized(); the internal metadata
/// snapshot would hide it).
class Engine {
 public:
  /// Validates `options`, resolves the arrival horizon from `source`
  /// (clipped by options.max_rounds), and starts the run at
  /// `start_round` (rounds before it are assumed to belong to another
  /// engine; the expiry calendar starts empty).
  Engine(ArrivalSource& source, Policy& policy, const EngineOptions& options,
         Round start_round = 0);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Last round (exclusive) that may carry arrivals, resolved at
  /// construction.
  [[nodiscard]] Round arrival_end() const { return arrival_end_; }

  /// The next round this engine will run.
  [[nodiscard]] Round round() const { return k_; }

  /// Runs rounds [round(), until), pulling arrivals for each from
  /// `source` (which must serve absolute rounds sequentially from
  /// round()).  `until` must not exceed arrival_end().
  void run_rounds(ArrivalSource& source, Round until);

  /// Optional drain (EngineOptions::drain_pending) plus the terminal
  /// expiry sweep; returns the run's result.  Call at most once, after
  /// the last run_rounds().
  [[nodiscard]] EngineResult finish();

  /// Ends the run WITHOUT the drain/terminal sweep: returns the counters
  /// accumulated so far.  Used when a re-shard hands this engine's state
  /// to successors — the pending jobs live on via export_color().
  [[nodiscard]] EngineResult abandon();

  /// Copies `color`'s migratable state (pending jobs + policy scratch)
  /// out of the engine.  `color` is local to this engine.
  [[nodiscard]] EngineColorState export_color(ColorId color) const;

  /// Installs exported state under local id `color`.  Call after
  /// construction, before the first run_rounds().  Restored jobs update
  /// the deadline high-water mark and peak_pending but are NOT counted as
  /// arrivals again (they were counted by the exporting engine).
  void import_color(ColorId color, const EngineColorState& state);

  /// Serializes the complete mutable run state — options fingerprint,
  /// round cursor, accumulated result (schedule included when recorded),
  /// fault cursor, pending set, cache, policy scratch, observer stats —
  /// as one framed checkpoint (see core/checkpoint.h).  When `source` is
  /// non-null its stream position is embedded too (pass the source driving
  /// run_rounds); pass nullptr when the caller checkpoints the source
  /// separately, as the sharded runner's manifest does.
  /// checkpoint -> restore -> run_rounds is bit-identical to the
  /// uninterrupted run.
  void checkpoint(std::ostream& out, const ArrivalSource* source) const;

  /// Restores a checkpoint() stream onto this freshly constructed engine
  /// (same source parameters, policy type, and options; begin() already
  /// ran via the constructor).  Rejects any mismatch or malformation with
  /// InputError.  When `source` is non-null the embedded source state is
  /// restored onto it; the checkpoint must then carry one.
  void restore(std::istream& in, ArrivalSource* source);

 private:
  class MetaSource;
  struct FaultCursor;

  /// One full round at k_: churn, drop, arrival (from `pull`, or none),
  /// speed mini-rounds of policy + execution, periodic snapshot.
  void run_round(ArrivalSource* pull);

  /// Pending-budget admission: sheds the over-budget suffix of `arrivals`
  /// (cheapest drop cost first, later index first on ties), charges the
  /// shed jobs as drops, and returns the admitted jobs (a view into
  /// member scratch, valid until the next call).
  [[nodiscard]] std::span<const Job> admit_arrivals(
      std::span<const Job> arrivals, bool degraded_round);

  /// Latest round <= `until` that fast-forward may jump to from k_
  /// without crossing a deadline-block boundary, fault event, snapshot
  /// round, or policy event (k_ itself when it sits on one).
  [[nodiscard]] Round next_stop_round(Round until) const;

  /// With an empty pending set, jumps k_ to the next round in
  /// (k_, until] that any party — source, delay classes, faults,
  /// snapshots, policy — can observe, charging degraded-round accounting
  /// for the skipped span.  No-op when the next event is k_ itself.
  void fast_forward(ArrivalSource& source, Round until);

  EngineOptions options_;
  Policy* policy_;
  std::unique_ptr<MetaSource> meta_;  ///< owned metadata snapshot
  Round arrival_end_ = 0;
  bool unit_lengths_ = true;
  PendingJobs pending_;
  CacheAssignment cache_;
  EngineResult result_;
  PendingJobs::DropResult dropped_;  // reused across rounds
  std::vector<Job> admitted_;        // admission-control scratch
  std::vector<std::size_t> shed_order_;
  std::unique_ptr<FaultCursor> faults_;
  PhaseTimers* timers_ = nullptr;
  bool tracing_ = false;
  Round max_deadline_ = 0;  ///< high-water mark over ingested deadlines
  Round k_ = 0;
  bool ended_ = false;  ///< finish() or abandon() already called
  bool ff_eligible_ = false;       ///< options + policy allow fast-forward
  std::vector<Round> ff_delays_;   ///< distinct delay bounds (stop rounds)
  Round ff_snapshot_every_ = 0;    ///< observer snapshot cadence (0 = none)
};

/// Runs `policy` against `source` under `options`, pulling rounds
/// sequentially.  For infinite sources options.max_rounds must be set.
[[nodiscard]] EngineResult run_policy(ArrivalSource& source, Policy& policy,
                                      const EngineOptions& options);

/// Runs `policy` on a materialized `instance` (wraps it in a
/// MaterializedSource; exactly instance.horizon() rounds plus the final
/// expiry sweep, as before the streaming refactor).
[[nodiscard]] EngineResult run_policy(const Instance& instance,
                                      Policy& policy,
                                      const EngineOptions& options);

}  // namespace rrs
