#include "core/cost_model.h"

#include <algorithm>

namespace rrs {

CostModel CostModel::scalar(Cost delta, ColorId num_colors) {
  CostModel model;
  model.set_delta(delta);
  model.resize(num_colors);
  return model;
}

void CostModel::resize(ColorId num_colors) {
  RRS_REQUIRE(num_colors >= 0, "CostModel: num_colors must be >= 0, got "
                                   << num_colors);
  const auto n = static_cast<std::size_t>(num_colors);
  if (n <= drop_costs_.size()) return;
  const std::size_t old = drop_costs_.size();
  drop_costs_.resize(n, 1);
  lengths_.resize(n, 1);
  if (tier_ != Tier::kScalar) cold_.resize(n, delta_);
  if (tier_ == Tier::kMatrix) {
    // Re-pack the row-major matrix for the wider stride; new entries
    // default to the cold cost of their target.
    std::vector<Cost> wider(n * n);
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t t = 0; t < n; ++t) {
        wider[f * n + t] =
            (f < old && t < old) ? warm_[f * old + t] : cold_[t];
      }
    }
    warm_ = std::move(wider);
  }
}

void CostModel::set_delta(Cost delta) {
  RRS_REQUIRE(delta >= 1, "Delta must be >= 1, got " << delta);
  delta_ = delta;
}

void CostModel::set_drop_cost(ColorId color, Cost weight) {
  RRS_REQUIRE(weight >= 1, "drop cost must be >= 1, got " << weight);
  drop_costs_[checked(color)] = weight;
  if (weight != 1) unit_drop_costs_ = false;
}

void CostModel::set_length(ColorId color, Round length) {
  RRS_REQUIRE(length >= 1, "job length must be >= 1, got " << length);
  lengths_[checked(color)] = length;
  if (length != 1) unit_lengths_ = false;
}

void CostModel::promote_to_vector() {
  if (tier_ != Tier::kScalar) return;
  tier_ = Tier::kVector;
  cold_.assign(drop_costs_.size(), delta_);
}

void CostModel::promote_to_matrix() {
  promote_to_vector();
  if (tier_ == Tier::kMatrix) return;
  tier_ = Tier::kMatrix;
  const std::size_t n = cold_.size();
  warm_.resize(n * n);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) warm_[f * n + t] = cold_[t];
  }
}

void CostModel::set_cold_cost(ColorId to, Cost cost) {
  RRS_REQUIRE(cost >= 1, "cold reconfiguration cost must be >= 1, got "
                             << cost);
  const std::size_t t = checked(to);
  promote_to_vector();
  if (tier_ == Tier::kMatrix) {
    // Entries still carrying the old cold default follow the new one;
    // explicitly-set warm discounts are preserved.
    const std::size_t n = cold_.size();
    for (std::size_t f = 0; f < n; ++f) {
      if (warm_[f * n + t] == cold_[t]) warm_[f * n + t] = cost;
    }
  }
  cold_[t] = cost;
}

void CostModel::set_transition_cost(ColorId from, ColorId to, Cost cost) {
  if (from == kBlack) {
    set_cold_cost(to, cost);
    return;
  }
  RRS_REQUIRE(cost >= 0, "transition cost must be >= 0, got " << cost);
  const std::size_t f = checked(from);
  const std::size_t t = checked(to);
  promote_to_matrix();
  warm_[f * cold_.size() + t] = cost;
}

void CostModel::validate() const {
  RRS_REQUIRE(delta_ >= 1, "Delta must be >= 1, got " << delta_);
  RRS_REQUIRE(drop_costs_.size() == lengths_.size(),
              "CostModel tables out of sync");
  for (std::size_t c = 0; c < drop_costs_.size(); ++c) {
    RRS_REQUIRE(drop_costs_[c] >= 1, "drop cost of color "
                                         << c << " must be >= 1, got "
                                         << drop_costs_[c]);
    RRS_REQUIRE(lengths_[c] >= 1, "length of color " << c
                                                     << " must be >= 1, got "
                                                     << lengths_[c]);
  }
  if (tier_ != Tier::kScalar) {
    RRS_REQUIRE(cold_.size() == drop_costs_.size(),
                "CostModel cold column out of sync");
    for (std::size_t c = 0; c < cold_.size(); ++c) {
      RRS_REQUIRE(cold_[c] >= 1, "cold cost of color "
                                     << c << " must be >= 1, got "
                                     << cold_[c]);
    }
  }
  if (tier_ == Tier::kMatrix) {
    RRS_REQUIRE(warm_.size() == cold_.size() * cold_.size(),
                "CostModel transition matrix out of sync");
    for (const Cost w : warm_) {
      RRS_REQUIRE(w >= 0, "transition cost must be >= 0, got " << w);
    }
  }
}

Cost CostModel::min_incoming_cost(ColorId to) const {
  const std::size_t t = checked(to);
  if (tier_ != Tier::kMatrix) return cold_cost(to);
  Cost best = cold_[t];
  const std::size_t n = cold_.size();
  for (std::size_t f = 0; f < n; ++f) {
    if (f != t) best = std::min(best, warm_[f * n + t]);
  }
  return best;
}

Round CostModel::max_length() const {
  Round best = 1;
  for (const Round l : lengths_) best = std::max(best, l);
  return best;
}

CostModel CostModel::restricted(std::span<const ColorId> colors) const {
  CostModel out;
  out.delta_ = delta_;
  out.resize(static_cast<ColorId>(colors.size()));
  for (std::size_t i = 0; i < colors.size(); ++i) {
    const auto local = static_cast<ColorId>(i);
    out.set_drop_cost(local, drop_cost(colors[i]));
    out.set_length(local, length(colors[i]));
  }
  if (tier_ != Tier::kScalar) {
    for (std::size_t i = 0; i < colors.size(); ++i) {
      out.set_cold_cost(static_cast<ColorId>(i), cold_cost(colors[i]));
    }
  }
  if (tier_ == Tier::kMatrix) {
    for (std::size_t f = 0; f < colors.size(); ++f) {
      for (std::size_t t = 0; t < colors.size(); ++t) {
        out.set_transition_cost(static_cast<ColorId>(f),
                                static_cast<ColorId>(t),
                                reconfig_cost(colors[f], colors[t]));
      }
    }
  }
  out.refresh_uniform_flags();
  return out;
}

void CostModel::refresh_uniform_flags() {
  unit_drop_costs_ = std::all_of(drop_costs_.begin(), drop_costs_.end(),
                                 [](Cost w) { return w == 1; });
  unit_lengths_ = std::all_of(lengths_.begin(), lengths_.end(),
                              [](Round l) { return l == 1; });
}

}  // namespace rrs
