// Event-based schedules: the common artifact of every algorithm here.
//
// A Schedule records, for one Instance, each reconfiguration (which resource
// took which color, when) and each execution (which job ran where, when).
// Rounds may contain multiple mini-rounds (the double-speed machinery of
// Section 3.3 repeats the reconfiguration+execution phases); uni-speed
// schedules have speed() == 1.
//
// Storing events rather than the full per-round configuration keeps large
// simulations cheap: cost is derivable directly (reconfigurations * Delta +
// unexecuted jobs), and the validator replays events to check legality.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace rrs {

/// A single resource recoloring during some reconfiguration phase.
struct ReconfigEvent {
  Round round = 0;
  std::int32_t mini = 0;      ///< mini-round within the round (< speed)
  std::int32_t resource = 0;  ///< location being recolored
  ColorId color = kBlack;     ///< new color

  friend bool operator==(const ReconfigEvent&, const ReconfigEvent&) = default;
};

/// A single job execution during some execution phase.
struct ExecEvent {
  Round round = 0;
  std::int32_t mini = 0;
  std::int32_t resource = 0;
  JobId job = 0;

  friend bool operator==(const ExecEvent&, const ExecEvent&) = default;
};

/// An explicit schedule for one Instance.
struct Schedule {
  int num_resources = 0;
  int speed = 1;  ///< mini-rounds per round (1 = uni-speed, 2 = double-speed)
  /// Reconfigurations, in nondecreasing (round, mini) order.
  std::vector<ReconfigEvent> reconfigs;
  /// Executions, in nondecreasing (round, mini) order.
  std::vector<ExecEvent> execs;

  /// Cost given the instance's Delta and total job count.  Drop cost is the
  /// number of jobs never executed.  Only valid for unit drop costs; use
  /// cost(const Instance&) for the weighted extension.
  [[nodiscard]] CostBreakdown cost(Cost delta, std::int64_t total_jobs) const;

  /// Cost against `instance` under its full cost model: the summed
  /// Delta(from -> to) of every recoloring (replaying per-resource
  /// configurations when the matrix tier needs the previous occupant) plus
  /// the summed drop costs of every job never *completed* — a job needs
  /// length(color) execution units, and partial execution earns nothing.
  /// Equals the unit-cost formula under the paper's scalar-uniform model.
  [[nodiscard]] CostBreakdown cost(const Instance& instance) const;
};

}  // namespace rrs
