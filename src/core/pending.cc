#include "core/pending.h"

#include "util/check.h"

namespace rrs {

void PendingJobs::reset(ColorId num_colors) {
  RRS_REQUIRE(num_colors >= 0, "negative color count");
  per_color_.assign(static_cast<std::size_t>(num_colors), {});
  expiry_hints_ = {};
  total_ = 0;
}

void PendingJobs::add(const Job& job) {
  auto& dq = per_color_[idx(job.color)];
  const Round deadline = job.deadline();
  RRS_CHECK_MSG(dq.empty() || dq.back().deadline <= deadline,
                "per-color deadlines must be nondecreasing (color "
                    << job.color << ")");
  dq.push_back({deadline, job.id});
  expiry_hints_.emplace(deadline, job.color);
  ++total_;
}

Round PendingJobs::earliest_deadline(ColorId color) const {
  const auto& dq = per_color_[idx(color)];
  RRS_CHECK(!dq.empty());
  return dq.front().deadline;
}

JobId PendingJobs::pop_earliest(ColorId color) {
  auto& dq = per_color_[idx(color)];
  RRS_CHECK(!dq.empty());
  const JobId id = dq.front().id;
  dq.pop_front();
  --total_;
  return id;
}

void PendingJobs::drop_expired(Round round, DropResult& out) {
  out.clear();
  while (!expiry_hints_.empty() && expiry_hints_.top().first <= round) {
    const ColorId color = expiry_hints_.top().second;
    expiry_hints_.pop();
    auto& dq = per_color_[idx(color)];
    std::int64_t dropped_here = 0;
    while (!dq.empty() && dq.front().deadline <= round) {
      out.job_ids.push_back(dq.front().id);
      out.job_colors.push_back(color);
      dq.pop_front();
      ++dropped_here;
    }
    if (dropped_here > 0) {
      out.by_color.emplace_back(color, dropped_here);
      out.total += dropped_here;
      total_ -= dropped_here;
    }
  }
}

}  // namespace rrs
