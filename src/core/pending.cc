#include "core/pending.h"

#include <algorithm>
#include <limits>

#include "core/checkpoint.h"
#include "util/check.h"

namespace rrs {

namespace {

/// Smallest power of two >= `value` (value >= 1).
[[nodiscard]] std::size_t ring_size_for(Round value) {
  std::size_t size = 64;  // floor: tiny rings re-grow immediately
  while (size < static_cast<std::size_t>(value)) size *= 2;
  return size;
}

}  // namespace

void PendingJobs::reset(ColorId num_colors) {
  RRS_REQUIRE(num_colors >= 0, "negative color count");
  slot_deadline_.clear();
  slot_id_.clear();
  slot_remaining_.clear();
  slot_next_.clear();
  free_head_ = -1;
  queues_.assign(static_cast<std::size_t>(num_colors), {});
  ring_.clear();
  ring_mask_ = 0;
  cursor_ = -1;
  hints_ = 0;
  total_ = 0;
}

std::int32_t PendingJobs::acquire_slot() {
  if (free_head_ >= 0) {
    const std::int32_t slot = free_head_;
    free_head_ = slot_next_[static_cast<std::size_t>(slot)];
    return slot;
  }
  const auto slot = static_cast<std::int64_t>(slot_deadline_.size());
  RRS_CHECK_MSG(slot <= INT32_MAX, "pending slot pool exceeds 2^31 jobs");
  slot_deadline_.emplace_back();
  slot_id_.emplace_back();
  slot_remaining_.emplace_back();
  slot_next_.emplace_back();
  return static_cast<std::int32_t>(slot);
}

void PendingJobs::release_slot(std::int32_t slot) {
  slot_next_[static_cast<std::size_t>(slot)] = free_head_;
  free_head_ = slot;
}

void PendingJobs::add(const Job& job) {
  push_back_job(job.color, job.id, job.deadline(), job.length);
}

void PendingJobs::restore(ColorId color, const ExportedJob& job) {
  push_back_job(color, job.id, job.deadline, job.remaining);
}

void PendingJobs::export_color(ColorId color,
                               std::vector<ExportedJob>& out) const {
  for (std::int32_t s = queues_[idx(color)].head; s >= 0;
       s = slot_next_[static_cast<std::size_t>(s)]) {
    const auto i = static_cast<std::size_t>(s);
    out.push_back({slot_id_[i], slot_deadline_[i], slot_remaining_[i]});
  }
}

void PendingJobs::push_back_job(ColorId color, JobId id, Round deadline,
                                Round remaining) {
  ColorQueue& q = queues_[idx(color)];
  RRS_CHECK_MSG(
      q.tail < 0 ||
          slot_deadline_[static_cast<std::size_t>(q.tail)] <= deadline,
      "per-color deadlines must be nondecreasing (color " << color << ")");
  RRS_CHECK_MSG(remaining >= 1, "job length must be >= 1 (job " << id
                                                                << ")");
  const std::int32_t slot = acquire_slot();
  const auto s = static_cast<std::size_t>(slot);
  slot_deadline_[s] = deadline;
  slot_id_[s] = id;
  slot_remaining_[s] = remaining;
  slot_next_[s] = -1;
  if (q.tail >= 0) {
    slot_next_[static_cast<std::size_t>(q.tail)] = slot;
  } else {
    q.head = slot;
  }
  q.tail = slot;
  ++q.count;
  ++total_;
  // Deadlines are nondecreasing per color, so one hint per distinct
  // deadline suffices; the latest hinted deadline is the largest.
  if (q.last_bucketed != deadline) {
    bucket_entry(color, deadline);
    q.last_bucketed = deadline;
  }
}

Round PendingJobs::earliest_deadline(ColorId color) const {
  const ColorQueue& q = queues_[idx(color)];
  RRS_CHECK(q.head >= 0);
  return slot_deadline_[static_cast<std::size_t>(q.head)];
}

JobId PendingJobs::pop_earliest(ColorId color) {
  ColorQueue& q = queues_[idx(color)];
  RRS_CHECK(q.head >= 0);
  const std::int32_t slot = q.head;
  const auto s = static_cast<std::size_t>(slot);
  const JobId id = slot_id_[s];
  q.head = slot_next_[s];
  if (q.head < 0) q.tail = -1;
  --q.count;
  --total_;
  release_slot(slot);
  return id;
}

PendingJobs::ExecResult PendingJobs::execute_earliest(ColorId color) {
  ColorQueue& q = queues_[idx(color)];
  RRS_CHECK(q.head >= 0);
  const auto s = static_cast<std::size_t>(q.head);
  if (slot_remaining_[s] > 1) {
    --slot_remaining_[s];
    return {slot_id_[s], false};
  }
  return {pop_earliest(color), true};
}

Round PendingJobs::earliest_remaining(ColorId color) const {
  const ColorQueue& q = queues_[idx(color)];
  RRS_CHECK(q.head >= 0);
  return slot_remaining_[static_cast<std::size_t>(q.head)];
}

void PendingJobs::checkpoint(CheckpointWriter& w) const {
  w.i64(cursor_);
  w.i64(static_cast<std::int64_t>(queues_.size()));
  std::vector<ExportedJob> jobs;
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    jobs.clear();
    export_color(static_cast<ColorId>(c), jobs);
    w.u64(jobs.size());
    for (const ExportedJob& job : jobs) {
      w.i64(job.id);
      w.i64(job.deadline);
      w.i64(job.remaining);
    }
  }
}

void PendingJobs::restore_checkpoint(CheckpointReader& r) {
  RRS_CHECK_MSG(total_ == 0 && cursor_ == -1,
                "checkpoint restore into a non-fresh pending store");
  const std::int64_t cursor = r.i64();
  RRS_REQUIRE(cursor >= -1, "checkpoint pending cursor " << cursor);
  // The cursor must land before any restored job is re-added: past-
  // deadline jobs bucket at cursor_ + 1, so the first sweep after restore
  // finds them exactly where the original store would.
  cursor_ = cursor;
  const std::int64_t colors = r.i64();
  RRS_REQUIRE(colors == static_cast<std::int64_t>(queues_.size()),
              "checkpoint pending color count " << colors << " != "
                                                << queues_.size());
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    const std::uint64_t count = r.u64();
    Round prev = std::numeric_limits<Round>::min();
    for (std::uint64_t i = 0; i < count; ++i) {
      ExportedJob job;
      job.id = r.i64();
      job.deadline = r.i64();
      job.remaining = r.i64();
      RRS_REQUIRE(job.deadline >= prev && job.remaining >= 1,
                  "checkpoint pending job " << job.id << " malformed");
      prev = job.deadline;
      restore(static_cast<ColorId>(c), job);
    }
  }
}

void PendingJobs::bucket_entry(ColorId color, Round deadline) {
  // Past-deadline adds land in the next sweepable bucket so the following
  // sweep still finds them.
  const Round target = std::max(deadline, cursor_ + 1);
  if (ring_.empty() ||
      static_cast<std::size_t>(target - cursor_) > ring_.size()) {
    grow_ring(target - cursor_);
  }
  ring_[static_cast<std::size_t>(target) & ring_mask_].push_back(
      {color, deadline});
  ++hints_;
}

void PendingJobs::grow_ring(Round min_span) {
  const std::size_t new_size =
      std::max(ring_size_for(min_span), ring_.size() * 2);
  std::vector<std::vector<CalendarEntry>> old = std::move(ring_);
  ring_.assign(new_size, {});
  ring_mask_ = new_size - 1;
  for (std::vector<CalendarEntry>& bucket : old) {
    for (const CalendarEntry& entry : bucket) {
      const Round target = std::max(entry.deadline, cursor_ + 1);
      ring_[static_cast<std::size_t>(target) & ring_mask_].push_back(entry);
    }
  }
}

void PendingJobs::drain_expired(const CalendarEntry& entry, Round round,
                                DropResult& out) {
  ColorQueue& q = queues_[idx(entry.color)];
  // The hint is consumed; a later add with the same deadline (possible
  // only for past-deadline adds) must re-bucket.
  if (q.last_bucketed == entry.deadline) q.last_bucketed = -1;
  std::int64_t dropped_here = 0;
  while (q.head >= 0 &&
         slot_deadline_[static_cast<std::size_t>(q.head)] <= round) {
    const std::int32_t slot = q.head;
    const auto s = static_cast<std::size_t>(slot);
    out.job_ids.push_back(slot_id_[s]);
    out.job_colors.push_back(entry.color);
    q.head = slot_next_[s];
    release_slot(slot);
    ++dropped_here;
  }
  if (dropped_here > 0) {
    if (q.head < 0) q.tail = -1;
    q.count -= dropped_here;
    out.by_color.emplace_back(entry.color, dropped_here);
    out.total += dropped_here;
    total_ -= dropped_here;
  }
}

void PendingJobs::drop_expired(Round round, DropResult& out) {
  out.clear();
  if (round <= cursor_) return;  // already swept (sweeps are monotone)
  if (total_ == 0) {
    // Nothing can expire.  Discard any stale hints (left behind by
    // executed jobs) wholesale so the cursor can jump the entire gap —
    // after a fast-forwarded span the sweep would otherwise still walk a
    // ring's worth of buckets.  Every cleared color's last_bucketed must
    // be reset, or a later add at or below the discarded hint's deadline
    // would skip re-bucketing and never be swept.
    if (hints_ > 0) {
      for (std::vector<CalendarEntry>& bucket : ring_) bucket.clear();
      for (ColorQueue& q : queues_) q.last_bucketed = -1;
      hints_ = 0;
    }
    cursor_ = round;
    return;
  }
  if (ring_.empty()) {
    cursor_ = round;
    return;
  }
  // Sweep the buckets of rounds (cursor_, round]; past a full ring cycle
  // every bucket has been visited once.
  const Round gap = round - cursor_;
  const Round buckets =
      std::min(gap, static_cast<Round>(ring_.size()));
  for (Round b = 0; b < buckets; ++b) {
    std::vector<CalendarEntry>& bucket =
        ring_[static_cast<std::size_t>(cursor_ + 1 + b) & ring_mask_];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const CalendarEntry entry = bucket[i];
      if (entry.deadline > round) {
        // A later ring cycle's hint: not due yet, keep it in place.
        bucket[kept++] = entry;
        continue;
      }
      drain_expired(entry, round, out);
      --hints_;
    }
    bucket.resize(kept);
  }
  cursor_ = round;
}

}  // namespace rrs
