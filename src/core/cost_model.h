// The generalized cost model: drop weights, job lengths, and the
// reconfiguration cost function Delta(from -> to).
//
// The paper prices every recoloring at one scalar Delta, every drop at the
// job's (per-color) drop cost, and fixes every job at one unit of work.
// Production systems are rarely that uniform: re-imaging a resource for a
// heavyweight service costs more than for a stateless one, switching
// between two builds of the same stack is cheaper than a cold install, and
// jobs occupy a resource for several rounds.  CostModel bundles all three
// generalizations behind one audited abstraction with three reconfiguration
// tiers:
//
//   * kScalar — today's model: Delta(from -> to) == delta() for every pair.
//     This is the zero-overhead fast path; engines and cost recomputation
//     short-circuit to `events * delta()` and stay bit-identical to the
//     pre-CostModel code.
//   * kVector — a cold re-image price per *target* color:
//     Delta(from -> to) == cold_cost(to), independent of `from`.
//   * kMatrix — a full transition matrix with warm-transition discounts:
//     Delta(from -> to) may undercut cold_cost(to) for related colors.
//     Transitions from kBlack (an unconfigured resource) always price via
//     the cold column.
//
// Semantics shared by every tier:
//   * lengths are integer rounds of work, length(c) >= 1; a job completes
//     after length(c) execution units and is otherwise dropped at its FULL
//     drop weight (partial execution earns nothing — see DESIGN.md);
//   * recoloring a location to kBlack (freeing it) costs 0 and is not an
//     engine event; only the offline DP records such events explicitly;
//   * drop_cost(c) >= 1, cold costs >= 1, warm costs >= 0 (a free warm
//     transition is allowed; it still counts as a reconfiguration event).
#pragma once

#include <span>
#include <vector>

#include "core/types.h"
#include "util/check.h"

namespace rrs {

/// Value type bundling drop weights, job lengths, and Delta(from -> to).
/// Mutators are builder-time only; engines treat a CostModel as immutable.
class CostModel {
 public:
  enum class Tier { kScalar, kVector, kMatrix };

  /// Scalar Delta = 1, zero colors (the empty default).
  CostModel() = default;

  /// The paper's model: scalar `delta`, unit drop costs, unit lengths.
  [[nodiscard]] static CostModel scalar(Cost delta, ColorId num_colors);

  // --- builder-time mutators ---

  /// Grows the per-color tables to cover ColorIds < `num_colors` with unit
  /// drop costs and unit lengths (never shrinks).
  void resize(ColorId num_colors);

  /// Sets the scalar/base reconfiguration cost Delta (>= 1).  In the
  /// vector and matrix tiers delta() remains the base price used wherever
  /// a target-independent reference is needed (e.g. repairing a location
  /// that never held a color).
  void set_delta(Cost delta);

  void set_drop_cost(ColorId color, Cost weight);
  void set_length(ColorId color, Round length);

  /// Sets the cold re-image price of `to`, promoting the tier to at least
  /// kVector (unset colors default to delta()).
  void set_cold_cost(ColorId to, Cost cost);

  /// Sets Delta(from -> to), promoting the tier to kMatrix (unset entries
  /// default to the cold cost of their target).  `from` == kBlack sets the
  /// cold column entry of `to`.
  void set_transition_cost(ColorId from, ColorId to, Cost cost);

  /// Throws InputError if any entry violates the range rules above.
  void validate() const;

  // --- accessors ---

  [[nodiscard]] Tier tier() const { return tier_; }
  [[nodiscard]] ColorId num_colors() const {
    return static_cast<ColorId>(drop_costs_.size());
  }
  [[nodiscard]] Cost delta() const { return delta_; }

  [[nodiscard]] Cost drop_cost(ColorId color) const {
    return drop_costs_[checked(color)];
  }
  [[nodiscard]] Round length(ColorId color) const {
    return lengths_[checked(color)];
  }

  /// Delta(kBlack -> to): the cold re-image price of `to`.
  [[nodiscard]] Cost cold_cost(ColorId to) const {
    return tier_ == Tier::kScalar ? delta_ : cold_[checked(to)];
  }

  /// Delta(from -> to).  `from` may be kBlack (cold); `to` may be kBlack
  /// (freeing a location, always 0).
  [[nodiscard]] Cost reconfig_cost(ColorId from, ColorId to) const {
    if (to == kBlack) return 0;
    switch (tier_) {
      case Tier::kScalar:
        return delta_;
      case Tier::kVector:
        return cold_[checked(to)];
      case Tier::kMatrix:
        return from == kBlack
                   ? cold_[checked(to)]
                   : warm_[checked(from) * cold_.size() + checked(to)];
    }
    return delta_;  // unreachable
  }

  /// Cheapest way any schedule can first enter `to` (min over kBlack and
  /// every other color) — the LB1 generalization's per-color charge.
  [[nodiscard]] Cost min_incoming_cost(ColorId to) const;

  [[nodiscard]] bool unit_drop_costs() const { return unit_drop_costs_; }
  [[nodiscard]] bool unit_lengths() const { return unit_lengths_; }
  [[nodiscard]] bool scalar_reconfig() const {
    return tier_ == Tier::kScalar;
  }
  /// True iff this is exactly the paper's model: scalar Delta, unit drop
  /// costs, unit lengths.
  [[nodiscard]] bool uniform() const {
    return scalar_reconfig() && unit_drop_costs_ && unit_lengths_;
  }
  [[nodiscard]] Round max_length() const;

  /// The model restricted to `colors` (relabeled densely in span order):
  /// what a sharded stream hands its engine.  Transition entries between
  /// surviving colors and the cold column are preserved exactly, so
  /// sharded per-event charges match the serial run's.
  [[nodiscard]] CostModel restricted(std::span<const ColorId> colors) const;

  friend bool operator==(const CostModel&, const CostModel&) = default;

 private:
  [[nodiscard]] std::size_t checked(ColorId color) const {
    RRS_CHECK_MSG(color >= 0 &&
                      static_cast<std::size_t>(color) < drop_costs_.size(),
                  "CostModel: color " << color << " out of range [0, "
                                      << drop_costs_.size() << ")");
    return static_cast<std::size_t>(color);
  }

  void promote_to_vector();
  void promote_to_matrix();
  void refresh_uniform_flags();

  Tier tier_ = Tier::kScalar;
  Cost delta_ = 1;
  std::vector<Cost> drop_costs_;
  std::vector<Round> lengths_;
  std::vector<Cost> cold_;  ///< kVector/kMatrix: Delta(kBlack -> to)
  std::vector<Cost> warm_;  ///< kMatrix: row-major Delta(from -> to)
  bool unit_drop_costs_ = true;
  bool unit_lengths_ = true;
};

}  // namespace rrs
