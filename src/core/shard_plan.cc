#include "core/shard_plan.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace rrs {

int ShardPlan::total_resources() const {
  return std::accumulate(shard_resources.begin(), shard_resources.end(), 0);
}

ShardPlan make_shard_plan(ColorId num_colors, int num_shards,
                          int num_resources, int resource_unit,
                          std::span<const double> weights) {
  RRS_REQUIRE(num_colors >= 1, "a plan needs at least one color, got "
                                   << num_colors);
  RRS_REQUIRE(num_shards >= 1, "num_shards must be >= 1, got " << num_shards);
  RRS_REQUIRE(num_shards <= num_colors,
              "cannot spread " << num_colors << " colors over " << num_shards
                               << " shards: shards would be empty");
  RRS_REQUIRE(resource_unit >= 1, "resource_unit must be >= 1, got "
                                      << resource_unit);
  RRS_REQUIRE(num_resources % resource_unit == 0,
              "num_resources (" << num_resources
                                << ") must be divisible by the policy's "
                                << "resource granularity (" << resource_unit
                                << ")");
  const int units = num_resources / resource_unit;
  RRS_REQUIRE(units >= num_shards,
              "resource budget " << num_resources << " holds only " << units
                                 << " blocks of " << resource_unit
                                 << " — fewer than " << num_shards
                                 << " shards");
  RRS_REQUIRE(weights.empty() ||
                  static_cast<ColorId>(weights.size()) == num_colors,
              "weights size " << weights.size() << " != num_colors "
                              << num_colors);
  for (const double w : weights) {
    RRS_REQUIRE(w > 0.0, "per-color weights must be positive, got " << w);
  }

  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.resource_unit = resource_unit;
  plan.shard_of_color.assign(static_cast<std::size_t>(num_colors), 0);
  plan.shard_colors.resize(static_cast<std::size_t>(num_shards));

  // Longest-processing-time greedy: heaviest color first onto the
  // least-loaded shard.  All ties break toward the lower index, so the
  // assignment is a pure function of the inputs.
  std::vector<ColorId> order(static_cast<std::size_t>(num_colors));
  std::iota(order.begin(), order.end(), 0);
  const auto weight_of = [&weights](ColorId c) {
    return weights.empty() ? 1.0 : weights[static_cast<std::size_t>(c)];
  };
  std::stable_sort(order.begin(), order.end(),
                   [&weight_of](ColorId a, ColorId b) {
                     return weight_of(a) > weight_of(b);
                   });

  std::vector<double> load(static_cast<std::size_t>(num_shards), 0.0);
  for (const ColorId color : order) {
    int lightest = 0;
    for (int s = 1; s < num_shards; ++s) {
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(lightest)]) {
        lightest = s;
      }
    }
    plan.shard_of_color[static_cast<std::size_t>(color)] = lightest;
    load[static_cast<std::size_t>(lightest)] += weight_of(color);
  }
  for (ColorId c = 0; c < num_colors; ++c) {
    const int s = plan.shard_of_color[static_cast<std::size_t>(c)];
    plan.shard_colors[static_cast<std::size_t>(s)].push_back(c);
  }

  // Resource split: one resource block per shard up front (the engine
  // needs >= 1), the rest proportional to shard load with
  // largest-remainder rounding (ties toward the lower shard index).
  plan.shard_resources.assign(static_cast<std::size_t>(num_shards),
                              resource_unit);
  int spare = units - num_shards;
  const double total_load = std::accumulate(load.begin(), load.end(), 0.0);
  if (spare > 0 && total_load > 0.0) {
    std::vector<double> ideal(static_cast<std::size_t>(num_shards), 0.0);
    std::vector<int> extra(static_cast<std::size_t>(num_shards), 0);
    int given = 0;
    for (int s = 0; s < num_shards; ++s) {
      ideal[static_cast<std::size_t>(s)] =
          static_cast<double>(spare) * load[static_cast<std::size_t>(s)] /
          total_load;
      extra[static_cast<std::size_t>(s)] =
          static_cast<int>(ideal[static_cast<std::size_t>(s)]);
      given += extra[static_cast<std::size_t>(s)];
    }
    std::vector<int> by_remainder(static_cast<std::size_t>(num_shards));
    std::iota(by_remainder.begin(), by_remainder.end(), 0);
    std::stable_sort(by_remainder.begin(), by_remainder.end(),
                     [&ideal, &extra](int a, int b) {
                       const double ra = ideal[static_cast<std::size_t>(a)] -
                                         extra[static_cast<std::size_t>(a)];
                       const double rb = ideal[static_cast<std::size_t>(b)] -
                                         extra[static_cast<std::size_t>(b)];
                       return ra > rb;
                     });
    for (int i = 0; given < spare; ++i) {
      ++extra[static_cast<std::size_t>(
          by_remainder[static_cast<std::size_t>(i % num_shards)])];
      ++given;
    }
    for (int s = 0; s < num_shards; ++s) {
      plan.shard_resources[static_cast<std::size_t>(s)] +=
          extra[static_cast<std::size_t>(s)] * resource_unit;
    }
  }
  RRS_CHECK(plan.total_resources() == num_resources);
  return plan;
}

std::vector<double> observe_color_weights(ArrivalSource& probe,
                                          Round sample_rounds) {
  RRS_REQUIRE(sample_rounds >= 1, "need at least one sample round, got "
                                      << sample_rounds);
  Round end = sample_rounds;
  if (probe.finite()) end = std::min(end, probe.horizon());
  std::vector<double> weights(static_cast<std::size_t>(probe.num_colors()),
                              1.0);
  for (Round k = 0; k < end; ++k) {
    for (const Job& job : probe.arrivals_in_round(k)) {
      weights[static_cast<std::size_t>(job.color)] += 1.0;
    }
  }
  return weights;
}

}  // namespace rrs
