// Unit jobs: the work items of reconfigurable resource scheduling.
#pragma once

#include "core/types.h"

namespace rrs {

/// A unit job (Section 2 of the paper): it arrives at `arrival`, must run on
/// a resource configured to `color` strictly before `deadline()`, and is
/// otherwise dropped at unit cost.  Jobs are value types stored densely in
/// an Instance; `id` is the job's index there.
struct Job {
  JobId id = 0;
  ColorId color = 0;
  Round arrival = 0;
  Round delay_bound = 1;  ///< positive; category-specific in this paper
  /// Cost of dropping this job.  The paper fixes 1; the weighted extension
  /// (per-color drop costs, following the companion SPAA 2006 paper's
  /// variable-drop-cost variant) allows any positive integer.
  Cost drop_cost = 1;
  /// Execution units required to complete the job.  The paper fixes 1; the
  /// length extension (per-color integer lengths, see CostModel) allows any
  /// positive integer.  A job dropped before its final unit executes is
  /// charged its full drop_cost — partial execution earns nothing.
  Round length = 1;

  /// First round in which the job no longer exists: it is dropped in the
  /// drop phase of round `deadline()` if still pending.
  [[nodiscard]] Round deadline() const { return arrival + delay_bound; }

  friend bool operator==(const Job&, const Job&) = default;
};

}  // namespace rrs
