// The online-policy interface driven by the round engine.
//
// The paper's Section 2 model advances in rounds of four phases:
//   drop -> arrival -> reconfiguration -> execution.
// The engine owns the model-level bookkeeping (pending jobs, expiry, the
// physical cache, cost) and hands the policy ONE fused callback per
// mini-round: on_round(RoundContext&).  The context carries everything the
// three historical callbacks (drop / arrival / reconfigure) used to
// deliver — this round's drops, this round's arrivals, and the mutable
// cache — so the engine pays a single virtual dispatch per mini-round and
// policies can keep per-round state in registers across phases.
//
// on_round contract:
//   * Called once per mini-round, mini() = 0 .. speed-1, with round()
//     fixed within the round.  dropped() and arrivals() are identical for
//     every mini of one round: process them when first_mini() is true,
//     reconfigure on every call.
//   * arrivals() have already been ingested into pending().
//   * The cache is inside an open reconfiguration phase for the whole
//     call; insert/erase freely.  The engine charges Delta per physical
//     recoloring when the call returns.
//   * After the last round the engine makes one extra call with
//     final_sweep() == true (and mini() == 0) delivering the terminal
//     expiry sweep, so drop accounting in policies matches the engine's.
//     No reconfiguration phase is open then — the cache is read-only and
//     policies must not mutate it (mutations throw InvariantError).
//
// Policies only decide *which colors to cache*; execution is model-defined
// (each resource executes one pending job of its configured color,
// earliest deadline first).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/arrival_source.h"
#include "core/cache.h"
#include "core/pending.h"

namespace rrs {

struct Observer;
class CheckpointReader;
class CheckpointWriter;

/// Everything a policy sees in one fused per-mini-round callback.
class RoundContext {
 public:
  RoundContext(Round round, int mini, bool final_sweep,
               const PendingJobs::DropResult& dropped,
               std::span<const Job> arrivals, const ArrivalSource& source,
               const PendingJobs& pending, CacheAssignment& cache,
               Observer* observer = nullptr)
      : round_(round),
        mini_(mini),
        final_sweep_(final_sweep),
        dropped_(&dropped),
        arrivals_(arrivals),
        source_(&source),
        pending_(&pending),
        cache_(&cache),
        observer_(observer) {}

  /// Current round k.
  [[nodiscard]] Round round() const { return round_; }

  /// Mini-round within the round, 0 .. speed-1.
  [[nodiscard]] int mini() const { return mini_; }

  /// True on the first mini-round — the one where per-round (as opposed to
  /// per-mini-round) processing of dropped()/arrivals() belongs.
  [[nodiscard]] bool first_mini() const { return mini_ == 0; }

  /// True on the one extra call after the last round: dropped() holds the
  /// terminal expiry sweep, arrivals() is empty, and the cache must not be
  /// mutated.
  [[nodiscard]] bool final_sweep() const { return final_sweep_; }

  /// Jobs the engine expired in this round's drop phase.
  [[nodiscard]] const PendingJobs::DropResult& dropped() const {
    return *dropped_;
  }

  /// This round's arrivals (already added to pending()).
  [[nodiscard]] std::span<const Job> arrivals() const { return arrivals_; }

  [[nodiscard]] const ArrivalSource& source() const { return *source_; }
  [[nodiscard]] const PendingJobs& pending() const { return *pending_; }

  /// The cache, open for mutation except when final_sweep() is true.
  [[nodiscard]] CacheAssignment& cache() const { return *cache_; }

  /// The run's event sink, or nullptr when observability is off.  Policies
  /// may push policy-level TraceEvents (epoch turnovers, adaptations)
  /// through it; they must treat it as optional.
  [[nodiscard]] Observer* obs() const { return observer_; }

 private:
  Round round_;
  int mini_;
  bool final_sweep_;
  const PendingJobs::DropResult* dropped_;
  std::span<const Job> arrivals_;
  const ArrivalSource* source_;
  const PendingJobs* pending_;
  CacheAssignment* cache_;
  Observer* observer_;
};

/// Portable per-color policy scratch for shard migration: the Section 3.1
/// state machine fields every ranked-cache-family policy keeps per color.
/// When a color moves between shard engines (adaptive re-sharding), this
/// is what travels with it so the receiving policy ranks it exactly as the
/// sending one would have.
struct PolicyColorState {
  Cost cnt = 0;            ///< arrivals counted modulo the threshold
  Round dd = 0;            ///< color deadline l.dd
  Round last_wrap = -1;    ///< most recent counter-wrap round
  Round prev_wrap = -1;    ///< the wrap before that (dLRU timestamp basis)
  bool eligible = false;
  bool seen_job = false;   ///< color has received at least one job
};

/// Base class for online reconfiguration policies.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Algorithm name for tables and registries (e.g. "dlru-edf").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once before round 0.  `source` carries the problem metadata
  /// (and, for materialized inputs, the whole sequence via
  /// source.materialized()); `num_resources` is the online resource count
  /// n; `speed` is mini-rounds per round (1 unless double-speed).
  virtual void begin(const ArrivalSource& source, int num_resources,
                     int speed) {
    (void)source;
    (void)num_resources;
    (void)speed;
  }

  /// The fused per-mini-round callback; see the contract at the top of
  /// this header.
  virtual void on_round(RoundContext& ctx) = 0;

  /// Called after the engine applies capacity-churn events at the start of
  /// a round (before that round's drop phase): `up` of `total` locations
  /// remain in service and `evicted` lists the cached colors the failures
  /// evicted (already removed from the cache).  The ranked-cache policies
  /// rebuild their targets from the live max_distinct() every round, so
  /// their overrides invalidate cross-round scratch and count the event;
  /// the default is a no-op.
  virtual void on_capacity_change(Round round, int up, int total,
                                  std::span<const ColorId> evicted) {
    (void)round;
    (void)up;
    (void)total;
    (void)evicted;
  }

  /// Smallest resource-count unit this policy accepts: any n it runs with
  /// must be a positive multiple (e.g. 4 for dLRU-EDF's two replicated
  /// cache halves).  The sharded runner splits the resource budget across
  /// shards in these units.  Defaults to `replication`.
  [[nodiscard]] virtual int resource_granularity(int replication) const {
    return replication;
  }

  /// True iff skipping a span of event-free rounds (no arrivals, no
  /// pending jobs, no deadline-block boundary of any delay class, no
  /// capacity churn, no snapshot round, no round from next_policy_event())
  /// cannot change this policy's decisions or counters: across such a
  /// span every on_round() call is a provable no-op (the tracker phases
  /// see empty inputs off block boundaries and the cache already equals
  /// the recomputed target).  Policies with per-round state that moves
  /// unconditionally must leave this false (the default), which disables
  /// Engine fast-forward for them.
  [[nodiscard]] virtual bool supports_fast_forward() const { return false; }

  /// Earliest round >= the current one at which the policy itself has a
  /// scheduled event (e.g. an adaptation-window boundary) that fast-
  /// forward must not skip; kInfiniteHorizon when there is none (the
  /// default).  Only consulted when supports_fast_forward() is true.
  [[nodiscard]] virtual Round next_policy_event(Round k) const {
    (void)k;
    return kInfiniteHorizon;
  }

  /// Migration hook: copies the policy's per-color scratch for `color`
  /// (a local id of this policy's engine) into `out` and returns true.
  /// Policies without portable per-color state return false (the default);
  /// such a color then restarts cold on the receiving shard, exactly as a
  /// from-scratch run under the new plan would.
  [[nodiscard]] virtual bool export_color_state(ColorId color,
                                                PolicyColorState& out) const {
    (void)color;
    (void)out;
    return false;
  }

  /// Migration hook: installs exported per-color scratch for `color` (a
  /// local id of this policy's engine).  Called after begin(), before any
  /// round, only on freshly constructed policies.  The default ignores it.
  virtual void import_color_state(ColorId color,
                                  const PolicyColorState& state) {
    (void)color;
    (void)state;
  }

  /// Optional policy-specific counters (epochs, classified drops, ...)
  /// surfaced to experiments.
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::int64_t>>
  stats() const {
    return {};
  }

  /// Checkpoint hook: serializes the policy's full mutable state into the
  /// writer's current section so a freshly constructed policy of the same
  /// type can resume bit-identically via restore_state().  Policies
  /// without support reject (the default), which makes any engine
  /// checkpoint over them fail loudly instead of silently dropping state.
  virtual void checkpoint_state(CheckpointWriter& w) const;

  /// Restore hook: installs checkpoint_state() output onto a freshly
  /// begun policy (begin() already called with the same parameters).
  virtual void restore_state(CheckpointReader& r);
};

}  // namespace rrs
