// The online-policy interface driven by the round engine.
//
// The paper's Section 2 model advances in rounds of four phases:
//   drop -> arrival -> reconfiguration -> execution.
// The engine owns the model-level bookkeeping (pending jobs, expiry, the
// physical cache, cost) and calls the policy at each phase.  Policies only
// decide *which colors to cache*; execution is model-defined (each resource
// executes one pending job of its configured color, earliest deadline
// first).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/arrival_source.h"
#include "core/cache.h"
#include "core/pending.h"

namespace rrs {

/// Read-only view of engine state offered to policies.
class EngineView {
 public:
  EngineView(const ArrivalSource& source, const PendingJobs& pending,
             const CacheAssignment& cache)
      : source_(&source), pending_(&pending), cache_(&cache) {}

  [[nodiscard]] const ArrivalSource& source() const { return *source_; }
  [[nodiscard]] const PendingJobs& pending() const { return *pending_; }
  [[nodiscard]] const CacheAssignment& cache() const { return *cache_; }

 private:
  const ArrivalSource* source_;
  const PendingJobs* pending_;
  const CacheAssignment* cache_;
};

/// Base class for online reconfiguration policies.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Algorithm name for tables and registries (e.g. "dlru-edf").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once before round 0.  `source` carries the problem metadata
  /// (and, for materialized inputs, the whole sequence via
  /// source.materialized()); `num_resources` is the online resource count
  /// n; `speed` is mini-rounds per round (1 unless double-speed).
  virtual void begin(const ArrivalSource& source, int num_resources,
                     int speed) {
    (void)source;
    (void)num_resources;
    (void)speed;
  }

  /// Drop phase of round `k`: `dropped` lists the jobs the engine just
  /// expired.  Policies update per-color eligibility state here.
  virtual void on_drop_phase(Round k, const PendingJobs::DropResult& dropped,
                             const EngineView& view) {
    (void)k;
    (void)dropped;
    (void)view;
  }

  /// Arrival phase of round `k`: `arrivals` are this round's jobs (already
  /// added to the pending set visible through `view`).
  virtual void on_arrival_phase(Round k, std::span<const Job> arrivals,
                                const EngineView& view) {
    (void)k;
    (void)arrivals;
    (void)view;
  }

  /// Reconfiguration phase of mini-round `mini` of round `k`: mutate
  /// `cache` (insert/erase colors).  The engine charges Delta per physical
  /// recoloring that results.
  virtual void reconfigure(Round k, int mini, const EngineView& view,
                           CacheAssignment& cache) = 0;

  /// Optional policy-specific counters (epochs, classified drops, ...)
  /// surfaced to experiments.
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::int64_t>>
  stats() const {
    return {};
  }
};

}  // namespace rrs
