// Schedule validation: the ground truth for every experiment.
//
// Every algorithm in this repository — online policies run through the
// engine, the offline DP, the appendix OFF constructions, the reduction
// mappings — emits a Schedule.  The validator replays a Schedule against its
// Instance and checks the Section 2 model rules:
//
//   * events are ordered and in-range (rounds, mini-rounds, resources);
//   * each job receives at most length(color) execution units (exactly "at
//     most once" under the paper's unit lengths);
//   * every execution unit of a job runs no earlier than its arrival round
//     and strictly before its deadline round (jobs with deadline k are
//     dropped in the drop phase of round k, which precedes execution);
//   * the executing resource is configured to the job's color at that
//     mini-round (reconfigurations in the same mini-round precede execution);
//   * at most one execution per (resource, round, mini-round).
//
// It also recomputes the cost so tests can cross-check CostBreakdowns.
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"

namespace rrs {

/// Outcome of validating one Schedule against one Instance.
struct ValidationResult {
  bool ok = false;
  std::vector<std::string> errors;  ///< capped; empty iff ok
  CostBreakdown cost;               ///< valid only when ok
};

/// Validates `schedule` against `instance`.  Collects up to `max_errors`
/// problems (so tests can report several at once) and computes the cost.
[[nodiscard]] ValidationResult validate(const Instance& instance,
                                        const Schedule& schedule,
                                        int max_errors = 8);

/// Convenience used by tests: validates and throws InputError on failure,
/// returning the cost on success.
CostBreakdown validate_or_throw(const Instance& instance,
                                const Schedule& schedule);

}  // namespace rrs
