#include "core/schedule.h"

#include "util/check.h"

namespace rrs {

CostBreakdown Schedule::cost(Cost delta, std::int64_t total_jobs) const {
  RRS_REQUIRE(delta >= 1, "Delta must be positive");
  RRS_REQUIRE(total_jobs >= static_cast<std::int64_t>(execs.size()),
              "schedule executes more jobs than exist");
  CostBreakdown c;
  c.reconfig_events = static_cast<Cost>(reconfigs.size());
  c.reconfig_cost = c.reconfig_events * delta;
  c.drops = total_jobs - static_cast<std::int64_t>(execs.size());
  return c;
}

CostBreakdown Schedule::cost(const Instance& instance) const {
  RRS_REQUIRE(execs.size() <= instance.jobs().size(),
              "schedule executes more jobs than exist");
  CostBreakdown c;
  c.reconfig_events = static_cast<Cost>(reconfigs.size());
  c.reconfig_cost = c.reconfig_events * instance.delta();
  Cost executed_weight = 0;
  for (const ExecEvent& e : execs) {
    executed_weight +=
        instance.jobs()[static_cast<std::size_t>(e.job)].drop_cost;
  }
  c.drops = instance.total_weight() - executed_weight;
  return c;
}

}  // namespace rrs
