#include "core/schedule.h"

#include "util/check.h"

namespace rrs {

CostBreakdown Schedule::cost(Cost delta, std::int64_t total_jobs) const {
  RRS_REQUIRE(delta >= 1, "Delta must be positive");
  RRS_REQUIRE(total_jobs >= static_cast<std::int64_t>(execs.size()),
              "schedule executes more jobs than exist");
  CostBreakdown c;
  c.reconfig_events = static_cast<Cost>(reconfigs.size());
  c.reconfig_cost = c.reconfig_events * delta;
  c.drops = total_jobs - static_cast<std::int64_t>(execs.size());
  return c;
}

CostBreakdown Schedule::cost(const Instance& instance) const {
  const CostModel& model = instance.cost_model();
  CostBreakdown c;
  c.reconfig_events = static_cast<Cost>(reconfigs.size());

  // Reconfiguration charges.  Scalar and vector tiers price each event by
  // its target alone; only the matrix tier needs the previous occupant,
  // recovered by replaying the per-resource configuration (events are in
  // order).  Recoloring to kBlack (freeing) is 0 in every tier.
  if (model.tier() != CostModel::Tier::kMatrix) {
    for (const ReconfigEvent& e : reconfigs) {
      c.reconfig_cost += model.reconfig_cost(kBlack, e.color);
    }
  } else {
    std::vector<ColorId> config(static_cast<std::size_t>(num_resources),
                                kBlack);
    for (const ReconfigEvent& e : reconfigs) {
      RRS_REQUIRE(e.resource >= 0 && e.resource < num_resources,
                  "reconfig event resource out of range");
      ColorId& at = config[static_cast<std::size_t>(e.resource)];
      c.reconfig_cost += model.reconfig_cost(at, e.color);
      at = e.color;
    }
  }

  // Drop charges: total weight minus the weight of *completed* jobs.  A
  // job completes after length(color) execution units; partial execution
  // earns nothing.
  Cost executed_weight = 0;
  if (instance.unit_lengths()) {
    RRS_REQUIRE(execs.size() <= instance.jobs().size(),
                "schedule executes more jobs than exist");
    for (const ExecEvent& e : execs) {
      executed_weight +=
          instance.jobs()[static_cast<std::size_t>(e.job)].drop_cost;
    }
  } else {
    std::vector<Round> units(instance.jobs().size(), 0);
    for (const ExecEvent& e : execs) {
      RRS_REQUIRE(e.job >= 0 && static_cast<std::size_t>(e.job) <
                                    instance.jobs().size(),
                  "exec event job id out of range");
      ++units[static_cast<std::size_t>(e.job)];
    }
    for (const Job& job : instance.jobs()) {
      const Round got = units[static_cast<std::size_t>(job.id)];
      RRS_REQUIRE(got <= job.length, "job " << job.id
                                            << " executed past its length");
      if (got == job.length) executed_weight += job.drop_cost;
    }
  }
  c.drops = instance.total_weight() - executed_weight;
  return c;
}

}  // namespace rrs
