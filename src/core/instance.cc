#include "core/instance.h"

#include <algorithm>
#include <sstream>

#include "util/bits.h"
#include "util/check.h"

namespace rrs {

Round Instance::delay_bound(ColorId color) const {
  RRS_REQUIRE(color >= 0 && color < num_colors(),
              "color " << color << " out of range [0, " << num_colors()
                       << ")");
  return delay_bounds_[static_cast<std::size_t>(color)];
}

Cost Instance::drop_cost(ColorId color) const {
  RRS_REQUIRE(color >= 0 && color < num_colors(),
              "color " << color << " out of range [0, " << num_colors()
                       << ")");
  return drop_costs_[static_cast<std::size_t>(color)];
}

Round Instance::length(ColorId color) const {
  RRS_REQUIRE(color >= 0 && color < num_colors(),
              "color " << color << " out of range [0, " << num_colors()
                       << ")");
  return lengths_[static_cast<std::size_t>(color)];
}

Cost Instance::weight_of_color(ColorId color) const {
  RRS_REQUIRE(color >= 0 && color < num_colors(),
              "color " << color << " out of range");
  return weight_per_color_[static_cast<std::size_t>(color)];
}

std::span<const Job> Instance::arrivals_in_round(Round k) const {
  const auto it =
      std::lower_bound(request_rounds_.begin(), request_rounds_.end(), k);
  if (it == request_rounds_.end() || *it != k) return {};
  const auto idx =
      static_cast<std::size_t>(std::distance(request_rounds_.begin(), it));
  return std::span<const Job>(jobs_.data() + request_offsets_[idx],
                              request_offsets_[idx + 1] -
                                  request_offsets_[idx]);
}

Round Instance::next_arrival_round(Round k) const {
  const auto it =
      std::lower_bound(request_rounds_.begin(), request_rounds_.end(), k);
  return it == request_rounds_.end() ? -1 : *it;
}

std::int64_t Instance::jobs_of_color(ColorId color) const {
  RRS_REQUIRE(color >= 0 && color < num_colors(),
              "color " << color << " out of range");
  return jobs_per_color_[static_cast<std::size_t>(color)];
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << num_colors() << " colors, " << jobs_.size() << " jobs, " << horizon_
     << " rounds, Delta=" << delta_;
  os << (batched_ ? (rate_limited_ ? ", rate-limited batched" : ", batched")
                  : ", unbatched");
  if (!all_pow2_) os << ", non-pow2 delays";
  return os.str();
}

InstanceBuilder& InstanceBuilder::delta(Cost d) {
  RRS_REQUIRE(d >= 1, "Delta must be a positive integer, got " << d);
  delta_ = d;
  return *this;
}

ColorId InstanceBuilder::add_color(Round d, Cost drop_cost, Round length) {
  RRS_REQUIRE(d >= 1, "delay bound must be >= 1, got " << d);
  RRS_REQUIRE(drop_cost >= 1, "drop cost must be >= 1, got " << drop_cost);
  RRS_REQUIRE(length >= 1, "job length must be >= 1, got " << length);
  delay_bounds_.push_back(d);
  drop_costs_.push_back(drop_cost);
  lengths_.push_back(length);
  return static_cast<ColorId>(delay_bounds_.size() - 1);
}

InstanceBuilder& InstanceBuilder::reconfig_cost(ColorId to, Cost cost) {
  return transition_cost(kBlack, to, cost);
}

InstanceBuilder& InstanceBuilder::transition_cost(ColorId from, ColorId to,
                                                  Cost cost) {
  RRS_REQUIRE(from == kBlack ||
                  (from >= 0 &&
                   static_cast<std::size_t>(from) < delay_bounds_.size()),
              "transition_cost: unknown from-color " << from);
  RRS_REQUIRE(to >= 0 && static_cast<std::size_t>(to) < delay_bounds_.size(),
              "transition_cost: unknown to-color " << to);
  RRS_REQUIRE(cost >= (from == kBlack ? 1 : 0),
              "transition cost must be >= " << (from == kBlack ? 1 : 0)
                                            << ", got " << cost);
  transitions_.push_back({from, to, cost});
  return *this;
}

InstanceBuilder& InstanceBuilder::add_jobs(ColorId color, Round arrival,
                                           std::int64_t count) {
  RRS_REQUIRE(color >= 0 &&
                  static_cast<std::size_t>(color) < delay_bounds_.size(),
              "add_jobs: unknown color " << color);
  RRS_REQUIRE(arrival >= 0, "add_jobs: negative arrival " << arrival);
  RRS_REQUIRE(count >= 0, "add_jobs: negative count " << count);
  if (count > 0) arrivals_.push_back({color, arrival, count});
  return *this;
}

InstanceBuilder& InstanceBuilder::min_horizon(Round h) {
  RRS_REQUIRE(h >= 0, "min_horizon must be >= 0");
  min_horizon_ = std::max(min_horizon_, h);
  return *this;
}

Instance InstanceBuilder::build() {
  RRS_REQUIRE(!built_, "InstanceBuilder::build() called twice");
  built_ = true;

  Instance inst;
  inst.delta_ = delta_;
  inst.delay_bounds_ = delay_bounds_;
  inst.drop_costs_ = drop_costs_;
  inst.lengths_ = lengths_;
  inst.jobs_per_color_.assign(delay_bounds_.size(), 0);
  inst.weight_per_color_.assign(delay_bounds_.size(), 0);
  for (const Cost w : drop_costs_) {
    if (w != 1) inst.unit_drop_costs_ = false;
  }
  for (const Round l : lengths_) {
    if (l != 1) inst.unit_lengths_ = false;
  }

  // Assemble the cost model (scalar unless reconfig/transition costs were
  // recorded, in which case the records promote the tier themselves).
  inst.model_.set_delta(delta_);
  inst.model_.resize(static_cast<ColorId>(delay_bounds_.size()));
  for (std::size_t c = 0; c < delay_bounds_.size(); ++c) {
    inst.model_.set_drop_cost(static_cast<ColorId>(c), drop_costs_[c]);
    inst.model_.set_length(static_cast<ColorId>(c), lengths_[c]);
  }
  for (const auto& t : transitions_) {
    inst.model_.set_transition_cost(t.from, t.to, t.cost);
  }
  inst.model_.validate();

  // Stable order: by arrival, ties in insertion order, so generators fully
  // control the "consistent order" semantics downstream.
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const PendingArrival& a, const PendingArrival& b) {
                     return a.arrival < b.arrival;
                   });

  std::int64_t total_jobs = 0;
  for (const auto& a : arrivals_) total_jobs += a.count;
  inst.jobs_.reserve(static_cast<std::size_t>(total_jobs));

  Round horizon = min_horizon_;
  for (const auto& a : arrivals_) {
    const Round d = delay_bounds_[static_cast<std::size_t>(a.color)];
    const Cost w = drop_costs_[static_cast<std::size_t>(a.color)];
    const Round len = lengths_[static_cast<std::size_t>(a.color)];
    for (std::int64_t i = 0; i < a.count; ++i) {
      Job job;
      job.id = static_cast<JobId>(inst.jobs_.size());
      job.color = a.color;
      job.arrival = a.arrival;
      job.delay_bound = d;
      job.drop_cost = w;
      job.length = len;
      inst.jobs_.push_back(job);
    }
    inst.jobs_per_color_[static_cast<std::size_t>(a.color)] += a.count;
    inst.weight_per_color_[static_cast<std::size_t>(a.color)] += w * a.count;
    inst.total_weight_ += w * a.count;
    horizon = std::max(horizon, a.arrival + d);
    if (a.arrival % d != 0) inst.batched_ = false;
  }
  inst.horizon_ = horizon;

  // Request index over the sorted job array.
  for (std::size_t i = 0; i < inst.jobs_.size(); ++i) {
    if (i == 0 || inst.jobs_[i].arrival != inst.jobs_[i - 1].arrival) {
      inst.request_rounds_.push_back(inst.jobs_[i].arrival);
      inst.request_offsets_.push_back(i);
    }
  }
  inst.request_offsets_.push_back(inst.jobs_.size());

  // Classification: delay bounds and per-(color, batch-round) rate limits.
  for (const Round d : delay_bounds_) {
    if (!is_pow2(d)) inst.all_pow2_ = false;
  }
  for (std::size_t c = 0; c < delay_bounds_.size(); ++c) {
    inst.colors_by_delay_[delay_bounds_[c]].push_back(
        static_cast<ColorId>(c));
  }
  if (inst.batched_) {
    // Rate limited iff, per color, each batch round carries <= D_l jobs.
    std::map<std::pair<ColorId, Round>, std::int64_t> batch_counts;
    for (const auto& a : arrivals_) {
      batch_counts[{a.color, a.arrival}] += a.count;
    }
    for (const auto& [key, count] : batch_counts) {
      if (count > delay_bounds_[static_cast<std::size_t>(key.first)]) {
        inst.rate_limited_ = false;
        break;
      }
    }
  } else {
    inst.rate_limited_ = false;
  }
  return inst;
}

}  // namespace rrs
