// Pending-job bookkeeping shared by the engine and the offline machinery.
//
// Tracks, per color, the not-yet-executed not-yet-dropped jobs, ordered by
// deadline.  Within one color deadlines are nondecreasing in arrival order
// (one fixed delay bound per color), so a FIFO per color suffices.
//
// Storage is structure-of-arrays: one flat slot pool holds every pending
// job's deadline and id, colors thread intrusive FIFO index lists through
// the pool, and expiry across colors is found through a bucketed calendar
// ring keyed by deadline round.  Deadlines are bounded by `now + max D_l`,
// so a ring of at least max D_l buckets holds every live deadline in a
// distinct bucket and the per-round expiry sweep inspects exactly one
// bucket.  The calendar stores *hints* ({color, deadline} pairs, one per
// distinct deadline per color): a hint whose jobs were already executed
// drains nothing, exactly like the lazy heap entries it replaces — but a
// sweep touches only the buckets of the rounds it covers instead of paying
// a log-factor pop per hint.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/job.h"
#include "core/types.h"

namespace rrs {

class CheckpointReader;
class CheckpointWriter;

/// Multiset of pending jobs, keyed by color, ordered by deadline per color.
///
/// Expiry sweeps must use nondecreasing rounds (the engine sweeps every
/// round in order); a sweep at or before the last swept round is a no-op.
class PendingJobs {
 public:
  /// Prepares bookkeeping for colors [0, num_colors); discards any state.
  void reset(ColorId num_colors);

  /// Adds a newly arrived job.  Amortized O(1).
  void add(const Job& job);

  /// Number of pending jobs of `color`.
  [[nodiscard]] std::int64_t count(ColorId color) const {
    return queues_[idx(color)].count;
  }

  /// True iff `color` has no pending jobs (the paper's "idle").
  [[nodiscard]] bool idle(ColorId color) const {
    return queues_[idx(color)].head < 0;
  }

  /// Total pending jobs across all colors.
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// Deadline of the earliest-deadline pending job of `color`.
  /// Requires count(color) > 0.
  [[nodiscard]] Round earliest_deadline(ColorId color) const;

  /// Removes and returns the earliest-deadline pending job of `color`
  /// (i.e. executes it).  Requires count(color) > 0.  Equivalent to
  /// execute_earliest() for unit-length jobs; multi-unit jobs must go
  /// through execute_earliest() so partial progress is tracked.
  JobId pop_earliest(ColorId color);

  /// One execution unit applied to a job.
  struct ExecResult {
    JobId id = 0;
    bool completed = false;  ///< final unit: the job left the multiset
  };

  /// Applies one execution unit to the earliest-deadline pending job of
  /// `color`, removing it when its remaining length hits zero.  Requires
  /// count(color) > 0.  At most the front job of a color is ever partially
  /// executed: progress always goes to the front (EDF within color), and a
  /// front job that expires is dropped at full weight, so partial progress
  /// never outlives the front position.
  ExecResult execute_earliest(ColorId color);

  /// Remaining execution units of the earliest-deadline pending job of
  /// `color`.  Requires count(color) > 0.
  [[nodiscard]] Round earliest_remaining(ColorId color) const;

  /// Result of an expiry sweep.
  struct DropResult {
    std::int64_t total = 0;
    /// (color, count) pairs for colors that dropped >= 1 job, ascending
    /// color order not guaranteed.
    std::vector<std::pair<ColorId, std::int64_t>> by_color;
    /// Ids of every dropped job, unordered.
    std::vector<JobId> job_ids;
    /// Color of each dropped job, parallel to `job_ids` (so consumers
    /// never need the full job table — streaming runs have none).
    std::vector<ColorId> job_colors;

    /// Empties the result, keeping allocated capacity for reuse.
    void clear() {
      total = 0;
      by_color.clear();
      job_ids.clear();
      job_colors.clear();
    }
  };

  /// Drops every pending job with deadline <= `round` (the round-`round`
  /// drop phase) into `out`, which is cleared first; its buffers are
  /// reused, so a caller-held DropResult makes the per-round sweep
  /// allocation-free.  Sweeps inspect only the calendar buckets of rounds
  /// (last swept, round]; `round` at or below the last swept round is a
  /// no-op.
  void drop_expired(Round round, DropResult& out);

  // --- shard migration (engine export/import surface) ---

  /// One exported pending job: identity, absolute deadline, remaining
  /// execution units.
  struct ExportedJob {
    JobId id = 0;
    Round deadline = 0;
    Round remaining = 1;
  };

  /// Appends `color`'s pending jobs to `out` in FIFO (deadline) order.
  void export_color(ColorId color, std::vector<ExportedJob>& out) const;

  /// Re-adds an exported job under `color` (the receiving store's local
  /// id).  Restore jobs in their exported order so per-color deadlines
  /// stay nondecreasing.
  void restore(ColorId color, const ExportedJob& job);

  // --- checkpoint/restore (crash-safe service mode) ---

  /// Serializes the sweep cursor and every color's FIFO (ids, deadlines,
  /// partial progress) into the writer's current section.
  void checkpoint(CheckpointWriter& w) const;

  /// Restores state written by checkpoint() into this store, which must
  /// be freshly reset() with the same color count.  The calendar is
  /// rebuilt from the restored jobs; hint-set differences against the
  /// original store are unobservable (stale hints drain nothing).
  void restore_checkpoint(CheckpointReader& r);

 private:
  struct ColorQueue {
    std::int32_t head = -1;  ///< slot of the earliest-deadline job
    std::int32_t tail = -1;  ///< slot of the latest-deadline job
    std::int64_t count = 0;
    /// Largest deadline with an outstanding calendar hint for this color
    /// (-1 if none): adds of an already-hinted deadline skip the calendar.
    Round last_bucketed = -1;
  };

  /// Calendar hint: color may hold jobs expiring at `deadline`.
  struct CalendarEntry {
    ColorId color;
    Round deadline;
  };

  [[nodiscard]] static std::size_t idx(ColorId color) {
    return static_cast<std::size_t>(color);
  }

  [[nodiscard]] std::int32_t acquire_slot();
  void release_slot(std::int32_t slot);

  /// Appends one job to `color`'s FIFO (shared by add() and restore()).
  void push_back_job(ColorId color, JobId id, Round deadline,
                     Round remaining);

  /// Records the hint {color, deadline} in the ring bucket of
  /// max(deadline, cursor_ + 1), growing the ring when the deadline lies
  /// beyond the current cycle.
  void bucket_entry(ColorId color, Round deadline);

  /// Re-buckets every outstanding hint into a ring of >= `min_span`
  /// power-of-two buckets.
  void grow_ring(Round min_span);

  /// Drains every job of `entry.color` with deadline <= `round` into
  /// `out`.
  void drain_expired(const CalendarEntry& entry, Round round,
                     DropResult& out);

  // Slot pool (structure-of-arrays): parallel per-job attributes plus an
  // intrusive "next job of the same color" chain; freed slots reuse the
  // next-chain as a free list.
  std::vector<Round> slot_deadline_;
  std::vector<JobId> slot_id_;
  std::vector<Round> slot_remaining_;  ///< execution units left (>= 1)
  std::vector<std::int32_t> slot_next_;
  std::int32_t free_head_ = -1;

  std::vector<ColorQueue> queues_;  // color -> FIFO through the slot pool

  // Expiry calendar: power-of-two ring of hint buckets, indexed by
  // deadline & (ring size - 1).  cursor_ is the last swept round; hints
  // whose deadline lies beyond the covered rounds of a sweep belong to a
  // later ring cycle and are kept in place.
  std::vector<std::vector<CalendarEntry>> ring_;
  std::size_t ring_mask_ = 0;
  Round cursor_ = -1;
  std::int64_t hints_ = 0;  ///< outstanding calendar hints across buckets

  std::int64_t total_ = 0;
};

}  // namespace rrs
