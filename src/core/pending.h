// Pending-job bookkeeping shared by the engine and the offline machinery.
//
// Tracks, per color, the not-yet-executed not-yet-dropped jobs, ordered by
// deadline.  Within one color deadlines are nondecreasing in arrival order
// (one fixed delay bound per color), so a deque suffices; expiry across
// colors is found through a lazy global min-heap of (deadline, color) hints.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "core/job.h"
#include "core/types.h"

namespace rrs {

/// Multiset of pending jobs, keyed by color, ordered by deadline per color.
class PendingJobs {
 public:
  /// Prepares bookkeeping for colors [0, num_colors); discards any state.
  void reset(ColorId num_colors);

  /// Adds a newly arrived job.  Amortized O(log #jobs).
  void add(const Job& job);

  /// Number of pending jobs of `color`.
  [[nodiscard]] std::int64_t count(ColorId color) const {
    return static_cast<std::int64_t>(per_color_[idx(color)].size());
  }

  /// True iff `color` has no pending jobs (the paper's "idle").
  [[nodiscard]] bool idle(ColorId color) const { return count(color) == 0; }

  /// Total pending jobs across all colors.
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// Deadline of the earliest-deadline pending job of `color`.
  /// Requires count(color) > 0.
  [[nodiscard]] Round earliest_deadline(ColorId color) const;

  /// Removes and returns the earliest-deadline pending job of `color`
  /// (i.e. executes it).  Requires count(color) > 0.
  JobId pop_earliest(ColorId color);

  /// Result of an expiry sweep.
  struct DropResult {
    std::int64_t total = 0;
    /// (color, count) pairs for colors that dropped >= 1 job, ascending
    /// color order not guaranteed.
    std::vector<std::pair<ColorId, std::int64_t>> by_color;
    /// Ids of every dropped job, unordered.
    std::vector<JobId> job_ids;
    /// Color of each dropped job, parallel to `job_ids` (so consumers
    /// never need the full job table — streaming runs have none).
    std::vector<ColorId> job_colors;

    /// Empties the result, keeping allocated capacity for reuse.
    void clear() {
      total = 0;
      by_color.clear();
      job_ids.clear();
      job_colors.clear();
    }
  };

  /// Drops every pending job with deadline <= `round` (the round-`round`
  /// drop phase) into `out`, which is cleared first; its buffers are
  /// reused, so a caller-held DropResult makes the per-round sweep
  /// allocation-free.  Amortized O(log) per dropped job.
  void drop_expired(Round round, DropResult& out);

  /// Convenience overload returning a fresh DropResult.
  [[nodiscard]] DropResult drop_expired(Round round) {
    DropResult result;
    drop_expired(round, result);
    return result;
  }

 private:
  struct Entry {
    Round deadline;
    JobId id;
  };

  [[nodiscard]] static std::size_t idx(ColorId color) {
    return static_cast<std::size_t>(color);
  }

  std::vector<std::deque<Entry>> per_color_;
  // Lazy hints: one (deadline, color) per added job; stale entries (already
  // executed/dropped jobs) are skipped during sweeps.
  std::priority_queue<std::pair<Round, ColorId>,
                      std::vector<std::pair<Round, ColorId>>, std::greater<>>
      expiry_hints_;
  std::int64_t total_ = 0;
};

}  // namespace rrs
