// Per-color eligibility, counter, deadline, and timestamp bookkeeping.
//
// This is the "common aspects" machinery of Section 3.1 that all three
// online algorithms (dLRU, EDF, dLRU-EDF) share.  For each color l it
// maintains:
//   * l.cnt   — arrivals counted modulo the color's eligibility threshold;
//               reaching it is a *counter wrapping event* and makes the
//               color eligible.  The threshold is the cold reconfiguration
//               cost of the color (Delta in the paper's scalar model).  In
//               the weighted extension each arrival contributes its drop
//               cost, so a color becomes eligible once one cold re-image's
//               worth of droppable value has accumulated (identical to the
//               paper's rule for unit costs and scalar Delta);
//   * l.dd    — the color deadline, set to k + D_l at each multiple k of D_l;
//   * eligible/ineligible — a color becomes ineligible again in the drop
//               phase of a multiple of D_l while it is not cached;
//   * the dLRU *timestamp* — the latest round before the most recent
//               multiple of D_l in which a counter wrapping event occurred
//               (0 if none).  Timestamps are evaluated lazily from the last
//               two wrap rounds, which is equivalent because wraps happen
//               only at multiples of D_l.
//
// It also tallies the quantities the paper's analysis is stated in terms of
// (epochs, eligible vs. ineligible drops), so experiments E6 can check
// Lemmas 3.2-3.4 numerically.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/arrival_source.h"
#include "core/cache.h"
#include "core/pending.h"
#include "core/policy.h"
#include "core/types.h"

namespace rrs {

class CheckpointReader;
class CheckpointWriter;

/// Shared Section 3.1 per-color state machine.
class EligibilityTracker {
 public:
  /// Resets all state for `source` (only its metadata accessors are used,
  /// so streaming sources work — the tracker never touches the job table).
  void begin(const ArrivalSource& source);

  /// Drop phase of round `k`: classifies this round's drops as eligible or
  /// ineligible (Section 3.2), then, for every color l with k a multiple of
  /// D_l that is eligible and not cached, ends its epoch (set ineligible,
  /// cnt = 0).
  void drop_phase(Round k, const PendingJobs::DropResult& dropped,
                  const CacheAssignment& cache);

  /// Arrival phase of round `k`: for every color with k a multiple of its
  /// delay bound, advances the color deadline and counts arrivals, firing
  /// counter wrapping events (and eligibility) when cnt reaches Delta.
  void arrival_phase(Round k, std::span<const Job> arrivals);

  [[nodiscard]] bool eligible(ColorId color) const {
    return state_[idx(color)].eligible;
  }

  /// Color deadline l.dd (start-of-time value 0 before the first multiple).
  [[nodiscard]] Round color_deadline(ColorId color) const {
    return state_[idx(color)].dd;
  }

  /// Delay bound D_l of `color`, cached flat at begin() so ranking loops
  /// skip the source's virtual dispatch.
  [[nodiscard]] Round delay_bound(ColorId color) const {
    return delay_bounds_[idx(color)];
  }

  /// Per-job drop cost of `color`, cached flat at begin() (weight-aware
  /// ranking reads it every round).
  [[nodiscard]] Cost drop_cost(ColorId color) const {
    return drop_costs_[idx(color)];
  }

  /// Per-job execution length of `color`, cached flat at begin().
  [[nodiscard]] Round length(ColorId color) const {
    return lengths_[idx(color)];
  }

  /// dLRU timestamp of `color` as of round `now` (lazy evaluation).
  [[nodiscard]] Round timestamp(ColorId color, Round now) const;

  /// Currently eligible colors, unspecified order.
  [[nodiscard]] const std::vector<ColorId>& eligible_colors() const {
    return eligible_colors_;
  }

  // --- incremental rank index (ranked-cache hot path) ---
  //
  // The ranked-cache family consumes two total orders of the eligible set
  // every round.  Rebuilding them with a sort costs O(E log E) per round
  // even when nothing changed; the index below maintains both orders
  // persistently so a round's query is a scan and mutations are charged
  // to the events that caused them (wraps, epoch ends, deadline-block
  // boundaries, migration).
  //
  //   * EDF: eligible colors live in a calendar ring of ceil_pow2(max D_l)
  //     buckets keyed by color deadline (at query time every eligible dd
  //     lies in (now, now + max D_l], so buckets are collision-free the
  //     same way PendingJobs' expiry calendar is).  Buckets keep their
  //     members sorted by a precomputed static tiebreak rank — exactly the
  //     EdfKey order after the idle and deadline fields — re-sorting
  //     lazily at the next scan after a mutation.  The ordered scan walks
  //     buckets in rotated (deadline-ascending) order via a nonempty-bucket
  //     bitmap and partitions live colors into nonidle-then-idle, which
  //     reproduces the EdfKey sort exactly.
  //   * dLRU: eligible colors live in an intrusive doubly-linked recency
  //     list ordered by (effective timestamp desc, color asc).  Effective
  //     timestamps change only at counter wraps and own-block boundaries,
  //     both of which pass through arrival_phase, so repositions are
  //     charged to churn.

  /// Opts into the incremental rank index.  Call before begin() (begin()
  /// builds the structures); sticky across begins, idempotent.
  void enable_rank_index() { index_enabled_ = true; }

  [[nodiscard]] bool rank_index_enabled() const { return index_enabled_; }

  /// Eligible colors in exact EDF rank order (EdfKey in
  /// algs/ranked_cache.h): nonidle before idle, then ascending color
  /// deadline, then descending drop cost, ascending length, ascending
  /// delay bound, ascending color.  The returned buffer is owned by the
  /// tracker and valid until the next edf_order() or phase call.
  [[nodiscard]] const std::vector<ColorId>& edf_order(
      const PendingJobs& pending);

  /// Up to `max_count` eligible colors in exact dLRU rank order (LruKey:
  /// descending effective timestamp, ties ascending color) as of the last
  /// phase round.  The returned buffer is owned by the tracker, distinct
  /// from edf_order()'s, and valid until the next lru_order() or phase
  /// call.
  [[nodiscard]] const std::vector<ColorId>& lru_order(std::size_t max_count);

  // --- shard migration (engine export/import surface) ---

  /// Snapshot of one color's portable Section 3.1 state.
  [[nodiscard]] PolicyColorState export_color(ColorId color) const;

  /// Restores an exported snapshot onto a freshly begun tracker (call
  /// after begin(), before any phase).  Eligibility and the active-color
  /// tally are replayed so ranking and num_epochs() continue exactly
  /// where the exporting tracker left off.
  void import_color(ColorId color, const PolicyColorState& state);

  // --- checkpoint/restore (crash-safe service mode) ---

  /// Serializes the full per-color state, the eligible set (in its live
  /// order, so eligible_pos survives), and every analysis counter.  The
  /// rank index is NOT serialized: restore_checkpoint rebuilds it from
  /// the flushed per-color state through the same total orders the live
  /// structures maintain, so queries are bit-identical.
  void checkpoint(CheckpointWriter& w) const;

  /// Restores checkpoint() state onto a freshly begun tracker (same
  /// source metadata, same enable_* settings).
  void restore_checkpoint(CheckpointReader& r);

  // --- analysis counters (Section 3.2 definitions) ---

  /// Completed epochs (eligible -> ineligible transitions) plus one
  /// incomplete epoch per color that received at least one job.
  [[nodiscard]] std::int64_t num_epochs() const {
    return completed_epochs_ + active_colors_;
  }

  /// Jobs dropped while their color was ineligible / eligible (counts).
  [[nodiscard]] std::int64_t ineligible_drops() const {
    return ineligible_drops_;
  }
  [[nodiscard]] std::int64_t eligible_drops() const {
    return eligible_drops_;
  }

  /// Weighted variants: summed drop costs (equal to the counts for unit
  /// drop costs).
  [[nodiscard]] Cost ineligible_drop_weight() const {
    return ineligible_drop_weight_;
  }
  [[nodiscard]] Cost eligible_drop_weight() const {
    return eligible_drop_weight_;
  }

  /// Ids of every job dropped while its color was ineligible — the jobs
  /// removed from sigma to form the eligible subsequence alpha of the
  /// Lemma 3.2 analysis.  Empty unless enable_drop_id_recording() was
  /// called: the list grows with the run, so it is opt-in analysis state
  /// (streamed runs must stay O(pending + colors)).
  [[nodiscard]] const std::vector<JobId>& ineligible_drop_ids() const {
    return ineligible_drop_ids_;
  }

  /// Records ineligible-drop job ids for the Lemma 3.2 subsequence
  /// construction.  Call before the run starts (begin() keeps the
  /// setting).
  void enable_drop_id_recording() { record_drop_ids_ = true; }

  // --- super-epoch analysis (Section 3.4) ---
  //
  // A super-epoch ends the moment at least 2m distinct colors have
  // increased their timestamps since it started (m = the offline resource
  // count of the analysis).  Lemma 3.15 implies no color completes more
  // than two epochs inside one super-epoch (Corollary 3.2: at most three
  // epochs overlap it).  Enable with the analysis m; counters then track
  // the quantities the Lemma 3.5 proof charges.

  /// Enables super-epoch tracking for offline resource count `m` (>= 1).
  /// Call before the run starts (begin() keeps the setting).
  void enable_super_epoch_analysis(int m);

  /// Completed super-epochs so far (the current one is in progress).
  [[nodiscard]] std::int64_t num_super_epochs() const {
    return super_epochs_;
  }

  /// Largest number of epoch endings any color accumulated within one
  /// super-epoch (Lemma 3.15 predicts <= 2).
  [[nodiscard]] std::int64_t max_epoch_endings_per_super_epoch() const {
    return max_endings_;
  }

  /// Total timestamp update events observed (analysis enabled only).
  [[nodiscard]] std::int64_t timestamp_updates() const {
    return timestamp_updates_;
  }

 private:
  struct ColorState {
    Cost cnt = 0;
    Round dd = 0;
    Round last_wrap = -1;         // most recent counter-wrap round
    Round prev_wrap = -1;         // the one before
    bool eligible = false;
    bool seen_job = false;        // has received any job
    std::int32_t eligible_pos = -1;  // index in eligible_colors_, -1 if not
    // Super-epoch analysis state (valid when analysis_m_ > 0):
    Round eff_ts = 0;                 // last observed effective timestamp
    std::int64_t updated_gen = 0;     // super-epoch generation of last update
    std::int64_t endings_gen = 0;     // generation of endings_in_super_
    std::int64_t endings_in_super_ = 0;
  };

  [[nodiscard]] static std::size_t idx(ColorId c) {
    return static_cast<std::size_t>(c);
  }

  void make_eligible(ColorId color);
  void make_ineligible(ColorId color);

  void note_timestamp_update(ColorId color);
  void note_epoch_end(ColorId color);

  // Rank-index internals (no-ops unless enable_rank_index() preceded
  // begin()).
  void build_rank_index();
  void cal_insert(ColorId color);
  void cal_remove(ColorId color);
  void scan_calendar(std::size_t lo, std::size_t hi,
                     const PendingJobs& pending);
  void lru_insert(ColorId color, Round ts);
  void lru_remove(ColorId color);
  /// Removes + re-inserts `color` when its effective timestamp changed.
  void lru_refresh(ColorId color, Round k);
  void flush_dirty_imports(Round k);

  // Flat copies of the source's per-color metadata, filled at begin():
  // the drop/arrival/timestamp paths run every round and must not pay a
  // virtual call (or a std::map walk) per color.
  Cost delta_ = 1;
  std::vector<Round> delay_bounds_;
  std::vector<Cost> drop_costs_;
  std::vector<Round> lengths_;
  /// Per-color eligibility threshold: the cold re-image price of the color
  /// (== Delta in the scalar tier).  A color becomes eligible once one cold
  /// reconfiguration's worth of droppable value has accumulated.
  std::vector<Cost> thresholds_;
  std::vector<std::pair<Round, std::vector<ColorId>>> delay_classes_;
  bool record_drop_ids_ = false;
  int analysis_m_ = 0;  // 0 = super-epoch analysis disabled
  std::int64_t super_epochs_ = 0;
  std::int64_t super_generation_ = 1;
  std::int64_t updated_this_super_ = 0;
  std::int64_t max_endings_ = 0;
  std::int64_t timestamp_updates_ = 0;
  std::vector<ColorState> state_;
  std::vector<ColorId> eligible_colors_;

  // --- incremental rank index state (built by begin() when enabled) ---
  bool index_enabled_ = false;
  Round now_ = -1;  ///< round of the most recent phase call (-1 = none)
  /// Color -> rank under the static EdfKey tiebreak (drop cost desc,
  /// length asc, delay bound asc, color asc); constant per begin().
  std::vector<std::int32_t> static_rank_;
  /// Deadline calendar: bucket (dd & cal_mask_) holds the eligible colors
  /// with color deadline dd, sorted by static_rank_ (lazily: cal_dirty_
  /// marks buckets whose order a mutation broke).
  std::vector<std::vector<ColorId>> cal_buckets_;
  std::vector<std::uint64_t> cal_nonempty_;  ///< bitmap over buckets
  std::vector<std::uint8_t> cal_dirty_;
  std::size_t cal_mask_ = 0;
  std::vector<std::int32_t> cal_bucket_of_;  ///< color -> bucket, -1 none
  std::vector<std::int32_t> cal_pos_of_;     ///< color -> index in bucket
  /// Intrusive recency list over eligible colors, (timestamp desc, color
  /// asc); lru_ts_ caches each linked color's effective timestamp.
  std::vector<ColorId> lru_prev_;
  std::vector<ColorId> lru_next_;
  std::vector<Round> lru_ts_;
  std::vector<std::uint8_t> lru_linked_;
  ColorId lru_head_ = kBlack;
  /// Colors imported eligible before any phase ran: their effective
  /// timestamp needs the first phase round, so the list link is deferred.
  std::vector<ColorId> dirty_imports_;
  std::vector<ColorId> edf_scratch_;
  std::vector<ColorId> idle_scratch_;
  std::vector<ColorId> lru_scratch_;
  std::int64_t completed_epochs_ = 0;
  std::int64_t active_colors_ = 0;
  std::int64_t eligible_drops_ = 0;
  std::int64_t ineligible_drops_ = 0;
  Cost eligible_drop_weight_ = 0;
  Cost ineligible_drop_weight_ = 0;
  std::vector<JobId> ineligible_drop_ids_;
};

}  // namespace rrs
