// Arrival sources: the engine's pull-based input abstraction.
//
// An ArrivalSource answers two kinds of questions:
//   * static problem metadata, fixed before round 0 — the reconfiguration
//     cost Delta, the color set with its delay bounds D_l and drop costs;
//   * the request sequence, one round at a time: arrivals_in_round(k)
//     yields the round-k request as a span valid until the next pull.
//
// Sources follow a finite/infinite *horizon contract*: horizon() returns
// the number of rounds carrying arrivals, or kInfiniteHorizon for an
// unbounded stream (callers must then bound runs via
// EngineOptions::max_rounds).  Streaming sources synthesize each round on
// demand, so a run's memory footprint is O(pending jobs + colors) no
// matter how long the horizon; MaterializedSource adapts an in-memory
// Instance so all offline machinery keeps working unchanged.
#pragma once

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/job.h"
#include "core/types.h"

namespace rrs {

class CheckpointReader;
class CheckpointWriter;

/// Sentinel horizon of an unbounded stream.
inline constexpr Round kInfiniteHorizon = -1;

/// Abstract pull-based arrival stream plus problem metadata.
///
/// Pull contract: the engine (and materialize()) call arrivals_in_round()
/// with consecutive rounds k = 0, 1, 2, ...; the returned span is valid
/// only until the next pull.  Jobs must carry dense ids in pull order,
/// arrival == k, and per-color constant delay_bound/drop_cost matching the
/// metadata accessors (exactly what InstanceBuilder would produce for the
/// same sequence).
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  // --- static problem metadata ---

  /// Reconfiguration cost Delta (>= 1).
  [[nodiscard]] virtual Cost delta() const = 0;

  /// Number of colors; valid ColorIds are [0, num_colors()).
  [[nodiscard]] virtual ColorId num_colors() const = 0;

  /// Category-specific delay bound D_l of `color`.
  [[nodiscard]] virtual Round delay_bound(ColorId color) const = 0;

  /// Drop cost of one `color` job (1 in the paper's unit-cost setting).
  [[nodiscard]] virtual Cost drop_cost(ColorId color) const = 0;

  /// Execution units a `color` job needs to complete (1 in the paper's
  /// unit-job setting).
  [[nodiscard]] virtual Round length(ColorId color) const {
    RRS_REQUIRE(color >= 0 && color < num_colors(),
                "color " << color << " out of range [0, " << num_colors()
                         << ")");
    return 1;
  }

  /// The full cost model.  The base implementation synthesizes a scalar
  /// model from delta()/drop_cost()/length() lazily; sources with richer
  /// pricing (matrix Delta, instance-backed) override this.
  [[nodiscard]] virtual const CostModel& cost_model() const;

  /// Distinct delay bounds, ascending, with the colors that carry each
  /// (the index EligibilityTracker walks at block boundaries).  The base
  /// implementation derives it lazily from the metadata accessors.
  [[nodiscard]] virtual const std::map<Round, std::vector<ColorId>>&
  colors_by_delay() const;

  // --- horizon contract ---

  /// Number of rounds that may carry arrivals: arrivals_in_round(k) is
  /// empty for k >= horizon().  kInfiniteHorizon for unbounded streams.
  [[nodiscard]] virtual Round horizon() const = 0;

  /// True iff the source ends (horizon() != kInfiniteHorizon).
  [[nodiscard]] bool finite() const { return horizon() != kInfiniteHorizon; }

  // --- the pull interface ---

  /// Jobs arriving in round `k`, synthesized on demand.  Must be called
  /// with consecutive k starting at 0; the span is valid until the next
  /// call.  (MaterializedSource additionally supports random access.)
  [[nodiscard]] virtual std::span<const Job> arrivals_in_round(Round k) = 0;

  /// Fast-forward hint: the first round in [k, limit) that *may* carry
  /// arrivals, or `limit` when none does.  `k` must be the round the next
  /// arrivals_in_round() pull would use, and `limit >= k`.  After a call
  /// returns r, the source must accept a pull at any round in [k, r]
  /// (implementations that scan ahead remember the scanned-and-empty
  /// span).  Returning `k` is always correct — it just means "no skip" —
  /// and is the default, so unaudited sources are never skipped past.
  [[nodiscard]] virtual Round next_event_round(Round k, Round limit) {
    (void)limit;
    return k;
  }

  /// The backing Instance when the whole sequence is in memory, nullptr
  /// for true streams.  Policies needing whole-sequence knowledge (e.g.
  /// offline heuristics) must check this.
  [[nodiscard]] virtual const Instance* materialized() const {
    return nullptr;
  }

  /// Human-readable one-line summary for diagnostics.
  [[nodiscard]] virtual std::string summary() const;

  // --- checkpoint/restore (crash-safe service mode) ---

  /// Serializes the source's stream position (cursors, RNG streams, any
  /// scanned-ahead buffer) into the writer's current section so a freshly
  /// constructed source with the same parameters resumes the identical
  /// job sequence.  Sources without support reject (the default), so an
  /// engine checkpoint over them fails loudly.
  virtual void checkpoint(CheckpointWriter& w) const;

  /// Restores checkpoint() state onto a fresh, unpulled source of the
  /// same type and parameters.
  virtual void restore(CheckpointReader& r);

 private:
  mutable std::map<Round, std::vector<ColorId>> colors_by_delay_;
  mutable bool delay_index_built_ = false;
  mutable CostModel model_;
  mutable bool model_built_ = false;
};

/// Adapter presenting an Instance as an ArrivalSource.  Random access is
/// supported (the instance is already materialized), so the sequential
/// pull contract is not enforced here.
class MaterializedSource final : public ArrivalSource {
 public:
  explicit MaterializedSource(const Instance& instance)
      : instance_(&instance) {}

  [[nodiscard]] Cost delta() const override { return instance_->delta(); }
  [[nodiscard]] ColorId num_colors() const override {
    return instance_->num_colors();
  }
  [[nodiscard]] Round delay_bound(ColorId color) const override {
    return instance_->delay_bound(color);
  }
  [[nodiscard]] Cost drop_cost(ColorId color) const override {
    return instance_->drop_cost(color);
  }
  [[nodiscard]] Round length(ColorId color) const override {
    return instance_->length(color);
  }
  [[nodiscard]] const CostModel& cost_model() const override {
    return instance_->cost_model();
  }
  [[nodiscard]] const std::map<Round, std::vector<ColorId>>& colors_by_delay()
      const override {
    return instance_->colors_by_delay();
  }
  [[nodiscard]] Round horizon() const override {
    return instance_->horizon();
  }
  [[nodiscard]] std::span<const Job> arrivals_in_round(Round k) override {
    return instance_->arrivals_in_round(k);
  }
  [[nodiscard]] Round next_event_round(Round k, Round limit) override {
    const Round next = instance_->next_arrival_round(k);
    return next < 0 ? limit : std::min(next, limit);
  }
  [[nodiscard]] const Instance* materialized() const override {
    return instance_;
  }
  [[nodiscard]] std::string summary() const override {
    return instance_->summary();
  }

  /// A materialized source has no mutable stream state (random access
  /// over an owned-elsewhere Instance), so its checkpoint is a bare type
  /// marker plus the horizon for sanity.
  void checkpoint(CheckpointWriter& w) const override;
  void restore(CheckpointReader& r) override;

 private:
  const Instance* instance_;
};

/// Drains `source` into an Instance: pulls rounds [0, rounds) and rebuilds
/// the sequence through InstanceBuilder (so classification flags, job ids,
/// and horizon semantics match a directly built instance).  `rounds`
/// defaults to the source's own horizon, which must then be finite; an
/// infinite source needs an explicit round count.  The builder's horizon
/// is forced to at least `rounds`, mirroring the one-shot generators.
[[nodiscard]] Instance materialize(ArrivalSource& source,
                                   Round rounds = kInfiniteHorizon);

}  // namespace rrs
