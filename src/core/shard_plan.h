// Color partitioning for sharded streaming execution.
//
// The paper's Distribute reduction (Theorem 2) splits the color set across
// resource groups that are then scheduled independently — a data-parallel
// decomposition: because a job can only run on a resource configured to
// its color, partitioning colors partitions the whole problem, with no
// cross-shard coupling in pending sets, caches, or costs.  A ShardPlan is
// that partition made explicit: K shards, each owning a disjoint set of
// colors and a slice of the resource budget n proportional to the shard's
// expected load.
//
// Plans are pure data and deterministic: make_shard_plan is a function of
// (num_colors, num_shards, num_resources, replication, weights) only, so a
// fixed seed + fixed K reproduce the identical sharded run.  With K = 1
// the plan is the identity (all colors, all resources, in order), which
// run_streaming_sharded relies on for bit-identity with run_streaming.
#pragma once

#include <span>
#include <vector>

#include "core/arrival_source.h"
#include "core/types.h"

namespace rrs {

/// A deterministic partition of colors (and the resource budget) into
/// shards.  Shards are indexed [0, num_shards).
struct ShardPlan {
  int num_shards = 1;
  /// Smallest resource block a shard may receive (the policy's resource
  /// granularity, e.g. 4 for dLRU-EDF); every shard's slice is a positive
  /// multiple of this.
  int resource_unit = 1;
  /// color -> owning shard.
  std::vector<int> shard_of_color;
  /// shard -> its colors, ascending global ColorIds.  A shard's stream
  /// relabels global color c to its index in this list (the identity when
  /// num_shards == 1).
  std::vector<std::vector<ColorId>> shard_colors;
  /// shard -> resources assigned (each >= resource_unit, each a multiple
  /// of resource_unit, summing to the total budget n).
  std::vector<int> shard_resources;

  [[nodiscard]] int total_resources() const;
  [[nodiscard]] ColorId num_colors() const {
    return static_cast<ColorId>(shard_of_color.size());
  }
};

/// Builds a load-balanced plan: colors are assigned greedily (heaviest
/// weight first, ties by lower ColorId) to the least-loaded shard, and the
/// `num_resources` budget is split across shards proportionally to shard
/// weight in blocks of `resource_unit` (largest-remainder rounding, every
/// shard getting at least one block).
///
/// `weights` holds one positive per-color rate (declared, or observed via
/// observe_color_weights); empty means uniform.  Requires
/// 1 <= num_shards <= num_colors and num_shards resource blocks.
[[nodiscard]] ShardPlan make_shard_plan(ColorId num_colors, int num_shards,
                                        int num_resources, int resource_unit,
                                        std::span<const double> weights = {});

/// Observes per-color arrival rates by pulling `sample_rounds` rounds from
/// `probe` and counting jobs per color (plus one, so unseen colors keep a
/// positive weight).  The probe is consumed: pass a fresh source built
/// with the same seed as the one you will actually run.
[[nodiscard]] std::vector<double> observe_color_weights(ArrivalSource& probe,
                                                        Round sample_rounds);

}  // namespace rrs
