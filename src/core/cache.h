// The resource pool viewed as a color cache (Section 3.1 of the paper).
//
// The paper treats the n resources as cache locations and colors as pages;
// the Section 3 algorithms keep each cached color in `replication` locations
// (2 for the online algorithms, which replicate the first half of the cache;
// 1 for Seq-EDF).  CacheAssignment separates the *logical* cached-color set
// (what the policy maintains) from the *physical* per-location colors (what
// costs Delta to change): evicting a color frees its locations without
// recoloring them, and re-inserting a color whose old locations are still
// free costs nothing.
#pragma once

#include <utility>
#include <vector>

#include "core/types.h"

namespace rrs {

/// Mapping of cache locations (resources) to colors, with a logical
/// cached-color set on top.  All mutations happen between begin_phase() and
/// finish_phase(); finish_phase() reports the physical recolorings, each of
/// which costs Delta.
class CacheAssignment {
 public:
  /// `num_resources` locations, each cached color held in `replication`
  /// locations.  Requires num_resources % replication == 0.
  CacheAssignment(int num_resources, int replication);

  [[nodiscard]] int num_resources() const {
    return static_cast<int>(physical_.size());
  }
  [[nodiscard]] int replication() const { return replication_; }

  /// Maximum number of distinct cached colors (= n / replication).
  [[nodiscard]] int max_distinct() const {
    return num_resources() / replication_;
  }

  /// True iff `color` is in the logical cached set.
  [[nodiscard]] bool contains(ColorId color) const;

  /// The logical cached set, in unspecified order.
  [[nodiscard]] const std::vector<ColorId>& cached_colors() const {
    return cached_;
  }

  [[nodiscard]] int num_cached() const {
    return static_cast<int>(cached_.size());
  }
  [[nodiscard]] bool full() const { return num_cached() == max_distinct(); }

  /// Physical color currently configured at `location` (kBlack initially).
  [[nodiscard]] ColorId color_at(int location) const;

  /// Marks the start of a reconfiguration phase (resets the dirty set).
  void begin_phase();

  /// Adds `color` to the cached set, claiming `replication` free locations
  /// (preferring locations already physically colored `color`).
  /// Requires !contains(color) and !full().
  void insert(ColorId color);

  /// Removes `color` from the cached set, freeing its locations without
  /// recoloring them.  Requires contains(color).
  void erase(ColorId color);

  /// Ends the phase: returns (location, new_color) for every location whose
  /// physical color changed since begin_phase().  Each entry is one
  /// reconfiguration costing Delta.
  [[nodiscard]] std::vector<std::pair<int, ColorId>> finish_phase();

  /// Ensures per-color tables cover ColorIds < num_colors.
  void ensure_colors(ColorId num_colors);

 private:
  [[nodiscard]] static std::size_t idx(ColorId c) {
    return static_cast<std::size_t>(c);
  }

  int replication_;
  std::vector<ColorId> physical_;            // location -> color
  std::vector<ColorId> phase_start_;         // snapshot of touched locations
  std::vector<int> dirty_;                   // locations touched this phase
  std::vector<char> dirty_flag_;             // location -> touched?
  std::vector<int> free_locations_;          // stack of unclaimed locations
  std::vector<ColorId> cached_;              // logical set
  std::vector<std::int32_t> cached_pos_;     // color -> index in cached_, -1
  std::vector<std::vector<int>> locations_;  // color -> claimed locations
  bool in_phase_ = false;
};

}  // namespace rrs
