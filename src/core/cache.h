// The resource pool viewed as a color cache (Section 3.1 of the paper).
//
// The paper treats the n resources as cache locations and colors as pages;
// the Section 3 algorithms keep each cached color in `replication` locations
// (2 for the online algorithms, which replicate the first half of the cache;
// 1 for Seq-EDF).  CacheAssignment separates the *logical* cached-color set
// (what the policy maintains) from the *physical* per-location colors (what
// costs Delta to change): evicting a color frees its locations without
// recoloring them, and re-inserting a color whose old locations are still
// free costs nothing.
//
// The logical set is an epoch-stamped color->slot table: membership is one
// stamp comparison, and reset() invalidates every color by bumping the
// epoch — O(1) in the number of colors, however large the color space.
// Claimed locations live in one flat slot-major array (slot s owns the
// `replication` entries starting at s * replication), so the whole logical
// state is three flat arrays with no per-color heap nodes.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.h"

namespace rrs {

class CheckpointReader;
class CheckpointWriter;

/// Mapping of cache locations (resources) to colors, with a logical
/// cached-color set on top.  All mutations happen between begin_phase() and
/// finish_phase(); finish_phase() reports the physical recolorings, each of
/// which costs Delta.
class CacheAssignment {
 public:
  /// `num_resources` locations, each cached color held in `replication`
  /// locations.  Requires num_resources % replication == 0.
  CacheAssignment(int num_resources, int replication);

  [[nodiscard]] int num_resources() const {
    return static_cast<int>(physical_.size());
  }
  [[nodiscard]] int replication() const { return replication_; }

  /// Maximum number of distinct cached colors over the locations currently
  /// in service (= (n - num_down()) / replication; n / replication with no
  /// failures).
  [[nodiscard]] int max_distinct() const {
    return (num_resources() - num_down_) / replication_;
  }

  /// Locations currently failed (capacity churn; see fail_location).
  [[nodiscard]] int num_down() const { return num_down_; }

  /// True iff `location` is currently failed.
  [[nodiscard]] bool location_down(int location) const;

  /// True iff `color` is in the logical cached set.  One stamp compare.
  [[nodiscard]] bool contains(ColorId color) const {
    return color >= 0 && idx(color) < stamp_.size() &&
           stamp_[idx(color)] == epoch_;
  }

  /// The logical cached set, in unspecified order.
  [[nodiscard]] const std::vector<ColorId>& cached_colors() const {
    return cached_;
  }

  [[nodiscard]] int num_cached() const {
    return static_cast<int>(cached_.size());
  }
  [[nodiscard]] bool full() const { return num_cached() == max_distinct(); }

  /// Physical color currently configured at `location` (kBlack initially).
  [[nodiscard]] ColorId color_at(int location) const;

  /// Marks the start of a reconfiguration phase (resets the dirty set).
  void begin_phase();

  /// Adds `color` to the cached set, claiming `replication` free locations
  /// (preferring locations already physically colored `color`).
  /// Requires !contains(color) and !full().
  void insert(ColorId color);

  /// Removes `color` from the cached set, freeing its locations without
  /// recoloring them.  Requires contains(color).
  void erase(ColorId color);

  /// Ends the phase: returns (location, new_color) for every location whose
  /// physical color changed since begin_phase(), sorted by location.  Each
  /// entry is one reconfiguration costing Delta(from -> new_color); the
  /// from-colors are exposed via phase_from_colors().  The span aliases an
  /// internal buffer valid until the next finish_phase().
  [[nodiscard]] std::span<const std::pair<int, ColorId>> finish_phase();

  /// The previous physical occupant of each finish_phase() event's
  /// location, parallel to the span finish_phase() returned (kBlack for a
  /// location that was unconfigured).  Valid until the next finish_phase().
  [[nodiscard]] std::span<const ColorId> phase_from_colors() const {
    return events_from_;
  }

  /// Ensures per-color tables cover ColorIds < num_colors.
  void ensure_colors(ColorId num_colors);

  /// Takes `location` out of service (capacity churn).  If a cached color
  /// occupies it, that color is evicted — its sibling locations are freed
  /// without recoloring, exactly like erase() — and returned; otherwise
  /// returns kBlack.  The location's contents are lost (its physical color
  /// becomes kBlack) and it leaves the free pool until repaired.  The
  /// logical epoch is untouched, so surviving colors keep their membership.
  /// Must be called outside a phase; requires !location_down(location).
  ColorId fail_location(int location);

  /// Returns a failed `location` to service: it rejoins the free pool,
  /// still physically black — a repaired resource comes back blank, so
  /// re-imaging it costs Delta like any other recoloring (reclaiming it is
  /// never free).  Must be called outside a phase; requires
  /// location_down(location).
  void repair_location(int location);

  /// Empties the logical set and restores every location to kBlack, as if
  /// freshly constructed.  Per-color state is invalidated by bumping the
  /// epoch stamp — O(num_resources), not O(num_colors).  Must be called
  /// outside a phase.
  void reset();

  // --- checkpoint/restore (crash-safe service mode) ---

  /// Serializes physical occupancy, down set, the exact free-location
  /// stack (its order decides which locations later inserts claim, so it
  /// is load-bearing for bit-identical resumption), and the logical
  /// cached set slot by slot.
  void checkpoint(CheckpointWriter& w) const;

  /// Restores checkpoint() state into this assignment, which must be
  /// freshly constructed with the same geometry.  Validates that the
  /// free / claimed / down location sets partition [0, n) exactly.
  void restore_checkpoint(CheckpointReader& r);

 private:
  [[nodiscard]] static std::size_t idx(ColorId c) {
    return static_cast<std::size_t>(c);
  }

  void rebuild_free_locations();
  void erase_from_set(ColorId color);  // erase() minus the phase check

  int replication_;
  std::vector<ColorId> physical_;     // location -> color
  std::vector<ColorId> phase_start_;  // snapshot of touched locations
  std::vector<int> dirty_;            // locations touched this phase
  std::vector<char> dirty_flag_;      // location -> touched?
  std::vector<int> free_locations_;   // stack of unclaimed locations
  std::vector<char> down_flag_;       // location -> failed?
  int num_down_ = 0;

  // Logical set: cached_[slot] holds the color occupying slot `slot`, and
  // its claimed locations are locations_[slot * replication_ ...].  A color
  // is a member iff its stamp equals the current epoch; its slot is then
  // slot_of_[color].
  std::vector<ColorId> cached_;
  std::vector<int> locations_;             // slot-major claimed locations
  std::vector<std::uint64_t> stamp_;       // color -> epoch stamp
  std::vector<std::int32_t> slot_of_;      // color -> slot (when stamped)
  std::uint64_t epoch_ = 1;

  struct PhaseEvent {
    int location;
    ColorId to;
    ColorId from;
  };

  std::vector<std::pair<int, ColorId>> events_;  // finish_phase() buffer
  std::vector<ColorId> events_from_;       // parallel previous occupants
  std::vector<PhaseEvent> event_scratch_;  // reused sort buffer
  bool in_phase_ = false;
};

}  // namespace rrs
