// Versioned, length-prefixed, CRC-guarded binary checkpoint framing.
//
// Layout (all integers little-endian, fixed width):
//
//   magic   8 bytes   "RRSCKPT\n"
//   major   u32       layout version; readers reject a mismatch
//   minor   u32       additive version; readers accept any (new fields
//                     live at the tail of their section and are skipped
//                     by close_section())
//   length  u64       payload byte count
//   crc32   u32       CRC-32 (poly 0xEDB88320) over the payload bytes
//   payload length bytes of nested sections
//   trailer 8 bytes   "RRSEND\n\0"
//
// The payload is a sequence of tagged sections, each
// [tag u32][len u64][len bytes]; sections nest.  Writers build the
// payload in memory so lengths are exact; readers bounds-check every
// primitive against the innermost open section and the payload, and
// reject any malformation with InputError — a corrupt or truncated
// checkpoint must never crash or be half-applied.
//
// Version policy: additive fields (appended inside an existing section,
// or a new trailing section) bump kCheckpointMinor; any layout change —
// reordered or resized fields, removed sections — bumps
// kCheckpointMajor and resets minor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rrs {

inline constexpr std::uint32_t kCheckpointMajor = 1;
inline constexpr std::uint32_t kCheckpointMinor = 0;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `size` bytes.
[[nodiscard]] std::uint32_t crc32(const unsigned char* data,
                                  std::size_t size);

/// Accumulates a checkpoint payload in memory, then emits the framed
/// stream in one write so the length and CRC in the header are exact.
class CheckpointWriter {
 public:
  /// Opens a nested section; every begin must be matched by end_section
  /// before finish().
  void begin_section(std::uint32_t tag);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(std::string_view v);

  /// Writes header + payload + trailer to `out` and verifies the stream
  /// survived (throws InputError on short writes).  The writer may not
  /// be reused afterwards.
  void finish(std::ostream& out);

 private:
  std::vector<unsigned char> buf_;
  std::vector<std::size_t> open_;  ///< offsets of pending length fields
};

/// Parses a framed checkpoint from a stream.  The constructor reads and
/// validates the full frame (magic, version, length, CRC, trailer);
/// every accessor bounds-checks against the innermost open section.
/// All malformations throw InputError.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream& in);

  /// Opens the next section, requiring its tag to equal `tag`.
  void open_section(std::uint32_t tag);
  /// Closes the innermost section, skipping any unread remainder (the
  /// additive-minor compatibility path).
  void close_section();

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();

  /// Unread bytes left in the innermost open section (the payload when
  /// none is open).
  [[nodiscard]] std::uint64_t remaining() const;

  [[nodiscard]] std::uint32_t minor_version() const { return minor_; }

 private:
  void need(std::size_t bytes) const;

  std::vector<unsigned char> payload_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> ends_;  ///< stack of section end offsets
  std::uint32_t minor_ = 0;
};

}  // namespace rrs
