// Problem instances for reconfigurable resource scheduling.
//
// An Instance bundles everything the paper's [reconfig | drop | delay |
// batch] notation fixes for one input: the reconfiguration cost Delta, the
// per-color delay bounds D_l, and the request sequence (which jobs arrive in
// which round).  Instances are immutable once built; use InstanceBuilder.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/job.h"
#include "core/types.h"

namespace rrs {

class InstanceBuilder;

/// Immutable problem instance.
///
/// Jobs are stored sorted by arrival round, and `Job::id` is the job's index
/// in `jobs()`.  The simulation horizon is the first round by which every
/// job has either been executed or dropped, so "drop cost" is exactly the
/// number of jobs a schedule never executes.
class Instance {
 public:
  /// An empty instance (no colors, no jobs, horizon 0).  Populated
  /// instances come from InstanceBuilder.
  Instance() = default;

  /// Reconfiguration cost Delta (a positive integer, as in the paper).
  [[nodiscard]] Cost delta() const { return delta_; }

  /// Number of colors; valid ColorIds are [0, num_colors()).
  [[nodiscard]] ColorId num_colors() const {
    return static_cast<ColorId>(delay_bounds_.size());
  }

  /// Category-specific delay bound D_l of `color`.
  [[nodiscard]] Round delay_bound(ColorId color) const;

  /// Drop cost of one `color` job (1 unless the weighted extension is
  /// used).
  [[nodiscard]] Cost drop_cost(ColorId color) const;

  /// Execution units a `color` job needs to complete (1 unless the length
  /// extension is used).
  [[nodiscard]] Round length(ColorId color) const;

  /// The full cost model: drop weights, lengths, and Delta(from -> to).
  /// delta()/drop_cost()/length() are shorthands into it.
  [[nodiscard]] const CostModel& cost_model() const { return model_; }

  /// Total drop cost of all jobs of `color`.
  [[nodiscard]] Cost weight_of_color(ColorId color) const;

  /// Total drop cost across all jobs (== jobs().size() for unit costs).
  [[nodiscard]] Cost total_weight() const { return total_weight_; }

  /// True iff every color has unit drop cost (the paper's setting).
  [[nodiscard]] bool unit_drop_costs() const { return unit_drop_costs_; }

  /// True iff every color has unit length (the paper's setting).
  [[nodiscard]] bool unit_lengths() const { return unit_lengths_; }

  /// All jobs, sorted by arrival round (ties in input order).
  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }

  /// Number of rounds to simulate: max job deadline (or an explicit larger
  /// value requested at build time).  Round indices run [0, horizon()).
  [[nodiscard]] Round horizon() const { return horizon_; }

  /// Jobs arriving in round `k` (the round-k request), as a span into
  /// jobs().  Empty requests yield an empty span.
  [[nodiscard]] std::span<const Job> arrivals_in_round(Round k) const;

  /// First round >= `k` with at least one arrival, or -1 when the rest of
  /// the sequence is arrival-free.  O(log #nonempty-rounds).
  [[nodiscard]] Round next_arrival_round(Round k) const;

  /// Number of jobs of `color` in the whole sequence.
  [[nodiscard]] std::int64_t jobs_of_color(ColorId color) const;

  /// Distinct delay bounds, ascending, with the colors that carry each.
  [[nodiscard]] const std::map<Round, std::vector<ColorId>>& colors_by_delay()
      const {
    return colors_by_delay_;
  }

  /// True iff every color-l job arrives at an integral multiple of D_l
  /// (the `[... | D_l]` batch field).
  [[nodiscard]] bool is_batched() const { return batched_; }

  /// True iff is_batched() and at most D_l color-l jobs arrive at each
  /// multiple of D_l (the "rate-limited" special case of Section 3).
  [[nodiscard]] bool is_rate_limited() const { return rate_limited_; }

  /// True iff every delay bound is a power of two.
  [[nodiscard]] bool all_delays_pow2() const { return all_pow2_; }

  /// Human-readable one-line summary ("L colors, J jobs, T rounds, ...").
  [[nodiscard]] std::string summary() const;

 private:
  friend class InstanceBuilder;

  Cost delta_ = 1;
  Round horizon_ = 0;
  Cost total_weight_ = 0;
  bool unit_drop_costs_ = true;
  bool unit_lengths_ = true;
  CostModel model_;
  std::vector<Round> delay_bounds_;
  std::vector<Cost> drop_costs_;
  std::vector<Round> lengths_;
  std::vector<Job> jobs_;
  std::vector<std::int64_t> jobs_per_color_;
  std::vector<Cost> weight_per_color_;
  std::map<Round, std::vector<ColorId>> colors_by_delay_;
  // Index: arrival rounds (ascending, unique) and the offset into jobs_ at
  // which each round's request starts; parallel arrays.
  std::vector<Round> request_rounds_;
  std::vector<std::size_t> request_offsets_;  // size = request_rounds_+1
  bool batched_ = true;
  bool rate_limited_ = true;
  bool all_pow2_ = true;
};

/// Mutable builder for Instance.
class InstanceBuilder {
 public:
  /// Sets the reconfiguration cost Delta (default 1).  Must be >= 1.
  InstanceBuilder& delta(Cost d);

  /// Adds a color with delay bound `d` (>= 1), per-job drop cost
  /// `drop_cost` (>= 1; 1 is the paper's unit-cost setting), and per-job
  /// execution length `length` (>= 1; 1 is the paper's unit-job setting);
  /// returns its ColorId.
  ColorId add_color(Round d, Cost drop_cost = 1, Round length = 1);

  /// Sets the cold re-image price Delta(kBlack -> to) of an already-added
  /// color, promoting the instance's cost model to the vector tier (unset
  /// colors default to Delta).
  InstanceBuilder& reconfig_cost(ColorId to, Cost cost);

  /// Sets Delta(from -> to) between two already-added colors, promoting
  /// the cost model to the matrix tier (unset entries default to the cold
  /// cost of their target).  `from` == kBlack sets the cold column.
  InstanceBuilder& transition_cost(ColorId from, ColorId to, Cost cost);

  /// Adds `count` unit jobs of `color` arriving in round `arrival`.
  InstanceBuilder& add_jobs(ColorId color, Round arrival,
                            std::int64_t count = 1);

  /// Forces horizon() to be at least `h` (it is always at least the max
  /// job deadline).
  InstanceBuilder& min_horizon(Round h);

  /// Validates and produces the Instance.  The builder may not be reused.
  [[nodiscard]] Instance build();

 private:
  struct PendingArrival {
    ColorId color;
    Round arrival;
    std::int64_t count;
  };
  struct PendingTransition {
    ColorId from;  // kBlack = cold column
    ColorId to;
    Cost cost;
  };

  Cost delta_ = 1;
  Round min_horizon_ = 0;
  std::vector<Round> delay_bounds_;
  std::vector<Cost> drop_costs_;
  std::vector<Round> lengths_;
  std::vector<PendingTransition> transitions_;
  std::vector<PendingArrival> arrivals_;
  bool built_ = false;
};

}  // namespace rrs
