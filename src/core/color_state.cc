#include "core/color_state.h"

#include <algorithm>
#include <bit>

#include "core/checkpoint.h"
#include "util/bits.h"
#include "util/check.h"

namespace rrs {

void EligibilityTracker::begin(const ArrivalSource& source) {
  const auto num_colors = static_cast<std::size_t>(source.num_colors());
  state_.assign(num_colors, {});
  delta_ = source.delta();
  const CostModel& model = source.cost_model();
  delay_bounds_.resize(num_colors);
  drop_costs_.resize(num_colors);
  lengths_.resize(num_colors);
  thresholds_.resize(num_colors);
  for (ColorId c = 0; c < source.num_colors(); ++c) {
    delay_bounds_[idx(c)] = source.delay_bound(c);
    drop_costs_[idx(c)] = source.drop_cost(c);
    lengths_[idx(c)] = model.length(c);
    // The eligibility threshold is the price of bringing the color in cold
    // (identical to Delta under the scalar tier, so this stays the paper's
    // counter-wrapping rule there).
    thresholds_[idx(c)] = model.cold_cost(c);
  }
  delay_classes_.assign(source.colors_by_delay().begin(),
                        source.colors_by_delay().end());
  eligible_colors_.clear();
  super_epochs_ = 0;
  super_generation_ = 1;
  updated_this_super_ = 0;
  max_endings_ = 0;
  timestamp_updates_ = 0;
  completed_epochs_ = 0;
  active_colors_ = 0;
  eligible_drops_ = 0;
  ineligible_drops_ = 0;
  eligible_drop_weight_ = 0;
  ineligible_drop_weight_ = 0;
  ineligible_drop_ids_.clear();
  if (index_enabled_) build_rank_index();
}

void EligibilityTracker::drop_phase(Round k,
                                    const PendingJobs::DropResult& dropped,
                                    const CacheAssignment& cache) {
  if (index_enabled_) {
    now_ = k;
    if (!dirty_imports_.empty()) flush_dirty_imports(k);
  }
  // Classify drops with the pre-reset eligibility status: the algorithm
  // drops jobs first, then flips eligibility, so boundary drops of a
  // still-eligible color count as eligible drops (Section 3.2).
  for (const auto& [color, count] : dropped.by_color) {
    if (state_[idx(color)].eligible) {
      eligible_drops_ += count;
      eligible_drop_weight_ += count * drop_costs_[idx(color)];
    } else {
      ineligible_drops_ += count;
      ineligible_drop_weight_ += count * drop_costs_[idx(color)];
    }
  }
  if (record_drop_ids_) {
    for (std::size_t i = 0; i < dropped.job_ids.size(); ++i) {
      const ColorId color = dropped.job_colors[i];
      if (!state_[idx(color)].eligible) {
        ineligible_drop_ids_.push_back(dropped.job_ids[i]);
      }
    }
  }
  // Epoch ends: every eligible, uncached color at a multiple of its delay
  // bound becomes ineligible with cnt = 0.
  for (const auto& [delay, colors] : delay_classes_) {
    if (k % delay != 0) continue;
    for (const ColorId color : colors) {
      ColorState& s = state_[idx(color)];
      if (s.eligible && !cache.contains(color)) {
        make_ineligible(color);
        s.cnt = 0;
        ++completed_epochs_;
        if (analysis_m_ > 0) note_epoch_end(color);
      }
    }
  }
}

void EligibilityTracker::arrival_phase(Round k,
                                       std::span<const Job> arrivals) {
  if (index_enabled_) {
    now_ = k;
    if (!dirty_imports_.empty()) flush_dirty_imports(k);
  }
  // Advance color deadlines at block boundaries (requests exist — possibly
  // empty — at every multiple of D_l).  With super-epoch analysis on,
  // block boundaries are also where timestamps become visible, so detect
  // timestamp update events here.
  for (const auto& [delay, colors] : delay_classes_) {
    if (k % delay != 0) continue;
    for (const ColorId color : colors) {
      ColorState& s = state_[idx(color)];
      if (index_enabled_ && s.eligible) {
        // An eligible color changes calendar bucket at its own block
        // boundary, and its effective timestamp may surface the block's
        // wraps here.
        cal_remove(color);
        s.dd = k + delay;
        cal_insert(color);
        lru_refresh(color, k);
      } else {
        s.dd = k + delay;
      }
      if (analysis_m_ > 0) {
        const Round now_ts = timestamp(color, k);
        if (now_ts > s.eff_ts) {
          s.eff_ts = now_ts;
          note_timestamp_update(color);
        }
      }
    }
  }
  // Count this round's arrivals per color and fire wrap events.
  for (std::size_t i = 0; i < arrivals.size();) {
    const ColorId color = arrivals[i].color;
    std::size_t j = i;
    while (j < arrivals.size() && arrivals[j].color == color) ++j;
    const auto count = static_cast<Cost>(j - i);
    i = j;

    ColorState& s = state_[idx(color)];
    if (!s.seen_job) {
      s.seen_job = true;
      ++active_colors_;
    }
    s.cnt += count * drop_costs_[idx(color)];
    const Cost threshold = thresholds_[idx(color)];
    if (s.cnt >= threshold) {
      s.cnt %= threshold;  // counter wrapping event
      s.prev_wrap = s.last_wrap;
      s.last_wrap = k;
      if (!s.eligible) {
        make_eligible(color);
      } else if (index_enabled_) {
        // A second wrap within one block surfaces the first wrap as the
        // new effective timestamp.
        lru_refresh(color, k);
      }
    }
  }
}

Round EligibilityTracker::timestamp(ColorId color, Round now) const {
  const ColorState& s = state_[idx(color)];
  const Round block_start = floor_multiple(now, delay_bounds_[idx(color)]);
  // Wraps happen only at multiples of D_l, so the latest wrap strictly
  // before the current block start is last_wrap unless last_wrap is the
  // current boundary itself, in which case it is prev_wrap.
  const Round wrap = s.last_wrap < block_start ? s.last_wrap : s.prev_wrap;
  return wrap < 0 ? 0 : wrap;
}

void EligibilityTracker::enable_super_epoch_analysis(int m) {
  RRS_REQUIRE(m >= 1, "super-epoch analysis needs m >= 1");
  analysis_m_ = m;
}

void EligibilityTracker::note_timestamp_update(ColorId color) {
  ++timestamp_updates_;
  ColorState& s = state_[idx(color)];
  if (s.updated_gen == super_generation_) return;  // already counted
  s.updated_gen = super_generation_;
  ++updated_this_super_;
  if (updated_this_super_ >= 2 * analysis_m_) {
    // Super-epoch ends the moment 2m distinct colors have updated.
    ++super_epochs_;
    ++super_generation_;
    updated_this_super_ = 0;
  }
}

void EligibilityTracker::note_epoch_end(ColorId color) {
  ColorState& s = state_[idx(color)];
  if (s.endings_gen != super_generation_) {
    s.endings_gen = super_generation_;
    s.endings_in_super_ = 0;
  }
  ++s.endings_in_super_;
  max_endings_ = std::max(max_endings_, s.endings_in_super_);
}

PolicyColorState EligibilityTracker::export_color(ColorId color) const {
  const ColorState& s = state_[idx(color)];
  return {.cnt = s.cnt,
          .dd = s.dd,
          .last_wrap = s.last_wrap,
          .prev_wrap = s.prev_wrap,
          .eligible = s.eligible,
          .seen_job = s.seen_job};
}

void EligibilityTracker::import_color(ColorId color,
                                      const PolicyColorState& in) {
  RRS_CHECK(idx(color) < state_.size());
  ColorState& s = state_[idx(color)];
  RRS_CHECK_MSG(!s.eligible && s.cnt == 0 && !s.seen_job,
                "import_color targets freshly begun trackers only (color "
                    << color << ")");
  s.cnt = in.cnt;
  s.dd = in.dd;
  s.last_wrap = in.last_wrap;
  s.prev_wrap = in.prev_wrap;
  if (in.seen_job) {
    s.seen_job = true;
    ++active_colors_;
  }
  if (in.eligible) make_eligible(color);
}

void EligibilityTracker::make_eligible(ColorId color) {
  ColorState& s = state_[idx(color)];
  RRS_CHECK(!s.eligible && s.eligible_pos < 0);
  s.eligible = true;
  s.eligible_pos = static_cast<std::int32_t>(eligible_colors_.size());
  eligible_colors_.push_back(color);
  if (index_enabled_) {
    cal_insert(color);
    if (now_ >= 0) {
      lru_insert(color, timestamp(color, now_));
    } else {
      // Imported before any phase: the effective timestamp needs a round,
      // so defer the list link to the first phase call.
      dirty_imports_.push_back(color);
    }
  }
}

void EligibilityTracker::make_ineligible(ColorId color) {
  ColorState& s = state_[idx(color)];
  RRS_CHECK(s.eligible && s.eligible_pos >= 0);
  const auto pos = static_cast<std::size_t>(s.eligible_pos);
  const ColorId moved = eligible_colors_.back();
  eligible_colors_[pos] = moved;
  state_[idx(moved)].eligible_pos = static_cast<std::int32_t>(pos);
  eligible_colors_.pop_back();
  s.eligible = false;
  s.eligible_pos = -1;
  if (index_enabled_) {
    cal_remove(color);
    if (lru_linked_[idx(color)] != 0) lru_remove(color);
  }
}

void EligibilityTracker::checkpoint(CheckpointWriter& w) const {
  w.i64(now_);
  w.i64(super_epochs_);
  w.i64(super_generation_);
  w.i64(updated_this_super_);
  w.i64(max_endings_);
  w.i64(timestamp_updates_);
  w.i64(completed_epochs_);
  w.i64(active_colors_);
  w.i64(eligible_drops_);
  w.i64(ineligible_drops_);
  w.i64(eligible_drop_weight_);
  w.i64(ineligible_drop_weight_);
  w.i64(static_cast<std::int64_t>(state_.size()));
  for (const ColorState& s : state_) {
    w.i64(s.cnt);
    w.i64(s.dd);
    w.i64(s.last_wrap);
    w.i64(s.prev_wrap);
    w.boolean(s.eligible);
    w.boolean(s.seen_job);
    w.i64(s.eff_ts);
    w.i64(s.updated_gen);
    w.i64(s.endings_gen);
    w.i64(s.endings_in_super_);
  }
  w.u64(eligible_colors_.size());
  for (const ColorId c : eligible_colors_) w.i64(c);
  w.u64(ineligible_drop_ids_.size());
  for (const JobId id : ineligible_drop_ids_) w.i64(id);
}

void EligibilityTracker::restore_checkpoint(CheckpointReader& r) {
  RRS_CHECK_MSG(eligible_colors_.empty() && active_colors_ == 0,
                "checkpoint restore into a non-fresh tracker");
  // now_ first: make_eligible() keys its LRU-link-vs-defer decision on it,
  // and timestamp() evaluation during the rebuild must use the checkpoint
  // round's block.
  now_ = r.i64();
  const std::int64_t super_epochs = r.i64();
  const std::int64_t super_generation = r.i64();
  const std::int64_t updated_this_super = r.i64();
  const std::int64_t max_endings = r.i64();
  const std::int64_t timestamp_updates = r.i64();
  const std::int64_t completed_epochs = r.i64();
  const std::int64_t active_colors = r.i64();
  const std::int64_t eligible_drops = r.i64();
  const std::int64_t ineligible_drops = r.i64();
  const Cost eligible_drop_weight = r.i64();
  const Cost ineligible_drop_weight = r.i64();
  const std::int64_t colors = r.i64();
  RRS_REQUIRE(colors == static_cast<std::int64_t>(state_.size()),
              "checkpoint tracker color count " << colors << " != "
                                                << state_.size());
  std::vector<char> flagged(state_.size(), 0);
  for (std::size_t c = 0; c < state_.size(); ++c) {
    ColorState& s = state_[c];
    s.cnt = r.i64();
    s.dd = r.i64();
    s.last_wrap = r.i64();
    s.prev_wrap = r.i64();
    flagged[c] = r.boolean() ? 1 : 0;
    s.seen_job = r.boolean();
    s.eff_ts = r.i64();
    s.updated_gen = r.i64();
    s.endings_gen = r.i64();
    s.endings_in_super_ = r.i64();
    RRS_REQUIRE(s.cnt >= 0 && s.prev_wrap <= s.last_wrap,
                "checkpoint tracker color " << c << " malformed");
  }
  // Replay eligibility in the saved order so eligible_pos comes back
  // identical; the rank index structures rebuild through their total
  // orders (bucket sort ranks, LRU (timestamp desc, color asc)), so the
  // queries they answer match the uninterrupted run bit for bit.
  const std::uint64_t eligible = r.u64();
  RRS_REQUIRE(eligible <= state_.size(),
              "checkpoint tracker eligible count " << eligible);
  for (std::uint64_t i = 0; i < eligible; ++i) {
    const std::int64_t c = r.i64();
    RRS_REQUIRE(c >= 0 && c < colors && flagged[static_cast<std::size_t>(c)],
                "checkpoint tracker eligible color " << c);
    flagged[static_cast<std::size_t>(c)] = 0;  // reject duplicates
    make_eligible(static_cast<ColorId>(c));
  }
  RRS_REQUIRE(std::all_of(flagged.begin(), flagged.end(),
                          [](char f) { return f == 0; }),
              "checkpoint tracker: eligible flags disagree with the "
              "eligible list");
  const std::uint64_t drop_ids = r.u64();
  ineligible_drop_ids_.clear();
  for (std::uint64_t i = 0; i < drop_ids; ++i) {
    ineligible_drop_ids_.push_back(r.i64());
  }
  // Counters last: the make_eligible replay must not double-count.
  super_epochs_ = super_epochs;
  super_generation_ = super_generation;
  updated_this_super_ = updated_this_super;
  max_endings_ = max_endings;
  timestamp_updates_ = timestamp_updates;
  completed_epochs_ = completed_epochs;
  active_colors_ = active_colors;
  eligible_drops_ = eligible_drops;
  ineligible_drops_ = ineligible_drops;
  eligible_drop_weight_ = eligible_drop_weight;
  ineligible_drop_weight_ = ineligible_drop_weight;
}

// --- incremental rank index ---

void EligibilityTracker::build_rank_index() {
  const std::size_t num_colors = state_.size();
  // Static EdfKey tiebreak: the order of colors with equal idleness and
  // equal deadline.  Constant per begin(), so one sort here replaces the
  // tail comparisons of every per-round sort.
  std::vector<ColorId> order(num_colors);
  for (std::size_t i = 0; i < num_colors; ++i) {
    order[i] = static_cast<ColorId>(i);
  }
  std::sort(order.begin(), order.end(), [this](ColorId a, ColorId b) {
    if (drop_costs_[idx(a)] != drop_costs_[idx(b)])
      return drop_costs_[idx(a)] > drop_costs_[idx(b)];  // heavier first
    if (lengths_[idx(a)] != lengths_[idx(b)])
      return lengths_[idx(a)] < lengths_[idx(b)];  // shorter first
    if (delay_bounds_[idx(a)] != delay_bounds_[idx(b)])
      return delay_bounds_[idx(a)] < delay_bounds_[idx(b)];
    return a < b;
  });
  static_rank_.resize(num_colors);
  for (std::size_t i = 0; i < num_colors; ++i) {
    static_rank_[idx(order[i])] = static_cast<std::int32_t>(i);
  }
  Round max_delay = 1;
  for (const auto& [delay, colors] : delay_classes_) {
    max_delay = std::max(max_delay, delay);
  }
  // At query time every eligible color deadline lies in (now, now+max D],
  // a window of max D distinct rounds, so ceil_pow2(max D) buckets keyed
  // by (dd & mask) are collision-free across distinct deadlines.
  const auto buckets = static_cast<std::size_t>(ceil_pow2(max_delay));
  cal_buckets_.assign(buckets, {});
  cal_mask_ = buckets - 1;
  cal_nonempty_.assign((buckets + 63) / 64, 0);
  cal_dirty_.assign(buckets, 0);
  cal_bucket_of_.assign(num_colors, -1);
  cal_pos_of_.assign(num_colors, -1);
  lru_prev_.assign(num_colors, kBlack);
  lru_next_.assign(num_colors, kBlack);
  lru_ts_.assign(num_colors, 0);
  lru_linked_.assign(num_colors, 0);
  lru_head_ = kBlack;
  dirty_imports_.clear();
  now_ = -1;
}

void EligibilityTracker::cal_insert(ColorId color) {
  const auto b =
      static_cast<std::size_t>(state_[idx(color)].dd) & cal_mask_;
  std::vector<ColorId>& bucket = cal_buckets_[b];
  // Appending a color of worse static rank keeps the bucket sorted; any
  // other append defers a re-sort to the next scan.
  if (!bucket.empty() &&
      static_rank_[idx(bucket.back())] > static_rank_[idx(color)]) {
    cal_dirty_[b] = 1;
  }
  cal_bucket_of_[idx(color)] = static_cast<std::int32_t>(b);
  cal_pos_of_[idx(color)] = static_cast<std::int32_t>(bucket.size());
  bucket.push_back(color);
  cal_nonempty_[b / 64] |= std::uint64_t{1} << (b % 64);
}

void EligibilityTracker::cal_remove(ColorId color) {
  const auto b = static_cast<std::size_t>(cal_bucket_of_[idx(color)]);
  const auto pos = static_cast<std::size_t>(cal_pos_of_[idx(color)]);
  std::vector<ColorId>& bucket = cal_buckets_[b];
  RRS_CHECK(pos < bucket.size() && bucket[pos] == color);
  const ColorId moved = bucket.back();
  bucket.pop_back();
  if (moved != color) {
    bucket[pos] = moved;
    cal_pos_of_[idx(moved)] = static_cast<std::int32_t>(pos);
    cal_dirty_[b] = 1;  // swap-remove broke the sorted order
  }
  cal_bucket_of_[idx(color)] = -1;
  cal_pos_of_[idx(color)] = -1;
  if (bucket.empty()) {
    cal_nonempty_[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    cal_dirty_[b] = 0;
  }
}

void EligibilityTracker::scan_calendar(std::size_t lo, std::size_t hi,
                                       const PendingJobs& pending) {
  for (std::size_t w = lo / 64; w * 64 < hi; ++w) {
    std::uint64_t bits = cal_nonempty_[w];
    if (w == lo / 64) bits &= ~std::uint64_t{0} << (lo % 64);
    if (hi - w * 64 < 64) bits &= (std::uint64_t{1} << (hi - w * 64)) - 1;
    while (bits != 0) {
      const std::size_t b =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      std::vector<ColorId>& bucket = cal_buckets_[b];
      if (cal_dirty_[b] != 0) {
        std::sort(bucket.begin(), bucket.end(),
                  [this](ColorId a, ColorId c) {
                    return static_rank_[idx(a)] < static_rank_[idx(c)];
                  });
        for (std::size_t i = 0; i < bucket.size(); ++i) {
          cal_pos_of_[idx(bucket[i])] = static_cast<std::int32_t>(i);
        }
        cal_dirty_[b] = 0;
      }
      for (const ColorId c : bucket) {
        RRS_CHECK_MSG(state_[idx(c)].dd > now_,
                      "stale deadline in rank calendar (color " << c << ")");
        if (pending.idle(c)) {
          idle_scratch_.push_back(c);
        } else {
          edf_scratch_.push_back(c);
        }
      }
    }
  }
}

const std::vector<ColorId>& EligibilityTracker::edf_order(
    const PendingJobs& pending) {
  RRS_CHECK_MSG(index_enabled_ && now_ >= 0,
                "edf_order needs enable_rank_index() before begin() and a "
                "phase call before the first query");
  edf_scratch_.clear();
  idle_scratch_.clear();
  // Walk buckets in deadline-ascending order: the window (now, now+ring]
  // maps to bucket indices starting at (now+1) & mask, wrapping once.
  const std::size_t start = static_cast<std::size_t>(now_ + 1) & cal_mask_;
  scan_calendar(start, cal_buckets_.size(), pending);
  scan_calendar(0, start, pending);
  edf_scratch_.insert(edf_scratch_.end(), idle_scratch_.begin(),
                      idle_scratch_.end());
  return edf_scratch_;
}

void EligibilityTracker::lru_insert(ColorId color, Round ts) {
  lru_ts_[idx(color)] = ts;
  ColorId prev = kBlack;
  ColorId cur = lru_head_;
  while (cur != kBlack &&
         (lru_ts_[idx(cur)] > ts ||
          (lru_ts_[idx(cur)] == ts && cur < color))) {
    prev = cur;
    cur = lru_next_[idx(cur)];
  }
  lru_prev_[idx(color)] = prev;
  lru_next_[idx(color)] = cur;
  if (prev == kBlack) {
    lru_head_ = color;
  } else {
    lru_next_[idx(prev)] = color;
  }
  if (cur != kBlack) lru_prev_[idx(cur)] = color;
  lru_linked_[idx(color)] = 1;
}

void EligibilityTracker::lru_remove(ColorId color) {
  RRS_CHECK(lru_linked_[idx(color)] != 0);
  const ColorId prev = lru_prev_[idx(color)];
  const ColorId next = lru_next_[idx(color)];
  if (prev == kBlack) {
    lru_head_ = next;
  } else {
    lru_next_[idx(prev)] = next;
  }
  if (next != kBlack) lru_prev_[idx(next)] = prev;
  lru_prev_[idx(color)] = kBlack;
  lru_next_[idx(color)] = kBlack;
  lru_linked_[idx(color)] = 0;
}

void EligibilityTracker::lru_refresh(ColorId color, Round k) {
  const Round ts = timestamp(color, k);
  if (ts == lru_ts_[idx(color)]) return;
  lru_remove(color);
  lru_insert(color, ts);
}

void EligibilityTracker::flush_dirty_imports(Round k) {
  for (const ColorId color : dirty_imports_) {
    // A color can have flipped ineligible (or been re-linked) since the
    // import; only link colors still waiting for a timestamp.
    if (state_[idx(color)].eligible && lru_linked_[idx(color)] == 0) {
      lru_insert(color, timestamp(color, k));
    }
  }
  dirty_imports_.clear();
}

const std::vector<ColorId>& EligibilityTracker::lru_order(
    std::size_t max_count) {
  RRS_CHECK_MSG(index_enabled_ && now_ >= 0,
                "lru_order needs enable_rank_index() before begin() and a "
                "phase call before the first query");
  RRS_CHECK(dirty_imports_.empty());
  lru_scratch_.clear();
  for (ColorId c = lru_head_;
       c != kBlack && lru_scratch_.size() < max_count;
       c = lru_next_[idx(c)]) {
    lru_scratch_.push_back(c);
  }
  return lru_scratch_;
}

}  // namespace rrs
