#include "core/color_state.h"

#include <algorithm>

#include "util/bits.h"
#include "util/check.h"

namespace rrs {

void EligibilityTracker::begin(const ArrivalSource& source) {
  const auto num_colors = static_cast<std::size_t>(source.num_colors());
  state_.assign(num_colors, {});
  delta_ = source.delta();
  const CostModel& model = source.cost_model();
  delay_bounds_.resize(num_colors);
  drop_costs_.resize(num_colors);
  lengths_.resize(num_colors);
  thresholds_.resize(num_colors);
  for (ColorId c = 0; c < source.num_colors(); ++c) {
    delay_bounds_[idx(c)] = source.delay_bound(c);
    drop_costs_[idx(c)] = source.drop_cost(c);
    lengths_[idx(c)] = model.length(c);
    // The eligibility threshold is the price of bringing the color in cold
    // (identical to Delta under the scalar tier, so this stays the paper's
    // counter-wrapping rule there).
    thresholds_[idx(c)] = model.cold_cost(c);
  }
  delay_classes_.assign(source.colors_by_delay().begin(),
                        source.colors_by_delay().end());
  eligible_colors_.clear();
  super_epochs_ = 0;
  super_generation_ = 1;
  updated_this_super_ = 0;
  max_endings_ = 0;
  timestamp_updates_ = 0;
  completed_epochs_ = 0;
  active_colors_ = 0;
  eligible_drops_ = 0;
  ineligible_drops_ = 0;
  eligible_drop_weight_ = 0;
  ineligible_drop_weight_ = 0;
  ineligible_drop_ids_.clear();
}

void EligibilityTracker::drop_phase(Round k,
                                    const PendingJobs::DropResult& dropped,
                                    const CacheAssignment& cache) {
  // Classify drops with the pre-reset eligibility status: the algorithm
  // drops jobs first, then flips eligibility, so boundary drops of a
  // still-eligible color count as eligible drops (Section 3.2).
  for (const auto& [color, count] : dropped.by_color) {
    if (state_[idx(color)].eligible) {
      eligible_drops_ += count;
      eligible_drop_weight_ += count * drop_costs_[idx(color)];
    } else {
      ineligible_drops_ += count;
      ineligible_drop_weight_ += count * drop_costs_[idx(color)];
    }
  }
  if (record_drop_ids_) {
    for (std::size_t i = 0; i < dropped.job_ids.size(); ++i) {
      const ColorId color = dropped.job_colors[i];
      if (!state_[idx(color)].eligible) {
        ineligible_drop_ids_.push_back(dropped.job_ids[i]);
      }
    }
  }
  // Epoch ends: every eligible, uncached color at a multiple of its delay
  // bound becomes ineligible with cnt = 0.
  for (const auto& [delay, colors] : delay_classes_) {
    if (k % delay != 0) continue;
    for (const ColorId color : colors) {
      ColorState& s = state_[idx(color)];
      if (s.eligible && !cache.contains(color)) {
        make_ineligible(color);
        s.cnt = 0;
        ++completed_epochs_;
        if (analysis_m_ > 0) note_epoch_end(color);
      }
    }
  }
}

void EligibilityTracker::arrival_phase(Round k,
                                       std::span<const Job> arrivals) {
  // Advance color deadlines at block boundaries (requests exist — possibly
  // empty — at every multiple of D_l).  With super-epoch analysis on,
  // block boundaries are also where timestamps become visible, so detect
  // timestamp update events here.
  for (const auto& [delay, colors] : delay_classes_) {
    if (k % delay != 0) continue;
    for (const ColorId color : colors) {
      ColorState& s = state_[idx(color)];
      s.dd = k + delay;
      if (analysis_m_ > 0) {
        const Round now_ts = timestamp(color, k);
        if (now_ts > s.eff_ts) {
          s.eff_ts = now_ts;
          note_timestamp_update(color);
        }
      }
    }
  }
  // Count this round's arrivals per color and fire wrap events.
  for (std::size_t i = 0; i < arrivals.size();) {
    const ColorId color = arrivals[i].color;
    std::size_t j = i;
    while (j < arrivals.size() && arrivals[j].color == color) ++j;
    const auto count = static_cast<Cost>(j - i);
    i = j;

    ColorState& s = state_[idx(color)];
    if (!s.seen_job) {
      s.seen_job = true;
      ++active_colors_;
    }
    s.cnt += count * drop_costs_[idx(color)];
    const Cost threshold = thresholds_[idx(color)];
    if (s.cnt >= threshold) {
      s.cnt %= threshold;  // counter wrapping event
      s.prev_wrap = s.last_wrap;
      s.last_wrap = k;
      if (!s.eligible) make_eligible(color);
    }
  }
}

Round EligibilityTracker::timestamp(ColorId color, Round now) const {
  const ColorState& s = state_[idx(color)];
  const Round block_start = floor_multiple(now, delay_bounds_[idx(color)]);
  // Wraps happen only at multiples of D_l, so the latest wrap strictly
  // before the current block start is last_wrap unless last_wrap is the
  // current boundary itself, in which case it is prev_wrap.
  const Round wrap = s.last_wrap < block_start ? s.last_wrap : s.prev_wrap;
  return wrap < 0 ? 0 : wrap;
}

void EligibilityTracker::enable_super_epoch_analysis(int m) {
  RRS_REQUIRE(m >= 1, "super-epoch analysis needs m >= 1");
  analysis_m_ = m;
}

void EligibilityTracker::note_timestamp_update(ColorId color) {
  ++timestamp_updates_;
  ColorState& s = state_[idx(color)];
  if (s.updated_gen == super_generation_) return;  // already counted
  s.updated_gen = super_generation_;
  ++updated_this_super_;
  if (updated_this_super_ >= 2 * analysis_m_) {
    // Super-epoch ends the moment 2m distinct colors have updated.
    ++super_epochs_;
    ++super_generation_;
    updated_this_super_ = 0;
  }
}

void EligibilityTracker::note_epoch_end(ColorId color) {
  ColorState& s = state_[idx(color)];
  if (s.endings_gen != super_generation_) {
    s.endings_gen = super_generation_;
    s.endings_in_super_ = 0;
  }
  ++s.endings_in_super_;
  max_endings_ = std::max(max_endings_, s.endings_in_super_);
}

PolicyColorState EligibilityTracker::export_color(ColorId color) const {
  const ColorState& s = state_[idx(color)];
  return {.cnt = s.cnt,
          .dd = s.dd,
          .last_wrap = s.last_wrap,
          .prev_wrap = s.prev_wrap,
          .eligible = s.eligible,
          .seen_job = s.seen_job};
}

void EligibilityTracker::import_color(ColorId color,
                                      const PolicyColorState& in) {
  RRS_CHECK(idx(color) < state_.size());
  ColorState& s = state_[idx(color)];
  RRS_CHECK_MSG(!s.eligible && s.cnt == 0 && !s.seen_job,
                "import_color targets freshly begun trackers only (color "
                    << color << ")");
  s.cnt = in.cnt;
  s.dd = in.dd;
  s.last_wrap = in.last_wrap;
  s.prev_wrap = in.prev_wrap;
  if (in.seen_job) {
    s.seen_job = true;
    ++active_colors_;
  }
  if (in.eligible) make_eligible(color);
}

void EligibilityTracker::make_eligible(ColorId color) {
  ColorState& s = state_[idx(color)];
  RRS_CHECK(!s.eligible && s.eligible_pos < 0);
  s.eligible = true;
  s.eligible_pos = static_cast<std::int32_t>(eligible_colors_.size());
  eligible_colors_.push_back(color);
}

void EligibilityTracker::make_ineligible(ColorId color) {
  ColorState& s = state_[idx(color)];
  RRS_CHECK(s.eligible && s.eligible_pos >= 0);
  const auto pos = static_cast<std::size_t>(s.eligible_pos);
  const ColorId moved = eligible_colors_.back();
  eligible_colors_[pos] = moved;
  state_[idx(moved)].eligible_pos = static_cast<std::int32_t>(pos);
  eligible_colors_.pop_back();
  s.eligible = false;
  s.eligible_pos = -1;
}

}  // namespace rrs
