#include "core/engine.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/pending.h"
#include "obs/observer.h"
#include "util/bits.h"
#include "util/check.h"

namespace rrs {

namespace {

/// Resolves kHottestResource: the up location whose configured color has
/// the most pending jobs (black counts as zero; ties to the lowest
/// location), or -1 when every location is already down.
int pick_hottest(const CacheAssignment& cache, const PendingJobs& pending) {
  int best = -1;
  std::int64_t best_count = -1;
  for (int r = 0; r < cache.num_resources(); ++r) {
    if (cache.location_down(r)) continue;
    const ColorId color = cache.color_at(r);
    const std::int64_t count = color == kBlack ? 0 : pending.count(color);
    if (count > best_count) {
      best = r;
      best_count = count;
    }
  }
  return best;
}

/// Validates every option up front: a bad combination must fail loudly
/// at construction, not as silent misbehavior rounds later.
const EngineOptions& validate_options(const EngineOptions& options) {
  RRS_REQUIRE(options.num_resources >= 1, "need at least one resource");
  RRS_REQUIRE(options.speed >= 1, "speed must be >= 1");
  RRS_REQUIRE(options.replication >= 1, "replication must be >= 1");
  RRS_REQUIRE(options.num_resources % options.replication == 0,
              "num_resources (" << options.num_resources
                                << ") must be divisible by replication ("
                                << options.replication << ")");
  if (options.fault_plan != nullptr) {
    validate_fault_plan(*options.fault_plan, options.num_resources);
  }
  RRS_REQUIRE(options.pending_budget >= 0,
              "pending_budget must be >= 0, got " << options.pending_budget);
  return options;
}

// Checkpoint payload section tags (see core/checkpoint.h for the framing).
constexpr std::uint32_t kTagOptions = 1;
constexpr std::uint32_t kTagEngine = 2;
constexpr std::uint32_t kTagPending = 3;
constexpr std::uint32_t kTagCache = 4;
constexpr std::uint32_t kTagPolicy = 5;
constexpr std::uint32_t kTagObserver = 6;
constexpr std::uint32_t kTagSource = 7;

}  // namespace

void Policy::checkpoint_state(CheckpointWriter& w) const {
  (void)w;
  RRS_REQUIRE(false,
              "policy '" << name() << "' does not support checkpointing");
}

void Policy::restore_state(CheckpointReader& r) {
  (void)r;
  RRS_REQUIRE(false,
              "policy '" << name() << "' does not support checkpointing");
}

/// Owned snapshot of a source's problem metadata: the cost model by value
/// plus per-color delay bounds.  Lets the engine outlive per-segment
/// sources — the final-sweep RoundContext and the FaultCursor's pricing
/// reference this, never a dead segment stream.
class Engine::MetaSource final : public ArrivalSource {
 public:
  explicit MetaSource(const ArrivalSource& source)
      : model_(source.cost_model()),
        by_delay_(source.colors_by_delay()),
        num_colors_(source.num_colors()),
        horizon_(source.horizon()),
        summary_(source.summary()) {
    delay_bounds_.reserve(static_cast<std::size_t>(num_colors_));
    for (ColorId c = 0; c < num_colors_; ++c) {
      delay_bounds_.push_back(source.delay_bound(c));
    }
  }

  [[nodiscard]] Cost delta() const override { return model_.delta(); }
  [[nodiscard]] ColorId num_colors() const override { return num_colors_; }
  [[nodiscard]] Round delay_bound(ColorId color) const override {
    return delay_bounds_[static_cast<std::size_t>(color)];
  }
  [[nodiscard]] Cost drop_cost(ColorId color) const override {
    return model_.drop_cost(color);
  }
  [[nodiscard]] Round length(ColorId color) const override {
    return model_.length(color);
  }
  [[nodiscard]] const CostModel& cost_model() const override {
    return model_;
  }
  [[nodiscard]] const std::map<Round, std::vector<ColorId>>& colors_by_delay()
      const override {
    return by_delay_;
  }
  [[nodiscard]] Round horizon() const override { return horizon_; }
  [[nodiscard]] std::span<const Job> arrivals_in_round(Round k) override {
    RRS_CHECK_MSG(false, "metadata snapshot pulled for arrivals (round "
                             << k << ")");
    return {};
  }
  [[nodiscard]] std::string summary() const override { return summary_; }

 private:
  CostModel model_;
  std::map<Round, std::vector<ColorId>> by_delay_;
  std::vector<Round> delay_bounds_;
  ColorId num_colors_;
  Round horizon_;
  std::string summary_;
};

/// Cursor over a FaultPlan plus the state needed to apply its events.
struct Engine::FaultCursor {
  const FaultPlan* plan = nullptr;
  Observer* obs = nullptr;
  const CostModel* model = nullptr;
  std::size_t next = 0;
  std::vector<ColorId> lost;        // location -> physical color at failure
  std::vector<ColorId> evicted;     // colors evicted by this round's events
  std::vector<int> hottest_down;    // FIFO of kHottestResource failures
  std::size_t hottest_head = 0;

  /// Applies every event scheduled at or before round `k` and notifies
  /// `policy` once if anything happened.
  void apply(Round k, const EngineOptions& options, CacheAssignment& cache,
             const PendingJobs& pending, Policy& policy,
             EngineResult& result) {
    if (plan == nullptr || next >= plan->events.size() ||
        plan->events[next].round > k) {
      return;
    }
    evicted.clear();
    bool applied = false;
    while (next < plan->events.size() && plan->events[next].round <= k) {
      const FaultEvent& ev = plan->events[next++];
      int r = ev.resource;
      if (ev.fail) {
        if (r == kHottestResource) {
          r = pick_hottest(cache, pending);
          if (r < 0) continue;  // nothing left up to fail
          hottest_down.push_back(r);
        }
        // What re-imaging the location will cost on repair depends on the
        // physical content lost, which may differ from the evicted cached
        // color (a stale physical color is not in the cached set).
        lost[static_cast<std::size_t>(r)] = cache.color_at(r);
        const ColorId evicted_color = cache.fail_location(r);
        ++result.degraded.fault_events;
        if (evicted_color != kBlack) {
          ++result.degraded.churn_evictions;
          evicted.push_back(evicted_color);
        }
        if (obs != nullptr) {
          obs->stats.on_failure(evicted_color != kBlack);
          if (obs->config.trace) {
            obs->trace.push({k, TraceKind::kChurnFail, r, evicted_color});
          }
        }
      } else {
        if (r == kHottestResource) {
          // Repair the oldest adversarially failed location, if any.
          if (hottest_head >= hottest_down.size()) continue;
          r = hottest_down[hottest_head++];
        }
        cache.repair_location(r);
        ++result.degraded.repair_events;
        if (options.charge_repair) {
          ++result.cost.reconfig_events;
          ++result.cost.churn_reconfigs;
          // Re-imaging a repaired (blank) location prices via the cold
          // column of the color it lost; a location that was blank at
          // failure is charged the base Delta.  Scalar tier: both == Delta,
          // bit-identical to the historical events * Delta accounting.
          const ColorId was = lost[static_cast<std::size_t>(r)];
          result.cost.reconfig_cost +=
              was == kBlack ? model->delta() : model->cold_cost(was);
        }
        if (obs != nullptr) {
          obs->stats.on_repair();
          if (obs->config.trace) {
            obs->trace.push({k, TraceKind::kChurnRepair, r, 0});
          }
        }
      }
      applied = true;
    }
    if (applied) {
      policy.on_capacity_change(k, options.num_resources - cache.num_down(),
                                options.num_resources, evicted);
    }
  }
};

Engine::Engine(ArrivalSource& source, Policy& policy,
               const EngineOptions& options, Round start_round)
    : options_(validate_options(options)),
      policy_(&policy),
      cache_(options_.num_resources, options_.replication) {
  // Rounds carrying arrivals: the source's horizon, clipped by max_rounds.
  arrival_end_ = options_.max_rounds;
  if (arrival_end_ == kInfiniteHorizon) {
    arrival_end_ = source.horizon();
    RRS_REQUIRE(arrival_end_ != kInfiniteHorizon,
                "running an infinite source needs EngineOptions::max_rounds; "
                "got " << source.summary());
  } else if (source.finite()) {
    arrival_end_ = std::min(arrival_end_, source.horizon());
  }
  RRS_REQUIRE(arrival_end_ >= 0,
              "EngineOptions::max_rounds must be >= 0, resolved to "
                  << arrival_end_);
  RRS_REQUIRE(start_round >= 0 && start_round <= arrival_end_,
              "start_round " << start_round << " outside [0, " << arrival_end_
                             << "]");
  k_ = start_round;

  pending_.reset(source.num_colors());
  cache_.ensure_colors(source.num_colors());

  // The cost model is snapshotted once (by value, inside the metadata
  // copy): every drop and reconfiguration charge routes through it, and it
  // stays valid after per-segment sources die.
  meta_ = std::make_unique<MetaSource>(source);
  const CostModel& model = meta_->cost_model();
  unit_lengths_ = model.unit_lengths();

  result_.schedule.num_resources = options_.num_resources;
  result_.schedule.speed = options_.speed;

  policy_->begin(source, options_.num_resources, options_.speed);

  // Observability setup: the metadata snapshot hands the hooks per-color
  // data without calling back into the (virtual, possibly dead) source.
  Observer* const obs = options_.observer;
  if (obs != nullptr) {
    std::vector<Round> delay_bounds(
        static_cast<std::size_t>(source.num_colors()));
    std::vector<Cost> drop_costs(delay_bounds.size());
    std::vector<Round> lengths(delay_bounds.size());
    for (ColorId c = 0; c < source.num_colors(); ++c) {
      delay_bounds[static_cast<std::size_t>(c)] = meta_->delay_bound(c);
      drop_costs[static_cast<std::size_t>(c)] = model.drop_cost(c);
      lengths[static_cast<std::size_t>(c)] = model.length(c);
    }
    obs->begin_run(delay_bounds, drop_costs, lengths);
  }
  timers_ = obs != nullptr && obs->config.timers ? &obs->timers : nullptr;
  tracing_ = obs != nullptr && obs->config.trace;

  faults_ = std::make_unique<FaultCursor>();
  faults_->plan = options_.fault_plan;
  faults_->obs = obs;
  faults_->model = &model;
  faults_->lost.assign(static_cast<std::size_t>(options_.num_resources),
                       kBlack);

  // Sparse-round fast-forward eligibility and the stop-round inputs are
  // resolved once: the policy's declaration never changes mid-run and the
  // delay-class set is static metadata.
  ff_eligible_ = options_.fast_forward && policy_->supports_fast_forward();
  for (const auto& [delay, colors] : meta_->colors_by_delay()) {
    ff_delays_.push_back(delay);
  }
  ff_snapshot_every_ = obs != nullptr ? obs->config.snapshot_every : 0;
}

Engine::~Engine() = default;

void Engine::run_round(ArrivalSource* pull) {
  Observer* const obs = options_.observer;
  const CostModel& model = meta_->cost_model();

  // Phase 0: capacity churn — failures apply before this round's drop
  // and arrival phases.
  if (timers_ != nullptr) timers_->begin_segment();
  faults_->apply(k_, options_, cache_, pending_, *policy_, result_);
  const bool degraded_round = cache_.num_down() > 0;
  if (degraded_round) ++result_.degraded.degraded_rounds;
  if (timers_ != nullptr) timers_->note(EnginePhase::kChurn);

  // Phase 1: drop.
  pending_.drop_expired(k_, dropped_);
  Cost round_drop_cost = 0;
  for (const auto& [color, count] : dropped_.by_color) {
    round_drop_cost += static_cast<Cost>(count) * model.drop_cost(color);
  }
  result_.cost.drops += round_drop_cost;
  if (degraded_round) {
    result_.degraded.drops_while_degraded += round_drop_cost;
  }
  if (obs != nullptr && dropped_.total > 0) {
    for (const auto& [color, count] : dropped_.by_color) {
      obs->stats.on_drop(color, count);
    }
    if (tracing_) {
      obs->trace.push({k_, TraceKind::kDropBurst,
                       static_cast<std::int32_t>(dropped_.by_color.size()),
                       dropped_.total});
    }
  }
  if (timers_ != nullptr) timers_->note(EnginePhase::kDrop);

  // Phase 2: arrival (none in drain rounds past the arrival horizon).
  std::span<const Job> arrivals;
  if (pull != nullptr) arrivals = pull->arrivals_in_round(k_);
  if (options_.pending_budget > 0 &&
      pending_.total() + static_cast<std::int64_t>(arrivals.size()) >
          options_.pending_budget) {
    arrivals = admit_arrivals(arrivals, degraded_round);
  }
  for (const Job& job : arrivals) {
    pending_.add(job);
    max_deadline_ = std::max(max_deadline_, job.deadline());
  }
  result_.arrived += static_cast<std::int64_t>(arrivals.size());
  result_.peak_pending = std::max(result_.peak_pending, pending_.total());
  if (obs != nullptr) {
    for (const Job& job : arrivals) obs->stats.on_arrival(job.color);
  }
  if (timers_ != nullptr) timers_->note(EnginePhase::kArrival);

  const ArrivalSource& ctx_source =
      pull != nullptr ? static_cast<const ArrivalSource&>(*pull) : *meta_;
  for (int mini = 0; mini < options_.speed; ++mini) {
    // Phases 3+4 fused into one policy call: the policy ingests drops and
    // arrivals (on mini 0) and mutates the cache, all in one dispatch.
    if (timers_ != nullptr) timers_->begin_segment();
    cache_.begin_phase();
    RoundContext ctx(k_, mini, /*final_sweep=*/false, dropped_, arrivals,
                     ctx_source, pending_, cache_, obs);
    policy_->on_round(ctx);
    const std::span<const std::pair<int, ColorId>> phase_events =
        cache_.finish_phase();
    const std::span<const ColorId> phase_from = cache_.phase_from_colors();
    for (std::size_t i = 0; i < phase_events.size(); ++i) {
      const auto& [location, color] = phase_events[i];
      ++result_.cost.reconfig_events;
      result_.cost.reconfig_cost += model.reconfig_cost(phase_from[i],
                                                        color);
      if (options_.record_schedule) {
        result_.schedule.reconfigs.push_back({k_, mini, location, color});
      }
    }
    if (obs != nullptr && !phase_events.empty()) {
      obs->stats.on_reconfigs(
          k_, static_cast<std::int64_t>(phase_events.size()));
      if (tracing_) {
        obs->trace.push({k_, TraceKind::kReconfig, mini,
                         static_cast<std::int64_t>(phase_events.size())});
      }
    }
    if (timers_ != nullptr) timers_->note(EnginePhase::kPolicy);

    // Execution — one pending job (earliest deadline first) per
    // configured resource.
    for (int r = 0; r < options_.num_resources; ++r) {
      const ColorId color = cache_.color_at(r);
      if (color == kBlack || pending_.idle(color)) continue;
      const bool completes =
          unit_lengths_ || pending_.earliest_remaining(color) == 1;
      if (obs != nullptr) {
        // The job about to execute is the color's earliest deadline;
        // reading it before the pop derives wait and slack without
        // materializing anything.  Completion stats fire only on a job's
        // final unit; every unit counts as work.
        obs->stats.on_work_unit(color);
        if (completes) {
          obs->stats.on_execution(color, k_,
                                  pending_.earliest_deadline(color));
        }
      }
      const PendingJobs::ExecResult exec = pending_.execute_earliest(color);
      ++result_.work_units;
      if (exec.completed) ++result_.executed;
      if (options_.record_schedule) {
        result_.schedule.execs.push_back({k_, mini, r, exec.id});
      }
    }
    if (timers_ != nullptr) timers_->note(EnginePhase::kExec);
  }
  if (obs != nullptr && obs->config.snapshot_every > 0 &&
      (k_ + 1) % obs->config.snapshot_every == 0) {
    obs->emit_snapshot(k_, pending_.total());
  }
  ++k_;
}

std::span<const Job> Engine::admit_arrivals(std::span<const Job> arrivals,
                                            bool degraded_round) {
  const CostModel& model = meta_->cost_model();
  Observer* const obs = options_.observer;
  const std::int64_t over = pending_.total() +
                            static_cast<std::int64_t>(arrivals.size()) -
                            options_.pending_budget;
  const std::size_t shed =
      std::min(static_cast<std::size_t>(over), arrivals.size());
  shed_order_.resize(arrivals.size());
  std::iota(shed_order_.begin(), shed_order_.end(), std::size_t{0});
  // Cheapest weight sheds first; on ties the later arrival goes so the
  // earlier submission survives.
  std::sort(shed_order_.begin(), shed_order_.end(),
            [&](std::size_t a, std::size_t b) {
              const Cost ca = model.drop_cost(arrivals[a].color);
              const Cost cb = model.drop_cost(arrivals[b].color);
              return ca != cb ? ca < cb : a > b;
            });
  std::vector<char> is_shed(arrivals.size(), 0);
  for (std::size_t i = 0; i < shed; ++i) is_shed[shed_order_[i]] = 1;
  admitted_.clear();
  Cost shed_cost = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Job& job = arrivals[i];
    if (is_shed[i] == 0) {
      admitted_.push_back(job);
      continue;
    }
    // A shed job did arrive (it came off the wire) but never enters the
    // pending set: it is charged as a drop right here, at full weight.
    ++result_.arrived;
    shed_cost += model.drop_cost(job.color);
    if (obs != nullptr) {
      obs->stats.on_arrival(job.color);
      obs->stats.on_drop(job.color, 1);
    }
  }
  result_.cost.drops += shed_cost;
  if (degraded_round) result_.degraded.drops_while_degraded += shed_cost;
  result_.admission_rejected += static_cast<std::int64_t>(shed);
  if (obs != nullptr) {
    obs->stats.on_admission_reject(static_cast<std::int64_t>(shed));
  }
  return admitted_;
}

void Engine::run_rounds(ArrivalSource& source, Round until) {
  RRS_REQUIRE(!ended_, "run_rounds after finish/abandon");
  RRS_REQUIRE(until >= k_ && until <= arrival_end_,
              "segment end " << until << " outside [" << k_ << ", "
                             << arrival_end_ << "]");
  while (k_ < until) {
    run_round(&source);
    if (ff_eligible_ && k_ < until && pending_.total() == 0) {
      fast_forward(source, until);
    }
  }
}

Round Engine::next_stop_round(Round until) const {
  Round stop = until;
  // Deadline-block boundaries: every multiple of a delay bound runs the
  // tracker's dd-advance / epoch-end logic, so it must be executed.  A
  // round already on a boundary cannot be skipped at all.
  for (const Round d : ff_delays_) {
    if (k_ % d == 0) return k_;
    stop = std::min(stop, ceil_multiple(k_, d));
  }
  // Fault events apply at the start of their round.
  if (faults_->plan != nullptr &&
      faults_->next < faults_->plan->events.size()) {
    stop = std::min(stop, faults_->plan->events[faults_->next].round);
  }
  // Snapshots fire after round k when (k + 1) % every == 0; the next such
  // round must run so the emission round (and its cumulative counters,
  // frozen across the skip) stay identical.
  if (ff_snapshot_every_ > 0) {
    stop = std::min(stop, ceil_multiple(k_ + 1, ff_snapshot_every_) - 1);
  }
  const Round pe = policy_->next_policy_event(k_);
  if (pe != kInfiniteHorizon) stop = std::min(stop, std::max(pe, k_));
  return stop;
}

void Engine::fast_forward(ArrivalSource& source, Round until) {
  const Round stop = next_stop_round(until);
  if (stop <= k_) return;
  const Round next = source.next_event_round(k_, stop);
  RRS_CHECK_MSG(next >= k_ && next <= stop,
                "next_event_round(" << k_ << ", " << stop << ") returned "
                                    << next);
  if (next == k_) return;
  // The skipped rounds are observationally empty but still count as run
  // rounds; degraded accounting is the only per-round counter that moves
  // unconditionally.
  if (cache_.num_down() > 0) {
    result_.degraded.degraded_rounds += next - k_;
  }
  k_ = next;
}

EngineResult Engine::finish() {
  RRS_REQUIRE(!ended_, "finish after finish/abandon");
  RRS_REQUIRE(k_ == arrival_end_,
              "finish at round " << k_ << " before arrival_end "
                                 << arrival_end_);
  ended_ = true;
  // Optional drain: keep running (arrival-free) rounds until every pending
  // job has executed or expired (deadline <= k).
  while (options_.drain_pending && pending_.total() > 0 &&
         max_deadline_ > k_) {
    run_round(nullptr);
  }

  // Final drop phase at round `k`: without draining every remaining pending
  // job has deadline exactly arrival_end == k; with draining the loop exits
  // once all deadlines are <= k.  Either way they expire now, and policies
  // see this sweep (final_sweep() == true, cache read-only) so their drop
  // accounting matches the engine's.
  const CostModel& model = meta_->cost_model();
  Observer* const obs = options_.observer;
  pending_.drop_expired(k_, dropped_);
  Cost final_drop_cost = 0;
  for (const auto& [color, count] : dropped_.by_color) {
    final_drop_cost += static_cast<Cost>(count) * model.drop_cost(color);
  }
  result_.cost.drops += final_drop_cost;
  if (cache_.num_down() > 0) {
    result_.degraded.drops_while_degraded += final_drop_cost;
  }
  if (obs != nullptr && dropped_.total > 0) {
    for (const auto& [color, count] : dropped_.by_color) {
      obs->stats.on_drop(color, count);
    }
    if (tracing_) {
      obs->trace.push({k_, TraceKind::kDropBurst,
                       static_cast<std::int32_t>(dropped_.by_color.size()),
                       dropped_.total});
    }
  }
  RoundContext final_ctx(k_, 0, /*final_sweep=*/true, dropped_, {}, *meta_,
                         pending_, cache_, obs);
  policy_->on_round(final_ctx);

  result_.rounds = k_;
  result_.policy_stats = policy_->stats();
  if (obs != nullptr) obs->finish_run(k_, pending_.total());
  return std::move(result_);
}

EngineResult Engine::abandon() {
  RRS_REQUIRE(!ended_, "abandon after finish/abandon");
  ended_ = true;
  result_.rounds = k_;
  result_.policy_stats = policy_->stats();
  if (options_.observer != nullptr) {
    options_.observer->finish_run(k_, pending_.total());
  }
  return std::move(result_);
}

EngineColorState Engine::export_color(ColorId color) const {
  EngineColorState state;
  pending_.export_color(color, state.jobs);
  state.has_policy = policy_->export_color_state(color, state.policy);
  return state;
}

void Engine::import_color(ColorId color, const EngineColorState& state) {
  RRS_REQUIRE(result_.arrived == 0 && result_.rounds == 0,
              "import_color only on a fresh engine");
  for (const PendingJobs::ExportedJob& job : state.jobs) {
    pending_.restore(color, job);
    max_deadline_ = std::max(max_deadline_, job.deadline);
  }
  result_.peak_pending = std::max(result_.peak_pending, pending_.total());
  if (state.has_policy) policy_->import_color_state(color, state.policy);
}

void Engine::checkpoint(std::ostream& out, const ArrivalSource* source) const {
  RRS_CHECK_MSG(!ended_, "checkpoint after finish/abandon");
  CheckpointWriter w;

  // Options fingerprint: everything that shapes the run's trajectory.  A
  // restore under different options would silently diverge, so every field
  // is validated, not absorbed.
  w.begin_section(kTagOptions);
  w.i64(options_.num_resources);
  w.i64(options_.speed);
  w.i64(options_.replication);
  w.boolean(options_.record_schedule);
  w.boolean(options_.drain_pending);
  w.boolean(options_.charge_repair);
  w.boolean(options_.fast_forward);
  w.i64(options_.pending_budget);
  w.str(policy_->name());
  w.i64(meta_->num_colors());
  w.i64(meta_->cost_model().delta());
  w.i64(arrival_end_);
  w.u64(options_.fault_plan == nullptr ? 0
                                       : options_.fault_plan->events.size());
  w.boolean(options_.observer != nullptr);
  w.boolean(source != nullptr);
  w.end_section();

  w.begin_section(kTagEngine);
  w.i64(k_);
  w.i64(max_deadline_);
  w.u64(faults_->next);
  w.u64(faults_->hottest_head);
  w.u64(faults_->hottest_down.size());
  for (const int r : faults_->hottest_down) w.i64(r);
  w.u64(faults_->lost.size());
  for (const ColorId c : faults_->lost) w.i64(c);
  w.i64(result_.cost.reconfig_events);
  w.i64(result_.cost.reconfig_cost);
  w.i64(result_.cost.drops);
  w.i64(result_.cost.churn_reconfigs);
  w.i64(result_.executed);
  w.i64(result_.work_units);
  w.i64(result_.arrived);
  w.i64(result_.peak_pending);
  w.i64(result_.admission_rejected);
  w.i64(result_.degraded.fault_events);
  w.i64(result_.degraded.repair_events);
  w.i64(result_.degraded.churn_evictions);
  w.i64(result_.degraded.degraded_rounds);
  w.i64(result_.degraded.drops_while_degraded);
  w.u64(result_.schedule.reconfigs.size());
  for (const ReconfigEvent& e : result_.schedule.reconfigs) {
    w.i64(e.round);
    w.i64(e.mini);
    w.i64(e.resource);
    w.i64(e.color);
  }
  w.u64(result_.schedule.execs.size());
  for (const ExecEvent& e : result_.schedule.execs) {
    w.i64(e.round);
    w.i64(e.mini);
    w.i64(e.resource);
    w.i64(e.job);
  }
  w.end_section();

  w.begin_section(kTagPending);
  pending_.checkpoint(w);
  w.end_section();

  w.begin_section(kTagCache);
  cache_.checkpoint(w);
  w.end_section();

  w.begin_section(kTagPolicy);
  policy_->checkpoint_state(w);
  w.end_section();

  if (options_.observer != nullptr) {
    w.begin_section(kTagObserver);
    options_.observer->checkpoint(w);
    w.end_section();
  }
  if (source != nullptr) {
    w.begin_section(kTagSource);
    source->checkpoint(w);
    w.end_section();
  }
  w.finish(out);
}

void Engine::restore(std::istream& in, ArrivalSource* source) {
  RRS_CHECK_MSG(!ended_ && result_.arrived == 0 && result_.work_units == 0 &&
                    pending_.total() == 0,
                "Engine::restore requires a freshly constructed engine");
  CheckpointReader r(in);

  r.open_section(kTagOptions);
  RRS_REQUIRE(r.i64() == options_.num_resources,
              "checkpoint num_resources mismatch");
  RRS_REQUIRE(r.i64() == options_.speed, "checkpoint speed mismatch");
  RRS_REQUIRE(r.i64() == options_.replication,
              "checkpoint replication mismatch");
  RRS_REQUIRE(r.boolean() == options_.record_schedule,
              "checkpoint record_schedule mismatch");
  RRS_REQUIRE(r.boolean() == options_.drain_pending,
              "checkpoint drain_pending mismatch");
  RRS_REQUIRE(r.boolean() == options_.charge_repair,
              "checkpoint charge_repair mismatch");
  RRS_REQUIRE(r.boolean() == options_.fast_forward,
              "checkpoint fast_forward mismatch");
  RRS_REQUIRE(r.i64() == options_.pending_budget,
              "checkpoint pending_budget mismatch");
  RRS_REQUIRE(r.str() == policy_->name(), "checkpoint policy mismatch");
  RRS_REQUIRE(r.i64() == meta_->num_colors(),
              "checkpoint color-space mismatch");
  RRS_REQUIRE(r.i64() == meta_->cost_model().delta(),
              "checkpoint delta mismatch");
  RRS_REQUIRE(r.i64() == arrival_end_, "checkpoint arrival_end mismatch");
  const std::uint64_t plan_events =
      options_.fault_plan == nullptr ? 0 : options_.fault_plan->events.size();
  RRS_REQUIRE(r.u64() == plan_events, "checkpoint fault-plan mismatch");
  RRS_REQUIRE(r.boolean() == (options_.observer != nullptr),
              "checkpoint observer presence mismatch");
  const bool has_source = r.boolean();
  RRS_REQUIRE(source == nullptr || has_source,
              "checkpoint carries no source state");
  r.close_section();

  r.open_section(kTagEngine);
  const Round k = r.i64();
  RRS_REQUIRE(k >= 0 && k <= arrival_end_,
              "checkpoint round " << k << " outside [0, " << arrival_end_
                                  << "]");
  const Round max_deadline = r.i64();
  RRS_REQUIRE(max_deadline >= 0, "checkpoint max_deadline out of range");
  const std::uint64_t fnext = r.u64();
  RRS_REQUIRE(fnext <= plan_events, "checkpoint fault cursor out of range");
  const std::uint64_t hottest_head = r.u64();
  const std::uint64_t hottest_size = r.u64();
  RRS_REQUIRE(hottest_head <= hottest_size && hottest_size <= plan_events,
              "checkpoint hottest-failure FIFO out of range");
  std::vector<int> hottest_down;
  hottest_down.reserve(static_cast<std::size_t>(hottest_size));
  for (std::uint64_t i = 0; i < hottest_size; ++i) {
    const std::int64_t loc = r.i64();
    RRS_REQUIRE(loc >= 0 && loc < options_.num_resources,
                "checkpoint hottest-failure location out of range");
    hottest_down.push_back(static_cast<int>(loc));
  }
  RRS_REQUIRE(r.u64() == faults_->lost.size(),
              "checkpoint fault-cursor size mismatch");
  std::vector<ColorId> lost;
  lost.reserve(faults_->lost.size());
  for (std::size_t i = 0; i < faults_->lost.size(); ++i) {
    const std::int64_t c = r.i64();
    RRS_REQUIRE(c >= kBlack && c < meta_->num_colors(),
                "checkpoint lost-color out of range");
    lost.push_back(static_cast<ColorId>(c));
  }
  CostBreakdown cost;
  cost.reconfig_events = r.i64();
  cost.reconfig_cost = r.i64();
  cost.drops = r.i64();
  cost.churn_reconfigs = r.i64();
  const std::int64_t executed = r.i64();
  const std::int64_t work_units = r.i64();
  const std::int64_t arrived = r.i64();
  const std::int64_t peak_pending = r.i64();
  const std::int64_t admission_rejected = r.i64();
  DegradedStats degraded;
  degraded.fault_events = r.i64();
  degraded.repair_events = r.i64();
  degraded.churn_evictions = r.i64();
  degraded.degraded_rounds = r.i64();
  degraded.drops_while_degraded = r.i64();
  RRS_REQUIRE(cost.reconfig_events >= 0 && cost.reconfig_cost >= 0 &&
                  cost.drops >= 0 && cost.churn_reconfigs >= 0 &&
                  executed >= 0 && work_units >= executed && arrived >= 0 &&
                  peak_pending >= 0 && admission_rejected >= 0 &&
                  degraded.fault_events >= 0 && degraded.repair_events >= 0 &&
                  degraded.churn_evictions >= 0 &&
                  degraded.degraded_rounds >= 0 &&
                  degraded.drops_while_degraded >= 0,
              "checkpoint result counters out of range");
  const std::uint64_t num_reconfigs = r.u64();
  // Four i64 fields per event bound the claimable count by the bytes
  // actually present, so a corrupt length cannot trigger a huge reserve.
  RRS_REQUIRE(num_reconfigs <= r.remaining() / 32,
              "checkpoint schedule truncated");
  RRS_REQUIRE(options_.record_schedule || num_reconfigs == 0,
              "checkpoint carries a schedule but record_schedule is off");
  std::vector<ReconfigEvent> reconfigs;
  reconfigs.reserve(static_cast<std::size_t>(num_reconfigs));
  for (std::uint64_t i = 0; i < num_reconfigs; ++i) {
    ReconfigEvent e;
    e.round = r.i64();
    const std::int64_t mini = r.i64();
    const std::int64_t resource = r.i64();
    const std::int64_t color = r.i64();
    RRS_REQUIRE(e.round >= 0 && mini >= 0 && mini < options_.speed &&
                    resource >= 0 && resource < options_.num_resources &&
                    color >= kBlack && color < meta_->num_colors(),
                "checkpoint reconfig event out of range");
    e.mini = static_cast<std::int32_t>(mini);
    e.resource = static_cast<std::int32_t>(resource);
    e.color = static_cast<ColorId>(color);
    reconfigs.push_back(e);
  }
  const std::uint64_t num_execs = r.u64();
  RRS_REQUIRE(num_execs <= r.remaining() / 32,
              "checkpoint schedule truncated");
  RRS_REQUIRE(options_.record_schedule || num_execs == 0,
              "checkpoint carries a schedule but record_schedule is off");
  std::vector<ExecEvent> execs;
  execs.reserve(static_cast<std::size_t>(num_execs));
  for (std::uint64_t i = 0; i < num_execs; ++i) {
    ExecEvent e;
    e.round = r.i64();
    const std::int64_t mini = r.i64();
    const std::int64_t resource = r.i64();
    e.job = r.i64();
    RRS_REQUIRE(e.round >= 0 && mini >= 0 && mini < options_.speed &&
                    resource >= 0 && resource < options_.num_resources &&
                    e.job >= 0,
                "checkpoint exec event out of range");
    e.mini = static_cast<std::int32_t>(mini);
    e.resource = static_cast<std::int32_t>(resource);
    execs.push_back(e);
  }
  r.close_section();

  r.open_section(kTagPending);
  pending_.restore_checkpoint(r);
  r.close_section();

  r.open_section(kTagCache);
  cache_.restore_checkpoint(r);
  r.close_section();

  r.open_section(kTagPolicy);
  policy_->restore_state(r);
  r.close_section();

  if (options_.observer != nullptr) {
    r.open_section(kTagObserver);
    options_.observer->restore_checkpoint(r);
    r.close_section();
  }
  if (has_source) {
    // Present but unwanted (the caller restores the source separately):
    // open/close skips it.
    r.open_section(kTagSource);
    if (source != nullptr) source->restore(r);
    r.close_section();
  }

  // Commit only after every section parsed and validated: a malformed
  // checkpoint leaves the engine untouched except for the component
  // restores above, which themselves only commit on full validation.
  k_ = k;
  max_deadline_ = max_deadline;
  faults_->next = fnext;
  faults_->hottest_head = static_cast<std::size_t>(hottest_head);
  faults_->hottest_down = std::move(hottest_down);
  faults_->lost = std::move(lost);
  result_.cost = cost;
  result_.executed = executed;
  result_.work_units = work_units;
  result_.arrived = arrived;
  result_.peak_pending = std::max(peak_pending, pending_.total());
  result_.admission_rejected = admission_rejected;
  result_.degraded = degraded;
  result_.schedule.reconfigs = std::move(reconfigs);
  result_.schedule.execs = std::move(execs);
}

EngineResult run_policy(ArrivalSource& source, Policy& policy,
                        const EngineOptions& options) {
  const auto run = [&] {
    Engine engine(source, policy, options);
    engine.run_rounds(source, engine.arrival_end());
    return engine.finish();
  };
  if (options.observer == nullptr) {
    return run();
  }
  try {
    return run();
  } catch (const InvariantError&) {
    // Flight-recorder dump: the recent-event ring carries the context a
    // crash report needs and cannot reconstruct post mortem.
    options.observer->dump_trace();
    throw;
  }
}

EngineResult run_policy(const Instance& instance, Policy& policy,
                        const EngineOptions& options) {
  MaterializedSource source(instance);
  return run_policy(source, policy, options);
}

}  // namespace rrs
