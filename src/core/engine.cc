#include "core/engine.h"

#include <algorithm>
#include <vector>

#include "core/pending.h"
#include "obs/observer.h"
#include "util/check.h"

namespace rrs {

namespace {

/// Resolves kHottestResource: the up location whose configured color has
/// the most pending jobs (black counts as zero; ties to the lowest
/// location), or -1 when every location is already down.
int pick_hottest(const CacheAssignment& cache, const PendingJobs& pending) {
  int best = -1;
  std::int64_t best_count = -1;
  for (int r = 0; r < cache.num_resources(); ++r) {
    if (cache.location_down(r)) continue;
    const ColorId color = cache.color_at(r);
    const std::int64_t count = color == kBlack ? 0 : pending.count(color);
    if (count > best_count) {
      best = r;
      best_count = count;
    }
  }
  return best;
}

/// Cursor over a FaultPlan plus the state needed to apply its events.
struct FaultCursor {
  const FaultPlan* plan = nullptr;
  Observer* obs = nullptr;
  const CostModel* model = nullptr;
  std::size_t next = 0;
  std::vector<ColorId> lost;        // location -> physical color at failure
  std::vector<ColorId> evicted;     // colors evicted by this round's events
  std::vector<int> hottest_down;    // FIFO of kHottestResource failures
  std::size_t hottest_head = 0;

  /// Applies every event scheduled at or before round `k` and notifies
  /// `policy` once if anything happened.
  void apply(Round k, const EngineOptions& options, CacheAssignment& cache,
             const PendingJobs& pending, Policy& policy,
             EngineResult& result) {
    if (plan == nullptr || next >= plan->events.size() ||
        plan->events[next].round > k) {
      return;
    }
    evicted.clear();
    bool applied = false;
    while (next < plan->events.size() && plan->events[next].round <= k) {
      const FaultEvent& ev = plan->events[next++];
      int r = ev.resource;
      if (ev.fail) {
        if (r == kHottestResource) {
          r = pick_hottest(cache, pending);
          if (r < 0) continue;  // nothing left up to fail
          hottest_down.push_back(r);
        }
        // What re-imaging the location will cost on repair depends on the
        // physical content lost, which may differ from the evicted cached
        // color (a stale physical color is not in the cached set).
        lost[static_cast<std::size_t>(r)] = cache.color_at(r);
        const ColorId evicted_color = cache.fail_location(r);
        ++result.degraded.fault_events;
        if (evicted_color != kBlack) {
          ++result.degraded.churn_evictions;
          evicted.push_back(evicted_color);
        }
        if (obs != nullptr) {
          obs->stats.on_failure(evicted_color != kBlack);
          if (obs->config.trace) {
            obs->trace.push({k, TraceKind::kChurnFail, r, evicted_color});
          }
        }
      } else {
        if (r == kHottestResource) {
          // Repair the oldest adversarially failed location, if any.
          if (hottest_head >= hottest_down.size()) continue;
          r = hottest_down[hottest_head++];
        }
        cache.repair_location(r);
        ++result.degraded.repair_events;
        if (options.charge_repair) {
          ++result.cost.reconfig_events;
          ++result.cost.churn_reconfigs;
          // Re-imaging a repaired (blank) location prices via the cold
          // column of the color it lost; a location that was blank at
          // failure is charged the base Delta.  Scalar tier: both == Delta,
          // bit-identical to the historical events * Delta accounting.
          const ColorId was = lost[static_cast<std::size_t>(r)];
          result.cost.reconfig_cost +=
              was == kBlack ? model->delta() : model->cold_cost(was);
        }
        if (obs != nullptr) {
          obs->stats.on_repair();
          if (obs->config.trace) {
            obs->trace.push({k, TraceKind::kChurnRepair, r, 0});
          }
        }
      }
      applied = true;
    }
    if (applied) {
      policy.on_capacity_change(k, options.num_resources - cache.num_down(),
                                options.num_resources, evicted);
    }
  }
};

/// The actual run loop; run_policy wraps it with the trace-dump-on-
/// InvariantError handler.  Observability hooks are guarded by a single
/// null check each, so a run with options.observer == nullptr is
/// bit-identical to one compiled without the obs subsystem.
EngineResult run_policy_impl(ArrivalSource& source, Policy& policy,
                             const EngineOptions& options) {
  // Validate every option up front: a bad combination must fail loudly
  // here, not as silent misbehavior rounds later.
  RRS_REQUIRE(options.num_resources >= 1, "need at least one resource");
  RRS_REQUIRE(options.speed >= 1, "speed must be >= 1");
  RRS_REQUIRE(options.replication >= 1, "replication must be >= 1");
  RRS_REQUIRE(options.num_resources % options.replication == 0,
              "num_resources (" << options.num_resources
                                << ") must be divisible by replication ("
                                << options.replication << ")");
  if (options.fault_plan != nullptr) {
    validate_fault_plan(*options.fault_plan, options.num_resources);
  }

  // Rounds carrying arrivals: the source's horizon, clipped by max_rounds.
  Round arrival_end = options.max_rounds;
  if (arrival_end == kInfiniteHorizon) {
    arrival_end = source.horizon();
    RRS_REQUIRE(arrival_end != kInfiniteHorizon,
                "running an infinite source needs EngineOptions::max_rounds; "
                "got " << source.summary());
  } else if (source.finite()) {
    arrival_end = std::min(arrival_end, source.horizon());
  }
  RRS_REQUIRE(arrival_end >= 0,
              "EngineOptions::max_rounds must be >= 0, resolved to "
                  << arrival_end);

  PendingJobs pending;
  pending.reset(source.num_colors());
  CacheAssignment cache(options.num_resources, options.replication);
  cache.ensure_colors(source.num_colors());

  // The cost model is resolved once: every drop and reconfiguration charge
  // below routes through it (scalar tier reproduces the historical
  // events * Delta / count * drop_cost arithmetic exactly).
  const CostModel& model = source.cost_model();
  const bool unit_lengths = model.unit_lengths();

  EngineResult result;
  result.schedule.num_resources = options.num_resources;
  result.schedule.speed = options.speed;

  policy.begin(source, options.num_resources, options.speed);

  // Observability setup: cache per-color metadata once so the hot-path
  // hooks never call back into the (virtual) source.
  Observer* const obs = options.observer;
  if (obs != nullptr) {
    std::vector<Round> delay_bounds(
        static_cast<std::size_t>(source.num_colors()));
    std::vector<Cost> drop_costs(delay_bounds.size());
    std::vector<Round> lengths(delay_bounds.size());
    for (ColorId c = 0; c < source.num_colors(); ++c) {
      delay_bounds[static_cast<std::size_t>(c)] = source.delay_bound(c);
      drop_costs[static_cast<std::size_t>(c)] = model.drop_cost(c);
      lengths[static_cast<std::size_t>(c)] = model.length(c);
    }
    obs->begin_run(delay_bounds, drop_costs, lengths);
  }
  PhaseTimers* const timers =
      obs != nullptr && obs->config.timers ? &obs->timers : nullptr;
  const bool tracing = obs != nullptr && obs->config.trace;

  PendingJobs::DropResult dropped;  // reused across rounds: no per-round
                                    // allocation once capacities settle
  FaultCursor faults;
  faults.plan = options.fault_plan;
  faults.obs = obs;
  faults.model = &model;
  faults.lost.assign(static_cast<std::size_t>(options.num_resources),
                     kBlack);
  // High-water mark over ingested deadlines: once arrivals end, draining
  // runs until every pending job has executed or expired (deadline <= k).
  Round max_deadline = 0;
  Round k = 0;
  while (k < arrival_end ||
         (options.drain_pending && pending.total() > 0 && max_deadline > k)) {
    // Phase 0: capacity churn — failures apply before this round's drop
    // and arrival phases.
    if (timers != nullptr) timers->begin_segment();
    faults.apply(k, options, cache, pending, policy, result);
    const bool degraded_round = cache.num_down() > 0;
    if (degraded_round) ++result.degraded.degraded_rounds;
    if (timers != nullptr) timers->note(EnginePhase::kChurn);

    // Phase 1: drop.
    pending.drop_expired(k, dropped);
    Cost round_drop_cost = 0;
    for (const auto& [color, count] : dropped.by_color) {
      round_drop_cost += static_cast<Cost>(count) * model.drop_cost(color);
    }
    result.cost.drops += round_drop_cost;
    if (degraded_round) {
      result.degraded.drops_while_degraded += round_drop_cost;
    }
    if (obs != nullptr && dropped.total > 0) {
      for (const auto& [color, count] : dropped.by_color) {
        obs->stats.on_drop(color, count);
      }
      if (tracing) {
        obs->trace.push({k, TraceKind::kDropBurst,
                         static_cast<std::int32_t>(dropped.by_color.size()),
                         dropped.total});
      }
    }
    if (timers != nullptr) timers->note(EnginePhase::kDrop);

    // Phase 2: arrival.
    std::span<const Job> arrivals;
    if (k < arrival_end) arrivals = source.arrivals_in_round(k);
    for (const Job& job : arrivals) {
      pending.add(job);
      max_deadline = std::max(max_deadline, job.deadline());
    }
    result.arrived += static_cast<std::int64_t>(arrivals.size());
    result.peak_pending = std::max(result.peak_pending, pending.total());
    if (obs != nullptr) {
      for (const Job& job : arrivals) obs->stats.on_arrival(job.color);
    }
    if (timers != nullptr) timers->note(EnginePhase::kArrival);

    for (int mini = 0; mini < options.speed; ++mini) {
      // Phases 3+4 fused into one policy call: the policy ingests drops and
      // arrivals (on mini 0) and mutates the cache, all in one dispatch.
      if (timers != nullptr) timers->begin_segment();
      cache.begin_phase();
      RoundContext ctx(k, mini, /*final_sweep=*/false, dropped, arrivals,
                       source, pending, cache, obs);
      policy.on_round(ctx);
      const std::span<const std::pair<int, ColorId>> phase_events =
          cache.finish_phase();
      const std::span<const ColorId> phase_from = cache.phase_from_colors();
      for (std::size_t i = 0; i < phase_events.size(); ++i) {
        const auto& [location, color] = phase_events[i];
        ++result.cost.reconfig_events;
        result.cost.reconfig_cost += model.reconfig_cost(phase_from[i],
                                                         color);
        if (options.record_schedule) {
          result.schedule.reconfigs.push_back(
              {k, mini, location, color});
        }
      }
      if (obs != nullptr && !phase_events.empty()) {
        obs->stats.on_reconfigs(
            k, static_cast<std::int64_t>(phase_events.size()));
        if (tracing) {
          obs->trace.push({k, TraceKind::kReconfig, mini,
                           static_cast<std::int64_t>(phase_events.size())});
        }
      }
      if (timers != nullptr) timers->note(EnginePhase::kPolicy);

      // Execution — one pending job (earliest deadline first) per
      // configured resource.
      for (int r = 0; r < options.num_resources; ++r) {
        const ColorId color = cache.color_at(r);
        if (color == kBlack || pending.idle(color)) continue;
        const bool completes =
            unit_lengths || pending.earliest_remaining(color) == 1;
        if (obs != nullptr) {
          // The job about to execute is the color's earliest deadline;
          // reading it before the pop derives wait and slack without
          // materializing anything.  Completion stats fire only on a job's
          // final unit; every unit counts as work.
          obs->stats.on_work_unit(color);
          if (completes) {
            obs->stats.on_execution(color, k,
                                    pending.earliest_deadline(color));
          }
        }
        const PendingJobs::ExecResult exec = pending.execute_earliest(color);
        ++result.work_units;
        if (exec.completed) ++result.executed;
        if (options.record_schedule) {
          result.schedule.execs.push_back({k, mini, r, exec.id});
        }
      }
      if (timers != nullptr) timers->note(EnginePhase::kExec);
    }
    if (obs != nullptr && obs->config.snapshot_every > 0 &&
        (k + 1) % obs->config.snapshot_every == 0) {
      obs->emit_snapshot(k, pending.total());
    }
    ++k;
  }

  // Final drop phase at round `k`: without draining every remaining pending
  // job has deadline exactly arrival_end == k; with draining the loop exits
  // once all deadlines are <= k.  Either way they expire now, and policies
  // see this sweep (final_sweep() == true, cache read-only) so their drop
  // accounting matches the engine's.
  pending.drop_expired(k, dropped);
  Cost final_drop_cost = 0;
  for (const auto& [color, count] : dropped.by_color) {
    final_drop_cost += static_cast<Cost>(count) * model.drop_cost(color);
  }
  result.cost.drops += final_drop_cost;
  if (cache.num_down() > 0) {
    result.degraded.drops_while_degraded += final_drop_cost;
  }
  if (obs != nullptr && dropped.total > 0) {
    for (const auto& [color, count] : dropped.by_color) {
      obs->stats.on_drop(color, count);
    }
    if (tracing) {
      obs->trace.push({k, TraceKind::kDropBurst,
                       static_cast<std::int32_t>(dropped.by_color.size()),
                       dropped.total});
    }
  }
  RoundContext final_ctx(k, 0, /*final_sweep=*/true, dropped, {}, source,
                         pending, cache, obs);
  policy.on_round(final_ctx);

  result.rounds = k;
  result.policy_stats = policy.stats();
  if (obs != nullptr) obs->finish_run(k, pending.total());
  return result;
}

}  // namespace

EngineResult run_policy(ArrivalSource& source, Policy& policy,
                        const EngineOptions& options) {
  if (options.observer == nullptr) {
    return run_policy_impl(source, policy, options);
  }
  try {
    return run_policy_impl(source, policy, options);
  } catch (const InvariantError&) {
    // Flight-recorder dump: the recent-event ring carries the context a
    // crash report needs and cannot reconstruct post mortem.
    options.observer->dump_trace();
    throw;
  }
}

EngineResult run_policy(const Instance& instance, Policy& policy,
                        const EngineOptions& options) {
  MaterializedSource source(instance);
  return run_policy(source, policy, options);
}

}  // namespace rrs
