#include "core/engine.h"

#include <algorithm>

#include "core/pending.h"
#include "util/check.h"

namespace rrs {

EngineResult run_policy(ArrivalSource& source, Policy& policy,
                        const EngineOptions& options) {
  // Validate every option up front: a bad combination must fail loudly
  // here, not as silent misbehavior rounds later.
  RRS_REQUIRE(options.num_resources >= 1, "need at least one resource");
  RRS_REQUIRE(options.speed >= 1, "speed must be >= 1");
  RRS_REQUIRE(options.replication >= 1, "replication must be >= 1");
  RRS_REQUIRE(options.num_resources % options.replication == 0,
              "num_resources (" << options.num_resources
                                << ") must be divisible by replication ("
                                << options.replication << ")");

  // Rounds carrying arrivals: the source's horizon, clipped by max_rounds.
  Round arrival_end = options.max_rounds;
  if (arrival_end == kInfiniteHorizon) {
    arrival_end = source.horizon();
    RRS_REQUIRE(arrival_end != kInfiniteHorizon,
                "running an infinite source needs EngineOptions::max_rounds; "
                "got " << source.summary());
  } else if (source.finite()) {
    arrival_end = std::min(arrival_end, source.horizon());
  }
  RRS_REQUIRE(arrival_end >= 0,
              "EngineOptions::max_rounds must be >= 0, resolved to "
                  << arrival_end);

  PendingJobs pending;
  pending.reset(source.num_colors());
  CacheAssignment cache(options.num_resources, options.replication);
  cache.ensure_colors(source.num_colors());

  EngineResult result;
  result.schedule.num_resources = options.num_resources;
  result.schedule.speed = options.speed;

  policy.begin(source, options.num_resources, options.speed);

  PendingJobs::DropResult dropped;  // reused across rounds: no per-round
                                    // allocation once capacities settle
  // High-water mark over ingested deadlines: once arrivals end, draining
  // runs until every pending job has executed or expired (deadline <= k).
  Round max_deadline = 0;
  Round k = 0;
  while (k < arrival_end ||
         (options.drain_pending && pending.total() > 0 && max_deadline > k)) {
    // Phase 1: drop.
    pending.drop_expired(k, dropped);
    for (const auto& [color, count] : dropped.by_color) {
      result.cost.drops += static_cast<Cost>(count) * source.drop_cost(color);
    }

    // Phase 2: arrival.
    std::span<const Job> arrivals;
    if (k < arrival_end) arrivals = source.arrivals_in_round(k);
    for (const Job& job : arrivals) {
      pending.add(job);
      max_deadline = std::max(max_deadline, job.deadline());
    }
    result.arrived += static_cast<std::int64_t>(arrivals.size());
    result.peak_pending = std::max(result.peak_pending, pending.total());

    for (int mini = 0; mini < options.speed; ++mini) {
      // Phases 3+4 fused into one policy call: the policy ingests drops and
      // arrivals (on mini 0) and mutates the cache, all in one dispatch.
      cache.begin_phase();
      RoundContext ctx(k, mini, /*final_sweep=*/false, dropped, arrivals,
                       source, pending, cache);
      policy.on_round(ctx);
      for (const auto& [location, color] : cache.finish_phase()) {
        ++result.cost.reconfig_events;
        if (options.record_schedule) {
          result.schedule.reconfigs.push_back(
              {k, mini, location, color});
        }
      }

      // Execution — one pending job (earliest deadline first) per
      // configured resource.
      for (int r = 0; r < options.num_resources; ++r) {
        const ColorId color = cache.color_at(r);
        if (color == kBlack || pending.idle(color)) continue;
        const JobId job = pending.pop_earliest(color);
        ++result.executed;
        if (options.record_schedule) {
          result.schedule.execs.push_back({k, mini, r, job});
        }
      }
    }
    ++k;
  }

  // Final drop phase at round `k`: without draining every remaining pending
  // job has deadline exactly arrival_end == k; with draining the loop exits
  // once all deadlines are <= k.  Either way they expire now, and policies
  // see this sweep (final_sweep() == true, cache read-only) so their drop
  // accounting matches the engine's.
  pending.drop_expired(k, dropped);
  for (const auto& [color, count] : dropped.by_color) {
    result.cost.drops += static_cast<Cost>(count) * source.drop_cost(color);
  }
  RoundContext final_ctx(k, 0, /*final_sweep=*/true, dropped, {}, source,
                         pending, cache);
  policy.on_round(final_ctx);

  result.rounds = k;
  result.cost.reconfig_cost = result.cost.reconfig_events * source.delta();
  result.policy_stats = policy.stats();
  return result;
}

EngineResult run_policy(const Instance& instance, Policy& policy,
                        const EngineOptions& options) {
  MaterializedSource source(instance);
  return run_policy(source, policy, options);
}

}  // namespace rrs
