#include "core/engine.h"

#include "core/pending.h"
#include "util/check.h"

namespace rrs {

EngineResult run_policy(const Instance& instance, Policy& policy,
                        const EngineOptions& options) {
  RRS_REQUIRE(options.num_resources >= 1, "need at least one resource");
  RRS_REQUIRE(options.speed >= 1, "speed must be >= 1");

  PendingJobs pending;
  pending.reset(instance.num_colors());
  CacheAssignment cache(options.num_resources, options.replication);
  cache.ensure_colors(instance.num_colors());
  EngineView view(instance, pending, cache);

  EngineResult result;
  result.schedule.num_resources = options.num_resources;
  result.schedule.speed = options.speed;

  Cost executed_weight = 0;
  policy.begin(instance, options.num_resources, options.speed);

  const Round horizon = instance.horizon();
  for (Round k = 0; k < horizon; ++k) {
    // Phase 1: drop.
    const PendingJobs::DropResult dropped = pending.drop_expired(k);
    policy.on_drop_phase(k, dropped, view);

    // Phase 2: arrival.
    const std::span<const Job> arrivals = instance.arrivals_in_round(k);
    for (const Job& job : arrivals) pending.add(job);
    policy.on_arrival_phase(k, arrivals, view);

    for (int mini = 0; mini < options.speed; ++mini) {
      // Phase 3: reconfiguration.
      cache.begin_phase();
      policy.reconfigure(k, mini, view, cache);
      for (const auto& [location, color] : cache.finish_phase()) {
        ++result.cost.reconfig_events;
        if (options.record_schedule) {
          result.schedule.reconfigs.push_back(
              {k, mini, location, color});
        }
      }

      // Phase 4: execution — one pending job (earliest deadline first) per
      // configured resource.
      for (int r = 0; r < options.num_resources; ++r) {
        const ColorId color = cache.color_at(r);
        if (color == kBlack || pending.idle(color)) continue;
        const JobId job = pending.pop_earliest(color);
        ++result.executed;
        executed_weight +=
            instance.jobs()[static_cast<std::size_t>(job)].drop_cost;
        if (options.record_schedule) {
          result.schedule.execs.push_back({k, mini, r, job});
        }
      }
    }
  }

  // Final drop phase at round `horizon`: every remaining pending job has
  // deadline exactly horizon (the loop's drop phases handled everything
  // earlier), so they expire now.  Policies see this sweep so their drop
  // accounting matches the engine's.
  const PendingJobs::DropResult final_drops = pending.drop_expired(horizon);
  policy.on_drop_phase(horizon, final_drops, view);

  result.cost.reconfig_cost = result.cost.reconfig_events * instance.delta();
  // Drop cost = total drop weight of jobs never executed (equals the job
  // count difference in the paper's unit-cost setting).
  result.cost.drops = instance.total_weight() - executed_weight;
  result.policy_stats = policy.stats();
  return result;
}

}  // namespace rrs
