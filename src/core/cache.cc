#include "core/cache.h"

#include <algorithm>

#include "core/checkpoint.h"
#include "util/check.h"

namespace rrs {

CacheAssignment::CacheAssignment(int num_resources, int replication)
    : replication_(replication) {
  RRS_REQUIRE(num_resources >= 0, "negative resource count");
  RRS_REQUIRE(replication >= 1, "replication must be >= 1");
  RRS_REQUIRE(num_resources % replication == 0,
              "num_resources (" << num_resources
                                << ") must be divisible by replication ("
                                << replication << ")");
  physical_.assign(static_cast<std::size_t>(num_resources), kBlack);
  phase_start_ = physical_;
  dirty_flag_.assign(static_cast<std::size_t>(num_resources), 0);
  down_flag_.assign(static_cast<std::size_t>(num_resources), 0);
  rebuild_free_locations();
}

void CacheAssignment::rebuild_free_locations() {
  const int n = num_resources();
  free_locations_.resize(static_cast<std::size_t>(n));
  // Keep low-numbered locations on top of the stack so the layout matches
  // the paper's "first half of the cache" narration for fresh inserts.
  for (int i = 0; i < n; ++i) {
    free_locations_[static_cast<std::size_t>(n - 1 - i)] = i;
  }
}

void CacheAssignment::ensure_colors(ColorId num_colors) {
  if (static_cast<std::size_t>(num_colors) > stamp_.size()) {
    stamp_.resize(static_cast<std::size_t>(num_colors), 0);
    slot_of_.resize(static_cast<std::size_t>(num_colors), -1);
  }
}

void CacheAssignment::reset() {
  RRS_CHECK(!in_phase_);
  ++epoch_;  // invalidates every color's stamp in O(1)
  cached_.clear();
  locations_.clear();
  std::fill(physical_.begin(), physical_.end(), kBlack);
  phase_start_ = physical_;
  std::fill(dirty_flag_.begin(), dirty_flag_.end(), 0);
  std::fill(down_flag_.begin(), down_flag_.end(), 0);
  num_down_ = 0;
  dirty_.clear();
  rebuild_free_locations();
}

bool CacheAssignment::location_down(int location) const {
  RRS_REQUIRE(location >= 0 && location < num_resources(),
              "location out of range");
  return down_flag_[static_cast<std::size_t>(location)] != 0;
}

ColorId CacheAssignment::fail_location(int location) {
  RRS_CHECK(!in_phase_);
  RRS_CHECK_MSG(!location_down(location),
                "fail of already-down location " << location);
  const auto loc = static_cast<std::size_t>(location);
  ColorId evicted = kBlack;
  auto free_it =
      std::find(free_locations_.begin(), free_locations_.end(), location);
  if (free_it != free_locations_.end()) {
    free_locations_.erase(free_it);
  } else {
    // Claimed: evict the occupying color (its siblings are freed without
    // recoloring), then pull the failed location back out of the pool.
    const auto claim_it =
        std::find(locations_.begin(), locations_.end(), location);
    RRS_CHECK(claim_it != locations_.end());
    const auto slot = static_cast<std::size_t>(claim_it - locations_.begin()) /
                      static_cast<std::size_t>(replication_);
    evicted = cached_[slot];
    erase_from_set(evicted);
    free_it =
        std::find(free_locations_.begin(), free_locations_.end(), location);
    RRS_CHECK(free_it != free_locations_.end());
    free_locations_.erase(free_it);
  }
  down_flag_[loc] = 1;
  ++num_down_;
  // Contents are lost; outside a phase phase_start_ mirrors physical_.
  physical_[loc] = kBlack;
  phase_start_[loc] = kBlack;
  return evicted;
}

void CacheAssignment::repair_location(int location) {
  RRS_CHECK(!in_phase_);
  RRS_CHECK_MSG(location_down(location),
                "repair of up location " << location);
  down_flag_[static_cast<std::size_t>(location)] = 0;
  --num_down_;
  // Rejoins the pool physically black: re-imaging it is a normal Delta
  // recoloring, never a free reclaim.
  free_locations_.push_back(location);
}

ColorId CacheAssignment::color_at(int location) const {
  RRS_REQUIRE(location >= 0 && location < num_resources(),
              "location out of range");
  return physical_[static_cast<std::size_t>(location)];
}

void CacheAssignment::begin_phase() {
  RRS_CHECK(!in_phase_);
  in_phase_ = true;
  dirty_.clear();
}

void CacheAssignment::insert(ColorId color) {
  RRS_CHECK(in_phase_);
  ensure_colors(color + 1);
  RRS_CHECK_MSG(!contains(color), "insert of already-cached color " << color);
  RRS_CHECK_MSG(!full(), "cache full inserting color " << color);

  const auto slot = static_cast<std::int32_t>(cached_.size());
  for (int r = 0; r < replication_; ++r) {
    // Prefer a free location still physically colored `color`: reclaiming it
    // costs nothing.
    int chosen = -1;
    for (std::size_t i = free_locations_.size(); i-- > 0;) {
      if (physical_[static_cast<std::size_t>(free_locations_[i])] == color) {
        chosen = free_locations_[i];
        free_locations_.erase(free_locations_.begin() +
                              static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (chosen < 0) {
      RRS_CHECK(!free_locations_.empty());
      chosen = free_locations_.back();
      free_locations_.pop_back();
    }
    const auto loc = static_cast<std::size_t>(chosen);
    if (physical_[loc] != color) {
      if (!dirty_flag_[loc]) {
        dirty_flag_[loc] = 1;
        dirty_.push_back(chosen);
        phase_start_[loc] = physical_[loc];
      }
      physical_[loc] = color;
    }
    locations_.push_back(chosen);
  }
  stamp_[idx(color)] = epoch_;
  slot_of_[idx(color)] = slot;
  cached_.push_back(color);
}

void CacheAssignment::erase(ColorId color) {
  RRS_CHECK(in_phase_);
  RRS_CHECK_MSG(contains(color), "erase of non-cached color " << color);
  erase_from_set(color);
}

void CacheAssignment::erase_from_set(ColorId color) {
  const auto slot = static_cast<std::size_t>(slot_of_[idx(color)]);
  const auto rep = static_cast<std::size_t>(replication_);
  for (std::size_t i = 0; i < rep; ++i) {
    free_locations_.push_back(locations_[slot * rep + i]);
  }
  // Swap-remove: the last slot's color and location block move into the
  // vacated slot.
  const std::size_t last = cached_.size() - 1;
  const ColorId moved = cached_[last];
  cached_[slot] = moved;
  slot_of_[idx(moved)] = static_cast<std::int32_t>(slot);
  for (std::size_t i = 0; i < rep; ++i) {
    locations_[slot * rep + i] = locations_[last * rep + i];
  }
  cached_.pop_back();
  locations_.resize(last * rep);
  stamp_[idx(color)] = 0;
  slot_of_[idx(color)] = -1;
}

void CacheAssignment::checkpoint(CheckpointWriter& w) const {
  RRS_CHECK_MSG(!in_phase_, "checkpoint inside a reconfiguration phase");
  w.i64(num_resources());
  w.i64(replication_);
  for (const ColorId c : physical_) w.i64(c);
  for (const char d : down_flag_) w.boolean(d != 0);
  w.u64(free_locations_.size());
  for (const int loc : free_locations_) w.i64(loc);
  w.u64(cached_.size());
  const auto rep = static_cast<std::size_t>(replication_);
  for (std::size_t slot = 0; slot < cached_.size(); ++slot) {
    w.i64(cached_[slot]);
    for (std::size_t i = 0; i < rep; ++i) w.i64(locations_[slot * rep + i]);
  }
}

void CacheAssignment::restore_checkpoint(CheckpointReader& r) {
  RRS_CHECK_MSG(!in_phase_ && cached_.empty() && num_down_ == 0,
                "checkpoint restore into a non-fresh cache assignment");
  const int n = num_resources();
  RRS_REQUIRE(r.i64() == n && r.i64() == replication_,
              "checkpoint cache geometry mismatch (this engine has n="
                  << n << ", replication=" << replication_ << ")");
  for (auto& c : physical_) {
    const std::int64_t v = r.i64();
    RRS_REQUIRE(v >= kBlack && v < (std::int64_t{1} << 31),
                "checkpoint cache physical color " << v);
    c = static_cast<ColorId>(v);
  }
  phase_start_ = physical_;
  // Location accounting: every location must land in exactly one of the
  // free stack, a cached slot's claim block, or the down set.
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (std::size_t loc = 0; loc < down_flag_.size(); ++loc) {
    down_flag_[loc] = r.boolean() ? 1 : 0;
    if (down_flag_[loc] != 0) {
      ++num_down_;
      seen[loc] = 1;
      RRS_REQUIRE(physical_[loc] == kBlack,
                  "checkpoint cache: down location " << loc
                                                     << " not blank");
    }
  }
  const std::uint64_t free_count = r.u64();
  RRS_REQUIRE(free_count <= static_cast<std::uint64_t>(n),
              "checkpoint cache free-stack size " << free_count);
  free_locations_.clear();
  for (std::uint64_t i = 0; i < free_count; ++i) {
    const std::int64_t loc = r.i64();
    RRS_REQUIRE(loc >= 0 && loc < n && seen[static_cast<std::size_t>(loc)] == 0,
                "checkpoint cache free location " << loc);
    seen[static_cast<std::size_t>(loc)] = 1;
    free_locations_.push_back(static_cast<int>(loc));
  }
  const std::uint64_t slots = r.u64();
  RRS_REQUIRE(slots * static_cast<std::uint64_t>(replication_) <=
                  static_cast<std::uint64_t>(n),
              "checkpoint cache slot count " << slots);
  const auto rep = static_cast<std::size_t>(replication_);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    const std::int64_t color = r.i64();
    RRS_REQUIRE(color >= 0 && color < (std::int64_t{1} << 31),
                "checkpoint cache cached color " << color);
    const auto c = static_cast<ColorId>(color);
    ensure_colors(c + 1);
    RRS_REQUIRE(stamp_[idx(c)] != epoch_,
                "checkpoint cache: color " << c << " cached twice");
    stamp_[idx(c)] = epoch_;
    slot_of_[idx(c)] = static_cast<std::int32_t>(slot);
    cached_.push_back(c);
    for (std::size_t i = 0; i < rep; ++i) {
      const std::int64_t loc = r.i64();
      RRS_REQUIRE(
          loc >= 0 && loc < n && seen[static_cast<std::size_t>(loc)] == 0,
          "checkpoint cache claimed location " << loc);
      seen[static_cast<std::size_t>(loc)] = 1;
      locations_.push_back(static_cast<int>(loc));
    }
  }
  RRS_REQUIRE(std::all_of(seen.begin(), seen.end(),
                          [](char s) { return s != 0; }),
              "checkpoint cache: free/claimed/down sets do not cover every "
              "location");
}

std::span<const std::pair<int, ColorId>> CacheAssignment::finish_phase() {
  RRS_CHECK(in_phase_);
  in_phase_ = false;
  event_scratch_.clear();
  for (const int loc : dirty_) {
    const auto l = static_cast<std::size_t>(loc);
    dirty_flag_[l] = 0;
    if (physical_[l] != phase_start_[l]) {
      event_scratch_.push_back({loc, physical_[l], phase_start_[l]});
    }
    phase_start_[l] = physical_[l];
  }
  // Locations are unique within a phase, so sorting by location alone
  // reproduces the old (location, color) pair order exactly.
  std::sort(event_scratch_.begin(), event_scratch_.end(),
            [](const PhaseEvent& a, const PhaseEvent& b) {
              return a.location < b.location;
            });
  events_.clear();
  events_from_.clear();
  for (const PhaseEvent& e : event_scratch_) {
    events_.emplace_back(e.location, e.to);
    events_from_.push_back(e.from);
  }
  return events_;
}

}  // namespace rrs
