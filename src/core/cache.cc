#include "core/cache.h"

#include <algorithm>

#include "util/check.h"

namespace rrs {

CacheAssignment::CacheAssignment(int num_resources, int replication)
    : replication_(replication) {
  RRS_REQUIRE(num_resources >= 0, "negative resource count");
  RRS_REQUIRE(replication >= 1, "replication must be >= 1");
  RRS_REQUIRE(num_resources % replication == 0,
              "num_resources (" << num_resources
                                << ") must be divisible by replication ("
                                << replication << ")");
  physical_.assign(static_cast<std::size_t>(num_resources), kBlack);
  phase_start_ = physical_;
  dirty_flag_.assign(static_cast<std::size_t>(num_resources), 0);
  free_locations_.resize(static_cast<std::size_t>(num_resources));
  // Keep low-numbered locations on top of the stack so the layout matches
  // the paper's "first half of the cache" narration for fresh inserts.
  for (int i = 0; i < num_resources; ++i) {
    free_locations_[static_cast<std::size_t>(num_resources - 1 - i)] = i;
  }
}

void CacheAssignment::ensure_colors(ColorId num_colors) {
  if (static_cast<std::size_t>(num_colors) > cached_pos_.size()) {
    cached_pos_.resize(static_cast<std::size_t>(num_colors), -1);
    locations_.resize(static_cast<std::size_t>(num_colors));
  }
}

bool CacheAssignment::contains(ColorId color) const {
  return color >= 0 && idx(color) < cached_pos_.size() &&
         cached_pos_[idx(color)] >= 0;
}

ColorId CacheAssignment::color_at(int location) const {
  RRS_REQUIRE(location >= 0 && location < num_resources(),
              "location out of range");
  return physical_[static_cast<std::size_t>(location)];
}

void CacheAssignment::begin_phase() {
  RRS_CHECK(!in_phase_);
  in_phase_ = true;
  dirty_.clear();
}

void CacheAssignment::insert(ColorId color) {
  RRS_CHECK(in_phase_);
  ensure_colors(color + 1);
  RRS_CHECK_MSG(!contains(color), "insert of already-cached color " << color);
  RRS_CHECK_MSG(!full(), "cache full inserting color " << color);

  auto& locs = locations_[idx(color)];
  RRS_CHECK(locs.empty());
  for (int r = 0; r < replication_; ++r) {
    // Prefer a free location still physically colored `color`: reclaiming it
    // costs nothing.
    int chosen = -1;
    for (std::size_t i = free_locations_.size(); i-- > 0;) {
      if (physical_[static_cast<std::size_t>(free_locations_[i])] == color) {
        chosen = free_locations_[i];
        free_locations_.erase(free_locations_.begin() +
                              static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (chosen < 0) {
      RRS_CHECK(!free_locations_.empty());
      chosen = free_locations_.back();
      free_locations_.pop_back();
    }
    const auto loc = static_cast<std::size_t>(chosen);
    if (physical_[loc] != color) {
      if (!dirty_flag_[loc]) {
        dirty_flag_[loc] = 1;
        dirty_.push_back(chosen);
        phase_start_[loc] = physical_[loc];
      }
      physical_[loc] = color;
    }
    locs.push_back(chosen);
  }
  cached_pos_[idx(color)] = static_cast<std::int32_t>(cached_.size());
  cached_.push_back(color);
}

void CacheAssignment::erase(ColorId color) {
  RRS_CHECK(in_phase_);
  RRS_CHECK_MSG(contains(color), "erase of non-cached color " << color);
  auto& locs = locations_[idx(color)];
  for (const int loc : locs) free_locations_.push_back(loc);
  locs.clear();
  // Swap-remove from the logical set.
  const auto pos = static_cast<std::size_t>(cached_pos_[idx(color)]);
  const ColorId moved = cached_.back();
  cached_[pos] = moved;
  cached_pos_[idx(moved)] = static_cast<std::int32_t>(pos);
  cached_.pop_back();
  cached_pos_[idx(color)] = -1;
}

std::vector<std::pair<int, ColorId>> CacheAssignment::finish_phase() {
  RRS_CHECK(in_phase_);
  in_phase_ = false;
  std::vector<std::pair<int, ColorId>> events;
  events.reserve(dirty_.size());
  for (const int loc : dirty_) {
    const auto l = static_cast<std::size_t>(loc);
    dirty_flag_[l] = 0;
    if (physical_[l] != phase_start_[l]) {
      events.emplace_back(loc, physical_[l]);
    }
    phase_start_[l] = physical_[l];
  }
  std::sort(events.begin(), events.end());
  return events;
}

}  // namespace rrs
