#include "core/fault_plan.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace rrs {

namespace {

/// Exponential interval of mean `mean`, floored to a whole round and at
/// least 1 so consecutive events never collide on the same resource.
Round exp_interval(Rng& rng, double mean) {
  const double u = 1.0 - rng.uniform01();  // in (0, 1]: log() stays finite
  return 1 + static_cast<Round>(-std::log(u) * mean);
}

}  // namespace

void validate_fault_plan(const FaultPlan& plan, int num_resources) {
  // state per resource: 0 = up, 1 = down.
  std::vector<char> down(static_cast<std::size_t>(num_resources), 0);
  bool saw_explicit = false;
  bool saw_hottest = false;
  std::int64_t hottest_down = 0;
  Round prev_round = 0;
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& ev = plan.events[i];
    RRS_REQUIRE(ev.round >= 0,
                "fault event " << i << " has negative round " << ev.round);
    RRS_REQUIRE(i == 0 || ev.round >= prev_round,
                "fault events must be sorted by round; event "
                    << i << " at round " << ev.round << " follows round "
                    << prev_round);
    prev_round = ev.round;
    if (ev.resource == kHottestResource) {
      saw_hottest = true;
      if (ev.fail) {
        ++hottest_down;
      } else {
        RRS_REQUIRE(hottest_down > 0,
                    "fault event " << i << " repairs a hottest-mode resource "
                                   << "but none is down");
        --hottest_down;
      }
    } else {
      saw_explicit = true;
      RRS_REQUIRE(ev.resource >= 0 && ev.resource < num_resources,
                  "fault event " << i << " targets resource " << ev.resource
                                 << ", outside [0, " << num_resources << ")");
      const auto r = static_cast<std::size_t>(ev.resource);
      RRS_REQUIRE(down[r] != (ev.fail ? 1 : 0),
                  "fault event " << i << (ev.fail ? " fails" : " repairs")
                                 << " resource " << ev.resource
                                 << ", which is already "
                                 << (ev.fail ? "down" : "up"));
      down[r] = ev.fail ? 1 : 0;
    }
    RRS_REQUIRE(!(saw_explicit && saw_hottest),
                "fault plans may not mix explicit resource indices with "
                "kHottestResource events");
  }
}

FaultPlan make_mtbf_plan(const MtbfParams& params) {
  RRS_REQUIRE(params.num_resources >= 1, "need at least one resource");
  RRS_REQUIRE(params.horizon >= 0, "horizon must be >= 0");
  RRS_REQUIRE(params.mean_up > 0 && params.mean_down > 0,
              "mean_up and mean_down must be positive");
  FaultPlan plan;
  std::uint64_t sm = params.seed;
  for (int r = 0; r < params.num_resources; ++r) {
    Rng rng(splitmix64(sm));  // one independent stream per resource
    Round t = exp_interval(rng, params.mean_up);
    while (t < params.horizon) {
      plan.events.push_back({t, r, /*fail=*/true});
      const Round back_up = t + exp_interval(rng, params.mean_down);
      if (back_up >= params.horizon) break;  // stays down to the end
      plan.events.push_back({back_up, r, /*fail=*/false});
      t = back_up + exp_interval(rng, params.mean_up);
    }
  }
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.round < b.round; });
  return plan;
}

FaultPlan make_rack_burst_plan(const RackBurstParams& params) {
  RRS_REQUIRE(params.num_resources >= 1, "need at least one resource");
  RRS_REQUIRE(params.rack_size >= 1 &&
                  params.num_resources % params.rack_size == 0,
              "num_resources (" << params.num_resources
                                << ") must be divisible by rack_size ("
                                << params.rack_size << ")");
  RRS_REQUIRE(params.first >= 0, "first burst round must be >= 0");
  RRS_REQUIRE(params.outage >= 1, "outage must be >= 1 round");
  RRS_REQUIRE(params.period > params.outage,
              "period (" << params.period << ") must exceed outage ("
                         << params.outage
                         << ") so a rack repairs before the next burst");
  FaultPlan plan;
  Rng rng(params.seed);
  const int num_racks = params.num_resources / params.rack_size;
  // Emission order is already round-sorted: each burst's repairs land
  // before the next burst's failures because outage < period.
  for (Round t = params.first; t < params.horizon; t += params.period) {
    const auto rack = static_cast<int>(rng.uniform(0, num_racks - 1));
    const int base = rack * params.rack_size;
    for (int i = 0; i < params.rack_size; ++i) {
      plan.events.push_back({t, base + i, /*fail=*/true});
    }
    if (t + params.outage >= params.horizon) continue;  // down to the end
    for (int i = 0; i < params.rack_size; ++i) {
      plan.events.push_back({t + params.outage, base + i, /*fail=*/false});
    }
  }
  return plan;
}

FaultPlan make_adversarial_plan(const AdversarialParams& params) {
  RRS_REQUIRE(params.first >= 0, "first failure round must be >= 0");
  RRS_REQUIRE(params.period >= 1, "period must be >= 1 round");
  RRS_REQUIRE(params.outage >= 1, "outage must be >= 1 round");
  FaultPlan plan;
  for (Round t = params.first; t < params.horizon; t += params.period) {
    plan.events.push_back({t, kHottestResource, /*fail=*/true});
    if (t + params.outage < params.horizon) {
      plan.events.push_back({t + params.outage, kHottestResource,
                             /*fail=*/false});
    }
  }
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.round < b.round; });
  return plan;
}

std::vector<FaultPlan> split_fault_plan(const FaultPlan& plan,
                                        std::span<const int> shard_resources) {
  std::vector<Round> offsets(shard_resources.size() + 1, 0);
  for (std::size_t s = 0; s < shard_resources.size(); ++s) {
    RRS_REQUIRE(shard_resources[s] >= 0, "negative shard resource count");
    offsets[s + 1] = offsets[s] + shard_resources[s];
  }
  std::vector<FaultPlan> shards(shard_resources.size());
  for (const FaultEvent& ev : plan.events) {
    if (ev.resource == kHottestResource) {
      // Resource-agnostic: every shard fails/repairs its own hottest.
      for (FaultPlan& shard : shards) shard.events.push_back(ev);
      continue;
    }
    RRS_REQUIRE(ev.resource >= 0 && ev.resource < offsets.back(),
                "fault event resource " << ev.resource << " outside [0, "
                                        << offsets.back() << ")");
    const auto s = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.end(), ev.resource) -
        offsets.begin() - 1);
    FaultEvent local = ev;
    local.resource = ev.resource - static_cast<int>(offsets[s]);
    shards[s].events.push_back(local);
  }
  return shards;
}

}  // namespace rrs
