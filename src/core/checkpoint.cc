#include "core/checkpoint.h"

#include <array>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "util/check.h"

namespace rrs {
namespace {

constexpr char kMagic[8] = {'R', 'R', 'S', 'C', 'K', 'P', 'T', '\n'};
constexpr char kTrailer[8] = {'R', 'R', 'S', 'E', 'N', 'D', '\n', '\0'};

/// Payloads beyond this are rejected outright: no legitimate checkpoint
/// in this codebase approaches it, and it bounds the allocation a
/// corrupt length field can trigger.
constexpr std::uint64_t kMaxPayload = 1ULL << 30;

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

void put_u32(std::vector<unsigned char>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFU));
  }
}

void put_u64(std::vector<unsigned char>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFU));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const unsigned char* data, std::size_t size) {
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ data[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

void CheckpointWriter::begin_section(std::uint32_t tag) {
  put_u32(buf_, tag);
  open_.push_back(buf_.size());
  put_u64(buf_, 0);  // patched by end_section
}

void CheckpointWriter::end_section() {
  RRS_CHECK_MSG(!open_.empty(), "end_section without begin_section");
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - at - 8;
  for (int i = 0; i < 8; ++i) {
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((len >> (8 * i)) & 0xFFU);
  }
}

void CheckpointWriter::u8(std::uint8_t v) { buf_.push_back(v); }
void CheckpointWriter::u32(std::uint32_t v) { put_u32(buf_, v); }
void CheckpointWriter::u64(std::uint64_t v) { put_u64(buf_, v); }

void CheckpointWriter::i64(std::int64_t v) {
  put_u64(buf_, static_cast<std::uint64_t>(v));
}

void CheckpointWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  put_u64(buf_, bits);
}

void CheckpointWriter::boolean(bool v) {
  buf_.push_back(v ? static_cast<unsigned char>(1)
                   : static_cast<unsigned char>(0));
}

void CheckpointWriter::str(std::string_view v) {
  put_u64(buf_, v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void CheckpointWriter::finish(std::ostream& out) {
  RRS_CHECK_MSG(open_.empty(), "finish with " << open_.size()
                                              << " unclosed sections");
  std::vector<unsigned char> head;
  head.insert(head.end(), kMagic, kMagic + 8);
  put_u32(head, kCheckpointMajor);
  put_u32(head, kCheckpointMinor);
  put_u64(head, buf_.size());
  put_u32(head, crc32(buf_.data(), buf_.size()));
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  out.write(reinterpret_cast<const char*>(buf_.data()),
            static_cast<std::streamsize>(buf_.size()));
  out.write(kTrailer, 8);
  out.flush();
  RRS_REQUIRE(out.good(), "short write emitting checkpoint ("
                              << buf_.size() << " payload bytes)");
}

CheckpointReader::CheckpointReader(std::istream& in) {
  std::array<unsigned char, 28> head{};
  in.read(reinterpret_cast<char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  RRS_REQUIRE(in.gcount() == static_cast<std::streamsize>(head.size()),
              "checkpoint truncated inside the header");
  RRS_REQUIRE(std::memcmp(head.data(), kMagic, 8) == 0,
              "not a checkpoint: bad magic");
  const std::uint32_t major = get_u32(head.data() + 8);
  minor_ = get_u32(head.data() + 12);
  RRS_REQUIRE(major == kCheckpointMajor,
              "checkpoint layout version " << major << " unsupported (this "
                                           << "build reads major "
                                           << kCheckpointMajor << ")");
  const std::uint64_t len = get_u64(head.data() + 16);
  RRS_REQUIRE(len <= kMaxPayload,
              "checkpoint payload length " << len << " exceeds the "
                                           << kMaxPayload << "-byte cap");
  const std::uint32_t want_crc = get_u32(head.data() + 24);
  payload_.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    in.read(reinterpret_cast<char*>(payload_.data()),
            static_cast<std::streamsize>(len));
    RRS_REQUIRE(in.gcount() == static_cast<std::streamsize>(len),
                "checkpoint truncated inside the payload (wanted "
                    << len << " bytes)");
  }
  char trailer[8] = {};
  in.read(trailer, 8);
  RRS_REQUIRE(in.gcount() == 8 && std::memcmp(trailer, kTrailer, 8) == 0,
              "checkpoint truncated or corrupt: bad trailer");
  const std::uint32_t got_crc = crc32(payload_.data(), payload_.size());
  RRS_REQUIRE(got_crc == want_crc,
              "checkpoint CRC mismatch: stored " << want_crc << ", computed "
                                                 << got_crc);
}

void CheckpointReader::need(std::size_t bytes) const {
  const std::size_t end = ends_.empty() ? payload_.size() : ends_.back();
  RRS_REQUIRE(bytes <= end - pos_,
              "checkpoint underrun: wanted " << bytes << " bytes, "
                                             << (end - pos_) << " left");
}

void CheckpointReader::open_section(std::uint32_t tag) {
  need(12);
  const std::uint32_t got = get_u32(payload_.data() + pos_);
  RRS_REQUIRE(got == tag, "checkpoint section tag mismatch: wanted "
                              << tag << ", found " << got);
  const std::uint64_t len = get_u64(payload_.data() + pos_ + 4);
  pos_ += 12;
  const std::size_t end = ends_.empty() ? payload_.size() : ends_.back();
  RRS_REQUIRE(len <= end - pos_, "checkpoint section " << tag
                                                       << " overruns its "
                                                       << "container");
  ends_.push_back(pos_ + static_cast<std::size_t>(len));
}

void CheckpointReader::close_section() {
  RRS_CHECK_MSG(!ends_.empty(), "close_section without open_section");
  pos_ = ends_.back();  // skip any additive tail this build doesn't know
  ends_.pop_back();
}

std::uint8_t CheckpointReader::u8() {
  need(1);
  return payload_[pos_++];
}

std::uint32_t CheckpointReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(payload_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t CheckpointReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(payload_.data() + pos_);
  pos_ += 8;
  return v;
}

std::int64_t CheckpointReader::i64() {
  return static_cast<std::int64_t>(u64());
}

double CheckpointReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, 8);
  return v;
}

bool CheckpointReader::boolean() {
  const std::uint8_t v = u8();
  RRS_REQUIRE(v <= 1, "checkpoint bool field holds " << int{v});
  return v == 1;
}

std::string CheckpointReader::str() {
  const std::uint64_t len = u64();
  need(static_cast<std::size_t>(len));
  std::string out(reinterpret_cast<const char*>(payload_.data() + pos_),
                  static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

std::uint64_t CheckpointReader::remaining() const {
  const std::size_t end = ends_.empty() ? payload_.size() : ends_.back();
  return end - pos_;
}

}  // namespace rrs
