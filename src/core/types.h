// Fundamental vocabulary types for reconfigurable resource scheduling.
//
// Terminology follows the paper (Plaxton, Sun, Tiwari, Vin: "Reconfigurable
// Resource Scheduling with Variable Delay Bounds"):
//   * a *color* is a job category; resources must be configured to a job's
//     color to execute it;
//   * time advances in integer *rounds*, each with four phases
//     (drop -> arrival -> reconfiguration -> execution);
//   * *black* is the initial color of every resource; no job is black.
#pragma once

#include <cstdint>

namespace rrs {

/// Index of a job category.  Valid colors are >= 0; kBlack marks an
/// unconfigured resource.
using ColorId = std::int32_t;

/// The color every resource starts with; jobs are never black.
inline constexpr ColorId kBlack = -1;

/// Round index (time).  Signed so "one before round 0" is representable in
/// timestamp arithmetic.
using Round = std::int64_t;

/// Identifier of a job, dense within an Instance (index into its job table).
using JobId = std::int64_t;

/// Cost in the paper's unit system: drops cost 1, reconfigurations cost
/// Delta each.
using Cost = std::int64_t;

/// Cost of a run, split by source.
struct CostBreakdown {
  Cost reconfig_events = 0;  ///< number of single-resource recolorings
  /// Sum of Delta(from -> to) over all recolorings.  Equals
  /// reconfig_events * Delta under the scalar cost model (the paper's).
  Cost reconfig_cost = 0;
  /// Total drop cost of jobs never completed (count of dropped jobs under
  /// unit drop costs).
  Cost drops = 0;
  /// Churn-forced reconfigurations (repairs charged under
  /// EngineOptions::charge_repair).  A subset of reconfig_events — already
  /// included in reconfig_cost, so total() is unchanged.  Zero on
  /// fault-free runs.
  Cost churn_reconfigs = 0;

  [[nodiscard]] Cost total() const { return reconfig_cost + drops; }

  friend bool operator==(const CostBreakdown&, const CostBreakdown&) = default;
};

}  // namespace rrs
