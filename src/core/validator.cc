#include "core/validator.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/check.h"

namespace rrs {
namespace {

/// True iff (r1, m1) <= (r2, m2) in mini-round order.
bool at_or_before(Round r1, std::int32_t m1, Round r2, std::int32_t m2) {
  return r1 < r2 || (r1 == r2 && m1 <= m2);
}

/// Totally orders events of one kind by (round, mini).
template <typename Event>
bool event_ordered(const Event& a, const Event& b) {
  return at_or_before(a.round, a.mini, b.round, b.mini);
}

class Validator {
 public:
  Validator(const Instance& instance, const Schedule& schedule,
            int max_errors)
      : inst_(instance), sched_(schedule), max_errors_(max_errors) {}

  ValidationResult run() {
    check_shape();
    if (!fatal_) replay();
    result_.ok = result_.errors.empty();
    if (result_.ok) {
      result_.cost = sched_.cost(inst_);
    }
    return std::move(result_);
  }

 private:
  template <typename... Args>
  void error(Args&&... args) {
    if (static_cast<int>(result_.errors.size()) >= max_errors_) {
      fatal_ = true;
      return;
    }
    std::ostringstream os;
    (os << ... << args);
    result_.errors.push_back(os.str());
  }

  void check_shape() {
    if (sched_.num_resources < 0) error("negative num_resources");
    if (sched_.speed < 1) error("speed must be >= 1");
    for (std::size_t i = 0; i < sched_.reconfigs.size(); ++i) {
      const auto& e = sched_.reconfigs[i];
      if (e.round < 0 || e.round >= inst_.horizon())
        error("reconfig ", i, ": round ", e.round, " outside [0, ",
              inst_.horizon(), ")");
      if (e.mini < 0 || e.mini >= sched_.speed)
        error("reconfig ", i, ": mini ", e.mini, " outside [0, ",
              sched_.speed, ")");
      if (e.resource < 0 || e.resource >= sched_.num_resources)
        error("reconfig ", i, ": resource ", e.resource, " outside [0, ",
              sched_.num_resources, ")");
      if (e.color != kBlack && (e.color < 0 || e.color >= inst_.num_colors()))
        error("reconfig ", i, ": unknown color ", e.color);
      if (i > 0 && !event_ordered(sched_.reconfigs[i - 1], e))
        error("reconfig ", i, ": events not in (round, mini) order");
      if (fatal_) return;
    }
    for (std::size_t i = 0; i < sched_.execs.size(); ++i) {
      const auto& e = sched_.execs[i];
      if (e.round < 0 || e.round >= inst_.horizon())
        error("exec ", i, ": round ", e.round, " outside horizon");
      if (e.mini < 0 || e.mini >= sched_.speed)
        error("exec ", i, ": mini ", e.mini, " outside [0, ", sched_.speed,
              ")");
      if (e.resource < 0 || e.resource >= sched_.num_resources)
        error("exec ", i, ": resource ", e.resource, " out of range");
      if (e.job < 0 ||
          e.job >= static_cast<JobId>(inst_.jobs().size()))
        error("exec ", i, ": unknown job ", e.job);
      if (i > 0 && !event_ordered(sched_.execs[i - 1], e))
        error("exec ", i, ": events not in (round, mini) order");
      if (fatal_) return;
    }
  }

  void replay() {
    std::vector<ColorId> config(
        static_cast<std::size_t>(sched_.num_resources), kBlack);
    // Units applied per job: a job may legally receive up to length(color)
    // exec events (exactly one under the paper's unit lengths).
    std::vector<Round> units(inst_.jobs().size(), 0);
    // (resource) -> last (round, mini) with an execution, to detect double
    // booking of a slot.
    std::vector<std::pair<Round, std::int32_t>> last_exec(
        static_cast<std::size_t>(sched_.num_resources), {-1, -1});

    std::size_t ri = 0;  // reconfig cursor
    for (std::size_t ei = 0; ei < sched_.execs.size() && !fatal_; ++ei) {
      const auto& e = sched_.execs[ei];
      // Apply every reconfiguration at or before this execution's
      // mini-round (within a mini-round, reconfiguration precedes
      // execution).
      while (ri < sched_.reconfigs.size() &&
             at_or_before(sched_.reconfigs[ri].round,
                          sched_.reconfigs[ri].mini, e.round, e.mini)) {
        const auto& r = sched_.reconfigs[ri];
        config[static_cast<std::size_t>(r.resource)] = r.color;
        ++ri;
      }

      const Job& job = inst_.jobs()[static_cast<std::size_t>(e.job)];
      if (units[static_cast<std::size_t>(e.job)] >= job.length) {
        error("exec of job ", e.job, " at round ", e.round,
              job.length == 1 ? ": job already executed"
                              : ": job already completed");
      }
      ++units[static_cast<std::size_t>(e.job)];
      if (e.round < job.arrival) {
        error("exec of job ", e.job, " at round ", e.round,
              ": before arrival ", job.arrival);
      }
      if (e.round >= job.deadline()) {
        error("exec of job ", e.job, " at round ", e.round,
              ": at/after deadline ", job.deadline());
      }
      if (config[static_cast<std::size_t>(e.resource)] != job.color) {
        error("exec of job ", e.job, " at round ", e.round, " mini ", e.mini,
              ": resource ", e.resource, " configured to ",
              config[static_cast<std::size_t>(e.resource)], ", job color is ",
              job.color);
      }
      auto& last = last_exec[static_cast<std::size_t>(e.resource)];
      if (last.first == e.round && last.second == e.mini) {
        error("resource ", e.resource, " executes twice in round ", e.round,
              " mini ", e.mini);
      }
      last = {e.round, e.mini};
    }
  }

  const Instance& inst_;
  const Schedule& sched_;
  const int max_errors_;
  bool fatal_ = false;
  ValidationResult result_;
};

}  // namespace

ValidationResult validate(const Instance& instance, const Schedule& schedule,
                          int max_errors) {
  return Validator(instance, schedule, max_errors).run();
}

CostBreakdown validate_or_throw(const Instance& instance,
                                const Schedule& schedule) {
  ValidationResult r = validate(instance, schedule);
  if (!r.ok) {
    std::ostringstream os;
    os << "invalid schedule:";
    for (const auto& e : r.errors) os << "\n  " << e;
    throw InputError(os.str());
  }
  return r.cost;
}

}  // namespace rrs
