// Deterministic capacity-churn schedules for fault-injection runs.
//
// The paper's model assumes a pristine pool of n resources; real fleets
// lose and regain capacity continuously (cf. the reallocation-problem
// line of work: Bender et al., "Reallocation Problems in Scheduling").
// A FaultPlan is a seed-reproducible list of failure/repair events the
// engine applies at the start of each round, before the drop and arrival
// phases: a failed location loses its configured color (the cached color
// occupying it is evicted) and stops executing; a repaired location comes
// back blank (physically black), so re-imaging it costs Delta like any
// other recoloring.
//
// Three generators cover the standard fault models:
//   * make_mtbf_plan       — independent per-resource up/down renewal
//                            processes with exponential MTBF/MTTR;
//   * make_rack_burst_plan — correlated bursts: a whole contiguous rack
//                            fails at once and repairs together;
//   * make_adversarial_plan — "fail the hottest resource": each failure
//                            targets the up resource whose configured
//                            color has the most pending jobs, resolved by
//                            the engine at apply time (kHottestResource).
// All three are pure functions of their parameter structs, so every fault
// experiment is exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace rrs {

/// Sentinel resource index: the engine resolves a failure of
/// kHottestResource to the up location whose configured color has the most
/// pending jobs (ties to the lowest location; black counts as zero), and a
/// repair of kHottestResource to the oldest still-down location failed this
/// way.  A plan uses either explicit indices or the sentinel, never both.
inline constexpr int kHottestResource = -1;

/// One capacity-churn event, applied at the start of `round` before that
/// round's drop and arrival phases.
struct FaultEvent {
  Round round = 0;
  /// Location index in [0, num_resources), or kHottestResource.
  int resource = 0;
  bool fail = true;  ///< true = failure, false = repair

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A failure/repair schedule: events sorted by round, applied in order
/// (within one round, vector order).  Events at rounds the run never
/// reaches are ignored.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Throws InputError unless `plan` is well-formed for a pool of
/// `num_resources` locations: rounds nonnegative and nondecreasing,
/// explicit resource indices in range, every explicit resource alternating
/// failure/repair starting with a failure, and no mixing of explicit
/// indices with kHottestResource events.
void validate_fault_plan(const FaultPlan& plan, int num_resources);

/// Parameters for make_mtbf_plan.
struct MtbfParams {
  int num_resources = 1;
  Round horizon = 0;       ///< events generated in rounds [0, horizon)
  double mean_up = 1000;   ///< mean rounds between failures (MTBF)
  double mean_down = 50;   ///< mean rounds to repair (MTTR)
  std::uint64_t seed = 1;
};

/// Independent per-resource renewal processes: each resource starts up and
/// alternates exponentially distributed up/down intervals (each at least
/// one round).  A resource still down at the horizon stays down.
[[nodiscard]] FaultPlan make_mtbf_plan(const MtbfParams& params);

/// Parameters for make_rack_burst_plan.
struct RackBurstParams {
  int num_resources = 1;
  int rack_size = 4;       ///< resources per contiguous rack
  Round horizon = 0;       ///< bursts generated in rounds [0, horizon)
  Round period = 1000;     ///< rounds between bursts; must exceed `outage`
  Round first = 0;         ///< round of the first burst
  Round outage = 50;       ///< rounds each burst lasts
  std::uint64_t seed = 1;  ///< picks which rack each burst hits
};

/// Correlated rack failures: every `period` rounds one uniformly random
/// rack (a contiguous block of `rack_size` locations) fails in full and
/// repairs `outage` rounds later.  Requires outage < period so a rack is
/// back up before the next burst can hit it.
[[nodiscard]] FaultPlan make_rack_burst_plan(const RackBurstParams& params);

/// Parameters for make_adversarial_plan.
struct AdversarialParams {
  Round horizon = 0;    ///< failures generated in rounds [0, horizon)
  Round period = 100;   ///< rounds between hottest-resource failures
  Round first = 1;      ///< round of the first failure
  Round outage = 10;    ///< rounds until the failed resource repairs
};

/// The adversarial churn mode: every `period` rounds fail the hottest
/// resource (resolved by the engine at apply time), repairing it `outage`
/// rounds later.  Resource-agnostic, so it needs no seed.
[[nodiscard]] FaultPlan make_adversarial_plan(const AdversarialParams& params);

/// Splits a plan over global resource indices into one per-shard plan,
/// where shard s owns the contiguous block of `shard_resources[s]`
/// locations starting at sum(shard_resources[0..s)) — the layout
/// run_streaming_sharded gives its shard engines.  Explicit events map to
/// the owning shard with local indices; kHottestResource events are copied
/// to every shard (each shard fails its own hottest resource).
[[nodiscard]] std::vector<FaultPlan> split_fault_plan(
    const FaultPlan& plan, std::span<const int> shard_resources);

}  // namespace rrs
