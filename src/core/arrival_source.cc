#include "core/arrival_source.h"

#include <algorithm>
#include <sstream>

#include "core/checkpoint.h"
#include "util/check.h"

namespace rrs {

const std::map<Round, std::vector<ColorId>>& ArrivalSource::colors_by_delay()
    const {
  if (!delay_index_built_) {
    for (ColorId c = 0; c < num_colors(); ++c) {
      colors_by_delay_[delay_bound(c)].push_back(c);
    }
    delay_index_built_ = true;
  }
  return colors_by_delay_;
}

const CostModel& ArrivalSource::cost_model() const {
  if (!model_built_) {
    model_.set_delta(delta());
    model_.resize(num_colors());
    for (ColorId c = 0; c < num_colors(); ++c) {
      model_.set_drop_cost(c, drop_cost(c));
      model_.set_length(c, length(c));
    }
    model_built_ = true;
  }
  return model_;
}

std::string ArrivalSource::summary() const {
  std::ostringstream os;
  os << num_colors() << " colors, ";
  if (finite()) {
    os << horizon() << " rounds";
  } else {
    os << "infinite horizon";
  }
  os << ", Delta=" << delta() << " (streaming)";
  return os.str();
}

void ArrivalSource::checkpoint(CheckpointWriter& w) const {
  (void)w;
  RRS_REQUIRE(false, "this arrival source does not support checkpointing: "
                         << summary());
}

void ArrivalSource::restore(CheckpointReader& r) {
  (void)r;
  RRS_REQUIRE(false, "this arrival source does not support restore: "
                         << summary());
}

void MaterializedSource::checkpoint(CheckpointWriter& w) const {
  w.str("materialized");
  w.i64(horizon());
}

void MaterializedSource::restore(CheckpointReader& r) {
  RRS_REQUIRE(r.str() == "materialized",
              "checkpoint source-type mismatch (this source is "
              "materialized)");
  const Round h = r.i64();
  RRS_REQUIRE(h == horizon(), "checkpoint horizon " << h << " != "
                                                    << horizon());
}

Instance materialize(ArrivalSource& source, Round rounds) {
  Round end = rounds;
  if (end == kInfiniteHorizon) {
    end = source.horizon();
    RRS_REQUIRE(end != kInfiniteHorizon,
                "materializing an infinite source needs an explicit round "
                "count; got "
                    << source.summary());
  } else if (source.finite()) {
    end = std::min(end, source.horizon());
  }
  RRS_REQUIRE(end >= 0, "materialize: negative round count " << end);

  InstanceBuilder builder;
  builder.delta(source.delta());
  const CostModel& model = source.cost_model();
  for (ColorId c = 0; c < source.num_colors(); ++c) {
    builder.add_color(source.delay_bound(c), source.drop_cost(c),
                      source.length(c));
  }
  if (model.tier() != CostModel::Tier::kScalar) {
    for (ColorId to = 0; to < source.num_colors(); ++to) {
      builder.reconfig_cost(to, model.cold_cost(to));
    }
  }
  if (model.tier() == CostModel::Tier::kMatrix) {
    for (ColorId from = 0; from < source.num_colors(); ++from) {
      for (ColorId to = 0; to < source.num_colors(); ++to) {
        builder.transition_cost(from, to, model.reconfig_cost(from, to));
      }
    }
  }
  for (Round k = 0; k < end; ++k) {
    for (const Job& job : source.arrivals_in_round(k)) {
      builder.add_jobs(job.color, k, 1);
    }
  }
  builder.min_horizon(end);
  return builder.build();
}

}  // namespace rrs
