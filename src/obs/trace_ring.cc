#include "obs/trace_ring.h"

#include <ostream>

#include "util/check.h"

namespace rrs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDropBurst:
      return "drop-burst";
    case TraceKind::kReconfig:
      return "reconfig";
    case TraceKind::kChurnFail:
      return "churn-fail";
    case TraceKind::kChurnRepair:
      return "churn-repair";
    case TraceKind::kEpochTurnover:
      return "epoch-turnover";
    case TraceKind::kAdaptation:
      return "adaptation";
    case TraceKind::kSnapshot:
      return "snapshot";
    case TraceKind::kReshard:
      return "reshard";
    case TraceKind::kFabricStall:
      return "fabric-stall";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) : ring_(capacity) {
  RRS_REQUIRE(capacity >= 1, "TraceRing: capacity must be >= 1");
}

void TraceRing::clear() {
  next_ = 0;
  size_ = 0;
  total_pushed_ = 0;
}

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start = (next_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceRing::dump(std::ostream& os) const {
  os << "# trace ring: " << size_ << " of " << total_pushed_
     << " events retained\n";
  for (const TraceEvent& e : events()) {
    os << "round " << e.round << " " << trace_kind_name(e.kind) << " detail="
       << e.detail << " value=" << e.value << "\n";
  }
}

}  // namespace rrs
