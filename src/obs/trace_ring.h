#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/types.h"

namespace rrs {

/// Categories of engine events worth keeping in the flight recorder.
enum class TraceKind : std::uint8_t {
  kDropBurst,      // detail = #colors affected, value = jobs dropped
  kReconfig,       // detail = mini-round, value = reconfig events committed
  kChurnFail,      // detail = resource id, value = evicted color (or kBlack)
  kChurnRepair,    // detail = resource id, value = 0
  kEpochTurnover,  // detail = 0, value = new epoch count
  kAdaptation,     // detail = new cache-share percent, value = #adaptations
  kSnapshot,       // detail = 0, value = pending-job gauge
  kReshard,        // detail = #colors migrated, value = era index
  kFabricStall,    // detail = ring index, value = ring occupancy at stall
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

/// One recent-event record.  Deliberately small and POD-like: pushing is a
/// couple of stores, so tracing stays cheap enough to leave on.
struct TraceEvent {
  Round round = 0;
  TraceKind kind = TraceKind::kDropBurst;
  std::int32_t detail = 0;
  std::int64_t value = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Bounded ring buffer of recent engine events.  O(1) push, fixed capacity
/// allocated up front; old events are overwritten silently (total_pushed()
/// tells how many were ever recorded).  Dumpable on InvariantError or on
/// demand.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256);

  void push(const TraceEvent& event) {
    ring_[next_] = event;
    next_ = (next_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
    ++total_pushed_;
  }

  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::int64_t total_pushed() const { return total_pushed_; }

  /// Events oldest -> newest (at most capacity() of them).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Human-readable dump, one event per line, oldest first.
  void dump(std::ostream& os) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::int64_t total_pushed_ = 0;
};

}  // namespace rrs
