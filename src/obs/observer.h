#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/types.h"
#include "obs/phase_timers.h"
#include "obs/snapshot.h"
#include "obs/stream_stats.h"
#include "obs/trace_ring.h"

namespace rrs {

class CheckpointReader;
class CheckpointWriter;

/// Observability knobs.  The true "off" mode is no Observer at all
/// (EngineOptions::observer == nullptr): the engine hot path then pays a
/// single null check per hook site and its results stay bit-identical to a
/// build without the subsystem.  With an Observer attached, StreamStats is
/// always on (it is the point); tracing, phase timers, and periodic
/// snapshots toggle independently.
struct ObsConfig {
  bool trace = true;   ///< record recent events in the TraceRing
  bool timers = false; ///< wall-clock phase attribution (2 clock reads/phase)
  std::size_t trace_capacity = 256;
  /// Emit a cumulative Snapshot every this many rounds (0 = only the final
  /// snapshot at end of run).
  Round snapshot_every = 0;
};

/// Per-engine observability bundle threaded through a run.  Not
/// thread-safe: each engine (each shard) gets its own Observer; sharded
/// runs merge them additively afterwards.
struct Observer {
  explicit Observer(const ObsConfig& c = {})
      : config(c), trace(c.trace_capacity) {}

  ObsConfig config;
  StreamStats stats;
  TraceRing trace;
  PhaseTimers timers;
  std::vector<Snapshot> snapshots;  ///< periodic exports, oldest first
  Snapshot final_snapshot;          ///< totals at end of run
  /// Optional JSON-lines sink (not owned): periodic and final snapshots are
  /// written here as they are taken.
  std::ostream* snapshot_out = nullptr;
  /// Where dump_trace() writes when not given a stream; nullptr = stderr.
  std::ostream* trace_dump_out = nullptr;

  /// Resets all state and caches per-color metadata for the hot-path hooks.
  /// An empty `lengths` span means unit lengths (the paper's model).
  void begin_run(std::span<const Round> delay_bounds,
                 std::span<const Cost> drop_costs,
                 std::span<const Round> lengths = {});

  /// Takes a periodic snapshot (and writes it to snapshot_out, if set).
  void emit_snapshot(Round round, std::int64_t pending);

  /// Captures the final snapshot (and writes it to snapshot_out, if set).
  void finish_run(Round round, std::int64_t pending);

  /// Dumps the trace ring: to `os` if given, else to trace_dump_out, else
  /// to stderr.  The engine calls this when a run dies on InvariantError.
  void dump_trace(std::ostream* os = nullptr) const;

  /// Serializes stats plus the periodic snapshot series (as JSON lines,
  /// re-validated through the strict parser on restore).  The trace ring and
  /// phase timers are diagnostics — recent-event debris and wall-clock data —
  /// and are deliberately excluded: a restored run reproduces results, not
  /// the debug trace.  restore_checkpoint requires begin_run() to have been
  /// called with the same color space; a snapshot_out sink attached to the
  /// restored observer receives only post-restore snapshots (the in-memory
  /// series stays complete).
  void checkpoint(CheckpointWriter& w) const;
  void restore_checkpoint(CheckpointReader& r);
};

}  // namespace rrs
