#include "obs/snapshot.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/stream_stats.h"
#include "util/check.h"

namespace rrs {

namespace {

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_double(std::string& out, double v) {
  // %.17g round-trips any finite double exactly through the strict
  // from_chars parser below.
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

void append_histogram(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  append_int(out, h.count());
  out += ",\"sum\":";
  append_int(out, h.sum());
  out += ",\"min\":";
  append_int(out, h.min());
  out += ",\"max\":";
  append_int(out, h.max());
  out += ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[';
    append_int(out, i);
    out += ',';
    append_int(out, h.bucket(i));
    out += ']';
  }
  out += "]}";
}

/// Strict single-line cursor: every expect/parse advances or throws
/// InputError.  The format is exactly what the writer emits — key order
/// fixed, no whitespace — so any deviation is malformed input, not a
/// dialect.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void expect(std::string_view lit) {
    RRS_REQUIRE(s_.size() - pos_ >= lit.size() &&
                    s_.compare(pos_, lit.size(), lit) == 0,
                "snapshot: expected '" << lit << "' at offset " << pos_);
    pos_ += lit.size();
  }

  [[nodiscard]] bool peek(char c) const {
    return pos_ < s_.size() && s_[pos_] == c;
  }

  void skip(char c) {
    RRS_REQUIRE(peek(c), "snapshot: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  [[nodiscard]] std::int64_t parse_int() {
    std::int64_t v = 0;
    const char* first = s_.data() + pos_;
    const char* last = s_.data() + s_.size();
    const auto res = std::from_chars(first, last, v);
    RRS_REQUIRE(res.ec == std::errc{} && res.ptr != first,
                "snapshot: bad integer at offset " << pos_);
    pos_ += static_cast<std::size_t>(res.ptr - first);
    return v;
  }

  [[nodiscard]] double parse_double() {
    double v = 0.0;
    const char* first = s_.data() + pos_;
    const char* last = s_.data() + s_.size();
    const auto res =
        std::from_chars(first, last, v, std::chars_format::general);
    RRS_REQUIRE(res.ec == std::errc{} && res.ptr != first,
                "snapshot: bad number at offset " << pos_);
    RRS_REQUIRE(std::isfinite(v),
                "snapshot: non-finite number at offset " << pos_);
    pos_ += static_cast<std::size_t>(res.ptr - first);
    return v;
  }

  void expect_end() const {
    RRS_REQUIRE(pos_ == s_.size(),
                "snapshot: trailing bytes at offset " << pos_);
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

Histogram parse_histogram(Cursor& c) {
  c.expect("{\"count\":");
  const std::int64_t count = c.parse_int();
  c.expect(",\"sum\":");
  const std::int64_t sum = c.parse_int();
  c.expect(",\"min\":");
  const std::int64_t min = c.parse_int();
  c.expect(",\"max\":");
  const std::int64_t max = c.parse_int();
  c.expect(",\"buckets\":[");
  std::vector<std::pair<int, std::int64_t>> buckets;
  if (!c.peek(']')) {
    for (;;) {
      c.skip('[');
      const std::int64_t index = c.parse_int();
      RRS_REQUIRE(index >= 0 && index < Histogram::kNumBuckets,
                  "snapshot: histogram bucket index out of range");
      c.skip(',');
      const std::int64_t n = c.parse_int();
      c.skip(']');
      buckets.emplace_back(static_cast<int>(index), n);
      if (!c.peek(',')) break;
      c.skip(',');
    }
  }
  c.expect("]}");
  return Histogram::from_parts(count, sum, min, max, buckets);
}

}  // namespace

Snapshot make_snapshot(const StreamStats& stats, Round round,
                       std::int64_t pending) {
  Snapshot s;
  s.round = round;
  s.arrived = stats.arrived();
  s.executed = stats.executed();
  s.drop_count = stats.drop_count();
  s.drop_weight = stats.drop_weight();
  s.completed_weight = stats.completed_weight();
  s.work_units = stats.work_units();
  s.reconfig_events = stats.reconfig_events();
  s.churn_failures = stats.churn_failures();
  s.churn_repairs = stats.churn_repairs();
  s.churn_evictions = stats.churn_evictions();
  s.pending = pending;
  s.admission_rejected = stats.admission_rejected();
  s.wait = stats.wait();
  s.slack = stats.slack();
  s.service = stats.service();
  s.reconfig_gap = stats.reconfig_gap();
  s.mean_wait = s.wait.mean();
  s.mean_slack = s.slack.mean();
  return s;
}

void merge_into(Snapshot& into, const Snapshot& from) {
  into.round = std::max(into.round, from.round);
  into.arrived += from.arrived;
  into.executed += from.executed;
  into.drop_count += from.drop_count;
  into.drop_weight += from.drop_weight;
  into.completed_weight += from.completed_weight;
  into.work_units += from.work_units;
  into.reconfig_events += from.reconfig_events;
  into.churn_failures += from.churn_failures;
  into.churn_repairs += from.churn_repairs;
  into.churn_evictions += from.churn_evictions;
  into.pending += from.pending;
  into.admission_rejected += from.admission_rejected;
  into.fabric_chunks_produced += from.fabric_chunks_produced;
  into.fabric_peak_chunks =
      std::max(into.fabric_peak_chunks, from.fabric_peak_chunks);
  into.fabric_ring_occupancy += from.fabric_ring_occupancy;
  into.wait.merge(from.wait);
  into.slack.merge(from.slack);
  into.service.merge(from.service);
  into.reconfig_gap.merge(from.reconfig_gap);
  into.mean_wait = into.wait.mean();
  into.mean_slack = into.slack.mean();
}

std::string to_json_line(const Snapshot& snapshot) {
  std::string out;
  out.reserve(512);
  out += "{\"round\":";
  append_int(out, snapshot.round);
  out += ",\"arrived\":";
  append_int(out, snapshot.arrived);
  out += ",\"executed\":";
  append_int(out, snapshot.executed);
  out += ",\"drop_count\":";
  append_int(out, snapshot.drop_count);
  out += ",\"drop_weight\":";
  append_int(out, snapshot.drop_weight);
  out += ",\"completed_weight\":";
  append_int(out, snapshot.completed_weight);
  out += ",\"work_units\":";
  append_int(out, snapshot.work_units);
  out += ",\"reconfig_events\":";
  append_int(out, snapshot.reconfig_events);
  out += ",\"churn_failures\":";
  append_int(out, snapshot.churn_failures);
  out += ",\"churn_repairs\":";
  append_int(out, snapshot.churn_repairs);
  out += ",\"churn_evictions\":";
  append_int(out, snapshot.churn_evictions);
  out += ",\"pending\":";
  append_int(out, snapshot.pending);
  out += ",\"admission_rejected\":";
  append_int(out, snapshot.admission_rejected);
  out += ",\"fabric_chunks_produced\":";
  append_int(out, snapshot.fabric_chunks_produced);
  out += ",\"fabric_peak_chunks\":";
  append_int(out, snapshot.fabric_peak_chunks);
  out += ",\"fabric_ring_occupancy\":";
  append_int(out, snapshot.fabric_ring_occupancy);
  out += ",\"mean_wait\":";
  append_double(out, snapshot.mean_wait);
  out += ",\"mean_slack\":";
  append_double(out, snapshot.mean_slack);
  out += ",\"wait\":";
  append_histogram(out, snapshot.wait);
  out += ",\"slack\":";
  append_histogram(out, snapshot.slack);
  out += ",\"service\":";
  append_histogram(out, snapshot.service);
  out += ",\"reconfig_gap\":";
  append_histogram(out, snapshot.reconfig_gap);
  out += '}';
  return out;
}

Snapshot parse_snapshot_line(std::string_view line) {
  Cursor c(line);
  Snapshot s;
  c.expect("{\"round\":");
  s.round = c.parse_int();
  c.expect(",\"arrived\":");
  s.arrived = c.parse_int();
  c.expect(",\"executed\":");
  s.executed = c.parse_int();
  c.expect(",\"drop_count\":");
  s.drop_count = c.parse_int();
  c.expect(",\"drop_weight\":");
  s.drop_weight = c.parse_int();
  c.expect(",\"completed_weight\":");
  s.completed_weight = c.parse_int();
  c.expect(",\"work_units\":");
  s.work_units = c.parse_int();
  c.expect(",\"reconfig_events\":");
  s.reconfig_events = c.parse_int();
  c.expect(",\"churn_failures\":");
  s.churn_failures = c.parse_int();
  c.expect(",\"churn_repairs\":");
  s.churn_repairs = c.parse_int();
  c.expect(",\"churn_evictions\":");
  s.churn_evictions = c.parse_int();
  c.expect(",\"pending\":");
  s.pending = c.parse_int();
  c.expect(",\"admission_rejected\":");
  s.admission_rejected = c.parse_int();
  c.expect(",\"fabric_chunks_produced\":");
  s.fabric_chunks_produced = c.parse_int();
  c.expect(",\"fabric_peak_chunks\":");
  s.fabric_peak_chunks = c.parse_int();
  c.expect(",\"fabric_ring_occupancy\":");
  s.fabric_ring_occupancy = c.parse_int();
  c.expect(",\"mean_wait\":");
  s.mean_wait = c.parse_double();
  c.expect(",\"mean_slack\":");
  s.mean_slack = c.parse_double();
  c.expect(",\"wait\":");
  s.wait = parse_histogram(c);
  c.expect(",\"slack\":");
  s.slack = parse_histogram(c);
  c.expect(",\"service\":");
  s.service = parse_histogram(c);
  c.expect(",\"reconfig_gap\":");
  s.reconfig_gap = parse_histogram(c);
  c.expect("}");
  c.expect_end();

  // Cross-field consistency: a well-formed snapshot cannot violate these,
  // so a violation means corrupt input.
  RRS_REQUIRE(s.round >= 0 && s.arrived >= 0 && s.drop_count >= 0 &&
                  s.drop_weight >= 0 && s.completed_weight >= 0 &&
                  s.work_units >= 0 && s.reconfig_events >= 0 &&
                  s.churn_failures >= 0 && s.churn_repairs >= 0 &&
                  s.churn_evictions >= 0 && s.pending >= 0 &&
                  s.admission_rejected >= 0 &&
                  s.fabric_chunks_produced >= 0 && s.fabric_peak_chunks >= 0 &&
                  s.fabric_ring_occupancy >= 0,
              "snapshot: negative counter");
  RRS_REQUIRE(s.admission_rejected <= s.drop_count,
              "snapshot: admission rejections exceed drop count");
  RRS_REQUIRE(s.executed == s.wait.count() && s.executed == s.slack.count(),
              "snapshot: executed disagrees with wait/slack sample counts");
  RRS_REQUIRE(s.executed == s.service.count(),
              "snapshot: executed disagrees with service sample count");
  RRS_REQUIRE(s.work_units >= s.service.sum(),
              "snapshot: fewer work units than completed service demands");
  RRS_REQUIRE(s.completed_weight >= s.executed,
              "snapshot: completed weight below completion count");
  RRS_REQUIRE(s.arrived - s.executed >= s.drop_count,
              "snapshot: executed + dropped exceeds arrived");
  RRS_REQUIRE(s.churn_evictions <= s.churn_failures,
              "snapshot: more evictions than failures");
  RRS_REQUIRE(s.mean_wait == s.wait.mean() && s.mean_slack == s.slack.mean(),
              "snapshot: derived means disagree with histograms");
  return s;
}

void write_snapshots(std::ostream& os, std::span<const Snapshot> snapshots) {
  for (const Snapshot& s : snapshots) {
    os << to_json_line(s) << '\n';
  }
  os.flush();
  RRS_REQUIRE(os.good(), "snapshot write failed (stream error after flush)");
}

std::vector<Snapshot> read_snapshots(std::istream& in) {
  std::vector<Snapshot> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      out.push_back(parse_snapshot_line(line));
    } catch (const InputError& e) {
      throw InputError("snapshot line " + std::to_string(line_no) + ": " +
                       e.what());
    }
  }
  return out;
}

std::vector<Snapshot> merge_snapshot_series(
    const std::vector<std::vector<Snapshot>>& per_shard) {
  std::size_t longest = 0;
  for (const auto& series : per_shard) {
    longest = std::max(longest, series.size());
  }
  std::vector<Snapshot> out;
  out.reserve(longest);
  for (std::size_t i = 0; i < longest; ++i) {
    Snapshot merged;
    for (const auto& series : per_shard) {
      if (series.empty()) continue;
      // Carry-forward: a shard that drained early keeps contributing its
      // final cumulative totals.
      merge_into(merged, series[std::min(i, series.size() - 1)]);
    }
    out.push_back(std::move(merged));
  }
  return out;
}

}  // namespace rrs
