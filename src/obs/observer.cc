#include "obs/observer.h"

#include <iostream>

#include "core/checkpoint.h"
#include "util/check.h"

namespace rrs {

void Observer::begin_run(std::span<const Round> delay_bounds,
                         std::span<const Cost> drop_costs,
                         std::span<const Round> lengths) {
  stats.begin(delay_bounds, drop_costs, lengths);
  trace.clear();
  timers.reset();
  snapshots.clear();
  final_snapshot = Snapshot{};
}

void Observer::emit_snapshot(Round round, std::int64_t pending) {
  snapshots.push_back(make_snapshot(stats, round, pending));
  if (config.trace) {
    trace.push({round, TraceKind::kSnapshot, 0, pending});
  }
  if (snapshot_out != nullptr) {
    *snapshot_out << to_json_line(snapshots.back()) << '\n';
    snapshot_out->flush();
    RRS_REQUIRE(snapshot_out->good(),
                "snapshot sink write failed (stream error after flush)");
  }
}

void Observer::finish_run(Round round, std::int64_t pending) {
  final_snapshot = make_snapshot(stats, round, pending);
  if (snapshot_out != nullptr) {
    *snapshot_out << to_json_line(final_snapshot) << '\n';
    snapshot_out->flush();
    RRS_REQUIRE(snapshot_out->good(),
                "snapshot sink write failed (stream error after flush)");
  }
}

void Observer::checkpoint(CheckpointWriter& w) const {
  w.i64(config.snapshot_every);
  stats.checkpoint(w);
  w.u64(snapshots.size());
  for (const Snapshot& s : snapshots) {
    w.str(to_json_line(s));
  }
}

void Observer::restore_checkpoint(CheckpointReader& r) {
  RRS_REQUIRE(r.i64() == config.snapshot_every,
              "checkpoint snapshot cadence mismatch");
  stats.restore_checkpoint(r);
  const std::uint64_t n = r.u64();
  snapshots.clear();
  snapshots.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    snapshots.push_back(parse_snapshot_line(r.str()));
  }
  final_snapshot = Snapshot{};
}

void Observer::dump_trace(std::ostream* os) const {
  std::ostream& sink =
      os != nullptr ? *os
                    : (trace_dump_out != nullptr ? *trace_dump_out : std::cerr);
  sink << "# rrs trace-ring dump\n";
  trace.dump(sink);
}

}  // namespace rrs
