#include "obs/observer.h"

#include <iostream>

namespace rrs {

void Observer::begin_run(std::span<const Round> delay_bounds,
                         std::span<const Cost> drop_costs,
                         std::span<const Round> lengths) {
  stats.begin(delay_bounds, drop_costs, lengths);
  trace.clear();
  timers.reset();
  snapshots.clear();
  final_snapshot = Snapshot{};
}

void Observer::emit_snapshot(Round round, std::int64_t pending) {
  snapshots.push_back(make_snapshot(stats, round, pending));
  if (config.trace) {
    trace.push({round, TraceKind::kSnapshot, 0, pending});
  }
  if (snapshot_out != nullptr) {
    *snapshot_out << to_json_line(snapshots.back()) << '\n';
  }
}

void Observer::finish_run(Round round, std::int64_t pending) {
  final_snapshot = make_snapshot(stats, round, pending);
  if (snapshot_out != nullptr) {
    *snapshot_out << to_json_line(final_snapshot) << '\n';
  }
}

void Observer::dump_trace(std::ostream* os) const {
  std::ostream& sink =
      os != nullptr ? *os
                    : (trace_dump_out != nullptr ? *trace_dump_out : std::cerr);
  sink << "# rrs trace-ring dump\n";
  trace.dump(sink);
}

}  // namespace rrs
