#include "obs/stream_stats.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "core/checkpoint.h"

namespace rrs {

namespace {

/// Histograms serialize as exact aggregates plus a sparse bucket list; the
/// reader round-trips through Histogram::from_parts so every internal
/// consistency check applies to checkpointed data too.
void checkpoint_histogram(CheckpointWriter& w, const Histogram& h) {
  w.i64(h.count());
  w.i64(h.sum());
  w.i64(h.min());
  w.i64(h.max());
  std::uint64_t nonzero = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket(i) > 0) ++nonzero;
  }
  w.u64(nonzero);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket(i) > 0) {
      w.u32(static_cast<std::uint32_t>(i));
      w.i64(h.bucket(i));
    }
  }
}

Histogram restore_histogram(CheckpointReader& r) {
  const std::int64_t count = r.i64();
  const std::int64_t sum = r.i64();
  const Round min = r.i64();
  const Round max = r.i64();
  const std::uint64_t nonzero = r.u64();
  RRS_REQUIRE(nonzero <= static_cast<std::uint64_t>(Histogram::kNumBuckets),
              "checkpoint histogram has too many buckets");
  std::vector<std::pair<int, std::int64_t>> buckets;
  buckets.reserve(static_cast<std::size_t>(nonzero));
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    const std::uint32_t index = r.u32();
    RRS_REQUIRE(index < static_cast<std::uint32_t>(Histogram::kNumBuckets),
                "checkpoint histogram bucket index out of range");
    buckets.emplace_back(static_cast<int>(index), r.i64());
  }
  return Histogram::from_parts(count, sum, min, max, buckets);
}

}  // namespace

void StreamStats::checkpoint(CheckpointWriter& w) const {
  w.i64(arrived_);
  w.i64(executed_);
  w.i64(work_units_);
  w.i64(completed_weight_);
  w.i64(drop_count_);
  w.i64(drop_weight_);
  w.i64(reconfig_events_);
  w.i64(reconfig_rounds_);
  w.i64(last_reconfig_round_);
  w.i64(churn_failures_);
  w.i64(churn_repairs_);
  w.i64(churn_evictions_);
  w.i64(admission_rejected_);
  checkpoint_histogram(w, wait_);
  checkpoint_histogram(w, slack_);
  checkpoint_histogram(w, service_);
  checkpoint_histogram(w, reconfig_gap_);
  w.u64(per_color_.size());
  for (const ColorObs& obs : per_color_) {
    w.i64(obs.arrived);
    w.i64(obs.executed);
    w.i64(obs.dropped);
    w.i64(obs.dropped_weight);
    w.i64(obs.wait_sum);
    w.i64(obs.work_units);
  }
}

void StreamStats::restore_checkpoint(CheckpointReader& r) {
  arrived_ = r.i64();
  executed_ = r.i64();
  work_units_ = r.i64();
  completed_weight_ = r.i64();
  drop_count_ = r.i64();
  drop_weight_ = r.i64();
  reconfig_events_ = r.i64();
  reconfig_rounds_ = r.i64();
  last_reconfig_round_ = r.i64();
  RRS_REQUIRE(last_reconfig_round_ >= -1,
              "checkpoint reconfig cursor out of range");
  churn_failures_ = r.i64();
  churn_repairs_ = r.i64();
  churn_evictions_ = r.i64();
  admission_rejected_ = r.i64();
  wait_ = restore_histogram(r);
  slack_ = restore_histogram(r);
  service_ = restore_histogram(r);
  reconfig_gap_ = restore_histogram(r);
  RRS_REQUIRE(r.u64() == per_color_.size(),
              "checkpoint stream-stats color count mismatch");
  for (ColorObs& obs : per_color_) {
    obs.arrived = r.i64();
    obs.executed = r.i64();
    obs.dropped = r.i64();
    obs.dropped_weight = r.i64();
    obs.wait_sum = r.i64();
    obs.work_units = r.i64();
  }
}

}  // namespace rrs
