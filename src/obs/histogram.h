#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>

#include "core/types.h"
#include "util/check.h"

namespace rrs {

/// Fixed-bucket log2 histogram over nonnegative integer samples.
///
/// Bucket layout: bucket 0 holds the value 0, bucket i (i >= 1) holds
/// [2^(i-1), 2^i - 1] — i.e. bucket_of(v) == std::bit_width(v).  64 buckets
/// cover the full nonnegative Round range, so record() never saturates.
///
/// Everything is plain integer arithmetic: merge() is elementwise addition,
/// which makes merging exact, commutative, and associative by construction.
/// count/sum/min/max are tracked exactly (not from buckets), so streaming
/// aggregates can be compared bit-for-bit against post-hoc instruments.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index for a nonnegative value.
  [[nodiscard]] static constexpr int bucket_of(Round v) {
    return v <= 0
               ? 0
               : static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
  }

  /// Inclusive upper bound of a bucket (bucket 0 -> 0, bucket i -> 2^i - 1).
  [[nodiscard]] static constexpr Round bucket_upper(int bucket) {
    return bucket <= 0 ? 0 : (Round{1} << bucket) - 1;
  }

  /// O(1), allocation-free.  `v` must be nonnegative.
  void record(Round v) {
    RRS_CHECK(v >= 0);
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  /// Exact elementwise merge; commutative and associative.
  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() { *this = Histogram{}; }

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Exact min/max of recorded samples; 0 when empty.
  [[nodiscard]] Round min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] Round max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  [[nodiscard]] std::int64_t bucket(int i) const {
    RRS_CHECK(i >= 0 && i < kNumBuckets);
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Nearest-rank percentile resolved to the bucket upper bound: the
  /// smallest bucket boundary b such that at least ceil(p*count/100)
  /// samples are <= b.  Exact for the min/max buckets, within one bucket
  /// (a factor of 2) elsewhere.  Returns 0 on an empty histogram.
  [[nodiscard]] Round percentile(int p) const {
    RRS_CHECK(p >= 1 && p <= 100);
    if (count_ == 0) return 0;
    const std::int64_t rank = (count_ * p + 99) / 100;  // ceil, >= 1
    std::int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[static_cast<std::size_t>(i)];
      if (seen >= rank) return i == bucket_of(max_) ? max_ : bucket_upper(i);
    }
    return max_;  // unreachable: seen == count_ >= rank after the loop
  }

  /// Reconstructs a histogram from serialized parts, validating internal
  /// consistency.  Throws InputError on any inconsistency (used by the
  /// snapshot reader so corrupt inputs are rejected, never absorbed).
  static Histogram from_parts(
      std::int64_t count, std::int64_t sum, Round min, Round max,
      std::span<const std::pair<int, std::int64_t>> buckets) {
    Histogram h;
    RRS_REQUIRE(count >= 0 && sum >= 0, "histogram: negative count/sum");
    if (count == 0) {
      RRS_REQUIRE(sum == 0 && min == 0 && max == 0 && buckets.empty(),
                  "histogram: empty count with nonempty payload");
      return h;
    }
    RRS_REQUIRE(min >= 0 && min <= max, "histogram: min/max out of order");
    std::int64_t total = 0;
    int prev = -1;
    for (const auto& [index, n] : buckets) {
      RRS_REQUIRE(index >= 0 && index < kNumBuckets,
                  "histogram: bucket index out of range");
      RRS_REQUIRE(index > prev, "histogram: bucket indices not increasing");
      RRS_REQUIRE(n > 0, "histogram: nonpositive bucket count");
      RRS_REQUIRE(total <= std::numeric_limits<std::int64_t>::max() - n,
                  "histogram: bucket counts overflow");
      prev = index;
      total += n;
      h.buckets_[static_cast<std::size_t>(index)] = n;
    }
    RRS_REQUIRE(total == count, "histogram: bucket counts do not sum to count");
    RRS_REQUIRE(!buckets.empty(), "histogram: count > 0 with no buckets");
    RRS_REQUIRE(bucket_of(min) == buckets.front().first,
                "histogram: min not in lowest bucket");
    RRS_REQUIRE(bucket_of(max) == buckets.back().first,
                "histogram: max not in highest bucket");
    // Overflow-safe mean bound: floor(sum/count) must land in [min, max].
    RRS_REQUIRE(sum / count >= min && sum / count <= max,
                "histogram: mean outside [min, max]");
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
    return h;
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::int64_t, kNumBuckets> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  Round min_ = std::numeric_limits<Round>::max();
  Round max_ = -1;
};

}  // namespace rrs
